// hypernel_score — the per-detector attack scorecard.
//
// Runs every scenario in the attack library (src/attacks) under every
// detector configuration, plus one benign false-positive probe per
// detector, grades the results against the library's declared ground
// truth, and emits a deterministic report: a human table on stdout, the
// full JSON via --out, and the scorecard digest on the last line.
//
// The report is byte-identical at any --jobs value and (with
// --no-trace) whether cells boot fresh or fork from boot snapshots —
// the scorecard tests pin both.
//
//   hypernel_score                           # table + digest
//   hypernel_score --jobs=4 --out=score.json
//   hypernel_score --no-trace --snapshot-boot
#include <cstdio>
#include <cstring>
#include <fstream>

#include "attacks/scorecard.h"
#include "obs/timeseries.h"
#include "sim/trace_io.h"

namespace {

void usage() {
  std::puts(
      "usage: hypernel_score [options]\n"
      "  --jobs=N          worker threads for cell evaluation (default:\n"
      "                    hardware concurrency; 1 = sequential).  Never\n"
      "                    changes the report, only wall-clock\n"
      "  --out=F           write the full JSON scorecard to F\n"
      "  --trace-out=F     write the flight-recorder trace of the first\n"
      "                    intended-hit cell to F (render: hypernel_trace)\n"
      "  --no-trace        skip flight-recorder capture and causal\n"
      "                    attribution (faster; attribution not required\n"
      "                    for the exit code)\n"
            "  --snapshot-boot   fork cells from per-configuration boot\n"
      "                    snapshots (COW restore) instead of re-booting\n"
      "  --cores=N         simulated cores per machine (default 1); N > 1\n"
      "                    adds the cross-core scenario rows\n"
      "  --decoupled[=N]   temporally decoupled execution (local charge\n"
      "                    quantum of N cycles, default 4096); the JSON\n"
      "                    report must stay byte-identical\n"
      "  --sample-cycles[=N]\n"
      "                    sample time-series tracks every N simulated\n"
      "                    cycles (default 65536); pairs with\n"
      "                    --timeseries-out\n"
      "  --timeseries-out=F\n"
      "                    write the sampled HNTSERIE stream of the first\n"
      "                    intended-hit cell to F (render:\n"
      "                    hypernel_trace timeline)\n"
      "  --profile         host self-time profile across all cells,\n"
      "                    rendered to stderr (stdout stays identical)");
}

}  // namespace

int main(int argc, char** argv) {
  hn::attacks::ScorecardOptions opt;
  opt.jobs = 0;  // CLI default: hardware concurrency (library: 1)
  std::string out_path;
  std::string trace_out;
  std::string timeseries_out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opt.jobs = static_cast<unsigned>(std::strtoul(arg + 7, nullptr, 0));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strcmp(arg, "--no-trace") == 0) {
      opt.trace_attribution = false;
    } else if (std::strcmp(arg, "--snapshot-boot") == 0) {
      opt.snapshot_boot = true;
    } else if (std::strncmp(arg, "--cores=", 8) == 0) {
      opt.cores = static_cast<unsigned>(std::strtoul(arg + 8, nullptr, 0));
      if (opt.cores == 0 || opt.cores > 8) {
        std::fprintf(stderr, "--cores must be in [1, 8]\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--decoupled=", 12) == 0) {
      opt.decoupled_quantum = std::strtoull(arg + 12, nullptr, 0);
    } else if (std::strcmp(arg, "--decoupled") == 0) {
      opt.decoupled_quantum = hn::fuzz::kDefaultDecoupledQuantum;
    } else if (std::strncmp(arg, "--sample-cycles=", 16) == 0) {
      opt.sample_cycles = std::strtoull(arg + 16, nullptr, 0);
    } else if (std::strcmp(arg, "--sample-cycles") == 0) {
      opt.sample_cycles = hn::obs::kDefaultSampleCycles;
    } else if (std::strncmp(arg, "--timeseries-out=", 17) == 0) {
      timeseries_out = arg + 17;
      if (opt.sample_cycles == 0) {
        opt.sample_cycles = hn::obs::kDefaultSampleCycles;
      }
    } else if (std::strcmp(arg, "--profile") == 0) {
      opt.profile = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      usage();
      return 2;
    }
  }

  const hn::attacks::Scorecard score = hn::attacks::run_scorecard(opt);
  std::fputs(hn::attacks::render_scorecard(score).c_str(), stdout);
  if (opt.profile) {
    // Host wall clock goes to stderr: stdout (table, digest) must stay
    // byte-identical across hosts, jobs, and decoupled mode.
    std::fprintf(stderr, "profile (scorecard self-time):\n%s",
                 hn::obs::render_profile(score.profile).c_str());
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << score.json;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "scorecard JSON written to %s\n", out_path.c_str());
  }
  if (!trace_out.empty()) {
    if (score.sample_trace.empty()) {
      std::fprintf(stderr,
                   "trace: no intended hit to capture (or --no-trace)\n");
    } else if (hn::sim::write_trace_file(score.sample_trace, trace_out)) {
      std::fprintf(stderr, "trace: first-hit trace written to %s\n",
                   trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_out.c_str());
      return 2;
    }
  }
  if (!timeseries_out.empty()) {
    if (score.sample_timeseries.empty()) {
      std::fprintf(stderr, "timeseries: no intended hit to sample\n");
    } else if (hn::obs::write_timeseries_file(score.sample_timeseries,
                                              timeseries_out)) {
      std::fprintf(stderr, "timeseries: first-hit stream written to %s\n",
                   timeseries_out.c_str());
    } else {
      std::fprintf(stderr, "timeseries: failed to write %s\n",
                   timeseries_out.c_str());
      return 2;
    }
  }
  std::printf("scorecard digest: %016llx\n",
              static_cast<unsigned long long>(score.digest));
  return score.ok(/*require_attribution=*/opt.trace_attribution) ? 0 : 1;
}
