#!/usr/bin/env python3
"""Summarise a bench_sim_throughput run for the CI step summary.

Usage: perf_summary.py RESULTS.json [BASELINE.json]

Writes a markdown table of per-loop rates and speedups to
$GITHUB_STEP_SUMMARY (stdout when unset).  When a baseline (the committed
BENCH_sim_throughput.json) is given, compares against it and emits a
non-gating `::warning::` for any loop whose fast-path speedup regressed
more than 25%, or whose absolute fast-path rate dropped more than 15%,
relative to the baseline.  The rate check is the sharper signal: a
simulator change that slows the fast path *and* the reference path alike
(the SMP failure mode — extra per-access work on the shared bus) leaves
the speedup ratio flat while replay throughput quietly sinks.  Always
exits 0: CI-runner noise must never gate a merge; the warning is the
signal to look.
"""

import json
import os
import sys

REGRESSION_THRESHOLD = 0.25
FAST_RATE_THRESHOLD = 0.15


def load(path):
    with open(path) as f:
        return json.load(f)


def fmt_rate(rate):
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k/s"
    return f"{rate:.0f}/s"


def rate(loop, key):
    """Per-second rate, accepting both the current schema (ref_per_s /
    fast_per_s) and the pre-unit one (ref_accesses_per_s / ...)."""
    return loop.get(f"{key}_per_s", loop.get(f"{key}_accesses_per_s", 0))


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    results = load(argv[1])
    baseline = load(argv[2]) if len(argv) > 2 and os.path.exists(argv[2]) else None
    base_loops = (
        {l["name"]: l for l in baseline["loops"]} if baseline else {}
    )

    lines = [
        "## Sim throughput (quick)",
        "",
        "| loop | unit | ref | fast | speedup | baseline | delta | fast delta |",
        "|---|---|---|---|---|---|---|---|",
    ]
    warnings = []
    for loop in results["loops"]:
        name = loop["name"]
        base = base_loops.get(name)
        base_speedup = base["speedup"] if base else None
        delta = ""
        if base_speedup:
            rel = loop["speedup"] / base_speedup - 1.0
            delta = f"{100 * rel:+.0f}%"
            if rel < -REGRESSION_THRESHOLD:
                warnings.append(
                    f"{name}: speedup {loop['speedup']:.2f}x vs baseline "
                    f"{base_speedup:.2f}x ({100 * rel:+.0f}%)"
                )
        base_fast = rate(base, "fast") if base else 0
        fast_delta = ""
        if base_fast:
            rel_fast = rate(loop, "fast") / base_fast - 1.0
            fast_delta = f"{100 * rel_fast:+.0f}%"
            if rel_fast < -FAST_RATE_THRESHOLD:
                warnings.append(
                    f"{name}: fast rate {fmt_rate(rate(loop, 'fast'))} vs "
                    f"baseline {fmt_rate(base_fast)} ({100 * rel_fast:+.0f}%)"
                )
        lines.append(
            "| {} | {} | {} | {} | {:.2f}x | {} | {} | {} |".format(
                name,
                loop.get("unit", "accesses"),
                fmt_rate(rate(loop, "ref")),
                fmt_rate(rate(loop, "fast")),
                loop["speedup"],
                f"{base_speedup:.2f}x" if base_speedup else "—",
                delta or "—",
                fast_delta or "—",
            )
        )

    # End-to-end replay speed: the loops the fast-path work optimises for.
    # Reported explicitly (execs/sec + speedup) so the step summary answers
    # "did replay get faster" without reading the whole table.
    e2e = [l for l in results["loops"] if l["name"] in ("fuzz_replay", "campaign")]
    if e2e:
        lines += ["", "### End-to-end replay (fast+decoupled vs reference)", ""]
        for loop in e2e:
            base = base_loops.get(loop["name"])
            lines.append(
                "- **{}**: {} execs fast vs {} reference — "
                "**{:.2f}x** (baseline {})".format(
                    loop["name"],
                    fmt_rate(rate(loop, "fast")),
                    fmt_rate(rate(loop, "ref")),
                    loop["speedup"],
                    f"{base['speedup']:.2f}x" if base else "—",
                )
            )
    if warnings:
        lines += ["", "**Perf regressions vs committed baseline — speedup "
                      ">25% or fast rate >15% (non-gating; runner noise is "
                      "common):**"]
        lines += [f"- {w}" for w in warnings]
        for w in warnings:
            print(f"::warning title=sim-throughput regression::{w}")
    else:
        lines += ["", "No speedup regression beyond 25% and no fast-rate "
                      "drop beyond 15% of the committed baseline."]

    out = "\n".join(lines) + "\n"
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(out)
    else:
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
