#!/usr/bin/env python3
"""Validate Chrome trace-event JSON exported by `hypernel_trace export`.

Usage: trace_check.py [--expect-counters] TRACE.json [TRACE.json ...]

Checks that each file parses as JSON, wraps a traceEvents array, that
every record carries a phase plus pid/tid (counter records, ph == "C",
are process-scoped: pid only, no tid, and must carry a numeric
args.value), and that timestamps are monotonically non-decreasing across
the exported stream (metadata records, ph == "M", carry no timeline
position and are skipped).  These are the invariants Perfetto /
chrome://tracing relies on to load the file, so CI runs this over every
exported trace.  With --expect-counters, a file with no counter records
is an error (the CI timeline job exports from a sampled run, so the
counter tracks must be there).  Exits non-zero on the first violated
file.
"""

import json
import sys


def check(path, expect_counters=False):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return f"{path}: traceEvents missing or empty"

    last_ts = None
    counts = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            return f"{path}: record {i} has no ph"
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "C":
            # Counter-track samples: process-scoped (no tid) with a
            # numeric value payload.
            if ev.get("pid") != 1 or "tid" in ev:
                return f"{path}: counter record {i} has bad pid/tid: {ev}"
            if not ev.get("name"):
                return f"{path}: counter record {i} has no name: {ev}"
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return f"{path}: counter record {i} has bad args.value: {ev}"
        elif ev.get("pid") != 1 or ev.get("tid") not in (1, 2):
            return f"{path}: record {i} has bad pid/tid: {ev}"
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return f"{path}: record {i} has bad ts: {ev}"
        if last_ts is not None and ts < last_ts:
            return f"{path}: ts went backwards at record {i} ({ts} < {last_ts})"
        last_ts = ts

    if counts.get("i", 0) == 0:
        return f"{path}: no instant events (empty trace?)"
    if expect_counters and counts.get("C", 0) == 0:
        return f"{path}: no counter records (sampled run expected ph=C tracks)"
    phases = ", ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"{path}: OK — {len(events)} records ({phases})")
    return None


def main(argv):
    args = argv[1:]
    expect_counters = "--expect-counters" in args
    paths = [a for a in args if a != "--expect-counters"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in paths:
        error = check(path, expect_counters)
        if error:
            print(f"::error::{error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
