#!/usr/bin/env python3
"""Validate Chrome trace-event JSON exported by `hypernel_trace export`.

Usage: trace_check.py TRACE.json [TRACE.json ...]

Checks that each file parses as JSON, wraps a traceEvents array, that
every record carries a phase plus pid/tid, and that timestamps are
monotonically non-decreasing across the exported stream (metadata
records, ph == "M", carry no timeline position and are skipped).  These
are the invariants Perfetto / chrome://tracing relies on to load the
file, so CI runs this over every exported trace.  Exits non-zero on the
first violated file.
"""

import json
import sys


def check(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return f"{path}: traceEvents missing or empty"

    last_ts = None
    counts = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            return f"{path}: record {i} has no ph"
        counts[ph] = counts.get(ph, 0) + 1
        if ev.get("pid") != 1 or ev.get("tid") not in (1, 2):
            return f"{path}: record {i} has bad pid/tid: {ev}"
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return f"{path}: record {i} has bad ts: {ev}"
        if last_ts is not None and ts < last_ts:
            return f"{path}: ts went backwards at record {i} ({ts} < {last_ts})"
        last_ts = ts

    if counts.get("i", 0) == 0:
        return f"{path}: no instant events (empty trace?)"
    phases = ", ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"{path}: OK — {len(events)} records ({phases})")
    return None


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        error = check(path)
        if error:
            print(f"::error::{error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
