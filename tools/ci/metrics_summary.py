#!/usr/bin/env python3
"""Summarise a --metrics-out JSON snapshot for the CI step summary.

Usage: metrics_summary.py METRICS.json [TITLE]

Renders the observability snapshot as markdown: subsystem rollups of the
counters, the largest individual counters, and every histogram's
count/weight/range.  Output goes to $GITHUB_STEP_SUMMARY (stdout when
unset).  Exits non-zero only when the snapshot cannot be read — an empty
metrics file on a run that asked for metrics is itself a bug worth
failing on.
"""

import json
import os
import sys


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    title = argv[2] if len(argv) > 2 else "Observability metrics"
    with open(argv[1]) as f:
        metrics = json.load(f)["metrics"]
    if not metrics:
        print(f"::error::{argv[1]} contains no metrics", file=sys.stderr)
        return 1

    counters = [m for m in metrics if m["kind"] == "counter"]
    gauges = [m for m in metrics if m["kind"] == "gauge"]
    hists = [m for m in metrics if m["kind"] == "histogram"]

    rollups = {}
    for m in counters:
        root = m["path"].split(".", 1)[0]
        rollups[root] = rollups.get(root, 0) + m["value"]

    lines = [f"## {title}", ""]
    lines += ["| subsystem | counter total |", "|---|---|"]
    for root in sorted(rollups):
        lines.append(f"| {root} | {rollups[root]:,} |")

    lines += ["", "<details><summary>Top counters</summary>", "",
              "| path | value |", "|---|---|"]
    for m in sorted(counters, key=lambda m: -m["value"])[:15]:
        lines.append(f"| `{m['path']}` | {m['value']:,} |")
    lines += ["", "</details>"]

    if gauges:
        lines += ["", "<details><summary>Gauges (high-water)</summary>", "",
                  "| path | value |", "|---|---|"]
        for m in sorted(gauges, key=lambda m: m["path"]):
            lines.append(f"| `{m['path']}` | {m['value']:,} |")
        lines += ["", "</details>"]

    if hists:
        lines += ["", "<details><summary>Histograms</summary>", "",
                  "| path | samples | weight | min | max |", "|---|---|---|---|---|"]
        for m in sorted(hists, key=lambda m: m["path"]):
            lines.append(
                "| `{}` | {:,} | {:,} | {} | {} |".format(
                    m["path"], m["count"], m["weight"],
                    m.get("min", "—"), m.get("max", "—"),
                )
            )
        lines += ["", "</details>"]

    out = "\n".join(lines) + "\n"
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(out)
    else:
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
