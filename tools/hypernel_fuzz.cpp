// hypernel_fuzz — deterministic differential fuzzer for the Hypernel
// simulation.
//
// Generates random operation sequences from a seed, executes each under
// the whole configuration matrix (Native / KVM-guest / Hypernel, both
// monitoring granularities, optional hardware-knob sweep), and checks the
// two oracles after every step: differential functional equivalence and
// Hypersec/monitor invariants.  Failures are shrunk to a minimal
// reproducer, the failing step's machine trace is dumped, and a replay
// command is printed.
//
// Campaigns fan sequences across --jobs worker threads (default: all
// hardware threads); results merge in index order, so stdout — progress
// lines, failure reports, the summary — is byte-identical at any job
// count.  Host-side throughput stats go to stderr.
//
//   hypernel_fuzz --seed=1 --sequences=50            # campaign
//   hypernel_fuzz --seed=1 --sequences=50 --jobs=4   # same output, faster
//   hypernel_fuzz --seed=1 --sequences=50 --matrix=full
//   hypernel_fuzz --replay=<sequence-seed> --ops=40  # one sequence
//   hypernel_fuzz --inject-bypass ...                # prove the oracle bites
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "attacks/scenario.h"
#include "attacks/scorecard.h"
#include "fuzz/fuzzer.h"
#include "fuzz/seed_io.h"
#include "obs/export.h"
#include "obs/timeseries.h"
#include "sim/trace_io.h"

namespace {

using hn::fuzz::CampaignResult;
using hn::fuzz::FuzzOptions;

struct Options {
  FuzzOptions fuzz;
  std::optional<hn::u64> replay_seed;
  std::string replay_file;
  std::string metrics_out;
  std::string trace_out;
  std::string timeseries_out;
  std::string failure_dir;
};

std::optional<std::string> arg_value(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    return std::string(arg + n + 1);
  }
  return std::nullopt;
}

void usage() {
  std::puts(
      "usage: hypernel_fuzz [options]\n"
      "  --seed=N          campaign master seed (default 1)\n"
      "  --sequences=N     number of sequences to run (default 10)\n"
      "  --ops=K           ops per sequence (default 40)\n"
      "  --matrix=M        quick (default) or full hardware-knob sweep\n"
      "  --replay=S        run the single sequence with sequence seed S\n"
      "                    (as printed in a failure's replay line)\n"
      "  --replay-file=F   run the op program in F (`op <name> <a> <b> <c>`\n"
      "                    per line; the attack-corpus seed format) under\n"
      "                    the matrix plus the three detector configs\n"
      "  --attack-seeds    splice attack-library scenarios into generated\n"
      "                    sequences as structured seeds and mix in the\n"
      "                    control-flow / page-table attack kinds\n"
      "  --audit-stride=N  run Hypersec::audit() every N steps (default 1)\n"
            "  --jobs=N          worker threads for sequence evaluation (default:\n"
      "                    hardware concurrency; 1 = fully sequential).\n"
      "                    Never changes output, only wall-clock\n"
      "  --cores=N         simulated cores per machine (default 1).  A\n"
      "                    differential dimension: cross-core interleaving\n"
      "                    with deterministic bus arbitration; output is\n"
      "                    reproducible at any --jobs for a fixed N\n"
      "  --metrics-out=F   collect observability metrics across the campaign\n"
      "                    and write the folded snapshot to F (.csv = CSV,\n"
      "                    anything else = JSON)\n"
      "  --trace-out=F     write a causal flight-recorder trace to F: the\n"
      "                    first failure's reproducer, or sequence 0 under\n"
      "                    the reference config when the campaign is clean\n"
      "                    (render with hypernel_trace)\n"
      "  --sample-cycles[=N]\n"
      "                    sample time-series tracks every N simulated\n"
      "                    cycles (default 65536); pairs with\n"
      "                    --timeseries-out\n"
      "  --timeseries-out=F\n"
      "                    write the sampled HNTSERIE stream (sequence 0,\n"
      "                    reference config) to F (render with\n"
      "                    hypernel_trace timeline)\n"
      "  --failure-dir=D   write one reproducer file per failing sequence\n"
      "                    (shrunk ops, replay command, machine trace) to D\n"
      "  --fail-fast       cancel the campaign at the first failing sequence\n"
      "  --no-shrink       report original failing sequences unshrunk\n"
      "  --reference       force host-side reference mode (no sim fast\n"
      "                    path); output must stay byte-identical\n"
      "  --decoupled[=N]   temporally decoupled execution: cycle charges\n"
      "                    accumulate in a local quantum of N cycles\n"
      "                    (default 4096) and fold at every observation\n"
      "                    point; output must stay byte-identical\n"
      "  --profile         host self-time profile (boot/step/dispatch/\n"
      "                    syscall/translate/memory/audit/digest/snapshot)\n"
      "                    rendered to stderr; folded into --metrics-out as\n"
      "                    profile.* counters (see hypernel_trace profile)\n"
      "  --snapshot-boot   fork every case from a per-configuration boot\n"
      "                    snapshot (COW restore) instead of re-booting;\n"
      "                    output must stay byte-identical\n"
      "  --no-attacks      generate no attack writes\n"
      "  --no-forged       generate no forged-hypercall probes\n"
      "  --inject-bypass   test hook: attack writes dodge the bus snooper\n"
      "                    (the detection oracle must catch this)");
}

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::optional<std::string> v;
    if ((v = arg_value(arg, "--seed"))) {
      opt->fuzz.seed = std::strtoull(v->c_str(), nullptr, 0);
    } else if ((v = arg_value(arg, "--sequences"))) {
      opt->fuzz.sequences = std::strtoull(v->c_str(), nullptr, 0);
    } else if ((v = arg_value(arg, "--ops"))) {
      opt->fuzz.ops = std::strtoull(v->c_str(), nullptr, 0);
    } else if ((v = arg_value(arg, "--matrix"))) {
      if (*v == "full") {
        opt->fuzz.full_matrix = true;
      } else if (*v != "quick") {
        std::fprintf(stderr, "unknown matrix '%s'\n", v->c_str());
        return false;
      }
    } else if ((v = arg_value(arg, "--replay-file"))) {
      opt->replay_file = *v;
    } else if ((v = arg_value(arg, "--replay"))) {
      opt->replay_seed = std::strtoull(v->c_str(), nullptr, 0);
    } else if (std::strcmp(arg, "--attack-seeds") == 0) {
      opt->fuzz.extended_attacks = true;
      opt->fuzz.scenario_pool = hn::attacks::scenario_pool();
    } else if ((v = arg_value(arg, "--audit-stride"))) {
      opt->fuzz.audit_stride =
          static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 0));
    } else if ((v = arg_value(arg, "--jobs"))) {
      opt->fuzz.jobs =
          static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 0));
    } else if ((v = arg_value(arg, "--cores"))) {
      opt->fuzz.cores =
          static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 0));
      if (opt->fuzz.cores == 0 || opt->fuzz.cores > 8) {
        std::fprintf(stderr, "--cores must be in [1, 8]\n");
        return false;
      }
    } else if ((v = arg_value(arg, "--metrics-out"))) {
      opt->metrics_out = *v;
      opt->fuzz.collect_metrics = true;
    } else if ((v = arg_value(arg, "--trace-out"))) {
      opt->trace_out = *v;
      opt->fuzz.capture_trace = true;
    } else if ((v = arg_value(arg, "--sample-cycles"))) {
      opt->fuzz.sample_cycles = std::strtoull(v->c_str(), nullptr, 0);
    } else if (std::strcmp(arg, "--sample-cycles") == 0) {
      opt->fuzz.sample_cycles = hn::obs::kDefaultSampleCycles;
    } else if ((v = arg_value(arg, "--timeseries-out"))) {
      opt->timeseries_out = *v;
      if (opt->fuzz.sample_cycles == 0) {
        opt->fuzz.sample_cycles = hn::obs::kDefaultSampleCycles;
      }
    } else if ((v = arg_value(arg, "--failure-dir"))) {
      opt->failure_dir = *v;
      opt->fuzz.capture_trace = true;  // reproducers ship with their trace
    } else if (std::strcmp(arg, "--reference") == 0) {
      opt->fuzz.host_fast_path = false;
    } else if ((v = arg_value(arg, "--decoupled"))) {
      opt->fuzz.decoupled_quantum = std::strtoull(v->c_str(), nullptr, 0);
    } else if (std::strcmp(arg, "--decoupled") == 0) {
      opt->fuzz.decoupled_quantum = hn::fuzz::kDefaultDecoupledQuantum;
    } else if (std::strcmp(arg, "--profile") == 0) {
      opt->fuzz.profile = true;
    } else if (std::strcmp(arg, "--snapshot-boot") == 0) {
      opt->fuzz.snapshot_boot = true;
    } else if (std::strcmp(arg, "--fail-fast") == 0) {
      opt->fuzz.fail_fast = true;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      opt->fuzz.shrink = false;
    } else if (std::strcmp(arg, "--no-attacks") == 0) {
      opt->fuzz.attacks = false;
    } else if (std::strcmp(arg, "--no-forged") == 0) {
      opt->fuzz.forged = false;
    } else if (std::strcmp(arg, "--inject-bypass") == 0) {
      opt->fuzz.inject_bypass = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return false;
    }
  }
  return true;
}

int replay(const Options& opt) {
  auto specs = hn::fuzz::build_matrix(opt.fuzz.full_matrix);
  for (auto& spec : specs) {
    spec.host_fast_path = opt.fuzz.host_fast_path;
    spec.decoupled_quantum = opt.fuzz.decoupled_quantum;
    spec.cores = opt.fuzz.cores;
  }
  hn::fuzz::GeneratorOptions gen{.ops = opt.fuzz.ops,
                                 .attacks = opt.fuzz.attacks,
                                 .forged = opt.fuzz.forged};
  hn::fuzz::ExecutorOptions exec{.inject_bypass = opt.fuzz.inject_bypass,
                                 .audit_stride = opt.fuzz.audit_stride};
  exec.capture_trace = !opt.trace_out.empty();
  exec.snapshot_boot = opt.fuzz.snapshot_boot;
  exec.profile = opt.fuzz.profile;
  exec.sample_cycles = opt.fuzz.sample_cycles;
  const auto ops = hn::fuzz::generate_sequence(*opt.replay_seed, gen);
  std::printf("replaying sequence seed %llu (%zu ops, %zu configurations)\n",
              static_cast<unsigned long long>(*opt.replay_seed), ops.size(),
              specs.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("  [%zu] %s\n", i, hn::fuzz::describe(ops[i]).c_str());
  }
  std::vector<hn::fuzz::RunResult> runs;
  hn::fuzz::OracleReport report = hn::fuzz::run_sequence_seed(
      *opt.replay_seed, gen, specs, exec, &runs);
  if (opt.fuzz.profile) {
    hn::obs::ProfileReport merged;
    for (const hn::fuzz::RunResult& run : runs) merged.merge(run.profile);
    std::fprintf(stderr, "profile (replay self-time):\n%s",
                 hn::obs::render_profile(merged).c_str());
  }
  if (!opt.trace_out.empty() && !runs.empty()) {
    if (hn::sim::write_trace_file(runs[0].trace_blob, opt.trace_out)) {
      std::fprintf(stderr, "trace: %s trace written to %s\n",
                   specs[0].name.c_str(), opt.trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n",
                   opt.trace_out.c_str());
    }
  }
  if (!opt.timeseries_out.empty() && !runs.empty()) {
    if (hn::obs::write_timeseries_file(runs[0].timeseries_blob,
                                       opt.timeseries_out)) {
      std::fprintf(stderr, "timeseries: %s stream written to %s\n",
                   specs[0].name.c_str(), opt.timeseries_out.c_str());
    } else {
      std::fprintf(stderr, "timeseries: failed to write %s\n",
                   opt.timeseries_out.c_str());
    }
  }
  if (report.ok()) {
    std::puts("clean: all oracles passed");
    return 0;
  }
  for (const std::string& finding : report.findings) {
    std::printf("finding: %s\n", finding.c_str());
  }
  return 1;
}

/// Replay an explicit op program (the attack-corpus seed format) under
/// the standard matrix plus the three detector configurations, with both
/// oracles armed.  This is the repro path for scorecard and corpus
/// failures: the seed file pins the exact program, the run prints every
/// detector's alerts.
int replay_file(const Options& opt) {
  hn::Result<std::vector<hn::fuzz::Op>> loaded =
      hn::fuzz::load_ops_file(opt.replay_file);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().message().c_str());
    return 2;
  }
  const std::vector<hn::fuzz::Op>& ops = loaded.value();
  std::vector<hn::fuzz::FuzzConfigSpec> specs =
      hn::fuzz::build_matrix(opt.fuzz.full_matrix);
  for (hn::fuzz::FuzzConfigSpec& spec : hn::attacks::detector_configs()) {
    specs.push_back(spec);
  }
  for (auto& spec : specs) {
    spec.host_fast_path = opt.fuzz.host_fast_path;
    spec.decoupled_quantum = opt.fuzz.decoupled_quantum;
    spec.cores = opt.fuzz.cores;
  }
  hn::fuzz::ExecutorOptions exec{.inject_bypass = opt.fuzz.inject_bypass,
                                 .audit_stride = opt.fuzz.audit_stride};
  exec.capture_trace = !opt.trace_out.empty();
  exec.snapshot_boot = opt.fuzz.snapshot_boot;
  exec.profile = opt.fuzz.profile;
  exec.sample_cycles = opt.fuzz.sample_cycles;

  std::printf("replaying %s (%zu ops, %zu configurations)\n",
              opt.replay_file.c_str(), ops.size(), specs.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("  [%zu] %s\n", i, hn::fuzz::describe(ops[i]).c_str());
  }
  std::vector<hn::fuzz::RunResult> runs;
  runs.reserve(specs.size());
  for (const auto& spec : specs) {
    runs.push_back(hn::fuzz::run_sequence(spec, ops, exec));
    const hn::fuzz::RunResult& rec = runs.back();
    std::printf("  %-24s alerts=%llu events=%llu\n", rec.config.c_str(),
                static_cast<unsigned long long>(rec.fingerprint.alerts),
                static_cast<unsigned long long>(
                    rec.fingerprint.monitor_events));
    for (const hn::fuzz::AlertRecord& a : rec.alert_log) {
      std::printf("    alert %s by %s at cycle %llu\n",
                  hn::secapps::alert_kind_name(a.kind), a.detector.c_str(),
                  static_cast<unsigned long long>(a.at));
    }
  }
  if (opt.fuzz.profile) {
    hn::obs::ProfileReport merged;
    for (const hn::fuzz::RunResult& run : runs) merged.merge(run.profile);
    std::fprintf(stderr, "profile (replay self-time):\n%s",
                 hn::obs::render_profile(merged).c_str());
  }
  if (!opt.trace_out.empty() && !runs.empty()) {
    if (hn::sim::write_trace_file(runs[0].trace_blob, opt.trace_out)) {
      std::fprintf(stderr, "trace: %s trace written to %s\n",
                   specs[0].name.c_str(), opt.trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n",
                   opt.trace_out.c_str());
    }
  }
  if (!opt.timeseries_out.empty() && !runs.empty()) {
    if (hn::obs::write_timeseries_file(runs[0].timeseries_blob,
                                       opt.timeseries_out)) {
      std::fprintf(stderr, "timeseries: %s stream written to %s\n",
                   specs[0].name.c_str(), opt.timeseries_out.c_str());
    } else {
      std::fprintf(stderr, "timeseries: failed to write %s\n",
                   opt.timeseries_out.c_str());
    }
  }
  hn::fuzz::OracleReport report = hn::fuzz::check_sequence(ops, specs, runs);
  if (report.ok()) {
    std::puts("clean: all oracles passed");
    return 0;
  }
  for (const std::string& finding : report.findings) {
    std::printf("finding: %s\n", finding.c_str());
  }
  return 1;
}

/// One self-contained reproducer file per failing sequence: everything a
/// developer needs to replay a CI failure without the CI logs.
void write_failure_artifacts(const Options& opt, const CampaignResult& result) {
  std::error_code ec;
  std::filesystem::create_directories(opt.failure_dir, ec);
  if (ec) {
    std::fprintf(stderr, "failure-dir: cannot create %s: %s\n",
                 opt.failure_dir.c_str(), ec.message().c_str());
    return;
  }
  for (const hn::fuzz::SequenceFailure& f : result.failure_details) {
    const std::string path = opt.failure_dir + "/failure_seq" +
                             std::to_string(f.index) + ".txt";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "failure-dir: cannot write %s\n", path.c_str());
      continue;
    }
    std::fprintf(out,
                 "campaign seed: %llu\n"
                 "sequence index: %llu\n"
                 "sequence seed: %llu\n"
                 "replay: %s\n\n",
                 static_cast<unsigned long long>(opt.fuzz.seed),
                 static_cast<unsigned long long>(f.index),
                 static_cast<unsigned long long>(f.sequence_seed),
                 f.replay.c_str());
    std::fprintf(out, "findings (%zu):\n", f.findings.size());
    for (const std::string& finding : f.findings) {
      std::fprintf(out, "  %s\n", finding.c_str());
    }
    std::fprintf(out, "\nminimal reproducer (%zu ops):\n", f.ops.size());
    for (size_t i = 0; i < f.ops.size(); ++i) {
      std::fprintf(out, "  [%zu] %s\n", i,
                   hn::fuzz::describe(f.ops[i]).c_str());
    }
    if (!f.trace.empty()) {
      std::fprintf(out, "\nmachine trace (%s, step %llu):\n",
                   f.trace_config.c_str(),
                   static_cast<unsigned long long>(f.trace_step));
      for (const std::string& line : f.trace) {
        std::fprintf(out, "  %s\n", line.c_str());
      }
    }
    std::fclose(out);
    // Each reproducer ships with its causal trace (same basename, .trace):
    // `hypernel_trace report` shows the detection chains of the failure.
    if (!f.trace_blob.empty()) {
      const std::string trace_path = opt.failure_dir + "/failure_seq" +
                                     std::to_string(f.index) + ".trace";
      if (!hn::sim::write_trace_file(f.trace_blob, trace_path)) {
        std::fprintf(stderr, "failure-dir: cannot write %s\n",
                     trace_path.c_str());
      }
    }
  }
  std::fprintf(stderr, "failure artifacts: %zu file(s) in %s\n",
               result.failure_details.size(), opt.failure_dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.fuzz.jobs = 0;  // CLI default: hardware concurrency (library: 1)
  if (!parse(argc, argv, &opt)) {
    usage();
    return 2;
  }
  if (!opt.replay_file.empty()) return replay_file(opt);
  if (opt.replay_seed) return replay(opt);

  std::printf("campaign: seed=%llu sequences=%llu ops=%llu matrix=%s%s\n",
              static_cast<unsigned long long>(opt.fuzz.seed),
              static_cast<unsigned long long>(opt.fuzz.sequences),
              static_cast<unsigned long long>(opt.fuzz.ops),
              opt.fuzz.full_matrix ? "full" : "quick",
              opt.fuzz.inject_bypass ? " (bypass injected)" : "");
  CampaignResult result = hn::fuzz::run_campaign(opt.fuzz, &std::cout);
  // Host-side execution stats go to stderr: stdout stays byte-identical
  // across --jobs values (the determinism contract the CI pins).
  const hn::fuzz::CampaignExecStats& exec = result.exec;
  std::fprintf(stderr, "exec: jobs=%u wall=%.1fms throughput=%.1f seq/s%s\n",
               exec.jobs, exec.wall_ms,
               exec.wall_ms > 0
                   ? 1000.0 * static_cast<double>(result.sequences_run) /
                         exec.wall_ms
                   : 0.0,
               opt.fuzz.fail_fast && exec.sequences_skipped > 0
                   ? " (fail-fast cancelled)"
                   : "");
  for (size_t w = 0; w < exec.workers.size(); ++w) {
    std::fprintf(stderr, "  worker %zu: %llu jobs, busy %.1fms\n", w,
                 static_cast<unsigned long long>(exec.workers[w].jobs),
                 static_cast<double>(exec.workers[w].busy_ns) / 1e6);
  }
  if (opt.fuzz.profile) {
    // Host wall clock — stderr, like the exec stats, so stdout stays
    // byte-identical across hosts and job counts.
    std::fprintf(stderr, "profile (campaign self-time):\n%s",
                 hn::obs::render_profile(result.profile).c_str());
    if (!opt.metrics_out.empty()) {
      // Fold the report into the exported snapshot as profile.* counters,
      // so `hypernel_trace profile` can render it from the JSON.
      hn::obs::Registry reg;
      reg.set_enabled(true);
      hn::obs::publish_profile(result.profile, reg);
      result.metrics.merge(reg.snapshot());
    }
  }
  std::printf("sequences: %llu  failures: %llu  corpus digest: %016llx\n",
              static_cast<unsigned long long>(result.sequences_run),
              static_cast<unsigned long long>(result.failures),
              static_cast<unsigned long long>(result.corpus_digest));
  if (!opt.failure_dir.empty() && !result.failure_details.empty()) {
    write_failure_artifacts(opt, result);
  }
  if (!opt.metrics_out.empty()) {
    if (hn::obs::write_metrics_file(result.metrics, opt.metrics_out)) {
      std::fprintf(stderr, "metrics: %zu entries written to %s\n",
                   result.metrics.entries.size(), opt.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n",
                   opt.metrics_out.c_str());
      return 2;
    }
  }
  if (!opt.trace_out.empty()) {
    if (hn::sim::write_trace_file(result.trace_blob, opt.trace_out)) {
      std::fprintf(stderr, "trace: campaign trace written to %s\n",
                   opt.trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n",
                   opt.trace_out.c_str());
      return 2;
    }
  }
  if (!opt.timeseries_out.empty()) {
    if (hn::obs::write_timeseries_file(result.timeseries_blob,
                                       opt.timeseries_out)) {
      std::fprintf(stderr, "timeseries: campaign stream written to %s\n",
                   opt.timeseries_out.c_str());
    } else {
      std::fprintf(stderr, "timeseries: failed to write %s\n",
                   opt.timeseries_out.c_str());
      return 2;
    }
  }
  return result.ok() ? 0 : 1;
}
