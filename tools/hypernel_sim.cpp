// hypernel-sim: command-line driver for the Hypernel simulation.
//
//   hypernel-sim lmbench  [--mode=native|kvm|hypernel] [--iters=N]
//   hypernel-sim app      --name=<whetstone|dhrystone|untar|iozone|apache>
//                         [--mode=...] [--scale=X] [--seed=N]
//                         [--monitor=none|word|object]
//   hypernel-sim attack   --scenario=<cred|dentry|transient|dma>
//   hypernel-sim audit    (forged-hypercall storm + invariant audit)
//   hypernel-sim info     (configuration and timing-model dump)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/hvc_abi.h"
#include "common/rng.h"
#include "hypernel/system.h"
#include "obs/export.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/object_monitor.h"
#include "secapps/rootkit_detector.h"
#include "sim/dma_device.h"
#include "sim/iommu.h"
#include "sim/snapshot.h"
#include "sim/trace_io.h"
#include "workloads/apps.h"
#include "workloads/lmbench.h"

namespace {

using namespace hn;

struct Options {
  std::string command;
  hypernel::Mode mode = hypernel::Mode::kHypernel;
  unsigned iters = 32;
  std::string name = "untar";
  double scale = 0.2;
  u64 seed = 0x90DA'5EED;
  std::string monitor = "none";
  std::string scenario = "cred";
  bool trace = false;
  std::string metrics_out;
  std::string trace_out;
  Cycles sample_cycles = 0;    // 0 = sampling off (unless --timeseries-out)
  std::string timeseries_out;
  std::string save_state;  // write a machine snapshot at command exit
  std::string load_state;  // restore a machine snapshot right after boot
};

const char* arg_value(const char* arg, const char* key) {
  const size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--mode")) {
      if (std::strcmp(v, "native") == 0) {
        opt.mode = hypernel::Mode::kNative;
      } else if (std::strcmp(v, "kvm") == 0) {
        opt.mode = hypernel::Mode::kKvmGuest;
      } else if (std::strcmp(v, "hypernel") == 0) {
        opt.mode = hypernel::Mode::kHypernel;
      } else {
        return false;
      }
    } else if (const char* v2 = arg_value(argv[i], "--iters")) {
      opt.iters = static_cast<unsigned>(std::atoi(v2));
    } else if (const char* v3 = arg_value(argv[i], "--name")) {
      opt.name = v3;
    } else if (const char* v4 = arg_value(argv[i], "--scale")) {
      opt.scale = std::atof(v4);
    } else if (const char* v5 = arg_value(argv[i], "--seed")) {
      opt.seed = std::strtoull(v5, nullptr, 0);
    } else if (const char* v6 = arg_value(argv[i], "--monitor")) {
      opt.monitor = v6;
    } else if (const char* v7 = arg_value(argv[i], "--scenario")) {
      opt.scenario = v7;
    } else if (const char* v8 = arg_value(argv[i], "--metrics-out")) {
      opt.metrics_out = v8;
    } else if (const char* v9 = arg_value(argv[i], "--trace-out")) {
      opt.trace_out = v9;
    } else if (const char* vs = arg_value(argv[i], "--sample-cycles")) {
      opt.sample_cycles = std::strtoull(vs, nullptr, 0);
    } else if (const char* vt = arg_value(argv[i], "--timeseries-out")) {
      opt.timeseries_out = vt;
    } else if (std::strcmp(argv[i], "--sample-cycles") == 0) {
      opt.sample_cycles = obs::kDefaultSampleCycles;
    } else if (const char* v10 = arg_value(argv[i], "--save-state")) {
      opt.save_state = v10;
    } else if (const char* v11 = arg_value(argv[i], "--load-state")) {
      opt.load_state = v11;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

std::unique_ptr<hypernel::System> build(const Options& opt, bool want_mbm) {
  hypernel::SystemConfig cfg;
  cfg.mode = opt.mode;
  cfg.enable_mbm = want_mbm && opt.mode != hypernel::Mode::kKvmGuest;
  // The flight recorder interleaves obs spans on the exported timeline,
  // and spans only record when the registry is enabled.
  cfg.metrics = !opt.metrics_out.empty() || !opt.trace_out.empty();
  // --timeseries-out without an explicit interval samples at the default.
  cfg.machine.sample_cycles =
      opt.sample_cycles != 0
          ? opt.sample_cycles
          : (opt.timeseries_out.empty() ? 0 : obs::kDefaultSampleCycles);
  auto r = hypernel::System::create(cfg);
  if (!r.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 r.status().message().c_str());
    std::exit(1);
  }
  if (!opt.trace_out.empty()) {
    r.value()->machine().trace().set_enabled(true);
  }
  if (!opt.load_state.empty()) {
    std::vector<u8> blob;
    if (!sim::read_snapshot_file(opt.load_state, blob)) {
      std::fprintf(stderr, "load-state: cannot read %s\n",
                   opt.load_state.c_str());
      std::exit(1);
    }
    sim::Snapshot snap;
    if (Status s = sim::unpack_snapshot(blob, snap); !s.ok()) {
      std::fprintf(stderr, "load-state: %s\n", s.message().c_str());
      std::exit(1);
    }
    if (Status s = r.value()->restore_state(snap); !s.ok()) {
      std::fprintf(stderr, "load-state: %s\n", s.message().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "load-state: restored %s (%llu populated page(s))\n",
                 opt.load_state.c_str(),
                 (unsigned long long)snap.pages.populated_count());
  }
  return std::move(r).value();
}

/// Write the machine snapshot when --save-state was given.
bool dump_state(const Options& opt, hypernel::System& sys) {
  if (opt.save_state.empty()) return true;
  const sim::Snapshot snap = sys.save_state();
  const std::vector<u8> blob = sim::pack_snapshot(snap);
  if (!sim::write_snapshot_file(blob, opt.save_state)) {
    std::fprintf(stderr, "save-state: failed to write %s\n",
                 opt.save_state.c_str());
    return false;
  }
  std::fprintf(stderr, "save-state: %zu byte(s) written to %s\n", blob.size(),
               opt.save_state.c_str());
  return true;
}

/// Write the system's metrics snapshot when --metrics-out was given.
/// Returns false (and complains) on I/O failure.
bool dump_metrics(const Options& opt, hypernel::System& sys) {
  if (opt.metrics_out.empty()) return true;
  const obs::Snapshot snap = sys.metrics_snapshot();
  if (!obs::write_metrics_file(snap, opt.metrics_out)) {
    std::fprintf(stderr, "metrics: failed to write %s\n",
                 opt.metrics_out.c_str());
    return false;
  }
  std::fprintf(stderr, "metrics: %zu entries written to %s\n",
               snap.entries.size(), opt.metrics_out.c_str());
  return true;
}

/// Write the flight-recorder trace when --trace-out was given.
bool dump_trace(const Options& opt, hypernel::System& sys) {
  if (opt.trace_out.empty()) return true;
  const std::vector<u8> blob = sim::capture_trace(sys.machine());
  if (!sim::write_trace_file(blob, opt.trace_out)) {
    std::fprintf(stderr, "trace: failed to write %s\n",
                 opt.trace_out.c_str());
    return false;
  }
  std::fprintf(stderr, "trace: %llu event(s) written to %s\n",
               (unsigned long long)sys.machine().trace().size(),
               opt.trace_out.c_str());
  return true;
}

/// Write the sampled time-series stream when --timeseries-out was given.
bool dump_timeseries(const Options& opt, hypernel::System& sys) {
  if (opt.timeseries_out.empty()) return true;
  const std::vector<u8> blob = sim::capture_timeseries(sys.machine());
  if (!obs::write_timeseries_file(blob, opt.timeseries_out)) {
    std::fprintf(stderr, "timeseries: failed to write %s\n",
                 opt.timeseries_out.c_str());
    return false;
  }
  std::fprintf(stderr, "timeseries: %zu sample(s) x %zu track(s) written to %s\n",
               sys.machine().timeseries().sample_count(),
               sys.machine().timeseries().track_count(),
               opt.timeseries_out.c_str());
  return true;
}

/// All exit artifacts (--metrics-out / --trace-out / --timeseries-out /
/// --save-state), in one place.
bool dump_outputs(const Options& opt, hypernel::System& sys) {
  const bool metrics_ok = dump_metrics(opt, sys);
  const bool trace_ok = dump_trace(opt, sys);
  const bool timeseries_ok = dump_timeseries(opt, sys);
  const bool state_ok = dump_state(opt, sys);
  return metrics_ok && trace_ok && timeseries_ok && state_ok;
}

int cmd_lmbench(const Options& opt) {
  auto sys = build(opt, false);
  std::printf("LMbench kernel operations, %s, %u iterations\n",
              hypernel::mode_name(opt.mode), opt.iters);
  workloads::LmbenchSuite suite(*sys, opt.iters);
  for (const auto& r : suite.run_all()) {
    std::printf("  %-16s %8.2f us\n", r.name.c_str(), r.us);
  }
  return dump_outputs(opt, *sys) ? 0 : 2;
}

int cmd_app(const Options& opt) {
  const bool want_monitor = opt.monitor != "none";
  if (want_monitor && opt.mode != hypernel::Mode::kHypernel) {
    std::fprintf(stderr, "--monitor requires --mode=hypernel\n");
    return 1;
  }
  auto sys = build(opt, want_monitor);
  std::unique_ptr<secapps::ObjectIntegrityMonitor> monitor;
  if (want_monitor) {
    monitor = std::make_unique<secapps::ObjectIntegrityMonitor>(
        *sys, opt.monitor == "word"
                  ? secapps::Granularity::kSensitiveFields
                  : secapps::Granularity::kWholeObject);
    if (!monitor->install().ok()) {
      std::fprintf(stderr, "monitor install failed\n");
      return 1;
    }
  }
  workloads::AppParams p;
  p.scale = opt.scale;
  p.seed = opt.seed;
  const workloads::AppResult r =
      workloads::run_app_by_name(*sys, opt.name, p);
  std::printf("%s on %s: %.0f us simulated (%.2f ms)\n", r.name.c_str(),
              hypernel::mode_name(opt.mode), r.us, r.us / 1000.0);
  if (monitor) {
    std::printf("monitor(%s): %llu events, %zu alerts; MBM detections %llu, "
                "IRQs %llu\n",
                opt.monitor.c_str(),
                (unsigned long long)monitor->stats().events_total,
                monitor->alerts().size(),
                (unsigned long long)sys->mbm()->stats().detections,
                (unsigned long long)sys->mbm()->stats().irqs_raised);
  }
  return dump_outputs(opt, *sys) ? 0 : 2;
}

int cmd_attack(const Options& opt) {
  Options hy = opt;
  hy.mode = hypernel::Mode::kHypernel;
  auto sys = build(hy, true);
  secapps::RootkitDetector detector(*sys);
  if (!detector.install().ok()) return 1;
  if (opt.trace) sys->machine().trace().set_enabled(true);
  kernel::Kernel& k = sys->kernel();
  k.sys_setuid(1000);
  k.sys_creat("/target");
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "target");
  const VirtAddr cred = k.procs().current().cred;

  if (opt.scenario == "cred") {
    sys->machine().write64(cred + kernel::CredLayout::kUid * kWordSize, 0);
  } else if (opt.scenario == "dentry") {
    sys->machine().write64(dva + kernel::DentryLayout::kOp * kWordSize,
                           0xE71100);
  } else if (opt.scenario == "transient") {
    sys->machine().write64(cred + kernel::CredLayout::kEuid * kWordSize, 0);
    sys->machine().write64(cred + kernel::CredLayout::kEuid * kWordSize, 1000);
  } else if (opt.scenario == "dma") {
    sim::Iommu iommu;  // attacker-owned device, IOMMU left in bypass
    sim::DmaDevice evil(sys->machine(), iommu, 13);
    evil.write64(kernel::virt_to_phys(dva) +
                     kernel::DentryLayout::kInode * kWordSize,
                 0x1337);
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", opt.scenario.c_str());
    return 1;
  }

  if (opt.trace) {
    std::printf("--- architectural trace ---\n");
    sys->machine().trace().dump(stdout,
                                sys->machine().timing().cpu_ghz * 1000.0);
  }
  std::printf("scenario '%s': %zu alert(s)\n", opt.scenario.c_str(),
              detector.alerts().size());
  for (const secapps::Alert& a : detector.alerts()) {
    std::printf("  [%s] %s (word %llu: %llx -> %llx)\n",
                secapps::alert_kind_name(a.kind),
                a.reason.c_str(), (unsigned long long)a.word_offset,
                (unsigned long long)a.old_value,
                (unsigned long long)a.new_value);
  }
  if (!dump_outputs(opt, *sys)) return 2;
  return detector.alerts().empty() ? 1 : 0;
}

int cmd_audit(const Options& opt) {
  Options hy = opt;
  hy.mode = hypernel::Mode::kHypernel;
  auto sys = build(hy, false);
  kernel::Kernel& k = sys->kernel();
  SplitMix64 rng(opt.seed);
  u64 accepted = 0;
  u64 denied = 0;
  for (int i = 0; i < 5000; ++i) {
    const PhysAddr table =
        page_align_down(rng.next_below(sys->machine().phys().size()));
    const u64 desc = rng.next();
    if (sys->machine().hvc(hvc::kPtWrite,
                           {table, rng.next_below(kPtEntries), desc}) ==
        hvc::kOk) {
      ++accepted;
    } else {
      ++denied;
    }
  }
  const auto violations = sys->hypersec()->audit();
  std::printf("forged hypercall storm: %llu accepted, %llu denied\n",
              (unsigned long long)accepted, (unsigned long long)denied);
  std::printf("invariant audit: %zu violation(s)\n", violations.size());
  for (const std::string& v : violations) std::printf("  %s\n", v.c_str());
  std::printf("kernel alive: %s\n",
              k.sys_creat("/post-storm").ok() ? "yes" : "no");
  if (!dump_outputs(opt, *sys)) return 2;
  return violations.empty() ? 0 : 1;
}

int cmd_info(const Options& opt) {
  auto sys = build(opt, opt.mode == hypernel::Mode::kHypernel);
  const TimingModel& t = sys->machine().timing();
  std::printf("mode: %s\n", hypernel::mode_name(opt.mode));
  std::printf("DRAM: %llu MiB, secure space: %llu MiB @ %#llx\n",
              (unsigned long long)(sys->machine().phys().size() >> 20),
              (unsigned long long)(sys->machine().secure_size() >> 20),
              (unsigned long long)sys->machine().secure_base());
  std::printf("clock: %.2f GHz; L1 hit %llu cy, fill %llu cy, NC %llu cy\n",
              t.cpu_ghz, (unsigned long long)t.l1_hit,
              (unsigned long long)t.l1_miss_fill,
              (unsigned long long)t.noncacheable_access);
  std::printf("HVC %llu cy, trap %llu cy, VM exit+entry %llu cy\n",
              (unsigned long long)t.hvc_roundtrip,
              (unsigned long long)t.sysreg_trap,
              (unsigned long long)(t.vm_exit + t.vm_entry));
  std::printf("kernel PT pages: %llu; boot cycles: %llu\n",
              (unsigned long long)sys->kernel().kpt().pt_page_count(),
              (unsigned long long)sys->machine().account().cycles());
  if (sys->hypersec() != nullptr) {
    std::printf("hypersec: engaged (verifier checked %llu writes so far)\n",
                (unsigned long long)
                    sys->hypersec()->verifier().stats().checked);
  }
  return dump_outputs(opt, *sys) ? 0 : 2;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: hypernel-sim <command> [options]\n"
      "  lmbench [--mode=native|kvm|hypernel] [--iters=N]\n"
      "  app     --name=<whetstone|dhrystone|untar|iozone|apache>\n"
      "          [--mode=...] [--scale=X] [--seed=N] [--monitor=none|word|object]\n"
      "  attack  --scenario=<cred|dentry|transient|dma> [--trace]\n"
      "  audit   [--seed=N]\n"
      "  info    [--mode=...]\n"
      "  any command also accepts --metrics-out=F (JSON, or CSV when F\n"
      "  ends in .csv): observability metrics of the run,\n"
      "  --sample-cycles[=N] / --timeseries-out=F: sample every enrolled\n"
      "  time-series track every N simulated cycles (default 65536) and\n"
      "  write the HNTSERIE stream to F (render with hypernel_trace\n"
      "  timeline; also embedded in --trace-out traces), and\n"
      "  --save-state=F / --load-state=F: write the machine snapshot at\n"
      "  exit / restore one right after boot (the configuration must match\n"
      "  the one the snapshot was taken from)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (opt.command == "lmbench") return cmd_lmbench(opt);
  if (opt.command == "app") return cmd_app(opt);
  if (opt.command == "attack") return cmd_attack(opt);
  if (opt.command == "audit") return cmd_audit(opt);
  if (opt.command == "info") return cmd_info(opt);
  usage();
  return 2;
}
