// hypernel_trace: offline renderer for causal flight-recorder traces
// (the binary files --trace-out produces; format in sim/trace_io.h).
//
//   hypernel_trace report FILE              detection-latency attribution
//   hypernel_trace timeline FILE            sampled load timeline (v3 trace
//                                           or bare --timeseries-out stream)
//   hypernel_trace export --chrome FILE     Chrome trace-event JSON
//                         [--out=F]         (loads in Perfetto)
//   hypernel_trace dump FILE [--filter=K]   one line per event (K = kind name)
//   hypernel_trace diff A B                 first divergence + per-kind counts
//   hypernel_trace profile FILE             self-time table from a metrics
//                                           JSON (--profile + --metrics-out)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "sim/trace_io.h"
#include "sim/trace_report.h"

namespace {

using namespace hn;

const char* arg_value(const char* arg, const char* key) {
  const size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

bool load(const std::string& path, sim::TraceData& data) {
  std::vector<u8> blob;
  if (!sim::read_trace_file(path, blob)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  if (const Status s = sim::parse_trace(blob, data); !s.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), s.message().c_str());
    return false;
  }
  return true;
}

int cmd_report(const std::string& path) {
  sim::TraceData data;
  if (!load(path, data)) return 1;
  const sim::AttributionReport report = sim::build_attribution(data);
  const std::string text = sim::render_attribution(report, data.cpu_ghz);
  std::fputs(text.c_str(), stdout);
  return 0;
}

int cmd_export(const std::string& path, const std::string& out_path) {
  sim::TraceData data;
  if (!load(path, data)) return 1;
  const std::string json = sim::export_chrome_json(data);
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    if (f != nullptr) std::fclose(f);
    return 1;
  }
  std::fclose(f);
  std::fprintf(stderr, "chrome trace written to %s\n", out_path.c_str());
  return 0;
}

int cmd_timeline(const std::string& path) {
  // Accepts either a full HNTRACE v3 trace (time-series section embedded)
  // or a bare HNTSERIE stream (--timeseries-out artifact).
  std::vector<u8> blob;
  if (!sim::read_trace_file(path, blob)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  sim::TraceData data;
  const Status trace_status = sim::parse_trace(blob, data);
  if (!trace_status.ok()) {
    data = sim::TraceData{};
    if (const Status s = obs::parse_timeseries(blob, data.timeseries);
        !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   trace_status.message().c_str());
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.message().c_str());
      return 1;
    }
    data.cpu_ghz = data.timeseries.cpu_ghz;
  }
  std::fputs(sim::render_timeline(data).c_str(), stdout);
  return 0;
}

int cmd_dump(const std::string& path, const std::string& filter) {
  sim::TraceData data;
  if (!load(path, data)) return 1;
  const std::string text = sim::render_dump(data, filter);
  std::fputs(text.c_str(), stdout);
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  sim::TraceData a;
  sim::TraceData b;
  if (!load(a_path, a) || !load(b_path, b)) return 1;
  const std::string text = sim::render_diff(a, b);
  std::fputs(text.c_str(), stdout);
  // Exit 0 when identical, 1 when different (diff-like contract).
  return text.rfind("traces identical", 0) == 0 ? 0 : 1;
}

/// Pull one counter value out of an exported metrics JSON.  The format
/// is the fixed one-entry-per-line layout obs::to_json emits, so a
/// string scan is exact — no JSON parser needed (or available).
bool json_counter(const std::string& text, const std::string& path,
                  u64* value) {
  const std::string needle = "\"path\": \"" + path + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t line_end = text.find('\n', at);
  const size_t v = text.find("\"value\": ", at);
  if (v == std::string::npos || v > line_end) return false;
  *value = std::strtoull(text.c_str() + v + 9, nullptr, 10);
  return true;
}

int cmd_profile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[4096];
  for (size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);

  obs::ProfileReport report;
  bool any = false;
  for (unsigned b = 0; b < obs::ProfileReport::kBuckets; ++b) {
    const char* name =
        obs::profile_bucket_name(static_cast<obs::ProfileBucket>(b));
    any |= json_counter(text, std::string("profile.self_ns.") + name,
                        &report.self_ns[b]);
    any |= json_counter(text, std::string("profile.scopes.") + name,
                        &report.scopes[b]);
  }
  if (!any) {
    std::fprintf(stderr,
                 "%s has no profile.* counters (produce one with\n"
                 "  hypernel_fuzz --profile --metrics-out=%s ...)\n",
                 path.c_str(), path.c_str());
    return 1;
  }
  std::fputs(obs::render_profile(report).c_str(), stdout);
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: hypernel_trace <command> [options]\n"
      "  report FILE              detection-latency attribution report\n"
      "  timeline FILE            per-window load timeline (FILE: a v3\n"
      "                           trace or a --timeseries-out stream)\n"
      "  export --chrome FILE [--out=F]\n"
      "                           Chrome trace-event JSON (Perfetto)\n"
      "  dump FILE [--filter=K]   list events (K: kind name, e.g. buswrite)\n"
      "  diff A B                 compare two traces (exit 1 on difference)\n"
      "  profile FILE             render the self-time table from a metrics\n"
      "                           JSON (hypernel_fuzz --profile "
      "--metrics-out=FILE)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  // Collect positional args and recognized flags after the command.
  std::vector<std::string> pos;
  std::string out_path;
  std::string filter;
  bool chrome = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chrome") == 0) {
      chrome = true;
    } else if (const char* v = arg_value(argv[i], "--out")) {
      out_path = v;
    } else if (const char* v2 = arg_value(argv[i], "--filter")) {
      filter = v2;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage();
      return 2;
    } else {
      pos.emplace_back(argv[i]);
    }
  }

  if (cmd == "report" && pos.size() == 1) return cmd_report(pos[0]);
  if (cmd == "timeline" && pos.size() == 1) return cmd_timeline(pos[0]);
  if (cmd == "export" && pos.size() == 1) {
    if (!chrome) {
      std::fprintf(stderr, "export: only --chrome is supported\n");
      return 2;
    }
    return cmd_export(pos[0], out_path);
  }
  if (cmd == "dump" && pos.size() == 1) return cmd_dump(pos[0], filter);
  if (cmd == "diff" && pos.size() == 2) return cmd_diff(pos[0], pos[1]);
  if (cmd == "profile" && pos.size() == 1) return cmd_profile(pos[0]);
  usage();
  return 2;
}
