// Per-attack regression tests over the rootkit-scenario library: every
// scenario must be detected by its declared detector with its declared
// alert classification, the setup phase must be silent, and the benign
// workload must raise zero alerts under every detector configuration.
// These are the scorecard's acceptance gates pinned one scenario at a
// time, so a regression names the exact (scenario, detector) pair.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "attacks/scorecard.h"
#include "fuzz/executor.h"

namespace hn::attacks {
namespace {

using fuzz::FuzzConfigSpec;
using fuzz::RunResult;

const FuzzConfigSpec* config_named(const std::string& name) {
  static const std::vector<FuzzConfigSpec> specs = detector_configs();
  for (const FuzzConfigSpec& s : specs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(AttackLibrary, GroundTruthIsWellFormed) {
  const std::vector<AttackScenario>& lib = scenario_library();
  ASSERT_FALSE(lib.empty());
  std::set<std::string> names;
  std::set<AttackFamily> families;
  for (const AttackScenario& s : lib) {
    SCOPED_TRACE(s.name);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate slug";
    ASSERT_LT(static_cast<unsigned>(s.family),
              static_cast<unsigned>(AttackFamily::kCount));
    families.insert(s.family);
    EXPECT_STRNE(family_name(s.family), "?");
    EXPECT_FALSE(s.description.empty());
    ASSERT_FALSE(s.ops.empty());
    ASSERT_FALSE(s.tamper_steps.empty());
    for (const u64 step : s.tamper_steps) EXPECT_LT(step, s.ops.size());
    EXPECT_NE(config_named(s.intended_detector), nullptr)
        << "unknown detector " << s.intended_detector;
    EXPECT_NE(s.expected_alert, secapps::AlertKind::kCount);
    EXPECT_EQ(find_scenario(s.name), &s);
  }
  // Every family in the threat model is represented.
  EXPECT_EQ(families.size(), static_cast<size_t>(AttackFamily::kCount));
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_EQ(scenario_pool().size(), lib.size());
}

TEST(AttackRegression, EveryScenarioDetectedByIntendedDetector) {
  for (const AttackScenario& s : scenario_library()) {
    SCOPED_TRACE(s.name);
    const FuzzConfigSpec* spec = config_named(s.intended_detector);
    ASSERT_NE(spec, nullptr);
    const RunResult rec = fuzz::run_sequence(*spec, s.ops);
    ASSERT_FALSE(rec.build_failed) << rec.build_error;
    // The detection-completeness oracle found every expected alert.
    for (const std::string& v : rec.violations) ADD_FAILURE() << v;

    // The tamper instant: the attack record of the first declared
    // tamper step.
    const fuzz::AttackRecord* tamper = nullptr;
    for (const fuzz::AttackRecord& a : rec.attacks) {
      if (a.step == s.tamper_steps.front()) {
        tamper = &a;
        break;
      }
    }
    ASSERT_NE(tamper, nullptr) << "tamper op never performed its write";

    bool expected_seen = false;
    for (const fuzz::AlertRecord& a : rec.alert_log) {
      EXPECT_GE(a.at, tamper->at)
          << "alert during benign setup: " << secapps::alert_kind_name(a.kind)
          << " from " << a.detector;
      if (a.detector == s.intended_detector && a.kind == s.expected_alert &&
          a.at >= tamper->at) {
        expected_seen = true;
      }
    }
    EXPECT_TRUE(expected_seen)
        << "missing " << secapps::alert_kind_name(s.expected_alert) << " from "
        << s.intended_detector;
  }
}

TEST(AttackRegression, BenignWorkloadRaisesNoAlerts) {
  const std::vector<fuzz::Op> ops = benign_workload();
  ASSERT_FALSE(ops.empty());
  for (const FuzzConfigSpec& spec : detector_configs()) {
    SCOPED_TRACE(spec.name);
    const RunResult rec = fuzz::run_sequence(spec, ops);
    ASSERT_FALSE(rec.build_failed) << rec.build_error;
    for (const fuzz::AlertRecord& a : rec.alert_log) {
      ADD_FAILURE() << "false positive: " << secapps::alert_kind_name(a.kind)
                    << " from " << a.detector << " at cycle " << a.at;
    }
    EXPECT_EQ(rec.fingerprint.alerts, 0u);
    for (const std::string& v : rec.violations) ADD_FAILURE() << v;
  }
}

}  // namespace
}  // namespace hn::attacks
