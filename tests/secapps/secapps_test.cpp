// Security-application tests: object monitor registration lifecycles,
// event attribution, both granularities, and the detection policies
// (cred escalation, dentry hijack) of footnote 2.
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/system.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/cfi_monitor.h"
#include "secapps/invariant_checker.h"
#include "secapps/object_monitor.h"
#include "secapps/rootkit_detector.h"
#include "sim/dma_device.h"

namespace hn::secapps {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;
using kernel::CredLayout;
using kernel::DentryLayout;

std::unique_ptr<System> make_system() {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = true;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(ObjectMonitor, RequiresHypernelMode) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  ObjectIntegrityMonitor monitor(*sys.value(), Granularity::kWholeObject);
  EXPECT_FALSE(monitor.install().ok());
}

TEST(ObjectMonitor, RegistersLiveCredsAtInstall) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kWholeObject);
  ASSERT_TRUE(monitor.install().ok());
  // The init process cred (and the monitor bookkeeping) is registered.
  EXPECT_GE(monitor.stats().objects_registered, 1u);
  EXPECT_GT(sys->hypersec()->stats().mon_registers, 0u);
}

TEST(ObjectMonitor, SensitiveCredWriteRaisesEvent) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_total;
  ASSERT_TRUE(sys->kernel().sys_setuid(1000).ok());
  EXPECT_GT(monitor.stats().events_total, before);
  EXPECT_GT(monitor.stats().events_cred, 0u);
}

TEST(ObjectMonitor, RefcountChurnInvisibleAtWordGranularity) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields,
                                 /*watch_cred=*/true, /*watch_dentry=*/false);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_total;
  // cred_get/cred_put only touch the usage word: not sensitive.
  kernel::ProcessManager& procs = sys->kernel().procs();
  for (int i = 0; i < 10; ++i) {
    procs.cred_get(procs.current().cred);
    procs.cred_put(procs.current().cred);
  }
  EXPECT_EQ(monitor.stats().events_total, before);
}

TEST(ObjectMonitor, RefcountChurnVisibleAtWholeObject) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kWholeObject,
                                 /*watch_cred=*/true, /*watch_dentry=*/false);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_total;
  kernel::ProcessManager& procs = sys->kernel().procs();
  for (int i = 0; i < 10; ++i) {
    procs.cred_get(procs.current().cred);
    procs.cred_put(procs.current().cred);
  }
  EXPECT_EQ(monitor.stats().events_total - before, 20u);
}

TEST(ObjectMonitor, DentryInstantiationMonitored) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields,
                                 /*watch_cred=*/false, /*watch_dentry=*/true);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_dentry;
  ASSERT_TRUE(sys->kernel().sys_creat("/watched").ok());
  // d_instantiate writes d_inode + d_flags after the d_alloc hook: exactly
  // two sensitive events per creation.
  EXPECT_EQ(monitor.stats().events_dentry - before, 2u);
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(ObjectMonitor, UnregisteredAfterFree) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kWholeObject,
                                 /*watch_cred=*/false, /*watch_dentry=*/true);
  ASSERT_TRUE(monitor.install().ok());
  ASSERT_TRUE(sys->kernel().sys_creat("/gone").ok());
  ASSERT_TRUE(sys->kernel().sys_unlink("/gone").ok());
  EXPECT_EQ(monitor.stats().objects_registered,
            monitor.stats().objects_unregistered);
  // A fresh object reusing the slab slot starts unmonitored until its own
  // registration — no stale-bitmap leaks (bits cleared on unregister).
  const u64 events = monitor.stats().events_total;
  ASSERT_TRUE(sys->kernel().sys_creat("/fresh").ok());
  EXPECT_GT(monitor.stats().events_total, events);  // its own registration
}

TEST(ObjectMonitor, LegitimateOperationsRaiseNoAlerts) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_mkdir("/dir").ok());
  ASSERT_TRUE(k.sys_creat("/dir/a").ok());
  ASSERT_TRUE(k.sys_rename("/dir/a", "/dir/b").ok());
  ASSERT_TRUE(k.sys_unlink("/dir/b").ok());
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  kernel::Task* child = k.procs().find(pid.value());
  k.procs().switch_to(*child);
  ASSERT_TRUE(k.sys_execve().ok());
  ASSERT_TRUE(k.sys_exit().ok());
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(ObjectMonitor, DetectsDirectCredEscalation) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  // Run as a non-root identity first.
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  ASSERT_TRUE(monitor.alerts().empty());
  // The attack: a compromised kernel path writes uid=0 directly into the
  // cred object (footnote 2's privilege escalation).
  const VirtAddr cred = k.procs().current().cred;
  ASSERT_TRUE(
      sys->machine().write64(cred + CredLayout::kEuid * kWordSize, 0).ok);
  ASSERT_FALSE(monitor.alerts().empty());
  EXPECT_EQ(monitor.alerts()[0].kind, AlertKind::kCredIdLowered);
  EXPECT_EQ(monitor.alerts()[0].word_offset, CredLayout::kEuid);
  EXPECT_EQ(monitor.alerts()[0].new_value, 0u);
}

TEST(ObjectMonitor, DetectsCapabilityEscalation) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  const VirtAddr cred = k.procs().current().cred;
  // Give the task a partial capability set, then forge full caps.
  ASSERT_TRUE(sys->machine()
                  .write64(cred + CredLayout::kCapEffective * kWordSize, 0x4)
                  .ok);
  ASSERT_TRUE(sys->machine()
                  .write64(cred + CredLayout::kCapEffective * kWordSize,
                           ~u64{0})
                  .ok);
  EXPECT_TRUE(has_alert(monitor.alerts(), AlertKind::kCredCapEscalated));
  EXPECT_FALSE(has_alert(monitor.alerts(), AlertKind::kDentryOpsHooked));
}

TEST(ObjectMonitor, DetectsDentryOpsHook) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/hooked").ok());
  const VirtAddr dva =
      k.vfs().cached_dentry(k.vfs().root_ino(), "hooked");
  ASSERT_NE(dva, 0u);
  // Rootkit hooks the dentry ops vtable.
  ASSERT_TRUE(sys->machine()
                  .write64(dva + DentryLayout::kOp * kWordSize, 0xE711)
                  .ok);
  EXPECT_TRUE(has_alert(monitor.alerts(), AlertKind::kDentryOpsHooked));
  EXPECT_FALSE(has_alert(monitor.alerts(), AlertKind::kDentryInodeHijacked));
}

TEST(ObjectMonitor, DetectsDentryInodeHijack) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  Result<u64> victim = k.sys_creat("/victim");
  Result<u64> evil = k.sys_creat("/evil");
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(evil.ok());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "victim");
  ASSERT_NE(dva, 0u);
  // Redirect the victim's dentry at the attacker's inode.
  ASSERT_TRUE(sys->machine()
                  .write64(dva + DentryLayout::kInode * kWordSize, evil.value())
                  .ok);
  EXPECT_TRUE(has_alert(monitor.alerts(), AlertKind::kDentryInodeHijacked));
  EXPECT_FALSE(has_alert(monitor.alerts(), AlertKind::kDentryOpsHooked));
}

TEST(AlertClassification, KindNamesAreStableSlugs) {
  EXPECT_STREQ(alert_kind_name(AlertKind::kCredIdLowered), "cred-id-lowered");
  EXPECT_STREQ(alert_kind_name(AlertKind::kCredCapEscalated),
               "cred-cap-escalated");
  EXPECT_STREQ(alert_kind_name(AlertKind::kDentryOpsHooked),
               "dentry-ops-hooked");
  EXPECT_STREQ(alert_kind_name(AlertKind::kDentryInodeHijacked),
               "dentry-inode-hijacked");
  EXPECT_STREQ(alert_kind_name(AlertKind::kPtPageTampered),
               "pt-page-tampered");
  EXPECT_STREQ(alert_kind_name(AlertKind::kPtInvariantViolated),
               "pt-invariant-violated");
  EXPECT_STREQ(alert_kind_name(AlertKind::kVectorPatched), "vector-patched");
  EXPECT_STREQ(alert_kind_name(AlertKind::kSyscallPatched), "syscall-patched");
  EXPECT_STREQ(alert_kind_name(AlertKind::kModuleTextPatched),
               "module-text-patched");
  EXPECT_STREQ(alert_kind_name(AlertKind::kFnPtrHijacked), "fn-ptr-hijacked");
}

// --- nested-kernel invariant checker ---------------------------------------

TEST(InvariantChecker, RegistersBootTablesAtInstall) {
  auto sys = make_system();
  InvariantChecker checker(*sys);
  ASSERT_TRUE(checker.install().ok());
  // Boot built the kernel linear map: every table page is inventoried and
  // now monitored.
  EXPECT_GT(checker.monitored_pages(), 0u);
  EXPECT_EQ(checker.stats().pages_registered, checker.monitored_pages());
}

TEST(InvariantChecker, SanctionedPtWritesAreBusInvisible) {
  auto sys = make_system();
  InvariantChecker checker(*sys);
  ASSERT_TRUE(checker.install().ok());
  // Legitimate PT updates flow through the kPtWrite hypercall and land as
  // EL2 writes — never on the bus, so the checker sees nothing.
  kernel::Kernel& k = sys->kernel();
  Result<VirtAddr> va = k.sys_mmap(4 * kPageSize, /*writable=*/true);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(k.run_user_memory(64, 4, 0x5EED).ok());
  ASSERT_TRUE(k.sys_munmap(va.value(), 4 * kPageSize).ok());
  EXPECT_EQ(checker.stats().events_total, 0u);
  EXPECT_TRUE(checker.alerts().empty());
}

TEST(InvariantChecker, TracksPtPageLifecycle) {
  auto sys = make_system();
  InvariantChecker checker(*sys);
  ASSERT_TRUE(checker.install().ok());
  const u64 before = checker.monitored_pages();
  kernel::Kernel& k = sys->kernel();
  // Fault in fresh user mappings: new leaf tables get allocated and must
  // enter the monitored set the moment the verifier admits them.
  Result<VirtAddr> va = k.sys_mmap(16 * kPageSize, /*writable=*/true);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(k.run_user_memory(256, 16, 0xABCD).ok());
  EXPECT_GE(checker.monitored_pages(), before);
  EXPECT_EQ(
      checker.stats().pages_registered - checker.stats().pages_unregistered,
            checker.monitored_pages());
}

TEST(InvariantChecker, DmaWriteOnPtPageAlerts) {
  auto sys = make_system();
  InvariantChecker checker(*sys);
  ASSERT_TRUE(checker.install().ok());
  const auto& pages = sys->hypersec()->verifier().pt_pages();
  ASSERT_FALSE(pages.empty());
  const PhysAddr table = pages.begin()->first;
  sim::Iommu iommu;  // bypass: the §8 hardware attack vector
  sim::DmaDevice dev(sys->machine(), iommu, /*stream_id=*/9);
  ASSERT_TRUE(dev.write64(table, 0xDEAD'0000'0000'0703ull));
  EXPECT_TRUE(checker.has_alert(AlertKind::kPtPageTampered));
  EXPECT_GE(checker.stats().audits_run, 1u);
}

// --- kernel-CFI monitor ------------------------------------------------------

TEST(CfiMonitor, BaselinesAnchorTablesAtInstall) {
  auto sys = make_system();
  CfiMonitor cfi(*sys);
  ASSERT_TRUE(cfi.install().ok());
  EXPECT_EQ(cfi.baseline_words(), kernel::kSyscallTableEntries +
                                      kernel::kVectorTableEntries);
}

TEST(CfiMonitor, DetectsSyscallTablePatch) {
  auto sys = make_system();
  CfiMonitor cfi(*sys);
  ASSERT_TRUE(cfi.install().ok());
  sim::Iommu iommu;
  sim::DmaDevice dev(sys->machine(), iommu, /*stream_id=*/9);
  // Idempotent rewrite of the sealed value: must stay silent.
  ASSERT_TRUE(dev.write64(kernel::kSyscallTableBase + 3 * kWordSize,
                          kernel::syscall_entry_cookie(3)));
  EXPECT_TRUE(cfi.alerts().empty());
  // The hook: slot 3 redirected at an attacker stub.
  ASSERT_TRUE(dev.write64(kernel::kSyscallTableBase + 3 * kWordSize, 0xBAD));
  ASSERT_TRUE(cfi.has_alert(AlertKind::kSyscallPatched));
  EXPECT_EQ(cfi.alerts()[0].word_offset, 3u);
  EXPECT_EQ(cfi.alerts()[0].old_value, kernel::syscall_entry_cookie(3));
}

TEST(CfiMonitor, DetectsVectorPatch) {
  auto sys = make_system();
  CfiMonitor cfi(*sys);
  ASSERT_TRUE(cfi.install().ok());
  sim::Iommu iommu;
  sim::DmaDevice dev(sys->machine(), iommu, /*stream_id=*/9);
  ASSERT_TRUE(dev.write64(kernel::kVectorTableBase + 1 * kWordSize,
                          kernel::vector_entry_cookie(1) + 4));
  EXPECT_TRUE(cfi.has_alert(AlertKind::kVectorPatched));
  EXPECT_FALSE(cfi.has_alert(AlertKind::kSyscallPatched));
}

TEST(CfiMonitor, ModuleTextSealedAndReleased) {
  auto sys = make_system();
  CfiMonitor cfi(*sys);
  ASSERT_TRUE(cfi.install().ok());
  kernel::Kernel& k = sys->kernel();
  kernel::ModuleImage image;
  image.name = "rk";
  image.text_words = {0x11, 0x22, 0x33};
  image.data_words = {0x44};
  Result<kernel::LoadedModule> mod = k.sys_insmod(image);
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ(cfi.stats().modules_registered, 1u);

  sim::Iommu iommu;
  sim::DmaDevice dev(sys->machine(), iommu, /*stream_id=*/9);
  ASSERT_TRUE(dev.write64(kernel::virt_to_phys(mod.value().text_va) + kWordSize,
                          0x0BAD'7E87ull));
  EXPECT_TRUE(cfi.has_alert(AlertKind::kModuleTextPatched));

  // Unload unregisters the pages: later writes to the recycled frame are
  // nobody's business.
  const u64 alerts = cfi.alerts().size();
  ASSERT_TRUE(k.sys_rmmod("rk").ok());
  EXPECT_EQ(cfi.stats().modules_unregistered, 1u);
  EXPECT_EQ(cfi.alerts().size(), alerts);
}

TEST(CfiMonitor, DentryOpsSealOnFirstWriteThenLock) {
  auto sys = make_system();
  CfiMonitor cfi(*sys, /*watch_dentry_ops=*/true);
  ASSERT_TRUE(cfi.install().ok());
  kernel::Kernel& k = sys->kernel();
  // Creation seals the vtable pointer (first write into the zeroed slab
  // slot): no alert.
  ASSERT_TRUE(k.sys_creat("/sealed").ok());
  EXPECT_TRUE(cfi.alerts().empty());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "sealed");
  ASSERT_NE(dva, 0u);
  // The hook: swap it for a rootkit table.
  ASSERT_TRUE(sys->machine()
                  .write64(dva + DentryLayout::kOp * kWordSize, 0xE711)
                  .ok);
  EXPECT_TRUE(cfi.has_alert(AlertKind::kFnPtrHijacked));
}

TEST(RootkitDetector, ConvenienceQueries) {
  auto sys = make_system();
  RootkitDetector detector(*sys);
  ASSERT_TRUE(detector.install().ok());
  EXPECT_STREQ(detector.name(), "rootkit-detector");
  EXPECT_FALSE(detector.detected_cred_escalation());
  EXPECT_FALSE(detector.detected_dentry_tampering());

  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  const VirtAddr cred = k.procs().current().cred;
  ASSERT_TRUE(
      sys->machine().write64(cred + CredLayout::kUid * kWordSize, 0).ok);
  EXPECT_TRUE(detector.detected_cred_escalation());
  EXPECT_FALSE(detector.detected_dentry_tampering());

  ASSERT_TRUE(k.sys_creat("/rk").ok());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "rk");
  ASSERT_TRUE(sys->machine()
                  .write64(dva + DentryLayout::kOp * kWordSize, 0xBAD)
                  .ok);
  EXPECT_TRUE(detector.detected_dentry_tampering());
}

}  // namespace
}  // namespace hn::secapps
