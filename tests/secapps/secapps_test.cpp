// Security-application tests: object monitor registration lifecycles,
// event attribution, both granularities, and the detection policies
// (cred escalation, dentry hijack) of footnote 2.
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/system.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/object_monitor.h"
#include "secapps/rootkit_detector.h"

namespace hn::secapps {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;
using kernel::CredLayout;
using kernel::DentryLayout;

std::unique_ptr<System> make_system() {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = true;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(ObjectMonitor, RequiresHypernelMode) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  ObjectIntegrityMonitor monitor(*sys.value(), Granularity::kWholeObject);
  EXPECT_FALSE(monitor.install().ok());
}

TEST(ObjectMonitor, RegistersLiveCredsAtInstall) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kWholeObject);
  ASSERT_TRUE(monitor.install().ok());
  // The init process cred (and the monitor bookkeeping) is registered.
  EXPECT_GE(monitor.stats().objects_registered, 1u);
  EXPECT_GT(sys->hypersec()->stats().mon_registers, 0u);
}

TEST(ObjectMonitor, SensitiveCredWriteRaisesEvent) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_total;
  ASSERT_TRUE(sys->kernel().sys_setuid(1000).ok());
  EXPECT_GT(monitor.stats().events_total, before);
  EXPECT_GT(monitor.stats().events_cred, 0u);
}

TEST(ObjectMonitor, RefcountChurnInvisibleAtWordGranularity) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields,
                                 /*watch_cred=*/true, /*watch_dentry=*/false);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_total;
  // cred_get/cred_put only touch the usage word: not sensitive.
  kernel::ProcessManager& procs = sys->kernel().procs();
  for (int i = 0; i < 10; ++i) {
    procs.cred_get(procs.current().cred);
    procs.cred_put(procs.current().cred);
  }
  EXPECT_EQ(monitor.stats().events_total, before);
}

TEST(ObjectMonitor, RefcountChurnVisibleAtWholeObject) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kWholeObject,
                                 /*watch_cred=*/true, /*watch_dentry=*/false);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_total;
  kernel::ProcessManager& procs = sys->kernel().procs();
  for (int i = 0; i < 10; ++i) {
    procs.cred_get(procs.current().cred);
    procs.cred_put(procs.current().cred);
  }
  EXPECT_EQ(monitor.stats().events_total - before, 20u);
}

TEST(ObjectMonitor, DentryInstantiationMonitored) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields,
                                 /*watch_cred=*/false, /*watch_dentry=*/true);
  ASSERT_TRUE(monitor.install().ok());
  const u64 before = monitor.stats().events_dentry;
  ASSERT_TRUE(sys->kernel().sys_creat("/watched").ok());
  // d_instantiate writes d_inode + d_flags after the d_alloc hook: exactly
  // two sensitive events per creation.
  EXPECT_EQ(monitor.stats().events_dentry - before, 2u);
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(ObjectMonitor, UnregisteredAfterFree) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kWholeObject,
                                 /*watch_cred=*/false, /*watch_dentry=*/true);
  ASSERT_TRUE(monitor.install().ok());
  ASSERT_TRUE(sys->kernel().sys_creat("/gone").ok());
  ASSERT_TRUE(sys->kernel().sys_unlink("/gone").ok());
  EXPECT_EQ(monitor.stats().objects_registered,
            monitor.stats().objects_unregistered);
  // A fresh object reusing the slab slot starts unmonitored until its own
  // registration — no stale-bitmap leaks (bits cleared on unregister).
  const u64 events = monitor.stats().events_total;
  ASSERT_TRUE(sys->kernel().sys_creat("/fresh").ok());
  EXPECT_GT(monitor.stats().events_total, events);  // its own registration
}

TEST(ObjectMonitor, LegitimateOperationsRaiseNoAlerts) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_mkdir("/dir").ok());
  ASSERT_TRUE(k.sys_creat("/dir/a").ok());
  ASSERT_TRUE(k.sys_rename("/dir/a", "/dir/b").ok());
  ASSERT_TRUE(k.sys_unlink("/dir/b").ok());
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  kernel::Task* child = k.procs().find(pid.value());
  k.procs().switch_to(*child);
  ASSERT_TRUE(k.sys_execve().ok());
  ASSERT_TRUE(k.sys_exit().ok());
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(ObjectMonitor, DetectsDirectCredEscalation) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  // Run as a non-root identity first.
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  ASSERT_TRUE(monitor.alerts().empty());
  // The attack: a compromised kernel path writes uid=0 directly into the
  // cred object (footnote 2's privilege escalation).
  const VirtAddr cred = k.procs().current().cred;
  ASSERT_TRUE(
      sys->machine().write64(cred + CredLayout::kEuid * kWordSize, 0).ok);
  ASSERT_FALSE(monitor.alerts().empty());
  EXPECT_NE(monitor.alerts()[0].reason.find("root"), std::string::npos);
}

TEST(ObjectMonitor, DetectsCapabilityEscalation) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  const VirtAddr cred = k.procs().current().cred;
  // Give the task a partial capability set, then forge full caps.
  ASSERT_TRUE(sys->machine()
                  .write64(cred + CredLayout::kCapEffective * kWordSize, 0x4)
                  .ok);
  ASSERT_TRUE(sys->machine()
                  .write64(cred + CredLayout::kCapEffective * kWordSize,
                           ~u64{0})
                  .ok);
  bool cap_alert = false;
  for (const Alert& a : monitor.alerts()) {
    cap_alert |= a.reason.find("capability") != std::string::npos;
  }
  EXPECT_TRUE(cap_alert);
}

TEST(ObjectMonitor, DetectsDentryOpsHook) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/hooked").ok());
  const VirtAddr dva =
      k.vfs().cached_dentry(k.vfs().root_ino(), "hooked");
  ASSERT_NE(dva, 0u);
  // Rootkit hooks the dentry ops vtable.
  ASSERT_TRUE(sys->machine()
                  .write64(dva + DentryLayout::kOp * kWordSize, 0xE711)
                  .ok);
  bool hook_alert = false;
  for (const Alert& a : monitor.alerts()) {
    hook_alert |= a.reason.find("vtable") != std::string::npos;
  }
  EXPECT_TRUE(hook_alert);
}

TEST(ObjectMonitor, DetectsDentryInodeHijack) {
  auto sys = make_system();
  ObjectIntegrityMonitor monitor(*sys, Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  Result<u64> victim = k.sys_creat("/victim");
  Result<u64> evil = k.sys_creat("/evil");
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(evil.ok());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "victim");
  ASSERT_NE(dva, 0u);
  // Redirect the victim's dentry at the attacker's inode.
  ASSERT_TRUE(sys->machine()
                  .write64(dva + DentryLayout::kInode * kWordSize, evil.value())
                  .ok);
  bool hijack = false;
  for (const Alert& a : monitor.alerts()) {
    hijack |= a.reason.find("hijack") != std::string::npos;
  }
  EXPECT_TRUE(hijack);
}

TEST(RootkitDetector, ConvenienceQueries) {
  auto sys = make_system();
  RootkitDetector detector(*sys);
  ASSERT_TRUE(detector.install().ok());
  EXPECT_STREQ(detector.name(), "rootkit-detector");
  EXPECT_FALSE(detector.detected_cred_escalation());
  EXPECT_FALSE(detector.detected_dentry_tampering());

  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  const VirtAddr cred = k.procs().current().cred;
  ASSERT_TRUE(
      sys->machine().write64(cred + CredLayout::kUid * kWordSize, 0).ok);
  EXPECT_TRUE(detector.detected_cred_escalation());
  EXPECT_FALSE(detector.detected_dentry_tampering());

  ASSERT_TRUE(k.sys_creat("/rk").ok());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "rk");
  ASSERT_TRUE(sys->machine()
                  .write64(dva + DentryLayout::kOp * kWordSize, 0xBAD)
                  .ok);
  EXPECT_TRUE(detector.detected_dentry_tampering());
}

}  // namespace
}  // namespace hn::secapps
