// Scorecard harness tests: the acceptance gates (every intended attack
// hit with a causal attribution chain, zero false positives), the golden
// report digest pinned at --jobs=1 vs --jobs=4, and byte-identity of
// snapshot-booted against fresh-booted scorecards.
#include <gtest/gtest.h>

#include <string>

#include "attacks/scenario.h"
#include "attacks/scorecard.h"
#include "fuzz/executor.h"
#include "sim/trace_io.h"

namespace hn::attacks {
namespace {

// Golden FNV digests over the deterministic JSON report.  The scenario
// library is append-only and the render order fixed, so these move only
// when the library, a detector policy, or the report schema changes —
// update them together with the EXPERIMENTS.md scorecard table.
constexpr u64 kGoldenTracedDigest = 0x99ce7818d3fcbf62ull;
constexpr u64 kGoldenUntracedDigest = 0xdf5ad6821e5e62cfull;

/// The traced serial scorecard, computed once (two tests consume it).
const Scorecard& traced_serial_scorecard() {
  static const Scorecard score = [] {
    ScorecardOptions opt;
    opt.jobs = 1;  // trace_attribution defaults on
    return run_scorecard(opt);
  }();
  return score;
}

TEST(Scorecard, AcceptanceGatesHoldWithAttribution) {
  const Scorecard& score = traced_serial_scorecard();
  EXPECT_TRUE(score.all_intended_hit);
  EXPECT_TRUE(score.zero_false_positives);
  EXPECT_TRUE(score.all_hits_attributed);
  EXPECT_TRUE(score.ok(/*require_attribution=*/true));
  ASSERT_EQ(score.cells.size(),
            scenario_library().size() * detector_configs().size());
  ASSERT_EQ(score.benign.size(), detector_configs().size());
  for (const BenignCell& b : score.benign) {
    EXPECT_EQ(b.alerts, 0u) << b.config;
  }
  for (const DetectorSummary& s : score.summary) {
    SCOPED_TRACE(s.detector);
    EXPECT_GT(s.intended_cells, 0u);
    EXPECT_EQ(s.hits, s.intended_cells);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.false_positives, 0u);
    EXPECT_GT(s.mean_latency, 0u);
  }
  EXPECT_FALSE(score.sample_trace.empty());
  EXPECT_EQ(score.digest, kGoldenTracedDigest) << score.json;

  const std::string table = render_scorecard(score);
  EXPECT_NE(table.find("HIT"), std::string::npos);
  EXPECT_EQ(table.find("MISS"), std::string::npos) << table;
  EXPECT_NE(table.find("CLEAN"), std::string::npos);
}

TEST(Scorecard, JobCountNeverChangesTheReport) {
  ScorecardOptions parallel;
  parallel.jobs = 4;
  const Scorecard b = run_scorecard(parallel);
  EXPECT_EQ(traced_serial_scorecard().json, b.json);
  EXPECT_EQ(b.digest, kGoldenTracedDigest);
}

TEST(Scorecard, SnapshotBootMatchesFreshBoot) {
  // Attribution needs per-run trace capture, which always boots fresh —
  // so the snapshot-boot contract is pinned with attribution off.
  ScorecardOptions fresh;
  fresh.jobs = 4;
  fresh.trace_attribution = false;
  ScorecardOptions snapshot = fresh;
  snapshot.snapshot_boot = true;
  const Scorecard a = run_scorecard(fresh);
  const Scorecard b = run_scorecard(snapshot);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.digest, kGoldenUntracedDigest);
  EXPECT_EQ(b.digest, kGoldenUntracedDigest);
  // Hits still land without traces; only the attribution gate drops.
  EXPECT_TRUE(a.all_intended_hit);
  EXPECT_TRUE(a.zero_false_positives);
  EXPECT_FALSE(a.all_hits_attributed);
  EXPECT_TRUE(a.ok(/*require_attribution=*/false));
  EXPECT_FALSE(a.ok(/*require_attribution=*/true));
  EXPECT_TRUE(a.sample_trace.empty());
}

TEST(Scorecard, DecoupledModeKeepsJsonByteIdentical) {
  // Temporally decoupled execution is host wiring only: every latency
  // and alert instant in the JSON must match the exact path.  With
  // attribution off the cells really do run decoupled (trace capture
  // would force the exact path); pin against the untraced golden.
  ScorecardOptions dec;
  dec.jobs = 4;
  dec.trace_attribution = false;
  dec.decoupled_quantum = fuzz::kDefaultDecoupledQuantum;
  const Scorecard score = run_scorecard(dec);
  EXPECT_EQ(score.digest, kGoldenUntracedDigest) << score.json;

  // With attribution on, the executor forces instrumented runs onto the
  // exact path — the traced report must be untouched as well.
  ScorecardOptions traced;
  traced.jobs = 4;
  traced.decoupled_quantum = fuzz::kDefaultDecoupledQuantum;
  const Scorecard t = run_scorecard(traced);
  EXPECT_EQ(t.json, traced_serial_scorecard().json);
  EXPECT_EQ(t.digest, kGoldenTracedDigest);
}

// --- SMP scorecards (--cores > 1) ------------------------------------------
//
// On a multi-core machine the cross-core scenarios join the matrix: a
// forked writer migrates to core 1, tampers from there, and the shared-bus
// MBM must still attribute the detection.  Golden digests pinned like the
// single-core ones; the single-core goldens above prove --cores=1 output
// is byte-identical to the pre-SMP format.

constexpr u64 kGoldenSmpTracedDigest = 0x89d0bf7d40dbd696ull;
constexpr u64 kGoldenSmpUntracedDigest = 0x16bf5bca23c95473ull;
constexpr u64 kGoldenSmpQuadUntracedDigest = 0x04462349363284e5ull;

const Scorecard& smp_serial_scorecard() {
  static const Scorecard score = [] {
    ScorecardOptions opt;
    opt.jobs = 1;
    opt.cores = 2;
    return run_scorecard(opt);
  }();
  return score;
}

TEST(SmpScorecard, CrossCoreScenariosHitWithAttribution) {
  const Scorecard& score = smp_serial_scorecard();
  EXPECT_TRUE(score.all_intended_hit);
  EXPECT_TRUE(score.zero_false_positives);
  EXPECT_TRUE(score.all_hits_attributed);
  ASSERT_EQ(score.cells.size(),
            (scenario_library().size() + smp_scenario_library().size()) *
                detector_configs().size());
  for (const BenignCell& b : score.benign) {
    EXPECT_EQ(b.alerts, 0u) << b.config;
  }
  // Every cross-core cell intended to hit did, causally attributed.
  unsigned smp_intended = 0;
  for (const ScorecardCell& cell : score.cells) {
    if (cell.scenario.rfind("smp-", 0) != 0) continue;
    if (!cell.intended) continue;
    ++smp_intended;
    SCOPED_TRACE(cell.scenario + " x " + cell.config);
    EXPECT_TRUE(cell.detected);
    EXPECT_TRUE(cell.attributed);
    EXPECT_GT(cell.latency, 0u);
  }
  EXPECT_EQ(smp_intended, smp_scenario_library().size());
  EXPECT_NE(score.json.find("\"cores\": 2"), std::string::npos);
  EXPECT_EQ(score.digest, kGoldenSmpTracedDigest) << score.json;

  const std::string table = render_scorecard(score);
  EXPECT_NE(table.find("smp-cross-core-syscall-stub"), std::string::npos);
  EXPECT_EQ(table.find("MISS"), std::string::npos) << table;
}

TEST(SmpScorecard, JobCountNeverChangesTheReport) {
  ScorecardOptions parallel;
  parallel.jobs = 4;
  parallel.cores = 2;
  const Scorecard b = run_scorecard(parallel);
  EXPECT_EQ(smp_serial_scorecard().json, b.json);
  EXPECT_EQ(b.digest, kGoldenSmpTracedDigest);
}

TEST(SmpScorecard, SnapshotBootMatchesFreshBootAtTwoCores) {
  ScorecardOptions fresh;
  fresh.jobs = 4;
  fresh.cores = 2;
  fresh.trace_attribution = false;
  ScorecardOptions snapshot = fresh;
  snapshot.snapshot_boot = true;
  const Scorecard a = run_scorecard(fresh);
  const Scorecard b = run_scorecard(snapshot);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.digest, kGoldenSmpUntracedDigest);
  EXPECT_EQ(b.digest, kGoldenSmpUntracedDigest);
  EXPECT_TRUE(a.all_intended_hit);
  EXPECT_TRUE(a.zero_false_positives);
}

TEST(SmpScorecard, CrossCoreDetectionCarriesCoreProvenance) {
  // End-to-end provenance: replay the cross-core syscall-stub scenario
  // against its intended detector with the flight recorder on.  The
  // captured trace must be v2, the tampering store must be recorded as
  // originating on core 1 (where the forked writer ran), and the run
  // must raise the intended alert.
  const AttackScenario* scenario = find_scenario("smp-cross-core-syscall-stub");
  ASSERT_NE(scenario, nullptr);
  fuzz::FuzzConfigSpec spec;
  for (const fuzz::FuzzConfigSpec& s : detector_configs()) {
    if (s.name == scenario->intended_detector) spec = s;
  }
  ASSERT_EQ(spec.name, scenario->intended_detector);
  spec.cores = 2;
  fuzz::ExecutorOptions exec_opt;
  exec_opt.capture_trace = true;
  const fuzz::RunResult run = fuzz::run_sequence(spec, scenario->ops, exec_opt);
  EXPECT_FALSE(run.alert_log.empty());

  sim::TraceData data;
  ASSERT_FALSE(run.trace_blob.empty());
  ASSERT_TRUE(sim::parse_trace(run.trace_blob, data).ok());
  EXPECT_EQ(data.version, 3u);
  bool core1_store = false;
  for (const sim::TraceEvent& e : data.events) {
    if (e.kind == sim::TraceKind::kBusWrite && e.core == 1) {
      core1_store = true;
    }
  }
  EXPECT_TRUE(core1_store);
}

TEST(SmpScorecard, FourCoreMatrixStaysPinned) {
  ScorecardOptions opt;
  opt.jobs = 4;
  opt.cores = 4;
  opt.trace_attribution = false;
  const Scorecard score = run_scorecard(opt);
  EXPECT_TRUE(score.all_intended_hit);
  EXPECT_TRUE(score.zero_false_positives);
  EXPECT_EQ(score.digest, kGoldenSmpQuadUntracedDigest) << score.json;
}

}  // namespace
}  // namespace hn::attacks
