// Scorecard harness tests: the acceptance gates (every intended attack
// hit with a causal attribution chain, zero false positives), the golden
// report digest pinned at --jobs=1 vs --jobs=4, and byte-identity of
// snapshot-booted against fresh-booted scorecards.
#include <gtest/gtest.h>

#include <string>

#include "attacks/scorecard.h"

namespace hn::attacks {
namespace {

// Golden FNV digests over the deterministic JSON report.  The scenario
// library is append-only and the render order fixed, so these move only
// when the library, a detector policy, or the report schema changes —
// update them together with the EXPERIMENTS.md scorecard table.
constexpr u64 kGoldenTracedDigest = 0x99ce7818d3fcbf62ull;
constexpr u64 kGoldenUntracedDigest = 0xdf5ad6821e5e62cfull;

/// The traced serial scorecard, computed once (two tests consume it).
const Scorecard& traced_serial_scorecard() {
  static const Scorecard score = [] {
    ScorecardOptions opt;
    opt.jobs = 1;  // trace_attribution defaults on
    return run_scorecard(opt);
  }();
  return score;
}

TEST(Scorecard, AcceptanceGatesHoldWithAttribution) {
  const Scorecard& score = traced_serial_scorecard();
  EXPECT_TRUE(score.all_intended_hit);
  EXPECT_TRUE(score.zero_false_positives);
  EXPECT_TRUE(score.all_hits_attributed);
  EXPECT_TRUE(score.ok(/*require_attribution=*/true));
  ASSERT_EQ(score.cells.size(),
            scenario_library().size() * detector_configs().size());
  ASSERT_EQ(score.benign.size(), detector_configs().size());
  for (const BenignCell& b : score.benign) {
    EXPECT_EQ(b.alerts, 0u) << b.config;
  }
  for (const DetectorSummary& s : score.summary) {
    SCOPED_TRACE(s.detector);
    EXPECT_GT(s.intended_cells, 0u);
    EXPECT_EQ(s.hits, s.intended_cells);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.false_positives, 0u);
    EXPECT_GT(s.mean_latency, 0u);
  }
  EXPECT_FALSE(score.sample_trace.empty());
  EXPECT_EQ(score.digest, kGoldenTracedDigest) << score.json;

  const std::string table = render_scorecard(score);
  EXPECT_NE(table.find("HIT"), std::string::npos);
  EXPECT_EQ(table.find("MISS"), std::string::npos) << table;
  EXPECT_NE(table.find("CLEAN"), std::string::npos);
}

TEST(Scorecard, JobCountNeverChangesTheReport) {
  ScorecardOptions parallel;
  parallel.jobs = 4;
  const Scorecard b = run_scorecard(parallel);
  EXPECT_EQ(traced_serial_scorecard().json, b.json);
  EXPECT_EQ(b.digest, kGoldenTracedDigest);
}

TEST(Scorecard, SnapshotBootMatchesFreshBoot) {
  // Attribution needs per-run trace capture, which always boots fresh —
  // so the snapshot-boot contract is pinned with attribution off.
  ScorecardOptions fresh;
  fresh.jobs = 4;
  fresh.trace_attribution = false;
  ScorecardOptions snapshot = fresh;
  snapshot.snapshot_boot = true;
  const Scorecard a = run_scorecard(fresh);
  const Scorecard b = run_scorecard(snapshot);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.digest, kGoldenUntracedDigest);
  EXPECT_EQ(b.digest, kGoldenUntracedDigest);
  // Hits still land without traces; only the attribution gate drops.
  EXPECT_TRUE(a.all_intended_hit);
  EXPECT_TRUE(a.zero_false_positives);
  EXPECT_FALSE(a.all_hits_attributed);
  EXPECT_TRUE(a.ok(/*require_attribution=*/false));
  EXPECT_FALSE(a.ok(/*require_attribution=*/true));
  EXPECT_TRUE(a.sample_trace.empty());
}

TEST(Scorecard, DecoupledModeKeepsJsonByteIdentical) {
  // Temporally decoupled execution is host wiring only: every latency
  // and alert instant in the JSON must match the exact path.  With
  // attribution off the cells really do run decoupled (trace capture
  // would force the exact path); pin against the untraced golden.
  ScorecardOptions dec;
  dec.jobs = 4;
  dec.trace_attribution = false;
  dec.decoupled_quantum = fuzz::kDefaultDecoupledQuantum;
  const Scorecard score = run_scorecard(dec);
  EXPECT_EQ(score.digest, kGoldenUntracedDigest) << score.json;

  // With attribution on, the executor forces instrumented runs onto the
  // exact path — the traced report must be untouched as well.
  ScorecardOptions traced;
  traced.jobs = 4;
  traced.decoupled_quantum = fuzz::kDefaultDecoupledQuantum;
  const Scorecard t = run_scorecard(traced);
  EXPECT_EQ(t.json, traced_serial_scorecard().json);
  EXPECT_EQ(t.digest, kGoldenTracedDigest);
}

}  // namespace
}  // namespace hn::attacks
