// Unit tests for the common utilities: types helpers, status/result
// plumbing, bit operations, RNG determinism, timing conversions.
#include <gtest/gtest.h>

#include <set>

#include "common/bitops.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timing.h"
#include "common/types.h"

namespace hn {
namespace {

TEST(Types, PageAlignment) {
  EXPECT_EQ(page_align_down(0x1234), 0x1000u);
  EXPECT_EQ(page_align_down(0x1000), 0x1000u);
  EXPECT_EQ(page_align_up(0x1001), 0x2000u);
  EXPECT_EQ(page_align_up(0x1000), 0x1000u);
  EXPECT_EQ(page_align_up(0), 0u);
  EXPECT_TRUE(is_page_aligned(0x4000));
  EXPECT_FALSE(is_page_aligned(0x4008));
}

TEST(Types, WordAlignment) {
  EXPECT_EQ(word_align_down(0x17), 0x10u);
  EXPECT_TRUE(is_word_aligned(0x18));
  EXPECT_FALSE(is_word_aligned(0x1C));
}

TEST(Types, RangesOverlap) {
  EXPECT_TRUE(ranges_overlap(0, 10, 5, 10));
  EXPECT_TRUE(ranges_overlap(5, 10, 0, 10));
  EXPECT_FALSE(ranges_overlap(0, 10, 10, 10));  // adjacent, not overlapping
  EXPECT_FALSE(ranges_overlap(10, 10, 0, 10));
  EXPECT_TRUE(ranges_overlap(0, 100, 50, 1));
}

TEST(Types, KernelVaBase) {
  EXPECT_GT(kKernelVaBase, u64{1} << 47);  // upper half
  EXPECT_EQ(kPtEntries, kPageSize / 8);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, ErrorCarriesMessage) {
  Status s = Status::Denied("nope");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.message(), "nope");
}

TEST(Status, FactoryCodes) {
  EXPECT_EQ(Status::Invalid("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfMemory("").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Precondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(Bitops, BitsExtract) {
  EXPECT_EQ(bits(0xFF00, 15, 8), 0xFFu);
  EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(bits(~u64{0}, 63, 0), ~u64{0});
}

TEST(Bitops, SetBits) {
  EXPECT_EQ(set_bits(0, 15, 8, 0xAB), 0xAB00u);
  EXPECT_EQ(set_bits(0xFFFF, 7, 0, 0), 0xFF00u);
  // Field larger than the window is masked.
  EXPECT_EQ(set_bits(0, 3, 0, 0xFF), 0xFu);
}

TEST(Bitops, SingleBit) {
  EXPECT_TRUE(bit(0x8, 3));
  EXPECT_FALSE(bit(0x8, 2));
  EXPECT_EQ(with_bit(0, 5, true), 0x20u);
  EXPECT_EQ(with_bit(0xFF, 0, false), 0xFEu);
}

TEST(Bitops, Pow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_floor(4096), 12u);
  EXPECT_EQ(log2_floor(1), 0u);
}

TEST(Rng, GoldenValues) {
  // First eight outputs for seed 0, matching the published splitmix64
  // reference implementation.  These pin the exact output stream: the
  // fuzzer's replay seeds are only meaningful while this holds.
  const u64 expected[8] = {
      0xE220A8397B1DCDAFull, 0x6E789E6AA1B965F4ull, 0x06C45D188009454Full,
      0xF88BB8A8724C81ECull, 0x1B39896A51A8749Bull, 0x53CB9F0C747EA2EAull,
      0x2C829ABE1F4532E1ull, 0xC584133AC916AB3Cull,
  };
  SplitMix64 rng(0);
  for (const u64 want : expected) EXPECT_EQ(rng.next(), want);

  const u64 expected_beef[4] = {
      0x4ADFB90F68C9EB9Bull, 0xDE586A3141A10922ull, 0x021FBC2F8E1CFC1Dull,
      0x7466CE737BE16790ull,
  };
  SplitMix64 beef(0xDEADBEEF);
  for (const u64 want : expected_beef) EXPECT_EQ(beef.next(), want);
}

TEST(Rng, BoundsEdgeCases) {
  SplitMix64 rng(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);     // only one residue
    EXPECT_EQ(rng.next_in(7, 7), 7u);     // degenerate inclusive range
    EXPECT_FALSE(rng.chance(0, 10));      // probability zero never fires
    EXPECT_TRUE(rng.chance(10, 10));      // probability one always fires
  }
}

TEST(Rng, Deterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundsRespected) {
  SplitMix64 rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const u64 v = rng.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  SplitMix64 rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(250, 1000);
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Timing, CycleConversionRoundTrip) {
  TimingModel t;
  EXPECT_NEAR(t.cycles_to_us(1150), 1.0, 1e-9);  // 1.15 GHz
  EXPECT_EQ(t.us_to_cycles(1.0), 1150u);
  EXPECT_NEAR(t.cycles_to_us(t.us_to_cycles(271.68)), 271.68, 0.01);
}

TEST(Timing, DefaultsSane) {
  TimingModel t;
  EXPECT_GT(t.l1_miss_fill, t.l1_hit);
  EXPECT_GT(t.noncacheable_access, t.l1_hit);
  EXPECT_GT(t.hvc_roundtrip, t.sysreg_trap / 2);
  EXPECT_GT(t.vm_exit + t.vm_entry, t.hvc_roundtrip);
}

}  // namespace
}  // namespace hn
