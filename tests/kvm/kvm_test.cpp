// KVM baseline tests: lazy stage-2 population, THP batching, IRQ exits,
// the host-pressure recycle model, and page-granularity write-protection
// monitoring (the scheme Table 2's estimate stands in for).
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/system.h"
#include "kernel/layout.h"
#include "sim/irq.h"
#include "sim/sysregs.h"

namespace hn::kvm {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_kvm(KvmConfig kvm_cfg = {}) {
  SystemConfig cfg;
  cfg.mode = Mode::kKvmGuest;
  cfg.kvm = kvm_cfg;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(Kvm, BootsWithStage2Enabled) {
  auto sys = make_kvm();
  EXPECT_TRUE(sys->machine().sysregs().hcr_bit(sim::kHcrVm));
  EXPECT_TRUE(sys->machine().sysregs().hcr_bit(sim::kHcrImo));
  EXPECT_TRUE(sys->machine().guest_mode());
  EXPECT_EQ(sys->machine().sysreg(sim::SysReg::VTTBR_EL2),
            sys->kvm()->stage2_root());
}

TEST(Kvm, LazyFaultingPopulatesStage2) {
  auto sys = make_kvm();
  const u64 mapped_at_boot = sys->kvm()->stats().pages_mapped;
  EXPECT_GT(mapped_at_boot, 0u);  // boot traffic faulted pages in
  // Touch an address far from anything yet mapped.
  const PhysAddr cold = 64 * 1024 * 1024;
  ASSERT_TRUE(
      sys->machine().write64(kernel::phys_to_virt(cold), 0x11).ok);
  EXPECT_GT(sys->kvm()->stats().pages_mapped, mapped_at_boot);
}

TEST(Kvm, ThpBatchMapsWholeGroup) {
  auto sys = make_kvm();
  const u64 faults_before = sys->kvm()->stats().s2_faults_serviced;
  const PhysAddr group = 96 * 1024 * 1024;  // cold 2 MiB region
  // Touch two pages of the same 2 MiB group: one fault total.
  ASSERT_TRUE(sys->machine().write64(kernel::phys_to_virt(group), 1).ok);
  ASSERT_TRUE(
      sys->machine().write64(kernel::phys_to_virt(group + 8 * kPageSize), 2).ok);
  EXPECT_EQ(sys->kvm()->stats().s2_faults_serviced, faults_before + 1);
}

TEST(Kvm, NoThpFaultsPerPage) {
  KvmConfig cfg;
  cfg.thp_backing = false;
  auto sys = make_kvm(cfg);
  const u64 faults_before = sys->kvm()->stats().s2_faults_serviced;
  const PhysAddr group = 96 * 1024 * 1024;
  ASSERT_TRUE(sys->machine().write64(kernel::phys_to_virt(group), 1).ok);
  ASSERT_TRUE(
      sys->machine().write64(kernel::phys_to_virt(group + 8 * kPageSize), 2).ok);
  // At least one fault per page touched (a nested descriptor fetch may add
  // one more), unlike the single batch fault of THP mode.
  EXPECT_GE(sys->kvm()->stats().s2_faults_serviced, faults_before + 2);
  EXPECT_LE(sys->kvm()->stats().s2_faults_serviced, faults_before + 4);
}

TEST(Kvm, EagerMapAvoidsColdFaults) {
  KvmConfig cfg;
  cfg.eager_map = true;
  cfg.recycle_invalidate_permille = 0;
  auto sys = make_kvm(cfg);
  const u64 faults_before = sys->kvm()->stats().s2_faults_serviced;
  ASSERT_TRUE(
      sys->machine().write64(kernel::phys_to_virt(96 * 1024 * 1024), 1).ok);
  EXPECT_EQ(sys->kvm()->stats().s2_faults_serviced, faults_before);
}

TEST(Kvm, IrqsExitToHypervisorAndReachGuest) {
  auto sys = make_kvm();
  const u64 exits_before = sys->machine().counters().vm_exits;
  // The guest's IRQ handler runs even though delivery routes via EL2.
  const u64 irqs_before = sys->machine().counters().irqs_delivered;
  sys->machine().raise_irq(sim::kIrqTimer);
  EXPECT_EQ(sys->machine().counters().irqs_delivered, irqs_before + 1);
  EXPECT_GT(sys->machine().counters().vm_exits, exits_before);
  EXPECT_GT(sys->kvm()->stats().irq_exits, 0u);
}

TEST(Kvm, RecycleInvalidationForcesRefault) {
  KvmConfig cfg;
  cfg.recycle_invalidate_permille = 1000;  // deterministic
  cfg.recycle_min_interval = 1;            // no rate limiting
  auto sys = make_kvm(cfg);
  kernel::Kernel& k = sys->kernel();
  Result<PhysAddr> page = k.buddy().alloc_page();
  ASSERT_TRUE(page.ok());
  const VirtAddr va = kernel::phys_to_virt(page.value());
  ASSERT_TRUE(sys->machine().write64(va, 1).ok);  // mapped now
  const u64 inval_before = sys->kvm()->stats().recycle_invalidations;
  k.buddy().free_page(page.value());
  EXPECT_EQ(sys->kvm()->stats().recycle_invalidations, inval_before + 1);
  // Re-allocate (LIFO: same frame) and touch: a fresh stage-2 fault.
  Result<PhysAddr> again = k.buddy().alloc_page();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value(), page.value());
  const u64 faults_before = sys->kvm()->stats().s2_faults_serviced;
  ASSERT_TRUE(sys->machine().write64(va, 2).ok);
  EXPECT_EQ(sys->kvm()->stats().s2_faults_serviced, faults_before + 1);
}

TEST(Kvm, RecycleRateLimited) {
  KvmConfig cfg;
  cfg.recycle_invalidate_permille = 1000;
  cfg.recycle_min_interval = 1'000'000;  // essentially no budget
  cfg.recycle_burst = 1;
  auto sys = make_kvm(cfg);
  kernel::Kernel& k = sys->kernel();
  // Burn the single token, then free many pages quickly.
  std::vector<PhysAddr> pages;
  for (int i = 0; i < 16; ++i) {
    Result<PhysAddr> p = k.buddy().alloc_page();
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(sys->machine().write64(kernel::phys_to_virt(p.value()), 1).ok);
    pages.push_back(p.value());
  }
  for (PhysAddr p : pages) k.buddy().free_page(p);
  EXPECT_LE(sys->kvm()->stats().recycle_invalidations, 1u);
}

TEST(Kvm, WriteProtectionTrapsAndEmulates) {
  KvmConfig cfg;
  cfg.recycle_invalidate_permille = 0;
  auto sys = make_kvm(cfg);
  kernel::Kernel& k = sys->kernel();
  Result<PhysAddr> frame = k.buddy().alloc_page();
  ASSERT_TRUE(frame.ok());
  const VirtAddr va = kernel::phys_to_virt(frame.value());
  ASSERT_TRUE(sys->machine().write64(va, 0x1).ok);  // populate stage 2

  std::vector<std::pair<PhysAddr, u64>> hits;
  sys->kvm()->set_wp_handler(
      [&](PhysAddr pa, u64 value) { hits.emplace_back(pa, value); });
  ASSERT_TRUE(sys->kvm()->protect_page(frame.value()).ok());
  EXPECT_TRUE(sys->kvm()->is_protected(frame.value()));

  // Reads stay free of traps; every write traps and is emulated.
  EXPECT_TRUE(sys->machine().read64(va).ok);
  const u64 wp_before = sys->kvm()->stats().wp_traps;
  ASSERT_TRUE(sys->machine().write64(va + 16, 0xABCD).ok);
  ASSERT_TRUE(sys->machine().write64(va + 16, 0xABCE).ok);
  EXPECT_EQ(sys->kvm()->stats().wp_traps, wp_before + 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, frame.value() + 16);
  EXPECT_EQ(hits[0].second, 0xABCDu);
  // Emulation preserved the stores.
  EXPECT_EQ(sys->machine().read64(va + 16).value, 0xABCEu);

  // The whole page traps — the granularity gap (§1): a write to an
  // unrelated word of the same page still exits.
  ASSERT_TRUE(sys->machine().write64(va + 0x800, 1).ok);
  EXPECT_EQ(sys->kvm()->stats().wp_traps, wp_before + 3);

  ASSERT_TRUE(sys->kvm()->unprotect_page(frame.value()).ok());
  const u64 wp_final = sys->kvm()->stats().wp_traps;
  ASSERT_TRUE(sys->machine().write64(va, 0x2).ok);
  EXPECT_EQ(sys->kvm()->stats().wp_traps, wp_final);
}

TEST(Kvm, ProtectOutsideGuestRamRejected) {
  auto sys = make_kvm();
  EXPECT_FALSE(sys->kvm()->protect_page(sys->machine().phys().size() - 8).ok());
  EXPECT_FALSE(sys->kvm()->unprotect_page(0x1000).ok());  // never protected
}

TEST(Kvm, GuestCannotReachHostMemoryThroughStage2) {
  // The top-of-DRAM host reserve is never mapped at stage 2: a kernel
  // mapping pointing there faults and the hypervisor refuses to fill it.
  auto sys = make_kvm();
  kernel::Kernel& k = sys->kernel();
  Result<PhysAddr> root = k.kpt().alloc_user_root();
  ASSERT_TRUE(root.ok());
  const PhysAddr host_mem = sys->machine().secure_base() + 4 * kPageSize;
  ASSERT_TRUE(k.kpt()
                  .map_page(root.value(), 0x400000, host_mem,
                            sim::PageAttrs{.write = true, .user = true})
                  .ok());  // guest stage-1 mapping succeeds...
  {
    sim::Machine& m = sys->machine();
    const u64 saved = m.sysreg(sim::SysReg::TTBR0_EL1);
    m.set_sysreg_raw(sim::SysReg::TTBR0_EL1, root.value());
    const sim::Access64 r = m.read64(0x400000, /*user=*/true);
    EXPECT_FALSE(r.ok);  // ...but stage 2 blocks the access
    EXPECT_EQ(r.fault.type, sim::FaultType::kS2Translation);
    m.set_sysreg_raw(sim::SysReg::TTBR0_EL1, saved);
  }
}

}  // namespace
}  // namespace hn::kvm
