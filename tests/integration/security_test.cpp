// Security-scenario integration tests — DESIGN.md §5's claims (a)-(g):
// the isolation environment of Fig. 3, the monitoring workflow of Fig. 4,
// and the ATRA comparison against a bare external monitor.
#include <gtest/gtest.h>

#include <memory>

#include "common/hvc_abi.h"
#include "hypernel/system.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "mbm/bitmap_math.h"
#include "secapps/baseline_monitor.h"
#include "secapps/object_monitor.h"
#include "sim/sysregs.h"
#include "sim/trace_io.h"
#include "sim/trace_report.h"

namespace hn {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> hypernel_system(bool mbm = true) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = mbm;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

// (a) cred privilege-escalation write detected at word granularity —
// covered in secapps_test; here the full Fig. 4 workflow is traced.
TEST(MonitorWorkflow, Figure4StepsObservable) {
  auto sys = hypernel_system();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();

  const auto hvc_before = sys->machine().counters().hvc_calls;        // (1)
  const auto irq_before = sys->machine().counters().irqs_delivered;   // (6)
  const auto mbm_irq_before = sys->hypersec()->stats().mbm_irq_calls; // (7)
  const auto events_before = monitor.stats().events_total;            // (8)

  // A new cred object comes into existence and its registration flows
  // through hook -> hypercall -> bitmap (steps 1-2)...
  Result<u32> pid = k.sys_fork();  // cred refcount bump: usage only
  ASSERT_TRUE(pid.ok());
  kernel::Task* child = k.procs().find(pid.value());
  k.procs().switch_to(*child);
  ASSERT_TRUE(k.sys_execve().ok());  // fresh cred: registration + init writes
  EXPECT_GT(sys->machine().counters().hvc_calls, hvc_before);
  EXPECT_GT(sys->hypersec()->stats().mon_registers, 0u);

  // ...whose sensitive-field initialisation produced write events through
  // snoop -> bitmap -> decision -> ring -> IRQ -> HVC -> dispatch
  // (steps 3-8).
  EXPECT_GT(sys->mbm()->stats().detections, 0u);
  EXPECT_GT(sys->machine().counters().irqs_delivered, irq_before);
  EXPECT_GT(sys->hypersec()->stats().mbm_irq_calls, mbm_irq_before);
  EXPECT_GT(monitor.stats().events_total, events_before);
  EXPECT_EQ(sys->mbm()->ring().size(), 0u);  // drained

  ASSERT_TRUE(k.sys_exit().ok());
}

// (c) kernel attempt to map the secure region is rejected.
TEST(Isolation, SecureSpaceUnmappableByKernel) {
  auto sys = hypernel_system(false);
  kernel::Kernel& k = sys->kernel();
  // Not mapped in the linear map at all:
  const VirtAddr secure_va = kernel::phys_to_virt(sys->machine().secure_base());
  EXPECT_FALSE(sys->machine().read64(secure_va).ok);
  // ...and a forged mapping request is denied end to end:
  Result<PhysAddr> root = k.kpt().alloc_user_root();
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE(k.kpt()
                   .map_page(root.value(), 0x400000,
                             sys->machine().secure_base() + kPageSize,
                             sim::PageAttrs{.write = true, .user = true})
                   .ok());
  EXPECT_GT(sys->hypersec()->verifier().stats().denied_secure_map, 0u);
}

// (d) W^X violations rejected.
TEST(Isolation, WxViolationRejected) {
  auto sys = hypernel_system(false);
  kernel::Kernel& k = sys->kernel();
  Result<PhysAddr> root = k.kpt().alloc_user_root();
  ASSERT_TRUE(root.ok());
  Result<PhysAddr> frame = k.buddy().alloc_page();
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(k.kpt()
                   .map_page(root.value(), 0x400000, frame.value(),
                             sim::PageAttrs{.write = true, .exec = true,
                                            .user = true})
                   .ok());
  EXPECT_GT(sys->hypersec()->verifier().stats().denied_wx, 0u);
}

// (e) direct PT write (bypassing the hypercall) faults: pages are RO.
TEST(Isolation, DirectPtWriteFaults) {
  auto sys = hypernel_system(false);
  kernel::Kernel& k = sys->kernel();
  const PhysAddr root = k.procs().current().ttbr0;
  const VirtAddr root_va = kernel::phys_to_virt(root);
  const u64 evil_desc =
      sim::make_page_desc(0x400000, sim::PageAttrs{.write = true});
  const sim::Access64 w = sys->machine().write64(root_va, evil_desc);
  EXPECT_FALSE(w.ok);
  EXPECT_EQ(w.fault.type, sim::FaultType::kPermission);
  EXPECT_NE(sys->machine().phys().read64(root), evil_desc);
}

// (f) ATRA: a TTBR redirect defeats the bare external monitor but is
// trapped by Hypersec.
TEST(Atra, BaselineExternalMonitorBypassed) {
  // Native system carrying the raw MBM, no Hypersec: the related-work
  // external-monitor setup (§2, KI-Mon-style).
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = true;
  auto sys_r = System::create(cfg);
  ASSERT_TRUE(sys_r.ok());
  auto sys = std::move(sys_r).value();
  kernel::Kernel& k = sys->kernel();

  // The monitor watches the physical frame of a victim object it learned
  // about at configuration time.
  ASSERT_TRUE(k.sys_creat("/secret").ok());
  const VirtAddr victim_va =
      k.vfs().cached_dentry(k.vfs().root_ino(), "secret");
  ASSERT_NE(victim_va, 0u);
  const PhysAddr victim_pa = kernel::virt_to_phys(victim_va);

  secapps::BaselineExternalMonitor monitor(sys->machine(), *sys->mbm());
  monitor.watch_phys(victim_pa, 128);
  // The firmware also configured the page non-cacheable at boot.
  ASSERT_TRUE(k.kpt()
                  .protect_linear(page_align_down(victim_pa),
                                  sim::PageAttrs{
                                      .write = true,
                                      .attr = sim::MemAttr::kNonCacheable})
                  .ok());

  // Sanity: a direct write IS seen.
  ASSERT_TRUE(sys->machine()
                  .write64(victim_va + kernel::DentryLayout::kOp * 8, 0x111)
                  .ok);
  monitor.poll();
  ASSERT_TRUE(monitor.saw_write_to(victim_pa + kernel::DentryLayout::kOp * 8));

  // ATRA: the attacker *relocates* the object — copies the dentry to an
  // attacker page and rewires the kernel's linear mapping of the victim VA
  // to point at the copy.  Under Native nothing stops the PT edit.
  Result<PhysAddr> evil_frame = k.buddy().alloc_page();
  ASSERT_TRUE(evil_frame.ok());
  u8 copy[kPageSize];
  sys->machine().phys().read_block(page_align_down(victim_pa), copy, kPageSize);
  sys->machine().phys().write_block(evil_frame.value(), copy, kPageSize);
  ASSERT_TRUE(k.kpt()
                  .map_page(k.kpt().kernel_root(),
                            page_align_down(victim_va), evil_frame.value(),
                            sim::PageAttrs{.write = true})
                  .ok());  // the redirect succeeds on the bare system

  // Tampering through the same VA now lands on the unwatched frame:
  const u64 events_before = monitor.events().size();
  ASSERT_TRUE(sys->machine()
                  .write64(victim_va + kernel::DentryLayout::kOp * 8, 0xBAD)
                  .ok);
  monitor.poll();
  EXPECT_EQ(monitor.events().size(), events_before);  // silence: bypassed
}

TEST(Atra, HypersecBlocksTheRedirect) {
  auto sys = hypernel_system();
  kernel::Kernel& k = sys->kernel();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  ASSERT_TRUE(k.sys_creat("/secret").ok());
  const VirtAddr victim_va =
      k.vfs().cached_dentry(k.vfs().root_ino(), "secret");

  // Step 1 of the same attack: rewiring the kernel linear map.  The PT
  // write hypercall is denied (sealed kernel tree)...
  Result<PhysAddr> evil_frame = k.buddy().alloc_page();
  ASSERT_TRUE(evil_frame.ok());
  EXPECT_FALSE(k.kpt()
                   .map_page(k.kpt().kernel_root(),
                             page_align_down(victim_va), evil_frame.value(),
                             sim::PageAttrs{.write = true})
                   .ok());
  // ...and so is installing a whole forged translation root:
  EXPECT_FALSE(sys->machine().write_sysreg_el1(sim::SysReg::TTBR1_EL1,
                                               evil_frame.value()));
  EXPECT_GT(sys->hypersec()->stats().trap_denials, 0u);

  // The monitored object still monitors: tampering is detected.
  ASSERT_TRUE(sys->machine()
                  .write64(victim_va + kernel::DentryLayout::kOp * 8, 0xBAD)
                  .ok);
  EXPECT_FALSE(monitor.alerts().empty());
}

// (g) negative control: leave the monitored page cacheable and the MBM
// misses the event — the §5.3 design decision in reverse.
TEST(Visibility, CacheableMonitoredPageMissesEvents) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;  // raw MBM without Hypersec's NC remap
  cfg.enable_mbm = true;
  auto sys_r = System::create(cfg);
  ASSERT_TRUE(sys_r.ok());
  auto sys = std::move(sys_r).value();
  kernel::Kernel& k = sys->kernel();

  ASSERT_TRUE(k.sys_creat("/cached").ok());
  const VirtAddr va = k.vfs().cached_dentry(k.vfs().root_ino(), "cached");
  const PhysAddr pa = kernel::virt_to_phys(va);
  secapps::BaselineExternalMonitor monitor(sys->machine(), *sys->mbm());
  monitor.watch_phys(pa, 128);
  // Page left NORMAL CACHEABLE: the write is absorbed by the cache.
  ASSERT_TRUE(
      sys->machine().write64(va + kernel::DentryLayout::kOp * 8, 0x666).ok);
  monitor.poll();
  EXPECT_FALSE(monitor.saw_write_to(pa + kernel::DentryLayout::kOp * 8));
}

// The flight recorder links the whole detection story: a rootkit-style
// tampering write is walked backward from its Hypersec verdict through
// IRQ, bitmap match, FIFO accept and the bus transaction, and the
// per-segment latency split telescopes exactly to end-to-end.
TEST(CausalChain, RootkitWriteLinksWriteToVerdict) {
  auto sys = hypernel_system();
  sys->machine().trace().set_enabled(true);
  kernel::Kernel& k = sys->kernel();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  ASSERT_TRUE(k.sys_creat("/victim").ok());
  const VirtAddr victim_va =
      k.vfs().cached_dentry(k.vfs().root_ino(), "victim");
  ASSERT_NE(victim_va, 0u);
  const PhysAddr tampered_pa =
      kernel::virt_to_phys(victim_va) + kernel::DentryLayout::kOp * 8;

  // The attack: hook the dentry ops vtable.
  ASSERT_TRUE(
      sys->machine().write64(victim_va + kernel::DentryLayout::kOp * 8, 0xBAD)
          .ok);
  ASSERT_FALSE(monitor.alerts().empty());

  sim::TraceData data;
  ASSERT_TRUE(sim::parse_trace(sim::capture_trace(sys->machine()), data).ok());
  const sim::AttributionReport report = sim::build_attribution(data);
  ASSERT_GT(report.verdicts_total, 0u);
  EXPECT_GT(report.verdicts_alert, 0u);
  EXPECT_EQ(report.broken_chains, 0u);

  // Find the alert chain for the tampered word and check every link.
  const sim::DetectionChain* alert = nullptr;
  for (const sim::DetectionChain& c : report.chains) {
    if (c.complete && c.verdict.b == 1 && c.verdict.a == tampered_pa) {
      alert = &c;
    }
  }
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->bus_write.a, tampered_pa);
  EXPECT_EQ(alert->bus_write.b, 0xBADu);
  EXPECT_EQ(alert->detect.a, tampered_pa);
  EXPECT_TRUE(alert->has_irq);
  // Cause links actually chain: verdict -> detect -> fifo -> bus write.
  EXPECT_EQ(alert->verdict.cause, alert->detect.seq);
  EXPECT_EQ(alert->detect.cause, alert->fifo.seq);
  EXPECT_EQ(alert->fifo.cause, alert->bus_write.seq);
  // The segment split telescopes to the end-to-end detection latency.
  EXPECT_GT(alert->end_to_end, 0u);
  EXPECT_EQ(alert->bus_snoop + alert->fifo_residency + alert->bitmap_check +
                alert->irq_delivery + alert->verifier,
            alert->end_to_end);
}

// Hypercall interface fuzz-ish robustness: malformed calls are rejected,
// never crash, never corrupt state.
TEST(HvcInterface, MalformedCallsRejected) {
  auto sys = hypernel_system();
  sim::Machine& m = sys->machine();
  EXPECT_EQ(m.hvc(999, {}), hvc::kBadArgs);                    // unknown func
  EXPECT_EQ(m.hvc(hvc::kPtWrite, {}), hvc::kBadArgs);          // no args
  EXPECT_EQ(m.hvc(hvc::kPtWrite, {1, 2}), hvc::kBadArgs);      // short args
  EXPECT_EQ(m.hvc(hvc::kPtWrite, {0, 9999, 0}), hvc::kBadArgs);  // bad index
  EXPECT_EQ(m.hvc(hvc::kPtAlloc, {0x12345, 3}), hvc::kBadArgs);  // unaligned
  EXPECT_EQ(m.hvc(hvc::kPtAlloc, {0x10000, 7}), hvc::kBadArgs);  // bad level
  EXPECT_EQ(m.hvc(hvc::kPtFree, {0x400000}), hvc::kDenied);    // not a PT
  EXPECT_EQ(m.hvc(hvc::kMonRegister, {1, 2}), hvc::kBadArgs);
  // The system still works afterwards.
  EXPECT_TRUE(sys->kernel().sys_creat("/still-alive").ok());
}

// Ring-buffer pressure: a burst of monitored writes with the IRQ masked
// accumulates in the ring; nothing is lost until the ring capacity, and
// re-enabling delivery drains everything.
TEST(RingPressure, MaskedIrqAccumulatesThenDrains) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = true;
  cfg.mbm_ring_entries = 4096;
  auto sys_r = System::create(cfg);
  ASSERT_TRUE(sys_r.ok());
  auto sys = std::move(sys_r).value();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();

  sys->machine().gic().set_enabled(sim::kIrqMbm, false);
  for (int i = 0; i < 20; ++i) {
    char path[32];
    std::snprintf(path, sizeof(path), "/burst%d", i);
    ASSERT_TRUE(k.sys_creat(path).ok());
  }
  EXPECT_GT(sys->mbm()->ring().size(), 0u);
  const u64 queued = sys->mbm()->ring().size();
  sys->machine().gic().set_enabled(sim::kIrqMbm, true);
  sys->machine().gic().replay_pending();
  EXPECT_EQ(sys->mbm()->ring().size(), 0u);
  EXPECT_GE(monitor.stats().events_total, queued);
}

}  // namespace
}  // namespace hn
