// Functional/timing separation properties: hardware configuration knobs
// (TLB size, cache size, cache on/off) change *cycles*, never *behaviour*.
// A fixed workload must end in the same functional state everywhere —
// same file contents, same alerts, same event decisions — because the
// machine's timing model is observational, not semantic.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hypernel/system.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/object_monitor.h"

namespace hn {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

struct Fingerprint {
  u64 file_hash = 0;
  u64 inode_count = 0;
  u64 monitor_events = 0;
  u64 alerts = 0;
  Cycles cycles = 0;
};

Fingerprint run(const SystemConfig& cfg_in) {
  SystemConfig cfg = cfg_in;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = true;
  auto sys = System::create(cfg).value();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  EXPECT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();

  // A fixed mixed workload with one attack in the middle.
  EXPECT_TRUE(k.sys_mkdir("/w").ok());
  for (int i = 0; i < 24; ++i) {
    const std::string path = "/w/f" + std::to_string(i);
    Result<u64> ino = k.sys_creat(path);
    EXPECT_TRUE(ino.ok());
    u64 row[8] = {static_cast<u64>(i), 2, 3, 4, 5, 6, 7, 8};
    EXPECT_TRUE(k.sys_write(ino.value(), 0, row, sizeof(row)).ok());
    if (i % 5 == 4) {
      EXPECT_TRUE(k.sys_stat(path).ok());
    }
  }
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().lookup("/w").value(), "f3");
  sys->machine().write64(dva + kernel::DentryLayout::kOp * 8, 0xBAD);
  EXPECT_TRUE(k.sys_rename("/w/f7", "/w/g7").ok());
  EXPECT_TRUE(k.sys_unlink("/w/f9").ok());

  Fingerprint fp;
  // FNV over every file's first row.
  fp.file_hash = 0xCBF29CE484222325ull;
  for (int i = 0; i < 24; ++i) {
    std::string path = "/w/f" + std::to_string(i);
    if (i == 7) path = "/w/g7";
    Result<u64> ino = k.vfs().lookup(path);
    if (!ino.ok()) continue;  // f9 unlinked
    u64 row[8] = {};
    EXPECT_TRUE(k.sys_read(ino.value(), 0, row, sizeof(row)).ok());
    for (const u64 w : row) fp.file_hash = (fp.file_hash ^ w) * 0x100000001B3ull;
  }
  fp.inode_count = k.vfs().inode_count();
  fp.monitor_events = monitor.stats().events_total;
  fp.alerts = monitor.alerts().size();
  fp.cycles = sys->machine().account().cycles();
  return fp;
}

TEST(ConfigInvariance, TimingKnobsNeverChangeBehaviour) {
  SystemConfig base;
  const Fingerprint ref = run(base);
  ASSERT_GT(ref.alerts, 0u);  // the attack was caught in the reference run

  SystemConfig tiny_tlb = base;
  tiny_tlb.machine.tlb_entries = 8;
  SystemConfig big_tlb = base;
  big_tlb.machine.tlb_entries = 2048;
  SystemConfig small_cache = base;
  small_cache.machine.cache.size_bytes = 4 * 1024;
  SystemConfig no_cache = base;
  no_cache.machine.cache.enabled = false;
  SystemConfig slow_dram = base;
  slow_dram.machine.timing.l1_miss_fill = 400;

  const SystemConfig* variants[] = {&tiny_tlb, &big_tlb, &small_cache,
                                    &no_cache, &slow_dram};
  const char* names[] = {"tiny TLB", "big TLB", "small cache", "no cache",
                         "slow DRAM"};
  bool some_cycles_differ = false;
  for (size_t v = 0; v < std::size(variants); ++v) {
    const Fingerprint fp = run(*variants[v]);
    EXPECT_EQ(fp.file_hash, ref.file_hash) << names[v];
    EXPECT_EQ(fp.inode_count, ref.inode_count) << names[v];
    EXPECT_EQ(fp.monitor_events, ref.monitor_events) << names[v];
    EXPECT_EQ(fp.alerts, ref.alerts) << names[v];
    some_cycles_differ |= (fp.cycles != ref.cycles);
  }
  // ...while the knobs really did change the timing.
  EXPECT_TRUE(some_cycles_differ);
}

TEST(ConfigInvariance, RepeatRunsBitIdentical) {
  const Fingerprint a = run(SystemConfig{});
  const Fingerprint b = run(SystemConfig{});
  EXPECT_EQ(a.file_hash, b.file_hash);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.monitor_events, b.monitor_events);
}

}  // namespace
}  // namespace hn
