// End-to-end smoke tests: every configuration boots, runs the LMbench
// suite and a small app workload, and the Hypernel monitoring pipeline
// (Fig. 4 steps 1-8) delivers events.
#include <gtest/gtest.h>

#include "hypernel/system.h"
#include "secapps/object_monitor.h"
#include "workloads/apps.h"
#include "workloads/lmbench.h"

namespace hn {
namespace {

hypernel::SystemConfig config_for(hypernel::Mode mode, bool mbm = false) {
  hypernel::SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = mbm;
  return cfg;
}

TEST(Smoke, NativeBootsAndRunsLmbench) {
  auto sys = hypernel::System::create(config_for(hypernel::Mode::kNative));
  ASSERT_TRUE(sys.ok()) << sys.status().message();
  workloads::LmbenchSuite suite(*sys.value(), 4);
  const auto results = suite.run_all();
  ASSERT_EQ(results.size(), 9u);
  for (const auto& r : results) {
    EXPECT_GT(r.us, 0.0) << r.name;
  }
}

TEST(Smoke, KvmGuestBootsAndRunsLmbench) {
  auto sys = hypernel::System::create(config_for(hypernel::Mode::kKvmGuest));
  ASSERT_TRUE(sys.ok()) << sys.status().message();
  workloads::LmbenchSuite suite(*sys.value(), 4);
  const auto results = suite.run_all();
  ASSERT_EQ(results.size(), 9u);
  EXPECT_GT(sys.value()->kvm()->stats().s2_faults_serviced, 0u);
}

TEST(Smoke, HypernelBootsAndRunsLmbench) {
  auto sys =
      hypernel::System::create(config_for(hypernel::Mode::kHypernel, true));
  ASSERT_TRUE(sys.ok()) << sys.status().message();
  workloads::LmbenchSuite suite(*sys.value(), 4);
  const auto results = suite.run_all();
  ASSERT_EQ(results.size(), 9u);
  EXPECT_GT(sys.value()->hypersec()->stats().pt_write_calls, 0u);
}

TEST(Smoke, MonitoringPipelineDeliversEvents) {
  auto sys =
      hypernel::System::create(config_for(hypernel::Mode::kHypernel, true));
  ASSERT_TRUE(sys.ok()) << sys.status().message();
  secapps::ObjectIntegrityMonitor monitor(*sys.value(),
                                          secapps::Granularity::kWholeObject);
  ASSERT_TRUE(monitor.install().ok());

  workloads::AppParams p;
  p.scale = 0.1;
  const auto r = workloads::run_untar(*sys.value(), p);
  EXPECT_GT(r.us, 0.0);
  EXPECT_GT(monitor.stats().events_total, 0u);
  EXPECT_GT(sys.value()->mbm()->stats().detections, 0u);
  EXPECT_EQ(monitor.alerts().size(), 0u) << monitor.alerts()[0].reason;
}

}  // namespace
}  // namespace hn
