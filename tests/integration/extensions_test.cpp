// Extension tests: the §8 discussion items made concrete (DMA attacks,
// IOMMU protection, MBM detection of DMA tampering), the Vigilare-style
// snapshot monitor vs transient attacks, Hypersec's invariant audit under
// attack storms, and multi-application event routing.
#include <gtest/gtest.h>

#include <memory>

#include "common/hvc_abi.h"
#include "common/rng.h"
#include "hypernel/system.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/object_monitor.h"
#include "secapps/snapshot_monitor.h"
#include "sim/dma_device.h"
#include "sim/iommu.h"

namespace hn {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> hypernel_system(bool mbm = true) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = mbm;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

// ---------------- DMA and IOMMU (§8) ----------------

TEST(Dma, BypassModeAllowsEverything) {
  auto sys = hypernel_system(false);
  sim::Iommu iommu;  // power-on default: bypass
  sim::DmaDevice nic(sys->machine(), iommu, /*stream_id=*/1);
  // Without protection, the device can scribble over the secure space.
  EXPECT_TRUE(nic.write64(sys->machine().secure_base() + 64, 0xDEAD));
  EXPECT_EQ(sys->machine().phys().read64(sys->machine().secure_base() + 64),
            0xDEADu);
}

TEST(Dma, HypersecIommuProtectsSecureSpace) {
  auto sys = hypernel_system(false);
  sim::Iommu iommu;
  sim::DmaDevice nic(sys->machine(), iommu, 1);
  const u32 streams[] = {1};
  ASSERT_TRUE(sys->hypersec()->enable_dma_protection(iommu, streams).ok());

  // Normal DRAM still works...
  EXPECT_TRUE(nic.write64(0x4000000, 0x1));
  // ...the secure space does not, and the fault is counted.
  const PhysAddr target = sys->machine().secure_base() + 64;
  EXPECT_FALSE(nic.write64(target, 0xDEAD));
  EXPECT_NE(sys->machine().phys().read64(target), 0xDEADu);
  EXPECT_EQ(iommu.faults(), 1u);
}

TEST(Dma, UnknownStreamBlockedEntirely) {
  auto sys = hypernel_system(false);
  sim::Iommu iommu;
  sim::DmaDevice rogue(sys->machine(), iommu, /*stream_id=*/99);
  const u32 streams[] = {1};  // only stream 1 was provisioned
  ASSERT_TRUE(sys->hypersec()->enable_dma_protection(iommu, streams).ok());
  EXPECT_FALSE(rogue.write64(0x4000000, 1));
  u64 out = 0;
  EXPECT_FALSE(rogue.read(0x4000000, &out, 8));
}

TEST(Dma, MbmSeesDmaWritesToMonitoredObjects) {
  // §8: "since our MBM can watch the bus traffic ... we expect that
  // Hypernel can detect such an attack" — a DMA write into a monitored
  // object IS bus traffic, and the pipeline fires end to end.
  auto sys = hypernel_system(true);
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/dma-victim").ok());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "dma-victim");
  const PhysAddr dpa = kernel::virt_to_phys(dva);

  sim::Iommu iommu;  // bypass: a peripheral the attacker owns
  sim::DmaDevice evil(sys->machine(), iommu, 7);
  ASSERT_TRUE(
      evil.write64(dpa + kernel::DentryLayout::kOp * kWordSize, 0xBADD));
  ASSERT_FALSE(monitor.alerts().empty());
  EXPECT_NE(monitor.alerts().back().reason.find("vtable"), std::string::npos);
}

TEST(Dma, DmaProtectionRequiresInit) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  // No Hypersec in native mode; nothing to call — construct one unbooted:
  // covered instead by the precondition on an uninitialised Hypersec via
  // the hypernel system (Hypersec is always initialised there), so this
  // test just pins the IOMMU default.
  sim::Iommu iommu;
  EXPECT_FALSE(iommu.enabled());
}

// ---------------- snapshot vs event-triggered (§2) ----------------

TEST(SnapshotMonitor, DetectsPersistentModification) {
  auto sys = hypernel_system(false);
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/snap").ok());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "snap");

  secapps::SnapshotMonitor snap(*sys);
  ASSERT_TRUE(snap.watch(dva, 128, "dentry /snap").ok());
  EXPECT_EQ(snap.scan(), 0u);  // clean

  ASSERT_TRUE(sys->machine()
                  .write64(dva + kernel::DentryLayout::kOp * kWordSize, 0xBAD)
                  .ok);
  EXPECT_EQ(snap.scan(), 1u);
  ASSERT_EQ(snap.alerts().size(), 1u);
  EXPECT_EQ(snap.alerts()[0].label, "dentry /snap");
  // Persistent change reported once, not on every scan.
  EXPECT_EQ(snap.scan(), 0u);
}

TEST(SnapshotMonitor, RebaselineAcceptsLegitimateUpdate) {
  auto sys = hypernel_system(false);
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/rb").ok());
  const VirtAddr dva = k.vfs().cached_dentry(k.vfs().root_ino(), "rb");
  secapps::SnapshotMonitor snap(*sys);
  ASSERT_TRUE(snap.watch(dva, 128, "rb").ok());
  ASSERT_TRUE(k.sys_rename("/rb", "/rb2").ok());  // legitimate name change
  ASSERT_TRUE(snap.rebaseline(dva).ok());
  EXPECT_EQ(snap.scan(), 0u);
}

TEST(SnapshotMonitor, TransientAttackEvadesSnapshotButNotMbm) {
  // The classic weakness of polling integrity monitors: modify, use,
  // restore between scans.  The event-triggered MBM pipeline sees both
  // writes the instant they occur.
  auto sys = hypernel_system(true);
  secapps::ObjectIntegrityMonitor event_monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(event_monitor.install().ok());
  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_setuid(1000).ok());

  const VirtAddr cred = k.procs().current().cred;
  secapps::SnapshotMonitor snap(*sys);
  ASSERT_TRUE(snap.watch(cred, 128, "current cred").ok());

  // Transient escalation: uid -> 0, do evil, uid -> 1000, all between
  // two scans.
  const u64 word = kernel::CredLayout::kUid * kWordSize;
  ASSERT_TRUE(sys->machine().write64(cred + word, 0).ok);
  ASSERT_TRUE(sys->machine().write64(cred + word, 1000).ok);
  EXPECT_EQ(snap.scan(), 0u);                 // snapshot: nothing to see
  EXPECT_FALSE(event_monitor.alerts().empty());  // MBM: caught in the act
}

// ---------------- invariant audit + attack storm ----------------

TEST(Audit, CleanSystemHasNoViolations) {
  auto sys = hypernel_system(false);
  EXPECT_TRUE(sys->hypersec()->audit().empty());
}

TEST(Audit, HoldsAfterHeavyLegitimateActivity) {
  auto sys = hypernel_system(false);
  kernel::Kernel& k = sys->kernel();
  kernel::Task* init = &k.procs().current();
  for (int i = 0; i < 8; ++i) {
    Result<u32> pid = k.sys_fork();
    ASSERT_TRUE(pid.ok());
    kernel::Task* child = k.procs().find(pid.value());
    k.procs().switch_to(*child);
    if (i % 2 == 0) {
      ASSERT_TRUE(k.sys_execve().ok());
    }
    Result<VirtAddr> va = k.sys_mmap(16 * kPageSize, true);
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(k.procs().touch_page(va.value(), true).ok());
    ASSERT_TRUE(k.sys_exit().ok());
    k.procs().switch_to(*init);
  }
  EXPECT_TRUE(sys->hypersec()->audit().empty());
}

TEST(Audit, HoldsUnderForgedHypercallStorm) {
  // A compromised kernel sprays the hypercall interface with random PT
  // writes; whatever gets through must preserve every invariant.
  auto sys = hypernel_system(false);
  kernel::Kernel& k = sys->kernel();
  SplitMix64 rng(0xA77AC4);
  u64 accepted = 0;
  const PhysAddr user_root = k.procs().current().ttbr0;
  for (int i = 0; i < 2000; ++i) {
    // Mix of targets: random pages, the live user root, sealed kernel
    // tables; random descriptors including W+X, secure-space and
    // table-splice attempts.
    PhysAddr table;
    switch (rng.next_below(3)) {
      case 0: table = page_align_down(rng.next_below(sys->machine().phys().size())); break;
      case 1: table = user_root; break;
      default: table = k.kpt().kernel_root(); break;
    }
    const u64 idx = rng.next_below(kPtEntries);
    u64 desc = rng.next();
    if (rng.chance(1, 2)) {
      // Make it look plausible: a valid page descriptor somewhere.
      desc = sim::make_page_desc(
          page_align_down(rng.next_below(sys->machine().phys().size())),
          sim::PageAttrs{.write = rng.chance(1, 2), .exec = rng.chance(1, 2),
                         .user = true});
    }
    if (sys->machine().hvc(hvc::kPtWrite, {table, idx, desc}) == hvc::kOk) {
      ++accepted;
    }
  }
  const auto violations = sys->hypersec()->audit();
  EXPECT_TRUE(violations.empty())
      << violations[0] << " (after " << accepted << " accepted writes)";
  // The kernel still functions.
  EXPECT_TRUE(k.sys_creat("/survivor").ok());
}

// ---------------- multiple security applications ----------------

TEST(MultiApp, EventsRouteBySid) {
  auto sys = hypernel_system(true);
  // App 1 watches creds only; app 2 watches dentries only.
  secapps::ObjectIntegrityMonitor cred_app(
      *sys, secapps::Granularity::kSensitiveFields, /*watch_cred=*/true,
      /*watch_dentry=*/false, /*sid=*/1);
  secapps::ObjectIntegrityMonitor dentry_app(
      *sys, secapps::Granularity::kSensitiveFields, /*watch_cred=*/false,
      /*watch_dentry=*/true, /*sid=*/2);
  ASSERT_TRUE(cred_app.install().ok());
  ASSERT_TRUE(dentry_app.install().ok());

  kernel::Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/routed").ok());  // dentry events
  ASSERT_TRUE(k.sys_setuid(1000).ok());      // cred events

  EXPECT_GT(cred_app.stats().events_cred, 0u);
  EXPECT_EQ(cred_app.stats().events_dentry, 0u);
  EXPECT_GT(dentry_app.stats().events_dentry, 0u);
  EXPECT_EQ(dentry_app.stats().events_cred, 0u);
  EXPECT_EQ(sys->hypersec()->mbm_driver()->unattributed_events(), 0u);
}

}  // namespace
}  // namespace hn
