// MMU tests: stage-1 walks, permissions, TLB behaviour (ASIDs, flushes),
// stage-2 nesting (the 24-descriptor-fetch blow-up), and stage-2 faults.
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/pagetable.h"

namespace hn::sim {
namespace {

/// Hand-rolled table builder over a machine's physical memory.
class TableBuilder {
 public:
  explicit TableBuilder(Machine& m, PhysAddr pool_base)
      : m_(m), next_(pool_base) {}

  PhysAddr alloc_table() {
    const PhysAddr t = next_;
    next_ += kPageSize;
    m_.phys().zero_range(t, kPageSize);
    return t;
  }

  /// Map va -> pa in the stage-1 tree rooted at `root` (4 KiB page).
  void map(PhysAddr root, VirtAddr va, PhysAddr pa, const PageAttrs& attrs) {
    PhysAddr table = root;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + va_index(va, level) * 8;
      u64 d = m_.phys().read64(slot);
      if (!desc_valid(d)) {
        const PhysAddr next = alloc_table();
        d = make_table_desc(next);
        m_.phys().write64(slot, d);
      }
      table = desc_out_addr(d);
    }
    m_.phys().write64(table + va_index(va, 3) * 8, make_page_desc(pa, attrs));
  }

  /// Identity stage-2 mapping of [0, limit).
  PhysAddr build_s2_identity(u64 limit, bool write_ok = true) {
    const PhysAddr root = alloc_table();
    for (PhysAddr pa = 0; pa < limit; pa += kPageSize) {
      PhysAddr table = root;
      for (unsigned level = 0; level <= 2; ++level) {
        const PhysAddr slot = table + va_index(pa, level) * 8;
        u64 d = m_.phys().read64(slot);
        if (!desc_valid(d)) {
          const PhysAddr next = alloc_table();
          d = make_table_desc(next);
          m_.phys().write64(slot, d);
        }
        table = desc_out_addr(d);
      }
      m_.phys().write64(table + va_index(pa, 3) * 8,
                        make_s2_page_desc(pa, S2Attrs{true, write_ok}));
    }
    return root;
  }

  Machine& m_;
  PhysAddr next_;
};

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : machine_(MachineConfig{}), tb_(machine_, 1 * 1024 * 1024) {
    root_ = tb_.alloc_table();
    user_root_ = tb_.alloc_table();
    ctx_.ttbr1 = root_;
    ctx_.ttbr0 = user_root_;
    ctx_.asid = 1;
  }

  TranslateOutcome translate(VirtAddr va, bool write = false,
                             bool user = false) {
    AccessType at;
    at.is_write = write;
    at.is_user = user;
    return machine_.mmu().translate(va, at, ctx_);
  }

  Machine machine_;
  TableBuilder tb_;
  PhysAddr root_ = 0;
  PhysAddr user_root_ = 0;
  WalkContext ctx_;
};

TEST_F(MmuTest, KernelWalkTranslates) {
  const VirtAddr va = kKernelVaBase + 0x12345000;
  tb_.map(root_, va, 0x00045000, PageAttrs{.write = true});
  const TranslateOutcome out = translate(va + 0x678);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.t.pa, 0x00045678u);
  EXPECT_TRUE(out.t.attrs.write);
}

TEST_F(MmuTest, UserHalfUsesTtbr0) {
  tb_.map(user_root_, 0x400000, 0x9000, PageAttrs{.user = true});
  const TranslateOutcome out = translate(0x400000, false, true);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.t.pa, 0x9000u);
}

TEST_F(MmuTest, UnmappedFaults) {
  const TranslateOutcome out = translate(kKernelVaBase + 0xDEAD000);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.fault.type, FaultType::kTranslation);
}

TEST_F(MmuTest, NullRootFaults) {
  ctx_.ttbr0 = 0;
  const TranslateOutcome out = translate(0x1000, false, true);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.fault.type, FaultType::kTranslation);
}

TEST_F(MmuTest, WriteToReadOnlyFaults) {
  const VirtAddr va = kKernelVaBase + 0x1000;
  tb_.map(root_, va, 0x2000, PageAttrs{.write = false});
  EXPECT_TRUE(translate(va, false).ok);
  const TranslateOutcome w = translate(va, true);
  ASSERT_FALSE(w.ok);
  EXPECT_EQ(w.fault.type, FaultType::kPermission);
  EXPECT_TRUE(w.fault.is_write);
}

TEST_F(MmuTest, UserCannotTouchKernelPage) {
  const VirtAddr va = 0x500000;
  tb_.map(user_root_, va, 0x3000, PageAttrs{.write = true, .user = false});
  const TranslateOutcome out = translate(va, false, true);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.fault.type, FaultType::kPermission);
}

TEST_F(MmuTest, TlbCachesTranslation) {
  const VirtAddr va = kKernelVaBase + 0x7000;
  tb_.map(root_, va, 0x7000, PageAttrs{.write = true});
  translate(va);
  EXPECT_EQ(machine_.counters().tlb_misses, 1u);
  translate(va + 8);
  EXPECT_EQ(machine_.counters().tlb_hits, 1u);
  EXPECT_EQ(machine_.counters().tlb_misses, 1u);
}

TEST_F(MmuTest, TlbHonoursAsidsForNonGlobal) {
  const VirtAddr va = 0x600000;
  tb_.map(user_root_, va, 0xA000, PageAttrs{.user = true, .global = false});
  translate(va, false, true);
  // Same VA under a different ASID must re-walk (and, here, fault: the
  // other address space has no such mapping... same root in this test, so
  // it re-walks and succeeds — the point is the TLB miss).
  ctx_.asid = 2;
  translate(va, false, true);
  EXPECT_EQ(machine_.counters().tlb_misses, 2u);
}

TEST_F(MmuTest, GlobalEntrySharedAcrossAsids) {
  const VirtAddr va = kKernelVaBase + 0x8000;
  tb_.map(root_, va, 0x8000, PageAttrs{.global = true});
  translate(va);
  ctx_.asid = 7;
  translate(va);
  EXPECT_EQ(machine_.counters().tlb_misses, 1u);
  EXPECT_EQ(machine_.counters().tlb_hits, 1u);
}

TEST_F(MmuTest, FlushVaDropsEntry) {
  const VirtAddr va = kKernelVaBase + 0x9000;
  tb_.map(root_, va, 0x9000, PageAttrs{});
  translate(va);
  machine_.tlb().flush_va(va);
  translate(va);
  EXPECT_EQ(machine_.counters().tlb_misses, 2u);
}

TEST_F(MmuTest, StalePermissionNotCachedAfterUpgrade) {
  // Map RO, fault on write, upgrade to RW, flush, write succeeds.
  const VirtAddr va = kKernelVaBase + 0xB000;
  tb_.map(root_, va, 0xB000, PageAttrs{.write = false});
  EXPECT_FALSE(translate(va, true).ok);
  tb_.map(root_, va, 0xB000, PageAttrs{.write = true});
  machine_.tlb().flush_va(va);
  EXPECT_TRUE(translate(va, true).ok);
}

TEST_F(MmuTest, BlockMappingTranslates) {
  // 2 MiB block at level 2.
  PhysAddr table = root_;
  const VirtAddr va = kKernelVaBase + 2 * kSectionSize;
  for (unsigned level = 0; level <= 1; ++level) {
    const PhysAddr slot = table + va_index(va, level) * 8;
    u64 d = machine_.phys().read64(slot);
    if (!desc_valid(d)) {
      const PhysAddr next = tb_.alloc_table();
      d = make_table_desc(next);
      machine_.phys().write64(slot, d);
    }
    table = desc_out_addr(d);
  }
  machine_.phys().write64(table + va_index(va, 2) * 8,
                          make_block_desc(0x00400000, PageAttrs{.write = true}));
  const TranslateOutcome out = translate(va + 0x123456);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.t.pa, 0x00400000u + 0x123456u);
}

TEST_F(MmuTest, Stage1WalkCostsFourFetches) {
  const VirtAddr va = kKernelVaBase + 0xC000;
  tb_.map(root_, va, 0xC000, PageAttrs{});
  const u64 before = machine_.counters().pt_descriptor_fetches;
  translate(va);
  EXPECT_EQ(machine_.counters().pt_descriptor_fetches - before, 4u);
}

// ---------------- Stage 2 ----------------

class Stage2Test : public MmuTest {
 protected:
  Stage2Test() {
    s2_root_ = tb_.build_s2_identity(8 * 1024 * 1024);
    ctx_.stage2_enabled = true;
    ctx_.vttbr = s2_root_;
  }
  PhysAddr s2_root_ = 0;
};

TEST_F(Stage2Test, NestedWalkTranslates) {
  const VirtAddr va = kKernelVaBase + 0x10000;
  tb_.map(root_, va, 0x10000, PageAttrs{.write = true});
  const TranslateOutcome out = translate(va);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.t.pa, 0x10000u);
  EXPECT_TRUE(out.t.s2_write_ok);
}

TEST_F(Stage2Test, NestedWalkCostsTwentyFourFetches) {
  // 4 stage-1 fetches, each stage-2 translated (4 fetches), plus the final
  // output translation (4 fetches): 4 + 4*4 + 4 = 24.  The architectural
  // blow-up of §1.
  const VirtAddr va = kKernelVaBase + 0x11000;
  tb_.map(root_, va, 0x11000, PageAttrs{});
  const u64 s1_before = machine_.counters().pt_descriptor_fetches;
  const u64 s2_before = machine_.counters().s2_descriptor_fetches;
  translate(va);
  EXPECT_EQ(machine_.counters().pt_descriptor_fetches - s1_before, 4u);
  EXPECT_EQ(machine_.counters().s2_descriptor_fetches - s2_before, 20u);
}

TEST_F(Stage2Test, TlbHitSkipsNestedWalk) {
  const VirtAddr va = kKernelVaBase + 0x12000;
  tb_.map(root_, va, 0x12000, PageAttrs{});
  translate(va);
  const u64 s2_before = machine_.counters().s2_descriptor_fetches;
  translate(va + 8);
  EXPECT_EQ(machine_.counters().s2_descriptor_fetches, s2_before);
}

TEST_F(Stage2Test, UnmappedIpaRaisesS2TranslationFault) {
  const VirtAddr va = kKernelVaBase + 0x13000;
  tb_.map(root_, va, 9 * 1024 * 1024, PageAttrs{});  // beyond s2 identity map
  const TranslateOutcome out = translate(va);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.fault.type, FaultType::kS2Translation);
  EXPECT_EQ(out.fault.ipa, 9u * 1024 * 1024);
  EXPECT_EQ(out.fault.va, va);
}

TEST_F(Stage2Test, WriteProtectedIpaFaultsOnWriteOnly) {
  // Rebuild stage 2 with one write-protected page.
  const IpaAddr target = 0x20000;
  PhysAddr table = s2_root_;
  for (unsigned level = 0; level <= 2; ++level) {
    table = desc_out_addr(machine_.phys().read64(table + va_index(target, level) * 8));
  }
  machine_.phys().write64(table + va_index(target, 3) * 8,
                          make_s2_page_desc(target, S2Attrs{true, false}));

  const VirtAddr va = kKernelVaBase + 0x14000;
  tb_.map(root_, va, target, PageAttrs{.write = true});
  EXPECT_TRUE(translate(va, false).ok);

  const TranslateOutcome w = translate(va, true);
  ASSERT_FALSE(w.ok);
  EXPECT_EQ(w.fault.type, FaultType::kS2Permission);
}

TEST_F(Stage2Test, WpFaultRepeatsFromTlbWithoutWalk) {
  const IpaAddr target = 0x30000;
  PhysAddr table = s2_root_;
  for (unsigned level = 0; level <= 2; ++level) {
    table = desc_out_addr(machine_.phys().read64(table + va_index(target, level) * 8));
  }
  machine_.phys().write64(table + va_index(target, 3) * 8,
                          make_s2_page_desc(target, S2Attrs{true, false}));
  const VirtAddr va = kKernelVaBase + 0x15000;
  tb_.map(root_, va, target, PageAttrs{.write = true});

  EXPECT_FALSE(translate(va, true).ok);  // first write: walks, caches RO-s2
  const u64 s2_before = machine_.counters().s2_descriptor_fetches;
  EXPECT_FALSE(translate(va, true).ok);  // second write: faults from TLB
  EXPECT_EQ(machine_.counters().s2_descriptor_fetches, s2_before);
  EXPECT_GE(machine_.counters().s2_permission_faults, 2u);
}

TEST_F(Stage2Test, TranslateIpaDirect) {
  const TranslateOutcome out =
      machine_.mmu().translate_ipa(0x41238, false, ctx_);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.t.pa, 0x41238u);
}

}  // namespace
}  // namespace hn::sim
