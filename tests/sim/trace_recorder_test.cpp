// Flight-recorder persistence and analysis tests: binary round-trip,
// parser rejection of corrupt blobs, causal-chain attribution on a
// synthetic detection chain, and the golden Chrome trace-event export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/trace.h"
#include "sim/trace_io.h"
#include "sim/trace_report.h"

namespace hn::sim {
namespace {

/// A small trace + span tracer with known contents.
struct Fixture {
  Trace trace{8};
  obs::Registry registry;
  obs::SpanTracer tracer{registry};
  Cycles clock = 0;

  Fixture() {
    trace.set_enabled(true);
    tracer.bind_clock(&clock);
    const u64 root = trace.record(100, TraceKind::kBusWrite, 0x2000, 0xABC);
    trace.record_caused(150, TraceKind::kMbmFifo, root, 5, 100);
    trace.record(200, TraceKind::kCustom, 1, 2);
    const u32 id = tracer.intern("verify");
    clock = 120;
    tracer.enter(id);
    clock = 180;
    tracer.exit(id);
  }
};

TEST(TraceIo, SerializeParseRoundTrip) {
  Fixture f;
  const std::vector<u8> blob = serialize_trace(f.trace, &f.tracer, 2.0);
  TraceData data;
  ASSERT_TRUE(parse_trace(blob, data).ok());

  EXPECT_EQ(data.version, kTraceFormatVersion);
  EXPECT_DOUBLE_EQ(data.cpu_ghz, 2.0);
  EXPECT_EQ(data.seq_end, 3u);
  EXPECT_EQ(data.first_seq, 0u);
  EXPECT_EQ(data.trace_dropped, 0u);
  EXPECT_EQ(data.span_dropped, 0u);

  ASSERT_EQ(data.events.size(), 3u);
  EXPECT_EQ(data.events[0].at, 100u);
  EXPECT_EQ(data.events[0].seq, 0u);
  EXPECT_EQ(data.events[0].cause, kNoCause);
  EXPECT_EQ(data.events[0].kind, TraceKind::kBusWrite);
  EXPECT_EQ(data.events[0].a, 0x2000u);
  EXPECT_EQ(data.events[0].b, 0xABCu);
  EXPECT_EQ(data.events[1].kind, TraceKind::kMbmFifo);
  EXPECT_EQ(data.events[1].cause, 0u);
  EXPECT_EQ(data.events[1].a, 5u);
  EXPECT_EQ(data.events[1].b, 100u);
  EXPECT_EQ(data.events[2].seq, 2u);

  ASSERT_EQ(data.span_names.size(), 1u);
  EXPECT_EQ(data.span_names[0], "verify");
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].name_id, 0u);
  EXPECT_EQ(data.spans[0].depth, 0u);
  EXPECT_EQ(data.spans[0].begin, 120u);
  EXPECT_EQ(data.spans[0].end, 180u);
  EXPECT_EQ(data.spans[0].self, 60u);
}

TEST(TraceIo, SerializationIsDeterministic) {
  Fixture a, b;
  EXPECT_EQ(serialize_trace(a.trace, &a.tracer, 2.0),
            serialize_trace(b.trace, &b.tracer, 2.0));
}

TEST(TraceIo, RoundTripPreservesRingWrapAccounting) {
  Trace trace(4);
  trace.set_enabled(true);
  for (u64 i = 0; i < 10; ++i) trace.record(i, TraceKind::kCustom, i);
  const std::vector<u8> blob = serialize_trace(trace, nullptr, 1.0);
  TraceData data;
  ASSERT_TRUE(parse_trace(blob, data).ok());
  EXPECT_EQ(data.seq_end, 10u);
  EXPECT_EQ(data.first_seq, 6u);
  EXPECT_EQ(data.trace_dropped, 6u);
  ASSERT_EQ(data.events.size(), 4u);
  EXPECT_EQ(data.events.front().seq, 6u);
  EXPECT_EQ(data.events.back().seq, 9u);
}

TEST(TraceIo, ParseRejectsCorruptBlobs) {
  Fixture f;
  const std::vector<u8> good = serialize_trace(f.trace, &f.tracer, 2.0);
  TraceData data;
  ASSERT_TRUE(parse_trace(good, data).ok());

  EXPECT_FALSE(parse_trace({}, data).ok());

  std::vector<u8> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(parse_trace(bad_magic, data).ok());

  std::vector<u8> bad_version = good;
  bad_version[8] = 99;  // version field follows the 8-byte magic
  EXPECT_FALSE(parse_trace(bad_version, data).ok());

  std::vector<u8> truncated = good;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(parse_trace(truncated, data).ok());

  std::vector<u8> trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(parse_trace(trailing, data).ok());
}

TEST(TraceIo, RoundTripPreservesCoreProvenance) {
  // v2 of the format appends the originating core to every event; the
  // ambient stamp is set by the machine on every core switch.
  Trace trace(8);
  trace.set_enabled(true);
  trace.record(10, TraceKind::kSvc, 1);
  trace.set_active_core(1);
  trace.record(20, TraceKind::kBusWrite, 0x2000, 7);
  trace.set_active_core(0);
  trace.record(30, TraceKind::kIrq, 5);
  const std::vector<u8> blob = serialize_trace(trace, nullptr, 1.0);
  TraceData data;
  ASSERT_TRUE(parse_trace(blob, data).ok());
  EXPECT_EQ(data.version, 3u);
  ASSERT_EQ(data.events.size(), 3u);
  EXPECT_EQ(data.events[0].core, 0u);
  EXPECT_EQ(data.events[1].core, 1u);
  EXPECT_EQ(data.events[2].core, 0u);
}

TEST(TraceIo, ParsesVersion1BlobsAsCoreZero) {
  // Pre-SMP blobs (41-byte events, no core byte, no time-series
  // section) must keep loading: rewrite a v3 blob into its exact v1
  // form and parse it.
  Fixture f;
  const std::vector<u8> v3 = serialize_trace(f.trace, &f.tracer, 2.0);
  TraceData expected;
  ASSERT_TRUE(parse_trace(v3, expected).ok());

  std::vector<u8> v1 = v3;
  v1[8] = 1;  // version field follows the 8-byte magic
  // v1 has no trailing time-series section: drop the 8-byte length
  // word (0 here — the fixture machine never arms the sampler).
  v1.resize(v1.size() - 8);
  // Events start right after the 80-byte header; strip each trailing
  // core byte (last of 42), back to front so offsets stay valid.
  constexpr u64 kHeader = 80;
  for (size_t i = expected.events.size(); i-- > 0;) {
    v1.erase(v1.begin() + static_cast<long>(kHeader + i * 42 + 41));
  }
  TraceData data;
  ASSERT_TRUE(parse_trace(v1, data).ok());
  EXPECT_EQ(data.version, 1u);
  ASSERT_EQ(data.events.size(), expected.events.size());
  for (size_t i = 0; i < data.events.size(); ++i) {
    EXPECT_EQ(data.events[i].core, 0u) << "event " << i;
    EXPECT_EQ(data.events[i].seq, expected.events[i].seq) << "event " << i;
    EXPECT_EQ(data.events[i].at, expected.events[i].at) << "event " << i;
    EXPECT_EQ(data.events[i].kind, expected.events[i].kind) << "event " << i;
  }
  EXPECT_EQ(data.span_names, expected.span_names);

  // A truncated v1 event table is still rejected precisely.
  std::vector<u8> truncated = v1;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(parse_trace(truncated, data).ok());
}

/// A synthetic but faithfully-shaped detection chain: PT-write root, bus
/// write, FIFO accept, bitmap match, IRQ, verdict — plus one verdict whose
/// upstream links were evicted.
TraceData synthetic_chain() {
  TraceData data;
  data.cpu_ghz = 1.0;
  data.seq_end = 7;
  data.events = {
      {10, 0, kNoCause, TraceKind::kPtWrite, 0x8000, 0x703},
      {20, 1, 0, TraceKind::kBusWrite, 0x2000, 0x703},
      {20, 2, 1, TraceKind::kMbmFifo, 0, 100},
      {20, 3, 2, TraceKind::kMbmDetect, 0x2000, 0x703},
      {340, 4, 3, TraceKind::kIrq, 5, 0},
      {2300, 5, 3, TraceKind::kVerdict, 0x2000, 1},
      {2400, 6, 99, TraceKind::kVerdict, 0x3000, 2},
  };
  return data;
}

TEST(TraceReport, AttributionSplitsSyntheticChain) {
  const AttributionReport report = build_attribution(synthetic_chain());
  EXPECT_EQ(report.verdicts_total, 2u);
  EXPECT_EQ(report.verdicts_alert, 1u);
  EXPECT_EQ(report.verdicts_unattributed, 1u);
  EXPECT_EQ(report.broken_chains, 1u);
  ASSERT_EQ(report.chains.size(), 2u);

  const DetectionChain& c = report.chains[0];
  ASSERT_TRUE(c.complete);
  EXPECT_TRUE(c.has_pt_write);
  EXPECT_TRUE(c.has_irq);
  EXPECT_EQ(c.pt_write.seq, 0u);
  EXPECT_EQ(c.bus_snoop, 0u);
  EXPECT_EQ(c.fifo_residency, 0u);
  EXPECT_EQ(c.bitmap_check, 0u);
  EXPECT_EQ(c.irq_delivery, 320u);
  EXPECT_EQ(c.verifier, 1960u);
  EXPECT_EQ(c.end_to_end, 2280u);
  EXPECT_EQ(c.bus_snoop + c.fifo_residency + c.bitmap_check + c.irq_delivery +
                c.verifier,
            c.end_to_end);
  EXPECT_EQ(c.mbm_queue_wait, 0u);
  EXPECT_EQ(c.mbm_service, 100u);
  EXPECT_FALSE(report.chains[1].complete);

  const std::string text = render_attribution(report, 1.0);
  EXPECT_NE(text.find("2 verdict(s), 1 complete chain(s), 1 broken"),
            std::string::npos);
  EXPECT_NE(text.find("root: ptwrite"), std::string::npos);
  EXPECT_NE(text.find("irq-delivery"), std::string::npos);
  EXPECT_NE(text.find("alerts=1"), std::string::npos);
}

TEST(TraceReport, ChromeExportMatchesGolden) {
  TraceData data;
  data.cpu_ghz = 1.0;
  data.seq_end = 2;
  data.events = {
      {1000, 0, kNoCause, TraceKind::kBusWrite, 64, 7},
      {2000, 1, 0, TraceKind::kMbmFifo, 0, 100},
  };
  data.span_names = {"verify"};
  data.spans = {{0, 0, 1500, 1800, 300}};

  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"trace events\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"spans\"}},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":1.000,"
      "\"name\":\"buswrite\",\"args\":{\"seq\":0,\"cause\":-1,\"a\":64,"
      "\"b\":7}},\n"
      "{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":1.000,\"name\":\"cause\","
      "\"cat\":\"cause\",\"id\":1},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1.500,\"dur\":0.300,"
      "\"name\":\"verify\",\"args\":{\"depth\":0,\"self_cycles\":300}},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":2.000,"
      "\"name\":\"fifo\",\"args\":{\"seq\":1,\"cause\":0,\"a\":0,"
      "\"b\":100}},\n"
      "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":1,\"ts\":2.000,"
      "\"name\":\"cause\",\"cat\":\"cause\",\"id\":1}\n"
      "]}\n";
  EXPECT_EQ(export_chrome_json(data), expected);
}

TEST(TraceReport, DumpAndDiff) {
  const TraceData data = synthetic_chain();
  const std::string all = render_dump(data, "");
  EXPECT_NE(all.find("7 of 7 event(s) shown"), std::string::npos);
  const std::string verdicts = render_dump(data, "verdict");
  EXPECT_NE(verdicts.find("2 of 7 event(s) shown"), std::string::npos);
  EXPECT_EQ(verdicts.find("ptwrite"), std::string::npos);

  EXPECT_EQ(render_diff(data, data).rfind("traces identical", 0), 0u);
  TraceData other = synthetic_chain();
  other.events[3].b = 0x704;
  const std::string diff = render_diff(data, other);
  EXPECT_NE(diff.find("first divergence at event index 3"), std::string::npos);
}

TEST(TraceReport, DiffFlagsCoreProvenanceDivergence) {
  // Two traces identical except for the core an event originated on are
  // different traces: --cores determinism checks rely on this.
  const TraceData data = synthetic_chain();
  TraceData other = synthetic_chain();
  other.events[1].core = 1;
  const std::string diff = render_diff(data, other);
  EXPECT_NE(diff.find("first divergence at event index 1"), std::string::npos);
}

/// Two complete chains with distinct originating cores: the single-core
/// chain events of synthetic_chain() plus a second detection whose
/// monitored store came from core 1.
TraceData smp_synthetic_chains() {
  TraceData data;
  data.cpu_ghz = 1.0;
  data.seq_end = 10;
  data.events = {
      {20, 0, kNoCause, TraceKind::kBusWrite, 0x2000, 0x703, 0},
      {20, 1, 0, TraceKind::kMbmFifo, 0, 100, 0},
      {20, 2, 1, TraceKind::kMbmDetect, 0x2000, 0x703, 0},
      {340, 3, 2, TraceKind::kIrq, 5, 0, 0},
      {2300, 4, 2, TraceKind::kVerdict, 0x2000, 1, 0},
      {3000, 5, kNoCause, TraceKind::kBusWrite, 0x5000, 0xBAD, 1},
      {3000, 6, 5, TraceKind::kMbmFifo, 0, 90, 1},
      {3000, 7, 6, TraceKind::kMbmDetect, 0x5000, 0xBAD, 1},
      {3250, 8, 7, TraceKind::kIrq, 5, 0, 0},
      {4900, 9, 7, TraceKind::kVerdict, 0x5000, 1, 0},
  };
  return data;
}

TEST(TraceReport, PerCoreAttributionAppearsOnlyForSmpTraces) {
  // Single-core traces render exactly as they did before SMP.
  const std::string single =
      render_attribution(build_attribution(synthetic_chain()), 1.0);
  EXPECT_EQ(single.find("per-core attribution"), std::string::npos);
  EXPECT_EQ(single.find("core="), std::string::npos);

  // A trace whose complete chains span two cores groups them.
  const TraceData data = smp_synthetic_chains();
  const AttributionReport report = build_attribution(data);
  ASSERT_EQ(report.chains.size(), 2u);
  ASSERT_TRUE(report.chains[0].complete);
  ASSERT_TRUE(report.chains[1].complete);
  EXPECT_EQ(report.chains[0].bus_write.core, 0u);
  EXPECT_EQ(report.chains[1].bus_write.core, 1u);

  const std::string text = render_attribution(report, 1.0);
  EXPECT_NE(text.find("core=0"), std::string::npos);
  EXPECT_NE(text.find("core=1"), std::string::npos);
  EXPECT_NE(text.find("per-core attribution"), std::string::npos);
}

}  // namespace
}  // namespace hn::sim
