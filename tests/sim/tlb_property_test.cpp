// Tlb index-vs-scan equivalence property test.
//
// The production Tlb accelerates lookups with a vpage hash index plus a
// free-slot bitmap; this test drives it against NaiveTlb — a verbatim
// copy of the original full-scan implementation — through randomized
// interleavings of insert / lookup / flush_va / flush_asid / flush_all,
// asserting the two agree on every lookup outcome and on occupancy after
// every mutation.  Covers both index modes (the reference scan mode must
// be equivalent too), several capacities (including one that exercises
// the bitmap's partial tail word), global and non-global entries, ASID
// collisions, and same-vpage multi-entry chains.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/tlb.h"

namespace hn::sim {
namespace {

/// The original Tlb, kept as the executable specification.
class NaiveTlb {
 public:
  explicit NaiveTlb(unsigned entries) : entries_(entries) {}

  const TlbEntry* lookup(VirtAddr va, u16 asid) const {
    const VirtAddr vpage = page_align_down(va);
    for (const TlbEntry& e : entries_) {
      if (e.valid && e.vpage == vpage && (e.attrs.global || e.asid == asid)) {
        return &e;
      }
    }
    return nullptr;
  }

  void insert(const TlbEntry& entry) {
    for (TlbEntry& e : entries_) {
      if (e.valid && e.vpage == entry.vpage &&
          (e.attrs.global || e.asid == entry.asid)) {
        e = entry;
        e.valid = true;
        return;
      }
    }
    for (TlbEntry& e : entries_) {
      if (!e.valid) {
        e = entry;
        e.valid = true;
        return;
      }
    }
    entries_[next_victim_] = entry;
    entries_[next_victim_].valid = true;
    next_victim_ = (next_victim_ + 1) % entries_.size();
  }

  void flush_all() {
    for (TlbEntry& e : entries_) e.valid = false;
  }

  void flush_va(VirtAddr va) {
    const VirtAddr vpage = page_align_down(va);
    for (TlbEntry& e : entries_) {
      if (e.valid && e.vpage == vpage) e.valid = false;
    }
  }

  void flush_asid(u16 asid) {
    for (TlbEntry& e : entries_) {
      if (e.valid && !e.attrs.global && e.asid == asid) e.valid = false;
    }
  }

  [[nodiscard]] unsigned occupancy() const {
    unsigned n = 0;
    for (const TlbEntry& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }

 private:
  std::vector<TlbEntry> entries_;
  u64 next_victim_ = 0;
};

bool same_entry(const TlbEntry* a, const TlbEntry* b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  if (a == nullptr) return true;
  return a->vpage == b->vpage && a->asid == b->asid && a->ppage == b->ppage &&
         a->attrs == b->attrs && a->s2_write_ok == b->s2_write_ok;
}

/// Small universes force collisions: few pages, few ASIDs, frequent
/// same-vpage reinsertions with different attributes.
void run_property(unsigned capacity, bool index_enabled, u64 seed, int ops) {
  Tlb tlb(capacity);
  tlb.set_index_enabled(index_enabled);
  NaiveTlb naive(capacity);
  SplitMix64 rng(seed);

  const unsigned kPages = capacity * 2;  // ~50% conflict pressure
  const unsigned kAsids = 4;

  auto random_va = [&] {
    return static_cast<VirtAddr>(rng.next_below(kPages)) * kPageSize +
           rng.next_below(kPageSize);
  };

  for (int i = 0; i < ops; ++i) {
    switch (rng.next_below(10)) {
      case 0:  // flush_va
        if (rng.chance(1, 2)) {
          const VirtAddr va = random_va();
          tlb.flush_va(va);
          naive.flush_va(va);
          break;
        }
        [[fallthrough]];
      case 1: {  // flush_asid
        const u16 asid = static_cast<u16>(rng.next_below(kAsids));
        tlb.flush_asid(asid);
        naive.flush_asid(asid);
        break;
      }
      case 2:  // flush_all (rare)
        if (rng.chance(1, 4)) {
          tlb.flush_all();
          naive.flush_all();
          break;
        }
        [[fallthrough]];
      default: {  // insert
        TlbEntry e;
        e.vpage = static_cast<VirtAddr>(rng.next_below(kPages)) * kPageSize;
        e.asid = static_cast<u16>(rng.next_below(kAsids));
        e.ppage = rng.next_below(1u << 20) * kPageSize;
        e.attrs.global = rng.chance(1, 3);
        e.attrs.write = rng.chance(1, 2);
        e.attrs.user = rng.chance(1, 2);
        e.s2_write_ok = rng.chance(3, 4);
        tlb.insert(e);
        naive.insert(e);
      }
    }
    ASSERT_EQ(tlb.occupancy(), naive.occupancy()) << "op " << i;
    // Probe a handful of random (va, asid) pairs plus the hot set.
    for (int probe = 0; probe < 8; ++probe) {
      const VirtAddr va = random_va();
      const u16 asid = static_cast<u16>(rng.next_below(kAsids));
      ASSERT_TRUE(same_entry(tlb.lookup(va, asid), naive.lookup(va, asid)))
          << "op " << i << " va " << va << " asid " << asid;
    }
  }
}

TEST(TlbProperty, IndexMatchesNaiveDefaultCapacity) {
  run_property(/*capacity=*/48, /*index_enabled=*/true, /*seed=*/1, 4000);
  run_property(48, true, 2, 4000);
}

TEST(TlbProperty, IndexMatchesNaiveTinyCapacity) {
  // Heavy eviction pressure: every insert beyond 4 entries evicts.
  run_property(/*capacity=*/4, true, 3, 4000);
}

TEST(TlbProperty, IndexMatchesNaivePartialBitmapWord) {
  // 65 slots: the free bitmap's second word has a single live bit.
  run_property(/*capacity=*/65, true, 4, 4000);
}

TEST(TlbProperty, ScanModeMatchesNaive) {
  // Reference mode (index disabled) must be equivalent too — it shares
  // mutation bookkeeping with the indexed mode.
  run_property(48, /*index_enabled=*/false, 5, 4000);
  run_property(4, false, 6, 4000);
}

TEST(TlbProperty, ModeFlipMidstream) {
  // The index is maintained even while disabled, so flipping modes
  // mid-run must not desynchronize.
  Tlb tlb(16);
  NaiveTlb naive(16);
  SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    tlb.set_index_enabled(i % 128 < 64);
    TlbEntry e;
    e.vpage = static_cast<VirtAddr>(rng.next_below(32)) * kPageSize;
    e.asid = static_cast<u16>(rng.next_below(3));
    e.ppage = rng.next_below(1u << 16) * kPageSize;
    e.attrs.global = rng.chance(1, 4);
    tlb.insert(e);
    naive.insert(e);
    if (rng.chance(1, 10)) {
      const u16 asid = static_cast<u16>(rng.next_below(3));
      tlb.flush_asid(asid);
      naive.flush_asid(asid);
    }
    const VirtAddr va = rng.next_below(32) * kPageSize;
    const u16 asid = static_cast<u16>(rng.next_below(3));
    ASSERT_TRUE(same_entry(tlb.lookup(va, asid), naive.lookup(va, asid)))
        << "op " << i;
    ASSERT_EQ(tlb.occupancy(), naive.occupancy()) << "op " << i;
  }
}

TEST(TlbProperty, GenerationBumpsOnEveryMutation) {
  Tlb tlb(8);
  const u64 g0 = tlb.generation();
  TlbEntry e;
  e.vpage = kPageSize;
  tlb.insert(e);
  EXPECT_GT(tlb.generation(), g0);
  const u64 g1 = tlb.generation();
  tlb.flush_va(kPageSize);
  EXPECT_GT(tlb.generation(), g1);
  const u64 g2 = tlb.generation();
  tlb.flush_asid(0);
  EXPECT_GT(tlb.generation(), g2);
  const u64 g3 = tlb.generation();
  tlb.flush_all();
  EXPECT_GT(tlb.generation(), g3);
}

}  // namespace
}  // namespace hn::sim
