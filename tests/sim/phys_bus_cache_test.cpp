// Unit tests for PhysicalMemory, MemoryBus snooping, and the write-back
// Cache — in particular the bus-visibility semantics the MBM depends on.
#include <gtest/gtest.h>

#include <vector>

#include "common/timing.h"
#include "sim/bus.h"
#include "sim/cache.h"
#include "sim/cycle_account.h"
#include "sim/phys_mem.h"

namespace hn::sim {
namespace {

TEST(PhysicalMemory, ReadWriteWidths) {
  PhysicalMemory mem(64 * 1024);
  mem.write64(0x100, 0x1122334455667788ull);
  EXPECT_EQ(mem.read64(0x100), 0x1122334455667788ull);
  EXPECT_EQ(mem.read32(0x100), 0x55667788u);  // little-endian
  EXPECT_EQ(mem.read8(0x107), 0x11);
  mem.write32(0x104, 0xAABBCCDD);
  EXPECT_EQ(mem.read64(0x100), 0xAABBCCDD55667788ull);
  mem.write8(0x100, 0x99);
  EXPECT_EQ(mem.read8(0x100), 0x99);
}

TEST(PhysicalMemory, BlockOps) {
  PhysicalMemory mem(64 * 1024);
  std::vector<u8> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  mem.write_block(0x2000, data.data(), data.size());
  std::vector<u8> out(256);
  mem.read_block(0x2000, out.data(), out.size());
  EXPECT_EQ(data, out);
  mem.zero_range(0x2000, 128);
  EXPECT_EQ(mem.read64(0x2000), 0u);
  EXPECT_EQ(mem.read8(0x2080), 0x80);  // second half untouched
}

TEST(PhysicalMemory, Contains) {
  PhysicalMemory mem(4096);
  EXPECT_TRUE(mem.contains(0));
  EXPECT_TRUE(mem.contains(4088, 8));
  EXPECT_FALSE(mem.contains(4089, 8));
  EXPECT_FALSE(mem.contains(4096));
}

class RecordingSnooper : public BusSnooper {
 public:
  void on_transaction(const BusTransaction& txn) override {
    txns.push_back(txn);
  }
  std::vector<BusTransaction> txns;
};

TEST(MemoryBus, SnoopersSeeTransactions) {
  MemoryBus bus;
  RecordingSnooper snoop;
  bus.attach_snooper(&snoop);
  BusTransaction t;
  t.op = BusOp::kWriteWord;
  t.paddr = 0x40;
  t.value = 7;
  bus.issue(t);
  ASSERT_EQ(snoop.txns.size(), 1u);
  EXPECT_EQ(snoop.txns[0].paddr, 0x40u);
  EXPECT_EQ(snoop.txns[0].value, 7u);
  EXPECT_EQ(bus.transaction_count(), 1u);

  bus.detach_snooper(&snoop);
  bus.issue(t);
  EXPECT_EQ(snoop.txns.size(), 1u);  // detached: no longer notified
  EXPECT_EQ(bus.transaction_count(), 2u);
}

class CacheFixture : public ::testing::Test {
 protected:
  CacheFixture()
      : mem_(1 * 1024 * 1024),
        cache_(CacheConfig{}, mem_, bus_, account_, timing_) {
    bus_.attach_snooper(&snoop_);
  }
  TimingModel timing_;
  PhysicalMemory mem_;
  MemoryBus bus_;
  CycleAccount account_;
  Cache cache_;
  RecordingSnooper snoop_;
};

TEST_F(CacheFixture, MissThenHit) {
  cache_.access(0x1000, false);
  EXPECT_EQ(account_.counters().l1_misses, 1u);
  cache_.access(0x1008, false);  // same line
  EXPECT_EQ(account_.counters().l1_hits, 1u);
  EXPECT_TRUE(cache_.contains_line(0x1000));
}

TEST_F(CacheFixture, MissFillsViaBus) {
  cache_.access(0x2000, false);
  ASSERT_EQ(snoop_.txns.size(), 1u);
  EXPECT_EQ(snoop_.txns[0].op, BusOp::kReadLine);
  EXPECT_EQ(snoop_.txns[0].paddr, 0x2000u);
}

TEST_F(CacheFixture, CacheableWriteInvisibleUntilEviction) {
  // The property the MBM design hinges on (§5.3): a cached write emits no
  // word transaction.
  cache_.access(0x3000, true);
  ASSERT_EQ(snoop_.txns.size(), 1u);  // only the fill
  EXPECT_EQ(snoop_.txns[0].op, BusOp::kReadLine);
  EXPECT_TRUE(cache_.line_dirty(0x3000));

  mem_.write64(0x3000, 0xFEED);  // functional value for the later write-back
  cache_.flush_line(0x3000);
  ASSERT_EQ(snoop_.txns.size(), 2u);
  EXPECT_EQ(snoop_.txns[1].op, BusOp::kWriteLine);
  u64 line_word;
  std::memcpy(&line_word, snoop_.txns[1].line.data(), 8);
  EXPECT_EQ(line_word, 0xFEEDu);  // final contents, not the write sequence
}

TEST_F(CacheFixture, EvictionWritesBackDirtyLine) {
  const CacheConfig& cfg = cache_.config();
  const u64 num_sets = cfg.size_bytes / kCacheLineSize / cfg.ways;
  const u64 way_stride = num_sets * kCacheLineSize;
  // Fill every way of set 0 with dirty lines, then one more.
  for (unsigned w = 0; w <= cfg.ways; ++w) {
    cache_.access(w * way_stride, true);
  }
  bool saw_writeback = false;
  for (const auto& t : snoop_.txns) {
    saw_writeback |= (t.op == BusOp::kWriteLine);
  }
  EXPECT_TRUE(saw_writeback);
  EXPECT_EQ(account_.counters().dirty_writebacks, 1u);
}

TEST_F(CacheFixture, CleanEvictionSilent) {
  const CacheConfig& cfg = cache_.config();
  const u64 num_sets = cfg.size_bytes / kCacheLineSize / cfg.ways;
  const u64 way_stride = num_sets * kCacheLineSize;
  for (unsigned w = 0; w <= cfg.ways; ++w) {
    cache_.access(w * way_stride, false);  // reads only
  }
  for (const auto& t : snoop_.txns) {
    EXPECT_NE(t.op, BusOp::kWriteLine);
  }
}

TEST_F(CacheFixture, FlushRangeCoversAllLines) {
  cache_.access(0x4000, true);
  cache_.access(0x4040, true);
  cache_.access(0x4080, true);
  cache_.flush_range(0x4000, 3 * kCacheLineSize);
  EXPECT_FALSE(cache_.contains_line(0x4000));
  EXPECT_FALSE(cache_.contains_line(0x4040));
  EXPECT_FALSE(cache_.contains_line(0x4080));
  EXPECT_EQ(account_.counters().dirty_writebacks, 3u);
}

TEST_F(CacheFixture, FlushAllEmptiesCache) {
  for (int i = 0; i < 32; ++i) cache_.access(0x8000 + i * 64, true);
  cache_.flush_all();
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(cache_.contains_line(0x8000 + i * 64));
}

TEST_F(CacheFixture, WriteAllocLineSkipsFill) {
  const u64 misses_cost_before = account_.cycles();
  cache_.write_alloc_line(0x5000);
  // No ReadLine issued, cost is the streaming-allocation constant.
  EXPECT_TRUE(snoop_.txns.empty());
  EXPECT_EQ(account_.cycles() - misses_cost_before, timing_.write_stream_alloc);
  EXPECT_TRUE(cache_.line_dirty(0x5000));
  EXPECT_EQ(account_.counters().l1_stream_allocs, 1u);
}

TEST_F(CacheFixture, HitLatencyCharged) {
  cache_.access(0x6000, false);
  const Cycles before = account_.cycles();
  cache_.access(0x6000, false);
  EXPECT_EQ(account_.cycles() - before, timing_.l1_hit);
}

}  // namespace
}  // namespace hn::sim
