// Unit tests for the IOMMU window logic and the DMA device bus-master
// semantics (standalone of the integration scenarios).
#include <gtest/gtest.h>

#include "sim/bus.h"
#include "sim/dma_device.h"
#include "sim/iommu.h"
#include "sim/machine.h"

namespace hn::sim {
namespace {

TEST(Iommu, BypassByDefault) {
  Iommu iommu;
  EXPECT_FALSE(iommu.enabled());
  EXPECT_TRUE(iommu.check(1, 0x1000, 8, true));
  EXPECT_TRUE(iommu.check(99, 0xFFFFFFF0, 8, true));
}

TEST(Iommu, WindowsFilterByStream) {
  Iommu iommu;
  iommu.set_enabled(true);
  iommu.allow(1, Iommu::Window{0x1000, 0x1000, true});
  EXPECT_TRUE(iommu.check(1, 0x1000, 8, true));
  EXPECT_TRUE(iommu.check(1, 0x1FF8, 8, false));
  EXPECT_FALSE(iommu.check(1, 0x1FF9, 8, false));  // crosses the window end
  EXPECT_FALSE(iommu.check(1, 0x0FF8, 8, false));  // before the window
  EXPECT_FALSE(iommu.check(2, 0x1000, 8, false));  // other stream
}

TEST(Iommu, ReadOnlyWindow) {
  Iommu iommu;
  iommu.set_enabled(true);
  iommu.allow(3, Iommu::Window{0x2000, 0x1000, /*allow_write=*/false});
  EXPECT_TRUE(iommu.check(3, 0x2000, 8, false));
  EXPECT_FALSE(iommu.check(3, 0x2000, 8, true));
}

TEST(Iommu, MultipleWindowsAndClear) {
  Iommu iommu;
  iommu.set_enabled(true);
  iommu.allow(1, Iommu::Window{0x1000, 0x1000, true});
  iommu.allow(1, Iommu::Window{0x8000, 0x1000, true});
  EXPECT_TRUE(iommu.check(1, 0x8800, 8, true));
  iommu.clear(1);
  EXPECT_FALSE(iommu.check(1, 0x1000, 8, true));
  EXPECT_FALSE(iommu.check(1, 0x8800, 8, true));
}

class DmaTest : public ::testing::Test {
 protected:
  DmaTest() : machine_(MachineConfig{}) {}
  Machine machine_;
  Iommu iommu_;
};

TEST_F(DmaTest, WriteLandsInMemoryAndOnBus) {
  struct Recorder : BusSnooper {
    int word_writes = 0;
    void on_transaction(const BusTransaction& t) override {
      word_writes += (t.op == BusOp::kWriteWord);
    }
  } rec;
  machine_.bus().attach_snooper(&rec);
  DmaDevice dev(machine_, iommu_, 1);
  const u64 payload[4] = {1, 2, 3, 4};
  ASSERT_TRUE(dev.write(0x10000, payload, sizeof(payload)));
  machine_.bus().detach_snooper(&rec);
  EXPECT_EQ(rec.word_writes, 4);
  EXPECT_EQ(machine_.phys().read64(0x10008), 2u);
  EXPECT_EQ(dev.words_written(), 4u);
}

TEST_F(DmaTest, FaultAbortsWithoutSideEffects) {
  iommu_.set_enabled(true);  // no windows at all
  DmaDevice dev(machine_, iommu_, 1);
  machine_.phys().write64(0x10000, 0x5555);
  EXPECT_FALSE(dev.write64(0x10000, 0xAAAA));
  EXPECT_EQ(machine_.phys().read64(0x10000), 0x5555u);
  EXPECT_EQ(iommu_.faults(), 1u);
  EXPECT_EQ(dev.words_written(), 0u);
}

TEST_F(DmaTest, ReadRoundTrip) {
  DmaDevice dev(machine_, iommu_, 1);
  machine_.phys().write64(0x20000, 0x77);
  u64 out = 0;
  ASSERT_TRUE(dev.read(0x20000, &out, 8));
  EXPECT_EQ(out, 0x77u);
}

TEST_F(DmaTest, DmaWriteNotShadowedByDirtyCacheLine) {
  // CPU dirties the line, then the device writes: the CPU must see the
  // device's data afterwards (coherent write path flushes the line).
  machine_.phys().zero_range(0x30000, 4096);
  // Dirty via direct cache access (simulate a prior CPU store).
  machine_.cache().access(0x30000, /*is_write=*/true);
  machine_.phys().write64(0x30000, 0x1);  // functional CPU value
  DmaDevice dev(machine_, iommu_, 2);
  ASSERT_TRUE(dev.write64(0x30000, 0x2));
  EXPECT_EQ(machine_.phys().read64(0x30000), 0x2u);
  EXPECT_FALSE(machine_.cache().line_dirty(0x30000));
}

}  // namespace
}  // namespace hn::sim
