// Machine-level tests: the charged access API, EL2 accesses, exception
// model (HVC, TVM traps), interrupt routing, and the guest-mode helpers.
#include <gtest/gtest.h>

#include "sim/irq.h"
#include "sim/machine.h"
#include "sim/pagetable.h"
#include "sim/sysregs.h"

namespace hn::sim {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : machine_(MachineConfig{}), next_table_(1 * 1024 * 1024) {
    root_ = alloc_table();
    machine_.set_sysreg_raw(SysReg::TTBR1_EL1, root_);
  }

  PhysAddr alloc_table() {
    const PhysAddr t = next_table_;
    next_table_ += kPageSize;
    machine_.phys().zero_range(t, kPageSize);
    return t;
  }

  void map(VirtAddr va, PhysAddr pa, const PageAttrs& attrs) {
    PhysAddr table = root_;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + va_index(va, level) * 8;
      u64 d = machine_.phys().read64(slot);
      if (!desc_valid(d)) {
        const PhysAddr next = alloc_table();
        d = make_table_desc(next);
        machine_.phys().write64(slot, d);
      }
      table = desc_out_addr(d);
    }
    machine_.phys().write64(table + va_index(va, 3) * 8,
                            make_page_desc(pa, attrs));
  }

  Machine machine_;
  PhysAddr next_table_;
  PhysAddr root_ = 0;
};

TEST_F(MachineTest, VirtualReadWrite) {
  const VirtAddr va = kKernelVaBase + 0x5000;
  map(va, 0x5000, PageAttrs{.write = true});
  ASSERT_TRUE(machine_.write64(va, 0xCAFE).ok);
  const Access64 r = machine_.read64(va);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 0xCAFEu);
  EXPECT_EQ(machine_.phys().read64(0x5000), 0xCAFEu);
}

TEST_F(MachineTest, PermissionFaultReported) {
  const VirtAddr va = kKernelVaBase + 0x6000;
  map(va, 0x6000, PageAttrs{.write = false});
  const Access64 w = machine_.write64(va, 1);
  EXPECT_FALSE(w.ok);
  EXPECT_EQ(w.fault.type, FaultType::kPermission);
  EXPECT_EQ(machine_.counters().el1_permission_faults, 1u);
  // The memory is untouched.
  EXPECT_EQ(machine_.phys().read64(0x6000), 0u);
}

TEST_F(MachineTest, El1FaultHandlerInvoked) {
  const VirtAddr va = kKernelVaBase + 0x6000;
  map(va, 0x6000, PageAttrs{.write = false});
  int faults = 0;
  machine_.set_el1_fault_handler([&](const Fault& f) {
    ++faults;
    EXPECT_EQ(f.type, FaultType::kPermission);
  });
  machine_.write64(va, 1);
  EXPECT_EQ(faults, 1);
}

TEST_F(MachineTest, NonCacheableWriteReachesBus) {
  const VirtAddr va = kKernelVaBase + 0x7000;
  PageAttrs nc{.write = true};
  nc.attr = MemAttr::kNonCacheable;
  map(va, 0x7000, nc);

  struct Recorder : BusSnooper {
    std::vector<BusTransaction> txns;
    void on_transaction(const BusTransaction& t) override {
      txns.push_back(t);
    }
  } rec;
  machine_.bus().attach_snooper(&rec);
  machine_.write64(va + 0x10, 0xBEEF);
  machine_.bus().detach_snooper(&rec);

  bool saw = false;
  for (const auto& t : rec.txns) {
    if (t.op == BusOp::kWriteWord && t.paddr == 0x7010 && t.value == 0xBEEF) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
  EXPECT_GE(machine_.counters().noncacheable_accesses, 1u);
}

TEST_F(MachineTest, CacheableWriteDoesNotReachBusAsWord) {
  const VirtAddr va = kKernelVaBase + 0x8000;
  map(va, 0x8000, PageAttrs{.write = true});
  struct Recorder : BusSnooper {
    int word_writes = 0;
    void on_transaction(const BusTransaction& t) override {
      word_writes += (t.op == BusOp::kWriteWord);
    }
  } rec;
  machine_.bus().attach_snooper(&rec);
  machine_.write64(va, 0xF00D);
  machine_.bus().detach_snooper(&rec);
  EXPECT_EQ(rec.word_writes, 0);
}

TEST_F(MachineTest, BlockTransfersRoundTrip) {
  const VirtAddr va = kKernelVaBase + 0x9000;
  map(va, 0x9000, PageAttrs{.write = true});
  u8 data[64];
  for (int i = 0; i < 64; ++i) data[i] = static_cast<u8>(i * 3);
  ASSERT_TRUE(machine_.write_block_v(va, data, sizeof(data)));
  u8 out[64] = {};
  ASSERT_TRUE(machine_.read_block_v(va, out, sizeof(out)));
  EXPECT_EQ(0, std::memcmp(data, out, sizeof(data)));
}

TEST_F(MachineTest, BulkTransfersRoundTripAcrossPages) {
  const VirtAddr va = kKernelVaBase + 0xA000;
  map(va, 0xA000, PageAttrs{.write = true});
  map(va + kPageSize, 0xB000, PageAttrs{.write = true});
  std::vector<u8> data(2 * kPageSize);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  ASSERT_TRUE(machine_.write_block_bulk(va, data.data(), data.size()));
  std::vector<u8> out(2 * kPageSize);
  ASSERT_TRUE(machine_.read_block_bulk(va, out.data(), out.size()));
  EXPECT_EQ(data, out);
}

TEST_F(MachineTest, BulkWriteOnNonCacheablePageEmitsWordTraffic) {
  const VirtAddr va = kKernelVaBase + 0xC000;
  PageAttrs nc{.write = true};
  nc.attr = MemAttr::kNonCacheable;
  map(va, 0xC000, nc);
  struct Recorder : BusSnooper {
    int word_writes = 0;
    void on_transaction(const BusTransaction& t) override {
      word_writes += (t.op == BusOp::kWriteWord);
    }
  } rec;
  machine_.bus().attach_snooper(&rec);
  std::vector<u8> data(256, 0x5A);
  machine_.write_block_bulk(va, data.data(), data.size());
  machine_.bus().detach_snooper(&rec);
  EXPECT_EQ(rec.word_writes, 32);  // every word visible, MBM semantics hold
}

TEST_F(MachineTest, El2AccessBypassesTranslation) {
  machine_.el2_write64(0x1234000, 0x77);
  EXPECT_EQ(machine_.el2_read64(0x1234000), 0x77u);
  EXPECT_EQ(machine_.counters().tlb_misses, 0u);
}

TEST_F(MachineTest, El2NcWriteVisibleOnBus) {
  struct Recorder : BusSnooper {
    int word_writes = 0;
    void on_transaction(const BusTransaction& t) override {
      word_writes += (t.op == BusOp::kWriteWord);
    }
  } rec;
  machine_.bus().attach_snooper(&rec);
  machine_.el2_write64_nc(0x2000000, 0xAB);
  machine_.bus().detach_snooper(&rec);
  EXPECT_EQ(rec.word_writes, 1);
  EXPECT_EQ(machine_.phys().read64(0x2000000), 0xABu);
}

TEST_F(MachineTest, DmaKeepsCacheCoherent) {
  const VirtAddr va = kKernelVaBase + 0xD000;
  map(va, 0xD000, PageAttrs{.write = true});
  machine_.write64(va, 0x1111);  // dirty in cache (functionally in memory)
  const u64 fresh = 0x2222;
  machine_.dma_write_block(0xD000, &fresh, 8);
  const Access64 r = machine_.read64(va);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 0x2222u);  // DMA data not shadowed by a stale line
}

TEST_F(MachineTest, HvcRoutesToHandlerAndCharges) {
  u64 seen_func = 0;
  machine_.exceptions().set_hypercall_handler(
      [&](u64 func, std::span<const u64> args) {
        seen_func = func;
        EXPECT_EQ(machine_.exceptions().current_el(), El::kEl2);
        return args.empty() ? 0 : args[0] + 1;
      });
  const Cycles before = machine_.account().cycles();
  EXPECT_EQ(machine_.hvc(9, {41}), 42u);
  EXPECT_EQ(seen_func, 9u);
  EXPECT_GE(machine_.account().cycles() - before,
            machine_.timing().hvc_roundtrip);
  EXPECT_EQ(machine_.counters().hvc_calls, 1u);
  EXPECT_EQ(machine_.exceptions().current_el(), El::kEl1);
}

TEST_F(MachineTest, HvcWithoutHandlerReturnsError) {
  EXPECT_EQ(machine_.hvc(1, {}), u64(-1));
}

TEST_F(MachineTest, TvmTrapsSysregWrites) {
  machine_.set_sysreg_raw(SysReg::HCR_EL2,
                          with_bit(0, kHcrTvm, true));
  int traps = 0;
  machine_.exceptions().set_sysreg_trap_handler(
      [&](SysReg reg, u64 value) {
        ++traps;
        EXPECT_EQ(reg, SysReg::TTBR0_EL1);
        return value == 0xBAD ? TrapVerdict::kDeny : TrapVerdict::kAllow;
      });
  EXPECT_TRUE(machine_.write_sysreg_el1(SysReg::TTBR0_EL1, 0x600D));
  EXPECT_EQ(machine_.sysreg(SysReg::TTBR0_EL1), 0x600Du);
  EXPECT_FALSE(machine_.write_sysreg_el1(SysReg::TTBR0_EL1, 0xBAD));
  EXPECT_EQ(machine_.sysreg(SysReg::TTBR0_EL1), 0x600Du);  // unchanged
  EXPECT_EQ(traps, 2);
  EXPECT_EQ(machine_.counters().sysreg_traps, 2u);
}

TEST_F(MachineTest, UntrappedSysregWritesDirect) {
  // TVM off: no trap, no charge.
  int traps = 0;
  machine_.exceptions().set_sysreg_trap_handler([&](SysReg, u64) {
    ++traps;
    return TrapVerdict::kAllow;
  });
  EXPECT_TRUE(machine_.write_sysreg_el1(SysReg::TTBR0_EL1, 0x1234));
  EXPECT_EQ(traps, 0);
  // Non-VM registers never trap even with TVM on.
  machine_.set_sysreg_raw(SysReg::HCR_EL2, with_bit(0, kHcrTvm, true));
  EXPECT_TRUE(machine_.write_sysreg_el1(SysReg::VBAR_EL1, 0x9999));
  EXPECT_EQ(traps, 0);
}

TEST_F(MachineTest, IrqRoutesToEl1ByDefault) {
  unsigned seen = 0;
  machine_.exceptions().set_el1_irq_handler([&](unsigned line) { seen = line; });
  machine_.raise_irq(kIrqMbm);
  EXPECT_EQ(seen, kIrqMbm);
  EXPECT_EQ(machine_.counters().irqs_delivered, 1u);
}

TEST_F(MachineTest, IrqRoutesToEl2WithImo) {
  machine_.set_sysreg_raw(SysReg::HCR_EL2, with_bit(0, kHcrImo, true));
  unsigned el1_seen = 0;
  unsigned el2_seen = 0;
  machine_.exceptions().set_el1_irq_handler([&](unsigned line) { el1_seen = line; });
  machine_.exceptions().set_el2_irq_handler([&](unsigned line) { el2_seen = line; });
  machine_.raise_irq(kIrqTimer);
  EXPECT_EQ(el2_seen, kIrqTimer);
  EXPECT_EQ(el1_seen, 0u);
}

TEST_F(MachineTest, DisabledIrqLatchesAndReplays) {
  unsigned count = 0;
  machine_.exceptions().set_el1_irq_handler([&](unsigned) { ++count; });
  machine_.gic().set_enabled(kIrqNet, false);
  machine_.raise_irq(kIrqNet);
  EXPECT_EQ(count, 0u);
  machine_.gic().set_enabled(kIrqNet, true);
  machine_.gic().replay_pending();
  EXPECT_EQ(count, 1u);
}

TEST_F(MachineTest, SecureSpaceBounds) {
  EXPECT_EQ(machine_.secure_base() + machine_.secure_size(),
            machine_.phys().size());
  EXPECT_TRUE(machine_.in_secure_space(machine_.secure_base()));
  EXPECT_FALSE(machine_.in_secure_space(machine_.secure_base() - 1));
  EXPECT_TRUE(machine_.in_secure_space(machine_.secure_base() - 1, 2));
}

TEST_F(MachineTest, GuestModeWfiCharge) {
  EXPECT_FALSE(machine_.guest_mode());
  machine_.set_guest_mode(true);
  const Cycles before = machine_.account().cycles();
  machine_.charge_wfi_trap();
  EXPECT_EQ(machine_.account().cycles() - before,
            machine_.timing().vm_exit + machine_.timing().vm_entry);
  EXPECT_EQ(machine_.counters().vm_exits, 1u);
}

TEST_F(MachineTest, ElapsedUsTracksCycles) {
  machine_.advance(machine_.timing().us_to_cycles(10.0));
  EXPECT_NEAR(machine_.elapsed_us(), 10.0, 0.01);
}

}  // namespace
}  // namespace hn::sim
