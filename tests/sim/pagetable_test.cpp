// Property tests for the translation-table descriptor encodings: every
// attribute combination must round-trip, and the walk index math must
// decompose any VA consistently.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/pagetable.h"

namespace hn::sim {
namespace {

TEST(Descriptors, TableDescRoundTrip) {
  const u64 d = make_table_desc(0x12345000);
  EXPECT_TRUE(desc_valid(d));
  EXPECT_TRUE(desc_is_table(d, 0));
  EXPECT_TRUE(desc_is_table(d, 2));
  EXPECT_FALSE(desc_is_table(d, 3));  // at level 3 bit1 means "page"
  EXPECT_EQ(desc_out_addr(d), 0x12345000u);
}

TEST(Descriptors, InvalidDesc) {
  EXPECT_FALSE(desc_valid(0));
  EXPECT_FALSE(desc_valid(0x12345000));  // valid bit clear
}

struct AttrsCase {
  bool write;
  bool exec;
  bool user;
  bool global;
  MemAttr attr;
};

class AttrsRoundTrip : public ::testing::TestWithParam<AttrsCase> {};

TEST_P(AttrsRoundTrip, PageDescPreservesAttrs) {
  const AttrsCase& c = GetParam();
  PageAttrs a{c.write, c.exec, c.user, c.global, c.attr};
  const u64 d = make_page_desc(0xABCDE000, a);
  EXPECT_TRUE(desc_valid(d));
  EXPECT_FALSE(desc_is_block(d, 3));
  EXPECT_EQ(desc_out_addr(d), 0xABCDE000u);
  EXPECT_EQ(decode_attrs(d), a);
}

TEST_P(AttrsRoundTrip, BlockDescPreservesAttrs) {
  const AttrsCase& c = GetParam();
  PageAttrs a{c.write, c.exec, c.user, c.global, c.attr};
  const u64 d = make_block_desc(0x00200000, a);
  EXPECT_TRUE(desc_valid(d));
  EXPECT_TRUE(desc_is_block(d, 2));
  EXPECT_FALSE(desc_is_table(d, 2));
  EXPECT_EQ(decode_attrs(d), a);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AttrsRoundTrip,
    ::testing::Values(
        AttrsCase{false, false, false, true, MemAttr::kNormalCacheable},
        AttrsCase{true, false, false, true, MemAttr::kNormalCacheable},
        AttrsCase{false, true, false, true, MemAttr::kNormalCacheable},
        AttrsCase{true, true, true, false, MemAttr::kNormalCacheable},
        AttrsCase{true, false, true, false, MemAttr::kNonCacheable},
        AttrsCase{false, false, false, true, MemAttr::kNonCacheable},
        AttrsCase{true, false, false, true, MemAttr::kDevice},
        AttrsCase{false, true, true, true, MemAttr::kDevice}));

TEST(Descriptors, AttrsRewritePreservesAddress) {
  PageAttrs rw{.write = true, .exec = false, .user = false};
  const u64 d = make_page_desc(0x7700000, rw);
  PageAttrs ro = rw;
  ro.write = false;
  ro.attr = MemAttr::kNonCacheable;
  const u64 d2 = desc_with_attrs(d, ro);
  EXPECT_EQ(desc_out_addr(d2), desc_out_addr(d));
  EXPECT_EQ(decode_attrs(d2), ro);
  EXPECT_TRUE(desc_valid(d2));
}

TEST(Descriptors, S2RoundTrip) {
  for (const bool r : {false, true}) {
    for (const bool w : {false, true}) {
      const u64 d = make_s2_page_desc(0x5A000, S2Attrs{r, w});
      EXPECT_TRUE(desc_valid(d));
      EXPECT_EQ(desc_out_addr(d), 0x5A000u);
      EXPECT_EQ(decode_s2_attrs(d), (S2Attrs{r, w}));
    }
  }
}

TEST(Descriptors, S2AttrsRewrite) {
  const u64 d = make_s2_page_desc(0x9000, S2Attrs{true, true});
  const u64 d2 = s2_desc_with_attrs(d, S2Attrs{true, false});
  EXPECT_EQ(desc_out_addr(d2), 0x9000u);
  EXPECT_EQ(decode_s2_attrs(d2), (S2Attrs{true, false}));
}

TEST(WalkIndex, DecomposesVa) {
  // Property: the four indices plus the page offset reconstruct the VA
  // (within the 48-bit space).
  SplitMix64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const VirtAddr va = rng.next() & ((u64{1} << kVaBits) - 1);
    VirtAddr rebuilt = va & kPageMask;
    for (unsigned level = 0; level <= 3; ++level) {
      rebuilt |= va_index(va, level) << (kPageShift + 9 * (3 - level));
    }
    EXPECT_EQ(rebuilt, va);
  }
}

TEST(WalkIndex, IndicesBounded) {
  SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const VirtAddr va = rng.next();
    for (unsigned level = 0; level <= 3; ++level) {
      EXPECT_LT(va_index(va, level), kPtEntries);
    }
  }
}

TEST(WalkIndex, LevelSpans) {
  EXPECT_EQ(level_span(3), kPageSize);
  EXPECT_EQ(level_span(2), kSectionSize);
  EXPECT_EQ(level_span(1), u64{1} << 30);
  EXPECT_EQ(level_span(0), u64{1} << 39);
}

TEST(Descriptors, OutputAddressMasksLowBits) {
  // Output addresses are page-aligned by construction.
  SplitMix64 rng(3);
  for (int i = 0; i < 500; ++i) {
    const PhysAddr pa = page_align_down(rng.next() & 0xFFFF'FFFF'F000ull);
    const u64 d = make_page_desc(pa, PageAttrs{});
    EXPECT_EQ(desc_out_addr(d) & kPageMask, 0u);
    EXPECT_EQ(desc_out_addr(d), pa);
  }
}

}  // namespace
}  // namespace hn::sim
