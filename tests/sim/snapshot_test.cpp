// Machine-snapshot tests (DESIGN.md §12).
//
// Three layers, mirroring the feature's own structure:
//
//   * the copy-on-write page store — write-after-fork isolation, the
//     refcount lifecycle, and a threaded fork campaign that gives TSan a
//     real concurrent workload over the shared refcounts;
//   * the v1 file format — golden header bytes, deterministic
//     serialization, and precise rejection of every corruption class,
//     modeled on trace_recorder_test;
//   * whole-system round trips — an empty (freshly booted) machine and a
//     post-rootkit-scenario system both restore into live twins that are
//     functionally indistinguishable from the original.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "hypernel/fingerprint.h"
#include "hypernel/system.h"
#include "kernel/objects.h"
#include "secapps/object_monitor.h"
#include "sim/phys_mem.h"
#include "sim/snapshot.h"

namespace hn::sim {
namespace {

// ---------------------------------------------------------------------------
// Copy-on-write page store
// ---------------------------------------------------------------------------

constexpr u64 kMemBytes = 16 * kPageSize;

TEST(CowPages, FreshMemoryAllocatesNoPages) {
  PhysicalMemory mem(kMemBytes);
  ASSERT_EQ(mem.page_count(), 16u);
  for (u64 i = 0; i < mem.page_count(); ++i) {
    EXPECT_EQ(mem.page_data(i), nullptr);
    EXPECT_EQ(mem.page_refs(i), 0u);
  }
  EXPECT_EQ(mem.read64(0), 0u);
  EXPECT_EQ(mem.read64(kMemBytes - 8), 0u);
}

TEST(CowPages, WriteAfterForkIsolatesParentAndChild) {
  PhysicalMemory parent(kMemBytes);
  parent.write64(kPageSize + 8, 0x1111);
  parent.write64(3 * kPageSize, 0x3333);

  const PhysicalMemory::PageSet snap = parent.capture();
  PhysicalMemory child(kMemBytes);
  ASSERT_TRUE(child.adopt(snap).ok());
  EXPECT_EQ(child.read64(kPageSize + 8), 0x1111u);
  EXPECT_EQ(child.read64(3 * kPageSize), 0x3333u);

  // Parent writes stay invisible to the child and to the snapshot...
  parent.write64(kPageSize + 8, 0xAAAA);
  EXPECT_EQ(child.read64(kPageSize + 8), 0x1111u);
  u64 in_snap = 0;
  std::memcpy(&in_snap, snap.page_data(1) + 8, 8);
  EXPECT_EQ(in_snap, 0x1111u);

  // ...and child writes stay invisible to the parent, including writes
  // that materialise a page neither side had populated.
  child.write64(3 * kPageSize, 0xBBBB);
  child.write64(5 * kPageSize, 0x5555);
  EXPECT_EQ(parent.read64(3 * kPageSize), 0x3333u);
  EXPECT_EQ(parent.read64(5 * kPageSize), 0u);
  EXPECT_EQ(snap.page_data(5), nullptr);
}

TEST(CowPages, RefcountLifecycle) {
  PhysicalMemory mem(kMemBytes);
  mem.write64(kPageSize, 0x42);
  EXPECT_EQ(mem.page_refs(1), 1u);  // privately owned

  {
    const PhysicalMemory::PageSet snap = mem.capture();
    EXPECT_EQ(mem.page_refs(1), 2u);  // shared with the snapshot

    // Copying a PageSet bumps, destroying the copy drops.
    {
      const PhysicalMemory::PageSet copy(snap);
      EXPECT_EQ(mem.page_refs(1), 3u);
    }
    EXPECT_EQ(mem.page_refs(1), 2u);

    // A write to a shared page copies first: the memory ends up sole
    // owner of a fresh page while the snapshot keeps the old bytes.
    mem.write64(kPageSize, 0x43);
    EXPECT_EQ(mem.page_refs(1), 1u);
    u64 in_snap = 0;
    std::memcpy(&in_snap, snap.page_data(1), 8);
    EXPECT_EQ(in_snap, 0x42u);

    // Adopting re-shares the snapshot's page and frees the private copy.
    ASSERT_TRUE(mem.adopt(snap).ok());
    EXPECT_EQ(mem.page_refs(1), 2u);
    EXPECT_EQ(mem.read64(kPageSize), 0x42u);

    // A page only the snapshot holds survives until the snapshot dies.
  }
  EXPECT_EQ(mem.page_refs(1), 1u);  // snapshot destroyed: sole owner again

  // Re-observing exclusivity: the next write mutates in place.
  mem.write64(kPageSize, 0x44);
  EXPECT_EQ(mem.page_refs(1), 1u);
  EXPECT_EQ(mem.read64(kPageSize), 0x44u);
}

TEST(CowPages, ZeroingAWholePageReclaimsSharing) {
  PhysicalMemory mem(kMemBytes);
  mem.write64(2 * kPageSize, 0x99);
  const PhysicalMemory::PageSet snap = mem.capture();
  mem.zero_range(2 * kPageSize, kPageSize);
  EXPECT_EQ(mem.page_refs(2), 0u);  // back to the zero sentinel
  EXPECT_EQ(mem.read64(2 * kPageSize), 0u);
  u64 in_snap = 0;
  std::memcpy(&in_snap, snap.page_data(2), 8);
  EXPECT_EQ(in_snap, 0x99u);  // snapshot unaffected
}

TEST(CowPages, AdoptRejectsPageCountMismatch) {
  PhysicalMemory small(kMemBytes);
  PhysicalMemory big(2 * kMemBytes);
  const PhysicalMemory::PageSet snap = small.capture();
  const Status s = big.adopt(snap);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("page count mismatch"), std::string::npos);
}

TEST(CowPages, ConcurrentForksShareAndDivergeSafely) {
  // The snapshot-boot fuzz path forks many machines from one captured
  // PageSet.  Model that directly: one shared snapshot, several threads
  // each adopting (concurrent refcount bumps on the same pages), writing
  // their own divergent state (concurrent copy-on-write of shared pages)
  // and re-adopting (concurrent drops).  TSan owns the verdict; the
  // assertions pin isolation.
  PhysicalMemory base(kMemBytes);
  for (u64 p = 0; p < base.page_count(); ++p) {
    base.write64(p * kPageSize, 0xBA5E0000 + p);
  }
  const PhysicalMemory::PageSet snap = base.capture();

  constexpr unsigned kThreads = 4;
  constexpr unsigned kRounds = 50;
  std::vector<std::thread> workers;
  std::vector<bool> ok(kThreads, false);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      PhysicalMemory mine(kMemBytes);
      bool good = true;
      for (unsigned round = 0; round < kRounds; ++round) {
        good &= mine.adopt(snap).ok();
        for (u64 p = 0; p < mine.page_count(); ++p) {
          good &= mine.read64(p * kPageSize) == 0xBA5E0000 + p;
          mine.write64(p * kPageSize, (u64{t} << 32) | round);
          good &= mine.read64(p * kPageSize) == ((u64{t} << 32) | round);
        }
      }
      ok[t] = good;
    });
  }
  for (std::thread& w : workers) w.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t << " observed foreign writes";
  }
  // The shared snapshot never changed underneath anyone.
  for (u64 p = 0; p < base.page_count(); ++p) {
    u64 v = 0;
    std::memcpy(&v, snap.page_data(p), 8);
    EXPECT_EQ(v, 0xBA5E0000 + p);
    EXPECT_EQ(base.read64(p * kPageSize), 0xBA5E0000 + p);
  }
}

// ---------------------------------------------------------------------------
// File format (modeled on trace_recorder_test)
// ---------------------------------------------------------------------------

// Mirrors the packer's checksum so corruption tests can tamper with a
// field and re-seal the file: the parser must reject the *field*, not
// just notice the broken trailer.
u64 snapshot_checksum(const std::vector<u8>& blob, u64 payload_len) {
  u64 h = 1469598103934665603ull;
  for (u64 i = 0; i < payload_len; ++i) {
    h = (h ^ blob[i]) * 1099511628211ull;
  }
  return h;
}

void reseal(std::vector<u8>& blob) {
  const u64 sum = snapshot_checksum(blob, blob.size() - 8);
  for (int i = 0; i < 8; ++i) {
    blob[blob.size() - 8 + i] = static_cast<u8>(sum >> (8 * i));
  }
}

void poke_u64(std::vector<u8>& blob, size_t off, u64 v) {
  for (int i = 0; i < 8; ++i) blob[off + i] = static_cast<u8>(v >> (8 * i));
}

struct SampleSnapshot {
  Snapshot snap;
  std::vector<u8> blob;
  // Fixed header layout: magic(8) version(4) reserved(4) digest(8) seq(8)
  // state_size(8) state(...), then the page table.
  size_t page_size_off;

  SampleSnapshot() {
    snap.config_digest = 0x1122334455667788ull;
    snap.save_seq = 7;
    snap.state = {1, 2, 3, 4, 5};
    snap.pages.reset(4);
    u8 page[kPageSize];
    for (u64 i = 0; i < kPageSize; ++i) page[i] = static_cast<u8>(i * 31);
    snap.pages.set_page(2, page);
    blob = pack_snapshot(snap);
    page_size_off = 8 + 4 + 4 + 8 + 8 + 8 + snap.state.size();
  }
};

TEST(SnapshotFormat, GoldenHeaderBytes) {
  const SampleSnapshot s;
  ASSERT_GE(s.blob.size(), 16u);
  const u8 kGolden[16] = {
      'H', 'N', 'S', 'N', 'A', 'P', 0, 0,  // magic
      2,   0,   0,   0,                    // version 2, little-endian
      0,   0,   0,   0,                    // reserved
  };
  EXPECT_EQ(std::memcmp(s.blob.data(), kGolden, sizeof kGolden), 0);
  // Config digest immediately follows the fixed header.
  u64 digest = 0;
  std::memcpy(&digest, s.blob.data() + 16, 8);
  EXPECT_EQ(digest, 0x1122334455667788ull);
}

TEST(SnapshotFormat, SerializationIsDeterministic) {
  const SampleSnapshot a;
  const SampleSnapshot b;
  EXPECT_EQ(a.blob, b.blob);
}

TEST(SnapshotFormat, PackUnpackRoundTrip) {
  const SampleSnapshot s;
  Snapshot back;
  ASSERT_TRUE(unpack_snapshot(s.blob, back).ok());
  EXPECT_EQ(back.config_digest, s.snap.config_digest);
  EXPECT_EQ(back.save_seq, s.snap.save_seq);
  EXPECT_EQ(back.state, s.snap.state);
  ASSERT_EQ(back.pages.page_count(), 4u);
  EXPECT_EQ(back.pages.populated_count(), 1u);
  EXPECT_EQ(back.pages.page_data(0), nullptr);  // zero pages stay implicit
  ASSERT_NE(back.pages.page_data(2), nullptr);
  EXPECT_EQ(
      std::memcmp(back.pages.page_data(2), s.snap.pages.page_data(2), kPageSize),
      0);
}

TEST(SnapshotFormat, FileRoundTrip) {
  const SampleSnapshot s;
  const std::string path = ::testing::TempDir() + "hn_snapshot_test.hnsnap";
  ASSERT_TRUE(write_snapshot_file(s.blob, path));
  std::vector<u8> read_back;
  ASSERT_TRUE(read_snapshot_file(path, read_back));
  EXPECT_EQ(read_back, s.blob);
  EXPECT_FALSE(read_snapshot_file(path + ".does-not-exist", read_back));
}

TEST(SnapshotFormat, RejectsBadMagic) {
  SampleSnapshot s;
  s.blob[0] ^= 0xFF;
  Snapshot out;
  const Status st = unpack_snapshot(s.blob, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "snapshot: bad magic (not a HNSNAP file)");
}

TEST(SnapshotFormat, RejectsTruncatedHeader) {
  const SampleSnapshot s;
  const std::vector<u8> stub(s.blob.begin(), s.blob.begin() + 12);
  Snapshot out;
  const Status st = unpack_snapshot(stub, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "snapshot: truncated header");
}

TEST(SnapshotFormat, RejectsChecksumMismatch) {
  // A flipped payload byte and a dropped trailing byte are both checksum
  // failures: the integrity check runs before any field is trusted.
  SampleSnapshot s;
  s.blob[20] ^= 0x01;
  Snapshot out;
  Status st = unpack_snapshot(s.blob, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "snapshot: checksum mismatch (corrupt file)");

  const SampleSnapshot fresh;
  std::vector<u8> shorter(fresh.blob.begin(), fresh.blob.end() - 1);
  st = unpack_snapshot(shorter, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "snapshot: checksum mismatch (corrupt file)");
}

TEST(SnapshotFormat, RejectsUnsupportedVersion) {
  SampleSnapshot s;
  s.blob[8] = 99;
  reseal(s.blob);
  Snapshot out;
  const Status st = unpack_snapshot(s.blob, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "snapshot: unsupported format version 99");
}

TEST(SnapshotFormat, RejectsForeignPageSize) {
  SampleSnapshot s;
  poke_u64(s.blob, s.page_size_off, 2 * kPageSize);
  reseal(s.blob);
  Snapshot out;
  const Status st = unpack_snapshot(s.blob, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(),
            "snapshot: page size " + std::to_string(2 * kPageSize) +
                " does not match the simulated granule");
}

TEST(SnapshotFormat, RejectsOverlongPageTable) {
  SampleSnapshot s;
  poke_u64(s.blob, s.page_size_off + 16, 1000);  // populated-page count
  reseal(s.blob);
  Snapshot out;
  const Status st = unpack_snapshot(s.blob, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "snapshot: truncated page table");
}

TEST(SnapshotFormat, RejectsOutOfRangePageIndex) {
  SampleSnapshot s;
  poke_u64(s.blob, s.page_size_off + 24, 100);  // first entry's index (>= 4)
  reseal(s.blob);
  Snapshot out;
  const Status st = unpack_snapshot(s.blob, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(),
            "snapshot: page table index 100 out of order or out of range");
}

TEST(SnapshotFormat, RejectsTrailingBytes) {
  SampleSnapshot s;
  s.blob.insert(s.blob.end() - 8, u8{0});
  reseal(s.blob);
  Snapshot out;
  const Status st = unpack_snapshot(s.blob, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "snapshot: trailing bytes after page table");
}

// ---------------------------------------------------------------------------
// Whole-system round trips
// ---------------------------------------------------------------------------

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_system(Mode mode, bool mbm) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = mbm;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(SystemSnapshot, EmptyMachineRoundTrip) {
  // A freshly booted system, straight through the file format and into a
  // live twin: the twin must be byte-for-byte the same architectural
  // state (its own re-save proves it) and functionally indistinguishable.
  auto original = make_system(Mode::kNative, /*mbm=*/false);
  Snapshot snap = original->save_state();
  EXPECT_GT(snap.pages.populated_count(), 0u);

  Snapshot back;
  ASSERT_TRUE(unpack_snapshot(pack_snapshot(snap), back).ok());

  auto twin = make_system(Mode::kNative, /*mbm=*/false);
  ASSERT_TRUE(twin->restore_state(back).ok());

  Snapshot resaved = twin->save_state();
  EXPECT_EQ(resaved.config_digest, snap.config_digest);
  EXPECT_EQ(resaved.state, snap.state);
  EXPECT_TRUE(hypernel::take_fingerprint(*original)
                  .functionally_equal(hypernel::take_fingerprint(*twin)));
}

TEST(SystemSnapshot, RestoreRejectsConfigMismatch) {
  auto native = make_system(Mode::kNative, /*mbm=*/false);
  auto hyper = make_system(Mode::kHypernel, /*mbm=*/true);
  const Snapshot snap = native->save_state();
  const Status st = hyper->restore_state(snap);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("configuration digest mismatch"),
            std::string::npos);
  EXPECT_FALSE(hyper->restore_state(Snapshot{}).ok());  // empty snapshot
}

TEST(SystemSnapshot, PostRootkitScenarioRoundTrip) {
  // Drive a full monitored system through a rootkit scenario — process
  // churn, filesystem writes, then a cred privilege-escalation write that
  // raises an alert — and round-trip the result.  The restored twin must
  // agree on everything, and must keep agreeing when both systems run the
  // same follow-up workload (including catching a second attack).
  auto original = make_system(Mode::kHypernel, /*mbm=*/true);
  secapps::ObjectIntegrityMonitor mon_a(
      *original, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(mon_a.install().ok());

  kernel::Kernel& k = original->kernel();
  ASSERT_TRUE(k.sys_mkdir("/etc").ok());
  ASSERT_TRUE(k.sys_creat("/etc/passwd").ok());
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  k.procs().switch_to(*k.procs().find(pid.value()));
  ASSERT_TRUE(k.sys_execve().ok());
  // Drop to a non-root identity so the direct root write below is an
  // escalation, not a no-op rewrite of an already-root cred.
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  const VirtAddr cred = k.procs().current().cred;
  ASSERT_TRUE(original->machine()
                  .write64(cred + kernel::CredLayout::kEuid * kWordSize, 0)
                  .ok);
  ASSERT_FALSE(mon_a.alerts().empty());
  const size_t alerts_before = mon_a.alerts().size();

  Snapshot snap = original->save_state();
  SnapWriter mon_state;
  mon_a.save_state(mon_state);
  Snapshot back;
  ASSERT_TRUE(unpack_snapshot(pack_snapshot(snap), back).ok());

  auto twin = make_system(Mode::kHypernel, /*mbm=*/true);
  secapps::ObjectIntegrityMonitor mon_b(
      *twin, secapps::Granularity::kSensitiveFields);
  ASSERT_TRUE(mon_b.install().ok());
  ASSERT_TRUE(twin->restore_state(back).ok());
  const std::vector<u8> mon_blob = mon_state.take();
  SnapReader mon_reader(mon_blob);
  mon_b.restore_state(mon_reader);
  ASSERT_TRUE(mon_reader.status().ok()) << mon_reader.status().message();

  EXPECT_EQ(mon_b.alerts().size(), alerts_before);
  EXPECT_EQ(mon_b.stats().events_total, mon_a.stats().events_total);

  // Identical follow-up workload on both: stays in lockstep.
  for (System* sys : {original.get(), twin.get()}) {
    kernel::Kernel& kk = sys->kernel();
    ASSERT_TRUE(kk.sys_creat("/etc/shadow").ok());
    ASSERT_TRUE(kk.sys_rename("/etc/shadow", "/etc/shadow.bak").ok());
    const VirtAddr c = kk.procs().current().cred;
    ASSERT_TRUE(
        sys->machine()
            .write64(c + kernel::CredLayout::kUid * kWordSize, 0)
            .ok);
  }
  EXPECT_EQ(mon_a.alerts().size(), mon_b.alerts().size());
  EXPECT_GT(mon_a.alerts().size(), alerts_before);

  const auto fp_a = hypernel::take_fingerprint(*original);
  const auto fp_b = hypernel::take_fingerprint(*twin);
  EXPECT_TRUE(fp_a.functionally_equal(fp_b)) << fp_a.diff(fp_b);
  EXPECT_EQ(fp_a.cycles, fp_b.cycles);
  EXPECT_EQ(fp_a.alerts, fp_b.alerts);
  EXPECT_EQ(fp_a.monitor_events, fp_b.monitor_events);
}

TEST(SystemSnapshot, ForkedTwinsDivergeIndependently) {
  // One snapshot, two restored twins: each runs a different workload
  // without contaminating the other or the snapshot donor.
  auto donor = make_system(Mode::kNative, /*mbm=*/false);
  ASSERT_TRUE(donor->kernel().sys_creat("/seed").ok());
  const Snapshot snap = donor->save_state();

  auto twin_a = make_system(Mode::kNative, /*mbm=*/false);
  auto twin_b = make_system(Mode::kNative, /*mbm=*/false);
  ASSERT_TRUE(twin_a->restore_state(snap).ok());
  ASSERT_TRUE(twin_b->restore_state(snap).ok());

  ASSERT_TRUE(twin_a->kernel().sys_creat("/only-in-a").ok());
  ASSERT_TRUE(twin_b->kernel().sys_mkdir("/only-in-b").ok());

  EXPECT_TRUE(twin_a->kernel().sys_stat("/only-in-a").ok());
  EXPECT_FALSE(twin_a->kernel().sys_stat("/only-in-b").ok());
  EXPECT_TRUE(twin_b->kernel().sys_stat("/only-in-b").ok());
  EXPECT_FALSE(twin_b->kernel().sys_stat("/only-in-a").ok());
  EXPECT_FALSE(donor->kernel().sys_stat("/only-in-a").ok());
  EXPECT_FALSE(donor->kernel().sys_stat("/only-in-b").ok());

  // And a twin restored later from the same snapshot replays twin A's
  // future exactly: forks are deterministic, not merely isolated.
  auto twin_c = make_system(Mode::kNative, /*mbm=*/false);
  ASSERT_TRUE(twin_c->restore_state(snap).ok());
  ASSERT_TRUE(twin_c->kernel().sys_creat("/only-in-a").ok());
  EXPECT_TRUE(twin_c->kernel().sys_stat("/only-in-a").ok());
  EXPECT_FALSE(twin_c->kernel().sys_stat("/only-in-b").ok());
  const auto fp_a = hypernel::take_fingerprint(*twin_a);
  const auto fp_c = hypernel::take_fingerprint(*twin_c);
  EXPECT_TRUE(fp_a.functionally_equal(fp_c)) << fp_a.diff(fp_c);
  EXPECT_EQ(fp_a.cycles, fp_c.cycles);
}

}  // namespace
}  // namespace hn::sim
