// MMU property tests: for thousands of randomly generated mappings, the
// hardware walker must agree exactly with an independent software model
// (a plain map<page, frame>), under both translation stages, arbitrary
// attribute combinations, TLB pressure, and interleaved remapping.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "sim/machine.h"
#include "sim/pagetable.h"

namespace hn::sim {
namespace {

class PropertyFixture : public ::testing::Test {
 protected:
  PropertyFixture() : machine_(MachineConfig{}), next_table_(0x100000) {
    root_ = alloc_table();
  }

  PhysAddr alloc_table() {
    const PhysAddr t = next_table_;
    next_table_ += kPageSize;
    machine_.phys().zero_range(t, kPageSize);
    return t;
  }

  void map(PhysAddr root, VirtAddr va, PhysAddr pa, const PageAttrs& attrs) {
    PhysAddr table = root;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + va_index(va, level) * 8;
      u64 d = machine_.phys().read64(slot);
      if (!desc_valid(d)) {
        const PhysAddr next = alloc_table();
        d = make_table_desc(next);
        machine_.phys().write64(slot, d);
      }
      table = desc_out_addr(d);
    }
    machine_.phys().write64(table + va_index(va, 3) * 8,
                            make_page_desc(pa, attrs));
  }

  Machine machine_;
  PhysAddr next_table_;
  PhysAddr root_ = 0;
};

TEST_F(PropertyFixture, TranslateAgreesWithModelUnderChurn) {
  SplitMix64 rng(0x517E);
  WalkContext ctx;
  ctx.ttbr1 = root_;
  ctx.asid = 1;

  std::map<VirtAddr, std::pair<PhysAddr, bool>> model;  // vpage -> (pa, rw)
  const u64 kVaSpan = 1ull << 30;  // 1 GiB of kernel VAs to play in

  for (int step = 0; step < 4000; ++step) {
    const int action = static_cast<int>(rng.next_below(10));
    if (action < 4 || model.empty()) {
      // Map (or remap) a random page with random writability.
      const VirtAddr vpage =
          kKernelVaBase + page_align_down(rng.next_below(kVaSpan));
      const PhysAddr frame =
          0x2000000 + page_align_down(rng.next_below(32ull << 20));
      const bool rw = rng.chance(1, 2);
      map(root_, vpage, frame, PageAttrs{.write = rw});
      machine_.tlb().flush_va(vpage);  // as a kernel would TLBI after map
      model[vpage] = {frame, rw};
    } else {
      // Probe a page: half the time a mapped one, half the time random.
      VirtAddr vpage;
      if (rng.chance(1, 2)) {
        auto it = model.begin();
        std::advance(it, rng.next_below(model.size()));
        vpage = it->first;
      } else {
        vpage = kKernelVaBase + page_align_down(rng.next_below(kVaSpan));
      }
      const u64 offset = word_align_down(rng.next_below(kPageSize));
      AccessType at;
      at.is_write = rng.chance(1, 2);
      const TranslateOutcome out =
          machine_.mmu().translate(vpage + offset, at, ctx);
      auto it = model.find(vpage);
      if (it == model.end()) {
        ASSERT_FALSE(out.ok) << "phantom mapping at step " << step;
        EXPECT_EQ(out.fault.type, FaultType::kTranslation);
      } else if (at.is_write && !it->second.second) {
        ASSERT_FALSE(out.ok) << "RO page accepted a write at step " << step;
        EXPECT_EQ(out.fault.type, FaultType::kPermission);
      } else {
        ASSERT_TRUE(out.ok) << "lost mapping at step " << step;
        EXPECT_EQ(out.t.pa, it->second.first + offset) << "step " << step;
      }
    }
  }
  // The TLB saw heavy pressure (far more pages than entries).
  EXPECT_GT(machine_.counters().tlb_misses, 500u);
  EXPECT_GT(machine_.counters().tlb_hits, 100u);
}

TEST_F(PropertyFixture, Stage2ComposesWithStage1) {
  // Random stage-1 VA->IPA and stage-2 IPA->PA mappings; the combined
  // translation must equal the composition.
  SplitMix64 rng(0xC0DE);
  const PhysAddr s2_root = alloc_table();

  auto map_s2 = [&](IpaAddr ipa, PhysAddr pa, bool write_ok) {
    PhysAddr table = s2_root;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + va_index(ipa, level) * 8;
      u64 d = machine_.phys().read64(slot);
      if (!desc_valid(d)) {
        const PhysAddr next = alloc_table();
        d = make_table_desc(next);
        machine_.phys().write64(slot, d);
      }
      table = desc_out_addr(d);
    }
    machine_.phys().write64(table + va_index(ipa, 3) * 8,
                            make_s2_page_desc(pa, S2Attrs{true, write_ok}));
  };

  // The stage-1 tables are themselves guest memory: their descriptor
  // fetches are IPAs, so the table pool must be stage-2 mapped too (the
  // nested-fetch rule the walker implements).  Identity-map a generous
  // pool window covering every table this test will allocate.
  for (PhysAddr pa = 0x100000; pa < 0x100000 + (16ull << 20);
       pa += kPageSize) {
    map_s2(pa, pa, /*write_ok=*/true);
  }

  WalkContext ctx;
  ctx.ttbr1 = root_;
  ctx.asid = 2;
  ctx.stage2_enabled = true;
  ctx.vttbr = s2_root;

  for (int i = 0; i < 400; ++i) {
    const VirtAddr vpage =
        kKernelVaBase + page_align_down(rng.next_below(1ull << 28));
    const IpaAddr ipa_page = 0x3000000 + i * kPageSize;
    const PhysAddr pa_page =
        0x5000000 + page_align_down(rng.next_below(16ull << 20));
    const bool s2_writable = rng.chance(3, 4);
    map(root_, vpage, ipa_page, PageAttrs{.write = true});
    map_s2(ipa_page, pa_page, s2_writable);
    machine_.tlb().flush_va(vpage);

    const u64 offset = word_align_down(rng.next_below(kPageSize));
    AccessType write;
    write.is_write = true;
    const TranslateOutcome w =
        machine_.mmu().translate(vpage + offset, write, ctx);
    if (s2_writable) {
      ASSERT_TRUE(w.ok) << i;
      EXPECT_EQ(w.t.pa, pa_page + offset);
    } else {
      ASSERT_FALSE(w.ok) << i;
      EXPECT_EQ(w.fault.type, FaultType::kS2Permission);
      // Reads still compose.
      const TranslateOutcome r =
          machine_.mmu().translate(vpage + offset, AccessType{}, ctx);
      ASSERT_TRUE(r.ok) << i;
      EXPECT_EQ(r.t.pa, pa_page + offset);
    }
  }
}

}  // namespace
}  // namespace hn::sim
