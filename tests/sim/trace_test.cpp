// Trace subsystem tests: recording, ring-wrap, and the wiring through the
// architectural event points (syscalls, hypercalls, traps, IRQs, context
// switches, MBM detections).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "hypernel/system.h"
#include "kernel/objects.h"
#include "secapps/rootkit_detector.h"
#include "sim/trace.h"

namespace hn::sim {
namespace {

TEST(Trace, DisabledRecordsNothing) {
  Trace trace;
  trace.record(10, TraceKind::kSvc);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Trace, RecordsInOrder) {
  Trace trace;
  trace.set_enabled(true);
  trace.record(10, TraceKind::kSvc, 1);
  trace.record(20, TraceKind::kHvc, 2, 3);
  const auto events = trace.chronological();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, 10u);
  EXPECT_EQ(events[1].kind, TraceKind::kHvc);
  EXPECT_EQ(events[1].b, 3u);
}

TEST(Trace, RingWrapKeepsNewest) {
  Trace trace(4);
  trace.set_enabled(true);
  for (u64 i = 0; i < 10; ++i) trace.record(i, TraceKind::kCustom, i);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto events = trace.chronological();
  EXPECT_EQ(events.front().a, 6u);
  EXPECT_EQ(events.back().a, 9u);
}

TEST(Trace, RingWrapChronologicalIsSorted) {
  Trace trace(8);
  trace.set_enabled(true);
  // Wrap several times; chronological() must stay oldest-to-newest with
  // contiguous payloads at every fill level.
  for (u64 i = 0; i < 29; ++i) {
    trace.record(i * 3, TraceKind::kCustom, i);
    const auto events = trace.chronological();
    ASSERT_EQ(events.size(), std::min<u64>(i + 1, 8u));
    for (size_t j = 0; j < events.size(); ++j) {
      EXPECT_EQ(events[j].a, i + 1 - events.size() + j);
      if (j > 0) {
        EXPECT_GT(events[j].at, events[j - 1].at);
      }
    }
  }
  EXPECT_EQ(trace.dropped(), 29u - 8u);
}

TEST(Trace, ClearAfterWrapStartsFresh) {
  Trace trace(4);
  trace.set_enabled(true);
  for (u64 i = 0; i < 11; ++i) trace.record(i, TraceKind::kCustom, i);
  ASSERT_EQ(trace.dropped(), 7u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.sequence(), 0u);
  EXPECT_TRUE(trace.chronological().empty());
  // The ring is reusable after clear: refill past capacity again.
  for (u64 i = 0; i < 6; ++i) trace.record(100 + i, TraceKind::kIrq, i);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 2u);
  const auto events = trace.chronological();
  EXPECT_EQ(events.front().a, 2u);
  EXPECT_EQ(events.back().a, 5u);
}

TEST(Trace, ZeroCapacityDropsEverything) {
  Trace trace(0);
  trace.set_enabled(true);
  trace.record(1, TraceKind::kSvc);
  trace.record(2, TraceKind::kHvc);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(trace.sequence(), 2u);
  EXPECT_TRUE(trace.chronological().empty());
  EXPECT_TRUE(trace.since(0).empty());
}

TEST(Trace, SequenceMarksSelectEvents) {
  Trace trace(8);
  trace.set_enabled(true);
  trace.record(1, TraceKind::kSvc, 100);
  const u64 mark = trace.sequence();
  EXPECT_EQ(mark, 1u);
  trace.record(2, TraceKind::kHvc, 200);
  trace.record(3, TraceKind::kIrq, 300);
  const auto since = trace.since(mark);
  ASSERT_EQ(since.size(), 2u);
  EXPECT_EQ(since[0].a, 200u);
  EXPECT_EQ(since[1].a, 300u);
  // A mark at the current end selects nothing.
  EXPECT_TRUE(trace.since(trace.sequence()).empty());
}

TEST(Trace, SinceClampsToRetainedWindow) {
  Trace trace(4);
  trace.set_enabled(true);
  const u64 mark = trace.sequence();  // 0: everything after this
  for (u64 i = 0; i < 10; ++i) trace.record(i, TraceKind::kCustom, i);
  // Events 0..5 fell out of the ring; since() returns what survives.
  const auto since = trace.since(mark);
  ASSERT_EQ(since.size(), 4u);
  EXPECT_EQ(since.front().a, 6u);
  EXPECT_EQ(since.back().a, 9u);
  // A mark inside the retained window is honoured exactly.
  const auto tail = trace.since(8);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.front().a, 8u);
}

TEST(Trace, StampsSequenceIdsAndReturnsThem) {
  Trace trace;
  trace.set_enabled(true);
  EXPECT_EQ(trace.record(1, TraceKind::kSvc), 0u);
  EXPECT_EQ(trace.record(2, TraceKind::kHvc), 1u);
  const auto events = trace.chronological();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[0].cause, kNoCause);
  // Disabled recording returns the sentinel, not a sequence id.
  trace.set_enabled(false);
  EXPECT_EQ(trace.record(3, TraceKind::kIrq), kNoCause);
}

TEST(Trace, RingWrapLeavesAttributableSequenceGap) {
  Trace trace(4);
  trace.set_enabled(true);
  for (u64 i = 0; i < 10; ++i) trace.record(i, TraceKind::kCustom, i);
  // Six events were evicted; dropped() + first_seq() name the exact
  // sequence range lost, and surviving events keep their original ids.
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.first_seq(), 6u);
  EXPECT_EQ(trace.sequence(), 10u);
  const auto events = trace.chronological();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
  }
  // A zero-capacity ring still stamps ids: everything is in the gap.
  Trace none(0);
  none.set_enabled(true);
  none.record(1, TraceKind::kSvc);
  none.record(2, TraceKind::kSvc);
  EXPECT_EQ(none.first_seq(), 2u);
  EXPECT_EQ(none.dropped(), 2u);
}

TEST(Trace, ExplicitCauseLinks) {
  Trace trace;
  trace.set_enabled(true);
  const u64 root = trace.record(1, TraceKind::kBusWrite, 0x1000, 7);
  const u64 mid = trace.record_caused(2, TraceKind::kMbmFifo, root);
  trace.record_caused(3, TraceKind::kMbmDetect, mid, 0x1000, 7);
  const auto events = trace.chronological();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].cause, kNoCause);
  EXPECT_EQ(events[1].cause, events[0].seq);
  EXPECT_EQ(events[2].cause, events[1].seq);
}

TEST(Trace, CauseScopeNestsAndRestores) {
  Trace trace;
  trace.set_enabled(true);
  EXPECT_EQ(trace.current_cause(), kNoCause);
  const u64 outer = trace.record(1, TraceKind::kIrq);
  {
    Trace::CauseScope scope(trace, outer);
    EXPECT_EQ(trace.current_cause(), outer);
    const u64 inner = trace.record(2, TraceKind::kSvc);  // caused by outer
    {
      Trace::CauseScope nested(trace, inner);
      trace.record(3, TraceKind::kHvc);  // caused by inner
    }
    EXPECT_EQ(trace.current_cause(), outer);
    trace.record(4, TraceKind::kCtxSwitch);  // back to outer
  }
  EXPECT_EQ(trace.current_cause(), kNoCause);
  trace.record(5, TraceKind::kCustom);  // no ambient cause again
  const auto events = trace.chronological();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].cause, kNoCause);
  EXPECT_EQ(events[1].cause, events[0].seq);
  EXPECT_EQ(events[2].cause, events[1].seq);
  EXPECT_EQ(events[3].cause, events[0].seq);
  EXPECT_EQ(events[4].cause, kNoCause);
}

TEST(Trace, CountsByKind) {
  Trace trace;
  trace.set_enabled(true);
  trace.record(1, TraceKind::kIrq);
  trace.record(2, TraceKind::kIrq);
  trace.record(3, TraceKind::kHvc);
  EXPECT_EQ(trace.count(TraceKind::kIrq), 2u);
  EXPECT_EQ(trace.count(TraceKind::kHvc), 1u);
  EXPECT_EQ(trace.count(TraceKind::kSvc), 0u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceWiring, HypernelAttackLeavesFullStory) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  auto sys = hypernel::System::create(cfg).value();
  secapps::RootkitDetector detector(*sys);
  ASSERT_TRUE(detector.install().ok());
  sys->machine().trace().set_enabled(true);

  kernel::Kernel& k = sys->kernel();
  kernel::Task* init = &k.procs().current();
  ASSERT_TRUE(k.sys_setuid(1000).ok());
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  kernel::Task* child = k.procs().find(pid.value());
  k.procs().switch_to(*child);
  ASSERT_TRUE(k.sys_exit().ok());
  k.procs().switch_to(*init);
  sys->machine().write64(
      k.procs().current().cred + kernel::CredLayout::kUid * kWordSize, 0);

  Trace& trace = sys->machine().trace();
  EXPECT_GT(trace.count(TraceKind::kSvc), 0u);        // syscalls
  EXPECT_GT(trace.count(TraceKind::kHvc), 0u);        // PT hypercalls
  EXPECT_GT(trace.count(TraceKind::kSysregTrap), 0u); // TTBR0 switch
  EXPECT_GT(trace.count(TraceKind::kCtxSwitch), 0u);
  EXPECT_GT(trace.count(TraceKind::kMbmDetect), 0u);  // the attack write
  EXPECT_GT(trace.count(TraceKind::kIrq), 0u);        // MBM interrupt

  // Timestamps are monotone.
  Cycles last = 0;
  for (const TraceEvent& e : trace.chronological()) {
    EXPECT_GE(e.at, last);
    last = e.at;
  }
}

TEST(TraceWiring, KvmFaultsTraced) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kKvmGuest;
  cfg.enable_mbm = false;
  auto sys = hypernel::System::create(cfg).value();
  sys->machine().trace().set_enabled(true);
  // Touch cold guest RAM: a stage-2 fault event appears.
  ASSERT_TRUE(
      sys->machine().write64(kernel::phys_to_virt(100 * 1024 * 1024), 1).ok);
  EXPECT_GT(sys->machine().trace().count(TraceKind::kS2Fault), 0u);
}

}  // namespace
}  // namespace hn::sim
