// Fast-path vs reference-mode differential tests.
//
// DESIGN.md §9's contract: the host fast path (cached walk context, TLB
// lookup index, bulk charge-replay) changes wall-clock only.  Every
// scenario here runs twice — once with host_fast_path on, once in
// reference mode — on identically-constructed machines, and asserts the
// simulated ledgers are bit-identical: cycles, every counter, the bus
// transaction count, and the memory contents the scenario touched.
//
// The disturbance scenarios are the sharp edge: a bus snooper raising an
// IRQ mid-bulk-transfer whose handler inserts TLB entries or rewrites
// translation registers forces the charge-replay loop through its
// generation-guard fallback, which must leave no seam in the ledger.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "sim/bus.h"
#include "sim/irq.h"
#include "sim/machine.h"
#include "sim/pagetable.h"
#include "sim/sysregs.h"
#include "sim/trace_io.h"

namespace hn::sim {
namespace {

/// One machine plus a deterministic page-table builder (same shape as the
/// MachineTest fixture, but standalone so a scenario can be replayed on a
/// twin machine in the other mode).
class Rig {
 public:
  explicit Rig(bool fast_path, unsigned tlb_entries = 16, Cycles quantum = 0)
      : machine_(make_config(fast_path, tlb_entries, quantum)),
        next_table_(1 * 1024 * 1024) {
    root_ = alloc_table();
    machine_.set_sysreg_raw(SysReg::TTBR1_EL1, root_);
  }

  static MachineConfig make_config(bool fast_path, unsigned tlb_entries,
                                   Cycles quantum) {
    MachineConfig cfg;
    cfg.host_fast_path = fast_path;
    cfg.tlb_entries = tlb_entries;  // small: eviction pressure in scenarios
    cfg.decoupled_quantum = quantum;
    return cfg;
  }

  PhysAddr alloc_table() {
    const PhysAddr t = next_table_;
    next_table_ += kPageSize;
    machine_.phys().zero_range(t, kPageSize);
    return t;
  }

  void map(VirtAddr va, PhysAddr pa, const PageAttrs& attrs) {
    map_in(root_, va, pa, attrs);
  }

  void map_in(PhysAddr root, VirtAddr va, PhysAddr pa, const PageAttrs& attrs) {
    PhysAddr table = root;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + va_index(va, level) * 8;
      u64 d = machine_.phys().read64(slot);
      if (!desc_valid(d)) {
        const PhysAddr next = alloc_table();
        d = make_table_desc(next);
        machine_.phys().write64(slot, d);
      }
      table = desc_out_addr(d);
    }
    machine_.phys().write64(table + va_index(va, 3) * 8,
                            make_page_desc(pa, attrs));
  }

  Machine& m() { return machine_; }
  [[nodiscard]] PhysAddr root() const { return root_; }

 private:
  Machine machine_;
  PhysAddr next_table_;
  PhysAddr root_ = 0;
};

/// Everything the simulation is allowed to observe.
struct Ledger {
  Cycles cycles = 0;
  Counters counters;
  u64 bus_txns = 0;
  std::vector<u8> payload;  // scenario-chosen memory extract
};

#define HN_EXPECT_COUNTER_EQ(field) \
  EXPECT_EQ(a.counters.field, b.counters.field) << #field

void expect_ledgers_equal(const Ledger& a, const Ledger& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.bus_txns, b.bus_txns);
  HN_EXPECT_COUNTER_EQ(mem_reads);
  HN_EXPECT_COUNTER_EQ(mem_writes);
  HN_EXPECT_COUNTER_EQ(l1_hits);
  HN_EXPECT_COUNTER_EQ(l1_misses);
  HN_EXPECT_COUNTER_EQ(l1_stream_allocs);
  HN_EXPECT_COUNTER_EQ(dirty_writebacks);
  HN_EXPECT_COUNTER_EQ(noncacheable_accesses);
  HN_EXPECT_COUNTER_EQ(tlb_hits);
  HN_EXPECT_COUNTER_EQ(tlb_misses);
  HN_EXPECT_COUNTER_EQ(pt_descriptor_fetches);
  HN_EXPECT_COUNTER_EQ(s2_descriptor_fetches);
  HN_EXPECT_COUNTER_EQ(svc_calls);
  HN_EXPECT_COUNTER_EQ(hvc_calls);
  HN_EXPECT_COUNTER_EQ(sysreg_traps);
  HN_EXPECT_COUNTER_EQ(irqs_delivered);
  HN_EXPECT_COUNTER_EQ(vm_exits);
  HN_EXPECT_COUNTER_EQ(s2_translation_faults);
  HN_EXPECT_COUNTER_EQ(s2_permission_faults);
  HN_EXPECT_COUNTER_EQ(el1_permission_faults);
  HN_EXPECT_COUNTER_EQ(context_switches);
  EXPECT_EQ(a.payload, b.payload);
}

#undef HN_EXPECT_COUNTER_EQ

/// Run `scenario` on a fresh rig in each mode and require identical
/// ledgers.  Four modes: fast path, reference, and the fast path under
/// two temporally decoupled quanta (the large default plus a small odd
/// one that forces frequent folds at awkward charge boundaries).
struct ModeSpec {
  bool fast_path;
  Cycles quantum;
};
constexpr ModeSpec kModes[] = {
    {true, 0}, {false, 0}, {true, 4096}, {true, 61}};

template <typename Scenario>
void differential(Scenario scenario, unsigned tlb_entries = 16) {
  Ledger ledgers[std::size(kModes)];
  for (size_t mode = 0; mode < std::size(kModes); ++mode) {
    Rig rig(kModes[mode].fast_path, tlb_entries, kModes[mode].quantum);
    scenario(rig, ledgers[mode]);
    // cycles() folds any pending decoupled charge, so the final ledger
    // read is exact in every mode by construction.
    ledgers[mode].cycles = rig.m().account().cycles();
    ledgers[mode].counters = rig.m().counters();
    ledgers[mode].bus_txns = rig.m().bus().transaction_count();
    // The modes must agree they ran in the intended mode.
    EXPECT_EQ(rig.m().host_fast_path(), kModes[mode].fast_path);
    EXPECT_EQ(rig.m().tlb().index_enabled(), kModes[mode].fast_path);
    EXPECT_EQ(rig.m().decoupled_quantum(), kModes[mode].quantum);
  }
  for (size_t mode = 1; mode < std::size(kModes); ++mode) {
    SCOPED_TRACE("mode " + std::to_string(mode));
    expect_ledgers_equal(ledgers[0], ledgers[mode]);
  }
}

constexpr VirtAddr kVa = kKernelVaBase + 0x100000;
constexpr PhysAddr kPa = 4 * 1024 * 1024;

TEST(FastPathDifferential, MixedAccessChurn) {
  // Random single-word reads/writes over more pages than TLB slots, with
  // interleaved flushes: exercises index insert/evict/flush against the
  // reference scan, plus the cached walk context across TLBI traffic.
  differential([](Rig& rig, Ledger& out) {
    const unsigned kPages = 48;  // 3x the 16-entry TLB
    for (unsigned p = 0; p < kPages; ++p) {
      PageAttrs a{.write = true};
      if (p % 5 == 0) a.attr = MemAttr::kNonCacheable;
      a.global = (p % 3 != 0);
      rig.map(kVa + p * kPageSize, kPa + p * kPageSize, a);
    }
    Machine& m = rig.m();
    SplitMix64 rng(42);
    for (int i = 0; i < 4000; ++i) {
      const VirtAddr va = kVa + rng.next_below(kPages) * kPageSize +
                          rng.next_below(kPageSize / 8) * 8;
      if (rng.chance(1, 2)) {
        ASSERT_TRUE(m.write64(va, rng.next()).ok);
      } else {
        ASSERT_TRUE(m.read64(va).ok);
      }
      if (rng.chance(1, 64)) {
        m.tlb().flush_va(kVa + rng.next_below(kPages) * kPageSize);
        m.charge_tlbi();
      }
      if (rng.chance(1, 256)) {
        m.tlb().flush_all();
        m.charge_tlbi();
      }
    }
    out.payload.resize(kPages * kPageSize);
    m.phys().read_block(kPa, out.payload.data(), out.payload.size());
  });
}

TEST(FastPathDifferential, BulkTransfersCacheableAndNot) {
  differential([](Rig& rig, Ledger& out) {
    const unsigned kPages = 8;
    for (unsigned p = 0; p < kPages; ++p) {
      PageAttrs a{.write = true};
      if (p >= 4) a.attr = MemAttr::kNonCacheable;
      rig.map(kVa + p * kPageSize, kPa + p * kPageSize, a);
    }
    Machine& m = rig.m();
    std::vector<u8> buf(3 * kPageSize + 64);
    for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i * 7);
    // Cacheable region: page-crossing, unaligned-length (word multiple).
    ASSERT_TRUE(m.write_block_bulk(kVa + 8, buf.data(), buf.size() - 8));
    // Non-cacheable region: the charge-replay path proper.
    ASSERT_TRUE(m.write_block_bulk(kVa + 4 * kPageSize, buf.data(),
                                   2 * kPageSize + 16));
    std::vector<u8> rd(2 * kPageSize + 16);
    ASSERT_TRUE(m.read_block_bulk(kVa + 4 * kPageSize, rd.data(), rd.size()));
    EXPECT_EQ(std::memcmp(rd.data(), buf.data(), rd.size()), 0);
    std::vector<u8> rd2(buf.size() - 8);
    ASSERT_TRUE(m.read_block_bulk(kVa + 8, rd2.data(), rd2.size()));
    out.payload.insert(out.payload.end(), rd.begin(), rd.end());
    out.payload.insert(out.payload.end(), rd2.begin(), rd2.end());
  });
}

/// Snooper that raises an IRQ the first time it sees a word write to a
/// watched physical address — the MBM detection shape (§5.3), distilled.
struct IrqOnWrite : BusSnooper {
  Machine* machine = nullptr;
  PhysAddr watched = 0;
  bool fired = false;
  void on_transaction(const BusTransaction& t) override {
    if (!fired && t.op == BusOp::kWriteWord && t.paddr == watched) {
      fired = true;
      machine->raise_irq(kIrqMbm);
    }
  }
};

TEST(FastPathDifferential, IrqHandlerInsertsTlbEntriesMidBulk) {
  // The IRQ handler touches other pages, inserting TLB entries (and
  // charging cycles) in the middle of a charge-replay bulk write.  The
  // TLB generation guard must route the rest of the chunk down the exact
  // path; ledgers still match to the cycle.
  differential([](Rig& rig, Ledger& out) {
    PageAttrs nc{.write = true};
    nc.attr = MemAttr::kNonCacheable;
    for (unsigned p = 0; p < 4; ++p) {
      rig.map(kVa + p * kPageSize, kPa + p * kPageSize, nc);
    }
    // Handler working set, never touched by the bulk transfer itself.
    rig.map(kVa + 16 * kPageSize, kPa + 16 * kPageSize,
            PageAttrs{.write = true});
    Machine& m = rig.m();
    m.exceptions().set_el1_irq_handler([&m](unsigned) {
      // Faults here would be a test bug; the access is pre-mapped.
      ASSERT_TRUE(m.read64(kVa + 16 * kPageSize).ok);
      ASSERT_TRUE(m.write64(kVa + 16 * kPageSize, 0x1137).ok);
    });
    IrqOnWrite snoop;
    snoop.machine = &m;
    snoop.watched = kPa + kPageSize + 0x40;  // mid-transfer, second page
    m.bus().attach_snooper(&snoop);
    std::vector<u8> buf(3 * kPageSize);
    for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i);
    ASSERT_TRUE(m.write_block_bulk(kVa, buf.data(), buf.size()));
    m.bus().detach_snooper(&snoop);
    EXPECT_TRUE(snoop.fired);
    out.payload.resize(buf.size());
    m.phys().read_block(kPa, out.payload.data(), out.payload.size());
  });
}

TEST(FastPathDifferential, IrqHandlerRewritesSysregMidBulk) {
  // The handler rewrites TTBR0_EL1 mid-transfer: the vm-generation guard
  // must invalidate the cached walk context and abandon the replay loop.
  // (The bulk VA translates through TTBR1, so results are unchanged —
  // only the bookkeeping paths diverge, and they must not.)
  differential([](Rig& rig, Ledger& out) {
    PageAttrs nc{.write = true};
    nc.attr = MemAttr::kNonCacheable;
    for (unsigned p = 0; p < 3; ++p) {
      rig.map(kVa + p * kPageSize, kPa + p * kPageSize, nc);
    }
    Machine& m = rig.m();
    m.exceptions().set_el1_irq_handler([&m](unsigned) {
      m.set_sysreg_raw(SysReg::TTBR0_EL1,
                       m.sysreg(SysReg::TTBR0_EL1) + kPageSize);
    });
    IrqOnWrite snoop;
    snoop.machine = &m;
    snoop.watched = kPa + 0x80;
    m.bus().attach_snooper(&snoop);
    std::vector<u8> buf(2 * kPageSize);
    for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i * 3);
    ASSERT_TRUE(m.write_block_bulk(kVa, buf.data(), buf.size()));
    std::vector<u8> rd(buf.size());
    ASSERT_TRUE(m.read_block_bulk(kVa, rd.data(), rd.size()));
    m.bus().detach_snooper(&snoop);
    EXPECT_TRUE(snoop.fired);
    EXPECT_EQ(rd, buf);
    out.payload = rd;
  });
}

TEST(FastPathDifferential, WalkContextTracksTranslationRegisterRewrites) {
  // Repointing TTBR1_EL1 at a different root must take effect on the next
  // access in both modes — the cached snapshot may never serve the old
  // root.  Maps the same VA to two different PAs via two table trees.
  differential([](Rig& rig, Ledger& out) {
    rig.map(kVa, kPa, PageAttrs{.write = true});
    Machine& m = rig.m();
    ASSERT_TRUE(m.write64(kVa, 0xAAAA).ok);

    const PhysAddr root2 = rig.alloc_table();
    rig.map_in(root2, kVa, kPa + 64 * kPageSize, PageAttrs{.write = true});
    m.set_sysreg_raw(SysReg::TTBR1_EL1, root2);
    m.tlb().flush_all();
    m.charge_tlbi();
    ASSERT_TRUE(m.write64(kVa, 0xBBBB).ok);

    EXPECT_EQ(m.phys().read64(kPa), 0xAAAAu);
    EXPECT_EQ(m.phys().read64(kPa + 64 * kPageSize), 0xBBBBu);
    // And back: the first root's mapping must be live again.
    m.set_sysreg_raw(SysReg::TTBR1_EL1, rig.root());
    m.tlb().flush_all();
    m.charge_tlbi();
    const Access64 r = m.read64(kVa);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, 0xAAAAu);
    out.payload.resize(16);
    m.phys().read_block(kPa, out.payload.data(), 8);
    m.phys().read_block(kPa + 64 * kPageSize, out.payload.data() + 8, 8);
  });
}

TEST(FastPathDifferential, CapturedTraceIsByteIdentical) {
  // The flight recorder extends the "wall-clock only" contract: the
  // serialized trace — every kBusWrite the charge-replay loop stamps,
  // every timestamp — must match the reference walk byte for byte.
  // Third flavor: decoupled mode must stamp every timestamp — bus
  // events, cause links — identically too (the recorder observes the
  // clock, which folds the pending quantum first).
  std::vector<u8> blobs[3];
  for (int mode = 0; mode < 3; ++mode) {
    Rig rig(/*fast_path=*/mode != 1, /*tlb_entries=*/16,
            /*quantum=*/mode == 2 ? 4096 : 0);
    Machine& m = rig.m();
    m.trace().set_enabled(true);
    PageAttrs nc{.write = true};
    nc.attr = MemAttr::kNonCacheable;
    for (unsigned p = 0; p < 4; ++p) {
      rig.map(kVa + p * kPageSize, kPa + p * kPageSize, nc);
    }
    SplitMix64 rng(11);
    for (int i = 0; i < 200; ++i) {
      const VirtAddr va = kVa + rng.next_below(4) * kPageSize +
                          rng.next_below(kPageSize / 8) * 8;
      ASSERT_TRUE(m.write64(va, rng.next()).ok);
    }
    // Bulk path too: the charge-replay loop stamps the same events.
    std::vector<u8> buf(2 * kPageSize);
    for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i * 5);
    ASSERT_TRUE(m.write_block_bulk(kVa, buf.data(), buf.size()));
    blobs[mode] = serialize_trace(m.trace(), nullptr, m.timing().cpu_ghz);
    EXPECT_GT(m.trace().count(TraceKind::kBusWrite), 0u);
  }
  ASSERT_FALSE(blobs[0].empty());
  EXPECT_EQ(blobs[0], blobs[1]);
  EXPECT_EQ(blobs[0], blobs[2]);
}

TEST(FastPathDifferential, RuntimeModeFlipConverges) {
  // One machine, flipping modes between phases: the ledger after N
  // accesses must equal a machine that stayed in one mode throughout.
  auto run = [](int flavor) {
    Rig rig(/*fast_path=*/flavor != 2);
    for (unsigned p = 0; p < 8; ++p) {
      rig.map(kVa + p * kPageSize, kPa + p * kPageSize, PageAttrs{.write = true});
    }
    Machine& m = rig.m();
    SplitMix64 rng(9);
    for (int i = 0; i < 1000; ++i) {
      if (flavor == 0 && i % 100 == 0) {
        m.set_host_fast_path(i % 200 == 0);
      }
      const VirtAddr va = kVa + rng.next_below(8) * kPageSize +
                          rng.next_below(kPageSize / 8) * 8;
      if (rng.chance(1, 2)) {
        EXPECT_TRUE(m.write64(va, rng.next()).ok);
      } else {
        EXPECT_TRUE(m.read64(va).ok);
      }
    }
    return m.account().cycles();
  };
  const Cycles flipping = run(0);
  const Cycles pure_fast = run(1);
  const Cycles pure_ref = run(2);
  EXPECT_EQ(flipping, pure_fast);
  EXPECT_EQ(pure_fast, pure_ref);
}

TEST(FastPathDifferential, DecoupledEveryObservationIsExact) {
  // The decoupled contract is stronger than "final cycles match": ANY
  // observation of the clock folds the pending quantum first, so the
  // value returned is exact at every single read — here checked after
  // every access against a lockstep exact-mode twin.
  Rig exact(/*fast_path=*/true);
  Rig dec(/*fast_path=*/true, /*tlb_entries=*/16, /*quantum=*/4096);
  for (unsigned p = 0; p < 4; ++p) {
    exact.map(kVa + p * kPageSize, kPa + p * kPageSize, PageAttrs{.write = true});
    dec.map(kVa + p * kPageSize, kPa + p * kPageSize, PageAttrs{.write = true});
  }
  SplitMix64 rng(3);
  for (int i = 0; i < 600; ++i) {
    const VirtAddr va = kVa + rng.next_below(4) * kPageSize +
                        rng.next_below(kPageSize / 8) * 8;
    const u64 value = rng.next();
    ASSERT_TRUE(exact.m().write64(va, value).ok);
    ASSERT_TRUE(dec.m().write64(va, value).ok);
    ASSERT_EQ(exact.m().account().cycles(), dec.m().account().cycles())
        << "access " << i;
  }
}

TEST(FastPathDifferential, DecoupledQuantumFlipsMidRunConverge) {
  // Re-wiring the quantum mid-run (what the fuzz executor does when it
  // forces instrumented runs onto the exact path) folds the pending
  // charge and changes nothing observable.
  auto run = [](bool flip) {
    Rig rig(/*fast_path=*/true);
    for (unsigned p = 0; p < 8; ++p) {
      rig.map(kVa + p * kPageSize, kPa + p * kPageSize,
              PageAttrs{.write = true});
    }
    Machine& m = rig.m();
    SplitMix64 rng(17);
    for (int i = 0; i < 1200; ++i) {
      if (flip && i % 100 == 0) {
        m.set_decoupled_quantum(i % 300 == 0 ? 0 : (i % 200 == 0 ? 61 : 4096));
      }
      const VirtAddr va = kVa + rng.next_below(8) * kPageSize +
                          rng.next_below(kPageSize / 8) * 8;
      if (rng.chance(1, 2)) {
        EXPECT_TRUE(m.write64(va, rng.next()).ok);
      } else {
        EXPECT_TRUE(m.read64(va).ok);
      }
    }
    return m.account().cycles();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(FastPathDifferential, El2BlockCountsNoncacheableAccessesWhenCacheOff) {
  // Satellite regression: the EL2 block transfers model line-granular
  // burst traffic (one charge per cache line), but with the cache
  // disabled the branch charged cycles without counting the access —
  // counters and cycles disagreed about how much uncached traffic
  // happened.  Pin the repaired invariant: one counted noncacheable
  // access per charged line, and cycles == accesses * per-access cost.
  MachineConfig cfg;
  cfg.cache.enabled = false;
  Machine m(cfg);
  std::vector<u8> buf(256);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i);
  m.el2_write_block(kPa, buf.data(), buf.size());
  std::vector<u8> rd(buf.size());
  m.el2_read_block(kPa, rd.data(), rd.size());
  EXPECT_EQ(rd, buf);

  const u64 lines = 2 * buf.size() / kCacheLineSize;  // write + read pass
  EXPECT_EQ(m.counters().noncacheable_accesses, lines);
  EXPECT_EQ(m.account().cycles(),
            lines * m.timing().noncacheable_access);
  EXPECT_EQ(m.counters().mem_writes, buf.size() / 8);
  EXPECT_EQ(m.counters().mem_reads, buf.size() / 8);
}

}  // namespace
}  // namespace hn::sim
