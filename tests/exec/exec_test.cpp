// Unit tests for the execution layer (src/exec): the bounded MPMC
// queue, the worker pool, and the deterministic ShardedRunner.
//
// The property the rest of the repo leans on is pinned here from every
// angle: for any worker count, any shard size, and any (adversarially
// randomized) per-job duration, run_sharded's slot array is
// byte-identical to the plain sequential loop.  Scheduling may change
// wall-clock, never results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/queue.h"
#include "exec/sharded_runner.h"
#include "exec/thread_pool.h"

namespace hn::exec {
namespace {

// --- BoundedMpmcQueue -----------------------------------------------------

TEST(BoundedMpmcQueue, FifoOrderSingleConsumer) {
  BoundedMpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) {
    const std::optional<int> v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedMpmcQueue, CloseDrainsAcceptedItemsThenFails) {
  BoundedMpmcQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // closed: rejected
  EXPECT_EQ(q.pop().value(), 1);  // accepted items still drain
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed and empty
}

TEST(BoundedMpmcQueue, CloseWakesBlockedConsumer) {
  BoundedMpmcQueue<int> q(2);
  std::optional<int> got = 42;
  std::thread consumer([&] { got = q.pop(); });  // blocks: queue empty
  q.close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(BoundedMpmcQueue, FullQueueBlocksProducerUntilPop) {
  BoundedMpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the pop below
    second_pushed.store(true);
  });
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedMpmcQueue, DrainDiscardsQueuedItems) {
  BoundedMpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.drain(), 5u);
  EXPECT_EQ(q.size(), 0u);
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJobBeforeClose) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
    }
    pool.close();  // drains the queue, then joins
    EXPECT_EQ(ran.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ran.fetch_add(1); });
  }  // ~ThreadPool == close()
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, SubmitAfterCloseIsRejected) {
  ThreadPool pool(1);
  pool.close();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, CancelDiscardsQueuedButNotRunningJobs) {
  // One worker, parked on a semaphore; ten more jobs queued behind it.
  // cancel() must drop exactly the queued ten, let the running job
  // finish, and reject later submits.
  std::binary_semaphore started{0};
  std::binary_semaphore release{0};
  std::atomic<int> ran{0};
  ThreadPool pool(1, /*queue_capacity=*/32);
  pool.submit([&] {
    started.release();
    release.acquire();
    ran.fetch_add(1);
  });
  started.acquire();  // the blocker is running, not queued
  for (int i = 0; i < 10; ++i) pool.submit([&] { ran.fetch_add(1); });

  size_t dropped = 0;
  std::thread canceller([&] { dropped = pool.cancel(); });
  // Hold the blocker until cancel() has actually discarded the queue —
  // otherwise the worker could race ahead and run the queued jobs.
  while (!pool.cancelled() || pool.pending() != 0) {
    std::this_thread::yield();
  }
  release.release();  // cancel() joins only after the blocker finishes
  canceller.join();

  EXPECT_EQ(dropped, 10u);
  EXPECT_EQ(ran.load(), 1);  // the running job completed, nothing else
  EXPECT_TRUE(pool.cancelled());
  EXPECT_FALSE(pool.submit([&] { ran.fetch_add(1); }));
}

TEST(ThreadPool, JobExceptionIsCapturedAndWorkerSurvives) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("job blew up"); });
  pool.submit([&] { ran.fetch_add(1); });  // same worker keeps going
  pool.close();
  EXPECT_EQ(ran.load(), 1);
  std::exception_ptr err = pool.take_exception();
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), std::runtime_error);
  EXPECT_TRUE(pool.take_exception() == nullptr);  // taken exactly once
}

TEST(ThreadPool, StatsAccountEveryJob) {
  ThreadPool pool(3);
  for (int i = 0; i < 30; ++i) {
    pool.submit([] { std::this_thread::sleep_for(std::chrono::microseconds(100)); });
  }
  pool.close();
  const std::vector<WorkerStats> stats = pool.stats();
  ASSERT_EQ(stats.size(), 3u);
  u64 total = 0;
  for (const WorkerStats& s : stats) total += s.jobs;
  EXPECT_EQ(total, 30u);
}

TEST(ThreadPool, DefaultParallelismIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_parallelism(), 1u);
}

// --- ShardedRunner --------------------------------------------------------

/// A result whose value depends only on the index; the simulated work
/// burns a duration randomized *by index* so re-runs hit the same
/// adversarial schedule shape while staying reproducible.
u64 noisy_cell(u64 i) {
  SplitMix64 rng(i * 0x9E3779B97F4A7C15ull + 1);
  const u64 spin = rng.next_below(200);
  volatile u64 sink = 0;
  for (u64 k = 0; k < spin * 50; ++k) sink = sink + k;
  if (spin % 7 == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(spin));
  }
  return rng.next();
}

TEST(ShardedRunner, MatchesSequentialLoopForRandomizedDurations) {
  constexpr u64 kN = 64;
  std::vector<u64> expected(kN);
  for (u64 i = 0; i < kN; ++i) expected[i] = noisy_cell(i);

  for (const unsigned jobs : {1u, 2u, 4u, 7u}) {
    for (const u64 shard : {u64{1}, u64{3}, u64{16}}) {
      ShardOptions opt;
      opt.jobs = jobs;
      opt.shard_size = shard;
      ShardReport report;
      const std::vector<u64> got =
          run_sharded<u64>(kN, noisy_cell, opt, &report);
      EXPECT_EQ(got, expected) << "jobs=" << jobs << " shard=" << shard;
      EXPECT_EQ(report.indices_total, kN);
      EXPECT_EQ(report.indices_run, kN);
      EXPECT_EQ(report.indices_skipped, 0u);
      EXPECT_FALSE(report.cancelled);
    }
  }
}

TEST(ShardedRunner, OversubscriptionJobsFarExceedWorkers) {
  // 500 cells through 3 workers with a 2x-worker queue bound: the
  // submitting thread must backpressure, not balloon or deadlock.
  constexpr u64 kN = 500;
  ShardOptions opt;
  opt.jobs = 3;
  ShardReport report;
  const std::vector<u64> got = run_sharded<u64>(
      kN, [](u64 i) { return i * i + 1; }, opt, &report);
  ASSERT_EQ(got.size(), kN);
  for (u64 i = 0; i < kN; ++i) EXPECT_EQ(got[i], i * i + 1);
  EXPECT_EQ(report.indices_run, kN);
  u64 worker_jobs = 0;
  for (const WorkerStats& s : report.workers) worker_jobs += s.jobs;
  EXPECT_EQ(worker_jobs, kN);  // shard_size 1: one pool job per index
}

TEST(ShardedRunner, EmptyRangeIsANoOp) {
  ShardOptions opt;
  opt.jobs = 4;
  const std::vector<int> got =
      run_sharded<int>(0, [](u64) { return 1; }, opt);
  EXPECT_TRUE(got.empty());
}

TEST(ShardedRunner, ExceptionPropagatesWithLowestObservedIndex) {
  for (const unsigned jobs : {1u, 4u}) {
    ShardOptions opt;
    opt.jobs = jobs;
    try {
      (void)run_sharded<u64>(
          32,
          [](u64 i) -> u64 {
            if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
            return i;
          },
          opt);
      FAIL() << "expected run_sharded to rethrow (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      // Deterministic for jobs=1 (first throwing index); for parallel
      // runs the recorded index is the lowest among those observed,
      // which is always an odd index from the front of the range.
      const u64 index = std::stoull(e.what());
      EXPECT_EQ(index % 2, 1u);
      if (jobs == 1) {
        EXPECT_EQ(index, 1u);
      }
    }
  }
}

TEST(ShardedRunner, FailFastSequentialStopsAtFirstFailure) {
  constexpr u64 kN = 40;
  ShardOptions opt;
  opt.jobs = 1;
  opt.fail_fast = true;
  ShardReport report;
  const std::vector<u64> got = run_sharded<u64>(
      kN, [](u64 i) { return i; }, [](const u64& v) { return v == 11; }, opt,
      &report);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.indices_run, 12u);  // 0..11 inclusive
  EXPECT_EQ(report.indices_skipped, kN - 12);
  EXPECT_EQ(got[11], 11u);
}

TEST(ShardedRunner, FailFastParallelCoversEveryIndexBelowTheFailure) {
  // FIFO submission order guarantees indices below the lowest failing
  // one always have valid results, at any worker count.
  constexpr u64 kN = 64;
  constexpr u64 kFail = 23;
  ShardOptions opt;
  opt.jobs = 4;
  opt.fail_fast = true;
  ShardReport report;
  const std::vector<u64> got = run_sharded<u64>(
      kN,
      [](u64 i) {
        // Enough per-cell work that cancellation lands well before the
        // tail of the range is reached.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return i + 1000;
      },
      [](const u64& v) { return v == kFail + 1000; }, opt, &report);
  EXPECT_TRUE(report.cancelled);
  for (u64 i = 0; i <= kFail; ++i) {
    EXPECT_EQ(got[i], i + 1000) << "index " << i;
  }
  EXPECT_EQ(report.indices_run + report.indices_skipped, kN);
  EXPECT_LT(report.indices_run, kN);  // cancellation actually bit
}

TEST(ShardedRunner, ReportsPerRunWorkerStats) {
  ShardOptions opt;
  opt.jobs = 2;
  ShardReport report;
  (void)run_sharded<u64>(20, [](u64 i) { return i; }, opt, &report);
  ASSERT_EQ(report.workers.size(), 2u);
  EXPECT_GT(report.wall_ms, 0.0);
  u64 jobs = 0;
  for (const WorkerStats& s : report.workers) jobs += s.jobs;
  EXPECT_EQ(jobs, 20u);
}

}  // namespace
}  // namespace hn::exec
