// MBM tests: bitmap address math (properties), the write FIFO occupancy
// model, the read-allocate/write-update bitmap cache, the event ring, and
// the assembled monitor pipeline of Fig. 5 — including the cache-
// visibility negative control that justifies non-cacheable monitored
// pages (§5.3).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mbm/bitmap_cache.h"
#include "mbm/bitmap_math.h"
#include "mbm/event_ring.h"
#include "mbm/monitor.h"
#include "mbm/write_fifo.h"
#include "sim/machine.h"

namespace hn::mbm {
namespace {

// ---------------- bitmap math ----------------

TEST(BitmapMath, OneBitPerWord) {
  EXPECT_EQ(bit_index_for(0, 0), 0u);
  EXPECT_EQ(bit_index_for(7, 0), 0u);   // same word
  EXPECT_EQ(bit_index_for(8, 0), 1u);
  EXPECT_EQ(bit_index_for(0x1000, 0), 512u);
}

TEST(BitmapMath, WordAddressAndPosition) {
  const PhysAddr base = 0x7000000;
  EXPECT_EQ(bitmap_word_addr(0, base), base);
  EXPECT_EQ(bitmap_word_addr(63, base), base);
  EXPECT_EQ(bitmap_word_addr(64, base), base + 8);
  EXPECT_EQ(bit_position(63), 63u);
  EXPECT_EQ(bit_position(64), 0u);
}

TEST(BitmapMath, CoverageSize) {
  // 512 bytes = 64 words = 64 bits = 8 bitmap bytes.
  EXPECT_EQ(bitmap_bytes_for(512), 8u);
  EXPECT_EQ(bitmap_bytes_for(kBytesPerBitmapWord), 8u);
  EXPECT_EQ(bitmap_bytes_for(1 << 20), (1u << 20) / 64);
  // Partial words round up.
  EXPECT_EQ(bitmap_bytes_for(1), 1u);
  EXPECT_EQ(bitmap_bytes_for(9), 1u);
}

TEST(BitmapMath, PropertyDistinctWordsDistinctBits) {
  // Any two different words map to different (word_addr, position) pairs.
  SplitMix64 rng(5);
  const PhysAddr watch = 0;
  const PhysAddr bitmap = 0x100000;
  for (int i = 0; i < 2000; ++i) {
    const PhysAddr a = word_align_down(rng.next_below(1 << 26));
    const PhysAddr b = word_align_down(rng.next_below(1 << 26));
    const u64 ia = bit_index_for(a, watch);
    const u64 ib = bit_index_for(b, watch);
    if (a == b) {
      EXPECT_EQ(ia, ib);
    } else {
      EXPECT_TRUE(bitmap_word_addr(ia, bitmap) != bitmap_word_addr(ib, bitmap) ||
                  bit_position(ia) != bit_position(ib));
    }
  }
}

TEST(BitmapMath, PropertyAllBytesOfWordShareBit) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr w = word_align_down(rng.next_below(1 << 24));
    for (u64 off = 0; off < 8; ++off) {
      EXPECT_EQ(bit_index_for(w + off, 0), bit_index_for(w, 0));
    }
  }
}

// ---------------- write FIFO ----------------

TEST(WriteFifo, AcceptsUpToDepth) {
  WriteFifo fifo(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fifo.offer(CapturedWrite{}, 0, 100).accepted);
  }
  EXPECT_FALSE(fifo.offer(CapturedWrite{}, 0, 100).accepted);
  EXPECT_EQ(fifo.drops(), 1u);
  EXPECT_EQ(fifo.accepted(), 4u);
}

TEST(WriteFifo, DrainsOverTime) {
  WriteFifo fifo(2);
  EXPECT_TRUE(fifo.offer(CapturedWrite{}, 0, 100).accepted);   // done at 100
  EXPECT_TRUE(fifo.offer(CapturedWrite{}, 10, 100).accepted);  // done at 200
  EXPECT_FALSE(fifo.offer(CapturedWrite{}, 50, 100).accepted);  // full at t=50
  EXPECT_TRUE(fifo.offer(CapturedWrite{}, 150, 100).accepted);  // first drained
  EXPECT_EQ(fifo.occupancy(), 2u);
  fifo.drain(1000);
  EXPECT_EQ(fifo.occupancy(), 0u);
}

TEST(WriteFifo, OfferReportsWaitAndService) {
  WriteFifo fifo(4);
  const WriteFifo::Offer first = fifo.offer(CapturedWrite{}, 0, 100);
  EXPECT_TRUE(first.accepted);
  EXPECT_EQ(first.wait, 0u);  // empty FIFO: translator starts immediately
  EXPECT_EQ(first.service, 100u);
  // Second capture at t=10 queues behind the first (done at 100).
  const WriteFifo::Offer second = fifo.offer(CapturedWrite{}, 10, 50);
  EXPECT_TRUE(second.accepted);
  EXPECT_EQ(second.wait, 90u);
  EXPECT_EQ(second.service, 50u);
  // After the backlog drains, waiting drops back to zero.
  const WriteFifo::Offer third = fifo.offer(CapturedWrite{}, 500, 50);
  EXPECT_TRUE(third.accepted);
  EXPECT_EQ(third.wait, 0u);
}

TEST(WriteFifo, BackToBackServiceQueues) {
  WriteFifo fifo(8);
  // Service times accumulate: second capture finishes at 2*s.
  fifo.offer(CapturedWrite{}, 0, 50);
  fifo.offer(CapturedWrite{}, 0, 50);
  fifo.drain(60);
  EXPECT_EQ(fifo.occupancy(), 1u);  // only the first completed by t=60
  fifo.drain(100);
  EXPECT_EQ(fifo.occupancy(), 0u);
}

TEST(WriteFifo, SlowArrivalNeverDrops) {
  WriteFifo fifo(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fifo.offer(CapturedWrite{}, i * 1000, 100).accepted);
  }
  EXPECT_EQ(fifo.drops(), 0u);
}

// ---------------- bitmap cache ----------------

TEST(BitmapCache, ReadAllocate) {
  BitmapCache cache(8);
  EXPECT_FALSE(cache.lookup(0x100).hit);
  cache.fill(0x100, 0xFF);
  const auto r = cache.lookup(0x100);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, 0xFFu);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BitmapCache, WriteUpdateDoesNotAllocate) {
  BitmapCache cache(8);
  cache.observe_write(0x200, 0xAA);   // not present: ignored
  EXPECT_FALSE(cache.lookup(0x200).hit);
  cache.fill(0x200, 0x1);
  cache.observe_write(0x200, 0xAA);   // present: updated in place
  EXPECT_EQ(cache.lookup(0x200).value, 0xAAu);
}

TEST(BitmapCache, DirectMappedConflict) {
  BitmapCache cache(4);  // slots keyed by (addr/8) % 4
  cache.fill(0x0, 1);
  cache.fill(4 * 8, 2);  // same slot
  EXPECT_FALSE(cache.lookup(0x0).hit);
  EXPECT_TRUE(cache.lookup(4 * 8).hit);
}

TEST(BitmapCache, DisabledAlwaysMisses) {
  BitmapCache cache(8, /*enabled=*/false);
  cache.fill(0x100, 1);
  EXPECT_FALSE(cache.lookup(0x100).hit);
}

TEST(BitmapCache, InvalidateAll) {
  BitmapCache cache(8);
  cache.fill(0x100, 1);
  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup(0x100).hit);
}

// ---------------- event ring ----------------

class RingTest : public ::testing::Test {
 protected:
  RingTest() : machine_(sim::MachineConfig{}) {}
  sim::Machine machine_;
};

TEST_F(RingTest, FifoOrder) {
  EventRing ring(machine_, 0x100000, 8);
  for (u64 i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.push(MonitorEvent{0x1000 + i * 8, i}));
  }
  MonitorEvent ev;
  for (u64 i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.pop(ev));
    EXPECT_EQ(ev.paddr, 0x1000 + i * 8);
    EXPECT_EQ(ev.value, i);
  }
  EXPECT_FALSE(ring.pop(ev));
}

TEST_F(RingTest, OverflowDropsAndCounts) {
  EventRing ring(machine_, 0x100000, 2);
  EXPECT_TRUE(ring.push(MonitorEvent{8, 1}));
  EXPECT_TRUE(ring.push(MonitorEvent{16, 2}));
  EXPECT_FALSE(ring.push(MonitorEvent{24, 3}));
  EXPECT_EQ(ring.overflow_drops(), 1u);
  MonitorEvent ev;
  ring.pop(ev);
  EXPECT_TRUE(ring.push(MonitorEvent{32, 4}));  // space again
}

TEST_F(RingTest, WrapsAroundBuffer) {
  EventRing ring(machine_, 0x100000, 4);
  MonitorEvent ev;
  for (u64 round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push(MonitorEvent{round * 8, round}));
    ASSERT_TRUE(ring.pop(ev));
    EXPECT_EQ(ev.value, round);
  }
}

TEST_F(RingTest, RecordsLiveInSimulatedMemory) {
  EventRing ring(machine_, 0x200000, 8);
  ring.push(MonitorEvent{0xABCD0, 0x1234});
  EXPECT_EQ(machine_.phys().read64(0x200000), 0xABCD0u);
  EXPECT_EQ(machine_.phys().read64(0x200008), 0x1234u);
}

// ---------------- assembled monitor ----------------

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : machine_(sim::MachineConfig{}) {
    cfg_.watch_base = 0;
    cfg_.watch_size = machine_.secure_base();
    cfg_.bitmap_base = machine_.secure_base();
    cfg_.ring_base =
        page_align_up(cfg_.bitmap_base + bitmap_bytes_for(cfg_.watch_size));
    cfg_.ring_entries = 64;
    mbm_ = std::make_unique<MemoryBusMonitor>(machine_, cfg_);
    machine_.phys().zero_range(cfg_.bitmap_base,
                               bitmap_bytes_for(cfg_.watch_size));
  }

  /// Set the monitoring bit for a physical word (firmware-style).
  void watch_word(PhysAddr pa) {
    const u64 bit = bit_index_for(pa, cfg_.watch_base);
    const PhysAddr wa = bitmap_word_addr(bit, cfg_.bitmap_base);
    machine_.phys().write64(
        wa, machine_.phys().read64(wa) | (u64{1} << bit_position(bit)));
  }

  void bus_write(PhysAddr pa, u64 value) {
    sim::BusTransaction t;
    t.op = sim::BusOp::kWriteWord;
    t.paddr = pa;
    t.value = value;
    t.timestamp = machine_.account().cycles();
    machine_.bus().issue(t);
  }

  sim::Machine machine_;
  MbmConfig cfg_;
  std::unique_ptr<MemoryBusMonitor> mbm_;
};

TEST_F(MonitorTest, DetectsWatchedWrite) {
  watch_word(0x5000);
  bus_write(0x5000, 0xDEAD);
  EXPECT_EQ(mbm_->stats().detections, 1u);
  MonitorEvent ev;
  ASSERT_TRUE(mbm_->ring().pop(ev));
  EXPECT_EQ(ev.paddr, 0x5000u);
  EXPECT_EQ(ev.value, 0xDEADu);
}

TEST_F(MonitorTest, IgnoresUnwatchedWrite) {
  watch_word(0x5000);
  bus_write(0x5008, 1);  // neighbouring word: different bit
  bus_write(0x6000, 2);
  EXPECT_EQ(mbm_->stats().detections, 0u);
  EXPECT_EQ(mbm_->stats().snooped_word_writes, 2u);
}

TEST_F(MonitorTest, WordGranularityExact) {
  // All 8 bytes of the watched word map to its bit; the adjacent words
  // in the same 64-byte line do not.
  watch_word(0x7040);
  bus_write(0x7040, 1);
  bus_write(0x7048, 2);
  bus_write(0x7038, 3);
  EXPECT_EQ(mbm_->stats().detections, 1u);
}

TEST_F(MonitorTest, RaisesIrqOnDetection) {
  unsigned irqs = 0;
  machine_.exceptions().set_el1_irq_handler([&](unsigned line) {
    irqs += (line == sim::kIrqMbm);
  });
  watch_word(0x9000);
  bus_write(0x9000, 5);
  EXPECT_EQ(irqs, 1u);
  EXPECT_EQ(mbm_->stats().irqs_raised, 1u);
}

TEST_F(MonitorTest, DisabledMonitorSeesNothing) {
  watch_word(0x5000);
  mbm_->set_enabled(false);
  bus_write(0x5000, 1);
  EXPECT_EQ(mbm_->stats().detections, 0u);
  EXPECT_EQ(mbm_->stats().snooped_word_writes, 0u);
}

TEST_F(MonitorTest, BitmapCacheHitsOnRepeatedRegion) {
  watch_word(0x5000);
  bus_write(0x5000, 1);
  const u64 fetches_after_first = mbm_->stats().bitmap_fetches;
  bus_write(0x5000, 2);
  bus_write(0x5008, 3);  // same bitmap word
  EXPECT_EQ(mbm_->stats().bitmap_fetches, fetches_after_first);
  EXPECT_GE(mbm_->stats().bitmap_cache_hits, 2u);
}

TEST_F(MonitorTest, BusWriteToBitmapUpdatesCache) {
  watch_word(0x5000);
  bus_write(0x5000, 1);  // fill the bitmap cache
  EXPECT_EQ(mbm_->stats().detections, 1u);
  // Clear the bit via a *bus-visible* write, as Hypersec's NC store does.
  const u64 bit = bit_index_for(0x5000, 0);
  const PhysAddr wa = bitmap_word_addr(bit, cfg_.bitmap_base);
  machine_.phys().write64(wa, 0);
  bus_write(wa, 0);  // the snooped bitmap write (write-update, §6.3)
  bus_write(0x5000, 2);
  EXPECT_EQ(mbm_->stats().detections, 1u);  // no longer detected
}

TEST_F(MonitorTest, StaleBitmapCacheWithoutBusWriteKeepsOldView) {
  // Negative control: mutating the bitmap behind the MBM's back (direct
  // memory write without bus traffic) leaves the cached word stale.
  watch_word(0x5000);
  bus_write(0x5000, 1);
  const u64 bit = bit_index_for(0x5000, 0);
  machine_.phys().write64(bitmap_word_addr(bit, cfg_.bitmap_base), 0);
  bus_write(0x5000, 2);
  EXPECT_EQ(mbm_->stats().detections, 2u);  // cached bit still set
}

TEST_F(MonitorTest, FifoOverflowLosesDetections) {
  MbmConfig small = cfg_;
  small.fifo_depth = 2;
  mbm_.reset();  // detach the old monitor first
  mbm_ = std::make_unique<MemoryBusMonitor>(machine_, small);
  // Mask the MBM interrupt so the synchronous handler does not advance
  // simulated time between writes: the burst really is back-to-back.
  machine_.gic().set_enabled(sim::kIrqMbm, false);
  for (int i = 0; i < 16; ++i) watch_word(0xA000 + i * 8);
  for (int i = 0; i < 16; ++i) bus_write(0xA000 + i * 8, i);
  EXPECT_GT(mbm_->stats().fifo_drops, 0u);
  EXPECT_LT(mbm_->stats().detections, 16u);
  EXPECT_EQ(mbm_->stats().detections + mbm_->stats().fifo_drops, 16u);
}

TEST_F(MonitorTest, FifoHighWaterReachesDepthUnderBurstOverflow) {
  // Regression: high_water used to be marked only after an *accepted*
  // offer, so a burst that overflowed the FIFO reported a high-water
  // mark below the configured depth — exactly the saturated case the
  // gauge exists to expose.  It now marks the offered occupancy before
  // the drop check.
  machine_.obs().set_enabled(true);
  MbmConfig small = cfg_;
  small.fifo_depth = 2;
  mbm_.reset();
  mbm_ = std::make_unique<MemoryBusMonitor>(machine_, small);
  machine_.gic().set_enabled(sim::kIrqMbm, false);
  for (int i = 0; i < 16; ++i) watch_word(0xA000 + i * 8);
  for (int i = 0; i < 16; ++i) bus_write(0xA000 + i * 8, i);
  ASSERT_GT(mbm_->stats().fifo_drops, 0u);
#if HN_OBS
  EXPECT_EQ(machine_.obs().gauge("mbm.fifo.high_water").value(),
            small.fifo_depth);
#endif
}

TEST_F(MonitorTest, LineWritebackInvisibleByDefault) {
  // The crux of §5.3: a dirty-line write-back does NOT trigger detection
  // in the default configuration — monitored data must be non-cacheable.
  watch_word(0xB000);
  sim::BusTransaction t;
  t.op = sim::BusOp::kWriteLine;
  t.paddr = 0xB000;
  machine_.phys().read_block(0xB000, t.line.data(), kCacheLineSize);
  machine_.bus().issue(t);
  EXPECT_EQ(mbm_->stats().detections, 0u);
}

TEST_F(MonitorTest, ConservativeModeScansWritebacks) {
  MbmConfig conservative = cfg_;
  conservative.snoop_line_writebacks = true;
  mbm_.reset();
  mbm_ = std::make_unique<MemoryBusMonitor>(machine_, conservative);
  watch_word(0xB000);
  sim::BusTransaction t;
  t.op = sim::BusOp::kWriteLine;
  t.paddr = 0xB000;
  machine_.phys().read_block(0xB000, t.line.data(), kCacheLineSize);
  machine_.bus().issue(t);
  EXPECT_EQ(mbm_->stats().detections, 1u);
  EXPECT_EQ(mbm_->stats().snooped_line_writes, 1u);
}

TEST_F(MonitorTest, StatsResetClearsCounters) {
  watch_word(0x5000);
  bus_write(0x5000, 1);
  mbm_->reset_stats();
  const MbmStats s = mbm_->stats();
  EXPECT_EQ(s.detections, 0u);
  EXPECT_EQ(s.snooped_word_writes, 0u);
}

}  // namespace
}  // namespace hn::mbm
