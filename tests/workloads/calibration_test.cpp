// Calibration regression tests: pin the reproduced evaluation to the
// paper's shape so timing-model or kernel changes that silently break
// Table 1 / Table 2 fail loudly here.
//
// Tolerances are deliberately loose (the bands we claim in
// EXPERIMENTS.md), not exact-value golden tests: the simulation is
// deterministic, but the point is the *shape*, and legitimate model
// improvements should not require gold-file churn for every ±2%.
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/system.h"
#include "secapps/object_monitor.h"
#include "workloads/apps.h"
#include "workloads/lmbench.h"

namespace hn::workloads {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_perf(Mode mode) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

struct PaperRow {
  const char* name;
  double native;
};
// Table 1's native column — the calibration target.
constexpr PaperRow kPaperNative[] = {
    {"syscall stat", 1.92}, {"signal install", 0.68}, {"signal ovh", 2.96},
    {"pipe lat", 10.07},    {"socket lat", 13.76},    {"fork+exit", 271.68},
    {"fork+execv", 285.53}, {"page fault", 1.57},     {"mmap", 24.60},
};

TEST(Calibration, Table1NativeWithinTwelvePercent) {
  // 64 iterations to amortise warm-up, as the bench binary uses.
  auto sys = make_perf(Mode::kNative);
  LmbenchSuite suite(*sys, 64);
  const auto results = suite.run_all();
  ASSERT_EQ(results.size(), 9u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].us / kPaperNative[i].native, 1.0, 0.12)
        << results[i].name << ": " << results[i].us << " vs paper "
        << kPaperNative[i].native;
  }
}

TEST(Calibration, Table1AverageSlowdownsInBand) {
  double us[3][9];
  const Mode modes[3] = {Mode::kNative, Mode::kKvmGuest, Mode::kHypernel};
  for (int m = 0; m < 3; ++m) {
    auto sys = make_perf(modes[m]);
    LmbenchSuite suite(*sys, 32);
    const auto results = suite.run_all();
    for (size_t i = 0; i < 9; ++i) us[m][i] = results[i].us;
  }
  double kvm = 0;
  double hyper = 0;
  for (size_t i = 0; i < 9; ++i) {
    kvm += us[1][i] / us[0][i] - 1.0;
    hyper += us[2][i] / us[0][i] - 1.0;
    // Per-row ordering: native is never the slowest configuration.
    EXPECT_GE(us[1][i], us[0][i] * 0.99) << kPaperNative[i].name;
    EXPECT_GE(us[2][i], us[0][i] * 0.99) << kPaperNative[i].name;
  }
  kvm = 100.0 * kvm / 9;
  hyper = 100.0 * hyper / 9;
  // Paper: 15.5% and 8.8%.  Accept the bands we report in EXPERIMENTS.md.
  EXPECT_GT(kvm, 10.0);
  EXPECT_LT(kvm, 22.0);
  EXPECT_GT(hyper, 6.0);
  EXPECT_LT(hyper, 15.0);
  // Hypernel beats nested paging on average — the paper's thesis.
  EXPECT_LT(hyper, kvm);
}

TEST(Calibration, Fig6AverageOverheadsInBand) {
  const char* apps[] = {"whetstone", "dhrystone", "untar", "iozone", "apache"};
  double overhead[2] = {0, 0};
  double native_us[5];
  for (int a = 0; a < 5; ++a) {
    auto sys = make_perf(Mode::kNative);
    AppParams p;
    p.scale = 0.1;
    native_us[a] = run_app_by_name(*sys, apps[a], p).us;
  }
  const Mode modes[2] = {Mode::kKvmGuest, Mode::kHypernel};
  for (int m = 0; m < 2; ++m) {
    for (int a = 0; a < 5; ++a) {
      auto sys = make_perf(modes[m]);
      AppParams p;
      p.scale = 0.1;
      overhead[m] += run_app_by_name(*sys, apps[a], p).us / native_us[a] - 1.0;
    }
    overhead[m] = 100.0 * overhead[m] / 5;
  }
  // Paper: 13.5% / 3.1%.
  EXPECT_GT(overhead[0], 6.0);
  EXPECT_LT(overhead[0], 22.0);
  EXPECT_GT(overhead[1], 1.0);
  EXPECT_LT(overhead[1], 7.0);
  EXPECT_LT(overhead[1], overhead[0] / 2);  // Hypernel at least 2x cheaper
}

TEST(Calibration, Table2RatiosInBand) {
  const char* apps[] = {"whetstone", "dhrystone", "untar", "iozone", "apache"};
  for (const char* app : apps) {
    u64 counts[2];
    const secapps::Granularity gran[2] = {
        secapps::Granularity::kWholeObject,
        secapps::Granularity::kSensitiveFields};
    for (int g = 0; g < 2; ++g) {
      SystemConfig cfg;
      cfg.mode = Mode::kHypernel;
      cfg.enable_mbm = true;
      auto sys = System::create(cfg).value();
      secapps::ObjectIntegrityMonitor monitor(*sys, gran[g]);
      ASSERT_TRUE(monitor.install().ok());
      AppParams p;
      p.scale = 0.1;
      run_app_by_name(*sys, app, p);
      counts[g] = sys->mbm()->stats().detections;
    }
    ASSERT_GT(counts[0], 0u) << app;
    const double ratio = 100.0 * counts[1] / counts[0];
    // Paper's per-benchmark band: 3.6% - 9.2%; accept 2% - 15%.
    EXPECT_GT(ratio, 2.0) << app;
    EXPECT_LT(ratio, 15.0) << app;
  }
}

}  // namespace
}  // namespace hn::workloads
