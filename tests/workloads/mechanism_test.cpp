// Mechanistic attribution tests: the paper's causal claims about *why*
// each Table-1 row moves, verified against the event counters rather than
// just the latencies.
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/system.h"
#include "workloads/lmbench.h"

namespace hn::workloads {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_perf(Mode mode) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(Mechanism, PipeDeltaIsExactlyTheContextSwitchTraps) {
  // §7.1: pipe latency under Hypernel pays one TVM trap per address-space
  // switch and nothing else.  Verify count AND cost attribution.
  auto sys = make_perf(Mode::kHypernel);
  LmbenchSuite suite(*sys, 16);
  ASSERT_TRUE(suite.setup().ok());
  suite.pipe_latency();  // warm pass: COW-faults the user buffers once
  const auto before = sys->snapshot();
  suite.pipe_latency();
  const sim::Counters d = sys->counters_since(before);
  // Two switches per round trip, one trapped TTBR0 write each.
  EXPECT_EQ(d.sysreg_traps, 2u * 16u);
  EXPECT_EQ(d.context_switches, 2u * 16u);
  EXPECT_EQ(d.hvc_calls, 0u);  // no page-table work on this path
  EXPECT_EQ(d.vm_exits, 0u);
}

TEST(Mechanism, PageFaultDeltaIsOneHypercall) {
  // Table 1's page-fault row: +1 HVC per fault (the single PTE install).
  auto sys = make_perf(Mode::kHypernel);
  LmbenchSuite suite(*sys, 32);
  ASSERT_TRUE(suite.setup().ok());
  const auto before = sys->snapshot();
  suite.page_fault();  // 32 measured faults (plus warm-up outside capture?)
  const sim::Counters d = sys->counters_since(before);
  // The measured pass faults 32 pages into a fresh mapping; each is one
  // leaf-descriptor hypercall.  Setup/teardown adds the unmap calls.
  EXPECT_GE(d.hvc_calls, 32u);
  EXPECT_EQ(d.sysreg_traps, 0u);
}

TEST(Mechanism, ForkHypercallsMatchPageTableWrites) {
  // Every hypercall fork makes is a PT-write/alloc/free/root operation,
  // and none are denied.
  auto sys = make_perf(Mode::kHypernel);
  kernel::Kernel& k = sys->kernel();
  kernel::Task* init = &k.procs().current();
  const auto before = sys->snapshot();
  const auto hs_before = sys->hypersec()->stats();
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  k.procs().switch_to(*k.procs().find(pid.value()));
  ASSERT_TRUE(k.sys_exit().ok());
  k.procs().switch_to(*init);
  const sim::Counters d = sys->counters_since(before);
  const auto& hs = sys->hypersec()->stats();

  const u64 pt_ops = (hs.pt_write_calls - hs_before.pt_write_calls) +
                     (hs.pt_allocs - hs_before.pt_allocs) +
                     (hs.pt_frees - hs_before.pt_frees) +
                     (hs.root_registrations - hs_before.root_registrations) +
                     1 /* root unregister */;
  EXPECT_EQ(d.hvc_calls, pt_ops);
  EXPECT_GT(d.hvc_calls, 40u);  // fork is the HVC-heavy row
  EXPECT_EQ(hs.pt_write_denials, hs_before.pt_write_denials);
}

TEST(Mechanism, KvmStatPathHasNoExits) {
  // §7.1: trap-free syscalls are "basically comparable" — under KVM the
  // stat loop must complete without a single VM exit once warm.
  auto sys = make_perf(Mode::kKvmGuest);
  LmbenchSuite suite(*sys, 16);
  ASSERT_TRUE(suite.setup().ok());
  suite.syscall_stat();  // warm pass
  const auto before = sys->snapshot();
  suite.syscall_stat();
  const sim::Counters d = sys->counters_since(before);
  EXPECT_EQ(d.vm_exits, 0u);
  EXPECT_EQ(d.hvc_calls, 0u);
}

TEST(Mechanism, KvmForkPathExitsComeFromStage2AndWfi) {
  auto sys = make_perf(Mode::kKvmGuest);
  LmbenchSuite suite(*sys, 16);
  ASSERT_TRUE(suite.setup().ok());
  suite.fork_exit();  // warm
  const auto before = sys->snapshot();
  suite.fork_exit();
  const sim::Counters d = sys->counters_since(before);
  EXPECT_GT(d.vm_exits, 16u);  // sustained exits even at steady state
  EXPECT_GT(d.s2_descriptor_fetches, 1000u);  // nested walks throughout
  EXPECT_EQ(d.sysreg_traps, 0u);  // KVM does not trap TTBR writes
}

TEST(Mechanism, NativeRunsWithNoVirtualizationEventsAtAll) {
  auto sys = make_perf(Mode::kNative);
  LmbenchSuite suite(*sys, 8);
  suite.run_all();
  const sim::Counters& c = sys->machine().counters();
  EXPECT_EQ(c.hvc_calls, 0u);
  EXPECT_EQ(c.sysreg_traps, 0u);
  EXPECT_EQ(c.vm_exits, 0u);
  EXPECT_EQ(c.s2_descriptor_fetches, 0u);
}

}  // namespace
}  // namespace hn::workloads
