// Workload-suite tests: the LMbench operations behave sanely across
// configurations, the app models are deterministic, and the headline
// orderings of the paper's evaluation hold structurally.
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/system.h"
#include "workloads/apps.h"
#include "workloads/lmbench.h"

namespace hn::workloads {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_system(Mode mode) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(Lmbench, AllOperationsProduceLatencies) {
  auto sys = make_system(Mode::kNative);
  LmbenchSuite suite(*sys, 8);
  const auto results = suite.run_all();
  ASSERT_EQ(results.size(), 9u);
  for (const auto& r : results) {
    EXPECT_GT(r.us, 0.0) << r.name;
    EXPECT_LT(r.us, 10000.0) << r.name;
  }
  // Structural ordering within the native column of Table 1.
  EXPECT_LT(results[1].us, results[0].us);  // signal install < stat
  EXPECT_LT(results[0].us, results[3].us);  // stat < pipe
  EXPECT_LT(results[3].us, results[4].us);  // pipe < socket
  EXPECT_LT(results[4].us, results[5].us);  // socket < fork+exit
  EXPECT_LT(results[5].us, results[6].us);  // fork+exit < fork+execv
  EXPECT_LT(results[7].us, results[0].us * 2);  // page fault is tiny
}

TEST(Lmbench, DeterministicAcrossRuns) {
  double first[9];
  for (int run = 0; run < 2; ++run) {
    auto sys = make_system(Mode::kNative);
    LmbenchSuite suite(*sys, 8);
    const auto results = suite.run_all();
    for (size_t i = 0; i < 9; ++i) {
      if (run == 0) {
        first[i] = results[i].us;
      } else {
        EXPECT_DOUBLE_EQ(results[i].us, first[i]) << results[i].name;
      }
    }
  }
}

TEST(Lmbench, ForkRowsSlowerUnderBothHypervisors) {
  double fork_us[3];
  const Mode modes[3] = {Mode::kNative, Mode::kKvmGuest, Mode::kHypernel};
  for (int m = 0; m < 3; ++m) {
    auto sys = make_system(modes[m]);
    LmbenchSuite suite(*sys, 8);
    ASSERT_TRUE(suite.setup().ok());
    fork_us[m] = suite.fork_exit().us;
  }
  EXPECT_GT(fork_us[1], fork_us[0] * 1.05);  // KVM clearly slower
  EXPECT_GT(fork_us[2], fork_us[0] * 1.05);  // Hypernel clearly slower
  EXPECT_LT(fork_us[2], fork_us[0] * 1.5);   // ...but bounded
}

TEST(Lmbench, TrivialSyscallsNearNativeUnderHypernel) {
  double stat_us[2];
  const Mode modes[2] = {Mode::kNative, Mode::kHypernel};
  for (int m = 0; m < 2; ++m) {
    auto sys = make_system(modes[m]);
    LmbenchSuite suite(*sys, 8);
    ASSERT_TRUE(suite.setup().ok());
    stat_us[m] = suite.syscall_stat().us;
  }
  // §7.1: "the execution times of kernel operations are basically
  // comparable" for trap-free paths.
  EXPECT_NEAR(stat_us[1] / stat_us[0], 1.0, 0.02);
}

TEST(Apps, AllAppsRunEverywhere) {
  for (const Mode mode :
       {Mode::kNative, Mode::kKvmGuest, Mode::kHypernel}) {
    auto sys = make_system(mode);
    AppParams p;
    p.scale = 0.05;
    const auto results = run_all_apps(*sys, p);
    ASSERT_EQ(results.size(), 5u);
    for (const auto& r : results) {
      EXPECT_GT(r.us, 0.0) << r.name;
    }
  }
}

TEST(Apps, DeterministicForFixedSeed) {
  Cycles first = 0;
  for (int run = 0; run < 2; ++run) {
    auto sys = make_system(Mode::kNative);
    AppParams p;
    p.scale = 0.05;
    p.seed = 1234;
    const AppResult r = run_untar(*sys, p);
    if (run == 0) {
      first = r.cycles;
    } else {
      EXPECT_EQ(r.cycles, first);
    }
  }
}

TEST(Apps, SeedChangesApacheArrivals) {
  Cycles a;
  Cycles b;
  {
    auto sys = make_system(Mode::kNative);
    AppParams p;
    p.scale = 0.05;
    p.seed = 1;
    a = run_apache(*sys, p).cycles;
  }
  {
    auto sys = make_system(Mode::kNative);
    AppParams p;
    p.scale = 0.05;
    p.seed = 2;
    b = run_apache(*sys, p).cycles;
  }
  EXPECT_NE(a, b);  // different document access patterns
}

TEST(Apps, ComputeAppsNearNativeUnderHypernel) {
  double us[2];
  const Mode modes[2] = {Mode::kNative, Mode::kHypernel};
  for (int m = 0; m < 2; ++m) {
    auto sys = make_system(modes[m]);
    AppParams p;
    p.scale = 0.2;
    us[m] = run_whetstone(*sys, p).us;
  }
  EXPECT_NEAR(us[1] / us[0], 1.0, 0.01);  // Fig. 6's flat compute bars
}

TEST(Apps, UnknownNameAsserts) {
  auto sys = make_system(Mode::kNative);
  EXPECT_DEATH(run_app_by_name(*sys, "quake3", AppParams{}), "unknown app");
}

}  // namespace
}  // namespace hn::workloads
