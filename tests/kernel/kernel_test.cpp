// Kernel subsystem tests against a booted simkernel: page-table manager,
// VFS/dentry cache, process lifecycle (fork/COW/exec/exit), IPC, signals,
// and the syscall layer.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/kernel.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "sim/machine.h"

namespace hn::kernel {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    machine_ = std::make_unique<sim::Machine>(sim::MachineConfig{});
    KernelConfig cfg;
    kernel_ = std::make_unique<Kernel>(*machine_, cfg);
    EXPECT_TRUE(kernel_->boot().ok());
  }
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

// ---------------- boot & linear map ----------------

TEST_F(KernelTest, BootEstablishesLinearMap) {
  // Read/write through the linear map works over the whole pool.
  const VirtAddr va = phys_to_virt(kBuddyPoolBase + 0x1234000);
  EXPECT_TRUE(machine_->write64(va, 0xAB).ok);
  EXPECT_EQ(machine_->phys().read64(kBuddyPoolBase + 0x1234000), 0xABu);
}

TEST_F(KernelTest, KernelTextIsNotWritable) {
  const VirtAddr text = phys_to_virt(kTextBase);
  EXPECT_FALSE(machine_->write64(text, 0xE71100).ok);
}

TEST_F(KernelTest, KernelTextIsExecutable) {
  sim::AccessType exec;
  exec.is_exec = true;
  EXPECT_TRUE(machine_->probe(phys_to_virt(kTextBase), exec).ok);
}

TEST_F(KernelTest, KernelDataNotExecutable) {
  sim::AccessType exec;
  exec.is_exec = true;
  const sim::TranslateOutcome out =
      machine_->probe(phys_to_virt(kDataBase), exec);
  EXPECT_FALSE(out.ok);
}

TEST_F(KernelTest, WxHoldsOverEntireLinearMap) {
  // Property: no page is both writable and executable (§5.2.1's W^X,
  // already true of the patched 4 KiB kernel at boot).
  for (PhysAddr pa = 0; pa < kernel_->linear_limit(); pa += kPageSize) {
    const PageTableManager::SwWalk w =
        kernel_->kpt().walk(kernel_->kpt().kernel_root(), phys_to_virt(pa));
    ASSERT_TRUE(w.ok);
    const sim::PageAttrs attrs = sim::decode_attrs(w.desc);
    ASSERT_FALSE(attrs.write && attrs.exec) << "W+X page at " << std::hex << pa;
  }
}

// ---------------- page-table manager ----------------

TEST_F(KernelTest, MapWalkUnmapRoundTrip) {
  PageTableManager& kpt = kernel_->kpt();
  Result<PhysAddr> root = kpt.alloc_user_root();
  ASSERT_TRUE(root.ok());
  const VirtAddr va = 0x1230000;
  ASSERT_TRUE(kpt.map_page(root.value(), va, 0x555000,
                           sim::PageAttrs{.write = true, .user = true})
                  .ok());
  const PageTableManager::SwWalk w = kpt.walk(root.value(), va);
  ASSERT_TRUE(w.ok);
  EXPECT_EQ(w.level, 3u);
  EXPECT_EQ(sim::desc_out_addr(w.desc), 0x555000u);

  PhysAddr old = 0;
  ASSERT_TRUE(kpt.unmap_page(root.value(), va, &old).ok());
  EXPECT_EQ(old, 0x555000u);
  EXPECT_FALSE(kpt.walk(root.value(), va).ok);
  kpt.free_user_tree(root.value(), false);
}

TEST_F(KernelTest, SetPageAttrsFlushesTlb) {
  PageTableManager& kpt = kernel_->kpt();
  const PhysAddr frame = kBuddyPoolBase + 0x400000;
  const VirtAddr va = phys_to_virt(frame);
  ASSERT_TRUE(machine_->write64(va, 1).ok);  // mapped RW, TLB warm
  ASSERT_TRUE(kpt.protect_linear(frame, sim::PageAttrs{.write = false}).ok());
  EXPECT_FALSE(machine_->write64(va, 2).ok);  // RO now, despite warm TLB
  ASSERT_TRUE(kpt.protect_linear(frame, sim::PageAttrs{.write = true}).ok());
  EXPECT_TRUE(machine_->write64(va, 3).ok);
}

TEST_F(KernelTest, PtPagesTrackedWithLevels) {
  PageTableManager& kpt = kernel_->kpt();
  Result<PhysAddr> root = kpt.alloc_user_root();
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(kpt.is_pt_page(root.value()));
  EXPECT_EQ(kpt.pt_pages().at(root.value()), 0u);
  ASSERT_TRUE(kpt.map_page(root.value(), 0x400000, 0x666000,
                           sim::PageAttrs{.user = true})
                  .ok());
  // The intermediate tables were registered at levels 1..3.
  u64 found[4] = {};
  for (const auto& [pa, level] : kpt.pt_pages()) {
    if (level < 4) ++found[level];
  }
  EXPECT_GE(found[1], 1u);
  EXPECT_GE(found[2], 1u);
  EXPECT_GE(found[3], 1u);
  kpt.free_user_tree(root.value(), false);
}

TEST_F(KernelTest, FreeUserTreeReturnsTablePages) {
  PageTableManager& kpt = kernel_->kpt();
  const u64 before = kernel_->buddy().free_pages_count();
  Result<PhysAddr> root = kpt.alloc_user_root();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(
      kpt.map_page(root.value(), 0x400000, 0x777000, sim::PageAttrs{}).ok());
  kpt.free_user_tree(root.value(), false);
  EXPECT_EQ(kernel_->buddy().free_pages_count(), before);
  EXPECT_FALSE(kpt.is_pt_page(root.value()));
}

// ---------------- VFS ----------------

TEST_F(KernelTest, CreateStatUnlink) {
  ASSERT_TRUE(kernel_->sys_mkdir("/etc").ok());
  Result<u64> ino = kernel_->sys_creat("/etc/passwd");
  ASSERT_TRUE(ino.ok());
  Result<StatInfo> st = kernel_->sys_stat("/etc/passwd");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().ino, ino.value());
  EXPECT_FALSE(st.value().is_dir);
  ASSERT_TRUE(kernel_->sys_unlink("/etc/passwd").ok());
  EXPECT_FALSE(kernel_->sys_stat("/etc/passwd").ok());
}

TEST_F(KernelTest, DuplicateCreateFails) {
  ASSERT_TRUE(kernel_->sys_creat("/dup").ok());
  EXPECT_FALSE(kernel_->sys_creat("/dup").ok());
}

TEST_F(KernelTest, MissingPathFails) {
  EXPECT_FALSE(kernel_->sys_stat("/no/such/file").ok());
  EXPECT_FALSE(kernel_->sys_creat("/no/such/file").ok());
  EXPECT_FALSE(kernel_->sys_unlink("/nothing").ok());
}

TEST_F(KernelTest, FileDataRoundTrip) {
  Result<u64> ino = kernel_->sys_creat("/data");
  ASSERT_TRUE(ino.ok());
  std::vector<u8> data(10000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 13);
  // Offsets and lengths are word-granular in this model.
  ASSERT_TRUE(kernel_->sys_write(ino.value(), 0, data.data(), 10000).ok());
  std::vector<u8> out(10000);
  ASSERT_TRUE(kernel_->sys_read(ino.value(), 0, out.data(), 10000).ok());
  EXPECT_EQ(data, out);
  EXPECT_EQ(kernel_->vfs().inode(ino.value())->size, 10000u);
}

TEST_F(KernelTest, SparseReadReturnsZeros) {
  Result<u64> ino = kernel_->sys_creat("/sparse");
  ASSERT_TRUE(ino.ok());
  u64 probe = 0xFFFF;
  ASSERT_TRUE(kernel_->sys_read(ino.value(), 64 * 1024, &probe, 8).ok());
  EXPECT_EQ(probe, 0u);
}

TEST_F(KernelTest, RenameMovesEntry) {
  ASSERT_TRUE(kernel_->sys_mkdir("/a").ok());
  ASSERT_TRUE(kernel_->sys_mkdir("/b").ok());
  Result<u64> ino = kernel_->sys_creat("/a/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(kernel_->sys_rename("/a/f", "/b/g").ok());
  EXPECT_FALSE(kernel_->sys_stat("/a/f").ok());
  Result<StatInfo> st = kernel_->sys_stat("/b/g");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().ino, ino.value());
}

TEST_F(KernelTest, DentryObjectsCarryIdentity) {
  ASSERT_TRUE(kernel_->sys_creat("/victim").ok());
  ASSERT_TRUE(kernel_->sys_stat("/victim").ok());
  const VirtAddr dva =
      kernel_->vfs().cached_dentry(kernel_->vfs().root_ino(), "victim");
  ASSERT_NE(dva, 0u);
  EXPECT_EQ(machine_->read64(dva + DentryLayout::kOp * 8).value,
            kDentryOpsVtable);
  EXPECT_NE(machine_->read64(dva + DentryLayout::kInode * 8).value, 0u);
}

TEST_F(KernelTest, PruneDcacheFreesDentries) {
  for (int i = 0; i < 20; ++i) {
    char path[32];
    std::snprintf(path, sizeof(path), "/prune%d", i);
    ASSERT_TRUE(kernel_->sys_creat(path).ok());
  }
  const u64 before = kernel_->vfs().dcache_size();
  kernel_->vfs().prune_dcache(10);
  EXPECT_EQ(kernel_->vfs().dcache_size(), before - 10);
  // Re-lookup re-instantiates from the directory.
  EXPECT_TRUE(kernel_->sys_stat("/prune0").ok());
}

TEST_F(KernelTest, EvictInodePagesReleasesFrames) {
  Result<u64> ino = kernel_->sys_creat("/bigfile");
  ASSERT_TRUE(ino.ok());
  std::vector<u8> page(kPageSize, 1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        kernel_->sys_write(ino.value(), i * kPageSize, page.data(), kPageSize)
            .ok());
  }
  const u64 before = kernel_->buddy().free_pages_count();
  kernel_->vfs().evict_inode_pages(ino.value());
  EXPECT_EQ(kernel_->buddy().free_pages_count(), before + 8);
}

// ---------------- processes ----------------

TEST_F(KernelTest, ForkCreatesCowChild) {
  ProcessManager& procs = kernel_->procs();
  Task* parent = &procs.current();
  // Dirty a parent heap word first.
  const VirtAddr heap = kUserHeapBase;
  ASSERT_TRUE(procs.user_write64(heap, 0x1111).ok());

  Result<u32> pid = kernel_->sys_fork();
  ASSERT_TRUE(pid.ok());
  Task* child = procs.find(pid.value());
  ASSERT_NE(child, nullptr);
  EXPECT_NE(child->ttbr0, parent->ttbr0);
  EXPECT_EQ(child->cred, parent->cred);  // shared, refcounted

  // Child sees the parent's data...
  procs.switch_to(*child);
  Result<u64> r = procs.user_read64(heap);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0x1111u);

  // ...and writes trigger COW: the parent's copy stays intact.
  ASSERT_TRUE(procs.user_write64(heap, 0x2222).ok());
  procs.switch_to(*parent);
  EXPECT_EQ(procs.user_read64(heap).value(), 0x1111u);
  procs.switch_to(*child);
  EXPECT_EQ(procs.user_read64(heap).value(), 0x2222u);

  ASSERT_TRUE(kernel_->sys_exit().ok());
  procs.switch_to(*parent);
}

TEST_F(KernelTest, ForkSharesCredByRefcount) {
  ProcessManager& procs = kernel_->procs();
  Task* parent = &procs.current();
  const u64 usage_before =
      machine_->read64(parent->cred + CredLayout::kUsage * 8).value;
  Result<u32> pid = kernel_->sys_fork();
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(machine_->read64(parent->cred + CredLayout::kUsage * 8).value,
            usage_before + 1);
  Task* child = procs.find(pid.value());
  procs.switch_to(*child);
  ASSERT_TRUE(kernel_->sys_exit().ok());
  EXPECT_EQ(machine_->read64(parent->cred + CredLayout::kUsage * 8).value,
            usage_before);
  procs.switch_to(*parent);
}

TEST_F(KernelTest, ExecReplacesAddressSpaceAndCred) {
  // (Frame/slab recycling may hand exec the same physical root and cred
  // object back, so identity of addresses proves nothing; assert on the
  // *content* semantics instead.)
  ProcessManager& procs = kernel_->procs();
  Task* parent = &procs.current();
  Result<u32> pid = kernel_->sys_fork();
  ASSERT_TRUE(pid.ok());
  Task* child = procs.find(pid.value());
  procs.switch_to(*child);
  // Dirty the heap (COW) and share the cred with the parent.
  ASSERT_TRUE(procs.user_write64(kUserHeapBase, 0x77).ok());
  const u64 parent_usage =
      machine_->read64(parent->cred + CredLayout::kUsage * 8).value;
  ASSERT_TRUE(kernel_->sys_execve().ok());
  // Fresh image: the dirty heap word is gone (demand-zero page).
  EXPECT_EQ(procs.user_read64(kUserHeapBase).value(), 0u);
  // Fresh cred, no longer shared: the parent's usage count dropped and
  // the child's is exactly 1.
  EXPECT_NE(child->cred, parent->cred);
  EXPECT_EQ(machine_->read64(parent->cred + CredLayout::kUsage * 8).value,
            parent_usage - 1);
  EXPECT_EQ(machine_->read64(child->cred + CredLayout::kUsage * 8).value, 1u);
  // Post-exec the process runs with a fresh stack page.
  EXPECT_TRUE(procs.user_write64(kUserStackTop - 64, 1).ok());
  ASSERT_TRUE(kernel_->sys_exit().ok());
  procs.switch_to(*parent);
}

TEST_F(KernelTest, ExitReleasesMemory) {
  ProcessManager& procs = kernel_->procs();
  Task* parent = &procs.current();
  const u64 tasks_before = procs.live_tasks();
  const u64 free_before = kernel_->buddy().free_pages_count();
  Result<u32> pid = kernel_->sys_fork();
  ASSERT_TRUE(pid.ok());
  Task* child = procs.find(pid.value());
  procs.switch_to(*child);
  ASSERT_TRUE(kernel_->sys_exit().ok());
  procs.switch_to(*parent);
  EXPECT_EQ(procs.live_tasks(), tasks_before);
  EXPECT_EQ(kernel_->buddy().free_pages_count(), free_before);
}

TEST_F(KernelTest, SwitchToWritesTtbr0WithAsid) {
  ProcessManager& procs = kernel_->procs();
  Task* parent = &procs.current();
  Result<u32> pid = kernel_->sys_fork();
  ASSERT_TRUE(pid.ok());
  Task* child = procs.find(pid.value());
  procs.switch_to(*child);
  const u64 ttbr0 = machine_->sysreg(sim::SysReg::TTBR0_EL1);
  EXPECT_EQ(ttbr0 & 0x0000'FFFF'FFFF'FFFFull, child->ttbr0);
  EXPECT_EQ(static_cast<u16>(ttbr0 >> 48), child->asid);
  ASSERT_TRUE(kernel_->sys_exit().ok());
  procs.switch_to(*parent);
}

TEST_F(KernelTest, SegfaultOutsideVmas) {
  ProcessManager& procs = kernel_->procs();
  EXPECT_FALSE(procs.user_write64(0x7F00'0000'0000ull, 1).ok());
  EXPECT_FALSE(procs.user_read64(0x200).ok());
}

TEST_F(KernelTest, WriteToReadOnlyTextSegfaults) {
  ProcessManager& procs = kernel_->procs();
  EXPECT_FALSE(procs.user_write64(kUserTextBase, 1).ok());
}

TEST_F(KernelTest, MmapDemandPaging) {
  Result<VirtAddr> va = kernel_->sys_mmap(8 * kPageSize, true);
  ASSERT_TRUE(va.ok());
  const u64 faults_before = machine_->counters().el1_permission_faults;
  ASSERT_TRUE(kernel_->procs().user_write64(va.value() + kPageSize, 0x99).ok());
  EXPECT_EQ(kernel_->procs().user_read64(va.value() + kPageSize).value(),
            0x99u);
  (void)faults_before;
  ASSERT_TRUE(kernel_->sys_munmap(va.value(), 8 * kPageSize).ok());
  EXPECT_FALSE(kernel_->procs().user_read64(va.value()).ok());
}

TEST_F(KernelTest, FileMmapSeesFileContent) {
  Result<u64> ino = kernel_->sys_creat("/mapped");
  ASSERT_TRUE(ino.ok());
  u64 magic = 0x600D'F00D;
  ASSERT_TRUE(kernel_->sys_write(ino.value(), 0, &magic, 8).ok());
  Result<VirtAddr> va = kernel_->sys_mmap_file(ino.value(), kPageSize);
  ASSERT_TRUE(va.ok());
  Result<u64> r = kernel_->procs().user_read64(va.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), magic);
  ASSERT_TRUE(kernel_->sys_munmap(va.value(), kPageSize).ok());
  // Page-cache frame survives the unmap.
  u64 back = 0;
  ASSERT_TRUE(kernel_->sys_read(ino.value(), 0, &back, 8).ok());
  EXPECT_EQ(back, magic);
}

TEST_F(KernelTest, SetuidWritesSensitiveCredFields) {
  ProcessManager& procs = kernel_->procs();
  ASSERT_TRUE(kernel_->sys_setuid(1000).ok());
  EXPECT_EQ(procs.cred_uid(procs.current()).value(), 1000u);
  EXPECT_EQ(machine_->read64(procs.current().cred + CredLayout::kCapEffective * 8)
                .value,
            0u);  // caps dropped
}

// ---------------- signals ----------------

TEST_F(KernelTest, SignalInstallAndDeliver) {
  ASSERT_TRUE(kernel_->sys_sigaction(10, 0x40001000).ok());
  EXPECT_TRUE(kernel_->sys_kill_self(10).ok());
}

TEST_F(KernelTest, UnhandledSignalIgnored) {
  EXPECT_TRUE(kernel_->sys_kill_self(9).ok());  // no handler: model ignores
}

TEST_F(KernelTest, BadSignalNumberRejected) {
  EXPECT_FALSE(kernel_->sys_sigaction(99, 0x1).ok());
  EXPECT_FALSE(kernel_->sys_kill_self(99).ok());
}

// ---------------- IPC ----------------

TEST_F(KernelTest, PipeTransfersData) {
  Result<u32> pipe = kernel_->sys_pipe();
  ASSERT_TRUE(pipe.ok());
  ProcessManager& procs = kernel_->procs();
  ASSERT_TRUE(procs.user_write64(kUserHeapBase, 0x1234).ok());
  ASSERT_TRUE(kernel_->sys_pipe_write(pipe.value(), kUserHeapBase, 8).ok());
  EXPECT_EQ(kernel_->ipc().pipe_fill(pipe.value()), 8u);
  Result<u64> got = kernel_->sys_pipe_read(pipe.value(), kUserHeapBase + 64, 8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 8u);
  EXPECT_EQ(procs.user_read64(kUserHeapBase + 64).value(), 0x1234u);
}

TEST_F(KernelTest, EmptyPipeReadsNothing) {
  Result<u32> pipe = kernel_->sys_pipe();
  ASSERT_TRUE(pipe.ok());
  Result<u64> got = kernel_->sys_pipe_read(pipe.value(), kUserHeapBase, 8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 0u);
}

TEST_F(KernelTest, SocketPairBidirectional) {
  Result<u32> sock = kernel_->sys_socketpair();
  ASSERT_TRUE(sock.ok());
  ProcessManager& procs = kernel_->procs();
  ASSERT_TRUE(procs.user_write64(kUserHeapBase, 0xAAAA).ok());
  ASSERT_TRUE(
      kernel_->sys_socket_send(sock.value(), 0, kUserHeapBase, 8).ok());
  Result<u64> got =
      kernel_->sys_socket_recv(sock.value(), 1, kUserHeapBase + 64, 8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 8u);
  // Reverse direction.
  ASSERT_TRUE(procs.user_write64(kUserHeapBase + 128, 0xBBBB).ok());
  ASSERT_TRUE(
      kernel_->sys_socket_send(sock.value(), 1, kUserHeapBase + 128, 8).ok());
  got = kernel_->sys_socket_recv(sock.value(), 0, kUserHeapBase + 192, 8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(procs.user_read64(kUserHeapBase + 192).value(), 0xBBBBu);
}

// ---------------- sections mode & misc ----------------

TEST(KernelSections, SectionKernelBootsAndRuns) {
  sim::Machine machine{sim::MachineConfig{}};
  KernelConfig cfg;
  cfg.use_sections = true;  // stock-kernel 2 MiB mapping (§6.2)
  Kernel kernel(machine, cfg);
  ASSERT_TRUE(kernel.boot().ok());
  ASSERT_TRUE(kernel.sys_creat("/x").ok());
  EXPECT_TRUE(kernel.sys_stat("/x").ok());
  // The granularity hazard: the image section is one RWX block.
  const PageTableManager::SwWalk w =
      kernel.kpt().walk(kernel.kpt().kernel_root(), phys_to_virt(kTextBase));
  ASSERT_TRUE(w.ok);
  EXPECT_EQ(w.level, 2u);
  const sim::PageAttrs attrs = sim::decode_attrs(w.desc);
  EXPECT_TRUE(attrs.write && attrs.exec);
}

TEST(KernelTicks, TimerFiresDuringCompute) {
  sim::Machine machine{sim::MachineConfig{}};
  Kernel kernel(machine, KernelConfig{});
  ASSERT_TRUE(kernel.boot().ok());
  kernel.run_user_compute(3 * kernel.config().timer_period + 1000);
  EXPECT_EQ(kernel.timer_ticks(), 3u);
  EXPECT_GE(machine.counters().irqs_delivered, 3u);
}

}  // namespace
}  // namespace hn::kernel
