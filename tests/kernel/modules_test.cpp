// Loadable-module tests: the insmod/rmmod lifecycle, the W^X seal
// transition, and the Hypernel-mediated variant where module text becomes
// tamper-proof (the "buggy driver" motivation of §1 turned around).
#include <gtest/gtest.h>

#include <memory>

#include "common/hvc_abi.h"
#include "hypernel/system.h"
#include "kernel/layout.h"
#include "kernel/modules.h"

namespace hn::kernel {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_system(Mode mode) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

ModuleImage test_module(const char* name, size_t hooks = 8) {
  ModuleImage img;
  img.name = name;
  for (size_t i = 0; i < hooks; ++i) {
    img.text_words.push_back(0xF00D'0000 + i);
  }
  img.data_words = {1, 2, 3};
  return img;
}

class ModulesTest : public ::testing::TestWithParam<Mode> {
 protected:
  ModulesTest() : sys_(make_system(GetParam())) {}
  std::unique_ptr<System> sys_;
};

TEST(ModulesSections, SealSplitsSectionInsteadOfLockingNeighbours) {
  // Regression (found by the fuzzer): with the stock-kernel 2 MiB section
  // linear map, sealing module text through the block descriptor used to
  // turn the whole section read-only — including unrelated slab pages —
  // and the next cred write died on the writability assert.  The seal
  // must split the section to 4 KiB pages and demote only its own frames.
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  cfg.kernel.use_sections = true;
  auto sys = System::create(cfg).value();
  Kernel& k = sys->kernel();

  ASSERT_TRUE(k.sys_insmod(test_module("split")).ok());
  // Kernel object churn that lands in the same linear region must still
  // work: fork allocates and writes cred/task slab objects.
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok()) << pid.status().message();
  // The sealed text itself is read-only: module frames reject stores.
  const LoadedModule* mod = k.modules().find("split");
  ASSERT_NE(mod, nullptr);
  const VirtAddr text_va = mod->text_va;
  EXPECT_FALSE(sys->machine().write64(text_va, 0xBAD).ok);
  // And unload restores plain data so the frames can be reused.
  ASSERT_TRUE(k.sys_rmmod("split").ok());
  EXPECT_TRUE(sys->machine().write64(text_va, 0x600D).ok);
}

TEST_P(ModulesTest, LoadCallUnload) {
  Kernel& k = sys_->kernel();
  Result<LoadedModule> mod = k.sys_insmod(test_module("veth"));
  ASSERT_TRUE(mod.ok()) << mod.status().message();
  EXPECT_EQ(k.modules().loaded_count(), 1u);

  // Hooks dispatch to the staged cookies.
  Result<u64> h0 = k.sys_module_call("veth", 0);
  ASSERT_TRUE(h0.ok());
  EXPECT_EQ(h0.value(), 0xF00D'0000u);
  EXPECT_EQ(k.sys_module_call("veth", 7).value(), 0xF00D'0007u);

  ASSERT_TRUE(k.sys_rmmod("veth").ok());
  EXPECT_EQ(k.modules().loaded_count(), 0u);
  EXPECT_FALSE(k.sys_module_call("veth", 0).ok());
}

TEST_P(ModulesTest, TextSealedReadOnlyExecutable) {
  Kernel& k = sys_->kernel();
  Result<LoadedModule> mod = k.sys_insmod(test_module("sealed"));
  ASSERT_TRUE(mod.ok());
  // Writes to sealed text fault; reads and exec succeed.
  EXPECT_FALSE(sys_->machine().write64(mod.value().text_va, 0xBAD).ok);
  EXPECT_TRUE(sys_->machine().read64(mod.value().text_va).ok);
  sim::AccessType exec;
  exec.is_exec = true;
  EXPECT_TRUE(sys_->machine().probe(mod.value().text_va, exec).ok);
  // Data stays writable and is not executable.
  EXPECT_TRUE(sys_->machine().write64(mod.value().data_va, 9).ok);
  EXPECT_FALSE(sys_->machine().probe(mod.value().data_va, exec).ok);
}

TEST_P(ModulesTest, UnloadRestoresPlainMemory) {
  Kernel& k = sys_->kernel();
  Result<LoadedModule> mod = k.sys_insmod(test_module("tmpmod"));
  ASSERT_TRUE(mod.ok());
  const VirtAddr text = mod.value().text_va;
  const u64 free_before = k.buddy().free_pages_count();
  ASSERT_TRUE(k.sys_rmmod("tmpmod").ok());
  EXPECT_GT(k.buddy().free_pages_count(), free_before);
  // Frames are ordinary RW memory again (reallocatable and writable).
  EXPECT_TRUE(sys_->machine().write64(text, 0x1).ok);
}

TEST_P(ModulesTest, DuplicateAndMissingNames) {
  Kernel& k = sys_->kernel();
  ASSERT_TRUE(k.sys_insmod(test_module("dup")).ok());
  EXPECT_FALSE(k.sys_insmod(test_module("dup")).ok());
  EXPECT_FALSE(k.sys_rmmod("ghost").ok());
  EXPECT_FALSE(k.sys_module_call("dup", 9999).ok());  // out of range
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModulesTest,
                         ::testing::Values(Mode::kNative, Mode::kKvmGuest,
                                           Mode::kHypernel),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Mode::kNative: return std::string("Native");
                             case Mode::kKvmGuest: return std::string("KvmGuest");
                             case Mode::kHypernel: return std::string("Hypernel");
                           }
                           return std::string("Unknown");
                         });

// ---------------- Hypernel-specific hardening ----------------

TEST(ModulesHypernel, SealGoesThroughHypercall) {
  auto sys = make_system(Mode::kHypernel);
  Kernel& k = sys->kernel();
  const u64 hvc_before = sys->machine().counters().hvc_calls;
  ASSERT_TRUE(k.sys_insmod(test_module("hvcmod")).ok());
  EXPECT_GT(sys->machine().counters().hvc_calls, hvc_before);
  EXPECT_GT(sys->hypersec()->verifier().is_module_text(
                virt_to_phys(k.modules().find("hvcmod")->text_va)),
            false);
}

TEST(ModulesHypernel, ForgedSealOfKernelTextDenied) {
  auto sys = make_system(Mode::kHypernel);
  // A rootkit asking Hypersec to make the kernel image "module text"
  // (e.g. to then unseal it writable) is rejected outright.
  EXPECT_EQ(sys->machine().hvc(hvc::kModuleSeal, {kTextBase, 4}),
            hvc::kDenied);
  // As is unsealing anything that was never sealed.
  EXPECT_EQ(sys->machine().hvc(hvc::kModuleUnseal, {0x400000, 1}),
            hvc::kDenied);
  // And sealing the secure space or a PT page.
  EXPECT_EQ(sys->machine().hvc(hvc::kModuleSeal,
                               {sys->machine().secure_base(), 1}),
            hvc::kDenied);
  EXPECT_EQ(sys->machine().hvc(hvc::kModuleSeal,
                               {sys->kernel().kpt().kernel_root(), 1}),
            hvc::kDenied);
}

TEST(ModulesHypernel, NoWritableAliasOfSealedText) {
  auto sys = make_system(Mode::kHypernel);
  Kernel& k = sys->kernel();
  Result<LoadedModule> mod = k.sys_insmod(test_module("aliased"));
  ASSERT_TRUE(mod.ok());
  // Try to map the module text writable into a user address space.
  Result<PhysAddr> root = k.kpt().alloc_user_root();
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE(k.kpt()
                   .map_page(root.value(), 0x400000,
                             virt_to_phys(mod.value().text_va),
                             sim::PageAttrs{.write = true, .user = true})
                   .ok());
  // A read-only alias is allowed.
  EXPECT_TRUE(k.kpt()
                  .map_page(root.value(), 0x401000,
                            virt_to_phys(mod.value().text_va),
                            sim::PageAttrs{.write = false, .user = true})
                  .ok());
}

TEST(ModulesHypernel, AuditHoldsAcrossModuleChurn) {
  auto sys = make_system(Mode::kHypernel);
  Kernel& k = sys->kernel();
  for (int i = 0; i < 6; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "mod%d", i);
    ASSERT_TRUE(k.sys_insmod(test_module(name, 64)).ok());
    if (i % 2 == 1) {
      char prev[16];
      std::snprintf(prev, sizeof(prev), "mod%d", i - 1);
      ASSERT_TRUE(k.sys_rmmod(prev).ok());
    }
  }
  EXPECT_TRUE(sys->hypersec()->audit().empty());
}

}  // namespace
}  // namespace hn::kernel
