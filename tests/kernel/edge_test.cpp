// Edge-case and failure-injection tests: memory exhaustion, pathological
// paths, name-length limits, and graceful degradation everywhere a user
// of the library could push the substrate past its comfortable envelope.
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/system.h"
#include "kernel/kernel.h"
#include "kernel/layout.h"
#include "workloads/lmbench.h"

namespace hn::kernel {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_system(Mode mode = Mode::kNative) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(Edge, ForkBombHitsOomGracefully) {
  // Small machine: exhaust memory with forks.  The failing fork must
  // return an error, not corrupt state; everything reclaims on exit.
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  cfg.machine.dram_size = 48ull * 1024 * 1024;
  cfg.machine.secure_size = 8ull * 1024 * 1024;
  auto sys = System::create(cfg).value();
  Kernel& k = sys->kernel();
  Task* init = &k.procs().current();

  std::vector<u32> pids;
  for (int i = 0; i < 4096; ++i) {
    Result<u32> pid = k.sys_fork();
    if (!pid.ok()) break;  // OOM: the expected exit from this loop
    pids.push_back(pid.value());
  }
  EXPECT_GT(pids.size(), 4u);     // some forks fit
  EXPECT_LT(pids.size(), 4096u);  // but not all: OOM fired

  const u64 live_at_peak = k.procs().live_tasks();
  for (const u32 pid : pids) {
    Task* t = k.procs().find(pid);
    if (t == nullptr) continue;
    k.procs().switch_to(*t);
    EXPECT_TRUE(k.sys_exit().ok());
    k.procs().switch_to(*init);
  }
  EXPECT_EQ(k.procs().live_tasks(), 1u);
  EXPECT_LT(k.procs().live_tasks(), live_at_peak);
  // And the system still works.
  Result<u32> again = k.sys_fork();
  ASSERT_TRUE(again.ok());
  k.procs().switch_to(*k.procs().find(again.value()));
  EXPECT_TRUE(k.sys_exit().ok());
  k.procs().switch_to(*init);
}

TEST(Edge, PageCacheExhaustionSurfacesAsError) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  cfg.machine.dram_size = 48ull * 1024 * 1024;
  cfg.machine.secure_size = 8ull * 1024 * 1024;
  auto sys = System::create(cfg).value();
  Kernel& k = sys->kernel();
  Result<u64> ino = k.sys_creat("/huge");
  ASSERT_TRUE(ino.ok());
  std::vector<u8> page(kPageSize, 1);
  u64 written = 0;
  // The write path asserts on allocation success internally for data
  // pages; approach the limit through the buddy instead.
  while (k.buddy().free_pages_count() > 64) {
    ASSERT_TRUE(
        k.sys_write(ino.value(), written, page.data(), kPageSize).ok());
    written += kPageSize;
  }
  // Eviction releases it all.
  const u64 free_before = k.buddy().free_pages_count();
  k.vfs().evict_inode_pages(ino.value());
  EXPECT_EQ(k.buddy().free_pages_count(),
            free_before + written / kPageSize);
}

TEST(Edge, DeepPathsResolve) {
  auto sys = make_system();
  Kernel& k = sys->kernel();
  std::string path;
  for (int d = 0; d < 32; ++d) {
    path += "/d";
    path += std::to_string(d);
    ASSERT_TRUE(k.sys_mkdir(path).ok()) << path;
  }
  path += "/leaf";
  ASSERT_TRUE(k.sys_creat(path).ok());
  EXPECT_TRUE(k.sys_stat(path).ok());
  EXPECT_TRUE(k.sys_unlink(path).ok());
}

TEST(Edge, LongNamesTruncateConsistently) {
  auto sys = make_system();
  Kernel& k = sys->kernel();
  // Inline dentry names hold 16 chars; longer names still round-trip
  // through the (host-side) directory index.
  const std::string lng(64, 'x');
  ASSERT_TRUE(k.sys_creat("/" + lng).ok());
  EXPECT_TRUE(k.sys_stat("/" + lng).ok());
  EXPECT_FALSE(k.sys_stat("/" + lng + "y").ok());
}

TEST(Edge, PathThroughFileFails) {
  auto sys = make_system();
  Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/plainfile").ok());
  EXPECT_FALSE(k.sys_creat("/plainfile/child").ok());
  EXPECT_FALSE(k.sys_stat("/plainfile/child").ok());
}

TEST(Edge, EmptyAndRootPaths) {
  auto sys = make_system();
  Kernel& k = sys->kernel();
  EXPECT_FALSE(k.sys_creat("").ok());
  EXPECT_FALSE(k.sys_creat("///").ok());
  Result<StatInfo> root = k.sys_stat("/");
  // "/" resolves to the root inode itself.
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value().is_dir);
}

TEST(Edge, MunmapOfUnmappedRangeFails) {
  auto sys = make_system();
  Kernel& k = sys->kernel();
  EXPECT_FALSE(k.sys_munmap(kUserMmapBase + 0x100000, 4 * kPageSize).ok());
}

TEST(Edge, MmapRegionsDoNotOverlap) {
  auto sys = make_system();
  Kernel& k = sys->kernel();
  Result<VirtAddr> a = k.sys_mmap(8 * kPageSize, true);
  Result<VirtAddr> b = k.sys_mmap(8 * kPageSize, true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(ranges_overlap(a.value(), 8 * kPageSize, b.value(),
                              8 * kPageSize));
}

TEST(Edge, LatCtxExtensionWorksPerMode) {
  for (const Mode mode : {Mode::kNative, Mode::kHypernel}) {
    auto sys = make_system(mode);
    workloads::LmbenchSuite suite(*sys, 8);
    ASSERT_TRUE(suite.setup().ok());
    const auto r = suite.context_switch(4);
    EXPECT_GT(r.us, 0.5);
    EXPECT_LT(r.us, 10.0);
    if (mode == Mode::kHypernel) {
      // Every switch trapped once.
      EXPECT_GT(sys->machine().counters().sysreg_traps, 8u * 4u);
    }
  }
}

TEST(Edge, BandwidthExtensionSane) {
  auto sys = make_system();
  workloads::LmbenchSuite suite(*sys, 4);
  ASSERT_TRUE(suite.setup().ok());
  const auto r = suite.memory_bandwidth(256);
  EXPECT_GT(r.us, 100.0);    // at least 100 MB/s simulated
  EXPECT_LT(r.us, 20000.0);  // below 20 GB/s (sanity)
}

TEST(Edge, CacheDisabledMachineStillCorrect) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  cfg.machine.cache.enabled = false;  // every access non-cached
  auto sys = System::create(cfg).value();
  Kernel& k = sys->kernel();
  ASSERT_TRUE(k.sys_creat("/nocache").ok());
  EXPECT_TRUE(k.sys_stat("/nocache").ok());
  EXPECT_EQ(sys->machine().counters().l1_hits, 0u);
  EXPECT_GT(sys->machine().counters().noncacheable_accesses, 0u);
}

TEST(Edge, TinyTlbStillCorrectJustSlow) {
  SystemConfig small;
  small.mode = Mode::kNative;
  small.enable_mbm = false;
  small.machine.tlb_entries = 8;
  auto sys = System::create(small).value();
  workloads::LmbenchSuite suite(*sys, 4);
  const auto results = suite.run_all();
  for (const auto& r : results) EXPECT_GT(r.us, 0.0) << r.name;
  EXPECT_GT(sys->machine().counters().tlb_misses, 1000u);
}

}  // namespace
}  // namespace hn::kernel
