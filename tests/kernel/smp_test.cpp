// SMP unit tests (DESIGN.md §15): the deterministic spinlock timing
// model, the per-CPU runqueue scheduler, the IPI latch, and
// snapshot/restore invariance for machines caught mid-IPI and
// mid-contention — a restore must reproduce the exact cycle charges the
// uninterrupted run would have made.
#include <gtest/gtest.h>

#include <memory>

#include "hypernel/fingerprint.h"
#include "hypernel/system.h"
#include "kernel/process.h"
#include "kernel/spinlock.h"
#include "sim/machine.h"
#include "sim/snapshot.h"

namespace hn::kernel {
namespace {

sim::MachineConfig machine_config(unsigned cores) {
  sim::MachineConfig cfg;
  cfg.cores = cores;
  return cfg;
}

// ---------------------------------------------------------------------------
// SpinLock: temporal-proximity contention model
// ---------------------------------------------------------------------------

TEST(SpinLock, SingleCoreLockIsFree) {
  sim::Machine m(machine_config(1));
  SpinLock lock;
  lock.bind(m);
  const Cycles before = m.account().cycles();
  lock.lock();
  lock.unlock();
  lock.lock();
  lock.unlock();
  EXPECT_EQ(m.account().cycles(), before);
  EXPECT_EQ(m.counters().spin_contentions, 0u);
}

TEST(SpinLock, UnboundLockIsANoOp) {
  SpinLock lock;  // the buddy allocator constructs before bind()
  lock.lock();
  lock.unlock();
}

TEST(SpinLock, CrossCoreReleaseWithinWindowCharges) {
  sim::Machine m(machine_config(2));
  SpinLock lock;
  lock.bind(m);
  // Core 0 holds and releases the lock.
  lock.lock();
  m.advance(100);
  lock.unlock();
  // Core 1 acquires shortly after (its own clock inside the window of
  // core 0's release): the cache line migrates between L1s.
  m.set_active_core(1);
  m.advance(150);
  const Cycles before = m.account().cycles();
  lock.lock();
  EXPECT_EQ(m.account().cycles(),
            before + m.timing().spinlock_contended);
  EXPECT_EQ(m.counters().spin_contentions, 1u);
  lock.unlock();
  // Re-acquiring on the same core is free: the line stayed local.
  lock.lock();
  EXPECT_EQ(m.counters().spin_contentions, 1u);
  lock.unlock();
}

TEST(SpinLock, CrossCoreReleaseOutsideWindowIsFree) {
  sim::Machine m(machine_config(2));
  SpinLock lock;
  lock.bind(m);
  lock.lock();
  m.advance(100);
  lock.unlock();
  m.set_active_core(1);
  m.advance(100 + m.timing().spinlock_contention_window + 1);
  const Cycles before = m.account().cycles();
  lock.lock();
  EXPECT_EQ(m.account().cycles(), before);
  EXPECT_EQ(m.counters().spin_contentions, 0u);
}

TEST(SpinLock, StateRoundTripsReproducingTheContentionCharge) {
  // Lock state (last owner + release instant) is architectural: restored
  // mid-workload it must reproduce the exact same contention charge.
  sim::Machine m(machine_config(2));
  SpinLock lock;
  lock.bind(m);
  lock.lock();
  m.advance(100);
  lock.unlock();

  sim::SnapWriter w;
  lock.save_state(w);
  const std::vector<u8> blob = w.take();
  SpinLock restored;
  restored.bind(m);
  sim::SnapReader r(blob);
  restored.restore_state(r);
  ASSERT_TRUE(r.status().ok()) << r.status().message();

  m.set_active_core(1);
  m.advance(150);
  const Cycles before = m.account().cycles();
  restored.lock();
  EXPECT_EQ(m.account().cycles(),
            before + m.timing().spinlock_contended);
  EXPECT_EQ(m.counters().spin_contentions, 1u);
}

// ---------------------------------------------------------------------------
// IPI latch
// ---------------------------------------------------------------------------

TEST(Ipi, CrossCoreIpiLatchesUntilTargetRuns) {
  sim::Machine m(machine_config(2));
  const Cycles before = m.account().cycles();
  m.post_ipi(1);
  EXPECT_EQ(m.account().cycles(), before + m.timing().ipi_send);
  EXPECT_EQ(m.counters().ipis_sent, 1u);
  EXPECT_EQ(m.counters().ipis_delivered, 0u);
  EXPECT_TRUE(m.ipi_pending(1));
  EXPECT_FALSE(m.ipi_pending(0));
  // Delivery happens when the scheduler next runs the target core...
  m.set_active_core(1);
  EXPECT_FALSE(m.ipi_pending(1));
  EXPECT_EQ(m.counters().ipis_delivered, 1u);
  // ...exactly once: bouncing the core again re-delivers nothing.
  m.set_active_core(0);
  m.set_active_core(1);
  EXPECT_EQ(m.counters().ipis_delivered, 1u);
}

TEST(Ipi, SelfIpiDeliversSynchronously) {
  sim::Machine m(machine_config(2));
  m.post_ipi(0);
  EXPECT_FALSE(m.ipi_pending(0));
  EXPECT_EQ(m.counters().ipis_sent, 1u);
  EXPECT_EQ(m.counters().ipis_delivered, 1u);
}

// ---------------------------------------------------------------------------
// Per-CPU runqueues and the load balancer
// ---------------------------------------------------------------------------

using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_system(unsigned cores) {
  SystemConfig cfg;
  cfg.machine.cores = cores;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(Scheduler, ForkBalancesOntoTheLeastLoadedCpu) {
  auto sys = make_system(2);
  Kernel& k = sys->kernel();
  // Init boots on core 0; the idle core 1 is the least loaded.
  EXPECT_EQ(k.procs().current().cpu, 0u);
  EXPECT_EQ(k.procs().pick_cpu(), 1u);
  Result<u32> first = k.sys_fork();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(k.procs().find(first.value())->cpu, 1u);
  EXPECT_EQ(k.procs().runqueue_len(0), 1u);
  EXPECT_EQ(k.procs().runqueue_len(1), 1u);
  // Queues now tie at one task each; the lowest index breaks the tie so
  // placement never depends on anything but architectural state.
  EXPECT_EQ(k.procs().pick_cpu(), 0u);
  Result<u32> second = k.sys_fork();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(k.procs().find(second.value())->cpu, 0u);
  EXPECT_EQ(k.procs().runqueue_len(0), 2u);
}

TEST(Scheduler, SwitchToMigratesExecutionToTheTaskCpu) {
  auto sys = make_system(2);
  Kernel& k = sys->kernel();
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  Task* child = k.procs().find(pid.value());
  ASSERT_NE(child, nullptr);
  ASSERT_EQ(child->cpu, 1u);
  EXPECT_EQ(sys->machine().active_core(), 0u);
  k.procs().switch_to(*child);
  EXPECT_EQ(sys->machine().active_core(), 1u);
  EXPECT_EQ(k.procs().current().pid, pid.value());
  // The victim workload keeps its own notion of current on core 0.
  ASSERT_NE(k.procs().current_on(0), nullptr);
  EXPECT_NE(k.procs().current_on(0)->pid, pid.value());
}

TEST(Scheduler, ExitFreesTheRunqueueSlot) {
  auto sys = make_system(2);
  Kernel& k = sys->kernel();
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  k.procs().switch_to(*k.procs().find(pid.value()));
  ASSERT_TRUE(k.sys_exit().ok());
  EXPECT_EQ(k.procs().runqueue_len(1), 0u);
  // The balancer immediately prefers the drained core again.
  EXPECT_EQ(k.procs().pick_cpu(), 1u);
}

// ---------------------------------------------------------------------------
// Snapshot/restore mid-IPI and mid-contention
// ---------------------------------------------------------------------------

TEST(SmpSnapshot, PendingIpiSurvivesTheRoundTrip) {
  // Snapshot a machine with an IPI latched for a core that has not run
  // yet: the twin must deliver it at exactly the same instant the
  // original does.
  auto original = make_system(2);
  Kernel& k = original->kernel();
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  original->machine().post_ipi(1);
  ASSERT_TRUE(original->machine().ipi_pending(1));

  sim::Snapshot back;
  ASSERT_TRUE(
      sim::unpack_snapshot(sim::pack_snapshot(original->save_state()), back)
          .ok());
  auto twin = make_system(2);
  ASSERT_TRUE(twin->restore_state(back).ok());
  EXPECT_TRUE(twin->machine().ipi_pending(1));

  // Identical follow-up: migrating to the child delivers the latched IPI
  // on both machines.
  for (System* sys : {original.get(), twin.get()}) {
    Kernel& kk = sys->kernel();
    kk.procs().switch_to(*kk.procs().find(pid.value()));
    EXPECT_FALSE(sys->machine().ipi_pending(1));
    EXPECT_EQ(sys->machine().counters().ipis_delivered, 1u);
    ASSERT_TRUE(kk.sys_creat("/after-ipi").ok());
  }
  const auto fp_a = hypernel::take_fingerprint(*original);
  const auto fp_b = hypernel::take_fingerprint(*twin);
  EXPECT_TRUE(fp_a.functionally_equal(fp_b)) << fp_a.diff(fp_b);
  EXPECT_EQ(fp_a.cycles, fp_b.cycles);
}

TEST(SmpSnapshot, MidContentionRestoreMatchesTheUninterruptedRun) {
  // Three systems run the same cross-core program.  A runs it straight
  // through; B is snapshotted right after the core-1 half; C restores
  // from that snapshot.  All three must agree on every cycle — the
  // spinlock owner/release state and the shared-bus arbiter state are
  // architectural, so the second half's contention charges reproduce.
  auto a = make_system(2);
  auto b = make_system(2);

  auto first_half = [](System& sys) -> u32 {
    Kernel& k = sys.kernel();
    Result<u32> pid = k.sys_fork();
    EXPECT_TRUE(pid.ok());
    k.procs().switch_to(*k.procs().find(pid.value()));
    EXPECT_TRUE(k.sys_mkdir("/smp").ok());
    EXPECT_TRUE(k.sys_creat("/smp/from-core1").ok());
    return pid.value();
  };
  auto second_half = [](System& sys) {
    Kernel& k = sys.kernel();
    Task* init = k.procs().current_on(0);
    ASSERT_NE(init, nullptr);
    k.procs().switch_to(*init);
    EXPECT_TRUE(k.sys_creat("/smp/from-core0").ok());
    EXPECT_TRUE(k.sys_stat("/smp/from-core1").ok());
  };

  const u32 pid_a = first_half(*a);
  const u32 pid_b = first_half(*b);
  ASSERT_EQ(pid_a, pid_b);

  sim::Snapshot back;
  ASSERT_TRUE(
      sim::unpack_snapshot(sim::pack_snapshot(b->save_state()), back).ok());
  auto c = make_system(2);
  ASSERT_TRUE(c->restore_state(back).ok());

  second_half(*a);
  second_half(*b);
  second_half(*c);

  const auto fp_a = hypernel::take_fingerprint(*a);
  const auto fp_b = hypernel::take_fingerprint(*b);
  const auto fp_c = hypernel::take_fingerprint(*c);
  EXPECT_TRUE(fp_a.functionally_equal(fp_c)) << fp_a.diff(fp_c);
  EXPECT_EQ(fp_a.cycles, fp_c.cycles);
  EXPECT_TRUE(fp_b.functionally_equal(fp_c)) << fp_b.diff(fp_c);
  EXPECT_EQ(fp_b.cycles, fp_c.cycles);
}

TEST(SmpSnapshot, RestoreRejectsCoreCountMismatch) {
  // The core count folds into the configuration digest: a 2-core
  // snapshot must never restore into a 4-core twin.
  auto two = make_system(2);
  auto four = make_system(4);
  const Status st = four->restore_state(two->save_state());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("configuration digest mismatch"),
            std::string::npos);
}

}  // namespace
}  // namespace hn::kernel
