// Buddy allocator property tests and slab cache tests.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "kernel/buddy.h"
#include "kernel/costs.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "kernel/slab.h"
#include "sim/machine.h"

namespace hn::kernel {
namespace {

TEST(Buddy, AllocatesAlignedBlocks) {
  BuddyAllocator buddy(0x100000, 4 * 1024 * 1024);
  for (unsigned order = 0; order <= 5; ++order) {
    Result<PhysAddr> r = buddy.alloc_pages(order);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((r.value() - buddy.base()) % (kPageSize << order), 0u)
        << "order " << order;
  }
}

TEST(Buddy, ExhaustionReturnsError) {
  BuddyAllocator buddy(0, 4 * kPageSize);
  EXPECT_TRUE(buddy.alloc_pages(2).ok());  // takes everything
  EXPECT_FALSE(buddy.alloc_page().ok());
  EXPECT_EQ(buddy.free_pages_count(), 0u);
}

TEST(Buddy, FreeCoalescesBackToFull) {
  BuddyAllocator buddy(0, 64 * kPageSize);
  std::vector<PhysAddr> pages;
  for (int i = 0; i < 64; ++i) {
    Result<PhysAddr> r = buddy.alloc_page();
    ASSERT_TRUE(r.ok());
    pages.push_back(r.value());
  }
  EXPECT_EQ(buddy.free_pages_count(), 0u);
  for (PhysAddr pa : pages) buddy.free_page(pa);
  EXPECT_EQ(buddy.free_pages_count(), 64u);
  // Coalescing restores a maximal block.
  Result<PhysAddr> big = buddy.alloc_pages(6);
  EXPECT_TRUE(big.ok());
}

TEST(Buddy, RejectsOversizedOrder) {
  BuddyAllocator buddy(0, 64 * kPageSize);
  EXPECT_FALSE(buddy.alloc_pages(BuddyAllocator::kMaxOrder + 1).ok());
}

TEST(Buddy, PropertyNoDoubleAllocation) {
  // Random alloc/free storm: no block is ever handed out twice while live,
  // all blocks stay in-range and aligned, and the free count balances.
  BuddyAllocator buddy(0x200000, 8 * 1024 * 1024);
  SplitMix64 rng(77);
  std::map<PhysAddr, unsigned> live;  // base -> order
  u64 live_pages = 0;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.chance(3, 5)) {
      const unsigned order = static_cast<unsigned>(rng.next_below(4));
      Result<PhysAddr> r = buddy.alloc_pages(order);
      if (!r.ok()) continue;
      const PhysAddr pa = r.value();
      const u64 len = kPageSize << order;
      ASSERT_TRUE(buddy.owns(pa));
      ASSERT_TRUE(buddy.owns(pa + len - 1));
      ASSERT_EQ((pa - buddy.base()) % len, 0u);
      for (const auto& [base, o] : live) {
        ASSERT_FALSE(ranges_overlap(pa, len, base, kPageSize << o))
            << "overlapping allocation at step " << step;
      }
      live[pa] = order;
      live_pages += u64{1} << order;
    } else {
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      buddy.free_pages(it->first, it->second);
      live_pages -= u64{1} << it->second;
      live.erase(it);
    }
    ASSERT_EQ(buddy.free_pages_count(), buddy.total_pages() - live_pages);
  }
}

TEST(Buddy, FreeHookObservesFrees) {
  BuddyAllocator buddy(0, 64 * kPageSize);
  std::vector<std::pair<PhysAddr, unsigned>> freed;
  buddy.set_free_hook([&](PhysAddr pa, unsigned order) {
    freed.emplace_back(pa, order);
  });
  Result<PhysAddr> r = buddy.alloc_pages(1);
  ASSERT_TRUE(r.ok());
  buddy.free_pages(r.value(), 1);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], std::make_pair(r.value(), 1u));
}

class SlabTest : public ::testing::Test {
 protected:
  SlabTest()
      : machine_(sim::MachineConfig{}),
        buddy_(kBuddyPoolBase, 16 * 1024 * 1024) {
    // Identity-style linear map is not set up: give the machine a kernel
    // root so linear-map accesses translate.  Build a flat map over the
    // buddy range.
    build_linear_map();
  }

  void build_linear_map() {
    const PhysAddr root = 0x10000;
    machine_.phys().zero_range(root, kPageSize);
    next_table_ = 0x11000;
    machine_.set_sysreg_raw(sim::SysReg::TTBR1_EL1, root);
    for (PhysAddr pa = kBuddyPoolBase; pa < kBuddyPoolBase + 16 * 1024 * 1024;
         pa += kPageSize) {
      map_page(root, phys_to_virt(pa), pa);
    }
  }
  void map_page(PhysAddr root, VirtAddr va, PhysAddr pa) {
    PhysAddr table = root;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + sim::va_index(va, level) * 8;
      u64 d = machine_.phys().read64(slot);
      if (!sim::desc_valid(d)) {
        const PhysAddr next = next_table_;
        next_table_ += kPageSize;
        machine_.phys().zero_range(next, kPageSize);
        d = sim::make_table_desc(next);
        machine_.phys().write64(slot, d);
      }
      table = sim::desc_out_addr(d);
    }
    machine_.phys().write64(table + sim::va_index(va, 3) * 8,
                            sim::make_page_desc(pa, sim::PageAttrs{.write = true}));
  }

  sim::Machine machine_;
  BuddyAllocator buddy_;
  KernelCosts costs_;
  PhysAddr next_table_ = 0;
};

TEST_F(SlabTest, ObjectsZeroedAndAligned) {
  SlabCache slab(machine_, buddy_, costs_, ObjectKind::kCred);
  Result<VirtAddr> a = slab.alloc();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((a.value() - kKernelVaBase) % 128, 0u);
  for (u64 w = 0; w < CredLayout::kWords; ++w) {
    EXPECT_EQ(machine_.read64(a.value() + w * 8).value, 0u);
  }
}

TEST_F(SlabTest, DistinctObjects) {
  SlabCache slab(machine_, buddy_, costs_, ObjectKind::kDentry);
  std::set<VirtAddr> seen;
  for (int i = 0; i < 100; ++i) {
    Result<VirtAddr> a = slab.alloc();
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(seen.insert(a.value()).second);
  }
  EXPECT_EQ(slab.live_objects(), 100u);
  EXPECT_GE(slab.pages().size(), 100u / (kPageSize / 128));
}

TEST_F(SlabTest, FreeReusesAndRezeros) {
  SlabCache slab(machine_, buddy_, costs_, ObjectKind::kCred);
  Result<VirtAddr> a = slab.alloc();
  ASSERT_TRUE(a.ok());
  machine_.write64(a.value(), 0xFF);
  slab.free(a.value());
  Result<VirtAddr> b = slab.alloc();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), a.value());  // LIFO reuse
  EXPECT_EQ(machine_.read64(b.value()).value, 0u);  // re-zeroed
}

TEST_F(SlabTest, HooksFireInOrder) {
  SlabCache slab(machine_, buddy_, costs_, ObjectKind::kCred);
  std::vector<std::string> events;
  slab.set_hooks(
      [&](VirtAddr va) {
        events.push_back("alloc");
        // At hook time the object is already zeroed.
        EXPECT_EQ(machine_.read64(va).value, 0u);
      },
      [&](VirtAddr) { events.push_back("free"); });
  Result<VirtAddr> a = slab.alloc();
  ASSERT_TRUE(a.ok());
  slab.free(a.value());
  EXPECT_EQ(events, (std::vector<std::string>{"alloc", "free"}));
}

TEST_F(SlabTest, DedicatedPagesPerCache) {
  SlabCache cred(machine_, buddy_, costs_, ObjectKind::kCred);
  SlabCache dentry(machine_, buddy_, costs_, ObjectKind::kDentry);
  ASSERT_TRUE(cred.alloc().ok());
  ASSERT_TRUE(dentry.alloc().ok());
  for (PhysAddr p1 : cred.pages()) {
    for (PhysAddr p2 : dentry.pages()) EXPECT_NE(p1, p2);
  }
}

}  // namespace
}  // namespace hn::kernel
