// Hypersec tests: the PT-write verifier's policy rules, boot-time sealing,
// TVM trap handling (TTBR/SCTLR), the hypercall interface, and the
// MBM-driver registration/teardown paths.
#include <gtest/gtest.h>

#include <memory>

#include "common/hvc_abi.h"
#include "hypernel/system.h"
#include "hypersec/pt_verifier.h"
#include "kernel/layout.h"
#include "sim/sysregs.h"

namespace hn::hypersec {
namespace {

using hypernel::Mode;
using hypernel::System;
using hypernel::SystemConfig;

std::unique_ptr<System> make_system(bool mbm = false) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = mbm;
  auto r = System::create(cfg);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

// ---------------- PtVerifier unit rules ----------------

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : machine_(sim::MachineConfig{}),
        verifier_(machine_, kernel::kTextBase, kernel::kTextSize,
                  kernel::kRodataBase, kernel::kRodataSize) {
    verifier_.add_pt_page(kTable3, 3);
    verifier_.add_pt_page(kTable2, 2);
    verifier_.add_pt_page(kTable0, 0);
  }
  static constexpr PhysAddr kTable3 = 0x100000;
  static constexpr PhysAddr kTable2 = 0x101000;
  static constexpr PhysAddr kTable0 = 0x102000;

  sim::Machine machine_;
  PtVerifier verifier_;
};

TEST_F(VerifierTest, RejectsWriteToNonPtPage) {
  EXPECT_EQ(verifier_.check_pt_write(0x555000, 0, 0), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_not_pt_page, 1u);
}

TEST_F(VerifierTest, UnmapAlwaysAllowed) {
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 5, 0), Verdict::kAllow);
}

TEST_F(VerifierTest, PlainPageMappingAllowed) {
  const u64 d = sim::make_page_desc(
      0x400000, sim::PageAttrs{.write = true, .user = true});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 0, d), Verdict::kAllow);
}

TEST_F(VerifierTest, RejectsSecureSpaceLeaf) {
  const u64 d = sim::make_page_desc(machine_.secure_base() + kPageSize,
                                    sim::PageAttrs{});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 0, d), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_secure_map, 1u);
}

TEST_F(VerifierTest, RejectsSecureSpaceAsTable) {
  const u64 d = sim::make_table_desc(machine_.secure_base());
  EXPECT_EQ(verifier_.check_pt_write(kTable2, 0, d), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_secure_map, 1u);
}

TEST_F(VerifierTest, RejectsWritablePlusExecutable) {
  const u64 d = sim::make_page_desc(
      0x400000, sim::PageAttrs{.write = true, .exec = true});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 0, d), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_wx, 1u);
}

TEST_F(VerifierTest, RejectsWritableAliasOfPtPage) {
  const u64 d = sim::make_page_desc(kTable2, sim::PageAttrs{.write = true});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 0, d), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_pt_writable, 1u);
  // A read-only alias is fine.
  const u64 ro = sim::make_page_desc(kTable2, sim::PageAttrs{});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 0, ro), Verdict::kAllow);
}

TEST_F(VerifierTest, RejectsWritableKernelText) {
  const u64 d = sim::make_page_desc(kernel::kTextBase,
                                    sim::PageAttrs{.write = true});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 0, d), Verdict::kDeny);
  const u64 rodata = sim::make_page_desc(kernel::kRodataBase,
                                         sim::PageAttrs{.write = true});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 1, rodata), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_text_writable, 2u);
}

TEST_F(VerifierTest, TableDescMustTargetNextLevelTable) {
  // Table desc to an unregistered page: denied.
  EXPECT_EQ(verifier_.check_pt_write(kTable2, 0,
                                     sim::make_table_desc(0x400000)),
            Verdict::kDeny);
  // Table desc to a wrong-level table: denied.
  EXPECT_EQ(verifier_.check_pt_write(kTable2, 0, sim::make_table_desc(kTable0)),
            Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_bad_table, 2u);
  // Correct next level: allowed.
  EXPECT_EQ(verifier_.check_pt_write(kTable2, 0, sim::make_table_desc(kTable3)),
            Verdict::kAllow);
}

TEST_F(VerifierTest, RejectsHugeBlocksAtHighLevels) {
  const u64 block = sim::make_block_desc(0x40000000, sim::PageAttrs{});
  EXPECT_EQ(verifier_.check_pt_write(kTable0, 0, block), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_bad_encoding, 1u);
}

TEST_F(VerifierTest, SealedKernelTreeImmutable) {
  verifier_.mark_kernel_tree(kTable3);
  const u64 d = sim::make_page_desc(0x400000, sim::PageAttrs{});
  EXPECT_EQ(verifier_.check_pt_write(kTable3, 0, d), Verdict::kDeny);
  EXPECT_EQ(verifier_.stats().denied_kernel_tree, 1u);
}

TEST_F(VerifierTest, WritableBlockCoveringPtPageDenied) {
  // A 2 MiB writable block whose span contains a PT page is an alias.
  verifier_.add_pt_page(0x600000 + 5 * kPageSize, 3);
  const u64 d = sim::make_block_desc(0x600000, sim::PageAttrs{.write = true});
  EXPECT_EQ(verifier_.check_pt_write(kTable2, 0, d), Verdict::kDeny);
}

// ---------------- Hypersec end-to-end ----------------

TEST(Hypersec, InitRequiresPageGranularKernel) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.kernel.use_sections = true;  // §6.2's granularity gap
  auto r = System::create(cfg);
  EXPECT_FALSE(r.ok());
}

TEST(Hypersec, PtPagesReadOnlyAfterInit) {
  auto sys = make_system();
  kernel::Kernel& k = sys->kernel();
  // Every registered PT page rejects direct EL1 stores.
  int checked = 0;
  for (const auto& [pa, level] : k.kpt().pt_pages()) {
    EXPECT_FALSE(sys->machine().write64(kernel::phys_to_virt(pa), 0xBAD).ok);
    if (++checked == 16) break;  // spot check
  }
  EXPECT_GT(checked, 0);
}

TEST(Hypersec, KernelOperationsStillWorkViaHypercalls) {
  auto sys = make_system();
  kernel::Kernel& k = sys->kernel();
  const u64 hvc_before = sys->machine().counters().hvc_calls;
  Result<u32> pid = k.sys_fork();
  ASSERT_TRUE(pid.ok());
  EXPECT_GT(sys->machine().counters().hvc_calls, hvc_before);
  kernel::Task* child = k.procs().find(pid.value());
  k.procs().switch_to(*child);
  ASSERT_TRUE(k.sys_exit().ok());
  EXPECT_GT(sys->hypersec()->stats().pt_write_calls, 0u);
  EXPECT_EQ(sys->hypersec()->stats().pt_write_denials, 0u);
}

TEST(Hypersec, ForgedPtWriteHypercallDenied) {
  auto sys = make_system();
  // Attacker-crafted hypercall: write a descriptor into a non-PT page.
  EXPECT_EQ(sys->machine().hvc(hvc::kPtWrite, {0x500000, 0, 0x1234}),
            hvc::kDenied);
  // And into a sealed kernel-tree table.
  const PhysAddr kroot = sys->kernel().kpt().kernel_root();
  EXPECT_EQ(sys->machine().hvc(
                hvc::kPtWrite,
                {kroot, 0, sim::make_table_desc(0x400000)}),
            hvc::kDenied);
  EXPECT_GE(sys->hypersec()->verifier().stats().denied_total(), 2u);
}

TEST(Hypersec, MappingSecureSpaceDenied) {
  auto sys = make_system();
  kernel::Kernel& k = sys->kernel();
  // Build a legitimate user tree, then try to splice in a secure mapping.
  Result<PhysAddr> root = k.kpt().alloc_user_root();
  ASSERT_TRUE(root.ok());
  const Status s = k.kpt().map_page(
      root.value(), 0x400000, sys->machine().secure_base(),
      sim::PageAttrs{.write = true, .user = true});
  EXPECT_FALSE(s.ok());
}

TEST(Hypersec, PtAllocRejectsNonZeroedPage) {
  auto sys = make_system();
  Result<PhysAddr> page = sys->kernel().buddy().alloc_page();
  ASSERT_TRUE(page.ok());
  sys->machine().phys().write64(page.value() + 64, 0xDEAD);  // pre-seeded
  EXPECT_EQ(sys->machine().hvc(hvc::kPtAlloc, {page.value(), 3}),
            hvc::kDenied);
}

TEST(Hypersec, PtAllocRejectsSecurePage) {
  auto sys = make_system();
  EXPECT_EQ(sys->machine().hvc(
                hvc::kPtAlloc, {sys->machine().secure_base(), 3}),
            hvc::kDenied);
}

TEST(Hypersec, TtbrTrapValidatesRoots) {
  auto sys = make_system();
  sim::Machine& m = sys->machine();
  const u64 good_ttbr1 = m.sysreg(sim::SysReg::TTBR1_EL1);

  // Rewriting TTBR1 with the registered kernel root: allowed.
  EXPECT_TRUE(m.write_sysreg_el1(sim::SysReg::TTBR1_EL1, good_ttbr1));
  // Pointing it anywhere else: denied (the ATRA-style redirect).
  EXPECT_FALSE(m.write_sysreg_el1(sim::SysReg::TTBR1_EL1, 0x500000));
  EXPECT_EQ(m.sysreg(sim::SysReg::TTBR1_EL1), good_ttbr1);

  // TTBR0 must name a registered user root.
  EXPECT_FALSE(m.write_sysreg_el1(sim::SysReg::TTBR0_EL1, 0x600000));
  const PhysAddr user_root = sys->kernel().procs().current().ttbr0;
  EXPECT_TRUE(m.write_sysreg_el1(
      sim::SysReg::TTBR0_EL1, user_root | (u64{1} << 48)));
  EXPECT_GT(sys->hypersec()->stats().trap_denials, 0u);
}

TEST(Hypersec, MmuDisableDenied) {
  auto sys = make_system();
  sim::Machine& m = sys->machine();
  EXPECT_FALSE(m.write_sysreg_el1(sim::SysReg::SCTLR_EL1, 0));  // M bit clear
  EXPECT_TRUE(m.write_sysreg_el1(sim::SysReg::SCTLR_EL1, 1));
}

TEST(Hypersec, PtFreeRestoresWritability) {
  auto sys = make_system();
  kernel::Kernel& k = sys->kernel();
  Result<PhysAddr> root = k.kpt().alloc_user_root();
  ASSERT_TRUE(root.ok());
  const VirtAddr va = kernel::phys_to_virt(root.value());
  EXPECT_FALSE(sys->machine().write64(va, 1).ok);  // RO while registered
  k.kpt().free_user_root(root.value());
  EXPECT_TRUE(sys->machine().write64(va, 1).ok);  // plain memory again
}

// ---------------- MBM driver ----------------

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() : sys_(make_system(/*mbm=*/true)) {}
  std::unique_ptr<System> sys_;
};

TEST_F(DriverTest, RegisterMakesPageNonCacheable) {
  kernel::Kernel& k = sys_->kernel();
  Result<PhysAddr> frame = k.buddy().alloc_page();
  ASSERT_TRUE(frame.ok());
  const VirtAddr va = kernel::phys_to_virt(frame.value());
  MbmDriver* driver = sys_->hypersec()->mbm_driver();
  ASSERT_NE(driver, nullptr);

  ASSERT_TRUE(driver->register_region(1, va, 64).ok());
  const MbmDriver::El2Walk w = driver->el2_walk(va);
  ASSERT_TRUE(w.ok);
  EXPECT_EQ(sim::decode_attrs(w.desc).attr, sim::MemAttr::kNonCacheable);
  EXPECT_EQ(driver->noncacheable_pages(), 1u);

  ASSERT_TRUE(driver->unregister_region(1, va, 64).ok());
  const MbmDriver::El2Walk w2 = driver->el2_walk(va);
  EXPECT_EQ(sim::decode_attrs(w2.desc).attr, sim::MemAttr::kNormalCacheable);
  EXPECT_EQ(driver->noncacheable_pages(), 0u);
}

TEST_F(DriverTest, NcRefcountAcrossRegionsOnSamePage) {
  kernel::Kernel& k = sys_->kernel();
  Result<PhysAddr> frame = k.buddy().alloc_page();
  ASSERT_TRUE(frame.ok());
  const VirtAddr va = kernel::phys_to_virt(frame.value());
  MbmDriver* driver = sys_->hypersec()->mbm_driver();
  ASSERT_TRUE(driver->register_region(1, va, 64).ok());
  ASSERT_TRUE(driver->register_region(1, va + 128, 64).ok());
  EXPECT_EQ(driver->noncacheable_pages(), 1u);
  ASSERT_TRUE(driver->unregister_region(1, va, 64).ok());
  // Still one monitored region on the page: stays non-cacheable.
  const MbmDriver::El2Walk w = driver->el2_walk(va);
  EXPECT_EQ(sim::decode_attrs(w.desc).attr, sim::MemAttr::kNonCacheable);
  ASSERT_TRUE(driver->unregister_region(1, va + 128, 64).ok());
  EXPECT_EQ(driver->noncacheable_pages(), 0u);
}

TEST_F(DriverTest, RejectsMisalignedOrUnmappedRegions) {
  MbmDriver* driver = sys_->hypersec()->mbm_driver();
  EXPECT_FALSE(driver->register_region(1, kKernelVaBase + 0x1003, 64).ok());
  EXPECT_FALSE(driver->register_region(1, kKernelVaBase + 0x1000, 63).ok());
  // VA far outside the linear map.
  EXPECT_FALSE(
      driver->register_region(1, kKernelVaBase + (u64{1} << 40), 64).ok());
}

TEST_F(DriverTest, MonRegisterHypercallRequiresKnownSid) {
  // No app registered with SID 42: denied (§5.3 passes the SID).
  EXPECT_EQ(sys_->machine().hvc(
                hvc::kMonRegister, {42, kKernelVaBase + 0x1000, 64}),
            hvc::kDenied);
}

}  // namespace
}  // namespace hn::hypersec
