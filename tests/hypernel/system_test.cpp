// hypernel::System construction tests: mode wiring, linear-limit
// derivation, secure-space sizing errors, and the measurement helpers.
#include <gtest/gtest.h>

#include "hypernel/system.h"
#include "kernel/layout.h"

namespace hn::hypernel {
namespace {

TEST(System, NativeHasNoHypervisorParts) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys.value()->hypersec(), nullptr);
  EXPECT_EQ(sys.value()->kvm(), nullptr);
  EXPECT_EQ(sys.value()->mbm(), nullptr);
  // Pure native maps all of DRAM.
  EXPECT_EQ(sys.value()->kernel().linear_limit(),
            sys.value()->machine().phys().size());
}

TEST(System, NativeWithMbmReservesSecureSpace) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = true;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  EXPECT_NE(sys.value()->mbm(), nullptr);
  EXPECT_EQ(sys.value()->hypersec(), nullptr);
  EXPECT_EQ(sys.value()->kernel().linear_limit(),
            sys.value()->machine().secure_base());
}

TEST(System, KvmNeverCarriesMbm) {
  SystemConfig cfg;
  cfg.mode = Mode::kKvmGuest;
  cfg.enable_mbm = true;  // ignored for the KVM baseline
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys.value()->mbm(), nullptr);
  EXPECT_NE(sys.value()->kvm(), nullptr);
}

TEST(System, HypernelFullStack) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  EXPECT_NE(sys.value()->hypersec(), nullptr);
  EXPECT_NE(sys.value()->mbm(), nullptr);
  EXPECT_TRUE(sys.value()->hypersec()->initialized());
  EXPECT_EQ(std::string(mode_name(sys.value()->mode())), "Hypernel");
}

TEST(System, SecureSpaceTooSmallForMbmFails) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.machine.secure_size = 1ull * 1024 * 1024;  // < bitmap + ring needs
  auto sys = System::create(cfg);
  EXPECT_FALSE(sys.ok());
}

TEST(System, SecureSpaceTooSmallButMbmDisabledWorks) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.enable_mbm = false;
  cfg.machine.secure_size = 1ull * 1024 * 1024;
  auto sys = System::create(cfg);
  EXPECT_TRUE(sys.ok()) << sys.status().message();
}

TEST(System, ExplicitLinearLimitHonoured) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  cfg.kernel.linear_limit = 64ull * 1024 * 1024;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys.value()->kernel().linear_limit(), 64ull * 1024 * 1024);
}

TEST(System, SnapshotHelpersMeasureWindows) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  auto sys_r = System::create(cfg);
  ASSERT_TRUE(sys_r.ok());
  auto& sys = *sys_r.value();
  const auto t0 = sys.snapshot();
  sys.machine().advance(1150);  // exactly 1 us at 1.15 GHz
  EXPECT_EQ(sys.cycles_since(t0), 1150u);
  EXPECT_NEAR(sys.us_since(t0), 1.0, 1e-9);
  const auto before = sys.snapshot();
  sys.kernel().sys_creat("/snapshot-test");
  const sim::Counters d = sys.counters_since(before);
  EXPECT_EQ(d.svc_calls, 1u);
  EXPECT_GT(d.mem_writes, 0u);
}

TEST(System, RegisterAppRequiresHypersec) {
  SystemConfig cfg;
  cfg.mode = Mode::kNative;
  cfg.enable_mbm = false;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok());
  class Dummy : public hypersec::SecurityApp {
   public:
    u64 sid() const override { return 5; }
    const char* name() const override { return "dummy"; }
    hypersec::AppVerdict on_write_event(
        const mbm::MonitorEvent&, const hypersec::RegionInfo&) override {
      return hypersec::AppVerdict::kBenign;
    }
  } app;
  EXPECT_FALSE(sys.value()->register_security_app(app).ok());
}

TEST(System, BiggerMachineWorks) {
  SystemConfig cfg;
  cfg.mode = Mode::kHypernel;
  cfg.machine.dram_size = 256ull * 1024 * 1024;
  cfg.machine.secure_size = 32ull * 1024 * 1024;
  auto sys = System::create(cfg);
  ASSERT_TRUE(sys.ok()) << sys.status().message();
  EXPECT_TRUE(sys.value()->kernel().sys_creat("/big").ok());
}

}  // namespace
}  // namespace hn::hypernel
