// Unit tests for the observability layer (src/obs): registry handles,
// hierarchy rollups, histogram bucketing, snapshot/merge determinism,
// span tracing with cycle attribution, and the exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace hn::obs {
namespace {

TEST(Registry, DisabledByDefaultAndHandleGated) {
  Registry reg;
  Counter c = reg.counter("a.b");
  c.add(5);  // registry disabled: dropped
  EXPECT_EQ(reg.snapshot().value("a.b"), 0u);

  reg.set_enabled(true);
  c.add(5);
  EXPECT_EQ(reg.snapshot().value("a.b"), 5u);

  reg.set_enabled(false);
  c.add(5);
  EXPECT_EQ(reg.snapshot().value("a.b"), 5u);
}

TEST(Registry, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add();
  g.set(1);
  g.set_max(2);
  h.record(3);  // must not crash
}

TEST(Registry, FindOrCreateSharesTheSlot) {
  Registry reg;
  reg.set_enabled(true);
  Counter a = reg.counter("x");
  Counter b = reg.counter("x");
  a.add(1);
  b.add(2);
  EXPECT_EQ(reg.snapshot().value("x"), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchReturnsInertHandle) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("x");
  c.add(7);
  Gauge g = reg.gauge("x");  // same path, wrong kind
  g.set(99);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("x"), 7u);
  EXPECT_EQ(snap.find("x")->kind, MetricKind::kCounter);
}

TEST(Registry, GaugeSetAndSetMax) {
  Registry reg;
  reg.set_enabled(true);
  Gauge g = reg.gauge("depth");
  g.set(10);
  g.set_max(4);  // never lowers
  EXPECT_EQ(reg.snapshot().value("depth"), 10u);
  g.set_max(12);
  EXPECT_EQ(reg.snapshot().value("depth"), 12u);
  g.set(3);  // set overwrites
  EXPECT_EQ(reg.snapshot().value("depth"), 3u);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("n");
  Histogram h = reg.histogram("h");
  c.add(4);
  h.record(4);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.snapshot().value("n"), 0u);
  EXPECT_EQ(reg.snapshot().find("h")->hist.total_count, 0u);
  c.add(1);  // old handles still live
  EXPECT_EQ(reg.snapshot().value("n"), 1u);
}

TEST(Snapshot, RollupSumsCountersUnderPrefix) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("sim.mmu.s1_walks").add(3);
  reg.counter("sim.mmu.s2_walks").add(4);
  reg.counter("sim.tlb.hits").add(100);
  reg.gauge("sim.mmu.depth").set(9);  // gauges are not rollup-summed
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.rollup("sim.mmu"), 7u);
  EXPECT_EQ(snap.rollup("sim"), 107u);
  EXPECT_EQ(snap.rollup("sim.mm"), 0u);  // prefix is component-wise
  EXPECT_EQ(snap.rollup("sim.tlb.hits"), 100u);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(HistogramData::bucket_of(0), 0u);
  EXPECT_EQ(HistogramData::bucket_of(1), 1u);
  EXPECT_EQ(HistogramData::bucket_of(2), 2u);
  EXPECT_EQ(HistogramData::bucket_of(3), 2u);
  EXPECT_EQ(HistogramData::bucket_of(4), 3u);
  EXPECT_EQ(HistogramData::bucket_of(~u64{0}), 64u);
  EXPECT_EQ(HistogramData::bucket_le(0), 0u);
  EXPECT_EQ(HistogramData::bucket_le(1), 1u);
  EXPECT_EQ(HistogramData::bucket_le(2), 3u);
  EXPECT_EQ(HistogramData::bucket_le(3), 7u);
  EXPECT_EQ(HistogramData::bucket_le(64), ~u64{0});
}

TEST(Histogram, CycleWeightedRecording) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("cycles");
  h.record_cycles(6);   // bucket 3, weight 6
  h.record_cycles(7);   // bucket 3, weight 7
  h.record_cycles(100); // bucket 7, weight 100
  const SnapshotEntry* e = reg.snapshot().find("cycles");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hist.total_count, 3u);
  EXPECT_EQ(e->hist.total_weight, 113u);
  EXPECT_EQ(e->hist.count[3], 2u);
  EXPECT_EQ(e->hist.weight[3], 13u);
  EXPECT_EQ(e->hist.count[7], 1u);
  EXPECT_EQ(e->hist.min, 6u);
  EXPECT_EQ(e->hist.max, 100u);
}

/// Build a shard registry with a deterministic workload derived from its
/// index: disjoint and overlapping paths, all three metric kinds.
Snapshot shard_snapshot(unsigned shard) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("common.events").add(10 * (shard + 1));
  Counter own = reg.counter("shard." + std::to_string(shard) + ".ops");
  own.add(shard + 1);
  reg.gauge("common.high_water").set_max(100 - 7 * shard);
  Histogram h = reg.histogram("common.latency");
  for (unsigned i = 0; i <= shard; ++i) h.record_cycles(1 + 13 * i);
  return reg.snapshot();
}

TEST(Snapshot, MergeIsOrderIndependent) {
  constexpr unsigned kShards = 8;
  std::vector<Snapshot> shards;
  for (unsigned s = 0; s < kShards; ++s) shards.push_back(shard_snapshot(s));

  Snapshot forward;
  for (const Snapshot& s : shards) forward.merge(s);

  std::vector<unsigned> order(kShards);
  for (unsigned s = 0; s < kShards; ++s) order[s] = s;
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 16; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    Snapshot folded;
    for (unsigned s : order) folded.merge(shards[s]);
    ASSERT_EQ(folded, forward);
  }

  // Spot-check the fold semantics on top of the bit-equality.
  EXPECT_EQ(forward.value("common.events"), 10u * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
  EXPECT_EQ(forward.value("common.high_water"), 100u);  // gauge: max
  EXPECT_EQ(forward.find("common.latency")->hist.total_count,
            1u + 2 + 3 + 4 + 5 + 6 + 7 + 8);
  EXPECT_EQ(forward.value("shard.3.ops"), 4u);
}

TEST(Snapshot, MergeIsAssociative) {
  const Snapshot a = shard_snapshot(0);
  const Snapshot b = shard_snapshot(1);
  const Snapshot c = shard_snapshot(2);
  Snapshot ab = a;
  ab.merge(b);
  ab.merge(c);  // (a+b)+c
  Snapshot bc = b;
  bc.merge(c);
  Snapshot a_bc = a;
  a_bc.merge(bc);  // a+(b+c)
  EXPECT_EQ(ab, a_bc);
}

TEST(Span, NestingAttributesSelfTime) {
  Registry reg;
  reg.set_enabled(true);
  SpanTracer tracer(reg);
  Cycles clock = 0;
  tracer.bind_clock(&clock);
  const u32 outer = tracer.intern("outer");
  const u32 inner = tracer.intern("inner");

  {
    SpanScope a(tracer, outer);  // [0 ..
    clock = 10;
    {
      SpanScope b(tracer, inner);  // [10 ..
      clock = 30;
    }                              // .. 30]: inner total 20
    clock = 35;
  }  // .. 35]: outer total 35, self 35 - 20 = 15

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("span.outer.count"), 1u);
  EXPECT_EQ(snap.value("span.outer.cycles"), 35u);
  EXPECT_EQ(snap.value("span.outer.self_cycles"), 15u);
  EXPECT_EQ(snap.value("span.inner.count"), 1u);
  EXPECT_EQ(snap.value("span.inner.cycles"), 20u);
  EXPECT_EQ(snap.value("span.inner.self_cycles"), 20u);

  const auto events = tracer.chronological();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name_id, inner);  // inner completes first
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name_id, outer);
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(Span, DisabledTracerRecordsNothing) {
  Registry reg;  // never enabled
  SpanTracer tracer(reg);
  Cycles clock = 0;
  tracer.bind_clock(&clock);
  const u32 id = tracer.intern("noop");
  {
    SpanScope s(tracer, id);
    clock = 50;
  }
  EXPECT_EQ(tracer.size(), 0u);
  reg.set_enabled(true);
  EXPECT_EQ(reg.snapshot().value("span.noop.count"), 0u);
}

TEST(Span, RingDropsOldestBeyondCapacity) {
  Registry reg;
  reg.set_enabled(true);
  SpanTracer tracer(reg, /*ring_capacity=*/4);
  Cycles clock = 0;
  tracer.bind_clock(&clock);
  const u32 id = tracer.intern("tick");
  for (unsigned i = 0; i < 10; ++i) {
    SpanScope s(tracer, id);
    clock += 1;
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The counters still saw every span.
  EXPECT_EQ(reg.snapshot().value("span.tick.count"), 10u);
  const auto events = tracer.chronological();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first and strictly increasing begin times after the wrap.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].begin, events[i - 1].begin);
  }
}

TEST(Export, GoldenJson) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("b.count").add(3);
  reg.gauge("a.depth").set(7);
  reg.histogram("c.lat").record(5, 20);
  const std::string json = to_json(reg.snapshot());
  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"path\": \"a.depth\", \"kind\": \"gauge\", \"value\": 7},\n"
      "    {\"path\": \"b.count\", \"kind\": \"counter\", \"value\": 3},\n"
      "    {\"path\": \"c.lat\", \"kind\": \"histogram\", \"count\": 1, "
      "\"weight\": 20, \"min\": 5, \"max\": 5, "
      "\"buckets\": [{\"le\": 7, \"count\": 1, \"weight\": 20}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(Export, GoldenCsv) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("b.count").add(3);
  reg.histogram("c.lat").record(5, 20);
  const std::string csv = to_csv(reg.snapshot());
  const std::string expected =
      "path,kind,value,count,weight,min,max\n"
      "b.count,counter,3,,,,\n"
      "c.lat,histogram,,1,20,5,5\n";
  EXPECT_EQ(csv, expected);
}

TEST(Export, EqualSnapshotsRenderIdentically) {
  const Snapshot a = shard_snapshot(2);
  const Snapshot b = shard_snapshot(2);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(to_csv(a), to_csv(b));
}

}  // namespace
}  // namespace hn::obs
