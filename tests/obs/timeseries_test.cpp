// Time-series sampler unit tests (DESIGN.md §16): boundary semantics,
// delta encoding, the serialize/parse round trip, unenrollment, and the
// histogram percentile estimator the timeline report renders.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace hn::obs {
namespace {

TEST(TimeSeries, PollEmitsOneRowPerBoundary) {
  TimeSeries ts;
  u64 work = 0;
  u64 depth = 0;
  ts.enroll("work", TrackKind::kCounter, [&] { return work; });
  ts.enroll("depth", TrackKind::kLevel, [&] { return depth; });
  ts.arm(100, 0);
  EXPECT_TRUE(ts.armed());

  work = 7;
  depth = 3;
  ts.poll(50);  // before the first boundary: nothing
  EXPECT_EQ(ts.sample_count(), 0u);

  work = 10;
  depth = 2;
  ts.poll(250);  // crosses 100 and 200 in one poll
  const TimeSeriesData data = ts.data(250);
  ASSERT_GE(data.samples.size(), 2u);
  // Both rows are stamped at the *boundary* cycles, not the poll cycle,
  // and the second window's delta is 0 (no probe movement since 100).
  EXPECT_EQ(data.samples[0].at, 100u);
  EXPECT_EQ(data.samples[0].values[0], 10u);  // counter: delta since arm
  EXPECT_EQ(data.samples[0].values[1], 2u);   // level: as-is
  EXPECT_EQ(data.samples[1].at, 200u);
  EXPECT_EQ(data.samples[1].values[0], 0u);
}

TEST(TimeSeries, BoundariesAreAbsolute) {
  // Arming mid-stream schedules the next *absolute* multiple of the
  // interval, so re-arming at the same simulated cycle reproduces the
  // same stamps (the snapshot-boot byte-identity hinges on this).
  TimeSeries ts;
  u64 v = 0;
  ts.enroll("v", TrackKind::kCounter, [&] { return v; });
  ts.arm(100, 150);
  ts.poll(199);
  EXPECT_EQ(ts.sample_count(), 0u);
  ts.poll(200);
  const TimeSeriesData data = ts.data(200);
  ASSERT_EQ(data.samples.size(), 1u);
  EXPECT_EQ(data.samples[0].at, 200u);
}

TEST(TimeSeries, CounterSumsTelescopeToTotal) {
  TimeSeries ts;
  u64 v = 0;
  ts.enroll("v", TrackKind::kCounter, [&] { return v; });
  ts.arm(64, 0);
  for (Cycles now = 1; now <= 300; ++now) {
    v += now % 3;
    ts.poll(now);
  }
  // data() appends a flush row for the partial tail window [256, 300],
  // so the track total equals the end-of-run counter exactly.
  const TimeSeriesData data = ts.data(300);
  EXPECT_EQ(data.samples.back().at, 300u);
  EXPECT_EQ(data.track_total("v"), v);
  u64 sum = 0;
  for (const TimeSeriesSample& row : data.samples) sum += row.values[0];
  EXPECT_EQ(sum, v);
}

TEST(TimeSeries, RearmResetsBaselineAndSamples) {
  // clear_samples + arm models snapshot restore: the underlying
  // accumulator may jump backwards (restored state), and deltas must
  // restart from the re-primed baseline, not the old one.
  TimeSeries ts;
  u64 v = 0;
  ts.enroll("v", TrackKind::kCounter, [&] { return v; });
  ts.arm(100, 0);
  v = 500;
  ts.poll(100);
  EXPECT_EQ(ts.sample_count(), 1u);

  ts.clear_samples();
  EXPECT_FALSE(ts.armed());
  EXPECT_EQ(ts.sample_count(), 0u);

  v = 20;  // "restored" accumulator, below the old value
  ts.arm(100, 0);
  v = 27;
  ts.poll(100);
  const TimeSeriesData data = ts.data(100);
  ASSERT_EQ(data.samples.size(), 1u);
  EXPECT_EQ(data.samples[0].values[0], 7u);
}

TEST(TimeSeries, SerializeParseRoundTrip) {
  TimeSeries ts;
  u64 a = 0;
  u64 b = 0;
  ts.enroll("track.a", TrackKind::kCounter, [&] { return a; });
  ts.enroll("track.b", TrackKind::kLevel, [&] { return b; });
  ts.arm(10, 0);
  for (Cycles now = 1; now <= 35; ++now) {
    a += 2;
    b = now % 5;
    ts.poll(now);
  }
  TimeSeriesData data = ts.data(35);
  data.cpu_ghz = 2.5;

  const std::vector<u8> blob = serialize_timeseries(data);
  TimeSeriesData parsed;
  ASSERT_TRUE(parse_timeseries(blob, parsed).ok());
  EXPECT_EQ(parsed, data);

  // Corruption is rejected precisely: magic, version, truncation,
  // trailing bytes.
  std::vector<u8> bad = blob;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(parse_timeseries(bad, parsed).ok());
  bad = blob;
  bad[8] = 99;
  EXPECT_FALSE(parse_timeseries(bad, parsed).ok());
  bad = blob;
  bad.resize(bad.size() - 1);
  EXPECT_FALSE(parse_timeseries(bad, parsed).ok());
  bad = blob;
  bad.push_back(0);
  EXPECT_FALSE(parse_timeseries(bad, parsed).ok());
}

TEST(TimeSeries, UnenrollPrefixDropsTracksAndColumns) {
  TimeSeries ts;
  u64 x = 0;
  ts.enroll("mbm.fifo.drops", TrackKind::kCounter, [&] { return x; });
  ts.enroll("mbm.detections", TrackKind::kCounter, [&] { return x; });
  ts.enroll("sim.core0.cycles", TrackKind::kCounter, [&] { return x; });
  ts.arm(10, 0);
  x = 4;
  ts.poll(10);

  ts.unenroll_prefix("mbm.");
  EXPECT_EQ(ts.track_count(), 1u);
  const TimeSeriesData data = ts.data(10);
  ASSERT_EQ(data.tracks.size(), 1u);
  EXPECT_EQ(data.tracks[0].name, "sim.core0.cycles");
  ASSERT_EQ(data.samples.size(), 1u);
  ASSERT_EQ(data.samples[0].values.size(), 1u);
  EXPECT_EQ(data.samples[0].values[0], 4u);
}

TEST(TimeSeries, TrackTotalLevelReportsLastValue) {
  TimeSeries ts;
  u64 depth = 0;
  ts.enroll("depth", TrackKind::kLevel, [&] { return depth; });
  ts.arm(10, 0);
  depth = 9;
  ts.poll(10);
  depth = 4;
  ts.poll(20);
  const TimeSeriesData data = ts.data(20);
  EXPECT_EQ(data.track_total("depth"), 4u);
  EXPECT_EQ(data.track_total("no.such.track"), 0u);
}

TEST(TimeSeries, DisarmedPollIsInert) {
  TimeSeries ts;
  u64 v = 0;
  ts.enroll("v", TrackKind::kCounter, [&] { return v; });
  EXPECT_FALSE(ts.armed());
  v = 100;
  ts.poll(1000000);
  EXPECT_EQ(ts.sample_count(), 0u);
  EXPECT_TRUE(ts.data(1000000).samples.empty());
}

// ---------------- percentile estimator ----------------

TEST(HistogramPercentile, EmptyReportsZero) {
  const HistogramData h{};
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(100), 0u);
}

TEST(HistogramPercentile, SingleValueUpperBound) {
  HistogramData h{};
  h.record(5, 1);  // bucket 3 (values 4..7), inclusive upper bound 7
  EXPECT_EQ(h.percentile(0), 7u);
  EXPECT_EQ(h.percentile(50), 7u);
  EXPECT_EQ(h.percentile(99), 7u);
  EXPECT_EQ(h.percentile(100), 7u);
}

TEST(HistogramPercentile, SplitPopulationGoldens) {
  // 90 fast samples (value 1, bucket upper bound 1) and 10 slow ones
  // (value 1000, bucket 10, upper bound 1023): the p90 still lands in
  // the fast bucket, p91 and above report the slow tail.
  HistogramData h{};
  for (int i = 0; i < 90; ++i) h.record(1, 1);
  for (int i = 0; i < 10; ++i) h.record(1000, 1);
  EXPECT_EQ(h.percentile(50), 1u);
  EXPECT_EQ(h.percentile(90), 1u);
  EXPECT_EQ(h.percentile(91), 1023u);
  EXPECT_EQ(h.percentile(99), 1023u);
  EXPECT_EQ(h.percentile(100), 1023u);
}

TEST(HistogramPercentile, RankRoundsUpWithoutOverflow) {
  // 3 samples at p50: rank = ceil(1.5) = 2, so the 2nd-smallest bucket
  // answers — exact boundary arithmetic, no floating point.
  HistogramData h{};
  h.record(0, 1);   // bucket 0, upper bound 0
  h.record(2, 1);   // bucket 2, upper bound 3
  h.record(64, 1);  // bucket 7, upper bound 127
  EXPECT_EQ(h.percentile(50), 3u);
  EXPECT_EQ(h.percentile(34), 3u);
  EXPECT_EQ(h.percentile(33), 0u);
  EXPECT_EQ(h.percentile(67), 127u);
}

}  // namespace
}  // namespace hn::obs
