// Cross-thread determinism regression test (ISSUE 2 satellite): a fuzz
// campaign must produce identical per-sequence verdicts, per-sequence
// digests, failure details and summary counts at any --jobs value.
//
// This is the load-bearing property of the execution layer port: if a
// worker ever leaked state into a sibling's universe (shared sim state,
// a stray global, an order-dependent merge), these comparisons break
// before any user sees a nondeterministic campaign.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fuzz/fuzzer.h"

namespace hn::fuzz {
namespace {

FuzzOptions base_options(unsigned jobs) {
  FuzzOptions options;
  options.seed = 1;
  options.sequences = 10;  // one progress checkpoint, ~2s per campaign
  options.jobs = jobs;
  return options;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.sequences_run, b.sequences_run);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
  EXPECT_EQ(a.sequence_verdicts, b.sequence_verdicts);
  EXPECT_EQ(a.sequence_digests, b.sequence_digests);
  ASSERT_EQ(a.failure_details.size(), b.failure_details.size());
  for (size_t i = 0; i < a.failure_details.size(); ++i) {
    const SequenceFailure& fa = a.failure_details[i];
    const SequenceFailure& fb = b.failure_details[i];
    EXPECT_EQ(fa.index, fb.index);
    EXPECT_EQ(fa.sequence_seed, fb.sequence_seed);
    EXPECT_EQ(fa.findings, fb.findings);
    EXPECT_EQ(fa.ops.size(), fb.ops.size());
    EXPECT_EQ(fa.trace_step, fb.trace_step);
    EXPECT_EQ(fa.trace, fb.trace);
    EXPECT_EQ(fa.replay, fb.replay);
  }
}

TEST(ParallelCampaign, CleanCampaignIdenticalAcrossJobCounts) {
  std::ostringstream log1, log4;
  const CampaignResult j1 = run_campaign(base_options(1), &log1);
  const CampaignResult j4 = run_campaign(base_options(4), &log4);
  EXPECT_TRUE(j1.ok());
  EXPECT_TRUE(j4.ok());
  expect_identical(j1, j4);
  // The log stream — progress lines included — is byte-identical too.
  EXPECT_EQ(log1.str(), log4.str());
  EXPECT_EQ(j1.sequence_digests.size(), 10u);
  EXPECT_EQ(j4.exec.jobs, 4u);
  ASSERT_EQ(j4.exec.workers.size(), 4u);
  u64 worker_jobs = 0;
  for (const auto& w : j4.exec.workers) worker_jobs += w.jobs;
  EXPECT_EQ(worker_jobs, 10u);
}

#if HN_OBS
TEST(ParallelCampaign, MetricsSnapshotIdenticalAcrossJobCounts) {
  // The observability fold is index-ordered and every per-entry merge is
  // commutative, so the campaign's aggregated metrics snapshot must be
  // bit-identical at any --jobs value — same entries, same values, same
  // histogram buckets.  (HN_OBS=OFF compiles the recording away, so the
  // snapshot is legitimately empty there and the test does not apply.)
  FuzzOptions options1 = base_options(1);
  options1.collect_metrics = true;
  FuzzOptions options4 = base_options(4);
  options4.collect_metrics = true;

  const CampaignResult j1 = run_campaign(options1);
  const CampaignResult j4 = run_campaign(options4);
  expect_identical(j1, j4);
  ASSERT_FALSE(j1.metrics.entries.empty());
  EXPECT_EQ(j1.metrics, j4.metrics);
  // The snapshot actually saw the simulation: every universe translates.
  EXPECT_GT(j1.metrics.rollup("sim.mmu"), 0u);
  EXPECT_GT(j1.metrics.value("kernel.syscalls"), 0u);
}
#endif  // HN_OBS

TEST(ParallelCampaign, AutoJobsMatchesSequential) {
  // jobs = 0 resolves to hardware concurrency — whatever that is on the
  // host, results must not move.
  const CampaignResult j1 = run_campaign(base_options(1));
  const CampaignResult jauto = run_campaign(base_options(0));
  expect_identical(j1, jauto);
  EXPECT_GE(jauto.exec.jobs, 1u);
}

TEST(ParallelCampaign, BypassFailuresIdenticalAcrossJobCounts) {
  // Failing campaigns are the hard case: shrinking and trace capture
  // re-run sequences on the merging thread, and failure details must
  // come out identical at any job count.
  std::ostringstream log1, log4;
  FuzzOptions options1 = base_options(1);
  options1.sequences = 5;
  options1.inject_bypass = true;
  FuzzOptions options4 = base_options(4);
  options4.sequences = 5;
  options4.inject_bypass = true;

  const CampaignResult j1 = run_campaign(options1, &log1);
  const CampaignResult j4 = run_campaign(options4, &log4);
  ASSERT_GT(j1.failures, 0u);
  expect_identical(j1, j4);
  EXPECT_EQ(log1.str(), log4.str());
}

TEST(ParallelCampaign, FailFastReportsTheLowestFailingSequence) {
  // With fail-fast, both the sequential and the 4-worker campaign must
  // stop on the *same* (lowest-index) failure: the FIFO prefix property
  // guarantees every lower index completed.
  FuzzOptions options1 = base_options(1);
  options1.inject_bypass = true;
  options1.fail_fast = true;
  FuzzOptions options4 = base_options(4);
  options4.inject_bypass = true;
  options4.fail_fast = true;

  const CampaignResult j1 = run_campaign(options1);
  const CampaignResult j4 = run_campaign(options4);
  ASSERT_EQ(j1.failures, 1u);
  ASSERT_EQ(j4.failures, 1u);
  ASSERT_EQ(j1.failure_details.size(), 1u);
  ASSERT_EQ(j4.failure_details.size(), 1u);
  EXPECT_EQ(j1.failure_details[0].index, j4.failure_details[0].index);
  EXPECT_EQ(j1.failure_details[0].sequence_seed,
            j4.failure_details[0].sequence_seed);
  EXPECT_EQ(j1.sequences_run, j4.sequences_run);
}

}  // namespace
}  // namespace hn::fuzz
