// Structured attack seeds (tests/fuzz/corpus/attack_*.ops): every seed
// file must parse, round-trip through the seed text format, replay clean
// under the standard fuzz matrix plus the three detector configurations,
// and keep its pinned differential fingerprint.  The shrinker must be
// able to minimise a seed while preserving detection, and the campaign
// driver must splice scenario programs deterministically at any job
// count.
#include <gtest/gtest.h>

#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "attacks/scorecard.h"
#include "fuzz/fuzzer.h"
#include "fuzz/seed_io.h"
#include "fuzz/shrink.h"

namespace hn::fuzz {
namespace {

struct SeedGolden {
  const char* file;
  /// FunctionalFingerprint::functional_hash() of the seed replayed under
  /// the reference configuration.  Every other configuration must agree
  /// (the differential oracle), so one pin covers the whole matrix.
  u64 functional_hash;
};

// Pinned differential fingerprints, one per corpus seed.  A change here
// means the seed's functional effect changed — a kernel-semantics or
// executor change, never a detector change (alerts are excluded from the
// functional hash).
constexpr SeedGolden kSeeds[] = {
    {"attack_cred_theft.ops", 0x268952f2861946bdull},
    {"attack_dentry_hiding.ops", 0x93522fd316757e8dull},
    {"attack_table_patch.ops", 0xaa83bd8375f2b3aaull},
    {"attack_module_text.ops", 0x3a69be36b960ab4cull},
    {"attack_pt_remap.ops", 0x0acf27a60149eb44ull},
};

std::vector<Op> load_seed(const std::string& file) {
  Result<std::vector<Op>> loaded =
      load_ops_file(std::string(FUZZ_CORPUS_DIR) + "/" + file);
  EXPECT_TRUE(loaded.ok()) << loaded.status().message();
  return loaded.ok() ? std::move(loaded).value() : std::vector<Op>{};
}

TEST(AttackCorpus, EverySeedParsesAndRoundTrips) {
  for (const SeedGolden& seed : kSeeds) {
    SCOPED_TRACE(seed.file);
    const std::vector<Op> ops = load_seed(seed.file);
    ASSERT_FALSE(ops.empty());
    bool has_attack = false;
    for (const Op& op : ops) has_attack |= is_attack(op.kind);
    EXPECT_TRUE(has_attack) << "attack seed without a tamper op";
    // Text -> ops -> text -> ops is a fixed point.
    const std::string text = format_ops(ops);
    Result<std::vector<Op>> reparsed = parse_ops(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
    ASSERT_EQ(reparsed.value().size(), ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(reparsed.value()[i].kind, ops[i].kind) << "op " << i;
      EXPECT_EQ(reparsed.value()[i].a, ops[i].a) << "op " << i;
      EXPECT_EQ(reparsed.value()[i].b, ops[i].b) << "op " << i;
      EXPECT_EQ(reparsed.value()[i].c, ops[i].c) << "op " << i;
    }
    EXPECT_EQ(format_ops(reparsed.value()), text);
  }
}

TEST(AttackCorpus, SeedsReplayCleanWithPinnedFingerprints) {
  // The --replay-file configuration set: the quick matrix plus the three
  // detector configurations, both oracles armed.
  std::vector<FuzzConfigSpec> specs = build_matrix(/*full=*/false);
  for (const FuzzConfigSpec& spec : attacks::detector_configs()) {
    specs.push_back(spec);
  }
  for (const SeedGolden& seed : kSeeds) {
    SCOPED_TRACE(seed.file);
    const std::vector<Op> ops = load_seed(seed.file);
    ASSERT_FALSE(ops.empty());
    std::vector<RunResult> runs;
    runs.reserve(specs.size());
    for (const FuzzConfigSpec& spec : specs) {
      runs.push_back(run_sequence(spec, ops));
    }
    const OracleReport report = check_sequence(ops, specs, runs);
    for (const std::string& finding : report.findings) ADD_FAILURE() << finding;
    EXPECT_EQ(runs[0].fingerprint.functional_hash(), seed.functional_hash)
        << "differential fingerprint moved";
  }
}

TEST(AttackCorpus, ShrinkerPreservesDetection) {
  // cred theft: uid drop + CPU forgery + DMA forgery.  Either forgery
  // alone suffices for detection, the uid drop is load-bearing (a forged
  // 0 over uid 0 is idempotent), so the 1-minimal reproducer is 2 ops.
  const std::vector<Op> ops = load_seed("attack_cred_theft.ops");
  ASSERT_EQ(ops.size(), 3u);
  const FuzzConfigSpec spec = attacks::detector_configs().front();
  ASSERT_EQ(spec.name, "object-integrity-monitor");
  const FailPredicate detects = [&spec](std::span<const Op> candidate) {
    return !run_sequence(spec, candidate).alert_log.empty();
  };
  ASSERT_TRUE(detects(ops));
  ShrinkStats stats;
  const std::vector<Op> minimal = shrink(ops, detects, 400, &stats);
  EXPECT_TRUE(detects(minimal));
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_EQ(stats.ops_removed, ops.size() - minimal.size());
}

TEST(AttackCorpus, ScenarioSeededCampaignIsCleanAndJobInvariant) {
  // The fuzzer's structured-seed mode (hypernel_fuzz --attack-seeds):
  // each sequence splices one whole scenario program at a seed-chosen
  // offset, with the extended attack kinds enabled.
  FuzzOptions serial;
  serial.seed = 7;
  serial.sequences = 6;
  serial.ops = 30;
  serial.extended_attacks = true;
  serial.scenario_pool = attacks::scenario_pool();
  FuzzOptions parallel = serial;
  parallel.jobs = 4;
  std::ostringstream sink;
  const CampaignResult a = run_campaign(serial, &sink);
  const CampaignResult b = run_campaign(parallel, &sink);
  EXPECT_EQ(a.failures, 0u);
  EXPECT_EQ(a.sequences_run, serial.sequences);
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
  ASSERT_EQ(a.sequence_digests.size(), b.sequence_digests.size());
  for (size_t i = 0; i < a.sequence_digests.size(); ++i) {
    EXPECT_EQ(a.sequence_digests[i], b.sequence_digests[i]) << "sequence " << i;
  }
  // Golden pin of the scenario-seeded campaign (the CLI prints the same
  // value for --attack-seeds --seed=7 --sequences=6 --ops=30).
  EXPECT_EQ(a.corpus_digest, 0xc13c535607422a55ull);
}

}  // namespace
}  // namespace hn::fuzz
