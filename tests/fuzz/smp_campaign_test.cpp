// SMP campaign-digest pins (DESIGN.md §15).
//
// The whole-system determinism argument for the N-core machine is the
// same one the single-core simulator makes: the corpus digest folds every
// run's functional hash and cycle count, so a golden digest per core
// count witnesses the scheduler's placement decisions, the shared-bus
// arbitration and contention charges, spinlock ping-pong costs, IPI
// delivery instants, and the interleaved write stream the MBM snoops.
//
// Three pins, harvested from
//   ./build/tools/hypernel_fuzz --seed=1 --sequences=20 --ops=40
//       --attack-seeds --cores=N
// and each invariant across --jobs, --snapshot-boot, --reference and
// --decoupled.  The cores=1 pin proves the SMP machinery is inert on a
// single core: this campaign predates the SMP work, and its digest did
// not move.
#include <gtest/gtest.h>

#include "attacks/scenario.h"
#include "fuzz/fuzzer.h"

namespace hn::fuzz {
namespace {

FuzzOptions smp_options(unsigned cores) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.sequences = 20;
  opt.ops = 40;
  opt.extended_attacks = true;
  opt.scenario_pool = attacks::scenario_pool();
  opt.jobs = 0;  // hardware concurrency; job count never changes results
  opt.cores = cores;
  return opt;
}

constexpr u64 kGoldenSingleCore = 0x43e34a78e0db95abull;
constexpr u64 kGoldenDualCore = 0x104beefc68c11611ull;
constexpr u64 kGoldenQuadCore = 0x9f843250cef9cc6bull;

TEST(SmpCampaign, SingleCoreDigestIsPreSmp) {
  const CampaignResult r = run_campaign(smp_options(1));
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.sequences_run, 20u);
  EXPECT_EQ(r.corpus_digest, kGoldenSingleCore);
}

TEST(SmpCampaign, DualCoreGoldenDigest) {
  const CampaignResult r = run_campaign(smp_options(2));
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenDualCore);
}

TEST(SmpCampaign, QuadCoreGoldenDigest) {
  const CampaignResult r = run_campaign(smp_options(4));
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenQuadCore);
}

TEST(SmpCampaign, DualCoreJobsInvariant) {
  FuzzOptions serial = smp_options(2);
  serial.jobs = 1;
  const CampaignResult r = run_campaign(serial);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenDualCore);
}

TEST(SmpCampaign, DualCoreSnapshotBootInvariant) {
  // COW boot snapshots capture every per-core register file, TLB, cycle
  // account and the bus-arbiter state; forked cases must land on the
  // same digest as fresh boots.
  FuzzOptions opt = smp_options(2);
  opt.snapshot_boot = true;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenDualCore);
}

TEST(SmpCampaign, QuadCoreReferenceModeInvariant) {
  // The host fast path must reproduce the SMP digest bit-for-bit, like
  // it does the single-core one.
  FuzzOptions opt = smp_options(4);
  opt.host_fast_path = false;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenQuadCore);
}

TEST(SmpCampaign, QuadCoreDecoupledInvariant) {
  FuzzOptions opt = smp_options(4);
  opt.decoupled_quantum = kDefaultDecoupledQuantum;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenQuadCore);
}

}  // namespace
}  // namespace hn::fuzz
