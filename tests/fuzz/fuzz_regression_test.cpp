// Fuzz regression suite.
//
// Replays the corpus in corpus/seeds.txt — every sequence seed that ever
// exposed a bug, plus a spread of clean seeds — across the quick
// configuration matrix and asserts both oracles stay green.  Also locks
// down the harness itself: the generator and campaign driver are
// deterministic, the shrinker produces small reproducers, and the
// detection-completeness oracle actually catches a monitor bypass.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

namespace hn::fuzz {
namespace {

// The historically interesting seed: sequence 35 of campaign --seed=1
// crashed the VFS on a corrupted d_inode before attack probes became
// detect-and-restore.  See corpus/seeds.txt.
constexpr u64 kDentryPanicSeed = 1167777406073244264ull;

std::vector<u64> load_corpus() {
  std::ifstream in(std::string(FUZZ_CORPUS_DIR) + "/seeds.txt");
  EXPECT_TRUE(in.good()) << "corpus missing at " FUZZ_CORPUS_DIR;
  std::vector<u64> seeds;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    seeds.push_back(std::stoull(line));
  }
  return seeds;
}

TEST(FuzzRegression, CorpusHasRequiredSeeds) {
  const std::vector<u64> seeds = load_corpus();
  EXPECT_GE(seeds.size(), 20u);
  EXPECT_EQ(seeds.front(), kDentryPanicSeed);
}

TEST(FuzzRegression, CorpusSeedsPassBothOracles) {
  const std::vector<FuzzConfigSpec> specs = build_matrix(/*full=*/false);
  const GeneratorOptions gen;
  const ExecutorOptions exec;
  for (const u64 seed : load_corpus()) {
    SCOPED_TRACE("sequence seed " + std::to_string(seed));
    const OracleReport report = run_sequence_seed(seed, gen, specs, exec);
    EXPECT_TRUE(report.ok());
    for (const std::string& finding : report.findings) {
      ADD_FAILURE() << finding;
    }
  }
}

TEST(FuzzRegression, SectionsSealSeedPassesFullMatrix) {
  // Sequence 1 of campaign --seed=3 under --matrix=full: the insmod at
  // step 21 sealed module text through a 2 MiB block descriptor, turning
  // the whole section read-only; the next fork then died on the cred
  // writability assert.  Fixed by splitting blocks in set_page_attrs.
  const std::vector<FuzzConfigSpec> specs = build_matrix(/*full=*/true);
  const OracleReport report =
      run_sequence_seed(17911839290282890590ull, GeneratorOptions{},
                        specs, ExecutorOptions{});
  EXPECT_TRUE(report.ok());
  for (const std::string& finding : report.findings) {
    ADD_FAILURE() << finding;
  }
}

TEST(FuzzRegression, GeneratorIsDeterministic) {
  const GeneratorOptions gen;
  const std::vector<Op> a = generate_sequence(kDentryPanicSeed, gen);
  const std::vector<Op> b = generate_sequence(kDentryPanicSeed, gen);
  ASSERT_EQ(a.size(), gen.ops);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].c, b[i].c);
  }
  // Adjacent campaign indices decorrelate into distinct sequences.
  EXPECT_NE(sequence_seed(1, 0), sequence_seed(1, 1));
  EXPECT_NE(sequence_seed(1, 0), sequence_seed(2, 0));
}

TEST(FuzzRegression, CampaignDigestIsReproducible) {
  FuzzOptions options;
  options.seed = 1;
  options.sequences = 3;
  const CampaignResult first = run_campaign(options);
  const CampaignResult second = run_campaign(options);
  EXPECT_TRUE(first.ok());
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(first.corpus_digest, second.corpus_digest);
  // A different master seed explores a different corpus.
  options.seed = 2;
  const CampaignResult other = run_campaign(options);
  EXPECT_TRUE(other.ok());
  EXPECT_NE(other.corpus_digest, first.corpus_digest);
}

TEST(FuzzRegression, InjectedBypassIsCaughtAndShrunk) {
  // The test-only bypass hook makes attack writes dodge the bus snooper:
  // coherent (cache line flushed first) but invisible to the MBM.  The
  // detection-completeness oracle must flag the missing alert, and the
  // shrinker must cut the reproducer down to a handful of ops.
  FuzzOptions options;
  options.seed = 1;
  options.sequences = 5;
  options.inject_bypass = true;
  std::ostringstream log;
  const CampaignResult result = run_campaign(options, &log);
  ASSERT_GT(result.failures, 0u);
  ASSERT_FALSE(result.failure_details.empty());
  const SequenceFailure& failure = result.failure_details.front();
  EXPECT_LE(failure.ops.size(), 10u);
  ASSERT_FALSE(failure.findings.empty());
  bool mentions_alert = false;
  for (const std::string& finding : failure.findings) {
    if (finding.find("alert") != std::string::npos) mentions_alert = true;
  }
  EXPECT_TRUE(mentions_alert) << log.str();
  EXPECT_NE(failure.replay.find("--replay="), std::string::npos);
}

}  // namespace
}  // namespace hn::fuzz
