// Direct unit tests for the ddmin shrinker (src/fuzz/shrink.*) against
// synthetic predicates.  Until now the shrinker was only exercised
// indirectly through whole-campaign runs; these tests pin its contract
// in isolation: the result still fails, is 1-minimal (no single op can
// be dropped), is deterministic, and degenerate inputs (already
// minimal, everything fails) behave sanely under the probe budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "fuzz/shrink.h"

namespace hn::fuzz {
namespace {

/// A sequence of marker ops: `a` carries the original index so a
/// predicate can express "fails iff markers X and Y both survive".
std::vector<Op> marker_ops(u64 n) {
  std::vector<Op> ops(n);
  for (u64 i = 0; i < n; ++i) {
    ops[i].kind = OpKind::kStat;
    ops[i].a = i;
  }
  return ops;
}

std::set<u64> markers(std::span<const Op> ops) {
  std::set<u64> out;
  for (const Op& op : ops) out.insert(op.a);
  return out;
}

/// Fails iff every marker in `needed` is present.
FailPredicate needs_all(std::set<u64> needed) {
  return [needed = std::move(needed)](std::span<const Op> candidate) {
    const std::set<u64> present = markers(candidate);
    return std::all_of(needed.begin(), needed.end(),
                       [&](u64 m) { return present.count(m) != 0; });
  };
}

/// Assert `ops` is 1-minimal under `fails`: dropping any single op
/// makes the failure disappear.
void expect_one_minimal(const std::vector<Op>& ops, const FailPredicate& fails) {
  ASSERT_TRUE(fails(ops));
  for (size_t skip = 0; skip < ops.size(); ++skip) {
    std::vector<Op> without;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (i != skip) without.push_back(ops[i]);
    }
    EXPECT_FALSE(fails(without))
        << "dropping op " << skip << " should have removed the failure";
  }
}

TEST(Shrink, ReducesToTheExactFailureCore) {
  const FailPredicate fails = needs_all({3, 7, 29});
  ShrinkStats stats;
  const std::vector<Op> minimal =
      shrink(marker_ops(40), fails, /*max_probes=*/1000, &stats);
  EXPECT_EQ(markers(minimal), (std::set<u64>{3, 7, 29}));
  EXPECT_EQ(minimal.size(), 3u);
  EXPECT_EQ(stats.ops_removed, 37u);
  EXPECT_GT(stats.probes, 0u);
  expect_one_minimal(minimal, fails);
}

TEST(Shrink, ResultIsOneMinimalForScatteredCore) {
  // Markers at both ends and the middle: chunk deletion must not get
  // stuck keeping unrelated neighbours alive.
  const FailPredicate fails = needs_all({0, 19, 39});
  const std::vector<Op> minimal =
      shrink(marker_ops(40), fails, /*max_probes=*/2000);
  expect_one_minimal(minimal, fails);
  EXPECT_EQ(minimal.size(), 3u);
}

TEST(Shrink, DeterministicAcrossRuns) {
  const FailPredicate fails = needs_all({5, 6, 21, 34});
  const std::vector<Op> first = shrink(marker_ops(48), fails);
  const std::vector<Op> second = shrink(marker_ops(48), fails);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].a, second[i].a);
    EXPECT_EQ(first[i].kind, second[i].kind);
  }
}

TEST(Shrink, AlreadyMinimalSequenceIsUntouched) {
  const FailPredicate fails = needs_all({0, 1});
  ShrinkStats stats;
  const std::vector<Op> minimal =
      shrink(marker_ops(2), fails, /*max_probes=*/100, &stats);
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_EQ(stats.ops_removed, 0u);
  EXPECT_GT(stats.probes, 0u);  // it still had to try
}

TEST(Shrink, SingleOpFailingSequenceStays) {
  const FailPredicate always = [](std::span<const Op>) { return true; };
  // A single op where even the empty sequence fails: ddmin deletes it.
  const std::vector<Op> minimal = shrink(marker_ops(1), always);
  EXPECT_TRUE(minimal.empty());

  // A single op that is actually required survives.
  const std::vector<Op> kept = shrink(marker_ops(1), needs_all({0}));
  EXPECT_EQ(kept.size(), 1u);
}

TEST(Shrink, AllFailingPredicateShrinksToEmpty) {
  // When the failure does not depend on the ops at all (e.g. a
  // config-level bug), the minimal reproducer is the empty sequence.
  const FailPredicate always = [](std::span<const Op>) { return true; };
  ShrinkStats stats;
  const std::vector<Op> minimal =
      shrink(marker_ops(64), always, /*max_probes=*/1000, &stats);
  EXPECT_TRUE(minimal.empty());
  EXPECT_EQ(stats.ops_removed, 64u);
}

TEST(Shrink, RespectsProbeBudget) {
  // An adversarial predicate that only lets single-op deletions
  // through forces ~O(n) probes per pass; a tiny budget must bound the
  // work and still return a valid failing sequence.
  const FailPredicate fails = [](std::span<const Op> candidate) {
    return candidate.size() >= 30;  // any 30 survivors still "fail"
  };
  ShrinkStats stats;
  const std::vector<Op> out =
      shrink(marker_ops(256), fails, /*max_probes=*/10, &stats);
  EXPECT_LE(stats.probes, 10u);
  EXPECT_TRUE(fails(out));  // never returns a passing sequence
}

TEST(Shrink, StatsAccountRemovedOps) {
  const FailPredicate fails = needs_all({10});
  ShrinkStats stats;
  const std::vector<Op> minimal =
      shrink(marker_ops(32), fails, /*max_probes=*/1000, &stats);
  EXPECT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].a, 10u);
  EXPECT_EQ(stats.ops_removed, 31u);
}

}  // namespace
}  // namespace hn::fuzz
