// Snapshot fingerprint-invariance suite.
//
// The snapshot-boot executor path (--snapshot-boot) forks every case from
// a once-booted COW snapshot instead of building a fresh system.  The
// contract is absolute: results are *byte-identical* either way — same
// per-step records, same functional fingerprint, same cycle counts, same
// violations.  This suite enforces that contract over the whole regression
// corpus, in the host fast path and in reference mode, and extends it to
// the parallel campaign driver (the TSan job runs this file, so the
// concurrent per-worker fork path is raced for real under --jobs=4).
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "attacks/scorecard.h"
#include "fuzz/fuzzer.h"

namespace hn::fuzz {
namespace {

std::vector<u64> load_corpus() {
  std::ifstream in(std::string(FUZZ_CORPUS_DIR) + "/seeds.txt");
  EXPECT_TRUE(in.good()) << "corpus missing at " FUZZ_CORPUS_DIR;
  std::vector<u64> seeds;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    seeds.push_back(std::stoull(line));
  }
  return seeds;
}

/// Byte-level equality of two RunResults, with a field-precise failure
/// message: "fingerprints equal" is necessary but not sufficient — the
/// differential oracle also consumes every per-step record.
void expect_identical_runs(const RunResult& fresh, const RunResult& forked) {
  ASSERT_EQ(fresh.build_failed, forked.build_failed);
  EXPECT_EQ(fresh.build_error, forked.build_error);
  ASSERT_EQ(fresh.steps.size(), forked.steps.size());
  for (size_t i = 0; i < fresh.steps.size(); ++i) {
    EXPECT_EQ(fresh.steps[i].result, forked.steps[i].result) << "step " << i;
    EXPECT_EQ(fresh.steps[i].state_digest, forked.steps[i].state_digest)
        << "step " << i;
    EXPECT_EQ(fresh.steps[i].alerts, forked.steps[i].alerts) << "step " << i;
    EXPECT_EQ(fresh.steps[i].events, forked.steps[i].events) << "step " << i;
  }
  EXPECT_TRUE(fresh.fingerprint.functionally_equal(forked.fingerprint))
      << fresh.fingerprint.diff(forked.fingerprint);
  EXPECT_EQ(fresh.fingerprint.cycles, forked.fingerprint.cycles);
  EXPECT_EQ(fresh.fingerprint.monitor_events,
            forked.fingerprint.monitor_events);
  EXPECT_EQ(fresh.fingerprint.alerts, forked.fingerprint.alerts);
  EXPECT_EQ(fresh.violations, forked.violations);
  EXPECT_EQ(fresh.attacks_expected, forked.attacks_expected);
  // The scorecard evidence — per-tamper records and the flattened alert
  // log — must fork bit-identically too: the scorecard's latency and
  // attribution columns are built from exactly these.
  ASSERT_EQ(fresh.attacks.size(), forked.attacks.size());
  for (size_t i = 0; i < fresh.attacks.size(); ++i) {
    EXPECT_EQ(fresh.attacks[i].step, forked.attacks[i].step) << "attack " << i;
    EXPECT_EQ(fresh.attacks[i].kind, forked.attacks[i].kind) << "attack " << i;
    EXPECT_EQ(fresh.attacks[i].at, forked.attacks[i].at) << "attack " << i;
    EXPECT_EQ(fresh.attacks[i].expected, forked.attacks[i].expected)
        << "attack " << i;
  }
  ASSERT_EQ(fresh.alert_log.size(), forked.alert_log.size());
  for (size_t i = 0; i < fresh.alert_log.size(); ++i) {
    EXPECT_EQ(fresh.alert_log[i].detector, forked.alert_log[i].detector)
        << "alert " << i;
    EXPECT_EQ(fresh.alert_log[i].kind, forked.alert_log[i].kind)
        << "alert " << i;
    EXPECT_EQ(fresh.alert_log[i].pa, forked.alert_log[i].pa) << "alert " << i;
    EXPECT_EQ(fresh.alert_log[i].at, forked.alert_log[i].at) << "alert " << i;
  }
}

void run_corpus_invariance(bool host_fast_path) {
  const GeneratorOptions gen;
  ExecutorOptions fresh_boot;
  ExecutorOptions snapshot_boot;
  snapshot_boot.snapshot_boot = true;
  std::vector<FuzzConfigSpec> specs = build_matrix(/*full=*/false);
  for (FuzzConfigSpec& spec : specs) spec.host_fast_path = host_fast_path;
  for (const u64 seed : load_corpus()) {
    const std::vector<Op> ops = generate_sequence(seed, gen);
    for (const FuzzConfigSpec& spec : specs) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " config " + spec.name);
      expect_identical_runs(run_sequence(spec, ops, fresh_boot),
                            run_sequence(spec, ops, snapshot_boot));
    }
  }
}

TEST(SnapshotInvariance, CorpusFastPath) {
  run_corpus_invariance(/*host_fast_path=*/true);
}

TEST(SnapshotInvariance, CorpusReferenceMode) {
  run_corpus_invariance(/*host_fast_path=*/false);
}

TEST(SnapshotInvariance, RepeatedForksFromOneSessionStayIdentical) {
  // The per-thread boot session is reused across cases: case N runs on a
  // machine restored from the same snapshot case 0 used.  Re-running one
  // sequence many times through the session cache must be a fixed point.
  const std::vector<Op> ops = generate_sequence(load_corpus().front(),
                                                GeneratorOptions{});
  const FuzzConfigSpec spec = build_matrix(/*full=*/false).front();
  ExecutorOptions snapshot_boot;
  snapshot_boot.snapshot_boot = true;
  const RunResult fresh = run_sequence(spec, ops, ExecutorOptions{});
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    expect_identical_runs(fresh, run_sequence(spec, ops, snapshot_boot));
  }
}

TEST(SnapshotInvariance, ParallelSnapshotCampaignMatchesFreshBoot) {
  // Whole-campaign form of the same contract, and the TSan target for the
  // concurrent fork path: four workers forking every case from their
  // boot sessions must reproduce the serial fresh-boot corpus digest
  // bit for bit.
  FuzzOptions fresh;
  fresh.seed = 1;
  fresh.sequences = 12;
  fresh.jobs = 1;
  FuzzOptions forked = fresh;
  forked.jobs = 4;
  forked.snapshot_boot = true;
  const CampaignResult a = run_campaign(fresh);
  const CampaignResult b = run_campaign(forked);
  EXPECT_EQ(a.failures, 0u);
  EXPECT_EQ(b.failures, 0u);
  ASSERT_EQ(a.sequence_digests.size(), b.sequence_digests.size());
  for (size_t i = 0; i < a.sequence_digests.size(); ++i) {
    EXPECT_EQ(a.sequence_digests[i], b.sequence_digests[i]) << "sequence " << i;
  }
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
}

TEST(SnapshotInvariance, DetectorConfigsForkIdentically) {
  // The new detector configurations carry extra executor-owned state
  // (invariant checker's page set, CFI baselines) saved as separate blobs
  // next to the system snapshot.  Scorecard runs forked from boot
  // snapshots must be bit-identical to fresh boots — attack scenarios and
  // the benign probe alike.
  ExecutorOptions fresh_boot;
  ExecutorOptions snapshot_boot;
  snapshot_boot.snapshot_boot = true;
  std::vector<std::vector<Op>> programs = attacks::scenario_pool();
  programs.push_back(attacks::benign_workload());
  for (const FuzzConfigSpec& spec : attacks::detector_configs()) {
    for (size_t p = 0; p < programs.size(); ++p) {
      SCOPED_TRACE("config " + spec.name + " program " + std::to_string(p));
      expect_identical_runs(run_sequence(spec, programs[p], fresh_boot),
                            run_sequence(spec, programs[p], snapshot_boot));
    }
  }
}

TEST(SnapshotInvariance, SmpRunsForkIdentically) {
  // Two-core machines snapshot more state per core — register files,
  // TLBs, cycle accounts, the bus-arbiter clock, spinlock owners, pending
  // IPIs — and the cross-core scenarios exercise all of it: the fork op
  // lands the writer on core 1, the tamper happens mid-migration, and
  // the benign workload's switch-task ops bounce between runqueues.
  // Boot-forked runs must stay bit-identical through every step digest.
  ExecutorOptions fresh_boot;
  ExecutorOptions snapshot_boot;
  snapshot_boot.snapshot_boot = true;
  std::vector<std::vector<Op>> programs;
  for (const attacks::AttackScenario& s : attacks::smp_scenario_library()) {
    programs.push_back(s.ops);
  }
  programs.push_back(attacks::benign_workload());
  for (FuzzConfigSpec spec : attacks::detector_configs()) {
    spec.cores = 2;
    for (size_t p = 0; p < programs.size(); ++p) {
      SCOPED_TRACE("config " + spec.name + " program " + std::to_string(p));
      expect_identical_runs(run_sequence(spec, programs[p], fresh_boot),
                            run_sequence(spec, programs[p], snapshot_boot));
    }
  }
}

TEST(SnapshotInvariance, InstrumentedRunsFallBackToFreshBoot) {
  // Runs that need per-run host instrumentation ignore snapshot_boot (a
  // session machine's registry/recorder belongs to every case, not one).
  // The fallback must still be bit-identical — it *is* the fresh path.
  const std::vector<Op> ops = generate_sequence(load_corpus().front(),
                                                GeneratorOptions{});
  const FuzzConfigSpec spec = build_matrix(/*full=*/false).front();
  ExecutorOptions with_trace;
  with_trace.snapshot_boot = true;
  with_trace.capture_trace = true;
  const RunResult traced = run_sequence(spec, ops, with_trace);
  EXPECT_FALSE(traced.trace_blob.empty());
  ExecutorOptions plain_trace;
  plain_trace.capture_trace = true;
  EXPECT_EQ(traced.trace_blob, run_sequence(spec, ops, plain_trace).trace_blob);
}

}  // namespace
}  // namespace hn::fuzz
