// Campaign corpus-digest pins.
//
// The fuzz campaign's corpus digest folds every run's functional hash and
// cycle count, so it transitively witnesses the whole simulation's
// determinism contract: TLB replacement order, walk charges, bus traffic
// timing, oracle verdicts.  Two pins live here:
//
//   * the golden digest for the canonical quick campaign (--seed=1
//     --sequences=50) — any change to simulated behaviour, intended or
//     not, shows up as a digest mismatch and must be justified;
//   * fast-path vs reference-mode equality — the host fast path
//     (DESIGN.md §9) must reproduce the digest bit-for-bit, which is the
//     strongest whole-system statement of "wall-clock only".
#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"

namespace hn::fuzz {
namespace {

/// The canonical quick campaign: `hypernel_fuzz --seed=1 --sequences=50`.
FuzzOptions canonical_options() {
  FuzzOptions opt;
  opt.seed = 1;
  opt.sequences = 50;
  opt.jobs = 0;  // hardware concurrency; job count never changes results
  return opt;
}

/// Golden digest of the canonical campaign.  If an intentional simulator
/// change moves it, re-pin by running:
///   ./build/tools/hypernel_fuzz --seed=1 --sequences=50
/// and copying the reported corpus digest — after explaining in the
/// commit message why the simulated behaviour was allowed to change.
constexpr u64 kGoldenDigest = 0x8b76ae7ed9b7c385ull;

TEST(CampaignDigest, GoldenQuickCampaign) {
  const CampaignResult r = run_campaign(canonical_options());
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.sequences_run, 50u);
  EXPECT_EQ(r.corpus_digest, kGoldenDigest);
}

TEST(CampaignDigest, ReferenceModeIsBitIdentical) {
  FuzzOptions opt = canonical_options();
  opt.host_fast_path = false;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenDigest);
}

TEST(CampaignDigest, FastVsReferencePerSequence) {
  // Smaller campaign, but compared digest-by-digest so a divergence names
  // the exact sequence index instead of only folding into the corpus.
  FuzzOptions fast;
  fast.seed = 7;
  fast.sequences = 8;
  fast.jobs = 0;
  FuzzOptions ref = fast;
  ref.host_fast_path = false;
  const CampaignResult a = run_campaign(fast);
  const CampaignResult b = run_campaign(ref);
  EXPECT_EQ(a.failures, 0u);
  EXPECT_EQ(b.failures, 0u);
  ASSERT_EQ(a.sequence_digests.size(), b.sequence_digests.size());
  for (size_t i = 0; i < a.sequence_digests.size(); ++i) {
    EXPECT_EQ(a.sequence_digests[i], b.sequence_digests[i]) << "sequence " << i;
  }
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
}

}  // namespace
}  // namespace hn::fuzz
