// Campaign corpus-digest pins.
//
// The fuzz campaign's corpus digest folds every run's functional hash and
// cycle count, so it transitively witnesses the whole simulation's
// determinism contract: TLB replacement order, walk charges, bus traffic
// timing, oracle verdicts.  Two pins live here:
//
//   * the golden digest for the canonical quick campaign (--seed=1
//     --sequences=50) — any change to simulated behaviour, intended or
//     not, shows up as a digest mismatch and must be justified;
//   * fast-path vs reference-mode equality — the host fast path
//     (DESIGN.md §9) must reproduce the digest bit-for-bit, which is the
//     strongest whole-system statement of "wall-clock only".
#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "sim/trace_report.h"

namespace hn::fuzz {
namespace {

/// The canonical quick campaign: `hypernel_fuzz --seed=1 --sequences=50`.
FuzzOptions canonical_options() {
  FuzzOptions opt;
  opt.seed = 1;
  opt.sequences = 50;
  opt.jobs = 0;  // hardware concurrency; job count never changes results
  return opt;
}

/// Golden digest of the canonical campaign.  If an intentional simulator
/// change moves it, re-pin by running:
///   ./build/tools/hypernel_fuzz --seed=1 --sequences=50
/// and copying the reported corpus digest — after explaining in the
/// commit message why the simulated behaviour was allowed to change.
constexpr u64 kGoldenDigest = 0x8b76ae7ed9b7c385ull;

TEST(CampaignDigest, GoldenQuickCampaign) {
  const CampaignResult r = run_campaign(canonical_options());
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.sequences_run, 50u);
  EXPECT_EQ(r.corpus_digest, kGoldenDigest);
}

TEST(CampaignDigest, ReferenceModeIsBitIdentical) {
  FuzzOptions opt = canonical_options();
  opt.host_fast_path = false;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenDigest);
}

TEST(CampaignDigest, DecoupledModeIsBitIdentical) {
  // Temporal decoupling (DESIGN.md §14) batches cycle charges on a local
  // clock and folds on every observation, so every timestamp the digest
  // folds — fingerprint cycles, alert instants, detection latencies —
  // must be exact.  The golden digest is the whole-system witness.
  FuzzOptions opt = canonical_options();
  opt.decoupled_quantum = kDefaultDecoupledQuantum;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenDigest);
}

TEST(CampaignDigest, DecoupledSnapshotBootOddQuantumIsBitIdentical) {
  // The stacked fast paths compose: COW boot snapshots + decoupled
  // charging at an awkward quantum (prime, far from any charge size)
  // still land on the golden digest.
  FuzzOptions opt = canonical_options();
  opt.snapshot_boot = true;
  opt.decoupled_quantum = 61;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.corpus_digest, kGoldenDigest);
}

TEST(CampaignDigest, ProfileCaptureNeverPerturbsResults) {
  // --profile reads host wall clock only; digests must not move, and the
  // report must actually attribute time (step scopes fire every run).
  FuzzOptions opt;
  opt.seed = 7;
  opt.sequences = 6;
  opt.jobs = 1;
  FuzzOptions plain = opt;
  opt.profile = true;
  const CampaignResult a = run_campaign(opt);
  const CampaignResult b = run_campaign(plain);
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
  constexpr auto kStep = static_cast<unsigned>(obs::ProfileBucket::kStep);
  EXPECT_GT(a.profile.scopes[kStep], 0u);
  EXPECT_GT(a.profile.self_ns[kStep], 0u);
  u64 total = 0;
  for (unsigned i = 0; i < obs::ProfileReport::kBuckets; ++i) {
    total += b.profile.self_ns[i];
  }
  EXPECT_EQ(total, 0u);  // off by default: no attribution recorded
}

TEST(CampaignDigest, CapturedTraceIsJobsIndependent) {
  // The flight recorder piggybacks on deterministic reruns, so the
  // campaign trace blob — and everything rendered from it — must be
  // byte-identical at any worker count, like the digests it rides with.
  FuzzOptions one;
  one.seed = 7;
  one.sequences = 6;
  one.jobs = 1;
  one.capture_trace = true;
  FuzzOptions four = one;
  four.jobs = 4;
  const CampaignResult a = run_campaign(one);
  const CampaignResult b = run_campaign(four);
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
  ASSERT_FALSE(a.trace_blob.empty());
  EXPECT_EQ(a.trace_blob, b.trace_blob);

  sim::TraceData da, db;
  ASSERT_TRUE(sim::parse_trace(a.trace_blob, da).ok());
  ASSERT_TRUE(sim::parse_trace(b.trace_blob, db).ok());
  EXPECT_EQ(sim::render_attribution(sim::build_attribution(da), da.cpu_ghz),
            sim::render_attribution(sim::build_attribution(db), db.cpu_ghz));

  // Capture itself never perturbs results: same campaign without it.
  FuzzOptions plain = one;
  plain.capture_trace = false;
  EXPECT_EQ(run_campaign(plain).corpus_digest, a.corpus_digest);
}

TEST(CampaignDigest, FastVsReferencePerSequence) {
  // Smaller campaign, but compared digest-by-digest so a divergence names
  // the exact sequence index instead of only folding into the corpus.
  FuzzOptions fast;
  fast.seed = 7;
  fast.sequences = 8;
  fast.jobs = 0;
  FuzzOptions ref = fast;
  ref.host_fast_path = false;
  const CampaignResult a = run_campaign(fast);
  const CampaignResult b = run_campaign(ref);
  EXPECT_EQ(a.failures, 0u);
  EXPECT_EQ(b.failures, 0u);
  ASSERT_EQ(a.sequence_digests.size(), b.sequence_digests.size());
  for (size_t i = 0; i < a.sequence_digests.size(); ++i) {
    EXPECT_EQ(a.sequence_digests[i], b.sequence_digests[i]) << "sequence " << i;
  }
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
}

}  // namespace
}  // namespace hn::fuzz
