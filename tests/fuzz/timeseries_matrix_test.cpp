// Time-series determinism matrix (DESIGN.md §16) and the
// timeline/attribution cross-check.
//
// The sampler's contract is that the serialized HNTSERIE stream is a
// pure function of the simulated universe: byte-identical at any --jobs
// count, across fresh-boot vs --snapshot-boot, and under temporal
// decoupling — for every core count.  The matrix below pins all four
// axes (identity holds *within* each cores value; different core counts
// legitimately sample different universes).
//
// The cross-check pins satellite agreement between the two read sides:
// the per-window timeline and the causal attribution report are built
// from the same trace, so the sum of complete chains' end-to-end
// latencies must equal the hypersec.detect.e2e_cycles track total.
#include <gtest/gtest.h>

#include "attacks/scenario.h"
#include "attacks/scorecard.h"
#include "fuzz/executor.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "obs/timeseries.h"
#include "sim/trace_io.h"
#include "sim/trace_report.h"

namespace hn::fuzz {
namespace {

constexpr Cycles kInterval = 4096;

std::vector<Op> matrix_ops() {
  GeneratorOptions gen;
  gen.ops = 40;
  return generate_sequence(sequence_seed(1, 0), gen);
}

FuzzConfigSpec monitor_spec(unsigned cores) {
  FuzzConfigSpec spec;
  spec.name = "hypernel-monitor";
  spec.mode = hypernel::Mode::kHypernel;
  spec.monitor = true;
  spec.cores = cores;
  return spec;
}

std::vector<u8> sampled_stream(unsigned cores, bool snapshot_boot,
                               Cycles decoupled_quantum) {
  FuzzConfigSpec spec = monitor_spec(cores);
  spec.decoupled_quantum = decoupled_quantum;
  ExecutorOptions exec;
  exec.snapshot_boot = snapshot_boot;
  exec.sample_cycles = kInterval;
  return run_sequence(spec, matrix_ops(), exec).timeseries_blob;
}

TEST(TimeSeriesMatrix, ByteIdenticalAcrossBootAndTimingModes) {
  for (const unsigned cores : {1u, 2u, 4u}) {
    SCOPED_TRACE(testing::Message() << "cores=" << cores);
    const std::vector<u8> fresh_exact = sampled_stream(cores, false, 0);
    ASSERT_FALSE(fresh_exact.empty());

    // The stream actually sampled something: tracks and rows exist.
    obs::TimeSeriesData data;
    ASSERT_TRUE(obs::parse_timeseries(fresh_exact, data).ok());
    EXPECT_EQ(data.interval, kInterval);
    EXPECT_GT(data.tracks.size(), 0u);
    EXPECT_GT(data.samples.size(), 0u);

    EXPECT_EQ(sampled_stream(cores, true, 0), fresh_exact)
        << "snapshot-boot diverged";
    EXPECT_EQ(sampled_stream(cores, false, 61), fresh_exact)
        << "decoupled=61 diverged";
    EXPECT_EQ(sampled_stream(cores, true, 61), fresh_exact)
        << "snapshot-boot + decoupled=61 diverged";
  }
}

TEST(TimeSeriesMatrix, CampaignStreamIsJobsInvariant) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.sequences = 4;
  opt.ops = 30;
  opt.sample_cycles = kInterval;
  opt.jobs = 1;
  const CampaignResult serial = run_campaign(opt);
  opt.jobs = 4;
  const CampaignResult parallel = run_campaign(opt);
  ASSERT_FALSE(serial.timeseries_blob.empty());
  EXPECT_EQ(serial.timeseries_blob, parallel.timeseries_blob);
}

TEST(TimeSeriesMatrix, SamplingLeavesDigestsUntouched) {
  // Flipping the sampler on must not perturb the simulated universe:
  // fingerprints (and hence campaign digests) stay identical.
  const FuzzConfigSpec spec = monitor_spec(2);
  const std::vector<Op> ops = matrix_ops();
  ExecutorOptions plain;
  ExecutorOptions sampled;
  sampled.sample_cycles = kInterval;
  const RunResult a = run_sequence(spec, ops, plain);
  const RunResult b = run_sequence(spec, ops, sampled);
  EXPECT_TRUE(a.timeseries_blob.empty());
  EXPECT_FALSE(b.timeseries_blob.empty());
  EXPECT_EQ(a.fingerprint.functional_hash(), b.fingerprint.functional_hash());
  EXPECT_EQ(a.fingerprint.cycles, b.fingerprint.cycles);
  EXPECT_EQ(a.fingerprint.monitor_events, b.fingerprint.monitor_events);
  EXPECT_EQ(a.fingerprint.alerts, b.fingerprint.alerts);
}

TEST(TimeSeriesV3Trace, EmbedsSectionAndTimelineAgreesWithAttribution) {
  // Drive a real detection chain end to end with both the flight
  // recorder and the sampler armed.
  const attacks::AttackScenario* scenario =
      attacks::find_scenario("smp-cross-core-syscall-stub");
  ASSERT_NE(scenario, nullptr);
  FuzzConfigSpec spec;
  for (const FuzzConfigSpec& s : attacks::detector_configs()) {
    if (s.name == scenario->intended_detector) spec = s;
  }
  ASSERT_EQ(spec.name, scenario->intended_detector);
  spec.cores = 2;
  ExecutorOptions exec;
  exec.capture_trace = true;
  exec.sample_cycles = kInterval;
  const RunResult run = run_sequence(spec, scenario->ops, exec);
  ASSERT_FALSE(run.trace_blob.empty());

  sim::TraceData data;
  ASSERT_TRUE(sim::parse_trace(run.trace_blob, data).ok());
  EXPECT_EQ(data.version, 3u);
  ASSERT_FALSE(data.timeseries.samples.empty());

  // The embedded section is the byte-identical twin of the standalone
  // stream the run returned.
  obs::TimeSeriesData standalone;
  ASSERT_TRUE(obs::parse_timeseries(run.timeseries_blob, standalone).ok());
  standalone.cpu_ghz = data.timeseries.cpu_ghz;  // embedded carries the clock
  EXPECT_EQ(data.timeseries.interval, standalone.interval);
  EXPECT_EQ(data.timeseries.tracks, standalone.tracks);
  EXPECT_EQ(data.timeseries.samples, standalone.samples);

  // Cross-check: the attribution report and the live counter track must
  // agree on the total end-to-end detection latency (this workload is
  // small enough that no chain link is evicted from the trace ring).
  const sim::AttributionReport report = sim::build_attribution(data);
  ASSERT_GT(report.verdicts_total, 0u);
  EXPECT_EQ(report.broken_chains, 0u);
  EXPECT_EQ(report.verdicts_unattributed, 0u);
  u64 chain_sum = 0;
  for (const sim::DetectionChain& c : report.chains) {
    chain_sum += c.end_to_end;
  }
  EXPECT_EQ(chain_sum,
            data.timeseries.track_total("hypersec.detect.e2e_cycles"));

  // And the renderer reports exactly these totals.
  const std::string timeline = sim::render_timeline(data);
  EXPECT_NE(timeline.find("Load timeline:"), std::string::npos);
  EXPECT_NE(timeline.find("track hypersec.detect.e2e_cycles sum=" +
                          std::to_string(chain_sum)),
            std::string::npos);
}

TEST(TimeSeriesV3Trace, UnsampledTraceCarriesEmptySection) {
  FuzzConfigSpec spec = monitor_spec(1);
  ExecutorOptions exec;
  exec.capture_trace = true;
  const RunResult run = run_sequence(spec, matrix_ops(), exec);
  ASSERT_FALSE(run.trace_blob.empty());
  sim::TraceData data;
  ASSERT_TRUE(sim::parse_trace(run.trace_blob, data).ok());
  EXPECT_EQ(data.version, 3u);
  EXPECT_TRUE(data.timeseries.samples.empty());
  EXPECT_TRUE(run.timeseries_blob.empty());
}

}  // namespace
}  // namespace hn::fuzz
