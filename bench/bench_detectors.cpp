// Detector-overhead bench: the scorecard's benign workload replayed with
// no detector and under each detector configuration (object-integrity
// monitor, nested-kernel invariant checker, kernel-CFI monitor).
//
// Overhead is *simulated* cycles relative to the unmonitored baseline —
// the cost of non-cacheable monitored pages, bus-event dispatch and
// verdict evaluation, exactly what §7.2 charges to monitoring.  The
// workload is benign by construction, so every detector must stay silent:
// a single alert makes the run a false positive and the bench exits
// non-zero rather than reporting a polluted number.
//
//   bench_detectors [--jobs=N] [--metrics-out=F] [--trace-out=F]
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "attacks/scorecard.h"
#include "bench/bench_common.h"
#include "fuzz/executor.h"

namespace {

using namespace hn;

struct Cell {
  std::string config;
  Cycles cycles = 0;  // simulated cycles for the whole workload
  u64 events = 0;     // monitor events dispatched while staying silent
  u64 alerts = 0;     // must be zero (benign workload)
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  std::vector<fuzz::FuzzConfigSpec> specs;
  {
    fuzz::FuzzConfigSpec base;
    base.name = "no-detector";
    specs.push_back(base);
  }
  for (const fuzz::FuzzConfigSpec& spec : attacks::detector_configs()) {
    specs.push_back(spec);
  }
  const std::vector<fuzz::Op> ops = attacks::benign_workload();

  fuzz::ExecutorOptions exec;
  exec.collect_metrics = bench::metrics_enabled();
  exec.capture_trace = bench::trace_enabled();
  const std::vector<Cell> cells =
      bench::run_cells<Cell>(specs.size(), args.jobs, [&](u64 i) {
        fuzz::RunResult rec = fuzz::run_sequence(specs[i], ops, exec);
        bench::record_cell_metrics(i, rec.metrics);
        bench::record_cell_trace(i, std::move(rec.trace_blob));
        return Cell{specs[i].name, rec.fingerprint.cycles,
                    rec.fingerprint.monitor_events, rec.fingerprint.alerts};
      });

  std::printf("Detector overhead on the benign workload (%zu ops)\n",
              ops.size());
  bench::print_rule();
  std::printf("%-27s %14s %10s %10s %9s\n", "configuration", "sim cycles",
              "events", "alerts", "overhead");
  bench::print_rule();
  const double baseline = static_cast<double>(cells[0].cycles);
  bool clean = true;
  for (const Cell& cell : cells) {
    const double overhead =
        (static_cast<double>(cell.cycles) - baseline) / baseline * 100.0;
    std::printf("%-27s %14llu %10llu %10llu %+8.2f%%\n", cell.config.c_str(),
                static_cast<unsigned long long>(cell.cycles),
                static_cast<unsigned long long>(cell.events),
                static_cast<unsigned long long>(cell.alerts), overhead);
    if (cell.alerts != 0) clean = false;
  }
  bench::print_rule();
  if (!clean) {
    std::fprintf(stderr,
                 "FALSE POSITIVE: a detector alerted on the benign workload\n");
    return 1;
  }
  return bench::write_bench_metrics();
}
