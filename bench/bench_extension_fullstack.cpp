// Extension bench (beyond the paper's tables): the *full-stack* cost of
// Hypernel — isolation AND live word-granularity monitoring together —
// on the LMbench rows plus the lat_ctx / bandwidth extensions.
//
// The paper evaluates isolation (§7.1, MBM detached) separately from
// monitoring efficiency (§7.2, counts only).  A deployer wants the
// combined number: what do kernel operations cost while the cred/dentry
// monitor is armed?  Monitored slab pages are non-cacheable, so paths
// that touch dentries (stat, fork's cred bump) pay real bus latency.
#include <cstdio>

#include "bench/bench_common.h"
#include "secapps/object_monitor.h"
#include "workloads/lmbench.h"

namespace {

using namespace hn;

std::vector<workloads::LmbenchResult> run(bool monitored) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.enable_mbm = monitored;
  cfg.metrics = hn::bench::metrics_enabled();
  auto sys = hypernel::System::create(cfg).value();
  std::unique_ptr<secapps::ObjectIntegrityMonitor> monitor;
  if (monitored) {
    monitor = std::make_unique<secapps::ObjectIntegrityMonitor>(
        *sys, secapps::Granularity::kSensitiveFields);
    if (!monitor->install().ok()) std::abort();
  }
  workloads::LmbenchSuite suite(*sys, 32);
  auto results = suite.run_all();
  results.push_back(suite.context_switch());
  results.push_back(suite.memory_bandwidth());
  hn::bench::record_cell_metrics(monitored ? 1 : 0, *sys);
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  hn::bench::parse_args(argc, argv);
  std::printf("Extension: full-stack Hypernel (isolation + armed "
              "word-granularity monitor)\n\n");
  const auto plain = run(false);
  const auto armed = run(true);
  std::printf("%-18s %14s %18s %10s\n", "operation", "Hypersec only",
              "+ cred/dentry mon", "delta");
  hn::bench::print_rule(66);
  for (size_t i = 0; i < plain.size(); ++i) {
    const bool bandwidth = plain[i].name.find("MB/s") != std::string::npos;
    std::printf("%-18s %12.2f%s %16.2f%s %+9.1f%%\n", plain[i].name.c_str(),
                plain[i].us, bandwidth ? "  " : "us", armed[i].us,
                bandwidth ? "  " : "us",
                100.0 * (armed[i].us / plain[i].us - 1.0) *
                    (bandwidth ? -1.0 : 1.0));
  }
  std::printf(
      "\narming the monitor costs where dentries/creds sit on the hot path "
      "(stat's lookup\ntouches non-cacheable dentry words; fork bumps the "
      "shared cred) and is free elsewhere\n— the word-granularity bill, "
      "itemised.\n");
  return hn::bench::write_bench_metrics();
}
