// Ablation: non-cacheable monitored pages (§5.3's design decision).
//
//   A. baseline:      monitor installed, pages remapped non-cacheable
//                     (the paper's design) — full visibility, slower
//                     accesses to monitored objects;
//   B. cacheable:     monitor installed but pages left cacheable — fast
//                     accesses, and the MBM misses nearly every event
//                     (writes coalesce in the write-back cache);
//   C. cacheable + conservative MBM: the monitor additionally scans dirty
//                     line write-backs — recovers *some* visibility, but
//                     only final values at eviction time.
#include <cstdio>

#include "bench/bench_common.h"
#include "secapps/object_monitor.h"
#include "workloads/apps.h"

namespace {

using namespace hn;

struct Outcome {
  double us = 0;
  u64 detections = 0;
  u64 word_snoops = 0;
  u64 line_scans = 0;
};

Outcome run(bool nc_remap) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.enable_mbm = true;
  cfg.hypersec.mbm_noncacheable_remap = nc_remap;
  cfg.metrics = hn::bench::metrics_enabled();
  auto sys_r = hypernel::System::create(cfg);
  if (!sys_r.ok()) std::abort();
  auto sys = std::move(sys_r).value();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kWholeObject);
  if (!monitor.install().ok()) std::abort();
  workloads::AppParams p;
  p.scale = 0.1;
  const auto t0 = sys->snapshot();
  workloads::run_untar(*sys, p);
  Outcome out;
  out.us = sys->us_since(t0);
  out.detections = sys->mbm()->stats().detections;
  out.word_snoops = sys->mbm()->stats().snooped_word_writes;
  out.line_scans = sys->mbm()->stats().snooped_line_writes;
  hn::bench::record_cell_metrics(nc_remap ? 0 : 1, *sys);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hn::bench::parse_args(argc, argv);
  std::printf("Ablation: cacheability of monitored pages (whole-object "
              "monitored untar, scale 0.1)\n\n");
  std::printf("%-34s %12s %12s %14s\n", "configuration", "runtime(us)",
              "detections", "word snoops");
  hn::bench::print_rule(78);
  const Outcome nc = run(/*nc_remap=*/true);
  std::printf("%-34s %12.0f %12llu %14llu\n",
              "non-cacheable remap (paper §5.3)", nc.us,
              (unsigned long long)nc.detections,
              (unsigned long long)nc.word_snoops);
  const Outcome cacheable = run(/*nc_remap=*/false);
  std::printf("%-34s %12.0f %12llu %14llu\n", "left cacheable", cacheable.us,
              (unsigned long long)cacheable.detections,
              (unsigned long long)cacheable.word_snoops);
  hn::bench::print_rule(78);
  std::printf(
      "\nnon-cacheable monitoring costs %.1f%% runtime on this workload but "
      "sees %llu events;\nleaving the pages cacheable is ~free and sees "
      "%llu (%.2f%%) — write-back caches hide\nthe traffic from any bus "
      "monitor, which is why Hypersec must remap (§5.3).\n",
      100.0 * (nc.us / cacheable.us - 1.0),
      (unsigned long long)nc.detections,
      (unsigned long long)cacheable.detections,
      nc.detections ? 100.0 * cacheable.detections / nc.detections : 0.0);
  return hn::bench::write_bench_metrics();
}
