// Figure 5 micro-architecture benchmarks (google-benchmark): host-side
// throughput of each MBM block plus the simulated behavioural numbers
// (bitmap-cache hit rate, FIFO headroom) under a snoop stream.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "mbm/bitmap_cache.h"
#include "mbm/bitmap_math.h"
#include "mbm/event_ring.h"
#include "mbm/monitor.h"
#include "mbm/write_fifo.h"
#include "sim/machine.h"

namespace {

using namespace hn;

void BM_BitmapMath(benchmark::State& state) {
  SplitMix64 rng(1);
  u64 sink = 0;
  for (auto _ : state) {
    const PhysAddr pa = rng.next_below(1 << 27);
    const u64 bit = mbm::bit_index_for(pa, 0);
    sink ^= mbm::bitmap_word_addr(bit, 0x7000000) + mbm::bit_position(bit);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_BitmapMath);

void BM_BitmapCacheLookup(benchmark::State& state) {
  mbm::BitmapCache cache(static_cast<unsigned>(state.range(0)));
  SplitMix64 rng(2);
  for (unsigned i = 0; i < state.range(0); ++i) cache.fill(i * 8, i);
  u64 sink = 0;
  for (auto _ : state) {
    sink ^= cache.lookup((rng.next_below(state.range(0) * 2)) * 8).value;
  }
  benchmark::DoNotOptimize(sink);
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) / (cache.hits() + cache.misses());
}
BENCHMARK(BM_BitmapCacheLookup)->Arg(4)->Arg(16)->Arg(64);

void BM_WriteFifoOffer(benchmark::State& state) {
  mbm::WriteFifo fifo(64);
  Cycles t = 0;
  for (auto _ : state) {
    fifo.offer(mbm::CapturedWrite{}, t, 12);
    t += 20;
  }
  state.counters["drops"] = static_cast<double>(fifo.drops());
}
BENCHMARK(BM_WriteFifoOffer);

void BM_EventRingPushPop(benchmark::State& state) {
  sim::Machine machine{sim::MachineConfig{}};
  mbm::EventRing ring(machine, 0x100000, 4096);
  mbm::MonitorEvent ev;
  u64 i = 0;
  for (auto _ : state) {
    ring.push(mbm::MonitorEvent{i * 8, i});
    ring.pop(ev);
    ++i;
  }
  benchmark::DoNotOptimize(ev);
}
BENCHMARK(BM_EventRingPushPop);

/// Full pipeline: snooped word writes with `density`-per-mille of them
/// hitting monitored words.  Reports detections and the MBM-internal
/// bitmap-fetch rate (what the bitmap cache saves).
void BM_SnoopPipeline(benchmark::State& state) {
  sim::Machine machine{sim::MachineConfig{}};
  if (hn::bench::metrics_enabled()) machine.obs().set_enabled(true);
  mbm::MbmConfig cfg;
  cfg.watch_base = 0;
  cfg.watch_size = machine.secure_base();
  cfg.bitmap_base = machine.secure_base();
  cfg.ring_base =
      page_align_up(cfg.bitmap_base + mbm::bitmap_bytes_for(cfg.watch_size));
  cfg.ring_entries = 1 << 16;
  auto mbm = std::make_unique<mbm::MemoryBusMonitor>(machine, cfg);
  machine.gic().set_enabled(sim::kIrqMbm, false);  // count-only run

  // Monitor every 1000/density-th word of a 1 MiB window.
  const u64 density = state.range(0);
  for (PhysAddr pa = 0x100000; pa < 0x200000; pa += kWordSize) {
    if ((pa / kWordSize) % 1000 < density) {
      const u64 bit = mbm::bit_index_for(pa, 0);
      const PhysAddr wa = mbm::bitmap_word_addr(bit, cfg.bitmap_base);
      machine.phys().write64(
          wa, machine.phys().read64(wa) | (u64{1} << mbm::bit_position(bit)));
    }
  }

  SplitMix64 rng(3);
  u64 writes = 0;
  for (auto _ : state) {
    sim::BusTransaction t;
    t.op = sim::BusOp::kWriteWord;
    t.paddr = 0x100000 + word_align_down(rng.next_below(1 << 20));
    t.value = writes;
    t.timestamp = writes * 200;  // paced stream
    machine.bus().issue(t);
    ++writes;
  }
  const mbm::MbmStats s = mbm->stats();
  state.counters["detect_rate"] =
      static_cast<double>(s.detections) / static_cast<double>(writes);
  state.counters["bitmap_cache_hit"] =
      static_cast<double>(s.bitmap_cache_hits) /
      static_cast<double>(s.bitmap_cache_hits + s.bitmap_cache_misses);
  state.counters["fifo_drops"] = static_cast<double>(s.fifo_drops);
  hn::bench::record_cell_metrics(density, machine.obs().snapshot());
}
BENCHMARK(BM_SnoopPipeline)->Arg(1)->Arg(50)->Arg(500);

}  // namespace

// Custom main: peel off the repo-common --metrics-out/--jobs flags before
// google-benchmark sees (and rejects) them.
int main(int argc, char** argv) {
  hn::bench::parse_and_strip_args(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return hn::bench::write_bench_metrics();
}
