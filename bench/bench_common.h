// Shared helpers for the benchmark harnesses: system construction per
// evaluation configuration, paper-reference tables, and the parallel
// config-matrix driver.
//
// Every bench cell (one mode x benchmark x granularity point) builds its
// own System — a fresh simulated universe — so cells fan out across
// worker threads with run_cells() and land in a slot array in index
// order: the printed tables are byte-identical at any --jobs value,
// only wall-clock changes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/sharded_runner.h"
#include "hypernel/system.h"
#include "obs/export.h"
#include "obs/timeseries.h"
#include "sim/trace_io.h"

namespace hn::bench {

/// Command-line arguments every bench driver accepts.
struct BenchArgs {
  unsigned jobs = 0;           // 0 = hardware concurrency
  std::string metrics_out;     // empty = observability off
  std::string trace_out;       // empty = flight recorder off
  std::string timeseries_out;  // empty = time-series sampling off
  Cycles sample_cycles = 0;    // 0 = default when timeseries_out set
};

namespace detail {

inline BenchArgs& args() {
  static BenchArgs a;
  return a;
}

/// Per-cell metrics snapshots, keyed by cell index so the final fold
/// happens in index order regardless of which worker finished when.
struct MetricsSink {
  std::mutex mu;
  std::map<u64, obs::Snapshot> cells;
};

inline MetricsSink& metrics_sink() {
  static MetricsSink s;
  return s;
}

/// Per-cell flight-recorder blobs; the lowest-index cell's trace is what
/// --trace-out writes, so the exported file is jobs-independent.
struct TraceSink {
  std::mutex mu;
  std::map<u64, std::vector<u8>> cells;
};

inline TraceSink& trace_sink() {
  static TraceSink s;
  return s;
}

/// Per-cell HNTSERIE streams, same lowest-index-wins contract as the
/// trace sink, so --timeseries-out is jobs-independent too.
struct TimeSeriesSink {
  std::mutex mu;
  std::map<u64, std::vector<u8>> cells;
};

inline TimeSeriesSink& timeseries_sink() {
  static TimeSeriesSink s;
  return s;
}

}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() {
  return !detail::args().metrics_out.empty();
}

[[nodiscard]] inline bool trace_enabled() {
  return !detail::args().trace_out.empty();
}

[[nodiscard]] inline bool timeseries_enabled() {
  return !detail::args().timeseries_out.empty();
}

/// Effective sampling interval: --sample-cycles if given, else the
/// library default when --timeseries-out asked for a stream, else 0.
[[nodiscard]] inline Cycles sample_interval() {
  const BenchArgs& a = detail::args();
  if (a.sample_cycles != 0) return a.sample_cycles;
  return a.timeseries_out.empty() ? 0 : obs::kDefaultSampleCycles;
}

/// Build a system in the §7.1 performance setup: Hypersec without the MBM
/// ("only Hypersec is working in the case of Hypernel").
inline std::unique_ptr<hypernel::System> make_perf_system(hypernel::Mode mode) {
  hypernel::SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  cfg.metrics = metrics_enabled() || trace_enabled();
  cfg.machine.sample_cycles = sample_interval();
  auto sys = hypernel::System::create(cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().message().c_str());
    std::abort();
  }
  if (trace_enabled()) sys.value()->machine().trace().set_enabled(true);
  return std::move(sys).value();
}

/// Build a system in the §7.2 monitoring setup: Hypernel with the MBM.
inline std::unique_ptr<hypernel::System> make_monitor_system() {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.enable_mbm = true;
  cfg.metrics = metrics_enabled() || trace_enabled();
  cfg.machine.sample_cycles = sample_interval();
  auto sys = hypernel::System::create(cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().message().c_str());
    std::abort();
  }
  if (trace_enabled()) sys.value()->machine().trace().set_enabled(true);
  return std::move(sys).value();
}

/// Stash one cell's metrics snapshot.  Safe from any worker thread;
/// no-op unless --metrics-out was given.
inline void record_cell_metrics(u64 index, const obs::Snapshot& snap) {
  if (!metrics_enabled()) return;
  detail::MetricsSink& sink = detail::metrics_sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.cells[index].merge(snap);
}

/// Stash one cell's pre-serialized flight-recorder blob — for drivers
/// whose cells own their trace capture (fuzz-executor based benches get
/// the blob from RunResult instead of a live System).
inline void record_cell_trace(u64 index, std::vector<u8> blob) {
  if (!trace_enabled() || blob.empty()) return;
  detail::TraceSink& sink = detail::trace_sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.cells.emplace(index, std::move(blob));
}

/// Convenience overload: snapshot a System's registry before it dies.
/// Also stashes the cell's flight-recorder blob when --trace-out is on.
inline void record_cell_metrics(u64 index, hypernel::System& sys) {
  if (trace_enabled()) {
    detail::TraceSink& sink = detail::trace_sink();
    std::lock_guard<std::mutex> lock(sink.mu);
    sink.cells.emplace(index, sim::capture_trace(sys.machine()));
  }
  if (timeseries_enabled()) {
    detail::TimeSeriesSink& sink = detail::timeseries_sink();
    std::lock_guard<std::mutex> lock(sink.mu);
    sink.cells.emplace(index, sim::capture_timeseries(sys.machine()));
  }
  if (!metrics_enabled()) return;
  record_cell_metrics(index, sys.metrics_snapshot());
}

/// Fold every recorded cell (index order) and write --metrics-out.
/// Returns 0, or 1 on I/O failure — benches `return write_bench_metrics()`
/// (or combine it with their own exit code) as their last statement.
inline int write_bench_metrics() {
  if (trace_enabled()) {
    detail::TraceSink& traces = detail::trace_sink();
    std::lock_guard<std::mutex> lock(traces.mu);
    const std::string& path = detail::args().trace_out;
    if (traces.cells.empty()) {
      std::fprintf(stderr, "trace: no cell recorded a trace; %s not written\n",
                   path.c_str());
    } else if (!sim::write_trace_file(traces.cells.begin()->second, path)) {
      std::fprintf(stderr, "trace: failed to write %s\n", path.c_str());
      return 1;
    } else {
      std::fprintf(stderr, "trace: cell %llu trace written to %s\n",
                   static_cast<unsigned long long>(traces.cells.begin()->first),
                   path.c_str());
    }
  }
  if (timeseries_enabled()) {
    detail::TimeSeriesSink& streams = detail::timeseries_sink();
    std::lock_guard<std::mutex> lock(streams.mu);
    const std::string& path = detail::args().timeseries_out;
    if (streams.cells.empty()) {
      std::fprintf(stderr,
                   "timeseries: no cell recorded a stream; %s not written\n",
                   path.c_str());
    } else if (!obs::write_timeseries_file(streams.cells.begin()->second,
                                           path)) {
      std::fprintf(stderr, "timeseries: failed to write %s\n", path.c_str());
      return 1;
    } else {
      std::fprintf(
          stderr, "timeseries: cell %llu stream written to %s\n",
          static_cast<unsigned long long>(streams.cells.begin()->first),
          path.c_str());
    }
  }
  if (!metrics_enabled()) return 0;
  detail::MetricsSink& sink = detail::metrics_sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  obs::Snapshot total;
  for (const auto& [index, snap] : sink.cells) total.merge(snap);
  const std::string& path = detail::args().metrics_out;
  if (!obs::write_metrics_file(total, path)) {
    std::fprintf(stderr, "metrics: failed to write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "metrics: %zu entries (%zu cells) written to %s\n",
               total.entries.size(), sink.cells.size(), path.c_str());
  return 0;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Parse the common bench arguments (--jobs=N, --metrics-out=F) from
/// argv, storing them where make_*_system / record_cell_metrics /
/// write_bench_metrics can see them.  Unknown arguments are a usage
/// error so typos don't silently run the default.
inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs parsed;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      parsed.jobs =
          static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 0));
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      parsed.metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      parsed.trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--timeseries-out=", 17) == 0) {
      parsed.timeseries_out = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--sample-cycles=", 16) == 0) {
      parsed.sample_cycles = std::strtoull(argv[i] + 16, nullptr, 0);
    } else if (std::strcmp(argv[i], "--sample-cycles") == 0) {
      parsed.sample_cycles = obs::kDefaultSampleCycles;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs=N] [--metrics-out=F] [--trace-out=F]\n"
                   "          [--timeseries-out=F] [--sample-cycles[=N]]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  detail::args() = parsed;
  return parsed;
}

/// Back-compat shim for drivers that only care about the job count.
inline unsigned parse_jobs(int argc, char** argv) {
  return parse_args(argc, argv).jobs;
}

/// For drivers whose framework owns the command line (google-benchmark):
/// extract --jobs/--metrics-out from argv, compacting it in place, and
/// leave every other flag for the framework's own parser.
inline BenchArgs parse_and_strip_args(int* argc, char** argv) {
  BenchArgs parsed;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      parsed.jobs =
          static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 0));
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      parsed.metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      parsed.trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--timeseries-out=", 17) == 0) {
      parsed.timeseries_out = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--sample-cycles=", 16) == 0) {
      parsed.sample_cycles = std::strtoull(argv[i] + 16, nullptr, 0);
    } else if (std::strcmp(argv[i], "--sample-cycles") == 0) {
      parsed.sample_cycles = obs::kDefaultSampleCycles;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  detail::args() = parsed;
  return parsed;
}

/// Run `fn(i)` for every cell i in [0, n) across `jobs` workers (0 =
/// hardware concurrency), returning results in index order.  Wall time
/// and per-worker stats go to stderr so table output stays clean.
template <typename Result, typename Fn>
std::vector<Result> run_cells(u64 n, unsigned jobs, Fn&& fn) {
  exec::ShardOptions opt;
  opt.jobs = jobs;
  exec::ShardReport report;
  std::vector<Result> results =
      exec::run_sharded<Result>(n, std::forward<Fn>(fn), opt, &report);
  std::fprintf(stderr, "bench exec: %llu cells, jobs=%u, wall=%.1fms\n",
               static_cast<unsigned long long>(n),
               jobs == 0 ? exec::ThreadPool::default_parallelism() : jobs,
               report.wall_ms);
  return results;
}

}  // namespace hn::bench
