// Shared helpers for the benchmark harnesses: system construction per
// evaluation configuration, paper-reference tables, and the parallel
// config-matrix driver.
//
// Every bench cell (one mode x benchmark x granularity point) builds its
// own System — a fresh simulated universe — so cells fan out across
// worker threads with run_cells() and land in a slot array in index
// order: the printed tables are byte-identical at any --jobs value,
// only wall-clock changes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/sharded_runner.h"
#include "hypernel/system.h"

namespace hn::bench {

/// Build a system in the §7.1 performance setup: Hypersec without the MBM
/// ("only Hypersec is working in the case of Hypernel").
inline std::unique_ptr<hypernel::System> make_perf_system(hypernel::Mode mode) {
  hypernel::SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  auto sys = hypernel::System::create(cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().message().c_str());
    std::abort();
  }
  return std::move(sys).value();
}

/// Build a system in the §7.2 monitoring setup: Hypernel with the MBM.
inline std::unique_ptr<hypernel::System> make_monitor_system() {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.enable_mbm = true;
  auto sys = hypernel::System::create(cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().message().c_str());
    std::abort();
  }
  return std::move(sys).value();
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Parse --jobs=N from a bench's argv (default: hardware concurrency;
/// --jobs=1 runs the cells sequentially on the main thread).  Unknown
/// arguments are a usage error so typos don't silently run the default.
inline unsigned parse_jobs(int argc, char** argv) {
  unsigned jobs = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 0));
    } else {
      std::fprintf(stderr, "usage: %s [--jobs=N]\n", argv[0]);
      std::exit(2);
    }
  }
  return jobs;
}

/// Run `fn(i)` for every cell i in [0, n) across `jobs` workers (0 =
/// hardware concurrency), returning results in index order.  Wall time
/// and per-worker stats go to stderr so table output stays clean.
template <typename Result, typename Fn>
std::vector<Result> run_cells(u64 n, unsigned jobs, Fn&& fn) {
  exec::ShardOptions opt;
  opt.jobs = jobs;
  exec::ShardReport report;
  std::vector<Result> results =
      exec::run_sharded<Result>(n, std::forward<Fn>(fn), opt, &report);
  std::fprintf(stderr, "bench exec: %llu cells, jobs=%u, wall=%.1fms\n",
               static_cast<unsigned long long>(n),
               jobs == 0 ? exec::ThreadPool::default_parallelism() : jobs,
               report.wall_ms);
  return results;
}

}  // namespace hn::bench
