// Shared helpers for the benchmark harnesses: system construction per
// evaluation configuration and paper-reference tables.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hypernel/system.h"

namespace hn::bench {

/// Build a system in the §7.1 performance setup: Hypersec without the MBM
/// ("only Hypersec is working in the case of Hypernel").
inline std::unique_ptr<hypernel::System> make_perf_system(hypernel::Mode mode) {
  hypernel::SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  auto sys = hypernel::System::create(cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().message().c_str());
    std::abort();
  }
  return std::move(sys).value();
}

/// Build a system in the §7.2 monitoring setup: Hypernel with the MBM.
inline std::unique_ptr<hypernel::System> make_monitor_system() {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.enable_mbm = true;
  auto sys = hypernel::System::create(cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "system creation failed: %s\n",
                 sys.status().message().c_str());
    std::abort();
  }
  return std::move(sys).value();
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace hn::bench
