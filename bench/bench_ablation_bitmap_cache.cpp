// Ablation: the MBM bitmap cache (§6.3 — "accessing the main memory and
// fetching the bitmap data for every write event in the same region is
// inefficient").  Runs the monitored untar workload with the cache
// enabled (several sizes) and disabled, reporting main-memory bitmap
// fetches, hit rates, and FIFO drops (a slower translator drains slower).
#include <cstdio>

#include "bench/bench_common.h"
#include "secapps/object_monitor.h"
#include "workloads/apps.h"

namespace {

struct Outcome {
  hn::u64 fetches = 0;
  hn::u64 drops = 0;
  double hit_rate = 0;
  hn::u64 detections = 0;
};

Outcome run(hn::u64 cell, bool cache_enabled, unsigned entries) {
  hn::hypernel::SystemConfig cfg;
  cfg.mode = hn::hypernel::Mode::kHypernel;
  cfg.enable_mbm = true;
  cfg.mbm_bitmap_cache_enabled = cache_enabled;
  cfg.mbm_bitmap_cache_entries = entries;
  cfg.metrics = hn::bench::metrics_enabled();
  auto sys = hn::hypernel::System::create(cfg).value();
  hn::secapps::ObjectIntegrityMonitor monitor(
      *sys, hn::secapps::Granularity::kWholeObject);
  if (!monitor.install().ok()) std::abort();
  hn::workloads::AppParams p;
  p.scale = 0.1;
  hn::workloads::run_untar(*sys, p);

  const hn::mbm::MbmStats s = sys->mbm()->stats();
  Outcome out;
  out.fetches = s.bitmap_fetches;
  out.drops = s.fifo_drops;
  out.detections = s.detections;
  const hn::u64 lookups = s.bitmap_cache_hits + s.bitmap_cache_misses;
  out.hit_rate = lookups ? 100.0 * s.bitmap_cache_hits / lookups : 0;
  hn::bench::record_cell_metrics(cell, *sys);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hn::bench::parse_args(argc, argv);
  std::printf("Ablation: MBM bitmap cache (whole-object monitored untar, "
              "scale 0.1)\n\n");
  std::printf("%-22s %16s %10s %12s %12s\n", "configuration",
              "bitmap fetches", "hit rate", "fifo drops", "detections");
  hn::bench::print_rule(78);
  struct Case {
    const char* name;
    bool enabled;
    unsigned entries;
  };
  const Case cases[] = {
      {"cache off", false, 16},
      {"cache 4 entries", true, 4},
      {"cache 16 entries", true, 16},
      {"cache 64 entries", true, 64},
  };
  Outcome base{};
  hn::u64 cell = 0;
  for (const Case& c : cases) {
    const Outcome o = run(cell++, c.enabled, c.entries);
    if (!c.enabled) base = o;
    std::printf("%-22s %16llu %9.1f%% %12llu %12llu\n", c.name,
                (unsigned long long)o.fetches, o.hit_rate,
                (unsigned long long)o.drops, (unsigned long long)o.detections);
  }
  std::printf(
      "\nthe cache removes the per-event main-memory bitmap read that "
      "would otherwise cost\na DRAM round trip per snooped write — why "
      "§6.3 spends gates on it.\n");
  (void)base;
  return hn::bench::write_bench_metrics();
}
