// Ablation: MBM buffer sizing — write-capture FIFO depth and event ring
// capacity vs lost events under burst (the ~55k-gate budget of §6 has to
// be spent somewhere).  Bursts come from whole-object monitoring of the
// dentry-heavy untar workload with delivery artificially deferred, the
// worst realistic pressure the monitor sees.
#include <cstdio>

#include "bench/bench_common.h"
#include "secapps/object_monitor.h"
#include "sim/irq.h"
#include "workloads/apps.h"

namespace {

using namespace hn;

struct Outcome {
  u64 fifo_drops = 0;
  u64 ring_drops = 0;
  u64 detections = 0;
};

Outcome run(u64 cell, unsigned fifo_depth, u64 ring_entries, bool defer_irq) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.enable_mbm = true;
  cfg.mbm_fifo_depth = fifo_depth;
  cfg.mbm_ring_entries = ring_entries;
  cfg.metrics = hn::bench::metrics_enabled();
  auto sys = hypernel::System::create(cfg).value();
  secapps::ObjectIntegrityMonitor monitor(
      *sys, secapps::Granularity::kWholeObject);
  if (!monitor.install().ok()) std::abort();
  if (defer_irq) {
    // Interrupt delivery deferred (e.g. Hypersec busy): the ring must
    // absorb the burst alone.
    sys->machine().gic().set_enabled(sim::kIrqMbm, false);
  }
  workloads::AppParams p;
  p.scale = 0.05;
  workloads::run_untar(*sys, p);
  Outcome out;
  out.fifo_drops = sys->mbm()->stats().fifo_drops;
  out.ring_drops = sys->mbm()->stats().ring_overflow_drops;
  out.detections = sys->mbm()->stats().detections;
  hn::bench::record_cell_metrics(cell, *sys);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hn::bench::parse_args(argc, argv);
  std::printf("Ablation: MBM FIFO depth and ring capacity (whole-object "
              "monitored untar, scale 0.05)\n\n");
  std::printf("-- immediate interrupt delivery (normal operation) --\n");
  std::printf("%-26s %12s %12s %12s\n", "sizing", "fifo drops", "ring drops",
              "detections");
  hn::bench::print_rule(70);
  hn::u64 cell = 0;
  for (const unsigned depth : {2u, 8u, 64u}) {
    const Outcome o = run(cell++, depth, 8192, /*defer_irq=*/false);
    std::printf("fifo %-3u / ring 8192      %12llu %12llu %12llu\n", depth,
                (unsigned long long)o.fifo_drops,
                (unsigned long long)o.ring_drops,
                (unsigned long long)o.detections);
  }
  std::printf("\n-- deferred delivery (ring absorbs the whole run) --\n");
  std::printf("%-26s %12s %12s %12s\n", "sizing", "fifo drops", "ring drops",
              "queued");
  hn::bench::print_rule(70);
  for (const u64 ring : {256ull, 4096ull, 65536ull}) {
    const Outcome o = run(cell++, 64, ring, /*defer_irq=*/true);
    std::printf("fifo 64  / ring %-8llu %12llu %12llu %12llu\n",
                (unsigned long long)ring, (unsigned long long)o.fifo_drops,
                (unsigned long long)o.ring_drops,
                (unsigned long long)o.detections);
  }
  std::printf(
      "\nwith synchronous delivery even a shallow FIFO suffices (the CPU "
      "stalls on the IRQ\nbefore the next write); the ring only needs depth "
      "when Hypersec defers draining.\n");
  return hn::bench::write_bench_metrics();
}
