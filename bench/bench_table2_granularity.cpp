// Reproduces Table 2: "Comparison of the number of trap events" — MBM
// interrupts while monitoring the cred/dentry kernel objects, under the
// two security-solution variants of §7.2:
//
//   page-granularity estimate = whole-object monitoring (every write to
//       any word of a monitored object raises an event; equal to the fault
//       count of a page-granularity scheme with objects aggregated onto
//       monitored pages — the paper's estimation argument);
//   word-granularity           = sensitive-fields-only monitoring.
//
// The paper's headline: word granularity needs only ~6.2% of the traps.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "secapps/object_monitor.h"
#include "workloads/apps.h"

namespace {

struct PaperRow {
  const char* name;
  double page_gran;
  double word_gran;
};
constexpr PaperRow kPaper[] = {
    {"whetstone", 525, 48},   {"dhrystone", 637, 39},
    {"untar", 2173870, 96467}, {"iozone", 1510, 117},
    {"apache", 48650, 1754},
};

hn::u64 run_with_monitor(hn::u64 cell, const char* app,
                         hn::secapps::Granularity granularity) {
  auto sys = hn::bench::make_monitor_system();
  hn::secapps::ObjectIntegrityMonitor monitor(*sys, granularity);
  if (!monitor.install().ok()) {
    std::fprintf(stderr, "monitor install failed\n");
    std::abort();
  }
  hn::workloads::AppParams p;
  hn::workloads::run_app_by_name(*sys, app, p);
  hn::bench::record_cell_metrics(cell, *sys);
  return sys->mbm()->stats().detections;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = hn::bench::parse_args(argc, argv).jobs;
  constexpr int kRows = 5;

  // 5 benchmarks x 2 granularities = 10 independent monitored systems.
  const auto cells = hn::bench::run_cells<hn::u64>(
      2 * kRows, jobs, [&](hn::u64 cell) {
        const PaperRow& row = kPaper[cell / 2];
        return run_with_monitor(
            cell, row.name,
            cell % 2 == 0 ? hn::secapps::Granularity::kWholeObject
                          : hn::secapps::Granularity::kSensitiveFields);
      });

  std::printf("Table 2: number of trap events (MBM interrupts) while\n");
  std::printf("monitoring cred+dentry objects during each benchmark\n\n");
  std::printf("%-12s %16s %22s %8s | %16s %16s\n", "benchmark", "page-gran",
              "word-gran", "ratio", "(paper page)", "(paper word)");
  hn::bench::print_rule(100);

  double ratio_sum = 0;
  hn::u64 total_page = 0;
  hn::u64 total_word = 0;
  for (int r = 0; r < kRows; ++r) {
    const PaperRow& row = kPaper[r];
    const hn::u64 page = cells[static_cast<size_t>(r) * 2];
    const hn::u64 word = cells[static_cast<size_t>(r) * 2 + 1];
    const double ratio = page == 0 ? 0 : 100.0 * word / page;
    ratio_sum += ratio;
    total_page += page;
    total_word += word;
    std::printf("%-12s %16llu %15llu (%4.1f%%) %8s | %16.0f %11.0f (%.1f%%)\n",
                row.name, static_cast<unsigned long long>(page),
                static_cast<unsigned long long>(word), ratio, "",
                row.page_gran, row.word_gran,
                100.0 * row.word_gran / row.page_gran);
  }
  hn::bench::print_rule(100);
  std::printf(
      "overall: word-granularity requires %.1f%% of page-granularity traps "
      "(paper: ~6.2%%; per-benchmark mean %.1f%%)\n",
      100.0 * total_word / total_page, ratio_sum / 5);
  return hn::bench::write_bench_metrics();
}
