// Reproduces Table 1: "Execution time of kernel operations (us)" — the
// LMbench-style microbenchmarks under Native, KVM-guest and Hypernel.
//
// Paper reference values are printed alongside the measured ones.  The
// Native column is what the kernel-cost calibration targets; the KVM and
// Hypernel columns emerge from mechanism (stage-2 walks and faults; TVM
// traps and page-table hypercalls).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "workloads/lmbench.h"

namespace {

struct PaperRow {
  const char* name;
  double native;
  double kvm;
  double hypernel;
};

// Table 1 of the paper, verbatim.
constexpr PaperRow kPaper[] = {
    {"syscall stat", 1.92, 1.83, 1.94},
    {"signal install", 0.68, 0.75, 0.68},
    {"signal ovh", 2.96, 3.38, 2.98},
    {"pipe lat", 10.07, 11.45, 10.68},
    {"socket lat", 13.76, 16.08, 14.51},
    {"fork+exit", 271.68, 337.84, 314.77},
    {"fork+execv", 285.53, 351.81, 340.70},
    {"page fault", 1.57, 1.98, 1.89},
    {"mmap", 24.60, 28.40, 27.50},
};

}  // namespace

int main(int argc, char** argv) {
  using hn::hypernel::Mode;
  constexpr unsigned kIterations = 64;
  const unsigned jobs = hn::bench::parse_args(argc, argv).jobs;

  // One cell per mode; each builds its own System, so the three columns
  // fan out across workers and merge in mode order.
  const Mode modes[3] = {Mode::kNative, Mode::kKvmGuest, Mode::kHypernel};
  const auto cells =
      hn::bench::run_cells<std::vector<hn::workloads::LmbenchResult>>(
          3, jobs, [&](hn::u64 m) {
            auto sys = hn::bench::make_perf_system(modes[m]);
            hn::workloads::LmbenchSuite suite(*sys, kIterations);
            auto rows = suite.run_all();
            hn::bench::record_cell_metrics(m, *sys);
            return rows;
          });
  const std::vector<hn::workloads::LmbenchResult>* results = cells.data();

  std::printf("Table 1: Execution time of kernel operations (us)\n");
  std::printf("%u iterations per operation; paper values in parentheses\n\n",
              kIterations);
  std::printf("%-16s %9s %9s | %9s %9s | %9s %9s\n", "Test", "Native",
              "(paper)", "KVM-guest", "(paper)", "Hypernel", "(paper)");
  hn::bench::print_rule();

  double slowdown_sum[2] = {0, 0};
  double paper_slowdown_sum[2] = {0, 0};
  const size_t rows = results[0].size();
  for (size_t i = 0; i < rows; ++i) {
    const double native = results[0][i].us;
    const double kvm = results[1][i].us;
    const double hyper = results[2][i].us;
    std::printf("%-16s %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f\n",
                results[0][i].name.c_str(), native, kPaper[i].native, kvm,
                kPaper[i].kvm, hyper, kPaper[i].hypernel);
    slowdown_sum[0] += kvm / native - 1.0;
    slowdown_sum[1] += hyper / native - 1.0;
    paper_slowdown_sum[0] += kPaper[i].kvm / kPaper[i].native - 1.0;
    paper_slowdown_sum[1] += kPaper[i].hypernel / kPaper[i].native - 1.0;
  }
  hn::bench::print_rule();
  std::printf(
      "average slowdown vs native:  KVM-guest %.1f%% (paper %.1f%%; reported "
      "15.5%%)  |  Hypernel %.1f%% (paper %.1f%%; reported 8.8%%)\n",
      100.0 * slowdown_sum[0] / rows, 100.0 * paper_slowdown_sum[0] / rows,
      100.0 * slowdown_sum[1] / rows, 100.0 * paper_slowdown_sum[1] / rows);
  return hn::bench::write_bench_metrics();
}
