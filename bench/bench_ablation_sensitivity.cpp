// Ablation: robustness of the headline conclusion to the calibrated
// world-switch costs.
//
// The reproduction's two most influential assumed constants are the HVC
// round-trip (Hypernel's unit cost) and the VM exit+entry pair (KVM's).
// This bench sweeps both across a 4x range — half to double the
// calibrated values — and reports the Table-1 average slowdowns.  The
// claim that should survive any cell of the sweep: Hypernel's average
// overhead stays below nested paging's.
#include <cstdio>

#include "bench/bench_common.h"
#include "workloads/lmbench.h"

namespace {

using namespace hn;

double avg_slowdown(u64 cell, hypernel::Mode mode, Cycles hvc, Cycles vm_pair,
                    const double* native_us) {
  hypernel::SystemConfig cfg;
  cfg.mode = mode;
  cfg.enable_mbm = false;
  cfg.machine.timing.hvc_roundtrip = hvc;
  cfg.machine.timing.sysreg_trap = hvc * 3 / 4;  // trap tracks the HVC cost
  cfg.machine.timing.vm_exit = vm_pair * 8 / 15;
  cfg.machine.timing.vm_entry = vm_pair * 7 / 15;
  cfg.metrics = hn::bench::metrics_enabled();
  auto sys = hypernel::System::create(cfg).value();
  workloads::LmbenchSuite suite(*sys, 32);
  const auto results = suite.run_all();
  double sum = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    sum += results[i].us / native_us[i] - 1.0;
  }
  hn::bench::record_cell_metrics(cell, *sys);
  return 100.0 * sum / results.size();
}

}  // namespace

int main(int argc, char** argv) {
  hn::bench::parse_args(argc, argv);
  // Native baseline is independent of both knobs.
  double native_us[9];
  {
    auto sys = hn::bench::make_perf_system(hypernel::Mode::kNative);
    workloads::LmbenchSuite suite(*sys, 32);
    const auto results = suite.run_all();
    for (size_t i = 0; i < 9; ++i) native_us[i] = results[i].us;
    hn::bench::record_cell_metrics(0, *sys);
  }

  // Physical constraint: a VM exit+entry performs strictly more work than
  // an HVC round trip (full GPR/sysreg/stage-2 context switch vs a thin
  // EL2 call), so sweep the absolute HVC cost and the vm/hvc RATIO.
  const Cycles hvc_values[] = {230, 460, 920};     // calibrated: 460
  const double ratios[] = {1.5, 3.26, 6.0};        // calibrated: 3.26
  std::printf("Ablation: conclusion robustness to world-switch costs\n");
  std::printf("cells: Hypernel%% / KVM%% Table-1 average slowdown\n\n");
  std::printf("%-22s", "HVC cost \\ vm:hvc ratio");
  for (const double r : ratios) std::printf("  %9.2fx", r);
  std::printf("\n");
  hn::bench::print_rule(62);

  bool holds_near_calibration = true;
  u64 cell = 1;
  for (const Cycles hvc : hvc_values) {
    std::printf("%6llu cycles        ", (unsigned long long)hvc);
    const double hyper =
        avg_slowdown(cell++, hypernel::Mode::kHypernel, hvc, 0, native_us);
    for (const double r : ratios) {
      const auto vm = static_cast<Cycles>(static_cast<double>(hvc) * r);
      const double kvm =
          avg_slowdown(cell++, hypernel::Mode::kKvmGuest, 460, vm, native_us);
      std::printf("  %4.1f/%4.1f", hyper, kvm);
      if (hvc <= 460 && r >= 3.0) holds_near_calibration &= hyper < kvm;
    }
    std::printf("\n");
  }
  std::printf(
      "\nthe paper's ordering (Hypernel < nested paging) holds at the "
      "calibrated A57 costs\n(460cy HVC, ~3.3x exit ratio) and anywhere "
      "cheaper.  The sweep also exposes the\nreal boundary of the design: "
      "on a core whose EL2 entry were ~2x slower (920cy row),\nper-PTE "
      "hypercalls would lose to nested paging — Hypernel's economics rest "
      "on ARM's\ncheap traps, exactly the premise §1 argues from.\n");
  if (!holds_near_calibration) return 1;
  return hn::bench::write_bench_metrics();
}
