// Ablation: why nested paging hurts — the stage-2 walk blow-up vs TLB
// reach (§1, §3).  Sweeps the TLB size and measures a TLB-thrashing
// kernel pointer-chase under Native vs KVM-guest, reporting the per-miss
// descriptor-fetch amplification; then shows lazy vs eager stage-2
// population on the fork-heavy LMbench row.
#include <cstdio>

#include "bench/bench_common.h"
#include "hypernel/system.h"
#include "workloads/lmbench.h"

namespace {

using namespace hn;

/// Kernel-space pointer chase across `pages` distinct pages.
double chase(hypernel::System& sys, u64 pages, u64 rounds) {
  kernel::Kernel& k = sys.kernel();
  Result<PhysAddr> block =
      k.buddy().alloc_pages(10);  // 4 MiB contiguous arena
  if (!block.ok()) std::abort();
  const VirtAddr base = kernel::phys_to_virt(block.value());
  const auto t0 = sys.snapshot();
  for (u64 r = 0; r < rounds; ++r) {
    for (u64 p = 0; p < pages; ++p) {
      sys.machine().read64(base + p * kPageSize + (p % 64) * 8);
    }
  }
  const double us = sys.us_since(t0);
  k.buddy().free_pages(block.value(), 10);
  return us / static_cast<double>(rounds * pages) * 1000.0;  // ns per access
}

}  // namespace

int main(int argc, char** argv) {
  hn::bench::parse_args(argc, argv);
  std::printf("Ablation: nested-walk cost vs TLB reach\n\n");
  std::printf("kernel pointer-chase, ns per access (simulated)\n");
  std::printf("%-18s %12s %12s %12s %10s\n", "working set", "TLB", "native",
              "KVM-guest", "penalty");
  hn::bench::print_rule(72);
  hn::u64 cell = 0;
  for (const unsigned tlb : {64u, 256u, 1024u}) {
    for (const u64 pages : {32ull, 512ull}) {
      double ns[2];
      for (int m = 0; m < 2; ++m) {
        hypernel::SystemConfig cfg;
        cfg.mode = m == 0 ? hypernel::Mode::kNative
                          : hypernel::Mode::kKvmGuest;
        cfg.enable_mbm = false;
        cfg.machine.tlb_entries = tlb;
        cfg.kvm.recycle_invalidate_permille = 0;  // isolate the walk effect
        cfg.metrics = hn::bench::metrics_enabled();
        auto sys = hypernel::System::create(cfg).value();
        ns[m] = chase(*sys, pages, 64);
        hn::bench::record_cell_metrics(cell++, *sys);
      }
      std::printf("%4llu pages        %12u %10.1fns %10.1fns %+9.1f%%\n",
                  (unsigned long long)pages, tlb, ns[0], ns[1],
                  100.0 * (ns[1] / ns[0] - 1.0));
    }
  }
  std::printf(
      "\nfits-in-TLB working sets are free either way; past TLB reach every "
      "miss walks\n4 descriptors natively vs up to 24 nested — the o(n^2) "
      "blow-up Hypernel avoids.\n");

  std::printf(
      "\nlazy vs eager stage-2 population (cold start -> LMbench fork+exit "
      "row):\n");
  struct Variant {
    const char* name;
    bool eager;
    bool thp;
  };
  const Variant variants[] = {
      {"eager (prepopulated)", true, true},
      {"lazy + THP batching", false, true},
      {"lazy, 4 KiB faults", false, false},
  };
  for (const Variant& v : variants) {
    hypernel::SystemConfig cfg;
    cfg.mode = hypernel::Mode::kKvmGuest;
    cfg.enable_mbm = false;
    cfg.kvm.eager_map = v.eager;
    cfg.kvm.thp_backing = v.thp;
    cfg.kvm.recycle_invalidate_permille = 0;
    cfg.metrics = hn::bench::metrics_enabled();
    auto sys = hypernel::System::create(cfg).value();
    const auto t0 = sys->snapshot();  // includes the cold-start fills
    workloads::LmbenchSuite suite(*sys, 32);
    if (!suite.setup().ok()) std::abort();
    const auto r = suite.fork_exit();
    std::printf(
        "  %-22s steady %7.2f us/op, whole run %8.0f us, s2 faults %llu\n",
        v.name, r.us, sys->us_since(t0),
        (unsigned long long)sys->kvm()->stats().s2_faults_serviced);
    hn::bench::record_cell_metrics(cell++, *sys);
  }
  std::printf(
      "\nlaziness only costs at cold start; at steady state both pay the "
      "same nested walk\ntax on every TLB miss — nested paging's "
      "irreducible cost (§1).\n");
  return hn::bench::write_bench_metrics();
}
