// Reproduces Figure 6: application-benchmark runtime normalized to Native,
// under Native / KVM-guest / Hypernel.
//
// The paper reports average overheads of 13.5% (KVM-guest) and 3.1%
// (Hypernel); compute-bound benchmarks sit near native while the
// fork/FS/network-heavy ones carry the overhead.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "workloads/apps.h"

int main(int argc, char** argv) {
  using hn::hypernel::Mode;
  const char* kApps[] = {"whetstone", "dhrystone", "untar", "iozone", "apache"};
  constexpr int kAppCount = 5;
  const unsigned jobs = hn::bench::parse_args(argc, argv).jobs;

  // 3 modes x 5 apps = 15 independent cells; each gets a fresh system
  // (no cross-benchmark cache/dcache pollution), so the whole matrix
  // fans out across workers.
  const Mode modes[3] = {Mode::kNative, Mode::kKvmGuest, Mode::kHypernel};
  const auto cells = hn::bench::run_cells<double>(
      3 * kAppCount, jobs, [&](hn::u64 cell) {
        const int m = static_cast<int>(cell) / kAppCount;
        const int a = static_cast<int>(cell) % kAppCount;
        auto sys = hn::bench::make_perf_system(modes[m]);
        hn::workloads::AppParams p;
        p.scale = 0.35;  // overhead ratios are scale-invariant; keep runs fast
        const double us = hn::workloads::run_app_by_name(*sys, kApps[a], p).us;
        hn::bench::record_cell_metrics(cell, *sys);
        return us;
      });
  double us[3][kAppCount];
  for (int m = 0; m < 3; ++m) {
    for (int a = 0; a < kAppCount; ++a) {
      us[m][a] = cells[static_cast<size_t>(m) * kAppCount + a];
    }
  }

  std::printf(
      "Figure 6: application benchmarks, runtime normalized to Native\n\n");
  std::printf("%-12s %12s %18s %18s\n", "benchmark", "Native(us)",
              "KVM-guest(norm)", "Hypernel(norm)");
  hn::bench::print_rule(64);
  double sum_kvm = 0;
  double sum_hyper = 0;
  for (int a = 0; a < kAppCount; ++a) {
    const double nk = us[1][a] / us[0][a];
    const double nh = us[2][a] / us[0][a];
    sum_kvm += nk - 1.0;
    sum_hyper += nh - 1.0;
    std::printf("%-12s %12.0f %18.3f %18.3f\n", kApps[a], us[0][a], nk, nh);
  }
  hn::bench::print_rule(64);
  std::printf(
      "average overhead:  KVM-guest %.1f%% (paper: 13.5%%)   Hypernel %.1f%% "
      "(paper: 3.1%%)\n",
      100.0 * sum_kvm / kAppCount, 100.0 * sum_hyper / kAppCount);
  return hn::bench::write_bench_metrics();
}
