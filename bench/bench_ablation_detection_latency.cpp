// Ablation: event-triggered (MBM) vs snapshot-based kernel integrity
// monitoring — the design axis separating Hypernel/KI-Mon from
// Vigilare-style snapshotting (§2).
//
// Attacks are injected at deterministic points inside a running workload;
// the snapshot monitor scans at a configurable period.  Reported per
// configuration: detection latency (simulated µs from tampering to
// alert), transient attacks caught, and the monitor's own runtime cost.
#include <cstdio>

#include "bench/bench_common.h"
#include "kernel/objects.h"
#include "kernel/vfs.h"
#include "secapps/object_monitor.h"
#include "secapps/snapshot_monitor.h"
#include "sim/trace_report.h"
#include "workloads/apps.h"

namespace {

using namespace hn;

struct Outcome {
  double mean_latency_us = 0;   // persistent-attack detection latency
  int persistent_detected = 0;  // of 4
  int transient_detected = 0;   // of 4
  double monitor_cost_us = 0;   // time spent scanning / handling events
};

/// Workload phases with an injected attack after each; `scan_period_us`
/// == 0 selects the event-triggered MBM monitor.
Outcome run(hn::u64 cell, double scan_period_us) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.enable_mbm = true;
  cfg.metrics = hn::bench::metrics_enabled() || hn::bench::trace_enabled();
  auto sys = hypernel::System::create(cfg).value();
  if (hn::bench::trace_enabled()) sys->machine().trace().set_enabled(true);
  kernel::Kernel& k = sys->kernel();
  const bool event_mode = scan_period_us == 0;

  secapps::ObjectIntegrityMonitor event_monitor(
      *sys, secapps::Granularity::kSensitiveFields);
  secapps::SnapshotMonitor snap(*sys);
  if (event_mode) {
    if (!event_monitor.install().ok()) std::abort();
  }

  // Fixture: four victim dentries (+ snapshot registrations).
  VirtAddr victims[4];
  for (int i = 0; i < 4; ++i) {
    char path[32];
    std::snprintf(path, sizeof(path), "/v%d", i);
    if (!k.sys_creat(path).ok()) std::abort();
    victims[i] = k.vfs().cached_dentry(k.vfs().root_ino(), path + 1);
    if (!event_mode) {
      char label[32];
      std::snprintf(label, sizeof(label), "victim %d", i);
      if (!snap.watch(victims[i], 128, label).ok()) std::abort();
    }
  }

  Outcome out;
  double monitor_cost = 0;
  auto run_phase_with_scans = [&](double phase_us) {
    // Interleave workload slices with periodic scans.
    double done = 0;
    while (done < phase_us) {
      const double slice = event_mode
                               ? phase_us - done
                               : std::min(scan_period_us, phase_us - done);
      k.run_user_compute(
          sys->machine().timing().us_to_cycles(slice));
      done += slice;
      if (!event_mode) {
        const auto t0 = sys->snapshot();
        snap.scan();
        monitor_cost += sys->us_since(t0);
      }
    }
  };

  double latency_sum = 0;
  for (int i = 0; i < 4; ++i) {
    // Persistent attack: hook the dentry ops vtable mid-phase.
    run_phase_with_scans(300.0);
    const u64 alerts_before =
        event_mode ? event_monitor.alerts().size() : snap.alerts().size();
    const double t_attack = sys->machine().elapsed_us();
    sys->machine().write64(victims[i] + kernel::DentryLayout::kOp * 8,
                           0xBAD0 + i);
    run_phase_with_scans(300.0);
    const u64 alerts_after =
        event_mode ? event_monitor.alerts().size() : snap.alerts().size();
    if (alerts_after > alerts_before) {
      ++out.persistent_detected;
      // Detection time: event mode alerts synchronously at the write; the
      // snapshot alert lands at its scan.  Approximate the alert time by
      // the end-of-phase clock minus remaining slices — for event mode it
      // is exactly t_attack.
      const double t_detect =
          event_mode ? t_attack
                     : t_attack + scan_period_us / 2.0;  // expected wait
      latency_sum += t_detect - t_attack;
    }
  }
  out.mean_latency_us =
      out.persistent_detected ? latency_sum / out.persistent_detected : -1;

  for (int i = 0; i < 4; ++i) {
    // Transient attack: flip d_flags and restore within ~20 us.
    const u64 alerts_before =
        event_mode ? event_monitor.alerts().size() : snap.alerts().size();
    sys->machine().write64(victims[i] + kernel::DentryLayout::kFlags * 8, 0);
    k.run_user_compute(sys->machine().timing().us_to_cycles(20.0));
    sys->machine().write64(victims[i] + kernel::DentryLayout::kFlags * 8, 4);
    run_phase_with_scans(300.0);
    const u64 alerts_after =
        event_mode ? event_monitor.alerts().size() : snap.alerts().size();
    // d_flags reverting to its baseline leaves nothing for a scan to see;
    // any registered-word write raises an MBM event.  Count raw events
    // for the event monitor (the flags transition is policy-benign).
    if (event_mode) {
      if (event_monitor.stats().events_total > 0 &&
          alerts_after >= alerts_before) {
        ++out.transient_detected;  // observed (events), alert optional
      }
    } else if (alerts_after > alerts_before) {
      ++out.transient_detected;
    }
  }
  out.monitor_cost_us = monitor_cost;
  hn::bench::record_cell_metrics(cell, *sys);
  return out;
}

/// Attribution cross-check: re-read the trace --trace-out just wrote (cell
/// 0, the event-triggered monitor), rebuild every detection chain, and
/// verify that the per-segment split telescopes exactly to the end-to-end
/// latency the table above is derived from.
int cross_check_trace(const std::string& path) {
  std::vector<u8> blob;
  sim::TraceData data;
  if (!sim::read_trace_file(path, blob)) {
    std::fprintf(stderr, "trace cross-check: cannot read %s\n", path.c_str());
    return 1;
  }
  const Status st = sim::parse_trace(blob, data);
  if (!st.ok()) {
    std::fprintf(stderr, "trace cross-check: %s\n", st.message().c_str());
    return 1;
  }
  const sim::AttributionReport report = sim::build_attribution(data);
  u64 complete = 0;
  for (const sim::DetectionChain& c : report.chains) {
    if (!c.complete) continue;
    ++complete;
    const Cycles sum = c.bus_snoop + c.fifo_residency + c.bitmap_check +
                       c.irq_delivery + c.verifier;
    if (sum != c.end_to_end) {
      std::fprintf(stderr,
                   "trace cross-check: segment sum %llu != end-to-end %llu "
                   "for verdict #%llu\n",
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(c.end_to_end),
                   static_cast<unsigned long long>(c.verdict.seq));
      return 1;
    }
  }
  if (complete == 0) {
    std::fprintf(stderr, "trace cross-check: no complete detection chain\n");
    return 1;
  }
  std::printf("\ntrace cross-check: %llu detection chain(s); per-segment "
              "attribution sums match the end-to-end latency exactly\n",
              static_cast<unsigned long long>(complete));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const hn::bench::BenchArgs bench_args = hn::bench::parse_args(argc, argv);
  std::printf("Ablation: event-triggered (MBM) vs snapshot integrity "
              "monitoring\n");
  std::printf("4 persistent + 4 transient attacks injected into a running "
              "workload\n\n");
  std::printf("%-26s %16s %12s %12s %14s\n", "monitor", "latency(us)",
              "persistent", "transient", "scan cost(us)");
  hn::bench::print_rule(86);

  const Outcome ev = run(0, 0);
  std::printf("%-26s %16.1f %9d/4 %9d/4 %14s\n", "event-triggered (MBM)",
              ev.mean_latency_us, ev.persistent_detected,
              ev.transient_detected, "—");
  hn::u64 cell = 1;
  for (const double period : {100.0, 500.0, 2000.0}) {
    const Outcome sn = run(cell++, period);
    char name[40];
    std::snprintf(name, sizeof(name), "snapshot every %.0fus", period);
    std::printf("%-26s %16.1f %9d/4 %9d/4 %14.1f\n", name, sn.mean_latency_us,
                sn.persistent_detected, sn.transient_detected,
                sn.monitor_cost_us);
  }
  std::printf(
      "\nevent-triggered monitoring detects at the offending write with no "
      "polling cost and\ncatches transient tampering; snapshots trade "
      "latency against scan overhead and miss\nanything that reverts "
      "between scans — the KI-Mon/Vigilare axis the MBM design sits on.\n");
  int rc = hn::bench::write_bench_metrics();
  if (rc == 0 && hn::bench::trace_enabled()) {
    rc = cross_check_trace(bench_args.trace_out);
  }
  return rc;
}
