// Host-side simulation throughput microbench (DESIGN.md §9).
//
// Measures how many *simulated* memory accesses per second of *host*
// wall-clock the inner loop of the memory system sustains, with the host
// fast path on (cached walk context, O(1) TLB index, bulk charge-replay)
// and off (reference mode).  Five loops cover the regimes every table,
// ablation and fuzz campaign funnels through:
//
//   tlb_hit      — pointer-chase over a working set inside TLB reach
//   walk_heavy   — working set past TLB reach: every access walks
//   s2_nested    — walk-heavy with stage 2 enabled (nested descriptor
//                  fetches, the architectural blow-up of §3)
//   bulk_copy    — read/write_block_bulk over a non-cacheable buffer
//                  (the charge-replay path; bus-visible traffic)
//   fuzz_replay  — whole differential fuzz sequences across the quick
//                  configuration matrix (end-to-end replay cost; fast
//                  mode adds temporally decoupled charging)
//   campaign     — run_campaign end-to-end (the hypernel_fuzz pipeline):
//                  fast path + decoupled + snapshot-boot vs fresh-boot
//                  reference, corpus digests asserted equal
//   snapshot_fork— ready-to-fuzz systems forked from a per-configuration
//                  boot snapshot (COW restore, --snapshot-boot) instead
//                  of re-booted fresh per exec (boot amortization)
//
// Both modes run the same simulated workload; the bench asserts their
// simulated cycles and key counters are bit-identical before reporting,
// so a speedup can never be bought with a behaviour change.  Results are
// printed as a table and written to BENCH_sim_throughput.json.
//
//   bench_sim_throughput [--quick] [--out=PATH]
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "fuzz/fuzzer.h"
#include "sim/machine.h"
#include "sim/pagetable.h"

namespace {

using namespace hn;
using namespace hn::sim;

struct LoopResult {
  std::string name;
  /// What one unit of `work` is: "accesses" for the memory-system loops,
  /// "execs" (sequence x configuration runs) for the end-to-end loops.
  const char* unit = "accesses";
  u64 work = 0;          // units of work per mode run
  u64 sequences = 0;     // fuzz sequences per run (end-to-end loops only)
  double fast_ns = 0;    // host wall-clock, fast path on
  double ref_ns = 0;     // host wall-clock, reference mode
  Cycles sim_cycles = 0; // simulated cycles per run (identical both modes)

  [[nodiscard]] double fast_rate() const {
    return static_cast<double>(work) / (fast_ns / 1e9);
  }
  [[nodiscard]] double ref_rate() const {
    return static_cast<double>(work) / (ref_ns / 1e9);
  }
  [[nodiscard]] double speedup() const { return fast_ns > 0 ? ref_ns / fast_ns : 0; }
};

/// A raw machine with a page-table builder: the bench drives sim::Machine
/// directly so the loop under test is exactly Machine::access64 /
/// the bulk paths, with no kernel logic on top.
class BenchMachine {
 public:
  explicit BenchMachine(bool fast_path, bool stage2 = false)
      : machine_(make_config(fast_path)), next_table_(1 * 1024 * 1024) {
    root_ = alloc_table();
    machine_.set_sysreg_raw(SysReg::TTBR1_EL1, root_);
    if (stage2) {
      s2_root_ = alloc_table();
      machine_.set_sysreg_raw(SysReg::VTTBR_EL2, s2_root_);
      machine_.set_sysreg_raw(SysReg::HCR_EL2, u64{1} << kHcrVm);
    }
  }

  static MachineConfig make_config(bool fast_path) {
    MachineConfig cfg;
    cfg.host_fast_path = fast_path;
    return cfg;
  }

  PhysAddr alloc_table() {
    const PhysAddr t = next_table_;
    next_table_ += kPageSize;
    machine_.phys().zero_range(t, kPageSize);
    return t;
  }

  void map(VirtAddr va, PhysAddr pa, const PageAttrs& attrs) {
    PhysAddr table = root_;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + va_index(va, level) * 8;
      u64 d = machine_.phys().read64(slot);
      if (!desc_valid(d)) {
        const PhysAddr next = alloc_table();
        d = make_table_desc(next);
        machine_.phys().write64(slot, d);
      }
      table = desc_out_addr(d);
    }
    machine_.phys().write64(table + va_index(va, 3) * 8,
                            make_page_desc(pa, attrs));
    if (s2_root_ != 0) map_s2(pa);
  }

  /// Identity-map one IPA page in the stage-2 tables (plus the stage-1
  /// table pages themselves, which nested descriptor fetches translate).
  void map_s2(IpaAddr ipa) {
    PhysAddr table = s2_root_;
    for (unsigned level = 0; level <= 2; ++level) {
      const PhysAddr slot = table + va_index(ipa, level) * 8;
      u64 d = machine_.phys().read64(slot);
      if (!desc_valid(d)) {
        const PhysAddr next = alloc_table();
        d = make_table_desc(next);
        machine_.phys().write64(slot, d);
      }
      table = desc_out_addr(d);
    }
    machine_.phys().write64(table + va_index(ipa, 3) * 8,
                            make_s2_page_desc(ipa, S2Attrs{}));
  }

  /// Stage-2-map every table page allocated so far (call after building
  /// stage-1 mappings so nested fetches of descriptors succeed).
  void s2_map_tables() {
    for (PhysAddr t = 1 * 1024 * 1024; t < next_table_; t += kPageSize) {
      map_s2(t);
    }
  }

  Machine& m() { return machine_; }

 private:
  Machine machine_;
  PhysAddr next_table_;
  PhysAddr root_ = 0;
  PhysAddr s2_root_ = 0;
};

struct ModeRun {
  double wall_ns = 0;
  Cycles cycles = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;
  u64 mem_ops = 0;
  u64 noncacheable = 0;
  u64 bus_txns = 0;
};

/// Run `body(machine)` against a fresh machine built by `setup`, in the
/// given fast-path mode, returning wall time and the simulated ledger.
template <typename Setup, typename Body>
ModeRun run_mode(bool fast_path, Setup&& setup, Body&& body) {
  auto bm = setup(fast_path);
  Machine& m = bm->m();
  if (hn::bench::metrics_enabled()) m.obs().set_enabled(true);
  Stopwatch sw;
  body(*bm);
  ModeRun r;
  r.wall_ns = static_cast<double>(sw.elapsed_ns());
  r.cycles = m.account().cycles();
  r.tlb_hits = m.counters().tlb_hits;
  r.tlb_misses = m.counters().tlb_misses;
  r.mem_ops = m.counters().mem_reads + m.counters().mem_writes;
  r.noncacheable = m.counters().noncacheable_accesses;
  r.bus_txns = m.bus().transaction_count();
  if (fast_path && hn::bench::metrics_enabled()) {
    // One cell per fast-mode run (the mode whose counters the table
    // reports); the reference run would double every count.
    static u64 metrics_cell = 0;
    hn::bench::record_cell_metrics(metrics_cell++, m.obs().snapshot());
  }
  return r;
}

/// Assert the two modes produced a bit-identical simulated ledger — the
/// speedup must be host-side only.
void check_identical(const char* name, const ModeRun& fast, const ModeRun& ref) {
  if (fast.cycles != ref.cycles || fast.tlb_hits != ref.tlb_hits ||
      fast.tlb_misses != ref.tlb_misses || fast.mem_ops != ref.mem_ops ||
      fast.noncacheable != ref.noncacheable || fast.bus_txns != ref.bus_txns) {
    std::fprintf(stderr,
                 "FATAL: %s diverged between fast and reference mode:\n"
                 "  cycles %llu/%llu  tlb %llu+%llu/%llu+%llu  mem %llu/%llu"
                 "  nc %llu/%llu  bus %llu/%llu\n",
                 name, (unsigned long long)fast.cycles,
                 (unsigned long long)ref.cycles,
                 (unsigned long long)fast.tlb_hits,
                 (unsigned long long)fast.tlb_misses,
                 (unsigned long long)ref.tlb_hits,
                 (unsigned long long)ref.tlb_misses,
                 (unsigned long long)fast.mem_ops,
                 (unsigned long long)ref.mem_ops,
                 (unsigned long long)fast.noncacheable,
                 (unsigned long long)ref.noncacheable,
                 (unsigned long long)fast.bus_txns,
                 (unsigned long long)ref.bus_txns);
    std::abort();
  }
}

/// Repetitions per mode; each loop reports the minimum wall time (the
/// run least disturbed by host noise).  Simulated results are asserted
/// identical across every run of both modes.
unsigned g_repeat = 3;

template <typename Setup, typename Body>
LoopResult run_loop(const char* name, u64 accesses, Setup&& setup, Body&& body) {
  LoopResult r;
  r.name = name;
  r.work = accesses;
  for (unsigned rep = 0; rep < g_repeat; ++rep) {
    const ModeRun ref = run_mode(false, setup, body);
    const ModeRun fast = run_mode(true, setup, body);
    check_identical(name, fast, ref);
    if (rep == 0 || ref.wall_ns < r.ref_ns) r.ref_ns = ref.wall_ns;
    if (rep == 0 || fast.wall_ns < r.fast_ns) r.fast_ns = fast.wall_ns;
    r.sim_cycles = fast.cycles;
  }
  return r;
}

constexpr VirtAddr kVaBase = kKernelVaBase + 0x4000'0000ull;
constexpr PhysAddr kPaBase = 8ull * 1024 * 1024;

LoopResult bench_tlb_hit(u64 iters) {
  // 128 resident pages inside the 256-entry TLB: after warm-up every
  // access is a hit.  This is the common case of every workload — a
  // well-filled TLB, where the reference full-scan lookup walks half the
  // array per access and the index finds the slot in one hash probe.
  constexpr unsigned kPages = 128;
  auto setup = [](bool fp) {
    auto bm = std::make_unique<BenchMachine>(fp);
    for (unsigned i = 0; i < kPages; ++i) {
      bm->map(kVaBase + i * kPageSize, kPaBase + i * kPageSize,
              PageAttrs{.write = true});
    }
    return bm;
  };
  auto body = [iters](BenchMachine& bm) {
    u64 sum = 0;
    for (u64 i = 0; i < iters; ++i) {
      const VirtAddr va =
          kVaBase + (i % kPages) * kPageSize + ((i * 64) % kPageSize & ~7ull);
      sum += bm.m().read64(va).value;
    }
    if (sum == 0xDEAD) std::abort();  // keep the loop observable
  };
  return run_loop("tlb_hit", iters, setup, body);
}

LoopResult bench_walk_heavy(u64 iters) {
  // 1024 pages cycled round-robin against a 256-entry TLB: round-robin
  // replacement guarantees every access misses and walks.
  constexpr unsigned kPages = 1024;
  auto setup = [](bool fp) {
    auto bm = std::make_unique<BenchMachine>(fp);
    for (unsigned i = 0; i < kPages; ++i) {
      bm->map(kVaBase + i * kPageSize, kPaBase + i * kPageSize,
              PageAttrs{.write = true});
    }
    return bm;
  };
  auto body = [iters](BenchMachine& bm) {
    for (u64 i = 0; i < iters; ++i) {
      bm.m().read64(kVaBase + (i % kPages) * kPageSize);
    }
  };
  return run_loop("walk_heavy", iters, setup, body);
}

LoopResult bench_s2_nested(u64 iters) {
  // Walk-heavy with stage 2 on: each stage-1 step is itself stage-2
  // translated (up to 24 descriptor fetches per miss, §3).
  constexpr unsigned kPages = 1024;
  auto setup = [](bool fp) {
    auto bm = std::make_unique<BenchMachine>(fp, /*stage2=*/true);
    for (unsigned i = 0; i < kPages; ++i) {
      bm->map(kVaBase + i * kPageSize, kPaBase + i * kPageSize,
              PageAttrs{.write = true});
    }
    bm->s2_map_tables();
    return bm;
  };
  auto body = [iters](BenchMachine& bm) {
    for (u64 i = 0; i < iters; ++i) {
      bm.m().read64(kVaBase + (i % kPages) * kPageSize);
    }
  };
  return run_loop("s2_nested", iters, setup, body);
}

LoopResult bench_bulk_copy(u64 iters) {
  // 64 KiB non-cacheable buffer: the bulk paths take the charge-replay
  // branch and every word reaches the bus (MBM-visible traffic).
  constexpr u64 kBufBytes = 64 * 1024;
  constexpr unsigned kPages = kBufBytes / kPageSize;
  auto setup = [](bool fp) {
    auto bm = std::make_unique<BenchMachine>(fp);
    PageAttrs nc{.write = true};
    nc.attr = MemAttr::kNonCacheable;
    for (unsigned i = 0; i < kPages; ++i) {
      bm->map(kVaBase + i * kPageSize, kPaBase + i * kPageSize, nc);
    }
    return bm;
  };
  std::vector<u8> host(kBufBytes, 0xA5);
  auto body = [iters, &host](BenchMachine& bm) {
    for (u64 i = 0; i < iters; ++i) {
      bm.m().write_block_bulk(kVaBase, host.data(), kBufBytes);
      bm.m().read_block_bulk(kVaBase, host.data(), kBufBytes);
    }
  };
  return run_loop("bulk_copy", iters * 2 * (kBufBytes / kWordSize), setup,
                  body);
}

/// End-to-end: whole fuzz sequences across the quick matrix.  Fast mode
/// is the full v2 pipeline (host fast path + temporally decoupled
/// charging); reference is the naive recompute path.  Every run's
/// fingerprint — functional hash AND simulated cycles — folds into a
/// per-mode ledger digest, and the two modes' digests are asserted
/// equal: the speedup can never be bought with a behaviour change.
LoopResult bench_fuzz_replay(u64 sequences) {
  const u64 matrix = fuzz::build_matrix(/*full=*/false).size();
  auto run = [&](bool fast_mode, u64* digest) {
    auto specs = fuzz::build_matrix(/*full=*/false);
    for (auto& spec : specs) {
      spec.host_fast_path = fast_mode;
      spec.decoupled_quantum =
          fast_mode ? fuzz::kDefaultDecoupledQuantum : 0;
    }
    const fuzz::GeneratorOptions gen;
    fuzz::ExecutorOptions exec;
    exec.collect_metrics = fast_mode && hn::bench::metrics_enabled();
    Stopwatch sw;
    u64 findings = 0;
    u64 d = hypernel::kFnvOffset;
    obs::Snapshot metrics;
    std::vector<fuzz::RunResult> runs;
    for (u64 s = 1; s <= sequences; ++s) {
      findings +=
          fuzz::run_sequence_seed(s, gen, specs, exec, &runs).findings.size();
      for (const fuzz::RunResult& r : runs) {
        d = hypernel::fnv_fold(d, r.fingerprint.functional_hash());
        d = hypernel::fnv_fold(d, r.fingerprint.cycles);
        if (exec.collect_metrics) metrics.merge(r.metrics);
      }
      runs.clear();
    }
    if (exec.collect_metrics) {
      static u64 metrics_cell = 1u << 16;  // clear of the run_mode cells
      hn::bench::record_cell_metrics(metrics_cell++, metrics);
    }
    if (findings != 0) {
      std::fprintf(stderr, "FATAL: fuzz_replay produced %llu findings\n",
                   (unsigned long long)findings);
      std::abort();
    }
    *digest = d;
    return static_cast<double>(sw.elapsed_ns());
  };
  LoopResult r;
  r.name = "fuzz_replay";
  r.unit = "execs";
  r.sequences = sequences;
  // Execs per run: each sequence runs the whole quick matrix once plus
  // the reference-configuration determinism rerun.
  r.work = sequences * (matrix + 1);
  for (unsigned rep = 0; rep < g_repeat; ++rep) {
    u64 ref_digest = 0;
    u64 fast_digest = 0;
    const double ref = run(false, &ref_digest);
    const double fast = run(true, &fast_digest);
    if (ref_digest != fast_digest) {
      std::fprintf(stderr,
                   "FATAL: fuzz_replay ledger diverged between fast and "
                   "reference mode: digest %llx vs %llx\n",
                   (unsigned long long)fast_digest,
                   (unsigned long long)ref_digest);
      std::abort();
    }
    if (rep == 0 || ref < r.ref_ns) r.ref_ns = ref;
    if (rep == 0 || fast < r.fast_ns) r.fast_ns = fast;
  }
  return r;
}

/// Whole-campaign throughput: run_campaign end-to-end — generation,
/// matrix execution, oracles, per-sequence determinism rerun, digest
/// fold — the way `hypernel_fuzz` actually runs it.  Fast mode is the
/// shipping fast configuration (fast path + decoupled charging +
/// snapshot-boot forking); reference boots every system fresh in
/// reference mode.  The corpus digest must be identical across the two —
/// the determinism contract `--seed=N` promises.
LoopResult bench_campaign(u64 sequences) {
  const u64 matrix = fuzz::build_matrix(/*full=*/false).size();
  auto run = [&](bool fast_mode, u64* digest) {
    fuzz::FuzzOptions opt;
    opt.seed = 1;
    opt.sequences = sequences;
    opt.jobs = 1;  // single worker: measure the pipeline, not the pool
    opt.host_fast_path = fast_mode;
    opt.decoupled_quantum = fast_mode ? fuzz::kDefaultDecoupledQuantum : 0;
    opt.snapshot_boot = fast_mode;
    Stopwatch sw;
    const fuzz::CampaignResult result = fuzz::run_campaign(opt);
    const double wall = static_cast<double>(sw.elapsed_ns());
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: campaign bench found %llu failures\n",
                   (unsigned long long)result.failures);
      std::abort();
    }
    *digest = result.corpus_digest;
    return wall;
  };
  LoopResult r;
  r.name = "campaign";
  r.unit = "execs";
  r.sequences = sequences;
  r.work = sequences * (matrix + 1);  // +1: per-sequence determinism rerun
  for (unsigned rep = 0; rep < g_repeat; ++rep) {
    u64 ref_digest = 0;
    u64 fast_digest = 0;
    const double ref = run(false, &ref_digest);
    const double fast = run(true, &fast_digest);
    if (ref_digest != fast_digest) {
      std::fprintf(stderr,
                   "FATAL: campaign corpus digest diverged between fast "
                   "and reference mode: %llx vs %llx\n",
                   (unsigned long long)fast_digest,
                   (unsigned long long)ref_digest);
      std::abort();
    }
    if (rep == 0 || ref < r.ref_ns) r.ref_ns = ref;
    if (rep == 0 || fast < r.fast_ns) r.fast_ns = fast;
  }
  return r;
}

/// Boot amortization of the fuzz harness: acquiring a ready-to-fuzz
/// system by re-booting a fresh one per exec ("ref") versus forking it
/// from a per-configuration boot snapshot via COW restore ("fast",
/// hypernel_fuzz --snapshot-boot).  The exec payload is empty so the loop
/// isolates the system-acquisition mechanism itself — op throughput on
/// top of either path is fuzz_replay's job.  Fingerprints of every exec
/// are asserted bit-identical across the two paths; the unit is execs,
/// so the rate column is execs/sec.
LoopResult bench_snapshot_fork(u64 execs_per_config) {
  auto specs = fuzz::build_matrix(/*full=*/false);
  auto run = [&](bool snapshot_boot, u64* digest) {
    fuzz::ExecutorOptions exec;
    exec.snapshot_boot = snapshot_boot;
    const std::span<const fuzz::Op> no_ops;
    Stopwatch sw;
    u64 d = hypernel::kFnvOffset;
    for (const fuzz::FuzzConfigSpec& spec : specs) {
      for (u64 e = 0; e < execs_per_config; ++e) {
        const fuzz::RunResult r = fuzz::run_sequence(spec, no_ops, exec);
        if (r.build_failed) {
          std::fprintf(stderr, "FATAL: snapshot_fork build failed: %s\n",
                       r.build_error.c_str());
          std::abort();
        }
        d = hypernel::fnv_fold(d, r.fingerprint.functional_hash());
        d = hypernel::fnv_fold(d, r.fingerprint.op_digest);
      }
    }
    *digest = d;
    return static_cast<double>(sw.elapsed_ns());
  };
  LoopResult r;
  r.name = "snapshot_fork";
  r.unit = "execs";
  r.work = execs_per_config * specs.size();
  for (unsigned rep = 0; rep < g_repeat; ++rep) {
    u64 ref_digest = 0;
    u64 fast_digest = 0;
    const double ref = run(false, &ref_digest);
    const double fast = run(true, &fast_digest);
    if (ref_digest != fast_digest) {
      std::fprintf(stderr,
                   "FATAL: snapshot_fork diverged from re-boot: "
                   "digest %llx vs %llx\n",
                   (unsigned long long)ref_digest,
                   (unsigned long long)fast_digest);
      std::abort();
    }
    if (rep == 0 || ref < r.ref_ns) r.ref_ns = ref;
    if (rep == 0 || fast < r.fast_ns) r.fast_ns = fast;
  }
  return r;
}

void write_json(const std::string& path, bool quick,
                const std::vector<LoopResult>& loops) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(f, "  \"quick\": %s,\n  \"loops\": [\n", quick ? "true" : "false");
  for (size_t i = 0; i < loops.size(); ++i) {
    const LoopResult& l = loops[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"unit\": \"%s\", \"work\": %llu, ",
                 l.name.c_str(), l.unit, (unsigned long long)l.work);
    if (l.sequences != 0) {
      // End-to-end loops: the sequence count is the replay workload, the
      // per-second rate below is execs/sec (sequence x config runs).
      std::fprintf(f, "\"sequences\": %llu, ",
                   (unsigned long long)l.sequences);
    }
    std::fprintf(f,
                 "\"sim_cycles\": %llu, "
                 "\"ref_wall_ns\": %.0f, \"fast_wall_ns\": %.0f, "
                 "\"ref_per_s\": %.0f, "
                 "\"fast_per_s\": %.0f, "
                 "\"speedup\": %.3f}%s\n",
                 (unsigned long long)l.sim_cycles, l.ref_ns, l.fast_ns,
                 l.ref_rate(), l.fast_rate(), l.speedup(),
                 i + 1 < loops.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the repo-common flags (--metrics-out, --jobs) first; the
  // remaining flags are this bench's own.
  hn::bench::parse_and_strip_args(&argc, argv);
  bool quick = false;
  std::string out = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      g_repeat = static_cast<unsigned>(std::strtoul(argv[i] + 9, nullptr, 0));
      if (g_repeat == 0) g_repeat = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--repeat=N] [--out=PATH] "
                   "[--metrics-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<LoopResult> loops;
  loops.push_back(bench_tlb_hit(quick ? 200'000 : 2'000'000));
  loops.push_back(bench_walk_heavy(quick ? 50'000 : 500'000));
  loops.push_back(bench_s2_nested(quick ? 20'000 : 200'000));
  loops.push_back(bench_bulk_copy(quick ? 50 : 500));
  loops.push_back(bench_fuzz_replay(quick ? 2 : 8));
  loops.push_back(bench_campaign(quick ? 2 : 6));
  loops.push_back(bench_snapshot_fork(quick ? 20 : 100));

  std::printf("Host-side simulation throughput (%s)\n",
              quick ? "quick" : "full");
  std::printf("%-13s %12s %9s %14s %14s %9s\n", "loop", "work", "unit",
              "ref work/s", "fast work/s", "speedup");
  for (const LoopResult& l : loops) {
    std::printf("%-13s %12llu %9s %14.0f %14.0f %8.2fx\n", l.name.c_str(),
                (unsigned long long)l.work, l.unit, l.ref_rate(),
                l.fast_rate(), l.speedup());
  }
  write_json(out, quick, loops);
  std::printf("\nwrote %s\n", out.c_str());
  return hn::bench::write_bench_metrics();
}
