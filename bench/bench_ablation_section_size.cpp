// Ablation: 2 MiB section vs 4 KiB page kernel mappings (§6.2's kernel
// patch).  Sections walk one level less (cheaper TLB misses, fewer table
// pages) — but leave the image RWX and make per-page read-only page-table
// protection impossible: Hypersec refuses to engage on a section-mapped
// kernel.  This bench quantifies both sides of that trade.
#include <cstdio>

#include "bench/bench_common.h"
#include "hypernel/system.h"
#include "workloads/lmbench.h"

namespace {

using namespace hn;

void run_native(u64 cell, bool use_sections) {
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kNative;
  cfg.enable_mbm = false;
  cfg.kernel.use_sections = use_sections;
  cfg.metrics = hn::bench::metrics_enabled();
  auto sys = hypernel::System::create(cfg).value();
  workloads::LmbenchSuite suite(*sys, 32);
  const auto t0 = sys->snapshot();
  const auto results = suite.run_all();
  const sim::Counters d = sys->counters_since(t0);

  double total = 0;
  for (const auto& r : results) total += r.us;
  std::printf("%-22s %10.1f %14llu %14llu %12llu\n",
              use_sections ? "2 MiB sections" : "4 KiB pages", total,
              (unsigned long long)d.pt_descriptor_fetches,
              (unsigned long long)d.tlb_misses,
              (unsigned long long)sys->kernel().kpt().pt_page_count());
  hn::bench::record_cell_metrics(cell, *sys);
}

}  // namespace

int main(int argc, char** argv) {
  hn::bench::parse_args(argc, argv);
  std::printf("Ablation: kernel linear-map granule (native, LMbench suite)\n\n");
  std::printf("%-22s %10s %14s %14s %12s\n", "mapping", "sum(us)",
              "walk fetches", "TLB misses", "PT pages");
  hn::bench::print_rule(78);
  run_native(0, false);
  run_native(1, true);

  // The security side: Hypersec cannot protect a section-mapped kernel.
  hypernel::SystemConfig cfg;
  cfg.mode = hypernel::Mode::kHypernel;
  cfg.kernel.use_sections = true;
  auto attempt = hypernel::System::create(cfg);
  std::printf("\nHypernel on the section-mapped kernel: %s\n",
              attempt.ok() ? "engaged (unexpected!)" : "refused");
  if (!attempt.ok()) {
    std::printf("  reason: %s\n", attempt.status().message().c_str());
  }
  std::printf(
      "\nsections are slightly faster natively, but the image section is "
      "RWX and page tables\nshare 2 MiB blocks with data — the granularity "
      "gap §6.2 patches away with 4 KiB pages.\n");
  if (attempt.ok()) return 1;
  return hn::bench::write_bench_metrics();
}
