# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mbm_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/hypersec_test[1]_include.cmake")
include("/root/repo/build/tests/hypernel_system_test[1]_include.cmake")
include("/root/repo/build/tests/kvm_test[1]_include.cmake")
include("/root/repo/build/tests/secapps_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/integration_security_test[1]_include.cmake")
include("/root/repo/build/tests/integration_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_config_invariance_test[1]_include.cmake")
