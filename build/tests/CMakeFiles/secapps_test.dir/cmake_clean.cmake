file(REMOVE_RECURSE
  "CMakeFiles/secapps_test.dir/secapps/secapps_test.cpp.o"
  "CMakeFiles/secapps_test.dir/secapps/secapps_test.cpp.o.d"
  "secapps_test"
  "secapps_test.pdb"
  "secapps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secapps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
