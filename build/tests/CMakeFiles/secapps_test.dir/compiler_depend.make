# Empty compiler generated dependencies file for secapps_test.
# This may be replaced when dependencies are built.
