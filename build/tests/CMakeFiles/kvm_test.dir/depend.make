# Empty dependencies file for kvm_test.
# This may be replaced when dependencies are built.
