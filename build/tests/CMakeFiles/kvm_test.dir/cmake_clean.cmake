file(REMOVE_RECURSE
  "CMakeFiles/kvm_test.dir/kvm/kvm_test.cpp.o"
  "CMakeFiles/kvm_test.dir/kvm/kvm_test.cpp.o.d"
  "kvm_test"
  "kvm_test.pdb"
  "kvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
