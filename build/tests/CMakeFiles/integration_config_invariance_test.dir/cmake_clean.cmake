file(REMOVE_RECURSE
  "CMakeFiles/integration_config_invariance_test.dir/integration/config_invariance_test.cpp.o"
  "CMakeFiles/integration_config_invariance_test.dir/integration/config_invariance_test.cpp.o.d"
  "integration_config_invariance_test"
  "integration_config_invariance_test.pdb"
  "integration_config_invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_config_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
