# Empty compiler generated dependencies file for integration_config_invariance_test.
# This may be replaced when dependencies are built.
