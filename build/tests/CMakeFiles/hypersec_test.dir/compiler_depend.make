# Empty compiler generated dependencies file for hypersec_test.
# This may be replaced when dependencies are built.
