file(REMOVE_RECURSE
  "CMakeFiles/hypersec_test.dir/hypersec/hypersec_test.cpp.o"
  "CMakeFiles/hypersec_test.dir/hypersec/hypersec_test.cpp.o.d"
  "hypersec_test"
  "hypersec_test.pdb"
  "hypersec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
