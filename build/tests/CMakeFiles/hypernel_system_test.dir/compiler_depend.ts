# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hypernel_system_test.
