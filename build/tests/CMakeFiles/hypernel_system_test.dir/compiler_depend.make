# Empty compiler generated dependencies file for hypernel_system_test.
# This may be replaced when dependencies are built.
