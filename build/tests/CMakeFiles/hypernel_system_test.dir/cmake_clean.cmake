file(REMOVE_RECURSE
  "CMakeFiles/hypernel_system_test.dir/hypernel/system_test.cpp.o"
  "CMakeFiles/hypernel_system_test.dir/hypernel/system_test.cpp.o.d"
  "hypernel_system_test"
  "hypernel_system_test.pdb"
  "hypernel_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypernel_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
