file(REMOVE_RECURSE
  "CMakeFiles/mbm_test.dir/mbm/mbm_test.cpp.o"
  "CMakeFiles/mbm_test.dir/mbm/mbm_test.cpp.o.d"
  "mbm_test"
  "mbm_test.pdb"
  "mbm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
