# Empty dependencies file for mbm_test.
# This may be replaced when dependencies are built.
