file(REMOVE_RECURSE
  "../bench/bench_table1_lmbench"
  "../bench/bench_table1_lmbench.pdb"
  "CMakeFiles/bench_table1_lmbench.dir/bench_table1_lmbench.cpp.o"
  "CMakeFiles/bench_table1_lmbench.dir/bench_table1_lmbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
