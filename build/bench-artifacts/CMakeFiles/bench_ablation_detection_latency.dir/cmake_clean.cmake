file(REMOVE_RECURSE
  "../bench/bench_ablation_detection_latency"
  "../bench/bench_ablation_detection_latency.pdb"
  "CMakeFiles/bench_ablation_detection_latency.dir/bench_ablation_detection_latency.cpp.o"
  "CMakeFiles/bench_ablation_detection_latency.dir/bench_ablation_detection_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detection_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
