# Empty compiler generated dependencies file for bench_ablation_mbm_sizing.
# This may be replaced when dependencies are built.
