file(REMOVE_RECURSE
  "../bench/bench_ablation_mbm_sizing"
  "../bench/bench_ablation_mbm_sizing.pdb"
  "CMakeFiles/bench_ablation_mbm_sizing.dir/bench_ablation_mbm_sizing.cpp.o"
  "CMakeFiles/bench_ablation_mbm_sizing.dir/bench_ablation_mbm_sizing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mbm_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
