# Empty dependencies file for bench_ablation_cacheability.
# This may be replaced when dependencies are built.
