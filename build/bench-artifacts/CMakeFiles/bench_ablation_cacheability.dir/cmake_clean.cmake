file(REMOVE_RECURSE
  "../bench/bench_ablation_cacheability"
  "../bench/bench_ablation_cacheability.pdb"
  "CMakeFiles/bench_ablation_cacheability.dir/bench_ablation_cacheability.cpp.o"
  "CMakeFiles/bench_ablation_cacheability.dir/bench_ablation_cacheability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cacheability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
