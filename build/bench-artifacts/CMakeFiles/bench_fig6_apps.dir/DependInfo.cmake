
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_apps.cpp" "bench-artifacts/CMakeFiles/bench_fig6_apps.dir/bench_fig6_apps.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_fig6_apps.dir/bench_fig6_apps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hn_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/secapps/CMakeFiles/hn_secapps.dir/DependInfo.cmake"
  "/root/repo/build/src/hypernel/CMakeFiles/hn_hypernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hypersec/CMakeFiles/hn_hypersec.dir/DependInfo.cmake"
  "/root/repo/build/src/kvm/CMakeFiles/hn_kvm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/hn_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mbm/CMakeFiles/hn_mbm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
