file(REMOVE_RECURSE
  "../bench/bench_fig6_apps"
  "../bench/bench_fig6_apps.pdb"
  "CMakeFiles/bench_fig6_apps.dir/bench_fig6_apps.cpp.o"
  "CMakeFiles/bench_fig6_apps.dir/bench_fig6_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
