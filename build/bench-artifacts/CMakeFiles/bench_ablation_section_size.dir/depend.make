# Empty dependencies file for bench_ablation_section_size.
# This may be replaced when dependencies are built.
