# Empty dependencies file for bench_ablation_nested_walk.
# This may be replaced when dependencies are built.
