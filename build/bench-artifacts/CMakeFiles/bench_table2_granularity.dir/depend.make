# Empty dependencies file for bench_table2_granularity.
# This may be replaced when dependencies are built.
