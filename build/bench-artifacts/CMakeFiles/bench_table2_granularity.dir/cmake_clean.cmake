file(REMOVE_RECURSE
  "../bench/bench_table2_granularity"
  "../bench/bench_table2_granularity.pdb"
  "CMakeFiles/bench_table2_granularity.dir/bench_table2_granularity.cpp.o"
  "CMakeFiles/bench_table2_granularity.dir/bench_table2_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
