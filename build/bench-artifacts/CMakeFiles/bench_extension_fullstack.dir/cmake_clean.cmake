file(REMOVE_RECURSE
  "../bench/bench_extension_fullstack"
  "../bench/bench_extension_fullstack.pdb"
  "CMakeFiles/bench_extension_fullstack.dir/bench_extension_fullstack.cpp.o"
  "CMakeFiles/bench_extension_fullstack.dir/bench_extension_fullstack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_fullstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
