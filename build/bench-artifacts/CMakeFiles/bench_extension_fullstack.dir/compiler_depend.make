# Empty compiler generated dependencies file for bench_extension_fullstack.
# This may be replaced when dependencies are built.
