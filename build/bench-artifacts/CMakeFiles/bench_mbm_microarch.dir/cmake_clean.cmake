file(REMOVE_RECURSE
  "../bench/bench_mbm_microarch"
  "../bench/bench_mbm_microarch.pdb"
  "CMakeFiles/bench_mbm_microarch.dir/bench_mbm_microarch.cpp.o"
  "CMakeFiles/bench_mbm_microarch.dir/bench_mbm_microarch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mbm_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
