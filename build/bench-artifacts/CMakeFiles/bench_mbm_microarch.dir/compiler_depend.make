# Empty compiler generated dependencies file for bench_mbm_microarch.
# This may be replaced when dependencies are built.
