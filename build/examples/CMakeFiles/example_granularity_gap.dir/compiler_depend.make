# Empty compiler generated dependencies file for example_granularity_gap.
# This may be replaced when dependencies are built.
