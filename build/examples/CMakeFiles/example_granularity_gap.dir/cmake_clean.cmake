file(REMOVE_RECURSE
  "CMakeFiles/example_granularity_gap.dir/granularity_gap.cpp.o"
  "CMakeFiles/example_granularity_gap.dir/granularity_gap.cpp.o.d"
  "example_granularity_gap"
  "example_granularity_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_granularity_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
