file(REMOVE_RECURSE
  "CMakeFiles/example_kvm_vs_hypernel.dir/kvm_vs_hypernel.cpp.o"
  "CMakeFiles/example_kvm_vs_hypernel.dir/kvm_vs_hypernel.cpp.o.d"
  "example_kvm_vs_hypernel"
  "example_kvm_vs_hypernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kvm_vs_hypernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
