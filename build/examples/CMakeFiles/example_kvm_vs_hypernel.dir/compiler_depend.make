# Empty compiler generated dependencies file for example_kvm_vs_hypernel.
# This may be replaced when dependencies are built.
