file(REMOVE_RECURSE
  "CMakeFiles/example_rootkit_detection.dir/rootkit_detection.cpp.o"
  "CMakeFiles/example_rootkit_detection.dir/rootkit_detection.cpp.o.d"
  "example_rootkit_detection"
  "example_rootkit_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rootkit_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
