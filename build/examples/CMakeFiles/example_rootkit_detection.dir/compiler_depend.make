# Empty compiler generated dependencies file for example_rootkit_detection.
# This may be replaced when dependencies are built.
