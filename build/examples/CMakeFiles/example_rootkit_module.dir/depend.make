# Empty dependencies file for example_rootkit_module.
# This may be replaced when dependencies are built.
