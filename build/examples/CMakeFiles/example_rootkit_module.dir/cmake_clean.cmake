file(REMOVE_RECURSE
  "CMakeFiles/example_rootkit_module.dir/rootkit_module.cpp.o"
  "CMakeFiles/example_rootkit_module.dir/rootkit_module.cpp.o.d"
  "example_rootkit_module"
  "example_rootkit_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rootkit_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
