file(REMOVE_RECURSE
  "CMakeFiles/example_atra_attack.dir/atra_attack.cpp.o"
  "CMakeFiles/example_atra_attack.dir/atra_attack.cpp.o.d"
  "example_atra_attack"
  "example_atra_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_atra_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
