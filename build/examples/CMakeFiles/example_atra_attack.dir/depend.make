# Empty dependencies file for example_atra_attack.
# This may be replaced when dependencies are built.
