# Empty compiler generated dependencies file for hn_kvm.
# This may be replaced when dependencies are built.
