file(REMOVE_RECURSE
  "CMakeFiles/hn_kvm.dir/kvm.cpp.o"
  "CMakeFiles/hn_kvm.dir/kvm.cpp.o.d"
  "libhn_kvm.a"
  "libhn_kvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_kvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
