file(REMOVE_RECURSE
  "libhn_kvm.a"
)
