# Empty dependencies file for hn_secapps.
# This may be replaced when dependencies are built.
