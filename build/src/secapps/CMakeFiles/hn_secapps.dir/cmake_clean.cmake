file(REMOVE_RECURSE
  "CMakeFiles/hn_secapps.dir/object_monitor.cpp.o"
  "CMakeFiles/hn_secapps.dir/object_monitor.cpp.o.d"
  "CMakeFiles/hn_secapps.dir/snapshot_monitor.cpp.o"
  "CMakeFiles/hn_secapps.dir/snapshot_monitor.cpp.o.d"
  "libhn_secapps.a"
  "libhn_secapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_secapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
