file(REMOVE_RECURSE
  "libhn_secapps.a"
)
