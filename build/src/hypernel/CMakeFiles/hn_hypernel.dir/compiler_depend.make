# Empty compiler generated dependencies file for hn_hypernel.
# This may be replaced when dependencies are built.
