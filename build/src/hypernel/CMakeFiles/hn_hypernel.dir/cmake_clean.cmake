file(REMOVE_RECURSE
  "CMakeFiles/hn_hypernel.dir/system.cpp.o"
  "CMakeFiles/hn_hypernel.dir/system.cpp.o.d"
  "libhn_hypernel.a"
  "libhn_hypernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_hypernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
