file(REMOVE_RECURSE
  "libhn_hypernel.a"
)
