# Empty dependencies file for hn_mbm.
# This may be replaced when dependencies are built.
