file(REMOVE_RECURSE
  "libhn_mbm.a"
)
