file(REMOVE_RECURSE
  "CMakeFiles/hn_mbm.dir/monitor.cpp.o"
  "CMakeFiles/hn_mbm.dir/monitor.cpp.o.d"
  "libhn_mbm.a"
  "libhn_mbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_mbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
