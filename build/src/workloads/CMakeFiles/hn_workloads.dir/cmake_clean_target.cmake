file(REMOVE_RECURSE
  "libhn_workloads.a"
)
