file(REMOVE_RECURSE
  "CMakeFiles/hn_workloads.dir/apps.cpp.o"
  "CMakeFiles/hn_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/hn_workloads.dir/lmbench.cpp.o"
  "CMakeFiles/hn_workloads.dir/lmbench.cpp.o.d"
  "libhn_workloads.a"
  "libhn_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
