# Empty dependencies file for hn_workloads.
# This may be replaced when dependencies are built.
