# Empty compiler generated dependencies file for hn_sim.
# This may be replaced when dependencies are built.
