file(REMOVE_RECURSE
  "CMakeFiles/hn_sim.dir/cache.cpp.o"
  "CMakeFiles/hn_sim.dir/cache.cpp.o.d"
  "CMakeFiles/hn_sim.dir/machine.cpp.o"
  "CMakeFiles/hn_sim.dir/machine.cpp.o.d"
  "CMakeFiles/hn_sim.dir/mmu.cpp.o"
  "CMakeFiles/hn_sim.dir/mmu.cpp.o.d"
  "libhn_sim.a"
  "libhn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
