file(REMOVE_RECURSE
  "libhn_sim.a"
)
