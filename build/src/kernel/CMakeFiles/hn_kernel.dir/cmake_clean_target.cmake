file(REMOVE_RECURSE
  "libhn_kernel.a"
)
