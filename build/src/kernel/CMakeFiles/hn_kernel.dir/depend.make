# Empty dependencies file for hn_kernel.
# This may be replaced when dependencies are built.
