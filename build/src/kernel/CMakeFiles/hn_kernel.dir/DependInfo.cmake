
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/buddy.cpp" "src/kernel/CMakeFiles/hn_kernel.dir/buddy.cpp.o" "gcc" "src/kernel/CMakeFiles/hn_kernel.dir/buddy.cpp.o.d"
  "/root/repo/src/kernel/ipc.cpp" "src/kernel/CMakeFiles/hn_kernel.dir/ipc.cpp.o" "gcc" "src/kernel/CMakeFiles/hn_kernel.dir/ipc.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/hn_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/hn_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/kpt.cpp" "src/kernel/CMakeFiles/hn_kernel.dir/kpt.cpp.o" "gcc" "src/kernel/CMakeFiles/hn_kernel.dir/kpt.cpp.o.d"
  "/root/repo/src/kernel/modules.cpp" "src/kernel/CMakeFiles/hn_kernel.dir/modules.cpp.o" "gcc" "src/kernel/CMakeFiles/hn_kernel.dir/modules.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "src/kernel/CMakeFiles/hn_kernel.dir/process.cpp.o" "gcc" "src/kernel/CMakeFiles/hn_kernel.dir/process.cpp.o.d"
  "/root/repo/src/kernel/vfs.cpp" "src/kernel/CMakeFiles/hn_kernel.dir/vfs.cpp.o" "gcc" "src/kernel/CMakeFiles/hn_kernel.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
