file(REMOVE_RECURSE
  "CMakeFiles/hn_kernel.dir/buddy.cpp.o"
  "CMakeFiles/hn_kernel.dir/buddy.cpp.o.d"
  "CMakeFiles/hn_kernel.dir/ipc.cpp.o"
  "CMakeFiles/hn_kernel.dir/ipc.cpp.o.d"
  "CMakeFiles/hn_kernel.dir/kernel.cpp.o"
  "CMakeFiles/hn_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/hn_kernel.dir/kpt.cpp.o"
  "CMakeFiles/hn_kernel.dir/kpt.cpp.o.d"
  "CMakeFiles/hn_kernel.dir/modules.cpp.o"
  "CMakeFiles/hn_kernel.dir/modules.cpp.o.d"
  "CMakeFiles/hn_kernel.dir/process.cpp.o"
  "CMakeFiles/hn_kernel.dir/process.cpp.o.d"
  "CMakeFiles/hn_kernel.dir/vfs.cpp.o"
  "CMakeFiles/hn_kernel.dir/vfs.cpp.o.d"
  "libhn_kernel.a"
  "libhn_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
