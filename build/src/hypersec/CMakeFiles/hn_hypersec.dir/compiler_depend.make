# Empty compiler generated dependencies file for hn_hypersec.
# This may be replaced when dependencies are built.
