file(REMOVE_RECURSE
  "CMakeFiles/hn_hypersec.dir/hypersec.cpp.o"
  "CMakeFiles/hn_hypersec.dir/hypersec.cpp.o.d"
  "CMakeFiles/hn_hypersec.dir/mbm_driver.cpp.o"
  "CMakeFiles/hn_hypersec.dir/mbm_driver.cpp.o.d"
  "CMakeFiles/hn_hypersec.dir/pt_verifier.cpp.o"
  "CMakeFiles/hn_hypersec.dir/pt_verifier.cpp.o.d"
  "libhn_hypersec.a"
  "libhn_hypersec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_hypersec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
