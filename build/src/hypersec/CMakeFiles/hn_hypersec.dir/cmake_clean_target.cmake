file(REMOVE_RECURSE
  "libhn_hypersec.a"
)
