file(REMOVE_RECURSE
  "libhn_common.a"
)
