file(REMOVE_RECURSE
  "CMakeFiles/hn_common.dir/log.cpp.o"
  "CMakeFiles/hn_common.dir/log.cpp.o.d"
  "libhn_common.a"
  "libhn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
