# Empty dependencies file for hn_common.
# This may be replaced when dependencies are built.
