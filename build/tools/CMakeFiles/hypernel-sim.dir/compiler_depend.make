# Empty compiler generated dependencies file for hypernel-sim.
# This may be replaced when dependencies are built.
