file(REMOVE_RECURSE
  "CMakeFiles/hypernel-sim.dir/hypernel_sim.cpp.o"
  "CMakeFiles/hypernel-sim.dir/hypernel_sim.cpp.o.d"
  "hypernel-sim"
  "hypernel-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypernel-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
