#include "fuzz/fuzzer.h"

#include <algorithm>
#include <utility>

#include "exec/sharded_runner.h"
#include "fuzz/shrink.h"

namespace hn::fuzz {
namespace {

/// Bit-exact comparison of two runs of the same configuration: every
/// step field and the full fingerprint including cycles must match.
bool identical_runs(const RunResult& a, const RunResult& b) {
  if (a.build_failed != b.build_failed) return false;
  if (a.steps.size() != b.steps.size()) return false;
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].result != b.steps[i].result ||
        a.steps[i].state_digest != b.steps[i].state_digest ||
        a.steps[i].alerts != b.steps[i].alerts ||
        a.steps[i].events != b.steps[i].events) {
      return false;
    }
  }
  return a.fingerprint.functional_hash() == b.fingerprint.functional_hash() &&
         a.fingerprint.cycles == b.fingerprint.cycles &&
         a.fingerprint.alerts == b.fingerprint.alerts &&
         a.fingerprint.monitor_events == b.fingerprint.monitor_events &&
         a.violations == b.violations;
}

OracleReport check_ops(std::span<const Op> ops,
                       std::span<const FuzzConfigSpec> specs,
                       const ExecutorOptions& exec,
                       std::vector<RunResult>* runs_out) {
  std::vector<RunResult> runs;
  runs.reserve(specs.size());
  for (const FuzzConfigSpec& spec : specs) {
    runs.push_back(run_sequence(spec, ops, exec));
  }
  OracleReport report = check_sequence(ops, specs, runs);
  // Determinism pin: the reference configuration replayed from scratch
  // must be bit-exact, cycles included.
  const RunResult rerun = run_sequence(specs[0], ops, exec);
  if (!identical_runs(runs[0], rerun)) {
    report.findings.push_back("[" + specs[0].name +
                              "] re-run was not bit-identical (simulator "
                              "nondeterminism)");
  }
  if (runs_out != nullptr) *runs_out = std::move(runs);
  return report;
}

}  // namespace

std::vector<FuzzConfigSpec> build_matrix(bool full) {
  using hypernel::Mode;
  std::vector<FuzzConfigSpec> specs;
  // Reference first: Hypernel with the word-granularity monitor is the
  // paper's headline configuration and exercises every oracle.
  specs.push_back({.name = "hypernel-word",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .granularity = secapps::Granularity::kSensitiveFields});
  specs.push_back({.name = "native", .mode = Mode::kNative});
  specs.push_back({.name = "kvm", .mode = Mode::kKvmGuest});
  specs.push_back({.name = "hypernel-object",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .granularity = secapps::Granularity::kWholeObject});
  if (!full) return specs;

  // Hardware-knob sweep: functional behaviour must survive every point.
  specs.push_back({.name = "hypernel-word-tiny-tlb",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .tlb_entries = 4});
  specs.push_back({.name = "hypernel-word-nocache",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .cache_enabled = false});
  specs.push_back({.name = "hypernel-word-small-cache",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .cache_size_bytes = 4 * 1024});
  specs.push_back({.name = "hypernel-word-slow-dram",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .l1_miss_fill = 400});
  specs.push_back({.name = "hypernel-plain", .mode = Mode::kHypernel});
  specs.push_back({.name = "native-sections",
                   .mode = Mode::kNative,
                   .use_sections = true});
  specs.push_back(
      {.name = "kvm-sections", .mode = Mode::kKvmGuest, .use_sections = true});
  specs.push_back(
      {.name = "native-tiny-tlb", .mode = Mode::kNative, .tlb_entries = 4});
  return specs;
}

OracleReport run_sequence_seed(u64 sequence_seed, const GeneratorOptions& gen,
                               std::span<const FuzzConfigSpec> specs,
                               const ExecutorOptions& exec,
                               std::vector<RunResult>* runs) {
  const std::vector<Op> ops = generate_sequence(sequence_seed, gen);
  return check_ops(ops, specs, exec, runs);
}

namespace {

/// Everything one worker produces for one sequence index.  The heavy
/// work (generation + the whole configuration matrix + oracles) happens
/// in the worker; only digest words and the failure evidence cross back
/// to the merging thread.
struct SequenceOutcome {
  bool evaluated = false;  // false only for shards skipped by fail-fast
  u64 seq_seed = 0;
  std::vector<Op> ops;
  OracleReport report;
  /// (functional_hash, cycles) of every run, matrix order.
  std::vector<std::pair<u64, u64>> run_digests;
  /// Per-sequence metrics fold (matrix order), merged campaign-wide on
  /// the merging thread.
  obs::Snapshot metrics;
  /// Per-sequence self-time fold (matrix order), host wall clock.
  obs::ProfileReport profile;
};

SequenceOutcome evaluate_sequence(u64 index, const FuzzOptions& options,
                                  const GeneratorOptions& gen,
                                  std::span<const FuzzConfigSpec> specs,
                                  const ExecutorOptions& exec) {
  SequenceOutcome out;
  out.seq_seed = sequence_seed(options.seed, index);
  out.ops = generate_sequence(out.seq_seed, gen);
  std::vector<RunResult> runs;
  out.report = check_ops(out.ops, specs, exec, &runs);
  out.run_digests.reserve(runs.size());
  for (const RunResult& run : runs) {
    out.run_digests.emplace_back(run.fingerprint.functional_hash(),
                                 run.fingerprint.cycles);
    if (exec.collect_metrics) out.metrics.merge(run.metrics);
    if (exec.profile) out.profile.merge(run.profile);
  }
  out.evaluated = true;
  return out;
}

}  // namespace

CampaignResult run_campaign(const FuzzOptions& options, std::ostream* log) {
  std::vector<FuzzConfigSpec> specs = build_matrix(options.full_matrix);
  for (FuzzConfigSpec& spec : specs) {
    spec.host_fast_path = options.host_fast_path;
    spec.decoupled_quantum = options.decoupled_quantum;
    spec.cores = options.cores;
  }
  GeneratorOptions gen{.ops = options.ops,
                       .attacks = options.attacks,
                       .forged = options.forged,
                       .extended_attacks = options.extended_attacks,
                       .scenario_pool = options.scenario_pool};
  ExecutorOptions exec{.inject_bypass = options.inject_bypass,
                       .audit_stride = options.audit_stride,
                       .collect_metrics = options.collect_metrics,
                       .snapshot_boot = options.snapshot_boot,
                       .profile = options.profile};

  // Fan the sequences out: each index is an independent universe (its
  // seed comes from the index alone), so any worker count produces the
  // same slot array.  jobs == 1 degenerates to the plain sequential
  // loop inside run_sharded.
  exec::ShardOptions shard;
  shard.jobs = options.jobs == 0 ? exec::ThreadPool::default_parallelism()
                                 : options.jobs;
  shard.fail_fast = options.fail_fast;
  exec::ShardReport shard_report;
  std::vector<SequenceOutcome> outcomes = exec::run_sharded<SequenceOutcome>(
      options.sequences,
      [&](u64 index) {
        return evaluate_sequence(index, options, gen, specs, exec);
      },
      [](const SequenceOutcome& o) { return !o.report.ok(); }, shard,
      &shard_report);

  CampaignResult result;
  result.corpus_digest = hypernel::kFnvOffset;
  result.exec.jobs = shard.jobs;
  result.exec.wall_ms = shard_report.wall_ms;
  result.exec.sequences_skipped = shard_report.indices_skipped;
  result.exec.workers = shard_report.workers;

  // Merge in index order on this thread.  Every statement below sees
  // exactly what the old sequential loop saw, so logs, digests and
  // failure details are byte-identical at any job count.
  for (u64 index = 0; index < outcomes.size(); ++index) {
    // Unevaluated slots form a suffix and only exist under fail-fast
    // (shards are submitted in index order over a FIFO queue, so every
    // index below the lowest failure has a result).
    if (!outcomes[index].evaluated) break;
    const u64 seq_seed = outcomes[index].seq_seed;
    const std::vector<Op>& ops = outcomes[index].ops;
    OracleReport report = outcomes[index].report;
    ++result.sequences_run;
    u64 seq_digest = hypernel::kFnvOffset;
    for (const auto& [hash, cycles] : outcomes[index].run_digests) {
      result.corpus_digest = hypernel::fnv_fold(result.corpus_digest, hash);
      result.corpus_digest = hypernel::fnv_fold(result.corpus_digest, cycles);
      seq_digest = hypernel::fnv_fold(hypernel::fnv_fold(seq_digest, hash),
                                      cycles);
    }
    result.sequence_digests.push_back(seq_digest);
    result.sequence_verdicts.push_back(report.ok() ? 0 : 1);
    if (options.collect_metrics) {
      result.metrics.merge(outcomes[index].metrics);
    }
    if (options.profile) result.profile.merge(outcomes[index].profile);
    if (report.ok()) {
      if (log != nullptr && (index + 1) % 10 == 0) {
        *log << "  " << (index + 1) << "/" << options.sequences
             << " sequences clean\n";
      }
      continue;
    }

    ++result.failures;
    if (result.failure_details.size() >= options.max_failures) {
      if (options.fail_fast) break;
      continue;
    }

    SequenceFailure failure;
    failure.index = index;
    failure.sequence_seed = seq_seed;
    failure.findings = report.findings;
    failure.ops = ops;
    if (options.shrink) {
      failure.ops = shrink(
          failure.ops,
          [&specs, &exec](std::span<const Op> candidate) {
            return !check_ops(candidate, specs, exec, nullptr).ok();
          },
          /*max_probes=*/400, &failure.shrink_stats);
      // Re-evaluate on the minimal sequence: its findings and failing
      // step are what the reproducer reports.
      OracleReport minimal = check_ops(failure.ops, specs, exec, nullptr);
      if (!minimal.ok()) {
        failure.findings = minimal.findings;
        report.first_bad_step = minimal.first_bad_step;
      }
    }

    // Dump the failing step's machine trace — and, when trace capture is
    // on, the whole reproducer's causal trace blob — under the reference
    // config.  One deterministic rerun serves both.
    const bool want_step_trace = report.first_bad_step != ~0ull &&
                                 report.first_bad_step < failure.ops.size();
    if (want_step_trace || options.capture_trace) {
      ExecutorOptions traced = exec;
      traced.capture_trace = options.capture_trace;
      if (want_step_trace) {
        failure.trace_step = report.first_bad_step;
        failure.trace_config = specs[0].name;
        traced.trace_step = report.first_bad_step;
      }
      RunResult rerun = run_sequence(specs[0], failure.ops, traced);
      if (want_step_trace) failure.trace = std::move(rerun.trace);
      failure.trace_blob = std::move(rerun.trace_blob);
    }

    failure.replay = "hypernel_fuzz --replay=" + std::to_string(seq_seed) +
                     " --ops=" + std::to_string(options.ops) +
                     (options.full_matrix ? " --matrix=full" : "") +
                     (options.cores != 1
                          ? " --cores=" + std::to_string(options.cores)
                          : "") +
                     (options.inject_bypass ? " --inject-bypass" : "");
    result.failure_details.push_back(std::move(failure));

    if (log != nullptr) {
      const SequenceFailure& f = result.failure_details.back();
      *log << "FAILURE at sequence " << index << " (seed " << options.seed
           << ", sequence seed " << f.sequence_seed << ")\n";
      for (const std::string& finding : f.findings) {
        *log << "  finding: " << finding << "\n";
      }
      *log << "  minimal reproducer (" << f.ops.size() << " ops):\n";
      for (size_t i = 0; i < f.ops.size(); ++i) {
        *log << "    [" << i << "] " << describe(f.ops[i]) << "\n";
      }
      if (!f.trace.empty()) {
        *log << "  machine trace of step " << f.trace_step << " under "
             << f.trace_config << ":\n";
        for (const std::string& line : f.trace) {
          *log << "    " << line << "\n";
        }
      } else if (f.trace_step != ~0ull) {
        *log << "  machine trace of step " << f.trace_step << " under "
             << f.trace_config
             << ": no architectural events (write invisible to the bus)\n";
      }
      *log << "  replay: " << f.replay << "\n";
    }
    if (options.fail_fast) break;
  }
  // Campaign-representative artifacts.  A failing campaign's trace is
  // the first failure's reproducer; everything else comes from one
  // deterministic rerun of sequence 0 under the reference configuration
  // on this (merging) thread — byte-identical at any `jobs` value and
  // invisible to digests.  Tracing and sampling share the rerun, so
  // --trace-out + --sample-cycles yields a v3 trace with the HNTSERIE
  // section embedded alongside the standalone stream.
  const bool failure_trace = options.capture_trace &&
                             !result.failure_details.empty() &&
                             !result.failure_details[0].trace_blob.empty();
  if (failure_trace) {
    result.trace_blob = result.failure_details[0].trace_blob;
  }
  const bool want_clean_trace = options.capture_trace && !failure_trace;
  if ((want_clean_trace || options.sample_cycles != 0) &&
      result.sequences_run > 0) {
    ExecutorOptions rerun = exec;
    rerun.capture_trace = want_clean_trace;
    rerun.sample_cycles = options.sample_cycles;
    const std::vector<Op> ops0 =
        generate_sequence(sequence_seed(options.seed, 0), gen);
    RunResult r0 = run_sequence(specs[0], ops0, rerun);
    if (want_clean_trace) result.trace_blob = std::move(r0.trace_blob);
    result.timeseries_blob = std::move(r0.timeseries_blob);
  }
  return result;
}

}  // namespace hn::fuzz
