#include "fuzz/fuzzer.h"

#include <algorithm>

#include "fuzz/shrink.h"

namespace hn::fuzz {
namespace {

/// Bit-exact comparison of two runs of the same configuration: every
/// step field and the full fingerprint including cycles must match.
bool identical_runs(const RunResult& a, const RunResult& b) {
  if (a.build_failed != b.build_failed) return false;
  if (a.steps.size() != b.steps.size()) return false;
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].result != b.steps[i].result ||
        a.steps[i].state_digest != b.steps[i].state_digest ||
        a.steps[i].alerts != b.steps[i].alerts ||
        a.steps[i].events != b.steps[i].events) {
      return false;
    }
  }
  return a.fingerprint.functional_hash() == b.fingerprint.functional_hash() &&
         a.fingerprint.cycles == b.fingerprint.cycles &&
         a.fingerprint.alerts == b.fingerprint.alerts &&
         a.fingerprint.monitor_events == b.fingerprint.monitor_events &&
         a.violations == b.violations;
}

OracleReport check_ops(std::span<const Op> ops,
                       std::span<const FuzzConfigSpec> specs,
                       const ExecutorOptions& exec,
                       std::vector<RunResult>* runs_out) {
  std::vector<RunResult> runs;
  runs.reserve(specs.size());
  for (const FuzzConfigSpec& spec : specs) {
    runs.push_back(run_sequence(spec, ops, exec));
  }
  OracleReport report = check_sequence(ops, specs, runs);
  // Determinism pin: the reference configuration replayed from scratch
  // must be bit-exact, cycles included.
  const RunResult rerun = run_sequence(specs[0], ops, exec);
  if (!identical_runs(runs[0], rerun)) {
    report.findings.push_back("[" + specs[0].name +
                              "] re-run was not bit-identical (simulator "
                              "nondeterminism)");
  }
  if (runs_out != nullptr) *runs_out = std::move(runs);
  return report;
}

}  // namespace

std::vector<FuzzConfigSpec> build_matrix(bool full) {
  using hypernel::Mode;
  std::vector<FuzzConfigSpec> specs;
  // Reference first: Hypernel with the word-granularity monitor is the
  // paper's headline configuration and exercises every oracle.
  specs.push_back({.name = "hypernel-word",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .granularity = secapps::Granularity::kSensitiveFields});
  specs.push_back({.name = "native", .mode = Mode::kNative});
  specs.push_back({.name = "kvm", .mode = Mode::kKvmGuest});
  specs.push_back({.name = "hypernel-object",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .granularity = secapps::Granularity::kWholeObject});
  if (!full) return specs;

  // Hardware-knob sweep: functional behaviour must survive every point.
  specs.push_back({.name = "hypernel-word-tiny-tlb",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .tlb_entries = 4});
  specs.push_back({.name = "hypernel-word-nocache",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .cache_enabled = false});
  specs.push_back({.name = "hypernel-word-small-cache",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .cache_size_bytes = 4 * 1024});
  specs.push_back({.name = "hypernel-word-slow-dram",
                   .mode = Mode::kHypernel,
                   .monitor = true,
                   .l1_miss_fill = 400});
  specs.push_back({.name = "hypernel-plain", .mode = Mode::kHypernel});
  specs.push_back({.name = "native-sections",
                   .mode = Mode::kNative,
                   .use_sections = true});
  specs.push_back(
      {.name = "kvm-sections", .mode = Mode::kKvmGuest, .use_sections = true});
  specs.push_back(
      {.name = "native-tiny-tlb", .mode = Mode::kNative, .tlb_entries = 4});
  return specs;
}

OracleReport run_sequence_seed(u64 sequence_seed, const GeneratorOptions& gen,
                               std::span<const FuzzConfigSpec> specs,
                               const ExecutorOptions& exec,
                               std::vector<RunResult>* runs) {
  const std::vector<Op> ops = generate_sequence(sequence_seed, gen);
  return check_ops(ops, specs, exec, runs);
}

CampaignResult run_campaign(const FuzzOptions& options, std::ostream* log) {
  const std::vector<FuzzConfigSpec> specs = build_matrix(options.full_matrix);
  GeneratorOptions gen{.ops = options.ops,
                       .attacks = options.attacks,
                       .forged = options.forged};
  ExecutorOptions exec{.inject_bypass = options.inject_bypass,
                       .audit_stride = options.audit_stride};

  CampaignResult result;
  result.corpus_digest = hypernel::kFnvOffset;
  for (u64 index = 0; index < options.sequences; ++index) {
    const u64 seq_seed = sequence_seed(options.seed, index);
    const std::vector<Op> ops = generate_sequence(seq_seed, gen);
    std::vector<RunResult> runs;
    OracleReport report = check_ops(ops, specs, exec, &runs);
    ++result.sequences_run;
    for (const RunResult& run : runs) {
      result.corpus_digest = hypernel::fnv_fold(
          result.corpus_digest, run.fingerprint.functional_hash());
      result.corpus_digest =
          hypernel::fnv_fold(result.corpus_digest, run.fingerprint.cycles);
    }
    if (report.ok()) {
      if (log != nullptr && (index + 1) % 10 == 0) {
        *log << "  " << (index + 1) << "/" << options.sequences
             << " sequences clean\n";
      }
      continue;
    }

    ++result.failures;
    if (result.failure_details.size() >= options.max_failures) continue;

    SequenceFailure failure;
    failure.index = index;
    failure.sequence_seed = seq_seed;
    failure.findings = report.findings;
    failure.ops = ops;
    if (options.shrink) {
      failure.ops = shrink(
          failure.ops,
          [&specs, &exec](std::span<const Op> candidate) {
            return !check_ops(candidate, specs, exec, nullptr).ok();
          },
          /*max_probes=*/400, &failure.shrink_stats);
      // Re-evaluate on the minimal sequence: its findings and failing
      // step are what the reproducer reports.
      OracleReport minimal = check_ops(failure.ops, specs, exec, nullptr);
      if (!minimal.ok()) {
        failure.findings = minimal.findings;
        report.first_bad_step = minimal.first_bad_step;
      }
    }

    // Dump the failing step's machine trace under the reference config.
    if (report.first_bad_step != ~0ull &&
        report.first_bad_step < failure.ops.size()) {
      failure.trace_step = report.first_bad_step;
      failure.trace_config = specs[0].name;
      ExecutorOptions traced = exec;
      traced.trace_step = report.first_bad_step;
      failure.trace = run_sequence(specs[0], failure.ops, traced).trace;
    }

    failure.replay = "hypernel_fuzz --replay=" + std::to_string(seq_seed) +
                     " --ops=" + std::to_string(options.ops) +
                     (options.full_matrix ? " --matrix=full" : "") +
                     (options.inject_bypass ? " --inject-bypass" : "");
    result.failure_details.push_back(std::move(failure));

    if (log != nullptr) {
      const SequenceFailure& f = result.failure_details.back();
      *log << "FAILURE at sequence " << index << " (seed " << options.seed
           << ", sequence seed " << f.sequence_seed << ")\n";
      for (const std::string& finding : f.findings) {
        *log << "  finding: " << finding << "\n";
      }
      *log << "  minimal reproducer (" << f.ops.size() << " ops):\n";
      for (size_t i = 0; i < f.ops.size(); ++i) {
        *log << "    [" << i << "] " << describe(f.ops[i]) << "\n";
      }
      if (!f.trace.empty()) {
        *log << "  machine trace of step " << f.trace_step << " under "
             << f.trace_config << ":\n";
        for (const std::string& line : f.trace) {
          *log << "    " << line << "\n";
        }
      } else if (f.trace_step != ~0ull) {
        *log << "  machine trace of step " << f.trace_step << " under "
             << f.trace_config
             << ": no architectural events (write invisible to the bus)\n";
      }
      *log << "  replay: " << f.replay << "\n";
    }
  }
  return result;
}

}  // namespace hn::fuzz
