// The two oracles of the differential fuzzing harness.
//
// Oracle 1 — differential functional equivalence: the same op sequence run
// under every configuration must produce identical per-step outcomes,
// identical per-step functional digests, and an identical final
// FunctionalFingerprint.  Only cycle counts may differ.  Hypernel-only
// probe results are compared within the Hypernel class only; monitor
// alert counts must agree across all monitored configurations, and event
// counts across configurations sharing a monitoring granularity.
//
// Oracle 2 — invariants: the per-run violations the executor collected
// (Hypersec audit findings, accepted forged hypercalls, direct PT stores
// that did not fault, attack writes that raised no alert).
//
// `check_sequence` evaluates both and reports every finding.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fuzz/executor.h"
#include "fuzz/ops.h"

namespace hn::fuzz {

struct OracleReport {
  std::vector<std::string> findings;
  /// Earliest step index implicated by a finding (~0ull when none is
  /// step-specific) — the step whose trace a reproducer should dump.
  u64 first_bad_step = ~0ull;

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// Evaluate both oracles over the runs of one sequence.  `specs` and
/// `runs` are parallel arrays; runs[0] is the reference configuration.
[[nodiscard]] OracleReport check_sequence(std::span<const Op> ops,
                                          std::span<const FuzzConfigSpec> specs,
                                          std::span<const RunResult> runs);

}  // namespace hn::fuzz
