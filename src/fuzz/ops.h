// The fuzzing operation grammar.
//
// An `Op` is a kind plus three raw 64-bit parameters drawn uniformly at
// generation time.  Parameters are *interpreted* by the executor modulo
// the live runtime state (file #a of the files that currently exist, task
// #b of the tasks currently alive, ...), never as absolute handles.  Two
// consequences the whole harness leans on:
//
//   * the same sequence executes meaningfully under every configuration,
//     because interpretation depends only on functional state, which the
//     differential oracle pins to be configuration-invariant; and
//   * every *subsequence* is still a valid sequence, which is what makes
//     shrinking (dropping ops while a failure persists) sound.
//
// Three op classes:
//   differential — run everywhere; outcome and state effect must match
//                  across every configuration;
//   attack       — run everywhere (same functional effect), and in
//                  monitored configurations must additionally raise an
//                  integrity alert (detection-completeness oracle);
//   hypernel-only — forged hypercalls / direct PT writes / TTBR hijacks
//                  that Hypersec must reject.  Outside Hypernel they are
//                  no-ops (executing them would corrupt an unprotected
//                  kernel and trivially diverge the runs).
#pragma once

#include <string>

#include "common/types.h"

namespace hn::fuzz {

enum class OpKind : u8 {
  // --- Differential: VFS ---------------------------------------------------
  kCreat,
  kMkdir,
  kUnlink,
  kRename,
  kWriteFile,
  kReadFile,
  kStat,
  kPruneDcache,
  // --- Differential: memory ------------------------------------------------
  kMmap,
  kMunmap,
  kMmapFile,
  kUserMemory,
  kUserCompute,
  // --- Differential: processes & credentials -------------------------------
  kFork,
  kExecve,
  kExit,
  kSwitchTask,
  kSetuid,
  kSigaction,
  kKillSelf,
  // --- Differential: IPC ---------------------------------------------------
  kPipeRoundTrip,
  kSocketRoundTrip,
  // --- Differential: modules -----------------------------------------------
  kInsmod,
  kRmmod,
  kModuleCall,
  // --- Attacks --------------------------------------------------------------
  kAttackCredWrite,
  kAttackDentryWrite,
  kAttackDmaWrite,
  // --- Hypernel-only probes -------------------------------------------------
  kForgedPtWrite,
  kForgedPtAlloc,
  kForgedPtFree,
  kForgedMonRegister,
  kForgedModuleSeal,
  kDirectPtWrite,
  kTtbrHijack,
  // --- Control-flow / page-table attacks (scenario library, CFI +
  // invariant-checker targets).  The table attacks run everywhere (fixed
  // kernel-image addresses, config-independent values); the PT remap is
  // Hypernel-gated (target discovery depends on the protected PT set).
  kAttackSyscallPatch,
  kAttackVectorPatch,
  kAttackModuleText,
  kAttackPtRemap,

  kCount,  // number of kinds (generator weight table bound)
};

struct Op {
  OpKind kind = OpKind::kCreat;
  u64 a = 0;
  u64 b = 0;
  u64 c = 0;
};

[[nodiscard]] constexpr const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kCreat: return "creat";
    case OpKind::kMkdir: return "mkdir";
    case OpKind::kUnlink: return "unlink";
    case OpKind::kRename: return "rename";
    case OpKind::kWriteFile: return "write";
    case OpKind::kReadFile: return "read";
    case OpKind::kStat: return "stat";
    case OpKind::kPruneDcache: return "prune-dcache";
    case OpKind::kMmap: return "mmap";
    case OpKind::kMunmap: return "munmap";
    case OpKind::kMmapFile: return "mmap-file";
    case OpKind::kUserMemory: return "user-memory";
    case OpKind::kUserCompute: return "user-compute";
    case OpKind::kFork: return "fork";
    case OpKind::kExecve: return "execve";
    case OpKind::kExit: return "exit";
    case OpKind::kSwitchTask: return "switch-task";
    case OpKind::kSetuid: return "setuid";
    case OpKind::kSigaction: return "sigaction";
    case OpKind::kKillSelf: return "kill-self";
    case OpKind::kPipeRoundTrip: return "pipe-roundtrip";
    case OpKind::kSocketRoundTrip: return "socket-roundtrip";
    case OpKind::kInsmod: return "insmod";
    case OpKind::kRmmod: return "rmmod";
    case OpKind::kModuleCall: return "module-call";
    case OpKind::kAttackCredWrite: return "attack-cred";
    case OpKind::kAttackDentryWrite: return "attack-dentry";
    case OpKind::kAttackDmaWrite: return "attack-dma";
    case OpKind::kForgedPtWrite: return "forged-pt-write";
    case OpKind::kForgedPtAlloc: return "forged-pt-alloc";
    case OpKind::kForgedPtFree: return "forged-pt-free";
    case OpKind::kForgedMonRegister: return "forged-mon-register";
    case OpKind::kForgedModuleSeal: return "forged-module-seal";
    case OpKind::kDirectPtWrite: return "direct-pt-write";
    case OpKind::kTtbrHijack: return "ttbr-hijack";
    case OpKind::kAttackSyscallPatch: return "attack-syscall";
    case OpKind::kAttackVectorPatch: return "attack-vector";
    case OpKind::kAttackModuleText: return "attack-modtext";
    case OpKind::kAttackPtRemap: return "attack-pt-remap";
    case OpKind::kCount: break;
  }
  return "?";
}

[[nodiscard]] constexpr bool is_attack(OpKind kind) {
  return kind == OpKind::kAttackCredWrite ||
         kind == OpKind::kAttackDentryWrite ||
         kind == OpKind::kAttackDmaWrite ||
         kind == OpKind::kAttackSyscallPatch ||
         kind == OpKind::kAttackVectorPatch ||
         kind == OpKind::kAttackModuleText ||
         kind == OpKind::kAttackPtRemap;
}

/// Ops that only execute under the Hypernel configuration (and whose
/// per-step result is therefore only compared within that class).
[[nodiscard]] constexpr bool is_hypernel_only(OpKind kind) {
  return (kind >= OpKind::kForgedPtWrite && kind <= OpKind::kTtbrHijack) ||
         kind == OpKind::kAttackPtRemap;
}

[[nodiscard]] inline std::string describe(const Op& op) {
  return std::string(op_name(op.kind)) + "(a=" + std::to_string(op.a) +
         ", b=" + std::to_string(op.b) + ", c=" + std::to_string(op.c) + ")";
}

}  // namespace hn::fuzz
