#include "fuzz/oracles.h"

#include <algorithm>
#include <cstdlib>

namespace hn::fuzz {
namespace {

void note_step(OracleReport* report, u64 step) {
  report->first_bad_step = std::min(report->first_bad_step, step);
}

/// Extract the "step N: " prefix the executor puts on violations, so
/// invariant findings also pin the reproducer's trace step.
u64 violation_step(const std::string& v) {
  if (!v.starts_with("step ")) return ~0ull;
  return std::strtoull(v.c_str() + 5, nullptr, 10);
}

}  // namespace

OracleReport check_sequence(std::span<const Op> ops,
                            std::span<const FuzzConfigSpec> specs,
                            std::span<const RunResult> runs) {
  OracleReport report;
  auto finding = [&report](std::string msg) {
    report.findings.push_back(std::move(msg));
  };

  // --- Oracle 2: per-run invariant violations -------------------------------
  for (const RunResult& run : runs) {
    if (run.build_failed) {
      finding("[" + run.config + "] system build failed: " + run.build_error);
      continue;
    }
    for (const std::string& v : run.violations) {
      finding("[" + run.config + "] " + v);
      if (u64 s = violation_step(v); s != ~0ull) note_step(&report, s);
    }
  }
  if (std::ranges::any_of(runs,
                          [](const RunResult& r) { return r.build_failed; })) {
    return report;  // differential comparison is meaningless with holes
  }
  if (runs.size() < 2) return report;

  // --- Oracle 1: differential comparison against the reference --------------
  const FuzzConfigSpec& ref_spec = specs[0];
  const RunResult& ref = runs[0];
  for (size_t r = 1; r < runs.size(); ++r) {
    const FuzzConfigSpec& spec = specs[r];
    const RunResult& run = runs[r];
    if (run.steps.size() != ref.steps.size()) {
      finding("[" + run.config + "] step count " +
              std::to_string(run.steps.size()) + " != reference " +
              std::to_string(ref.steps.size()));
      continue;
    }
    for (size_t i = 0; i < run.steps.size(); ++i) {
      const bool gated = is_hypernel_only(ops[i].kind);
      const bool comparable_result =
          !gated || (spec.mode == hypernel::Mode::kHypernel &&
                     ref_spec.mode == hypernel::Mode::kHypernel);
      if (comparable_result && run.steps[i].result != ref.steps[i].result) {
        finding("[" + run.config + "] step " + std::to_string(i) + " " +
                describe(ops[i]) + ": result diverged from reference");
        note_step(&report, i);
        break;  // downstream steps inherit the divergence
      }
      if (run.steps[i].state_digest != ref.steps[i].state_digest) {
        finding("[" + run.config + "] step " + std::to_string(i) + " " +
                describe(ops[i]) + ": functional state diverged");
        note_step(&report, i);
        break;
      }
    }
    if (!run.fingerprint.functionally_equal(ref.fingerprint)) {
      finding("[" + run.config + "] final fingerprint differs:\n" +
              run.fingerprint.diff(ref.fingerprint));
    }
  }

  // --- Oracle 1b: within-class detector comparisons --------------------------
  // Alert and event streams depend on which security apps are installed:
  // comparable only between configurations running the identical detector
  // suite (object monitor presence, invariant checker, CFI monitor).  The
  // object monitor's granularity widens its *watch set* but not its
  // policy, so alert counts still compare across granularities; event
  // counts only at equal granularity.  Each run compares against the
  // earliest run with the same suite.
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!specs[r].any_detector()) continue;
    for (size_t q = 0; q < r; ++q) {
      if (specs[q].monitored() != specs[r].monitored() ||
          specs[q].has_invariant_checker() !=
              specs[r].has_invariant_checker() ||
          specs[q].has_cfi_monitor() != specs[r].has_cfi_monitor()) {
        continue;
      }
      if (runs[r].fingerprint.alerts != runs[q].fingerprint.alerts) {
        finding("[" + runs[r].config + "] alert count " +
                std::to_string(runs[r].fingerprint.alerts) + " != " +
                std::to_string(runs[q].fingerprint.alerts) + " of " +
                runs[q].config);
      }
      if (specs[r].granularity == specs[q].granularity &&
          runs[r].fingerprint.monitor_events !=
              runs[q].fingerprint.monitor_events) {
        finding("[" + runs[r].config + "] monitor event count " +
                std::to_string(runs[r].fingerprint.monitor_events) + " != " +
                std::to_string(runs[q].fingerprint.monitor_events) + " of " +
                runs[q].config);
      }
      break;
    }
  }
  return report;
}

}  // namespace hn::fuzz
