#include "fuzz/seed_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hn::fuzz {
namespace {

/// Split a line into whitespace-separated tokens, dropping `#` comments.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != '#') {
      ++j;
    }
    out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_u64(std::string_view tok, u64* out) {
  const std::string s(tok);
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 0);  // base 0: decimal or 0x hex
  return end != nullptr && *end == '\0' && end != s.c_str();
}

}  // namespace

OpKind op_kind_by_name(std::string_view name) {
  for (u8 i = 0; i < static_cast<u8>(OpKind::kCount); ++i) {
    const auto kind = static_cast<OpKind>(i);
    if (name == op_name(kind)) return kind;
  }
  return OpKind::kCount;
}

std::string format_ops(std::span<const Op> ops) {
  std::string out;
  for (const Op& op : ops) {
    char line[128];
    std::snprintf(line, sizeof line, "op %s %llu %llu %llu\n",
                  op_name(op.kind), static_cast<unsigned long long>(op.a),
                  static_cast<unsigned long long>(op.b),
                  static_cast<unsigned long long>(op.c));
    out += line;
  }
  return out;
}

Result<std::vector<Op>> parse_ops(std::string_view text) {
  std::vector<Op> ops;
  u64 lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    ++lineno;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    const std::vector<std::string_view> tok = tokenize(line);
    if (tok.empty()) continue;
    if (tok[0] != "op" || tok.size() != 5) {
      return Status::Invalid("seed line " + std::to_string(lineno) +
                             ": expected `op <name> <a> <b> <c>`");
    }
    Op op;
    op.kind = op_kind_by_name(tok[1]);
    if (op.kind == OpKind::kCount) {
      return Status::Invalid("seed line " + std::to_string(lineno) +
                             ": unknown op `" + std::string(tok[1]) + "`");
    }
    if (!parse_u64(tok[2], &op.a) || !parse_u64(tok[3], &op.b) ||
        !parse_u64(tok[4], &op.c)) {
      return Status::Invalid("seed line " + std::to_string(lineno) +
                             ": malformed parameter");
    }
    ops.push_back(op);
  }
  return ops;
}

Result<std::vector<Op>> load_ops_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open seed file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = parse_ops(buf.str());
  if (!parsed.ok()) {
    return Status::Invalid(path + ": " + parsed.status().message());
  }
  return parsed;
}

Status save_ops_file(const std::string& path, std::span<const Op> ops) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write seed file " + path);
  out << format_ops(ops);
  return out ? Status::Ok() : Status::Internal("short write to " + path);
}

}  // namespace hn::fuzz
