#include "fuzz/executor.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "common/hvc_abi.h"
#include "hypersec/hypersec.h"
#include "kernel/layout.h"
#include "kernel/objects.h"
#include "secapps/cfi_monitor.h"
#include "secapps/invariant_checker.h"
#include "sim/dma_device.h"
#include "sim/iommu.h"
#include "sim/pagetable.h"
#include "sim/snapshot.h"
#include "sim/trace_io.h"

namespace hn::fuzz {
namespace {

using kernel::CredLayout;
using kernel::DentryLayout;
using kernel::ObjectKind;

/// Normalized result constants for steps that do not execute.  They must
/// be configuration-independent so skipped steps compare equal.
constexpr u64 kSkipped = 0x534B'4950ull;        // op not applicable to state
constexpr u64 kHypernelOnly = 0x484E'4F50ull;   // op gated to Hypernel mode

constexpr u64 fold(u64 h, u64 w) { return hypernel::fnv_fold(h, w); }

u64 fold_status(u64 h, const Status& s) {
  return fold(h, static_cast<u64>(s.code()));
}

/// The integrity policy of ObjectIntegrityMonitor::verify, mirrored so the
/// executor can decide which attack writes *must* alert.  Kept in lockstep
/// with the monitor (guarded by the detection-completeness oracle itself:
/// a divergence shows up as a missed or spurious expectation).
bool policy_expects_alert(ObjectKind kind, u64 word, u64 old_value,
                          u64 new_value) {
  if (kind == ObjectKind::kCred) {
    if (word >= CredLayout::kUid && word <= CredLayout::kFsgid) {
      return new_value == 0 && old_value != 0;
    }
    if (word >= CredLayout::kCapInheritable &&
        word <= CredLayout::kCapEffective) {
      return new_value == ~0ull && old_value != 0 && old_value != ~0ull;
    }
    return false;
  }
  if (word == DentryLayout::kOp) {
    return new_value != kernel::kDentryOpsVtable && new_value != 0;
  }
  if (word == DentryLayout::kInode) {
    return old_value != 0 && new_value != 0 && new_value != old_value;
  }
  return false;
}

struct FileEnt {
  std::string path;
  u64 ino = 0;
};

struct Mapping {
  VirtAddr va = 0;
  u64 len = 0;
};

// --- Snapshot-boot sessions ------------------------------------------------
//
// ExecutorOptions::snapshot_boot forks every case from a boot-time COW
// snapshot instead of building and booting a fresh system.  Sessions are
// thread_local (the sharded campaign runner gives each worker its own
// systems either way) and keyed by the spec's identity, so a full-matrix
// campaign keeps one booted system per configuration per worker.

struct BootSession {
  u64 digest = 0;
  /// Boot failures replay on every case, exactly like a fresh-boot run.
  bool build_failed = false;
  std::string build_error;
  std::unique_ptr<hypernel::System> sys;
  std::unique_ptr<secapps::ObjectIntegrityMonitor> monitor;
  std::unique_ptr<secapps::InvariantChecker> invariant;
  std::unique_ptr<secapps::CfiMonitor> cfi;
  VirtAddr scratch_va = 0;
  sim::Snapshot boot;                // system state at the fork point
  std::vector<u8> monitor_state;     // executor-owned monitor, saved apart
  std::vector<u8> invariant_state;
  std::vector<u8> cfi_state;
};

u64 session_digest(const FuzzConfigSpec& spec) {
  u64 h = hypernel::kFnvOffset;
  for (const char c : spec.name) h = fold(h, static_cast<u8>(c));
  h = fold(h, static_cast<u64>(spec.mode));
  h = fold(h, spec.monitor ? 1 : 0);
  h = fold(h, static_cast<u64>(spec.granularity));
  h = fold(h, spec.invariant_checker ? 1 : 0);
  h = fold(h, spec.cfi_monitor ? 1 : 0);
  h = fold(h, spec.tlb_entries);
  h = fold(h, spec.cache_enabled ? 1 : 0);
  h = fold(h, spec.cache_size_bytes);
  h = fold(h, spec.l1_miss_fill);
  h = fold(h, spec.use_sections ? 1 : 0);
  h = fold(h, spec.host_fast_path ? 1 : 0);
  h = fold(h, spec.decoupled_quantum);
  h = fold(h, spec.cores);
  return h;
}

/// Find or create this worker's boot session for `spec`.  The fork point is
/// the same state a fresh-boot run reaches before its first op: booted
/// system + installed monitor + mapped scratch buffer.
BootSession& boot_session(const FuzzConfigSpec& spec) {
  thread_local std::vector<std::unique_ptr<BootSession>> sessions;
  const u64 digest = session_digest(spec);
  for (auto& s : sessions) {
    if (s->digest == digest) return *s;
  }
  auto session = std::make_unique<BootSession>();
  session->digest = digest;
  auto built = hypernel::System::create(spec.system_config());
  if (!built.ok()) {
    session->build_failed = true;
    session->build_error = built.status().message();
  } else {
    session->sys = std::move(built).value();
    // Detector install order (monitor -> invariant -> CFI) matches the
    // fresh-boot path exactly: the snapshot invariance suite pins the two
    // paths bit-identical.
    if (spec.monitored()) {
      session->monitor = std::make_unique<secapps::ObjectIntegrityMonitor>(
          *session->sys, spec.granularity);
      if (Status s = session->monitor->install(); !s.ok()) {
        session->build_failed = true;
        session->build_error = "monitor install: " + s.message();
      }
    }
    if (!session->build_failed && spec.has_invariant_checker()) {
      session->invariant =
          std::make_unique<secapps::InvariantChecker>(*session->sys);
      if (Status s = session->invariant->install(); !s.ok()) {
        session->build_failed = true;
        session->build_error = "invariant checker install: " + s.message();
      }
    }
    if (!session->build_failed && spec.has_cfi_monitor()) {
      session->cfi = std::make_unique<secapps::CfiMonitor>(
          *session->sys, /*watch_dentry_ops=*/!spec.monitored());
      if (Status s = session->cfi->install(); !s.ok()) {
        session->build_failed = true;
        session->build_error = "cfi monitor install: " + s.message();
      }
    }
    if (!session->build_failed) {
      auto scratch =
          session->sys->kernel().sys_mmap(4 * kPageSize, /*writable=*/true);
      if (!scratch.ok()) {
        session->build_failed = true;
        session->build_error = "scratch mmap: " + scratch.status().message();
      } else {
        session->scratch_va = scratch.value();
        session->boot = session->sys->save_state();
        auto blob = [](const auto& app) {
          sim::SnapWriter w;
          app->save_state(w);
          return w.take();
        };
        if (session->monitor) session->monitor_state = blob(session->monitor);
        if (session->invariant) {
          session->invariant_state = blob(session->invariant);
        }
        if (session->cfi) session->cfi_state = blob(session->cfi);
      }
    }
    if (session->build_failed) {
      session->cfi.reset();
      session->invariant.reset();
      session->monitor.reset();
      session->sys.reset();
    }
  }
  sessions.push_back(std::move(session));
  return *sessions.back();
}

class Exec {
 public:
  Exec(const FuzzConfigSpec& spec, const ExecutorOptions& opt)
      : spec_(spec), opt_(opt) {}

  RunResult run(std::span<const Op> ops) {
    RunResult out;
    out.config = spec_.name;
    if (!prepare(out)) return out;

    out.steps.reserve(ops.size());
    // Cross-configuration op digest: hypernel-only probes fold as a
    // constant because their results are only comparable within the
    // Hypernel class (the differential oracle compares them separately).
    u64 digest = hypernel::kFnvOffset;
    for (size_t i = 0; i < ops.size(); ++i) {
      step_ = i;
      const bool traced = i == opt_.trace_step;
      u64 trace_mark = 0;
      if (traced) {
        m().trace().set_enabled(true);
        trace_mark = m().trace().sequence();
      }
      StepRecord rec;
      {
        obs::SelfProfiler::Scope prof(m().profiler(),
                                      obs::ProfileBucket::kStep);
        rec.result = execute(ops[i]);
      }
      if (traced) {
        for (const sim::TraceEvent& e : m().trace().since(trace_mark)) {
          char line[160];
          int n = std::snprintf(
              line, sizeof line, "%12llu cyc  #%-6llu %-8s a=%#llx b=%#llx",
              static_cast<unsigned long long>(e.at),
              static_cast<unsigned long long>(e.seq),
              sim::Trace::kind_name(e.kind),
              static_cast<unsigned long long>(e.a),
              static_cast<unsigned long long>(e.b));
          if (e.cause != sim::kNoCause && n > 0 &&
              static_cast<size_t>(n) < sizeof line) {
            std::snprintf(line + n, sizeof line - static_cast<size_t>(n),
                          "  <-#%llu",
                          static_cast<unsigned long long>(e.cause));
          }
          out.trace.emplace_back(line);
        }
        // Keep recording when the whole-run recorder is on.
        if (!opt_.capture_trace) m().trace().set_enabled(false);
      }
      rec.state_digest = state_digest();
      if (monitor_ || invariant_ || cfi_) {
        rec.alerts = total_alerts();
        rec.events = total_events();
      }
      out.steps.push_back(rec);
      digest = fold(
          digest, is_hypernel_only(ops[i].kind) ? kHypernelOnly : rec.result);
      digest = fold(digest, rec.state_digest);
      if (sys_->hypersec() &&
          (i % std::max(1u, opt_.audit_stride) == 0 || i + 1 == ops.size())) {
        audit();
      }
    }

    {
      obs::SelfProfiler::Scope prof(m().profiler(),
                                    obs::ProfileBucket::kDigest);
      out.fingerprint = hypernel::take_fingerprint(*sys_);
    }
    out.fingerprint.op_digest = digest;
    if (monitor_ || invariant_ || cfi_) {
      out.fingerprint.alerts = total_alerts();
      out.fingerprint.monitor_events = total_events();
    }
    out.violations = std::move(violations_);
    out.attacks_expected = attacks_expected_;
    out.attacks = std::move(attacks_);
    auto flatten = [&out](const char* detector,
                          const std::vector<secapps::Alert>& alerts) {
      for (const secapps::Alert& a : alerts) {
        out.alert_log.push_back(AlertRecord{detector, a.kind, a.pa, a.at});
      }
    };
    if (monitor_) flatten(monitor_->name(), monitor_->alerts());
    if (invariant_) flatten(invariant_->name(), invariant_->alerts());
    if (cfi_) flatten(cfi_->name(), cfi_->alerts());
    if (opt_.collect_metrics) out.metrics = sys_->metrics_snapshot();
    if (opt_.capture_trace) out.trace_blob = sim::capture_trace(m());
    if (opt_.sample_cycles != 0) {
      out.timeseries_blob = sim::capture_timeseries(m());
    }
    if (opt_.profile) {
      out.profile = m().profiler().report();
      constexpr auto kBoot = static_cast<unsigned>(obs::ProfileBucket::kBoot);
      out.profile.self_ns[kBoot] += boot_ns_;
      if (boot_ns_ != 0) out.profile.scopes[kBoot] += 1;
    }
    return out;
  }

 private:
  /// Acquire a booted system: either a fresh boot, or — with snapshot_boot
  /// and no per-run host instrumentation — a COW restore of this worker's
  /// cached boot session.  Returns false with out.build_* set on failure.
  bool prepare(RunResult& out) {
    const bool from_snapshot = opt_.snapshot_boot && opt_.trace_step == ~0ull &&
                               !opt_.collect_metrics && !opt_.capture_trace;
    if (from_snapshot) {
      BootSession& session = boot_session(spec_);
      if (session.build_failed) {
        out.build_failed = true;
        out.build_error = session.build_error;
        return false;
      }
      if (opt_.profile) {
        // The session machine persists across runs on this worker; arm and
        // zero its profiler so each RunResult carries only its own time.
        session.sys->machine().profiler().set_enabled(true);
        session.sys->machine().profiler().reset();
      }
      obs::SelfProfiler::Scope prof(session.sys->machine().profiler(),
                                    obs::ProfileBucket::kSnapshot);
      // Every case restores — including the first, right after the boot
      // that produced the snapshot — so all cases share one start state.
      if (Status s = session.sys->restore_state(session.boot); !s.ok()) {
        out.build_failed = true;
        out.build_error = "snapshot restore: " + s.message();
        return false;
      }
      auto restore_blob = [&out](auto& app, const std::vector<u8>& blob,
                                 const char* what) {
        if (!app) return true;
        sim::SnapReader r(blob);
        app->restore_state(r);
        if (!r.ok()) {
          out.build_failed = true;
          out.build_error =
              std::string(what) + " restore: " + r.status().message();
          return false;
        }
        return true;
      };
      if (!restore_blob(session.monitor, session.monitor_state, "monitor") ||
          !restore_blob(session.invariant, session.invariant_state,
                        "invariant checker") ||
          !restore_blob(session.cfi, session.cfi_state, "cfi monitor")) {
        return false;
      }
      sys_ = session.sys.get();
      monitor_ = session.monitor.get();
      invariant_ = session.invariant.get();
      cfi_ = session.cfi.get();
      scratch_va_ = session.scratch_va;
      // Arm the sampler at the op-phase fork point.  restore_state just
      // cleared samples and disarmed, the restored cycle counts equal the
      // fresh-boot path's, and boundaries are absolute — so the sampled
      // stream comes out byte-identical to a fresh boot's.
      if (opt_.sample_cycles != 0) m().arm_timeseries(opt_.sample_cycles);
      return true;
    }

    hypernel::SystemConfig cfg = spec_.system_config();
    cfg.metrics = opt_.collect_metrics || opt_.capture_trace;
    const u64 boot_start = obs::profile_now_ns();
    auto built = hypernel::System::create(cfg);
    if (!built.ok()) {
      out.build_failed = true;
      out.build_error = built.status().message();
      return false;
    }
    owned_sys_ = std::move(built).value();
    sys_ = owned_sys_.get();
    // Instrumented runs bind the span tracer to the raw cycle counter
    // (CycleAccount::cycles_ref()), which bypasses the decoupled fold —
    // run them on the exact path.  Observable results are identical
    // either way, so this only narrows where the optimization applies.
    if (opt_.trace_step != ~0ull || opt_.collect_metrics ||
        opt_.capture_trace) {
      m().set_decoupled_quantum(0);
    }
    if (opt_.profile) {
      // System::create predates the machine's profiler; charge the whole
      // build + boot stretch to kBoot by hand.
      m().profiler().set_enabled(true);
      m().profiler().reset();
      boot_ns_ = obs::profile_now_ns() - boot_start;
    }
    // Whole-run flight recorder, on before the monitor installs so region
    // registration is part of the causal record.
    if (opt_.capture_trace) m().trace().set_enabled(true);
    if (spec_.monitored()) {
      owned_monitor_ = std::make_unique<secapps::ObjectIntegrityMonitor>(
          *sys_, spec_.granularity);
      if (Status s = owned_monitor_->install(); !s.ok()) {
        out.build_failed = true;
        out.build_error = "monitor install: " + s.message();
        return false;
      }
      monitor_ = owned_monitor_.get();
    }
    if (spec_.has_invariant_checker()) {
      owned_invariant_ = std::make_unique<secapps::InvariantChecker>(*sys_);
      if (Status s = owned_invariant_->install(); !s.ok()) {
        out.build_failed = true;
        out.build_error = "invariant checker install: " + s.message();
        return false;
      }
      invariant_ = owned_invariant_.get();
    }
    if (spec_.has_cfi_monitor()) {
      owned_cfi_ = std::make_unique<secapps::CfiMonitor>(
          *sys_, /*watch_dentry_ops=*/!spec_.monitored());
      if (Status s = owned_cfi_->install(); !s.ok()) {
        out.build_failed = true;
        out.build_error = "cfi monitor install: " + s.message();
        return false;
      }
      cfi_ = owned_cfi_.get();
    }
    // Shared user scratch buffer for IPC payloads; part of every run, so
    // it is itself configuration-invariant.
    auto scratch = sys_->kernel().sys_mmap(4 * kPageSize, /*writable=*/true);
    if (!scratch.ok()) {
      out.build_failed = true;
      out.build_error = "scratch mmap: " + scratch.status().message();
      return false;
    }
    scratch_va_ = scratch.value();
    // Arm the sampler at the same point the snapshot path does (right
    // after boot + installs + scratch mmap) so both paths stamp the same
    // absolute boundaries from the same baseline.
    if (opt_.sample_cycles != 0) m().arm_timeseries(opt_.sample_cycles);
    return true;
  }

  kernel::Kernel& k() { return sys_->kernel(); }
  sim::Machine& m() { return sys_->machine(); }

  /// Alert/event totals across every installed detector.  With only the
  /// object monitor installed these equal the historic per-monitor counts,
  /// so pre-existing golden fingerprints are unchanged.
  u64 total_alerts() const {
    u64 n = 0;
    if (monitor_) n += monitor_->alerts().size();
    if (invariant_) n += invariant_->alerts().size();
    if (cfi_) n += cfi_->alerts().size();
    return n;
  }
  u64 total_events() const {
    u64 n = 0;
    if (monitor_) n += monitor_->stats().events_total;
    if (invariant_) n += invariant_->stats().events_total;
    if (cfi_) n += cfi_->stats().events_total;
    return n;
  }

  void violation(std::string what) {
    violations_.push_back("step " + std::to_string(step_) + ": " +
                          std::move(what));
  }

  void audit() {
    obs::SelfProfiler::Scope prof(m().profiler(), obs::ProfileBucket::kAudit);
    for (const hypersec::AuditFinding& f : sys_->hypersec()->audit_report()) {
      std::string msg = std::string("audit [") + audit_code_name(f.code) +
                        "] " + f.detail;
      if (audit_seen_.insert(msg).second) violation(std::move(msg));
    }
  }

  u64 state_digest() {
    kernel::Vfs& vfs = k().vfs();
    u64 h = hypernel::kFnvOffset;
    h = fold(h, vfs.ino_bound());
    h = fold(h, vfs.inode_count());
    h = fold(h, vfs.dcache_size());
    h = fold(h, k().procs().live_tasks());
    h = fold(h, k().modules().loaded_count());
    h = fold(h, k().procs().current().pid);
    return h;
  }

  // --- Parameter interpretation helpers -------------------------------------

  template <typename T>
  T* pick(std::vector<T>& v, u64 param) {
    if (v.empty()) return nullptr;
    return &v[param % v.size()];
  }

  kernel::Task* pick_task(u64 param) {
    std::vector<kernel::Task*> tasks = k().procs().all_tasks();
    if (tasks.empty()) return nullptr;
    return tasks[param % tasks.size()];
  }

  // --- The op interpreter ----------------------------------------------------

  u64 execute(const Op& op) {
    cur_kind_ = op.kind;
    if (is_hypernel_only(op.kind) && spec_.mode != hypernel::Mode::kHypernel) {
      return kHypernelOnly;
    }
    switch (op.kind) {
      case OpKind::kCreat: return do_creat(op);
      case OpKind::kMkdir: return do_mkdir();
      case OpKind::kUnlink: return do_unlink(op);
      case OpKind::kRename: return do_rename(op);
      case OpKind::kWriteFile: return do_write(op);
      case OpKind::kReadFile: return do_read(op);
      case OpKind::kStat: return do_stat(op);
      case OpKind::kPruneDcache: return do_prune(op);
      case OpKind::kMmap: return do_mmap(op);
      case OpKind::kMunmap: return do_munmap(op);
      case OpKind::kMmapFile: return do_mmap_file(op);
      case OpKind::kUserMemory: return do_user_memory(op);
      case OpKind::kUserCompute: return do_user_compute(op);
      case OpKind::kFork: return do_fork();
      case OpKind::kExecve: return fold_status(hypernel::kFnvOffset,
                                               k().sys_execve());
      case OpKind::kExit: return do_exit();
      case OpKind::kSwitchTask: return do_switch(op);
      case OpKind::kSetuid: return do_setuid(op);
      case OpKind::kSigaction: return do_sigaction(op);
      case OpKind::kKillSelf: return do_kill_self(op);
      case OpKind::kPipeRoundTrip: return do_pipe(op);
      case OpKind::kSocketRoundTrip: return do_socket(op);
      case OpKind::kInsmod: return do_insmod(op);
      case OpKind::kRmmod: return do_rmmod(op);
      case OpKind::kModuleCall: return do_module_call(op);
      case OpKind::kAttackCredWrite: return do_attack_cred(op);
      case OpKind::kAttackDentryWrite: return do_attack_dentry(op);
      case OpKind::kAttackDmaWrite: return do_attack_dma(op);
      case OpKind::kForgedPtWrite: return do_forged_pt_write(op);
      case OpKind::kForgedPtAlloc: return do_forged_pt_alloc(op);
      case OpKind::kForgedPtFree: return do_forged_pt_free(op);
      case OpKind::kForgedMonRegister: return do_forged_mon_register(op);
      case OpKind::kForgedModuleSeal: return do_forged_module_seal(op);
      case OpKind::kDirectPtWrite: return do_direct_pt_write(op);
      case OpKind::kTtbrHijack: return do_ttbr_hijack(op);
      case OpKind::kAttackSyscallPatch: return do_attack_syscall(op);
      case OpKind::kAttackVectorPatch: return do_attack_vector(op);
      case OpKind::kAttackModuleText: return do_attack_modtext(op);
      case OpKind::kAttackPtRemap: return do_attack_pt_remap(op);
      case OpKind::kCount: break;
    }
    return kSkipped;
  }

  // --- VFS -------------------------------------------------------------------

  u64 do_creat(const Op& op) {
    std::string parent;
    if (op.a % 4 == 0) {
      if (const std::string* d = pick(dirs_, op.b)) parent = *d;
    }
    const std::string path = parent + "/f" + std::to_string(file_serial_++);
    Result<u64> r = k().sys_creat(path);
    if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
    files_.push_back({path, r.value()});
    return fold(hypernel::kFnvOffset, r.value());
  }

  u64 do_mkdir() {
    const std::string path = "/d" + std::to_string(dir_serial_++);
    Status s = k().sys_mkdir(path);
    if (s.ok()) dirs_.push_back(path);
    return fold_status(hypernel::kFnvOffset, s);
  }

  u64 do_unlink(const Op& op) {
    if (files_.empty()) return kSkipped;
    const size_t idx = op.a % files_.size();
    Status s = k().sys_unlink(files_[idx].path);
    if (s.ok()) files_.erase(files_.begin() + static_cast<long>(idx));
    return fold_status(hypernel::kFnvOffset, s);
  }

  u64 do_rename(const Op& op) {
    if (files_.empty()) return kSkipped;
    const size_t idx = op.a % files_.size();
    const std::string to = "/r" + std::to_string(rename_serial_++);
    Status s = k().sys_rename(files_[idx].path, to);
    if (s.ok()) files_[idx].path = to;
    return fold_status(hypernel::kFnvOffset, s);
  }

  u64 do_write(const Op& op) {
    const FileEnt* f = pick(files_, op.a);
    if (!f) return kSkipped;
    const u64 offset = (op.b % 512) * kWordSize;
    u64 buf[8];
    for (unsigned i = 0; i < 8; ++i) buf[i] = fold(op.c, i);
    return fold_status(hypernel::kFnvOffset,
                       k().sys_write(f->ino, offset, buf, sizeof buf));
  }

  u64 do_read(const Op& op) {
    const FileEnt* f = pick(files_, op.a);
    if (!f) return kSkipped;
    const u64 offset = (op.b % 512) * kWordSize;
    u64 buf[8] = {};
    Status s = k().sys_read(f->ino, offset, buf, sizeof buf);
    u64 h = fold_status(hypernel::kFnvOffset, s);
    if (s.ok()) {
      for (u64 w : buf) h = fold(h, w);
    }
    return h;
  }

  u64 do_stat(const Op& op) {
    std::string path = "/";
    if (op.a % 3 == 1) {
      if (const FileEnt* f = pick(files_, op.b)) path = f->path;
    } else if (op.a % 3 == 2) {
      if (const std::string* d = pick(dirs_, op.b)) path = *d;
    }
    Result<kernel::StatInfo> r = k().sys_stat(path);
    if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
    const kernel::StatInfo& st = r.value();
    u64 h = fold(hypernel::kFnvOffset, st.ino);
    h = fold(h, st.size);
    h = fold(h, st.is_dir ? 1 : 0);
    return fold(h, st.uid);
  }

  u64 do_prune(const Op& op) {
    k().vfs().prune_dcache(1 + op.a % 8);
    return fold(hypernel::kFnvOffset, k().vfs().dcache_size());
  }

  // --- Memory ----------------------------------------------------------------

  u64 do_mmap(const Op& op) {
    if (mmaps_.size() >= 32) return kSkipped;
    const u64 len = (1 + op.a % 8) * kPageSize;
    Result<VirtAddr> r = k().sys_mmap(len, /*writable=*/op.b % 4 != 0);
    if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
    mmaps_.push_back({r.value(), len});
    return fold(hypernel::kFnvOffset, r.value());
  }

  u64 do_munmap(const Op& op) {
    if (mmaps_.empty()) return kSkipped;
    const size_t idx = op.a % mmaps_.size();
    const Mapping map = mmaps_[idx];
    // Drop the entry regardless of outcome: the owning task may have
    // exited (stale handle), and retrying forever just starves the list.
    mmaps_.erase(mmaps_.begin() + static_cast<long>(idx));
    return fold_status(hypernel::kFnvOffset, k().sys_munmap(map.va, map.len));
  }

  u64 do_mmap_file(const Op& op) {
    if (mmaps_.size() >= 32) return kSkipped;
    const FileEnt* f = pick(files_, op.a);
    if (!f) return kSkipped;
    const u64 len = (1 + op.b % 4) * kPageSize;
    Result<VirtAddr> r = k().sys_mmap_file(f->ino, len);
    if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
    mmaps_.push_back({r.value(), len});
    return fold(hypernel::kFnvOffset, r.value());
  }

  u64 do_user_memory(const Op& op) {
    return fold_status(
        hypernel::kFnvOffset,
        k().run_user_memory(32 + op.a % 224, 1 + op.b % 8, op.c));
  }

  u64 do_user_compute(const Op& op) {
    k().run_user_compute(1000 + op.a % 50'000);
    return fold(hypernel::kFnvOffset, 0);
  }

  // --- Processes -------------------------------------------------------------

  u64 do_fork() {
    if (k().procs().live_tasks() >= 10) return kSkipped;
    Result<u32> r = k().sys_fork();
    if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
    return fold(hypernel::kFnvOffset, r.value());
  }

  u64 do_exit() {
    if (k().procs().live_tasks() <= 1) return kSkipped;
    Status s = k().sys_exit();
    // Reschedule: lowest live pid (all_tasks is pid-ordered).
    std::vector<kernel::Task*> tasks = k().procs().all_tasks();
    u64 h = fold_status(hypernel::kFnvOffset, s);
    if (!tasks.empty()) {
      k().procs().switch_to(*tasks.front());
      h = fold(h, tasks.front()->pid);
    }
    return h;
  }

  u64 do_switch(const Op& op) {
    kernel::Task* t = pick_task(op.a);
    if (!t) return kSkipped;
    k().procs().switch_to(*t);
    return fold(hypernel::kFnvOffset, t->pid);
  }

  u64 do_setuid(const Op& op) {
    static constexpr u64 kUids[] = {0, 1000, 1001, 4242, 7};
    return fold_status(hypernel::kFnvOffset,
                       k().sys_setuid(kUids[op.a % std::size(kUids)]));
  }

  u64 do_sigaction(const Op& op) {
    const unsigned sig = 1 + op.a % 31;
    return fold_status(hypernel::kFnvOffset,
                       k().sys_sigaction(sig, 0x5160'0000ull + sig));
  }

  u64 do_kill_self(const Op& op) {
    return fold_status(hypernel::kFnvOffset, k().sys_kill_self(1 + op.a % 31));
  }

  // --- IPC -------------------------------------------------------------------

  u64 do_pipe(const Op& op) {
    if (pipes_.size() < 2 && (pipes_.empty() || op.a % 3 == 0)) {
      Result<u32> r = k().sys_pipe();
      if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
      pipes_.push_back(r.value());
    }
    const u32 id = *pick(pipes_, op.b);
    const u64 len = (1 + op.c % 8) * kWordSize;
    u64 h = fill_scratch(op.c, len);
    h = fold_status(h, k().sys_pipe_write(id, scratch_va_, len));
    Result<u64> r = k().sys_pipe_read(id, scratch_va_ + kPageSize, len);
    if (!r.ok()) return fold_status(h, r.status());
    return fold(readback_scratch(h, scratch_va_ + kPageSize, len), r.value());
  }

  u64 do_socket(const Op& op) {
    if (sockets_.size() < 2 && (sockets_.empty() || op.a % 3 == 0)) {
      Result<u32> r = k().sys_socketpair();
      if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
      sockets_.push_back(r.value());
    }
    const u32 id = *pick(sockets_, op.b);
    const unsigned end = op.a & 1;
    const u64 len = (1 + op.c % 8) * kWordSize;
    u64 h = fill_scratch(op.c ^ 0x50C4ull, len);
    h = fold_status(h, k().sys_socket_send(id, end, scratch_va_, len));
    // dir[] semantics: recv on the peer end drains what `end` sent.
    Result<u64> r =
        k().sys_socket_recv(id, 1 - end, scratch_va_ + kPageSize, len);
    if (!r.ok()) return fold_status(h, r.status());
    return fold(readback_scratch(h, scratch_va_ + kPageSize, len), r.value());
  }

  u64 fill_scratch(u64 seed, u64 len) {
    u64 h = hypernel::kFnvOffset;
    for (u64 off = 0; off < len; off += kWordSize) {
      const u64 v = fold(seed, off);
      Status s = k().procs().user_write64(scratch_va_ + off, v);
      h = fold_status(h, s);
    }
    return h;
  }

  u64 readback_scratch(u64 h, VirtAddr va, u64 len) {
    for (u64 off = 0; off < len; off += kWordSize) {
      Result<u64> r = k().procs().user_read64(va + off);
      h = r.ok() ? fold(h, r.value()) : fold_status(h, r.status());
    }
    return h;
  }

  // --- Modules ---------------------------------------------------------------

  u64 do_insmod(const Op& op) {
    if (modules_.size() >= 6) return kSkipped;
    kernel::ModuleImage image;
    image.name = "m" + std::to_string(module_serial_++);
    const u64 text = 2 + op.a % 6;
    for (u64 i = 0; i < text; ++i) image.text_words.push_back(fold(op.c, i));
    image.data_words = {op.b, op.c};
    Result<kernel::LoadedModule> r = k().sys_insmod(image);
    if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
    modules_.push_back(image.name);
    module_text_words_[image.name] = text;
    // Fold sizes, not text_va: frame addresses legitimately differ across
    // configurations (boot page-table consumption shifts the buddy pool).
    return fold(fold(hypernel::kFnvOffset, r.value().text_pages),
                r.value().data_pages);
  }

  u64 do_rmmod(const Op& op) {
    if (modules_.empty()) return kSkipped;
    const size_t idx = op.a % modules_.size();
    Status s = k().sys_rmmod(modules_[idx]);
    if (s.ok()) {
      module_text_words_.erase(modules_[idx]);
      modules_.erase(modules_.begin() + static_cast<long>(idx));
    }
    return fold_status(hypernel::kFnvOffset, s);
  }

  u64 do_module_call(const Op& op) {
    if (modules_.empty()) return kSkipped;
    Result<u64> r = k().sys_module_call(*pick(modules_, op.a), op.b % 8);
    if (!r.ok()) return fold_status(hypernel::kFnvOffset, r.status());
    return fold(hypernel::kFnvOffset, r.value());
  }

  // --- Attack writes ---------------------------------------------------------

  /// Pick the attack value: biased towards values the policy alerts on, so
  /// most attack steps exercise the detection path, with the occasional
  /// benign-looking write keeping the no-alert path honest.
  static u64 attack_value(ObjectKind kind, u64 word, u64 old_value,
                          u64 variant) {
    switch (variant % 4) {
      case 0:
        if (kind == ObjectKind::kCred) {
          return word >= CredLayout::kCapInheritable ? ~0ull : 0;
        }
        return 0xBAD'0000'0000'0001ull;  // dentry: hooked vtable / evil ptr
      case 1: return old_value + 1;
      case 2: return ~0ull;
      default: return old_value;  // idempotent write: never an alert
    }
  }

  struct AttackTarget {
    ObjectKind kind = ObjectKind::kCred;
    VirtAddr va = 0;  // object base
    u64 word = 0;
  };

  bool pick_attack_target(const Op& op, AttackTarget* out) {
    if ((op.a & 1) == 0) {
      kernel::Task* t = pick_task(op.b);
      if (!t) return false;
      const auto& words = CredLayout::kSensitiveWords;
      out->kind = ObjectKind::kCred;
      out->va = t->cred;
      out->word = words[op.a % words.size()];
      return true;
    }
    // Dentry: attack a cached root-level entry.
    std::vector<const FileEnt*> roots;
    for (const FileEnt& f : files_) {
      if (f.path.find('/', 1) == std::string::npos) roots.push_back(&f);
    }
    if (roots.empty()) return false;
    const FileEnt* f = roots[op.b % roots.size()];
    const VirtAddr dva =
        k().vfs().cached_dentry(k().vfs().root_ino(), f->path.substr(1));
    if (dva == 0) return false;
    out->kind = ObjectKind::kDentry;
    out->va = dva;
    out->word = (op.a >> 1) & 1 ? DentryLayout::kInode : DentryLayout::kOp;
    return true;
  }

  /// Perform one attack write and run the detection-completeness check.
  /// `bus_visible` is false only under the injected bypass (test hook).
  u64 attack_write(const AttackTarget& t, u64 variant, bool via_dma) {
    const VirtAddr va = t.va + t.word * kWordSize;
    sim::Access64 old = m().read64(va);
    if (!old.ok) return fold(hypernel::kFnvOffset, 0xFA17ull);
    const u64 nv = attack_value(t.kind, t.word, old.value, variant);
    // Which installed detector's policy demands an alert for this write:
    // the object monitor's field policy, or — when the CFI monitor owns
    // the dentry d_op watch — its baseline policy (any non-null value
    // other than the sealed vtable).
    const bool expect_om = monitor_ != nullptr &&
                           policy_expects_alert(t.kind, t.word, old.value, nv);
    const bool expect_cfi = cfi_ != nullptr && cfi_->watching_dentry_ops() &&
                            t.kind == ObjectKind::kDentry &&
                            t.word == DentryLayout::kOp && nv != old.value &&
                            nv != 0;
    const bool expect = expect_om || expect_cfi;

    sim::DmaDevice dev(m(), iommu_, /*stream_id=*/13);
    auto write_word = [&](u64 value) -> bool {
      if (via_dma) return dev.write64(kernel::virt_to_phys(va), value);
      if (opt_.inject_bypass) {
        // Verifier-bypass hook: coherent (line flushed first) but issued
        // straight to DRAM, so the bus snooper never sees it.
        const PhysAddr pa = kernel::virt_to_phys(va);
        m().cache().flush_line(pa);
        m().phys().write64(pa, value);
        return true;
      }
      return m().write64(va, value).ok;
    };

    const u64 alerts_before = total_alerts();
    const Cycles at = m().account().cycles();
    const bool wrote = write_word(nv);
    attacks_.push_back(AttackRecord{step_, cur_kind_, at, expect && wrote});

    if (wrote && expect) {
      ++attacks_expected_;
      if (total_alerts() == alerts_before) {
        violation("attack write (" +
                  std::string(t.kind == ObjectKind::kCred ? "cred" : "dentry") +
                  " word " + std::to_string(t.word) +
                  ") raised no integrity alert");
      }
    }
    // Undo the probe through the same channel: a dentry whose d_inode
    // stays corrupted would panic the kernel on the next lookup (the
    // dcache hit path reads it back from simulated memory), killing the
    // run the differential oracle needs to finish.  Detection has already
    // been judged; the restore is part of the attack op's fixed shape.
    if (wrote && nv != old.value) write_word(old.value);
    u64 h = fold(hypernel::kFnvOffset, static_cast<u64>(t.kind));
    h = fold(h, t.word);
    h = fold(h, nv);
    return fold(h, wrote ? 1 : 0);
  }

  u64 do_attack_cred(const Op& op) {
    AttackTarget t;
    Op cred_op = op;
    cred_op.a &= ~1ull;  // force the cred arm of the picker
    if (!pick_attack_target(cred_op, &t)) return kSkipped;
    return attack_write(t, op.c, /*via_dma=*/false);
  }

  u64 do_attack_dentry(const Op& op) {
    AttackTarget t;
    Op dentry_op = op;
    dentry_op.a |= 1;  // force the dentry arm
    if (!pick_attack_target(dentry_op, &t)) return kSkipped;
    return attack_write(t, op.c, /*via_dma=*/false);
  }

  u64 do_attack_dma(const Op& op) {
    AttackTarget t;
    if (!pick_attack_target(op, &t)) return kSkipped;
    return attack_write(t, op.c, /*via_dma=*/true);
  }

  // --- Control-flow / page-table attacks -------------------------------------
  // All four tamper fixed kernel structures through a DMA bus master (the
  // §8 hardware-attack vector: coherent, MMU-bypassing, bus-visible), then
  // restore through the same channel so functional state is untouched and
  // the runs stay differentially comparable.

  /// One bus-visible tamper write against a kernel physical address,
  /// followed by a restore.  `expect` = an installed detector must alert;
  /// detection is judged between tamper and restore.  Folds only the value
  /// and outcome (never the address: physical placement legitimately
  /// differs across configurations), and only when `fold_value` (PT-remap
  /// descriptors embed configuration-relative addresses).
  u64 dma_tamper(PhysAddr pa, u64 nv, bool expect, bool fold_value,
                 const char* what) {
    const u64 old = m().phys().read64(pa);  // uncharged peek
    sim::DmaDevice dev(m(), iommu_, /*stream_id=*/13);
    const u64 alerts_before = total_alerts();
    const Cycles at = m().account().cycles();
    const bool wrote = dev.write64(pa, nv);
    attacks_.push_back(AttackRecord{step_, cur_kind_, at, expect && wrote});
    if (wrote && expect) {
      ++attacks_expected_;
      if (total_alerts() == alerts_before) {
        violation(std::string(what) + " raised no integrity alert");
      }
    }
    if (wrote && nv != old) dev.write64(pa, old);
    u64 h = fold(hypernel::kFnvOffset, fold_value ? nv : 0);
    return fold(h, wrote ? 1 : 0);
  }

  u64 do_attack_syscall(const Op& op) {
    const u64 slot = op.a % kernel::kSyscallTableEntries;
    const PhysAddr pa = kernel::kSyscallTableBase + slot * kWordSize;
    const u64 legit = kernel::syscall_entry_cookie(slot);
    u64 nv = legit;
    switch (op.c % 4) {
      case 0: nv = 0x0BAD'C0DE'0000'0000ull + slot; break;  // attacker stub
      case 1: nv = legit + 8; break;  // detour past the prologue
      case 2:  // cross-wire to another legitimate handler
        nv = kernel::syscall_entry_cookie((slot + 1) %
                                          kernel::kSyscallTableEntries);
        break;
      default: break;  // idempotent rewrite: must stay silent
    }
    return dma_tamper(pa, nv, /*expect=*/cfi_ != nullptr && nv != legit,
                      /*fold_value=*/true, "syscall-table patch");
  }

  u64 do_attack_vector(const Op& op) {
    const u64 slot = op.a % kernel::kVectorTableEntries;
    const PhysAddr pa = kernel::kVectorTableBase + slot * kWordSize;
    const u64 legit = kernel::vector_entry_cookie(slot);
    u64 nv = legit;
    switch (op.c % 4) {
      case 0: nv = 0x0BAD'1D7E'0000'0000ull + slot; break;
      case 1: nv = legit + 4; break;
      case 2:
        nv = kernel::vector_entry_cookie((slot + 1) %
                                         kernel::kVectorTableEntries);
        break;
      default: break;
    }
    return dma_tamper(pa, nv, /*expect=*/cfi_ != nullptr && nv != legit,
                      /*fold_value=*/true, "exception-vector patch");
  }

  u64 do_attack_modtext(const Op& op) {
    if (modules_.empty()) return kSkipped;
    const std::string& name = *pick(modules_, op.a);
    const kernel::LoadedModule* mod = k().modules().find(name);
    const auto words_it = module_text_words_.find(name);
    if (mod == nullptr || words_it == module_text_words_.end()) {
      return kSkipped;
    }
    // Stay within the image's real text words: their content is the
    // config-independent insmod fill pattern, so the folded value is too.
    const u64 word = op.b % words_it->second;
    const PhysAddr pa =
        kernel::virt_to_phys(mod->text_va) + word * kWordSize;
    const u64 old = m().phys().read64(pa);
    u64 nv = old;
    switch (op.c % 4) {
      case 0: nv = 0x0BAD'7E87'0000'0000ull | (op.c & 0xFFFF); break;
      case 1: nv = old + 1; break;  // minimal in-place patch
      case 2: nv = ~0ull; break;
      default: break;  // idempotent rewrite: must stay silent
    }
    return dma_tamper(pa, nv, /*expect=*/cfi_ != nullptr && nv != old,
                      /*fold_value=*/true, "module-text patch");
  }

  u64 do_attack_pt_remap(const Op& op) {
    // ATRA-style remapping through the hardware vector: plant a leaf
    // descriptor directly in a live leaf-level table, dodging the
    // hypercall verifier entirely.  Only the memory-side invariant
    // checker can see this.
    const auto& pages = sys_->hypersec()->verifier().pt_pages();
    PhysAddr table = 0;
    u64 slot = 0;
    for (const auto& [pa, level] : pages) {
      if (level != 3) continue;
      for (u64 i = 0; i < kPtEntries; ++i) {
        if (m().phys().read64(pa + i * kWordSize) == 0) {
          table = pa;
          slot = i;
          break;
        }
      }
      if (table != 0) break;
    }
    if (table == 0) return kSkipped;
    const u64 variant = op.c % 4;
    u64 desc = 0;
    switch (variant) {
      case 0:  // writable window into the secure space
        desc = sim::make_page_desc(m().secure_base(),
                                   sim::PageAttrs{.write = true});
        break;
      case 1:  // writable alias of the table page itself
        desc = sim::make_page_desc(table, sim::PageAttrs{.write = true});
        break;
      case 2:  // W+X leaf
        desc = sim::make_page_desc(0x40'0000,
                                   sim::PageAttrs{.write = true, .exec = true});
        break;
      default:  // zero store: structurally inert, still bus-visible
        break;
    }
    // ANY bus write on a protected table page must alert — including the
    // inert zero store.  The descriptor embeds config-relative addresses,
    // so fold the variant instead of the raw value.
    const u64 h = dma_tamper(table + slot * kWordSize, desc,
                             /*expect=*/invariant_ != nullptr,
                             /*fold_value=*/false, "PT remap");
    return fold(h, variant);
  }

  // --- Hypernel-only probes --------------------------------------------------
  // Each is crafted to fall in a category the verifier must reject, so a
  // kOk result is itself an invariant violation and no probe ever mutates
  // functional state (which keeps the runs differentially comparable).

  u64 forged_result(const char* what, u64 res) {
    if (res == hvc::kOk) {
      violation(std::string(what) + " was accepted by Hypersec");
    }
    return fold(hypernel::kFnvOffset, res);
  }

  PhysAddr cred_page() {
    return page_align_down(
        kernel::virt_to_phys(k().procs().current().cred));
  }

  u64 do_forged_pt_write(const Op& op) {
    const u64 index = op.b % kPtEntries;
    PhysAddr table = 0;
    u64 desc = 0;
    switch (op.a % 4) {
      case 0:  // target is not a page-table page
        table = cred_page();
        desc = sim::make_page_desc(0x40'0000, sim::PageAttrs{.write = true});
        break;
      case 1:  // kernel-tree tables are immutable to hypercalls
        table = k().kpt().kernel_root();
        desc = sim::make_page_desc(0x40'0000, sim::PageAttrs{.write = true});
        break;
      case 2:  // table descriptor pointing into the secure space
        table = k().procs().current().ttbr0;
        desc = sim::make_table_desc(m().secure_base());
        break;
      default:  // leaf encoding at a non-leaf level
        table = k().procs().current().ttbr0;
        desc = sim::make_page_desc(0x40'0000, sim::PageAttrs{.write = true});
        break;
    }
    return forged_result("forged pt-write",
                         m().hvc(hvc::kPtWrite, {table, index, desc}));
  }

  u64 do_forged_pt_alloc(const Op& op) {
    PhysAddr pa = 0;
    switch (op.a % 3) {
      case 0: pa = m().secure_base(); break;   // secure space
      case 1: pa = cred_page(); break;         // live (non-zero) data
      default: pa = 0x40'0004; break;          // unaligned
    }
    return forged_result("forged pt-alloc",
                         m().hvc(hvc::kPtAlloc, {pa, op.b % 4}));
  }

  u64 do_forged_pt_free(const Op& op) {
    const PhysAddr pa = (op.a & 1) ? m().secure_base() : cred_page();
    return forged_result("forged pt-free", m().hvc(hvc::kPtFree, {pa}));
  }

  u64 do_forged_mon_register(const Op& op) {
    return forged_result(
        "forged mon-register",
        m().hvc(hvc::kMonRegister,
                {999 + op.a % 3, kernel::phys_to_virt(0x30'0000), 64}));
  }

  u64 do_forged_module_seal(const Op& op) {
    PhysAddr base = 0;
    switch (op.a % 3) {
      case 0: base = kernel::kTextBase; break;  // kernel image
      case 1: base = m().secure_base(); break;  // secure space
      default: base = 0x10'0001; break;         // unaligned
    }
    return forged_result("forged module-seal",
                         m().hvc(hvc::kModuleSeal, {base, 1 + op.b % 3}));
  }

  u64 do_direct_pt_write(const Op& op) {
    // PT pages are read-only in the linear map under Hypersec: a direct
    // store must take a permission fault and leave the descriptor intact.
    const PhysAddr root =
        (op.a & 1) ? k().procs().current().ttbr0 : k().kpt().kernel_root();
    const VirtAddr va =
        kernel::phys_to_virt(root) + (op.b % kPtEntries) * kWordSize;
    sim::Access64 acc = m().write64(
        va, sim::make_page_desc(0x40'0000, sim::PageAttrs{.write = true}));
    if (acc.ok) violation("direct PT descriptor store succeeded");
    return fold(hypernel::kFnvOffset, acc.ok ? 1 : 0);
  }

  u64 do_ttbr_hijack(const Op& op) {
    const sim::SysReg reg =
        (op.a & 1) ? sim::SysReg::TTBR1_EL1 : sim::SysReg::TTBR0_EL1;
    const u64 prev = m().sysreg(reg);
    // The secure space can never hold a registered root.
    const bool accepted = m().write_sysreg_el1(reg, m().secure_base());
    if (accepted) {
      violation("TTBR hijack to unregistered root was accepted");
      m().set_sysreg_raw(reg, prev);  // keep the run alive for reporting
    }
    return fold(hypernel::kFnvOffset, accepted ? 1 : 0);
  }

  const FuzzConfigSpec& spec_;
  const ExecutorOptions& opt_;
  // Fresh-boot path: the Exec owns the system; snapshot-boot path: the
  // thread-local BootSession does, and these stay empty.
  std::unique_ptr<hypernel::System> owned_sys_;
  std::unique_ptr<secapps::ObjectIntegrityMonitor> owned_monitor_;
  std::unique_ptr<secapps::InvariantChecker> owned_invariant_;
  std::unique_ptr<secapps::CfiMonitor> owned_cfi_;
  hypernel::System* sys_ = nullptr;
  secapps::ObjectIntegrityMonitor* monitor_ = nullptr;
  secapps::InvariantChecker* invariant_ = nullptr;
  secapps::CfiMonitor* cfi_ = nullptr;
  sim::Iommu iommu_;  // bypass mode: DMA passes in every configuration
  VirtAddr scratch_va_ = 0;
  u64 boot_ns_ = 0;  // System::create wall time (profile's kBoot share)
  size_t step_ = 0;
  OpKind cur_kind_ = OpKind::kCreat;
  std::vector<std::string> violations_;
  std::set<std::string> audit_seen_;
  u64 attacks_expected_ = 0;
  std::vector<AttackRecord> attacks_;

  // Shadow state for parameter interpretation.
  std::vector<FileEnt> files_;
  std::vector<std::string> dirs_;
  std::vector<Mapping> mmaps_;
  std::vector<u32> pipes_;
  std::vector<u32> sockets_;
  std::vector<std::string> modules_;
  std::map<std::string, u64> module_text_words_;  // image text word counts
  u64 file_serial_ = 0;
  u64 dir_serial_ = 0;
  u64 rename_serial_ = 0;
  u64 module_serial_ = 0;
};

}  // namespace

hypernel::SystemConfig FuzzConfigSpec::system_config() const {
  hypernel::SystemConfig cfg;
  cfg.mode = mode;
  // Half the default DRAM: systems are created by the hundreds per
  // campaign (matrix x shrink probes), and allocating/zeroing simulated
  // RAM dominates wall time.  48 MiB of linear map is ample for the op
  // grammar's working set.
  cfg.machine.dram_size = 64ull * 1024 * 1024;
  if (tlb_entries != 0) cfg.machine.tlb_entries = tlb_entries;
  cfg.machine.cache.enabled = cache_enabled;
  if (cache_size_bytes != 0) cfg.machine.cache.size_bytes = cache_size_bytes;
  if (l1_miss_fill != 0) cfg.machine.timing.l1_miss_fill = l1_miss_fill;
  cfg.machine.host_fast_path = host_fast_path;
  cfg.machine.decoupled_quantum = decoupled_quantum;
  cfg.machine.cores = cores == 0 ? 1 : cores;
  cfg.kernel.use_sections = use_sections;
  // enable_mbm stays true in every mode: with the MBM attached, Native
  // derives linear_limit = secure_base exactly like Hypernel (KVM always
  // does), so all configurations share one physical layout and allocator
  // behaviour — the precondition for differential comparison.
  return cfg;
}

RunResult run_sequence(const FuzzConfigSpec& spec, std::span<const Op> ops,
                       const ExecutorOptions& options) {
  return Exec(spec, options).run(ops);
}

}  // namespace hn::fuzz
