// Deterministic op-sequence generation from a SplitMix64 seed.
//
// One master seed drives a whole fuzzing campaign; each sequence gets an
// independent seed derived with `sequence_seed`, so `--seed=N --ops=K`
// (plus the sequence index) names a reproducible sequence forever — the
// replay contract printed on every failure.
#pragma once

#include <vector>

#include "common/types.h"
#include "fuzz/ops.h"

namespace hn::fuzz {

struct GeneratorOptions {
  u64 ops = 40;
  /// Include attack writes (cred/dentry/DMA tampering).
  bool attacks = true;
  /// Include Hypernel-only forged-hypercall / hijack probes.
  bool forged = true;
};

/// Seed of sequence `index` of the campaign started with `master`.
[[nodiscard]] u64 sequence_seed(u64 master, u64 index);

/// Generate a sequence; identical (seed, options) give identical output
/// on every platform (guarded by the SplitMix64 golden-value test).
[[nodiscard]] std::vector<Op> generate_sequence(u64 seed,
                                                const GeneratorOptions& opt);

}  // namespace hn::fuzz
