// Deterministic op-sequence generation from a SplitMix64 seed.
//
// One master seed drives a whole fuzzing campaign; each sequence gets an
// independent seed derived with `sequence_seed`, so `--seed=N --ops=K`
// (plus the sequence index) names a reproducible sequence forever — the
// replay contract printed on every failure.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "fuzz/ops.h"

namespace hn::fuzz {

struct GeneratorOptions {
  u64 ops = 40;
  /// Include attack writes (cred/dentry/DMA tampering).
  bool attacks = true;
  /// Include Hypernel-only forged-hypercall / hijack probes.
  bool forged = true;
  /// Include the control-flow / page-table attack kinds (syscall-table and
  /// vector patching, module-text injection, PT remapping) in the attack
  /// mix.  Off by default so every historic (seed, options) pair keeps its
  /// meaning.
  bool extended_attacks = false;
  /// Structured attack seeds: when non-empty, one whole program from the
  /// pool is spliced into the generated sequence at a seed-chosen offset,
  /// so campaigns mutate real attack scenarios instead of only random op
  /// soup.  Empty (the default) draws no extra entropy, keeping historic
  /// sequences byte-identical.
  std::span<const std::vector<Op>> scenario_pool = {};
};

/// Seed of sequence `index` of the campaign started with `master`.
[[nodiscard]] u64 sequence_seed(u64 master, u64 index);

/// Generate a sequence; identical (seed, options) give identical output
/// on every platform (guarded by the SplitMix64 golden-value test).
[[nodiscard]] std::vector<Op> generate_sequence(u64 seed,
                                                const GeneratorOptions& opt);

}  // namespace hn::fuzz
