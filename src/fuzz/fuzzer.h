// Campaign driver: ties generator, executor, oracles and shrinker into
// the deterministic fuzzing loop `hypernel_fuzz` and the regression tests
// drive.
//
// For every sequence index the driver derives a sequence seed, generates
// ops, runs them under every matrix configuration (reference first, run
// twice to pin determinism), and evaluates both oracles.  On failure it
// shrinks to a minimal reproducer, captures the failing step's machine
// trace, and renders the replay command.
//
// Sequences are independent universes (one sim::Machine per run, seed
// derived from the index), so evaluation fans out across `jobs` worker
// threads via exec::run_sharded; results merge on the calling thread in
// index order, which keeps every output — log lines, digests, failure
// details, summary counts — byte-identical at any job count.  Shrinking
// and trace capture always happen on the merging thread.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "fuzz/executor.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/shrink.h"

namespace hn::fuzz {

/// The configuration matrix.  `quick` covers the three modes plus both
/// monitoring granularities; `full` adds the hardware-knob sweep (tiny
/// TLB, disabled cache, small cache, slow DRAM, 2 MiB sections).
[[nodiscard]] std::vector<FuzzConfigSpec> build_matrix(bool full);

struct FuzzOptions {
  u64 seed = 1;
  u64 sequences = 10;
  u64 ops = 40;
  bool full_matrix = false;
  bool attacks = true;
  bool forged = true;
  /// Mix in the control-flow / page-table attack kinds (GeneratorOptions::
  /// extended_attacks).  Off by default: historic seeds keep their meaning.
  bool extended_attacks = false;
  /// Structured attack scenarios (src/attacks) used as generator seeds:
  /// when non-empty, each sequence splices one whole program from the pool
  /// at a seed-chosen offset.
  std::vector<std::vector<Op>> scenario_pool;
  bool shrink = true;
  bool inject_bypass = false;  // test-only verifier-bypass hook
  unsigned audit_stride = 1;
  u64 max_failures = 3;  // stop collecting details after this many
  /// Worker threads evaluating sequences.  1 (the library default) runs
  /// everything on the calling thread; 0 means hardware concurrency.
  /// The job count never changes results, only wall-clock.
  unsigned jobs = 1;
  /// Stop the campaign at the first failing sequence (cooperative
  /// cancellation of the remaining shards).
  bool fail_fast = false;
  /// Off = run every configuration in host-side reference mode
  /// (sim::MachineConfig::host_fast_path).  Never changes results — the
  /// campaign digest must be identical either way.
  bool host_fast_path = true;
  /// Simulated core count for every configuration in the matrix (1 =
  /// pre-SMP behaviour, bit-identical digests).
  unsigned cores = 1;
  /// Non-zero = temporally decoupled execution for every configuration
  /// (sim::MachineConfig::decoupled_quantum).  Host wiring only: the
  /// campaign digest must be identical at any quantum.
  Cycles decoupled_quantum = 0;
  /// Enable the host self-time profiler on every run and merge the
  /// reports (index order) into CampaignResult::profile.  Host wall
  /// clock — never part of digests or verdicts.
  bool profile = false;
  /// Collect per-run observability metrics and fold them (index order)
  /// into CampaignResult::metrics.  Purely additive: never changes
  /// digests, verdicts or simulated cycles.
  bool collect_metrics = false;
  /// Capture causal flight-recorder traces (sim/trace_io.h): one blob per
  /// failure (the minimal reproducer, reference configuration) and one
  /// campaign-representative blob in CampaignResult::trace_blob.  Capture
  /// happens via deterministic reruns on the merging thread, so blobs are
  /// byte-identical at any `jobs` value and never perturb digests.
  bool capture_trace = false;
  /// Fork every case from a per-configuration boot snapshot (COW restore)
  /// instead of re-booting (ExecutorOptions::snapshot_boot).  Results are
  /// bit-identical either way; only host wall-clock changes.
  bool snapshot_boot = false;
  /// Non-zero = sample time-series tracks every N simulated cycles
  /// (ExecutorOptions::sample_cycles) and produce one campaign-
  /// representative stream in CampaignResult::timeseries_blob via a
  /// deterministic rerun on the merging thread (like capture_trace).
  /// Never perturbs digests or verdicts.
  Cycles sample_cycles = 0;
};

struct SequenceFailure {
  u64 index = 0;
  u64 sequence_seed = 0;
  std::vector<Op> ops;  // minimal reproducer (original if shrinking off)
  std::vector<std::string> findings;
  ShrinkStats shrink_stats;
  u64 trace_step = ~0ull;
  std::string trace_config;
  std::vector<std::string> trace;  // failing step's machine trace
  /// Serialized causal trace of the minimal reproducer under the
  /// reference configuration (FuzzOptions::capture_trace).
  std::vector<u8> trace_blob;
  std::string replay;              // command line reproducing the failure
};

/// Host-side execution stats of one campaign (wall time, per-worker
/// throughput).  Reporting only — never part of the determinism
/// contract, so tools print it to stderr.
struct CampaignExecStats {
  unsigned jobs = 1;  // resolved worker count actually used
  double wall_ms = 0;
  u64 sequences_skipped = 0;  // skipped by --fail-fast cancellation
  std::vector<exec::WorkerStats> workers;  // empty when jobs == 1
};

struct CampaignResult {
  u64 sequences_run = 0;
  u64 failures = 0;
  /// FNV fold of every run's functional hash + cycles, in order: two
  /// campaigns with equal options must produce equal digests (the
  /// determinism contract `--seed=N` promises).
  u64 corpus_digest = 0;
  /// Per-sequence digests and verdicts (1 = failed), index-ordered.
  /// Equal options must produce equal vectors at any `jobs` value — the
  /// cross-thread determinism regression test pins exactly this.
  std::vector<u64> sequence_digests;
  std::vector<u8> sequence_verdicts;
  std::vector<SequenceFailure> failure_details;
  CampaignExecStats exec;
  /// Campaign-wide metrics fold (FuzzOptions::collect_metrics): every
  /// run's snapshot merged in (sequence, matrix) order.  Merge is
  /// commutative and associative, so the result is identical at any
  /// `jobs` value — the campaign determinism test pins this too.
  obs::Snapshot metrics;
  /// Campaign-representative causal trace (FuzzOptions::capture_trace):
  /// the first failure's reproducer trace, or a rerun of sequence 0 under
  /// the reference configuration when the campaign is clean.
  std::vector<u8> trace_blob;
  /// Campaign-representative sampled time series (FuzzOptions::
  /// sample_cycles): sequence 0 under the reference configuration, rerun
  /// on the merging thread so the blob is byte-identical at any `jobs`.
  std::vector<u8> timeseries_blob;
  /// Campaign-wide self-time fold (FuzzOptions::profile): every run's
  /// profiler report merged.  Host wall clock, reporting only.
  obs::ProfileReport profile;

  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// Run one sequence (by seed) across `specs`; runs[0] is the reference
/// and is executed twice to assert bit-exact determinism.  Exposed for
/// the regression corpus and for `--replay`.
[[nodiscard]] OracleReport run_sequence_seed(u64 sequence_seed,
                                             const GeneratorOptions& gen,
                                             std::span<const FuzzConfigSpec> specs,
                                             const ExecutorOptions& exec,
                                             std::vector<RunResult>* runs = nullptr);

/// Full campaign.  `log` (optional) receives progress and failure reports.
[[nodiscard]] CampaignResult run_campaign(const FuzzOptions& options,
                                          std::ostream* log = nullptr);

}  // namespace hn::fuzz
