// Greedy delta-debugging shrinker for failing op sequences.
//
// Sound because any subsequence of a generated sequence is itself a valid
// sequence (op parameters are interpreted modulo live state, never as
// absolute handles — see ops.h).  The shrinker repeatedly deletes chunks,
// halving the chunk size, keeping any deletion under which the failure
// predicate still holds; the result is 1-minimal at chunk size 1 (no
// single remaining op can be removed).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "fuzz/ops.h"

namespace hn::fuzz {

/// Returns true when the candidate sequence still fails.
using FailPredicate = std::function<bool(std::span<const Op>)>;

struct ShrinkStats {
  u64 probes = 0;       // predicate evaluations performed
  u64 ops_removed = 0;  // original size minus final size
};

/// Minimise `ops` under `fails` (which must hold for `ops` itself).
/// `max_probes` bounds the work: each probe replays the whole
/// configuration matrix, so the default keeps shrinking under a second
/// for typical sequences.
[[nodiscard]] std::vector<Op> shrink(std::vector<Op> ops,
                                     const FailPredicate& fails,
                                     u64 max_probes = 400,
                                     ShrinkStats* stats = nullptr);

}  // namespace hn::fuzz
