#include "fuzz/generator.h"

#include <cstddef>

#include "common/rng.h"

namespace hn::fuzz {
namespace {

struct Weighted {
  OpKind kind;
  u64 weight;
};

// The mix leans on the paths the paper's evaluation leans on: VFS churn
// (dentry/cred slab traffic the MBM counts), fork/exec storms (the
// page-table write worst case), mmap/munmap (hypercall volume), with a
// steady trickle of attacks and forged-hypercall probes.
constexpr Weighted kMix[] = {
    {OpKind::kCreat, 10},        {OpKind::kMkdir, 3},
    {OpKind::kUnlink, 5},        {OpKind::kRename, 4},
    {OpKind::kWriteFile, 8},     {OpKind::kReadFile, 6},
    {OpKind::kStat, 5},          {OpKind::kPruneDcache, 2},
    {OpKind::kMmap, 6},          {OpKind::kMunmap, 4},
    {OpKind::kMmapFile, 3},      {OpKind::kUserMemory, 4},
    {OpKind::kUserCompute, 3},   {OpKind::kFork, 6},
    {OpKind::kExecve, 3},        {OpKind::kExit, 3},
    {OpKind::kSwitchTask, 4},    {OpKind::kSetuid, 3},
    {OpKind::kSigaction, 2},     {OpKind::kKillSelf, 2},
    {OpKind::kPipeRoundTrip, 4}, {OpKind::kSocketRoundTrip, 3},
    {OpKind::kInsmod, 3},        {OpKind::kRmmod, 2},
    {OpKind::kModuleCall, 2},
};

constexpr Weighted kAttackMix[] = {
    {OpKind::kAttackCredWrite, 3},
    {OpKind::kAttackDentryWrite, 3},
    {OpKind::kAttackDmaWrite, 1},
};

// Only mixed in under GeneratorOptions::extended_attacks, so the default
// tables — and with them every pinned campaign digest — stay byte-stable.
constexpr Weighted kExtendedAttackMix[] = {
    {OpKind::kAttackSyscallPatch, 1},
    {OpKind::kAttackVectorPatch, 1},
    {OpKind::kAttackModuleText, 1},
    {OpKind::kAttackPtRemap, 1},
};

constexpr Weighted kForgedMix[] = {
    {OpKind::kForgedPtWrite, 3},   {OpKind::kForgedPtAlloc, 1},
    {OpKind::kForgedPtFree, 1},    {OpKind::kForgedMonRegister, 1},
    {OpKind::kForgedModuleSeal, 1}, {OpKind::kDirectPtWrite, 1},
    {OpKind::kTtbrHijack, 1},
};

}  // namespace

u64 sequence_seed(u64 master, u64 index) {
  // Two SplitMix64 steps decorrelate adjacent indices thoroughly.
  SplitMix64 rng(master ^ (index * 0x9E3779B97F4A7C15ull));
  rng.next();
  return rng.next();
}

std::vector<Op> generate_sequence(u64 seed, const GeneratorOptions& opt) {
  SplitMix64 rng(seed);

  std::vector<Weighted> table(std::begin(kMix), std::end(kMix));
  if (opt.attacks) {
    table.insert(table.end(), std::begin(kAttackMix), std::end(kAttackMix));
    if (opt.extended_attacks) {
      table.insert(table.end(), std::begin(kExtendedAttackMix),
                   std::end(kExtendedAttackMix));
    }
  }
  if (opt.forged) {
    table.insert(table.end(), std::begin(kForgedMix), std::end(kForgedMix));
  }
  u64 total = 0;
  for (const Weighted& w : table) total += w.weight;

  std::vector<Op> ops;
  ops.reserve(opt.ops);
  for (u64 i = 0; i < opt.ops; ++i) {
    u64 pick = rng.next_below(total);
    OpKind kind = table.front().kind;
    for (const Weighted& w : table) {
      if (pick < w.weight) {
        kind = w.kind;
        break;
      }
      pick -= w.weight;
    }
    // Parameters are raw entropy; the executor maps them into the live
    // state space.  Drawing all three unconditionally keeps the stream
    // alignment independent of the kind picked.
    ops.push_back(Op{kind, rng.next(), rng.next(), rng.next()});
  }
  // Structured-seed splice: one whole scenario program lands intact at a
  // seed-chosen offset.  Entropy is drawn only when a pool is supplied, so
  // pool-less campaigns replay historic sequences byte-for-byte.
  if (!opt.scenario_pool.empty()) {
    const std::vector<Op>& prog =
        opt.scenario_pool[rng.next_below(opt.scenario_pool.size())];
    const u64 at = rng.next_below(ops.size() + 1);
    ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(at), prog.begin(),
               prog.end());
  }
  return ops;
}

}  // namespace hn::fuzz
