// Structured attack-seed I/O: the replayable text format for op programs.
//
// One op per line — `op <name> <a> <b> <c>` with the generator's op names
// and decimal or 0x-hex parameters; `#` starts a comment.  The format is
// the bridge between the attack-scenario library (tests/fuzz/corpus/
// attack_*.ops), the fuzzer's structured-seed pool, and hand-written
// repro files for `hypernel_fuzz --replay-file`.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fuzz/ops.h"

namespace hn::fuzz {

/// Op kind by generator name ("creat", "attack-syscall", ...); kCount on
/// no match.
[[nodiscard]] OpKind op_kind_by_name(std::string_view name);

/// Render `ops` in the text format (one line per op, trailing newline).
[[nodiscard]] std::string format_ops(std::span<const Op> ops);

/// Parse the text format.  Malformed lines and unknown op names are
/// errors naming the line number.
[[nodiscard]] Result<std::vector<Op>> parse_ops(std::string_view text);

/// Load / save a seed file in the text format.
[[nodiscard]] Result<std::vector<Op>> load_ops_file(const std::string& path);
Status save_ops_file(const std::string& path, std::span<const Op> ops);

}  // namespace hn::fuzz
