#include "fuzz/shrink.h"

#include <algorithm>

namespace hn::fuzz {

std::vector<Op> shrink(std::vector<Op> ops, const FailPredicate& fails,
                       u64 max_probes, ShrinkStats* stats) {
  const u64 original = ops.size();
  u64 probes = 0;
  u64 chunk = ops.size() / 2;
  if (chunk == 0) chunk = 1;

  while (chunk >= 1 && !ops.empty() && probes < max_probes) {
    bool removed_any = false;
    // Walk back to front so surviving indices stay valid after erase.
    for (size_t start = ops.size() >= chunk ? ops.size() - chunk : 0;;) {
      if (probes >= max_probes) break;
      std::vector<Op> candidate;
      candidate.reserve(ops.size() - std::min<u64>(chunk, ops.size()));
      candidate.insert(candidate.end(), ops.begin(),
                       ops.begin() + static_cast<long>(start));
      const size_t end = std::min(start + chunk, ops.size());
      candidate.insert(candidate.end(),
                       ops.begin() + static_cast<long>(end), ops.end());
      ++probes;
      if (fails(candidate)) {
        ops = std::move(candidate);
        removed_any = true;
      }
      if (start == 0) break;
      start = start >= chunk ? start - chunk : 0;
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk /= 2;
    } else if (chunk > ops.size() && !ops.empty()) {
      chunk = ops.size();
    }
  }
  if (stats != nullptr) {
    stats->probes = probes;
    stats->ops_removed = original - ops.size();
  }
  return ops;
}

}  // namespace hn::fuzz
