// Executes one op sequence against one system configuration, producing
// the evidence both oracles consume:
//
//   * per-step records (normalized op outcome + cheap functional digest +
//     cumulative alert/event counts) for the differential oracle;
//   * a final full FunctionalFingerprint;
//   * invariant violations found *during* the run: Hypersec::audit()
//     failures, forged operations that were accepted, direct PT writes
//     that did not fault, and attack writes that raised no alert in a
//     monitored configuration (detection completeness).
//
// The executor keeps its own shadow of the coarse kernel state (paths
// created, pids alive, mappings, modules, channels) purely to *interpret*
// op parameters; all truth lives in the simulated kernel.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "fuzz/ops.h"
#include "hypernel/fingerprint.h"
#include "hypernel/system.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "secapps/object_monitor.h"

namespace hn::fuzz {

/// Default quantum for `--decoupled` without an explicit value: large
/// enough to amortize the fold, small enough that the pending charge
/// never grows past a few syscalls' worth of cycles.
inline constexpr Cycles kDefaultDecoupledQuantum = 4096;

/// One cell of the configuration matrix.  Spec -> SystemConfig is pure, so
/// a spec names a reproducible system.
struct FuzzConfigSpec {
  std::string name;
  hypernel::Mode mode = hypernel::Mode::kHypernel;
  /// Attach the ObjectIntegrityMonitor (Hypernel mode only).
  bool monitor = false;
  secapps::Granularity granularity = secapps::Granularity::kSensitiveFields;
  /// Attach the nested-kernel InvariantChecker (Hypernel mode only).
  bool invariant_checker = false;
  /// Attach the kernel-CFI monitor (Hypernel mode only).  Its dentry-op
  /// watch auto-disables when the object monitor is co-installed (one
  /// owner per monitored word).
  bool cfi_monitor = false;
  // Hardware knobs (0 / default-preserving values mean "stock").
  unsigned tlb_entries = 0;
  bool cache_enabled = true;
  u64 cache_size_bytes = 0;
  Cycles l1_miss_fill = 0;
  /// 2 MiB section linear map (Native/KVM only: Hypersec requires 4 KiB).
  bool use_sections = false;
  /// Off = host-side reference mode (no cached walk context, no bulk
  /// charge-replay).  Results are bit-identical either way; the fast-path
  /// differential test runs the corpus with this forced off.
  bool host_fast_path = true;
  /// Non-zero = temporally decoupled mode (sim::MachineConfig::
  /// decoupled_quantum): cycle charges accumulate locally and fold at
  /// every observation point, so all observable timing — bus timestamps,
  /// detection latencies, fingerprint cycles — stays bit-identical to the
  /// exact path.  Host wiring only; never part of simulated state.
  Cycles decoupled_quantum = 0;
  /// Simulated core count (sim::MachineConfig::cores).  A differential
  /// dimension like the mode matrix: 1 reproduces every pre-SMP digest
  /// bit-for-bit; >1 adds the deterministic SMP machinery (DESIGN.md §15).
  unsigned cores = 1;

  [[nodiscard]] hypernel::SystemConfig system_config() const;
  [[nodiscard]] bool monitored() const {
    return monitor && mode == hypernel::Mode::kHypernel;
  }
  [[nodiscard]] bool has_invariant_checker() const {
    return invariant_checker && mode == hypernel::Mode::kHypernel;
  }
  [[nodiscard]] bool has_cfi_monitor() const {
    return cfi_monitor && mode == hypernel::Mode::kHypernel;
  }
  /// Any security app installed (alert/event counters are live).
  [[nodiscard]] bool any_detector() const {
    return monitored() || has_invariant_checker() || has_cfi_monitor();
  }
};

struct StepRecord {
  u64 result = 0;        // normalized op outcome (compared differentially)
  u64 state_digest = 0;  // cheap functional digest after the op
  u64 alerts = 0;        // cumulative integrity alerts
  u64 events = 0;        // cumulative monitor events
};

/// One tamper write as the executor performed it: the raw material for
/// the scorecard's per-attack detection-latency attribution.
struct AttackRecord {
  u64 step = 0;            // op index in the sequence
  OpKind kind = OpKind::kCreat;
  Cycles at = 0;           // simulated cycles just before the tamper write
  bool expected = false;   // an installed detector's policy must alert
};

/// One detector alert, flattened across every installed security app.
struct AlertRecord {
  std::string detector;    // SecurityApp::name()
  secapps::AlertKind kind = secapps::AlertKind::kCount;
  PhysAddr pa = 0;
  Cycles at = 0;
};

struct RunResult {
  std::string config;
  bool build_failed = false;   // System::create failed (always a finding)
  std::string build_error;
  std::vector<StepRecord> steps;
  hypernel::FunctionalFingerprint fingerprint;
  /// Invariant-oracle findings, each prefixed "step N: ".
  std::vector<std::string> violations;
  u64 attacks_expected = 0;    // attack writes that policy says must alert
  /// Every tamper write performed, in execution order.
  std::vector<AttackRecord> attacks;
  /// Every alert raised by any installed detector (scorecard evidence).
  std::vector<AlertRecord> alert_log;
  /// Rendered sim::Trace of the step selected by ExecutorOptions::trace_step.
  std::vector<std::string> trace;
  /// Metrics snapshot of the run (ExecutorOptions::collect_metrics).
  obs::Snapshot metrics;
  /// Serialized flight-recorder trace of the whole run
  /// (ExecutorOptions::capture_trace; format in sim/trace_io.h).
  std::vector<u8> trace_blob;
  /// Serialized HNTSERIE time-series stream of the whole run
  /// (ExecutorOptions::sample_cycles; format in obs/timeseries.h).
  /// Bit-identical across --jobs, fast-path/reference, decoupled, and
  /// snapshot-boot — the matrix determinism test pins all four axes.
  std::vector<u8> timeseries_blob;
  /// Host self-time attribution of the run (ExecutorOptions::profile).
  /// Host wall clock — nondeterministic, never folded into digests.
  obs::ProfileReport profile;
};

struct ExecutorOptions {
  /// Test-only verifier-bypass hook: CPU attack writes go straight to
  /// physical memory (cache line flushed first), invisible to the bus
  /// snooper.  Functionally identical in every configuration; in a
  /// monitored configuration the detection-completeness oracle must
  /// catch the silence.  Exists to prove the oracle has teeth.
  bool inject_bypass = false;
  /// Run Hypersec::audit() every N steps (and always after the last).
  unsigned audit_stride = 1;
  /// When set, enable machine tracing around this step index and return
  /// its events (via Trace::sequence()/since()) in RunResult::trace.
  u64 trace_step = ~0ull;
  /// Enable the observability registry for the run and return its
  /// snapshot in RunResult::metrics.
  bool collect_metrics = false;
  /// Record the causal flight recorder for the whole run and return the
  /// serialized blob in RunResult::trace_blob.  Implies the registry
  /// (spans are interleaved on the exported timeline).
  bool capture_trace = false;
  /// Fork every case from a per-configuration boot snapshot (COW restore)
  /// instead of building and booting a fresh system.  Results are
  /// bit-identical either way (the snapshot invariance suite pins this);
  /// only host wall-clock changes.  Ignored — with a fresh boot — for
  /// runs that need per-run host-side instrumentation (trace_step,
  /// collect_metrics, capture_trace).
  bool snapshot_boot = false;
  /// Enable the self-time profiler for the run and return its report in
  /// RunResult::profile.  Host-only: results are unchanged.
  bool profile = false;
  /// Non-zero = sample every enrolled time-series track every N simulated
  /// cycles and return the serialized stream in
  /// RunResult::timeseries_blob.  Tracks probe always-live accumulators
  /// (not registry handles), so sampling needs no registry and, unlike
  /// metrics/trace capture, composes with snapshot_boot: the sampler
  /// arms at the op phase in both paths, and delta-encoded counter
  /// tracks make the streams byte-identical.  Host-side only — never
  /// part of simulated state or any digest: restoring a boot snapshot
  /// clears and disarms the sampler, so boot sessions stay
  /// sampling-agnostic and each sampled run re-arms explicitly.
  Cycles sample_cycles = 0;
};

/// Run `ops` under `spec`.  Deterministic: same (spec, ops, options) give
/// a byte-identical RunResult.
[[nodiscard]] RunResult run_sequence(const FuzzConfigSpec& spec,
                                     std::span<const Op> ops,
                                     const ExecutorOptions& options = {});

}  // namespace hn::fuzz
