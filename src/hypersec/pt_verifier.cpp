#include "hypersec/pt_verifier.h"

namespace hn::hypersec {

Verdict PtVerifier::check_pt_write(PhysAddr table_pa, unsigned index,
                                   u64 desc) {
  ++stats_.checked;
  (void)index;

  // Writes may only target registered translation-table pages: a request
  // naming any other page would turn Hypersec into a write oracle.
  const int level = pt_level(table_pa);
  if (level < 0) {
    ++stats_.denied_not_pt_page;
    return Verdict::kDeny;
  }

  // The kernel linear map is sealed at boot; runtime edits of its tables
  // are how an ATRA-style relocation would be staged.
  if (is_kernel_tree(table_pa)) {
    ++stats_.denied_kernel_tree;
    return Verdict::kDeny;
  }

  if (!sim::desc_valid(desc)) return Verdict::kAllow;  // unmap: always fine

  const PhysAddr out = sim::desc_out_addr(desc);

  // §5.2.1: the secure space stays unmappable — as a leaf (direct access)
  // and as a table (the walker would treat secure memory as descriptors).
  if (machine_.in_secure_space(out, kPageSize)) {
    ++stats_.denied_secure_map;
    return Verdict::kDeny;
  }

  const bool bit1 = bit(desc, sim::kDescTable);
  if (level <= 2 && bit1) {
    // Table descriptor: must reference a registered table page of the
    // next level, or the kernel could splice attacker-crafted descriptor
    // pages into the walk.
    if (pt_level(out) != level + 1) {
      ++stats_.denied_bad_table;
      return Verdict::kDeny;
    }
    return Verdict::kAllow;
  }

  // Leaf descriptor: 4 KiB page at level 3, or 2 MiB block at level 2.
  if (level == 3 && !bit1) {
    ++stats_.denied_bad_encoding;  // reserved encoding; walker would fault
    return Verdict::kDeny;
  }
  if (level < 2) {
    ++stats_.denied_bad_encoding;  // 1 GiB+ blocks unsupported in this model
    return Verdict::kDeny;
  }
  const u64 span = sim::level_span(static_cast<unsigned>(level));

  const sim::PageAttrs attrs = sim::decode_attrs(desc);

  // W^X over the kernel space (§5.2.1).
  if (attrs.write && attrs.exec) {
    ++stats_.denied_wx;
    return Verdict::kDeny;
  }

  if (attrs.write) {
    // No writable alias of any table page or of sealed module text...
    for (PhysAddr p = out; p < out + span; p += kPageSize) {
      if (is_pt_page(p) || is_module_text(p)) {
        ++stats_.denied_pt_writable;
        return Verdict::kDeny;
      }
    }
    // ...nor of kernel text or rodata.
    if (ranges_overlap(out, span, text_base_, text_size_) ||
        ranges_overlap(out, span, rodata_base_, rodata_size_)) {
      ++stats_.denied_text_writable;
      return Verdict::kDeny;
    }
  }

  return Verdict::kAllow;
}

}  // namespace hn::hypersec
