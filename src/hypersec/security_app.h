// The security-application interface (§5.1: "security solutions" hosted in
// the secure space).  Apps run at EL2 under Hypersec's isolation; they
// register kernel regions for word-granularity monitoring and receive the
// (address, value) write events the MBM captures.
#pragma once

#include "common/types.h"
#include "mbm/event_ring.h"

namespace hn::hypersec {

/// A monitored region as Hypersec tracks it: the kernel VA the app
/// registered, its resolved PA, and the owning app (SID).
struct RegionInfo {
  u64 sid = 0;
  VirtAddr va_base = 0;
  PhysAddr pa_base = 0;
  u64 size = 0;
};

/// Outcome of one verification: did the app flag the write as an attack?
/// Stamped into the kVerdict flight-recorder event so offline tools can
/// tell alerts from verified-benign writes.
enum class AppVerdict : u8 {
  kBenign = 0,  // verification passed; no alert raised
  kAlert = 1,   // integrity violation: the app raised an alert
};

class SecurityApp {
 public:
  virtual ~SecurityApp() = default;

  /// Stable security-application ID (§5.3: the SID hypercall argument).
  [[nodiscard]] virtual u64 sid() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// One monitored write event: called from Hypersec's MBM interrupt
  /// handler (§5.3 step 8) with the matched region.  The app performs its
  /// integrity verification here (charging EL2 cycles as it works) and
  /// reports whether the write was an integrity violation.
  virtual AppVerdict on_write_event(const mbm::MonitorEvent& event,
                                    const RegionInfo& region) = 0;
};

}  // namespace hn::hypersec
