#include "hypersec/hypersec.h"

#include <cassert>

#include "common/hvc_abi.h"
#include "common/log.h"
#include "kernel/layout.h"
#include "sim/pagetable.h"
#include "sim/sysregs.h"

namespace hn::hypersec {

using sim::SysReg;
using sim::TrapVerdict;

Hypersec::Hypersec(sim::Machine& machine, kernel::Kernel& kernel,
                   mbm::MemoryBusMonitor* mbm, const HypersecConfig& config)
    : machine_(machine), kernel_(kernel), mbm_(mbm), config_(config),
      verifier_(machine, kernel::kTextBase, kernel::kTextSize,
                kernel::kRodataBase, kernel::kRodataSize) {
  obs::Registry& obs = machine_.obs();
  obs_hvc_calls_ = obs.counter("hypersec.hvc.calls");
  obs_verify_cycles_ = obs.counter("hypersec.hvc.verify_cycles");
  obs_pt_writes_ = obs.counter("hypersec.pt_writes");
  obs_pt_write_denials_ = obs.counter("hypersec.pt_write_denials");
  obs_traps_ = obs.counter("hypersec.traps");
  obs_trap_denials_ = obs.counter("hypersec.trap_denials");
  span_hvc_ = machine_.spans().intern("hypersec.hvc");
  span_trap_ = machine_.spans().intern("hypersec.trap");
}

Hypersec::~Hypersec() {
  machine_.install_hypercall_handler(nullptr);
  machine_.install_sysreg_trap_handler(nullptr);
}

bool Hypersec::set_linear_writable(PhysAddr pa, bool writable) {
  // Hypersec edits the EL1 leaf descriptor directly at EL2; the page stays
  // readable to the kernel (it must walk its own tables), only the write
  // permission changes (§5.2.1).
  const VirtAddr va = kernel::phys_to_virt(pa);
  PhysAddr table = kernel_.kpt().kernel_root();
  for (unsigned l = 0; l <= 3; ++l) {
    const PhysAddr desc_pa = table + sim::va_index(va, l) * 8;
    const u64 desc = machine_.el2_read64(desc_pa);
    if (!sim::desc_valid(desc)) return false;
    if (sim::desc_is_table(desc, l)) {
      table = sim::desc_out_addr(desc);
      continue;
    }
    sim::PageAttrs attrs = sim::decode_attrs(desc);
    attrs.write = writable;
    machine_.el2_write64(desc_pa, sim::desc_with_attrs(desc, attrs));
    machine_.tlb_shootdown_va(va);
    machine_.advance(machine_.timing().tlbi);
    return true;
  }
  return false;
}

Status Hypersec::init() {
  assert(!initialized_);
  if (kernel_.config().use_sections) {
    return Status::Precondition(
        "hypersec: section-mapped kernel cannot enforce per-page RO tables "
        "(protection granularity gap, see paper §6.2) — boot the kernel "
        "with 4 KiB pages");
  }
  if (kernel_.linear_limit() > machine_.secure_base()) {
    return Status::Precondition(
        "hypersec: kernel linear map covers the secure space");
  }

  // §6.1: EL2 control state.  The EL2 'page table' is a linear map
  // (VA == PA), represented by TTBR0_EL2 = 0.
  machine_.set_sysreg_raw_all(SysReg::TTBR0_EL2, 0);
  machine_.set_sysreg_raw_all(
      SysReg::SP_EL2, machine_.secure_base() + machine_.secure_size() - 64);
  machine_.set_sysreg_raw_all(SysReg::VBAR_EL2, 0xE12E'C000);

  // Inventory the kernel's translation tables and lock them read-only.
  verifier_.set_kernel_root(kernel_.kpt().kernel_root());
  for (const auto& [pa, level] : kernel_.kpt().pt_pages()) {
    verifier_.add_pt_page(pa, level);
  }
  // Seal the TTBR1 tree: enumerate every table reachable from the kernel
  // root and mark it immutable to EL1-requested writes.
  {
    auto seal = [&](auto&& self, PhysAddr table, unsigned level) -> void {
      verifier_.mark_kernel_tree(table);
      if (level == 3) return;
      for (u64 idx = 0; idx < kPtEntries; ++idx) {
        const u64 desc = machine_.phys().read64(table + idx * 8);
        if (sim::desc_valid(desc) && sim::desc_is_table(desc, level)) {
          self(self, sim::desc_out_addr(desc), level + 1);
        }
      }
    };
    seal(seal, kernel_.kpt().kernel_root(), 0);
  }
  for (const kernel::Task* task : kernel_.procs().all_tasks()) {
    verifier_.add_user_root(task->ttbr0);
  }

  if (mbm_ != nullptr) {
    driver_ = std::make_unique<MbmDriver>(machine_, kernel_, *mbm_,
                                          config_.mbm_noncacheable_remap);
    kernel_.enable_mbm_irq_forwarding();
  }

  // Lock every existing PT page read-only in the EL1 linear map.
  for (const auto& [pa, level] : kernel_.kpt().pt_pages()) {
    if (!set_linear_writable(pa, false)) {
      return Status::Internal("hypersec: PT page not mapped in linear map");
    }
  }

  // §5.2.2 / §6.1: trap EL1 virtual-memory register writes.
  machine_.set_sysreg_raw_all(
      SysReg::HCR_EL2,
      with_bit(machine_.sysreg(SysReg::HCR_EL2), sim::kHcrTvm, true));
  machine_.install_sysreg_trap_handler(
      [this](SysReg reg, u64 value) { return handle_sysreg_trap(reg, value); });
  machine_.install_hypercall_handler(
      [this](u64 func, std::span<const u64> args) {
        return handle_hvc(func, args);
      });

  // §6.2: from here on the kernel writes its tables by hypercall.
  kernel_.use_hypercall_pt_writes();

  initialized_ = true;
  return Status::Ok();
}

void Hypersec::register_app(SecurityApp& app) { apps_[app.sid()] = &app; }

Status Hypersec::enable_dma_protection(sim::Iommu& iommu,
                                       std::span<const u32> streams) {
  if (!initialized_) {
    return Status::Precondition("hypersec: init() first");
  }
  for (const u32 stream : streams) {
    iommu.clear(stream);
    iommu.allow(stream, sim::Iommu::Window{0, machine_.secure_base(), true});
    machine_.advance(config_.verify_cost);
  }
  iommu.set_enabled(true);
  return Status::Ok();
}

std::vector<AuditFinding> Hypersec::audit_report() const {
  std::vector<AuditFinding> violations;
  auto note = [&](AuditCode code, std::string detail) {
    violations.push_back(AuditFinding{code, std::move(detail)});
  };

  // 4. The live translation root is the sealed kernel root.
  const PhysAddr ttbr1 =
      machine_.sysreg(SysReg::TTBR1_EL1) & 0x0000'FFFF'FFFF'FFFFull;
  if (ttbr1 != verifier_.kernel_root()) {
    note(AuditCode::kTtbrHijacked,
         "TTBR1_EL1 does not name the sealed kernel root");
  }

  // Walk a stage-1 tree, applying the leaf checks.  Every table's scan is
  // first flattened into an ordered item list (child descents and findings
  // interleaved in entry order), then replayed — identical findings in
  // identical order to a direct recursive walk.  On the host fast path the
  // item lists of *watched* (inventory-registered) tables are memoized,
  // keyed on the page's mutation epoch; see hypersec.h for the
  // invalidation rules.  All table reads are uncharged phys() peeks, so
  // memoization changes no simulated state whatsoever.
  const bool memoize = machine_.host_fast_path();
  if (memoize && audit_cache_gen_ != verifier_.generation()) {
    audit_cache_.clear();
    audit_cache_gen_ = verifier_.generation();
  }

  auto scan_table = [&](PhysAddr table, unsigned level,
                        std::vector<AuditScanItem>& items) {
    for (u64 idx = 0; idx < kPtEntries; ++idx) {
      const u64 desc = machine_.phys().read64(table + idx * 8);
      if (!sim::desc_valid(desc)) continue;
      if (sim::desc_is_table(desc, level)) {
        items.push_back(AuditScanItem{.is_child = true,
                                      .child = sim::desc_out_addr(desc)});
        continue;
      }
      const bool leaf =
          (level == 3 && bit(desc, sim::kDescTable)) ||
          sim::desc_is_block(desc, level);
      if (!leaf) continue;
      const PhysAddr out = sim::desc_out_addr(desc);
      const u64 span = sim::level_span(level);
      const sim::PageAttrs attrs = sim::decode_attrs(desc);
      // 2. nothing maps the secure space.
      if (ranges_overlap(out, span, machine_.secure_base(),
                         machine_.secure_size())) {
        items.push_back(
            AuditScanItem{.code = AuditCode::kSecureMapped,
                          .detail = ": mapping reaches the secure space"});
      }
      // 3. W^X.
      if (attrs.write && attrs.exec) {
        items.push_back(
            AuditScanItem{.code = AuditCode::kWxViolation,
                          .detail = ": writable+executable mapping"});
      }
      // 1. PT pages are read-only through any alias.
      if (attrs.write) {
        for (PhysAddr p = out; p < out + span; p += kPageSize) {
          if (verifier_.is_pt_page(p)) {
            items.push_back(
                AuditScanItem{.code = AuditCode::kPtWritableAlias,
                              .detail = ": writable alias of a PT page"});
            break;
          }
        }
      }
    }
  };

  auto walk_tree = [&](auto&& self, PhysAddr table, unsigned level,
                       const char* which) -> void {
    const std::vector<AuditScanItem>* items = nullptr;
    std::vector<AuditScanItem> local;
    const u64 pindex = table >> kPageShift;
    if (memoize && pindex < machine_.phys().page_count() &&
        machine_.phys().page_watched(pindex)) {
      const u64 epoch = machine_.phys().page_epoch(pindex);
      auto it = audit_cache_.find(table);
      if (it == audit_cache_.end() || it->second.epoch != epoch ||
          it->second.level != level) {
        AuditTableEntry entry;
        entry.epoch = epoch;
        entry.level = level;
        scan_table(table, level, entry.items);
        it = audit_cache_.insert_or_assign(table, std::move(entry)).first;
      }
      items = &it->second.items;  // std::map: stable across child inserts
    } else {
      scan_table(table, level, local);
      items = &local;
    }
    for (const AuditScanItem& item : *items) {
      if (item.is_child) {
        self(self, item.child, level + 1, which);
      } else {
        note(item.code, std::string(which) + item.detail);
      }
    }
  };
  walk_tree(walk_tree, verifier_.kernel_root(), 0, "kernel tree");
  for (const kernel::Task* task : kernel_.procs().all_tasks()) {
    if (task->ttbr0 != 0) walk_tree(walk_tree, task->ttbr0, 0, "user tree");
  }
  return violations;
}

std::vector<std::string> Hypersec::audit() const {
  std::vector<std::string> out;
  for (const AuditFinding& f : audit_report()) {
    out.push_back(std::string("[") + audit_code_name(f.code) + "] " + f.detail);
  }
  return out;
}

u64 Hypersec::handle_hvc(u64 func, std::span<const u64> args) {
  obs::SpanScope span(machine_.spans(), span_hvc_);
  obs_hvc_calls_.add();
  obs_verify_cycles_.add(config_.verify_cost);
  machine_.advance(config_.verify_cost);
  switch (func) {
    case hvc::kPtWrite:
      return do_pt_write(args);
    case hvc::kPtAlloc:
      return do_pt_alloc(args);
    case hvc::kPtFree:
      return do_pt_free(args);
    case hvc::kPtRegisterRoot:
      if (args.size() != 1) return hvc::kBadArgs;
      ++stats_.root_registrations;
      verifier_.add_user_root(args[0]);
      return hvc::kOk;
    case hvc::kPtUnregisterRoot:
      if (args.size() != 1) return hvc::kBadArgs;
      verifier_.remove_user_root(args[0]);
      return hvc::kOk;
    case hvc::kMonRegister:
      return do_mon_register(args);
    case hvc::kMonUnregister:
      return do_mon_unregister(args);
    case hvc::kModuleSeal:
      return do_module_seal(args, true);
    case hvc::kModuleUnseal:
      return do_module_seal(args, false);
    case hvc::kMbmIrq:
      return do_mbm_irq();
    default:
      return hvc::kBadArgs;
  }
}

u64 Hypersec::do_pt_write(std::span<const u64> args) {
  if (args.size() != 3) return hvc::kBadArgs;
  ++stats_.pt_write_calls;
  obs_pt_writes_.add();
  const PhysAddr table_pa = args[0];
  const auto index = static_cast<unsigned>(args[1]);
  const u64 desc = args[2];
  if (index >= kPtEntries) return hvc::kBadArgs;
  if (verifier_.check_pt_write(table_pa, index, desc) == Verdict::kDeny) {
    ++stats_.pt_write_denials;
    obs_pt_write_denials_.add();
    HN_LOG_DEBUG("hypersec", "denied PT write: table=%llx idx=%u desc=%llx",
                 static_cast<unsigned long long>(table_pa), index,
                 static_cast<unsigned long long>(desc));
    return hvc::kDenied;
  }
  machine_.el2_write64(table_pa + index * 8, desc);
  return hvc::kOk;
}

u64 Hypersec::do_pt_alloc(std::span<const u64> args) {
  if (args.size() != 2) return hvc::kBadArgs;
  const PhysAddr pa = args[0];
  const auto level = static_cast<unsigned>(args[1]);
  if (!is_page_aligned(pa) || level > 3) return hvc::kBadArgs;
  if (machine_.in_secure_space(pa, kPageSize)) return hvc::kDenied;
  if (verifier_.is_pt_page(pa)) return hvc::kDenied;
  // The page must arrive zeroed: no pre-seeded descriptors.
  for (u64 off = 0; off < kPageSize; off += kWordSize) {
    if (machine_.el2_read64(pa + off) != 0) return hvc::kDenied;
  }
  ++stats_.pt_allocs;
  verifier_.add_pt_page(pa, level);
  // Lock it read-only in the EL1 linear map.
  if (!set_linear_writable(pa, false)) {
    verifier_.remove_pt_page(pa);
    return hvc::kDenied;
  }
  if (pt_observer_ != nullptr) pt_observer_->on_pt_alloc(pa, level);
  return hvc::kOk;
}

u64 Hypersec::do_pt_free(std::span<const u64> args) {
  if (args.size() != 1) return hvc::kBadArgs;
  const PhysAddr pa = args[0];
  if (!verifier_.is_pt_page(pa)) return hvc::kDenied;
  ++stats_.pt_frees;
  verifier_.remove_pt_page(pa);
  if (pt_observer_ != nullptr) pt_observer_->on_pt_free(pa);
  // Restore the EL1 linear-map write permission.
  return set_linear_writable(pa, true) ? hvc::kOk : hvc::kDenied;
}

u64 Hypersec::do_mon_register(std::span<const u64> args) {
  if (args.size() != 3 || driver_ == nullptr) return hvc::kBadArgs;
  const u64 sid = args[0];
  if (!apps_.contains(sid)) return hvc::kDenied;
  ++stats_.mon_registers;
  return driver_->register_region(sid, args[1], args[2]).ok() ? hvc::kOk
                                                              : hvc::kDenied;
}

u64 Hypersec::do_mon_unregister(std::span<const u64> args) {
  if (args.size() != 3 || driver_ == nullptr) return hvc::kBadArgs;
  ++stats_.mon_unregisters;
  return driver_->unregister_region(args[0], args[1], args[2]).ok()
             ? hvc::kOk
             : hvc::kDenied;
}

u64 Hypersec::do_module_seal(std::span<const u64> args, bool seal) {
  if (args.size() != 2) return hvc::kBadArgs;
  const PhysAddr base = args[0];
  const u64 pages = args[1];
  if (!is_page_aligned(base) || pages == 0 || pages > 1024) {
    return hvc::kBadArgs;
  }
  // The region must be ordinary kernel data: never the secure space, the
  // kernel image, or translation tables.  Unseal additionally requires
  // that every page was actually sealed module text.
  if (machine_.in_secure_space(base, pages * kPageSize)) return hvc::kDenied;
  if (ranges_overlap(base, pages * kPageSize, kernel::kImageBase,
                     kernel::kImageEnd)) {
    return hvc::kDenied;
  }
  for (u64 p = 0; p < pages; ++p) {
    const PhysAddr pa = base + p * kPageSize;
    if (verifier_.is_pt_page(pa)) return hvc::kDenied;
    if (seal && verifier_.is_module_text(pa)) return hvc::kDenied;
    if (!seal && !verifier_.is_module_text(pa)) return hvc::kDenied;
  }
  // Apply the attribute change descriptor by descriptor at EL2: RX when
  // sealing, RW non-exec when unsealing (never both — W^X by construction).
  for (u64 p = 0; p < pages; ++p) {
    const PhysAddr pa = base + p * kPageSize;
    const VirtAddr va = kernel::phys_to_virt(pa);
    PhysAddr table = kernel_.kpt().kernel_root();
    bool done = false;
    for (unsigned l = 0; l <= 3 && !done; ++l) {
      const PhysAddr desc_pa = table + sim::va_index(va, l) * 8;
      const u64 desc = machine_.el2_read64(desc_pa);
      if (!sim::desc_valid(desc)) return hvc::kDenied;
      if (sim::desc_is_table(desc, l)) {
        table = sim::desc_out_addr(desc);
        continue;
      }
      sim::PageAttrs attrs = sim::decode_attrs(desc);
      attrs.write = !seal;
      attrs.exec = seal;
      machine_.el2_write64(desc_pa, sim::desc_with_attrs(desc, attrs));
      machine_.tlb_shootdown_va(va);
      machine_.advance(machine_.timing().tlbi);
      done = true;
    }
    if (!done) return hvc::kDenied;
    if (seal) {
      verifier_.add_module_text(pa);
    } else {
      verifier_.remove_module_text(pa);
    }
  }
  return hvc::kOk;
}

u64 Hypersec::do_mbm_irq() {
  if (driver_ == nullptr) return hvc::kBadArgs;
  ++stats_.mbm_irq_calls;
  const u64 n = driver_->drain(
      [this](const mbm::MonitorEvent& ev, const RegionInfo& region) {
        auto it = apps_.find(region.sid);
        if (it == apps_.end()) return AppVerdict::kBenign;
        return it->second->on_write_event(ev, region);
      });
  stats_.events_dispatched += n;
  return hvc::kOk;
}

TrapVerdict Hypersec::handle_sysreg_trap(SysReg reg, u64 value) {
  obs::SpanScope span(machine_.spans(), span_trap_);
  obs_traps_.add();
  obs_verify_cycles_.add(config_.verify_cost);
  machine_.advance(config_.verify_cost);
  ++stats_.ttbr_traps;
  switch (reg) {
    case SysReg::TTBR1_EL1: {
      // The kernel half may only ever use the one vetted root (§6.1).
      const PhysAddr baddr = value & 0x0000'FFFF'FFFF'FFFFull;
      if (baddr != verifier_.kernel_root()) {
        ++stats_.trap_denials;
        obs_trap_denials_.add();
        return TrapVerdict::kDeny;
      }
      return TrapVerdict::kAllow;
    }
    case SysReg::TTBR0_EL1: {
      // ATRA defence: user roots must have been registered through the
      // hypercall interface before they can be installed.
      const PhysAddr baddr = value & 0x0000'FFFF'FFFF'FFFFull;
      if (baddr != 0 && !verifier_.is_user_root(baddr)) {
        ++stats_.trap_denials;
        obs_trap_denials_.add();
        return TrapVerdict::kDeny;
      }
      return TrapVerdict::kAllow;
    }
    case SysReg::SCTLR_EL1:
      // The MMU must stay on: with translation disabled every protection
      // Hypernel established would evaporate (§5.2.2).
      if (!bit(value, 0)) {
        ++stats_.trap_denials;
        obs_trap_denials_.add();
        return TrapVerdict::kDeny;
      }
      return TrapVerdict::kAllow;
    case SysReg::TCR_EL1:
    case SysReg::MAIR_EL1:
    case SysReg::CONTEXTIDR_EL1:
      return TrapVerdict::kAllow;  // verified no-ops in this model
    default:
      return TrapVerdict::kAllow;
  }
}

}  // namespace hn::hypersec
