#include "hypersec/mbm_driver.h"

#include <cassert>

#include "kernel/layout.h"
#include "mbm/bitmap_math.h"
#include "sim/pagetable.h"
#include "sim/sysregs.h"

namespace hn::hypersec {

MbmDriver::El2Walk MbmDriver::el2_walk(VirtAddr va) {
  El2Walk out;
  PhysAddr table = kernel_.kpt().kernel_root();
  for (unsigned level = 0; level <= 3; ++level) {
    const PhysAddr desc_pa = table + sim::va_index(va, level) * 8;
    const u64 desc = machine_.el2_read64(desc_pa);
    if (!sim::desc_valid(desc)) return out;
    if (sim::desc_is_table(desc, level)) {
      table = sim::desc_out_addr(desc);
      continue;
    }
    const u64 span = sim::level_span(level);
    out.ok = true;
    out.pa = sim::desc_out_addr(desc) + (va & (span - 1));
    out.desc_pa = desc_pa;
    out.desc = desc;
    return out;
  }
  return out;
}

void MbmDriver::set_bits(PhysAddr pa, u64 size, bool on) {
  const mbm::MbmConfig& cfg = mbm_.config();
  assert(pa >= cfg.watch_base && pa + size <= cfg.watch_base + cfg.watch_size);
  // Read-modify-write the affected bitmap words; the writes go out
  // non-cacheable so the MBM's write-update bitmap cache stays coherent
  // (§6.3) and the stores are immediately effective on the bus side.
  u64 word = pa;
  const u64 end = pa + size;
  while (word < end) {
    const u64 first_bit = mbm::bit_index_for(word, cfg.watch_base);
    const PhysAddr wa = mbm::bitmap_word_addr(first_bit, cfg.bitmap_base);
    u64 value = machine_.el2_read64(wa);
    // All bits that fall into this bitmap word.
    while (word < end &&
           mbm::bitmap_word_addr(mbm::bit_index_for(word, cfg.watch_base),
                                 cfg.bitmap_base) == wa) {
      const unsigned pos =
          mbm::bit_position(mbm::bit_index_for(word, cfg.watch_base));
      value = on ? (value | (u64{1} << pos)) : (value & ~(u64{1} << pos));
      word += kWordSize;
    }
    machine_.el2_write64_nc(wa, value);
  }
}

Status MbmDriver::set_page_cacheable(VirtAddr page_va, bool cacheable) {
  const El2Walk w = el2_walk(page_va);
  if (!w.ok) return Status::NotFound("mbm: page not mapped in kernel space");
  sim::PageAttrs attrs = sim::decode_attrs(w.desc);
  attrs.attr = cacheable ? sim::MemAttr::kNormalCacheable
                         : sim::MemAttr::kNonCacheable;
  machine_.el2_write64(w.desc_pa, sim::desc_with_attrs(w.desc, attrs));
  machine_.tlb_shootdown_va(page_va);
  machine_.advance(machine_.timing().tlbi);
  if (!cacheable) {
    // Push any dirty lines out and drop the page from the cache, so no
    // later write-back can shadow the non-cacheable traffic (§5.3: "any
    // cache entry for the page including the monitored region is not
    // generated").
    const PhysAddr page_pa = page_align_down(w.pa);
    machine_.cache_flush_range_all(page_pa, kPageSize);
    machine_.advance(256);  // DC CIVAC sweep over the page
  }
  return Status::Ok();
}

Status MbmDriver::register_region(u64 sid, VirtAddr va, u64 size) {
  if (!is_word_aligned(va) || size == 0 || size % kWordSize != 0) {
    return Status::Invalid("mbm: region must be word aligned");
  }
  const El2Walk w = el2_walk(va);
  if (!w.ok) return Status::NotFound("mbm: va not mapped");
  const PhysAddr pa = w.pa;
  assert(page_align_down(va) == page_align_down(va + size - 1) &&
         "regions must not straddle pages (slab objects never do)");

  RegionInfo region;
  region.sid = sid;
  region.va_base = va;
  region.pa_base = pa;
  region.size = size;
  regions_[pa] = region;

  set_bits(pa, size, true);
  machine_.trace().record(machine_.bus_order_now(),
                          sim::TraceKind::kMonRegister, pa, size);

  const PhysAddr page_pa = page_align_down(pa);
  if (nc_refs_[page_pa]++ == 0 && noncacheable_remap_) {
    if (Status s = set_page_cacheable(page_align_down(va), false); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status MbmDriver::unregister_region(u64 sid, VirtAddr va, u64 size) {
  const El2Walk w = el2_walk(va);
  if (!w.ok) return Status::NotFound("mbm: va not mapped");
  auto it = regions_.find(w.pa);
  if (it == regions_.end() || it->second.sid != sid) {
    return Status::NotFound("mbm: no such region");
  }
  set_bits(w.pa, size, false);
  regions_.erase(it);

  const PhysAddr page_pa = page_align_down(w.pa);
  auto nc = nc_refs_.find(page_pa);
  assert(nc != nc_refs_.end());
  if (--nc->second == 0) {
    nc_refs_.erase(nc);
    if (noncacheable_remap_) {
      if (Status s = set_page_cacheable(page_align_down(va), true); !s.ok()) {
        return s;
      }
    }
  }
  return Status::Ok();
}

u64 MbmDriver::drain(const std::function<AppVerdict(const mbm::MonitorEvent&,
                                                    const RegionInfo&)>& dispatch) {
  u64 delivered = 0;
  mbm::MonitorEvent ev;
  while (mbm_.ring().pop(ev)) {
    machine_.advance(60);  // per-event EL2 bookkeeping
    // Attribute the event to the registered region containing it.
    auto it = regions_.upper_bound(ev.paddr);
    if (it != regions_.begin()) {
      --it;
      const RegionInfo& region = it->second;
      if (ev.paddr >= region.pa_base &&
          ev.paddr < region.pa_base + region.size) {
        const AppVerdict verdict = dispatch(ev, region);
        ++delivered;
        ++events_delivered_;
        // One bus-order read per verdict, shared between the trace
        // record and the live latency counter so the attribution report
        // and the timeline track agree exactly.
        const Cycles verdict_at = machine_.bus_order_now();
        detect_e2e_cycles_ += verdict_at > ev.at ? verdict_at - ev.at : 0;
        ++verdicts_;
        // Chain terminator: links back to the kMbmDetect event that
        // produced this ring entry.  b: 0 = benign, 1 = alert.
        machine_.trace().record_caused(
            verdict_at, sim::TraceKind::kVerdict,
            ev.trace_seq, ev.paddr, static_cast<u64>(verdict));
        continue;
      }
    }
    ++unattributed_;  // stale bit or race with unregister: drop, but count
    const Cycles verdict_at = machine_.bus_order_now();
    detect_e2e_cycles_ += verdict_at > ev.at ? verdict_at - ev.at : 0;
    ++verdicts_;
    machine_.trace().record_caused(verdict_at,
                                   sim::TraceKind::kVerdict, ev.trace_seq,
                                   ev.paddr, 2 /* unattributed */);
  }
  return delivered;
}

}  // namespace hn::hypersec
