// Hypersec: the software half of Hypernel (§5.1-§5.2, §6.1).
//
// Runs at EL2 and provides security applications with an isolated
// execution environment *without nested paging*: instead of a stage-2
// table it (a) verifies every kernel page-table update delivered by
// hypercall, keeping table pages read-only at EL1 and the secure space
// unmapped, and (b) traps privileged virtual-memory register writes
// (HCR_EL2.TVM) so the kernel cannot swap in a rogue translation regime.
// With the MBM attached it also implements the word-granularity kernel
// monitoring workflow of Fig. 4.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "hypersec/mbm_driver.h"
#include "hypersec/pt_verifier.h"
#include "hypersec/security_app.h"
#include "kernel/kernel.h"
#include "mbm/monitor.h"
#include "sim/iommu.h"
#include "sim/machine.h"

namespace hn::hypersec {

struct HypersecStats {
  u64 pt_write_calls = 0;
  u64 pt_write_denials = 0;
  u64 pt_allocs = 0;
  u64 pt_frees = 0;
  u64 root_registrations = 0;
  u64 ttbr_traps = 0;
  u64 trap_denials = 0;
  u64 mon_registers = 0;
  u64 mon_unregisters = 0;
  u64 mbm_irq_calls = 0;
  u64 events_dispatched = 0;
};

/// Machine-readable classification of an audit violation, so tooling (the
/// fuzz oracle, CI triage) can bucket failures without parsing prose.
enum class AuditCode : u8 {
  kTtbrHijacked,     // TTBR1_EL1 no longer names the sealed kernel root
  kSecureMapped,     // a reachable mapping touches the secure space
  kWxViolation,      // writable+executable leaf
  kPtWritableAlias,  // writable alias of a registered PT page
};

[[nodiscard]] constexpr const char* audit_code_name(AuditCode code) {
  switch (code) {
    case AuditCode::kTtbrHijacked: return "ttbr-hijacked";
    case AuditCode::kSecureMapped: return "secure-mapped";
    case AuditCode::kWxViolation: return "wx-violation";
    case AuditCode::kPtWritableAlias: return "pt-writable-alias";
  }
  return "?";
}

struct AuditFinding {
  AuditCode code;
  std::string detail;  // which tree / what was reached
};

struct HypersecConfig {
  /// EL2 cycles of verification work per hypercall / trap.
  Cycles verify_cost = 80;
  /// Remap monitored pages non-cacheable so every write reaches the bus
  /// (§5.3).  Disable ONLY for the cacheability ablation: with normal
  /// cacheable mappings the MBM sees write-backs at best.
  bool mbm_noncacheable_remap = true;
};

class Hypersec {
 public:
  /// `mbm` may be null: the isolation half works without the monitor
  /// (the configuration of §7.1's performance experiments).
  Hypersec(sim::Machine& machine, kernel::Kernel& kernel,
           mbm::MemoryBusMonitor* mbm, const HypersecConfig& config = {});
  /// Detach the EL2 vectors that capture `this`.
  ~Hypersec();

  Hypersec(const Hypersec&) = delete;
  Hypersec& operator=(const Hypersec&) = delete;

  /// §6.1 boot: EL2 control registers, exception vectors, TVM; inventory
  /// and lock the kernel's existing page tables; switch the kernel to
  /// hypercall PT writes.  Requires the 4 KiB-page kernel (§6.2): returns
  /// an error on a section-mapped kernel, where per-page RO enforcement
  /// would hit the protection-granularity gap.
  Status init();

  void register_app(SecurityApp& app);
  /// Ask the app to register its regions through the kernel hook path.
  [[nodiscard]] bool has_app(u64 sid) const { return apps_.contains(sid); }

  /// Observer of the PT-page lifecycle.  The invariant checker registers
  /// one so its monitored-page inventory tracks kPtAlloc/kPtFree exactly;
  /// like app registrations this is executor wiring, not snapshot state.
  class PtObserver {
   public:
    virtual ~PtObserver() = default;
    virtual void on_pt_alloc(PhysAddr pa, unsigned level) = 0;
    virtual void on_pt_free(PhysAddr pa) = 0;
  };
  void set_pt_observer(PtObserver* observer) { pt_observer_ = observer; }

  /// §8: program the IOMMU so that no device stream can reach the secure
  /// space — each listed stream gets exactly one window covering normal
  /// DRAM.  Call after init().
  Status enable_dma_protection(sim::Iommu& iommu,
                               std::span<const u32> streams);

  /// Full audit of the protection invariants (used by the property tests
  /// and the fuzz oracle after attack storms).  Returns coded violations;
  /// empty means every invariant holds:
  ///   1. every registered PT page is mapped read-only at EL1,
  ///   2. no mapping reachable from any registered root touches the
  ///      secure space,
  ///   3. W^X holds over every reachable leaf,
  ///   4. TTBR1_EL1 still names the sealed kernel root.
  [[nodiscard]] std::vector<AuditFinding> audit_report() const;
  /// Back-compat prose rendering of audit_report().
  [[nodiscard]] std::vector<std::string> audit() const;

  PtVerifier& verifier() { return verifier_; }
  MbmDriver* mbm_driver() { return driver_.get(); }
  [[nodiscard]] const HypersecStats& stats() const { return stats_; }
  [[nodiscard]] bool initialized() const { return initialized_; }

  /// Approximate source size of the EL2 component, reported for parity
  /// with the paper's "~1.5 KLoC" TCB argument (§8).
  static constexpr unsigned kApproxSloc = 1500;

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // App registrations are executor wiring (re-established per session);
  // the verifier inventory, driver regions and stat counters serialize.

  void save_state(sim::SnapWriter& w) const {
    w.put_bool(initialized_);
    w.put_u64(stats_.pt_write_calls);
    w.put_u64(stats_.pt_write_denials);
    w.put_u64(stats_.pt_allocs);
    w.put_u64(stats_.pt_frees);
    w.put_u64(stats_.root_registrations);
    w.put_u64(stats_.ttbr_traps);
    w.put_u64(stats_.trap_denials);
    w.put_u64(stats_.mon_registers);
    w.put_u64(stats_.mon_unregisters);
    w.put_u64(stats_.mbm_irq_calls);
    w.put_u64(stats_.events_dispatched);
    verifier_.save_state(w);
    w.put_bool(driver_ != nullptr);
    if (driver_) driver_->save_state(w);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("hypersec");
    initialized_ = r.get_bool();
    stats_.pt_write_calls = r.get_u64();
    stats_.pt_write_denials = r.get_u64();
    stats_.pt_allocs = r.get_u64();
    stats_.pt_frees = r.get_u64();
    stats_.root_registrations = r.get_u64();
    stats_.ttbr_traps = r.get_u64();
    stats_.trap_denials = r.get_u64();
    stats_.mon_registers = r.get_u64();
    stats_.mon_unregisters = r.get_u64();
    stats_.mbm_irq_calls = r.get_u64();
    stats_.events_dispatched = r.get_u64();
    verifier_.restore_state(r);
    const bool had_driver = r.get_bool();
    r.section("hypersec");
    if (r.ok() && had_driver != (driver_ != nullptr)) {
      r.fail("MBM driver presence does not match this configuration");
      return;
    }
    if (driver_) driver_->restore_state(r);
  }

 private:
  u64 handle_hvc(u64 func, std::span<const u64> args);
  sim::TrapVerdict handle_sysreg_trap(sim::SysReg reg, u64 value);
  /// Flip the EL1 linear-map write permission of the page frame at `pa`
  /// by editing the kernel's leaf descriptor directly at EL2.
  bool set_linear_writable(PhysAddr pa, bool writable);

  // --- Audit memoization (host fast path only; DESIGN.md §14) ---------------
  //
  // audit_report() walks every registered translation tree with uncharged
  // host-side phys() peeks, so its cost is pure host overhead — the
  // dominant bucket in fuzz replay at audit_stride=1.  The fast path
  // caches each table page's scan as an ordered item list (child descents
  // and findings interleaved in entry order, so the DFS finding order is
  // reproduced bit-exactly).  Entries are keyed on the page's mutation
  // epoch (PhysicalMemory page watches, maintained by the PtVerifier
  // inventory) and the whole cache drops when the inventory generation
  // moves.  Tables that are *not* watched — e.g. reached through a
  // corrupted descriptor pointing at an unregistered page — are always
  // rescanned, so attack-crafted trees can never be served stale.
  struct AuditScanItem {
    bool is_child = false;         // true: descend into `child`
    AuditCode code{};              // finding code when !is_child
    PhysAddr child = 0;
    const char* detail = nullptr;  // finding suffix (without tree prefix)
  };
  struct AuditTableEntry {
    u64 epoch = 0;
    unsigned level = 0;
    std::vector<AuditScanItem> items;
  };

  u64 do_pt_write(std::span<const u64> args);
  u64 do_pt_alloc(std::span<const u64> args);
  u64 do_pt_free(std::span<const u64> args);
  u64 do_mon_register(std::span<const u64> args);
  u64 do_mon_unregister(std::span<const u64> args);
  u64 do_module_seal(std::span<const u64> args, bool seal);
  u64 do_mbm_irq();

  sim::Machine& machine_;
  kernel::Kernel& kernel_;
  mbm::MemoryBusMonitor* mbm_;
  HypersecConfig config_;
  PtVerifier verifier_;
  std::unique_ptr<MbmDriver> driver_;
  std::map<u64, SecurityApp*> apps_;
  PtObserver* pt_observer_ = nullptr;
  HypersecStats stats_;
  bool initialized_ = false;
  // Audit memoization state; mutable because audit_report() is const.
  mutable std::map<PhysAddr, AuditTableEntry> audit_cache_;
  mutable u64 audit_cache_gen_ = 0;
  // Observability: counters plus interned span names for the two EL2
  // entry points (hvc dispatch and sysreg traps).
  obs::Counter obs_hvc_calls_;
  obs::Counter obs_verify_cycles_;
  obs::Counter obs_pt_writes_;
  obs::Counter obs_pt_write_denials_;
  obs::Counter obs_traps_;
  obs::Counter obs_trap_denials_;
  u32 span_hvc_ = 0;
  u32 span_trap_ = 0;
};

}  // namespace hn::hypersec
