// Hypersec's driver for the Memory Bus Monitor (§5.3, Fig. 4).
//
// Registration path (green, steps 1-2): translate the kernel VA of the
// monitored region to PA at EL2, set the word-granularity bitmap bits via
// non-cacheable writes (so the MBM's bitmap cache observes the update),
// and flip the containing kernel page to non-cacheable so every write to
// it reaches the bus.
//
// Event path (red, steps 7-8): drain the event ring buffer from the MBM
// interrupt and dispatch each (address, value) record to the owning
// security application.
#pragma once

#include <functional>
#include <map>

#include "common/status.h"
#include "common/types.h"
#include "hypersec/security_app.h"
#include "kernel/kernel.h"
#include "mbm/monitor.h"
#include "sim/machine.h"

namespace hn::hypersec {

class MbmDriver {
 public:
  MbmDriver(sim::Machine& machine, kernel::Kernel& kernel,
            mbm::MemoryBusMonitor& mbm, bool noncacheable_remap = true)
      : machine_(machine), kernel_(kernel), mbm_(mbm),
        noncacheable_remap_(noncacheable_remap) {
    // Live detection-latency attribution: each verdict adds its
    // end-to-end cycles (verdict instant minus the monitored store's bus
    // instant, carried in MonitorEvent::at).  The timeline report's
    // totals line and the trace attribution report sum the exact same
    // per-verdict values, so the two must agree — the cross-check test
    // pins it.
    obs::TimeSeries& ts = machine_.timeseries();
    ts.enroll("hypersec.detect.e2e_cycles", obs::TrackKind::kCounter,
              [this] { return detect_e2e_cycles_; });
    ts.enroll("hypersec.verdicts", obs::TrackKind::kCounter,
              [this] { return verdicts_; });
  }

  ~MbmDriver() { machine_.timeseries().unenroll_prefix("hypersec."); }

  MbmDriver(const MbmDriver&) = delete;
  MbmDriver& operator=(const MbmDriver&) = delete;

  /// §5.3 steps 1-2.  `va`/`size` must be word aligned; the region must be
  /// in the kernel linear map.
  Status register_region(u64 sid, VirtAddr va, u64 size);
  Status unregister_region(u64 sid, VirtAddr va, u64 size);

  /// §5.3 steps 7-8: drain the ring, dispatching each event.  Returns the
  /// number of events delivered.  The dispatch callback reports the
  /// security app's verdict, which the driver stamps into the kVerdict
  /// flight-recorder event closing the write→detect→verdict chain.
  u64 drain(const std::function<AppVerdict(const mbm::MonitorEvent&,
                                           const RegionInfo&)>& dispatch);

  [[nodiscard]] u64 regions() const { return regions_.size(); }
  [[nodiscard]] u64 events_delivered() const { return events_delivered_; }
  [[nodiscard]] u64 unattributed_events() const { return unattributed_; }
  /// Pages currently forced non-cacheable for monitoring.
  [[nodiscard]] u64 noncacheable_pages() const { return nc_refs_.size(); }

  /// EL2 software walk of the kernel stage-1 tree (exposed for Hypersec's
  /// own page-protection edits and for tests).
  struct El2Walk {
    bool ok = false;
    PhysAddr pa = 0;       // translated address
    PhysAddr desc_pa = 0;  // location of the leaf descriptor
    u64 desc = 0;
  };
  El2Walk el2_walk(VirtAddr va);

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(regions_.size());
    for (const auto& [pa, info] : regions_) {
      w.put_u64(pa);
      w.put_u64(info.sid);
      w.put_u64(info.va_base);
      w.put_u64(info.pa_base);
      w.put_u64(info.size);
    }
    w.put_u64(nc_refs_.size());
    for (const auto& [pa, refs] : nc_refs_) {
      w.put_u64(pa);
      w.put_u32(refs);
    }
    w.put_u64(events_delivered_);
    w.put_u64(unattributed_);
    w.put_u64(detect_e2e_cycles_);
    w.put_u64(verdicts_);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("mbm driver");
    const u64 nregions = r.get_count("monitored region");
    regions_.clear();
    for (u64 i = 0; r.ok() && i < nregions; ++i) {
      const PhysAddr key = r.get_u64();
      RegionInfo info;
      info.sid = r.get_u64();
      info.va_base = r.get_u64();
      info.pa_base = r.get_u64();
      info.size = r.get_u64();
      regions_.emplace(key, info);
    }
    const u64 nrefs = r.get_count("non-cacheable page");
    nc_refs_.clear();
    for (u64 i = 0; r.ok() && i < nrefs; ++i) {
      const PhysAddr pa = r.get_u64();
      nc_refs_[pa] = r.get_u32();
    }
    events_delivered_ = r.get_u64();
    unattributed_ = r.get_u64();
    detect_e2e_cycles_ = r.get_u64();
    verdicts_ = r.get_u64();
  }

 private:
  void set_bits(PhysAddr pa, u64 size, bool on);
  Status set_page_cacheable(VirtAddr page_va, bool cacheable);

  sim::Machine& machine_;
  kernel::Kernel& kernel_;
  mbm::MemoryBusMonitor& mbm_;
  bool noncacheable_remap_;
  std::map<PhysAddr, RegionInfo> regions_;  // keyed by pa_base
  std::map<PhysAddr, u32> nc_refs_;         // page PA -> monitoring regions on it
  u64 events_delivered_ = 0;
  u64 unattributed_ = 0;
  u64 detect_e2e_cycles_ = 0;  // summed verdict_at - store_at, all verdicts
  u64 verdicts_ = 0;           // verdict count (incl. unattributed)
};

}  // namespace hn::hypersec
