// Hypersec's page-table write verifier (§5.2.1).
//
// Maintains an inventory of translation-table pages (with their walk
// level) and enforces, on every requested descriptor write:
//   * writes only target registered table pages,
//   * table descriptors only point at registered next-level table pages,
//   * the secure space is never mapped (neither as data nor as a table),
//   * W^X over kernel mappings,
//   * page-table pages and kernel text/rodata are never mapped writable,
//   * unmap (zero descriptor) is always allowed.
#pragma once

#include <map>
#include <set>

#include "common/types.h"
#include "sim/machine.h"
#include "sim/pagetable.h"

namespace hn::hypersec {

enum class Verdict : u8 { kAllow, kDeny };

struct VerifierStats {
  u64 checked = 0;
  u64 denied_not_pt_page = 0;    // target page is not a registered table
  u64 denied_kernel_tree = 0;    // runtime edit of the immutable kernel tree
  u64 denied_secure_map = 0;     // descriptor output in the secure space
  u64 denied_bad_table = 0;      // table desc to a non-table / wrong level
  u64 denied_bad_encoding = 0;   // block/page encoding at an illegal level
  u64 denied_wx = 0;             // writable+executable mapping
  u64 denied_pt_writable = 0;    // writable alias of a table page
  u64 denied_text_writable = 0;  // writable alias of text/rodata

  [[nodiscard]] u64 denied_total() const {
    return denied_not_pt_page + denied_kernel_tree + denied_secure_map +
           denied_bad_table + denied_bad_encoding + denied_wx +
           denied_pt_writable + denied_text_writable;
  }
};

class PtVerifier {
 public:
  PtVerifier(sim::Machine& machine, PhysAddr text_base, u64 text_size,
             PhysAddr rodata_base, u64 rodata_size)
      : machine_(machine), text_base_(text_base), text_size_(text_size),
        rodata_base_(rodata_base), rodata_size_(rodata_size) {}

  // --- Inventory -------------------------------------------------------------
  //
  // Registered table pages are also watched in physical memory so the
  // audit's per-table scan cache (hypersec.cpp) can key entries on the
  // page's mutation epoch.  `generation_` covers the inventory itself:
  // any add/remove invalidates cached scan structure.
  void add_pt_page(PhysAddr pa, unsigned level) {
    const PhysAddr page = page_align_down(pa);
    pt_pages_[page] = level;
    machine_.phys().watch_page(page >> kPageShift);
    ++generation_;
  }
  void remove_pt_page(PhysAddr pa) {
    const PhysAddr page = page_align_down(pa);
    pt_pages_.erase(page);
    machine_.phys().unwatch_page(page >> kPageShift);
    ++generation_;
  }
  [[nodiscard]] bool is_pt_page(PhysAddr pa) const {
    return pt_pages_.contains(page_align_down(pa));
  }
  [[nodiscard]] int pt_level(PhysAddr pa) const {
    auto it = pt_pages_.find(page_align_down(pa));
    return it == pt_pages_.end() ? -1 : static_cast<int>(it->second);
  }
  /// The kernel-half (TTBR1) tree is immutable at runtime: the linear map
  /// never changes after boot, so any kernel-requested edit of its tables
  /// is an attack (e.g. relocating a monitored object's mapping — the
  /// ATRA pattern [15]).  Only Hypersec itself edits these at EL2.
  void mark_kernel_tree(PhysAddr pa) {
    kernel_tree_.insert(page_align_down(pa));
  }
  [[nodiscard]] bool is_kernel_tree(PhysAddr pa) const {
    return kernel_tree_.contains(page_align_down(pa));
  }

  /// Sealed module text pages: executable, therefore never writable again
  /// through any alias while sealed.
  void add_module_text(PhysAddr pa) { module_text_.insert(page_align_down(pa)); }
  void remove_module_text(PhysAddr pa) {
    module_text_.erase(page_align_down(pa));
  }
  [[nodiscard]] bool is_module_text(PhysAddr pa) const {
    return module_text_.contains(page_align_down(pa));
  }

  void add_user_root(PhysAddr pa) { user_roots_.insert(pa); }
  void remove_user_root(PhysAddr pa) { user_roots_.erase(pa); }
  [[nodiscard]] bool is_user_root(PhysAddr pa) const {
    return user_roots_.contains(pa);
  }
  void set_kernel_root(PhysAddr pa) { kernel_root_ = pa; }
  [[nodiscard]] PhysAddr kernel_root() const { return kernel_root_; }

  /// Check a requested write of `desc` into the table page at `table_pa`.
  Verdict check_pt_write(PhysAddr table_pa, unsigned index, u64 desc);

  [[nodiscard]] const VerifierStats& stats() const { return stats_; }
  [[nodiscard]] u64 pt_page_count() const { return pt_pages_.size(); }
  /// Full PTP inventory (page PA -> level): the protected set the
  /// invariant checker mirrors into MBM-monitored regions.
  [[nodiscard]] const std::map<PhysAddr, unsigned>& pt_pages() const {
    return pt_pages_;
  }
  /// Monotone inventory generation: bumped on every add/remove_pt_page and
  /// on snapshot restore.  Cache key component for audit memoization.
  [[nodiscard]] u64 generation() const { return generation_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(sim::SnapWriter& w) const {
    w.put_u64(kernel_root_);
    w.put_u64(pt_pages_.size());
    for (const auto& [pa, level] : pt_pages_) {
      w.put_u64(pa);
      w.put_u32(level);
    }
    w.put_u64(kernel_tree_.size());
    for (const PhysAddr pa : kernel_tree_) w.put_u64(pa);
    w.put_u64(module_text_.size());
    for (const PhysAddr pa : module_text_) w.put_u64(pa);
    w.put_u64(user_roots_.size());
    for (const PhysAddr pa : user_roots_) w.put_u64(pa);
    w.put_u64(stats_.checked);
    w.put_u64(stats_.denied_not_pt_page);
    w.put_u64(stats_.denied_kernel_tree);
    w.put_u64(stats_.denied_secure_map);
    w.put_u64(stats_.denied_bad_table);
    w.put_u64(stats_.denied_bad_encoding);
    w.put_u64(stats_.denied_wx);
    w.put_u64(stats_.denied_pt_writable);
    w.put_u64(stats_.denied_text_writable);
  }

  void restore_state(sim::SnapReader& r) {
    r.section("pt verifier");
    kernel_root_ = r.get_u64();
    const u64 npt = r.get_count("table page");
    for (const auto& [pa, level] : pt_pages_) {
      machine_.phys().unwatch_page(pa >> kPageShift);
    }
    pt_pages_.clear();
    // All saved in ascending key order, so hinted inserts are O(1).
    for (u64 i = 0; r.ok() && i < npt; ++i) {
      const PhysAddr pa = r.get_u64();
      pt_pages_.emplace_hint(pt_pages_.end(), pa, r.get_u32());
      // watch_page always assigns a fresh epoch, so audit-cache entries
      // recorded before this restore can never match afterwards.
      machine_.phys().watch_page(pa >> kPageShift);
    }
    ++generation_;
    const u64 ntree = r.get_count("kernel-tree page");
    kernel_tree_.clear();
    for (u64 i = 0; r.ok() && i < ntree; ++i) {
      kernel_tree_.emplace_hint(kernel_tree_.end(), r.get_u64());
    }
    const u64 ntext = r.get_count("module-text page");
    module_text_.clear();
    for (u64 i = 0; r.ok() && i < ntext; ++i) {
      module_text_.emplace_hint(module_text_.end(), r.get_u64());
    }
    const u64 nroots = r.get_count("user root");
    user_roots_.clear();
    for (u64 i = 0; r.ok() && i < nroots; ++i) {
      user_roots_.emplace_hint(user_roots_.end(), r.get_u64());
    }
    stats_.checked = r.get_u64();
    stats_.denied_not_pt_page = r.get_u64();
    stats_.denied_kernel_tree = r.get_u64();
    stats_.denied_secure_map = r.get_u64();
    stats_.denied_bad_table = r.get_u64();
    stats_.denied_bad_encoding = r.get_u64();
    stats_.denied_wx = r.get_u64();
    stats_.denied_pt_writable = r.get_u64();
    stats_.denied_text_writable = r.get_u64();
  }

 private:
  sim::Machine& machine_;
  PhysAddr text_base_;
  u64 text_size_;
  PhysAddr rodata_base_;
  u64 rodata_size_;
  PhysAddr kernel_root_ = 0;
  std::map<PhysAddr, unsigned> pt_pages_;  // table page -> walk level
  std::set<PhysAddr> kernel_tree_;         // immutable TTBR1 tables
  std::set<PhysAddr> module_text_;         // sealed RX module pages
  std::set<PhysAddr> user_roots_;
  VerifierStats stats_;
  u64 generation_ = 1;
};

}  // namespace hn::hypersec
