// Hypersec's page-table write verifier (§5.2.1).
//
// Maintains an inventory of translation-table pages (with their walk
// level) and enforces, on every requested descriptor write:
//   * writes only target registered table pages,
//   * table descriptors only point at registered next-level table pages,
//   * the secure space is never mapped (neither as data nor as a table),
//   * W^X over kernel mappings,
//   * page-table pages and kernel text/rodata are never mapped writable,
//   * unmap (zero descriptor) is always allowed.
#pragma once

#include <map>
#include <set>

#include "common/types.h"
#include "sim/machine.h"
#include "sim/pagetable.h"

namespace hn::hypersec {

enum class Verdict : u8 { kAllow, kDeny };

struct VerifierStats {
  u64 checked = 0;
  u64 denied_not_pt_page = 0;    // target page is not a registered table
  u64 denied_kernel_tree = 0;    // runtime edit of the immutable kernel tree
  u64 denied_secure_map = 0;     // descriptor output in the secure space
  u64 denied_bad_table = 0;      // table desc to a non-table / wrong level
  u64 denied_bad_encoding = 0;   // block/page encoding at an illegal level
  u64 denied_wx = 0;             // writable+executable mapping
  u64 denied_pt_writable = 0;    // writable alias of a table page
  u64 denied_text_writable = 0;  // writable alias of text/rodata

  [[nodiscard]] u64 denied_total() const {
    return denied_not_pt_page + denied_kernel_tree + denied_secure_map +
           denied_bad_table + denied_bad_encoding + denied_wx +
           denied_pt_writable + denied_text_writable;
  }
};

class PtVerifier {
 public:
  PtVerifier(sim::Machine& machine, PhysAddr text_base, u64 text_size,
             PhysAddr rodata_base, u64 rodata_size)
      : machine_(machine), text_base_(text_base), text_size_(text_size),
        rodata_base_(rodata_base), rodata_size_(rodata_size) {}

  // --- Inventory -------------------------------------------------------------
  void add_pt_page(PhysAddr pa, unsigned level) {
    pt_pages_[page_align_down(pa)] = level;
  }
  void remove_pt_page(PhysAddr pa) { pt_pages_.erase(page_align_down(pa)); }
  [[nodiscard]] bool is_pt_page(PhysAddr pa) const {
    return pt_pages_.contains(page_align_down(pa));
  }
  [[nodiscard]] int pt_level(PhysAddr pa) const {
    auto it = pt_pages_.find(page_align_down(pa));
    return it == pt_pages_.end() ? -1 : static_cast<int>(it->second);
  }
  /// The kernel-half (TTBR1) tree is immutable at runtime: the linear map
  /// never changes after boot, so any kernel-requested edit of its tables
  /// is an attack (e.g. relocating a monitored object's mapping — the
  /// ATRA pattern [15]).  Only Hypersec itself edits these at EL2.
  void mark_kernel_tree(PhysAddr pa) {
    kernel_tree_.insert(page_align_down(pa));
  }
  [[nodiscard]] bool is_kernel_tree(PhysAddr pa) const {
    return kernel_tree_.contains(page_align_down(pa));
  }

  /// Sealed module text pages: executable, therefore never writable again
  /// through any alias while sealed.
  void add_module_text(PhysAddr pa) { module_text_.insert(page_align_down(pa)); }
  void remove_module_text(PhysAddr pa) {
    module_text_.erase(page_align_down(pa));
  }
  [[nodiscard]] bool is_module_text(PhysAddr pa) const {
    return module_text_.contains(page_align_down(pa));
  }

  void add_user_root(PhysAddr pa) { user_roots_.insert(pa); }
  void remove_user_root(PhysAddr pa) { user_roots_.erase(pa); }
  [[nodiscard]] bool is_user_root(PhysAddr pa) const {
    return user_roots_.contains(pa);
  }
  void set_kernel_root(PhysAddr pa) { kernel_root_ = pa; }
  [[nodiscard]] PhysAddr kernel_root() const { return kernel_root_; }

  /// Check a requested write of `desc` into the table page at `table_pa`.
  Verdict check_pt_write(PhysAddr table_pa, unsigned index, u64 desc);

  [[nodiscard]] const VerifierStats& stats() const { return stats_; }
  [[nodiscard]] u64 pt_page_count() const { return pt_pages_.size(); }

 private:
  sim::Machine& machine_;
  PhysAddr text_base_;
  u64 text_size_;
  PhysAddr rodata_base_;
  u64 rodata_size_;
  PhysAddr kernel_root_ = 0;
  std::map<PhysAddr, unsigned> pt_pages_;  // table page -> walk level
  std::set<PhysAddr> kernel_tree_;         // immutable TTBR1 tables
  std::set<PhysAddr> module_text_;         // sealed RX module pages
  std::set<PhysAddr> user_roots_;
  VerifierStats stats_;
};

}  // namespace hn::hypersec
