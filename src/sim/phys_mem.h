// Simulated physical memory: byte-addressable RAM organised as 4 KiB
// copy-on-write pages.
//
// Functional state only.  *Visibility* of accesses (what reaches the memory
// bus, and hence the MBM) is modelled by sim::Cache and sim::MemoryBus, not
// here; see DESIGN.md §3.3.
//
// Page representation (DESIGN.md §12):
//
//   * a page slot holds either a refcounted Page or nullptr — the all-zero
//     sentinel.  Fresh machines allocate *no* pages at all, so constructing
//     a 64 MiB machine costs a pointer vector, not a 64 MiB memset;
//   * `capture()` shares every current page into a PageSet (refcount bump,
//     no copying) — the machine-snapshot fork path;
//   * writes materialise zero pages and copy shared ones (refcount > 1)
//     before mutating, so a captured PageSet is immutable: concurrent
//     machines forked from one snapshot only ever *read* shared pages,
//     which keeps the fork path clean under TSan.
//
// Refcount discipline is the shared_ptr classic: increments are relaxed,
// the owner-drop decrement is acq_rel, and the exclusivity check in the
// write path is an acquire load — a reader that observes refs == 1 is the
// sole owner and may write in place.
#pragma once

#include <atomic>
#include <cassert>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace hn::sim {

class PhysicalMemory {
 public:
  /// One 4 KiB physical page plus its sharing count.
  struct Page {
    std::atomic<u32> refs{1};
    u8 bytes[kPageSize];
  };

  /// A copy-on-write page snapshot: shares pages with the memory it was
  /// captured from (nullptr slots are all-zero pages).  Copying a PageSet
  /// is cheap (refcount bumps); destroying one releases its references.
  class PageSet {
   public:
    PageSet() = default;
    PageSet(const PageSet& other) : pages_(other.pages_) {
      for (Page* p : pages_) ref(p);
    }
    PageSet& operator=(const PageSet& other) {
      if (this == &other) return *this;
      PageSet copy(other);
      std::swap(pages_, copy.pages_);
      return *this;
    }
    PageSet(PageSet&& other) noexcept : pages_(std::move(other.pages_)) {
      other.pages_.clear();
    }
    PageSet& operator=(PageSet&& other) noexcept {
      if (this == &other) return *this;
      release();
      pages_ = std::move(other.pages_);
      other.pages_.clear();
      return *this;
    }
    ~PageSet() { release(); }

    [[nodiscard]] bool empty() const { return pages_.empty(); }
    [[nodiscard]] u64 page_count() const { return pages_.size(); }
    /// Pages actually backed by storage (non-zero content at capture time).
    [[nodiscard]] u64 populated_count() const {
      u64 n = 0;
      for (const Page* p : pages_) n += (p != nullptr);
      return n;
    }
    /// Raw bytes of page `index`, or nullptr for an all-zero page.
    [[nodiscard]] const u8* page_data(u64 index) const {
      assert(index < pages_.size());
      return pages_[index] != nullptr ? pages_[index]->bytes : nullptr;
    }

    /// Rebuild-from-file support: reset to `page_count` all-zero pages,
    /// then populate individual pages with private (refcount 1) copies.
    void reset(u64 page_count) {
      release();
      pages_.assign(page_count, nullptr);
    }
    void set_page(u64 index, const u8* bytes) {
      assert(index < pages_.size());
      unref(pages_[index]);
      Page* p = new Page;
      std::memcpy(p->bytes, bytes, kPageSize);
      pages_[index] = p;
    }

   private:
    friend class PhysicalMemory;
    void release() {
      for (Page* p : pages_) unref(p);
      pages_.clear();
    }

    std::vector<Page*> pages_;
  };

  explicit PhysicalMemory(u64 size_bytes)
      : size_(size_bytes), pages_(size_bytes >> kPageShift, nullptr),
        watched_(size_bytes >> kPageShift, 0),
        page_epoch_(size_bytes >> kPageShift, 0) {
    assert(is_page_aligned(size_bytes));
  }
  ~PhysicalMemory() {
    for (Page* p : pages_) unref(p);
  }
  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  [[nodiscard]] u64 size() const { return size_; }
  [[nodiscard]] bool contains(PhysAddr pa, u64 len = 1) const {
    return pa < size_ && len <= size_ - pa;
  }

  [[nodiscard]] u64 read64(PhysAddr pa) const {
    assert(contains(pa, 8));
    const u64 off = pa & kPageMask;
    if (off <= kPageSize - 8) [[likely]] {
      const Page* p = pages_[pa >> kPageShift];
      if (p == nullptr) return 0;
      u64 v;
      std::memcpy(&v, &p->bytes[off], 8);
      return v;
    }
    u64 v = 0;
    read_block(pa, &v, 8);
    return v;
  }
  void write64(PhysAddr pa, u64 v) {
    assert(contains(pa, 8));
    const u64 off = pa & kPageMask;
    if (off <= kPageSize - 8) [[likely]] {
      std::memcpy(&writable_page(pa >> kPageShift)->bytes[off], &v, 8);
      return;
    }
    write_block(pa, &v, 8);
  }

  [[nodiscard]] u32 read32(PhysAddr pa) const {
    assert(contains(pa, 4));
    const u64 off = pa & kPageMask;
    if (off <= kPageSize - 4) [[likely]] {
      const Page* p = pages_[pa >> kPageShift];
      if (p == nullptr) return 0;
      u32 v;
      std::memcpy(&v, &p->bytes[off], 4);
      return v;
    }
    u32 v = 0;
    read_block(pa, &v, 4);
    return v;
  }
  void write32(PhysAddr pa, u32 v) {
    assert(contains(pa, 4));
    const u64 off = pa & kPageMask;
    if (off <= kPageSize - 4) [[likely]] {
      std::memcpy(&writable_page(pa >> kPageShift)->bytes[off], &v, 4);
      return;
    }
    write_block(pa, &v, 4);
  }

  [[nodiscard]] u8 read8(PhysAddr pa) const {
    assert(contains(pa));
    const Page* p = pages_[pa >> kPageShift];
    return p != nullptr ? p->bytes[pa & kPageMask] : 0;
  }
  void write8(PhysAddr pa, u8 v) {
    assert(contains(pa));
    writable_page(pa >> kPageShift)->bytes[pa & kPageMask] = v;
  }

  void read_block(PhysAddr pa, void* out, u64 len) const {
    assert(contains(pa, len));
    u8* dst = static_cast<u8*>(out);
    while (len > 0) {
      const u64 off = pa & kPageMask;
      const u64 n = len < kPageSize - off ? len : kPageSize - off;
      const Page* p = pages_[pa >> kPageShift];
      if (p == nullptr) {
        std::memset(dst, 0, n);
      } else {
        std::memcpy(dst, &p->bytes[off], n);
      }
      pa += n;
      dst += n;
      len -= n;
    }
  }
  void write_block(PhysAddr pa, const void* in, u64 len) {
    assert(contains(pa, len));
    const u8* src = static_cast<const u8*>(in);
    while (len > 0) {
      const u64 off = pa & kPageMask;
      const u64 n = len < kPageSize - off ? len : kPageSize - off;
      std::memcpy(&writable_page(pa >> kPageShift)->bytes[off], src, n);
      pa += n;
      src += n;
      len -= n;
    }
  }

  void zero_range(PhysAddr pa, u64 len) {
    assert(contains(pa, len));
    while (len > 0) {
      const u64 off = pa & kPageMask;
      const u64 n = len < kPageSize - off ? len : kPageSize - off;
      const u64 index = pa >> kPageShift;
      if (off == 0 && n == kPageSize) {
        // Whole page: drop back to the zero sentinel, reclaiming sharing.
        // This bypasses writable_page(), so touch the watch epoch here.
        touch_watched(index);
        unref(pages_[index]);
        pages_[index] = nullptr;
      } else if (pages_[index] != nullptr) {
        std::memset(&writable_page(index)->bytes[off], 0, n);
      }
      pa += n;
      len -= n;
    }
  }

  // --- Snapshot / fork support (sim/snapshot.h) -----------------------------

  /// Share every current page into a PageSet: the copy-on-write fork.
  /// O(pages) pointer work; no page data is copied.
  [[nodiscard]] PageSet capture() {
    PageSet set;
    set.pages_ = pages_;
    for (Page* p : set.pages_) ref(p);
    return set;
  }

  /// Replace the current contents with `set`'s pages, copy-on-write shared.
  /// Pages this memory privately materialised since the capture are freed.
  Status adopt(const PageSet& set) {
    if (set.pages_.size() != pages_.size()) {
      return Status::Invalid(
          "snapshot: physical memory page count mismatch (snapshot " +
          std::to_string(set.pages_.size()) + ", machine " +
          std::to_string(pages_.size()) + ")");
    }
    for (size_t i = 0; i < pages_.size(); ++i) {
      Page* next = set.pages_[i];
      Page* cur = pages_[i];
      if (next == cur) continue;
      touch_watched(i);
      ref(next);
      unref(cur);
      pages_[i] = next;
    }
    return Status::Ok();
  }

  // --- Page-watch epochs ------------------------------------------------------
  //
  // A host-side change detector for consumers that cache derived views of
  // specific pages (the EL2 page-table audit memoizes per-table scans).
  // Watched pages get a fresh epoch from a global counter whenever their
  // contents may have changed: any write-path materialisation, a whole-page
  // zero, or a snapshot adopt() swapping the backing page.  Purely host
  // bookkeeping — no simulated cost, no bus traffic, no counters.

  /// Start watching page `index`.  Always assigns a fresh epoch, so a
  /// cache entry recorded before the watch began can never appear valid.
  void watch_page(u64 index) {
    assert(index < pages_.size());
    watched_[index] = 1;
    page_epoch_[index] = ++watch_epoch_;
  }
  void unwatch_page(u64 index) {
    assert(index < pages_.size());
    watched_[index] = 0;
  }
  [[nodiscard]] bool page_watched(u64 index) const {
    assert(index < pages_.size());
    return watched_[index] != 0;
  }
  /// Epoch of the last potential mutation of watched page `index`.
  [[nodiscard]] u64 page_epoch(u64 index) const {
    assert(index < pages_.size());
    return page_epoch_[index];
  }

  [[nodiscard]] u64 page_count() const { return pages_.size(); }
  /// Raw bytes of page `index`, or nullptr for an all-zero page.
  [[nodiscard]] const u8* page_data(u64 index) const {
    assert(index < pages_.size());
    return pages_[index] != nullptr ? pages_[index]->bytes : nullptr;
  }
  /// Sharing count of page `index` (0 for the zero sentinel) — exposed for
  /// the COW lifecycle tests.
  [[nodiscard]] u32 page_refs(u64 index) const {
    assert(index < pages_.size());
    const Page* p = pages_[index];
    return p != nullptr ? p->refs.load(std::memory_order_relaxed) : 0;
  }

 private:
  static void ref(Page* p) {
    if (p != nullptr) p->refs.fetch_add(1, std::memory_order_relaxed);
  }
  static void unref(Page* p) {
    if (p != nullptr && p->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete p;
    }
  }

  /// Watched-page epoch bump; see the page-watch section above.
  void touch_watched(u64 index) {
    if (watched_[index] != 0) [[unlikely]] {
      page_epoch_[index] = ++watch_epoch_;
    }
  }

  /// The write path: returns a page this memory owns exclusively,
  /// materialising the zero sentinel or copying a shared page first.
  Page* writable_page(u64 index) {
    touch_watched(index);
    Page* p = pages_[index];
    if (p != nullptr && p->refs.load(std::memory_order_acquire) == 1) {
      return p;
    }
    Page* fresh = new Page;
    if (p == nullptr) {
      std::memset(fresh->bytes, 0, kPageSize);
    } else {
      std::memcpy(fresh->bytes, p->bytes, kPageSize);
      unref(p);
    }
    pages_[index] = fresh;
    return fresh;
  }

  u64 size_;
  std::vector<Page*> pages_;
  std::vector<u8> watched_;     // 1 = page participates in epoch tracking
  std::vector<u64> page_epoch_; // last-mutation epoch of watched pages
  u64 watch_epoch_ = 0;         // global monotone epoch source
};

}  // namespace hn::sim
