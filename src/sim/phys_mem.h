// Simulated physical memory: a flat byte-addressable RAM.
//
// Functional state only.  *Visibility* of accesses (what reaches the memory
// bus, and hence the MBM) is modelled by sim::Cache and sim::MemoryBus, not
// here; see DESIGN.md §3.3.
#pragma once

#include <cassert>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace hn::sim {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(u64 size_bytes) : data_(size_bytes, 0) {
    assert(is_page_aligned(size_bytes));
  }

  [[nodiscard]] u64 size() const { return data_.size(); }
  [[nodiscard]] bool contains(PhysAddr pa, u64 len = 1) const {
    return pa < data_.size() && len <= data_.size() - pa;
  }

  [[nodiscard]] u64 read64(PhysAddr pa) const {
    assert(contains(pa, 8));
    u64 v;
    std::memcpy(&v, &data_[pa], 8);
    return v;
  }
  void write64(PhysAddr pa, u64 v) {
    assert(contains(pa, 8));
    std::memcpy(&data_[pa], &v, 8);
  }

  [[nodiscard]] u32 read32(PhysAddr pa) const {
    assert(contains(pa, 4));
    u32 v;
    std::memcpy(&v, &data_[pa], 4);
    return v;
  }
  void write32(PhysAddr pa, u32 v) {
    assert(contains(pa, 4));
    std::memcpy(&data_[pa], &v, 4);
  }

  [[nodiscard]] u8 read8(PhysAddr pa) const {
    assert(contains(pa));
    return data_[pa];
  }
  void write8(PhysAddr pa, u8 v) {
    assert(contains(pa));
    data_[pa] = v;
  }

  void read_block(PhysAddr pa, void* out, u64 len) const {
    assert(contains(pa, len));
    std::memcpy(out, &data_[pa], len);
  }
  void write_block(PhysAddr pa, const void* in, u64 len) {
    assert(contains(pa, len));
    std::memcpy(&data_[pa], in, len);
  }

  void zero_range(PhysAddr pa, u64 len) {
    assert(contains(pa, len));
    std::memset(&data_[pa], 0, len);
  }

 private:
  std::vector<u8> data_;
};

}  // namespace hn::sim
