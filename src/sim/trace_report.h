// Flight-recorder analysis: causal-chain reconstruction, the
// detection-latency attribution report, the Chrome trace-event exporter,
// and the dump/diff renderers behind tools/hypernel_trace.cpp.
//
// All renderers return deterministic strings — equal TraceData produce
// byte-identical output, so reports can be golden-tested and compared
// across --jobs counts and fast-path/--reference executions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "sim/trace_io.h"

namespace hn::sim {

/// One reconstructed write→detect→verdict chain, walked backward from a
/// kVerdict event through its cause links.  Segment durations telescope:
/// consecutive chain-event timestamp deltas, so their sum is exactly the
/// end-to-end detection latency (verdict.at - bus_write.at).
///
/// The bus-snoop / FIFO / bitmap stages run in MBM hardware concurrently
/// with the CPU, so their CPU-timeline segments are 0 in the synchronous
/// detection model; the *modeled* FIFO residency (queue wait + translator
/// service, off the CPU critical path) is reported separately from the
/// kMbmFifo event's a/b payload.
struct DetectionChain {
  bool complete = false;  // all of bus_write/fifo/detect/irq/verdict found
  bool has_pt_write = false;
  bool has_irq = false;
  TraceEvent pt_write{};   // optional chain root (kernel PT descriptor write)
  TraceEvent bus_write{};  // kBusWrite: the monitored store on the bus
  TraceEvent fifo{};       // kMbmFifo: snooper capture accepted
  TraceEvent detect{};     // kMbmDetect: bitmap bit matched
  TraceEvent irq{};        // kIrq: delivery to Hypersec
  TraceEvent verdict{};    // kVerdict: security-app verdict
  // CPU-timeline segments (cycles); sum == end_to_end when complete.
  Cycles bus_snoop = 0;      // fifo.at - bus_write.at
  Cycles fifo_residency = 0; // detect.at - fifo.at (0: concurrent hardware)
  Cycles bitmap_check = 0;   // detect.at - fifo.at (synchronous model: 0)
  Cycles irq_delivery = 0;   // irq.at - detect.at
  Cycles verifier = 0;       // verdict.at - irq.at
  Cycles end_to_end = 0;     // verdict.at - bus_write.at
  // Modeled concurrent MBM pipeline (not on the CPU critical path).
  Cycles mbm_queue_wait = 0;  // fifo.a
  Cycles mbm_service = 0;     // fifo.b
};

struct AttributionReport {
  std::vector<DetectionChain> chains;  // one per kVerdict, trace order
  u64 verdicts_total = 0;
  u64 verdicts_benign = 0;        // kVerdict b == 0
  u64 verdicts_alert = 0;         // kVerdict b == 1
  u64 verdicts_unattributed = 0;  // kVerdict b == 2
  u64 broken_chains = 0;          // upstream link evicted from the ring
  /// Any event in the trace carries a nonzero core id — i.e. this is a
  /// genuinely SMP trace.  Gates the core= chain tags and the per-core
  /// attribution table (single-core and v1 traces render as before).
  bool smp_trace = false;
};

/// Walk every kVerdict event's cause links back to its bus write (and
/// optional PT-write root), pairing each detection with the kIrq event it
/// raised, and split the end-to-end latency into segments.
[[nodiscard]] AttributionReport build_attribution(const TraceData& data);

/// Render the attribution report as text (the `hypernel_trace report`
/// output): per-chain breakdowns plus aggregate min/avg/max.
[[nodiscard]] std::string render_attribution(const AttributionReport& report,
                                             double cpu_ghz);

/// Export as Chrome trace-event JSON (catapult / Perfetto "JSON Array
/// Format" wrapped in {"traceEvents": ...}).  Trace events become instant
/// events on tid 1, spans duration events on tid 2, and cause links flow
/// arrows — all on one simulated-µs timeline, records sorted by ts.
[[nodiscard]] std::string export_chrome_json(const TraceData& data);

/// Render the sampled time series (the `hypernel_trace timeline`
/// output): one row per sampling window with per-core utilization, MBM
/// FIFO occupancy vs. snooped-write traffic, and p50/p95/p99
/// detection-latency percentiles over the chains whose monitored store
/// falls in that window (attribution comes from build_attribution on the
/// same trace, so the per-window percentiles and the closing totals line
/// telescope to the attribution report's end-to-end sums — the
/// timeline/attribution cross-check test pins this).  Works on a full v3
/// trace or a TraceData holding only a parsed HNTSERIE section.
[[nodiscard]] std::string render_timeline(const TraceData& data);

/// Render events as text, one line per event (the `hypernel_trace dump`
/// output).  Empty `kind_filter` keeps everything; otherwise only events
/// whose kind_name matches.
[[nodiscard]] std::string render_dump(const TraceData& data,
                                      std::string_view kind_filter);

/// Compare two traces: first divergence (if any) plus per-kind counts.
[[nodiscard]] std::string render_diff(const TraceData& a, const TraceData& b);

}  // namespace hn::sim
