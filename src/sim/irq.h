// Interrupt controller (GIC-lite): named lines, enable bits, synchronous
// delivery through the exception model's routing (HCR_EL2.IMO decides EL2
// vs EL1).  The MBM's completion interrupt (§5.3 step 6) arrives here.
#pragma once

#include <array>

#include "common/types.h"
#include "sim/exception.h"
#include "sim/snapshot.h"

namespace hn::sim {

inline constexpr unsigned kIrqLines = 16;
inline constexpr unsigned kIrqTimer = 1;
inline constexpr unsigned kIrqMbm = 5;
inline constexpr unsigned kIrqNet = 6;
/// Inter-processor interrupt (SMP, DESIGN.md §15).  Posted by the Machine
/// on cross-core TLB shootdowns and delivered on the *target* core's GIC
/// when the scheduler next activates it, so charges and trace events
/// attribute to the receiving core.
inline constexpr unsigned kIrqIpi = 7;

class InterruptController {
 public:
  explicit InterruptController(ExceptionModel& exceptions)
      : exceptions_(exceptions) {
    enabled_.fill(true);
  }

  void set_enabled(unsigned line, bool on) { enabled_.at(line) = on; }
  [[nodiscard]] bool enabled(unsigned line) const { return enabled_.at(line); }

  /// Assert a line.  Enabled lines deliver synchronously; disabled lines
  /// latch as pending and deliver on re-enable via `replay_pending`.
  void raise(unsigned line) {
    if (!enabled_.at(line)) {
      pending_.at(line) = true;
      return;
    }
    ++raised_.at(line);
    exceptions_.deliver_irq(line);
  }

  void replay_pending() {
    for (unsigned line = 0; line < kIrqLines; ++line) {
      if (pending_[line] && enabled_[line]) {
        pending_[line] = false;
        ++raised_[line];
        exceptions_.deliver_irq(line);
      }
    }
  }

  [[nodiscard]] u64 raised_count(unsigned line) const { return raised_.at(line); }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------

  void save_state(SnapWriter& w) const {
    for (unsigned line = 0; line < kIrqLines; ++line) {
      w.put_bool(enabled_[line]);
      w.put_bool(pending_[line]);
      w.put_u64(raised_[line]);
    }
  }

  void restore_state(SnapReader& r) {
    r.section("gic");
    for (unsigned line = 0; line < kIrqLines; ++line) {
      enabled_[line] = r.get_bool();
      pending_[line] = r.get_bool();
      raised_[line] = r.get_u64();
    }
  }

 private:
  ExceptionModel& exceptions_;
  std::array<bool, kIrqLines> enabled_{};
  std::array<bool, kIrqLines> pending_{};
  std::array<u64, kIrqLines> raised_{};
};

}  // namespace hn::sim
