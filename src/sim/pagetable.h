// Translation-table descriptor format.
//
// A simplified but structurally faithful AArch64 long-descriptor format:
// 4 KiB granule, 48-bit VA, 4-level walk (levels 0..3), with 2 MiB block
// descriptors allowed at level 2 (the "section" mapping §6.2 removes).
// Descriptors live in simulated physical memory and are what the sim::Mmu
// walker actually reads; Hypersec's W^X and read-only checks operate on
// these encodings.
#pragma once

#include "common/bitops.h"
#include "common/types.h"

namespace hn::sim {

/// Memory attribute (MAIR index analogue).
enum class MemAttr : u8 {
  kNormalCacheable = 0,
  kNonCacheable = 1,  // Hypersec uses this for MBM-monitored pages (§5.3)
  kDevice = 2,
};

/// Effective stage-1 page permissions/attributes for a mapping.
struct PageAttrs {
  bool write = false;     // writable at its privilege level
  bool exec = false;      // executable (PXN analogue, inverted)
  bool user = false;      // accessible from EL0 (AP[1])
  bool global = true;     // nG analogue, inverted (kernel mappings global)
  MemAttr attr = MemAttr::kNormalCacheable;

  bool operator==(const PageAttrs&) const = default;
};

// --- Descriptor bit layout (stage 1) --------------------------------------
//  bit  0      valid
//  bit  1      table (levels 0-2) / page (level 3, must be 1)
//  bits 4:2    memory attribute index
//  bit  6      AP[1]  user accessible
//  bit  7      AP[2]  read-only
//  bit  11     nG     non-global
//  bits 47:12  output address
//  bit  53     PXN    privileged execute-never
inline constexpr unsigned kDescValid = 0;
inline constexpr unsigned kDescTable = 1;
inline constexpr unsigned kDescUser = 6;
inline constexpr unsigned kDescReadOnly = 7;
inline constexpr unsigned kDescNonGlobal = 11;
inline constexpr unsigned kDescPxn = 53;

// --- Stage-2 layout: same skeleton, S2AP read/write at bits 6/7 ------------
inline constexpr unsigned kDescS2Read = 6;
inline constexpr unsigned kDescS2Write = 7;

constexpr bool desc_valid(u64 d) { return bit(d, kDescValid); }

/// At levels 0-2 bit 1 selects table vs block; at level 3 bit 1 must be set
/// for a valid page descriptor.
constexpr bool desc_is_table(u64 d, unsigned level) {
  return level < 3 && bit(d, kDescTable);
}
constexpr bool desc_is_block(u64 d, unsigned level) {
  return desc_valid(d) && level == 2 && !bit(d, kDescTable);
}

constexpr PhysAddr desc_out_addr(u64 d) { return bits(d, 47, 12) << 12; }

constexpr u64 make_table_desc(PhysAddr next_table) {
  return with_bit(with_bit(set_bits(0, 47, 12, next_table >> 12), kDescValid, true),
                  kDescTable, true);
}

constexpr u64 encode_attrs(u64 d, const PageAttrs& a) {
  d = set_bits(d, 4, 2, static_cast<u64>(a.attr));
  d = with_bit(d, kDescUser, a.user);
  d = with_bit(d, kDescReadOnly, !a.write);
  d = with_bit(d, kDescNonGlobal, !a.global);
  d = with_bit(d, kDescPxn, !a.exec);
  return d;
}

constexpr PageAttrs decode_attrs(u64 d) {
  PageAttrs a;
  a.attr = static_cast<MemAttr>(bits(d, 4, 2));
  a.user = bit(d, kDescUser);
  a.write = !bit(d, kDescReadOnly);
  a.global = !bit(d, kDescNonGlobal);
  a.exec = !bit(d, kDescPxn);
  return a;
}

/// Level-3 4 KiB page descriptor.
constexpr u64 make_page_desc(PhysAddr pa, const PageAttrs& a) {
  u64 d = set_bits(0, 47, 12, pa >> 12);
  d = with_bit(d, kDescValid, true);
  d = with_bit(d, kDescTable, true);  // level-3 "page" encoding
  return encode_attrs(d, a);
}

/// Level-2 2 MiB block descriptor (the section mapping the stock kernel
/// uses for its linear map, §6.2).
constexpr u64 make_block_desc(PhysAddr pa, const PageAttrs& a) {
  u64 d = set_bits(0, 47, 12, pa >> 12);  // pa must be 2 MiB aligned
  d = with_bit(d, kDescValid, true);      // bit1 clear => block at level 2
  return encode_attrs(d, a);
}

/// Rewrite only the attribute bits of an existing page/block descriptor.
constexpr u64 desc_with_attrs(u64 d, const PageAttrs& a) {
  return encode_attrs(d, a);
}

// --- Stage 2 ---------------------------------------------------------------
struct S2Attrs {
  bool read = true;
  bool write = true;
  bool operator==(const S2Attrs&) const = default;
};

constexpr u64 make_s2_page_desc(PhysAddr pa, const S2Attrs& a) {
  u64 d = set_bits(0, 47, 12, pa >> 12);
  d = with_bit(d, kDescValid, true);
  d = with_bit(d, kDescTable, true);
  d = with_bit(d, kDescS2Read, a.read);
  d = with_bit(d, kDescS2Write, a.write);
  return d;
}

constexpr S2Attrs decode_s2_attrs(u64 d) {
  return S2Attrs{bit(d, kDescS2Read), bit(d, kDescS2Write)};
}

constexpr u64 s2_desc_with_attrs(u64 d, const S2Attrs& a) {
  d = with_bit(d, kDescS2Read, a.read);
  return with_bit(d, kDescS2Write, a.write);
}

// --- Walk index math --------------------------------------------------------
/// Index into the level-`level` table for virtual address `va`.
constexpr u64 va_index(VirtAddr va, unsigned level) {
  const unsigned shift = kPageShift + 9 * (3 - level);
  return (va >> shift) & (kPtEntries - 1);
}

/// VA span covered by one entry at `level` (level 3: 4K, level 2: 2M, ...).
constexpr u64 level_span(unsigned level) {
  return u64{1} << (kPageShift + 9 * (3 - level));
}

}  // namespace hn::sim
