#include "sim/trace_io.h"

#include <cstdio>
#include <cstring>

#include "sim/machine.h"

namespace hn::sim {

namespace {

// Little-endian append helpers.  The format is defined as little-endian
// regardless of host byte order; memcpy of integral values is correct on
// every platform this simulator targets (and asserted nowhere else).
void put_u8(std::vector<u8>& out, u8 v) { out.push_back(v); }

void put_u32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_f64(std::vector<u8>& out, double v) {
  u64 bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader over a blob.
class Reader {
 public:
  explicit Reader(const std::vector<u8>& blob) : blob_(blob) {}

  bool u8_(u8& v) {
    if (pos_ + 1 > blob_.size()) return false;
    v = blob_[pos_++];
    return true;
  }
  bool u32_(u32& v) {
    if (pos_ + 4 > blob_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(blob_[pos_++]) << (8 * i);
    return true;
  }
  bool u64_(u64& v) {
    if (pos_ + 8 > blob_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(blob_[pos_++]) << (8 * i);
    return true;
  }
  bool f64_(double& v) {
    u64 bits;
    if (!u64_(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool bytes(void* dst, u64 n) {
    if (pos_ + n > blob_.size()) return false;
    std::memcpy(dst, blob_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] u64 remaining() const { return blob_.size() - pos_; }

 private:
  const std::vector<u8>& blob_;
  u64 pos_ = 0;
};

}  // namespace

std::vector<u8> serialize_trace(const Trace& trace,
                                const obs::SpanTracer* spans, double cpu_ghz,
                                const obs::TimeSeriesData* timeseries) {
  const std::vector<TraceEvent> events = trace.chronological();
  const std::vector<obs::SpanEvent> span_events =
      spans != nullptr ? spans->chronological()
                       : std::vector<obs::SpanEvent>{};
  const u32 name_count = spans != nullptr ? spans->name_count() : 0;

  std::vector<u8> out;
  out.reserve(64 + events.size() * 42 + span_events.size() * 32);
  for (const char c : kTraceMagic) out.push_back(static_cast<u8>(c));
  put_u32(out, kTraceFormatVersion);
  put_u32(out, 0);  // reserved
  put_f64(out, cpu_ghz);
  put_u64(out, trace.sequence());
  put_u64(out, trace.first_seq());
  put_u64(out, trace.dropped());
  put_u64(out, spans != nullptr ? spans->dropped() : 0);
  put_u64(out, events.size());
  put_u64(out, name_count);
  put_u64(out, span_events.size());

  for (const TraceEvent& e : events) {
    put_u64(out, e.seq);
    put_u64(out, e.cause);
    put_u64(out, e.at);
    put_u64(out, e.a);
    put_u64(out, e.b);
    put_u8(out, static_cast<u8>(e.kind));
    put_u8(out, e.core);
  }
  for (u32 id = 0; id < name_count; ++id) {
    const std::string& name = spans->name(id);
    put_u32(out, static_cast<u32>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
  }
  for (const obs::SpanEvent& s : span_events) {
    put_u32(out, s.name_id);
    put_u32(out, s.depth);
    put_u64(out, s.begin);
    put_u64(out, s.end);
    put_u64(out, s.self);
  }
  // v3 time-series section: a length-prefixed embedded HNTSERIE blob
  // (zero length when the run sampled nothing).
  if (timeseries != nullptr && !timeseries->tracks.empty()) {
    const std::vector<u8> ts = obs::serialize_timeseries(*timeseries);
    put_u64(out, ts.size());
    out.insert(out.end(), ts.begin(), ts.end());
  } else {
    put_u64(out, 0);
  }
  return out;
}

std::vector<u8> capture_trace(Machine& machine) {
  if (machine.timeseries().armed()) {
    obs::TimeSeriesData ts = machine.timeseries().data(machine.bus_order_now());
    ts.cpu_ghz = machine.timing().cpu_ghz;
    return serialize_trace(machine.trace(), &machine.spans(),
                           machine.timing().cpu_ghz, &ts);
  }
  return serialize_trace(machine.trace(), &machine.spans(),
                         machine.timing().cpu_ghz);
}

std::vector<u8> capture_timeseries(Machine& machine) {
  if (!machine.timeseries().armed()) return {};
  obs::TimeSeriesData ts = machine.timeseries().data(machine.bus_order_now());
  ts.cpu_ghz = machine.timing().cpu_ghz;
  return obs::serialize_timeseries(ts);
}

Status parse_trace(const std::vector<u8>& blob, TraceData& out) {
  Reader r(blob);
  char magic[8];
  if (!r.bytes(magic, 8) || std::memcmp(magic, kTraceMagic, 8) != 0) {
    return Status::Invalid("trace: bad magic (not a HNTRACE file)");
  }
  u32 reserved = 0;
  if (!r.u32_(out.version) || !r.u32_(reserved)) {
    return Status::Invalid("trace: truncated header");
  }
  if (out.version < 1 || out.version > kTraceFormatVersion) {
    return Status::Invalid("trace: unsupported format version " +
                           std::to_string(out.version));
  }
  u64 event_count = 0, name_count = 0, span_count = 0;
  if (!r.f64_(out.cpu_ghz) || !r.u64_(out.seq_end) || !r.u64_(out.first_seq) ||
      !r.u64_(out.trace_dropped) || !r.u64_(out.span_dropped) ||
      !r.u64_(event_count) || !r.u64_(name_count) || !r.u64_(span_count)) {
    return Status::Invalid("trace: truncated header");
  }
  // Each event is 41 bytes (v1) or 42 (v2, trailing core byte); cheap
  // sanity bound before reserving.
  const u64 event_bytes = out.version == 1 ? 41 : 42;
  if (event_count * event_bytes > r.remaining()) {
    return Status::Invalid("trace: truncated event table");
  }
  out.events.clear();
  out.events.reserve(event_count);
  for (u64 i = 0; i < event_count; ++i) {
    TraceEvent e;
    u8 kind = 0;
    if (!r.u64_(e.seq) || !r.u64_(e.cause) || !r.u64_(e.at) || !r.u64_(e.a) ||
        !r.u64_(e.b) || !r.u8_(kind)) {
      return Status::Invalid("trace: truncated event table");
    }
    if (out.version >= 2 && !r.u8_(e.core)) {
      return Status::Invalid("trace: truncated event table");
    }
    if (kind > static_cast<u8>(TraceKind::kSnapshot)) {
      return Status::Invalid("trace: unknown event kind " +
                             std::to_string(kind));
    }
    e.kind = static_cast<TraceKind>(kind);
    out.events.push_back(e);
  }
  out.span_names.clear();
  out.span_names.reserve(name_count);
  for (u64 i = 0; i < name_count; ++i) {
    u32 len = 0;
    if (!r.u32_(len) || len > r.remaining()) {
      return Status::Invalid("trace: truncated span name table");
    }
    std::string name(len, '\0');
    if (len > 0 && !r.bytes(name.data(), len)) {
      return Status::Invalid("trace: truncated span name table");
    }
    out.span_names.push_back(std::move(name));
  }
  if (span_count * 32 > r.remaining()) {
    return Status::Invalid("trace: truncated span table");
  }
  out.spans.clear();
  out.spans.reserve(span_count);
  for (u64 i = 0; i < span_count; ++i) {
    obs::SpanEvent s;
    if (!r.u32_(s.name_id) || !r.u32_(s.depth) || !r.u64_(s.begin) ||
        !r.u64_(s.end) || !r.u64_(s.self)) {
      return Status::Invalid("trace: truncated span table");
    }
    if (s.name_id >= out.span_names.size()) {
      return Status::Invalid("trace: span references unknown name id " +
                             std::to_string(s.name_id));
    }
    out.spans.push_back(s);
  }
  out.timeseries = obs::TimeSeriesData{};
  if (out.version >= 3) {
    u64 ts_len = 0;
    if (!r.u64_(ts_len) || ts_len > r.remaining()) {
      return Status::Invalid("trace: truncated time-series section");
    }
    if (ts_len > 0) {
      std::vector<u8> ts_blob(ts_len);
      if (!r.bytes(ts_blob.data(), ts_len)) {
        return Status::Invalid("trace: truncated time-series section");
      }
      if (Status s = obs::parse_timeseries(ts_blob, out.timeseries); !s.ok()) {
        return s;
      }
    }
  }
  if (r.remaining() != 0) {
    return Status::Invalid("trace: trailing bytes after span table");
  }
  return Status::Ok();
}

bool write_trace_file(const std::vector<u8>& blob, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      blob.empty() ||
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  return std::fclose(f) == 0 && ok;
}

bool read_trace_file(const std::string& path, std::vector<u8>& blob) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  blob.clear();
  u8 buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace hn::sim
