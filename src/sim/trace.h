// Event tracing for the simulated machine: a causal flight recorder.
//
// A bounded ring of typed events (architectural transitions, monitor
// activity) that higher layers append to and tools render.  Tracing is
// off by default and costs nothing when disabled; when enabled it records
// *simulated* time, so traces are deterministic and diffable — the
// debugging workflow for "why did this configuration get slower" that
// tools/hypernel_trace.cpp implements (report/export/dump/diff).
//
// Every recorded event carries a stamped global sequence id and an
// optional `cause` link naming the sequence id of the event that produced
// it.  Emitting layers thread provenance through the detection chain
// (kernel PT/object write → bus transaction → MBM FIFO/bitmap → IRQ →
// Hypersec verdict) either explicitly (`record_caused`) or ambiently via
// `CauseScope`, which makes one event the default cause of everything
// recorded inside its dynamic extent.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"

namespace hn::sim {

/// Sentinel cause id: "no causal ancestor recorded".
inline constexpr u64 kNoCause = ~0ull;

enum class TraceKind : u8 {
  kSvc,          // syscall entry
  kHvc,          // hypercall (a = function id, b = result)
  kSysregTrap,   // TVM trap (a = register id, b = verdict: 1 allow)
  kIrq,          // interrupt delivery (a = line)
  kVmExit,       // world switch to the hypervisor (a = reason tag)
  kS2Fault,      // stage-2 fault (a = IPA, b = 1 if write)
  kEl1Fault,     // stage-1 permission/translation fault (a = VA)
  kMbmDetect,    // MBM detection (a = PA, b = value)
  kCtxSwitch,    // address-space switch (a = new ASID)
  kMonRegister,  // monitoring region registered (a = PA, b = size)
  kPtWrite,      // kernel PT descriptor write (a = descriptor PA, b = desc)
  kBusWrite,     // non-cacheable word write on the bus (a = PA, b = value)
  kMbmFifo,      // MBM FIFO accept (a = queue wait cy, b = service cy)
  kVerdict,      // Hypersec dispatch verdict (a = PA, b = 0 benign,
                 //   1 alert, 2 unattributed)
  kCustom,       // tool-defined
  // Appended after kCustom to keep existing serialized traces decodable
  // without a format-version bump.
  kSnapshot,     // machine snapshot boundary (a = 1 save, 2 restore; a
                 //   restore's cause links the save it forked from)
};

struct TraceEvent {
  Cycles at = 0;
  u64 seq = 0;          // global sequence id, stamped at record time
  u64 cause = kNoCause; // seq of the causing event, or kNoCause
  TraceKind kind = TraceKind::kCustom;
  u64 a = 0;
  u64 b = 0;
  /// Originating core (SMP provenance, DESIGN.md §15).  Stamped from the
  /// ambient active core at record time; always 0 on single-core machines
  /// so pre-SMP traces, diffs and golden renders are unchanged.
  u8 core = 0;
};

class Trace {
 public:
  /// Disabled by default; `capacity` bounds memory (oldest dropped).
  explicit Trace(u64 capacity = 1 << 16) : capacity_(capacity) {}

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record one event whose cause is the ambient CauseScope (kNoCause
  /// outside any scope).  Returns the stamped sequence id, or kNoCause
  /// when tracing is disabled — callers can pass the return value on as
  /// the cause of downstream events unconditionally.
  u64 record(Cycles at, TraceKind kind, u64 a = 0, u64 b = 0) {
    return record_caused(at, kind, current_cause_, a, b);
  }

  /// Record one event with an explicit cause link.
  u64 record_caused(Cycles at, TraceKind kind, u64 cause, u64 a = 0,
                    u64 b = 0) {
    if (!enabled_) return kNoCause;
    const u64 seq = seq_++;
    const TraceEvent e{at, seq, cause, kind, a, b, active_core_};
    if (capacity_ == 0) {
      ++dropped_;
      return seq;
    }
    if (events_.size() == capacity_) {
      events_[head_] = e;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
      return seq;
    }
    events_.push_back(e);
    return seq;
  }

  /// Ambient cause for events recorded without an explicit link.
  [[nodiscard]] u64 current_cause() const { return current_cause_; }

  /// Ambient core stamped into every recorded event.  The Machine sets
  /// this on core switches; everything recorded through the machine's
  /// trace — including MBM/Hypersec events fired synchronously from a
  /// core's bus write — inherits the issuing core without any call-site
  /// changes.  Stays 0 forever on single-core machines.
  void set_active_core(u8 core) { active_core_ = core; }
  [[nodiscard]] u8 active_core() const { return active_core_; }

  /// RAII: makes `cause` the default cause of every event recorded in its
  /// dynamic extent (nests; restores the previous ambient cause on exit).
  /// The IRQ/exception layers use this so deeply nested handlers inherit
  /// provenance without threading ids through every call signature.
  class CauseScope {
   public:
    CauseScope(Trace& trace, u64 cause)
        : trace_(trace), saved_(trace.current_cause_) {
      trace_.current_cause_ = cause;
    }
    ~CauseScope() { trace_.current_cause_ = saved_; }
    CauseScope(const CauseScope&) = delete;
    CauseScope& operator=(const CauseScope&) = delete;

   private:
    Trace& trace_;
    u64 saved_;
  };

  /// Events in chronological order (accounting for ring wrap).
  [[nodiscard]] std::vector<TraceEvent> chronological() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (u64 i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
  }

  [[nodiscard]] u64 size() const { return events_.size(); }
  [[nodiscard]] u64 dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
    seq_ = 0;
  }

  /// Monotone count of events recorded since construction / clear().  A
  /// caller can take `sequence()` as a mark before an operation and later
  /// retrieve exactly that operation's events with `since(mark)` — the
  /// replay hook the fuzz harness uses to dump the failing step.
  [[nodiscard]] u64 sequence() const { return seq_; }

  /// Sequence id of the oldest event the ring still holds.  Together with
  /// `dropped()` this attributes lost history to an exact range: ids
  /// [0, first_seq()) were recorded but have been evicted (or never
  /// retained, for a zero-capacity ring).
  [[nodiscard]] u64 first_seq() const { return seq_ - events_.size(); }

  /// Events with global sequence number >= `mark`, oldest first, limited
  /// to what the ring still holds (earlier events may have been dropped).
  [[nodiscard]] std::vector<TraceEvent> since(u64 mark) const {
    const u64 skip = mark > first_seq() ? mark - first_seq() : 0;
    std::vector<TraceEvent> out;
    if (skip >= events_.size()) return out;
    const std::vector<TraceEvent> all = chronological();
    out.assign(all.begin() + static_cast<std::ptrdiff_t>(skip), all.end());
    return out;
  }

  /// Snapshot support (sim/snapshot.h): replace the ring's contents with
  /// `events` (chronological order) and the matching drop/sequence
  /// accounting.  The enabled flag and ambient cause are host-side policy
  /// and stay untouched.  The rotated representation (head 0) is
  /// behaviourally identical to the original ring for every observer.
  void restore_ring(std::vector<TraceEvent> events, u64 dropped, u64 seq) {
    events_ = std::move(events);
    if (events_.size() > capacity_) events_.resize(capacity_);
    head_ = 0;
    dropped_ = dropped;
    seq_ = seq;
  }

  /// Count events of one kind.
  [[nodiscard]] u64 count(TraceKind kind) const {
    u64 n = 0;
    for (const TraceEvent& e : events_) n += (e.kind == kind);
    return n;
  }

  static const char* kind_name(TraceKind kind) {
    switch (kind) {
      case TraceKind::kSvc: return "svc";
      case TraceKind::kHvc: return "hvc";
      case TraceKind::kSysregTrap: return "trap";
      case TraceKind::kIrq: return "irq";
      case TraceKind::kVmExit: return "vmexit";
      case TraceKind::kS2Fault: return "s2fault";
      case TraceKind::kEl1Fault: return "el1fault";
      case TraceKind::kMbmDetect: return "mbm";
      case TraceKind::kCtxSwitch: return "ctxsw";
      case TraceKind::kMonRegister: return "monreg";
      case TraceKind::kPtWrite: return "ptwrite";
      case TraceKind::kBusWrite: return "buswrite";
      case TraceKind::kMbmFifo: return "fifo";
      case TraceKind::kVerdict: return "verdict";
      case TraceKind::kCustom: return "custom";
      case TraceKind::kSnapshot: return "snapshot";
    }
    return "?";
  }

  /// Render as text, one line per event, with µs timestamps, sequence ids
  /// and cause links.
  void dump(std::FILE* out, double cycles_per_us) const {
    for (const TraceEvent& e : chronological()) {
      std::fprintf(out, "%12.3fus  #%-6llu %-9s a=%#llx b=%#llx",
                   static_cast<double>(e.at) / cycles_per_us,
                   static_cast<unsigned long long>(e.seq), kind_name(e.kind),
                   static_cast<unsigned long long>(e.a),
                   static_cast<unsigned long long>(e.b));
      if (e.core != 0) {
        std::fprintf(out, " cpu%u", static_cast<unsigned>(e.core));
      }
      if (e.cause != kNoCause) {
        std::fprintf(out, "  <-#%llu",
                     static_cast<unsigned long long>(e.cause));
      }
      std::fputc('\n', out);
    }
    if (dropped_ > 0) {
      std::fprintf(out, "(%llu earlier events dropped: seq [0, %llu))\n",
                   static_cast<unsigned long long>(dropped_),
                   static_cast<unsigned long long>(first_seq()));
    }
  }

 private:
  u64 capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  u64 head_ = 0;
  u64 dropped_ = 0;
  u64 seq_ = 0;
  u64 current_cause_ = kNoCause;
  u8 active_core_ = 0;
};

}  // namespace hn::sim
