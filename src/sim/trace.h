// Event tracing for the simulated machine.
//
// A bounded ring of typed events (architectural transitions, monitor
// activity) that higher layers append to and tools render.  Tracing is
// off by default and costs nothing when disabled; when enabled it records
// *simulated* time, so traces are deterministic and diffable — the
// debugging workflow for "why did this configuration get slower".
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"

namespace hn::sim {

enum class TraceKind : u8 {
  kSvc,          // syscall entry
  kHvc,          // hypercall (a = function id, b = result)
  kSysregTrap,   // TVM trap (a = register id, b = verdict: 1 allow)
  kIrq,          // interrupt delivery (a = line)
  kVmExit,       // world switch to the hypervisor (a = reason tag)
  kS2Fault,      // stage-2 fault (a = IPA, b = 1 if write)
  kEl1Fault,     // stage-1 permission/translation fault (a = VA)
  kMbmDetect,    // MBM detection (a = PA, b = value)
  kCtxSwitch,    // address-space switch (a = new ASID)
  kMonRegister,  // monitoring region registered (a = PA, b = size)
  kCustom,       // tool-defined
};

struct TraceEvent {
  Cycles at = 0;
  TraceKind kind = TraceKind::kCustom;
  u64 a = 0;
  u64 b = 0;
};

class Trace {
 public:
  /// Disabled by default; `capacity` bounds memory (oldest dropped).
  explicit Trace(u64 capacity = 1 << 16) : capacity_(capacity) {}

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Cycles at, TraceKind kind, u64 a = 0, u64 b = 0) {
    if (!enabled_) return;
    ++seq_;
    if (capacity_ == 0) {
      ++dropped_;
      return;
    }
    if (events_.size() == capacity_) {
      events_[head_] = TraceEvent{at, kind, a, b};
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
      return;
    }
    events_.push_back(TraceEvent{at, kind, a, b});
  }

  /// Events in chronological order (accounting for ring wrap).
  [[nodiscard]] std::vector<TraceEvent> chronological() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (u64 i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
  }

  [[nodiscard]] u64 size() const { return events_.size(); }
  [[nodiscard]] u64 dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
    seq_ = 0;
  }

  /// Monotone count of events recorded since construction / clear().  A
  /// caller can take `sequence()` as a mark before an operation and later
  /// retrieve exactly that operation's events with `since(mark)` — the
  /// replay hook the fuzz harness uses to dump the failing step.
  [[nodiscard]] u64 sequence() const { return seq_; }

  /// Events with global sequence number >= `mark`, oldest first, limited
  /// to what the ring still holds (earlier events may have been dropped).
  [[nodiscard]] std::vector<TraceEvent> since(u64 mark) const {
    const u64 first_retained = seq_ - events_.size();
    const u64 skip = mark > first_retained ? mark - first_retained : 0;
    std::vector<TraceEvent> out;
    if (skip >= events_.size()) return out;
    const std::vector<TraceEvent> all = chronological();
    out.assign(all.begin() + static_cast<std::ptrdiff_t>(skip), all.end());
    return out;
  }

  /// Count events of one kind.
  [[nodiscard]] u64 count(TraceKind kind) const {
    u64 n = 0;
    for (const TraceEvent& e : events_) n += (e.kind == kind);
    return n;
  }

  static const char* kind_name(TraceKind kind) {
    switch (kind) {
      case TraceKind::kSvc: return "svc";
      case TraceKind::kHvc: return "hvc";
      case TraceKind::kSysregTrap: return "trap";
      case TraceKind::kIrq: return "irq";
      case TraceKind::kVmExit: return "vmexit";
      case TraceKind::kS2Fault: return "s2fault";
      case TraceKind::kEl1Fault: return "el1fault";
      case TraceKind::kMbmDetect: return "mbm";
      case TraceKind::kCtxSwitch: return "ctxsw";
      case TraceKind::kMonRegister: return "monreg";
      case TraceKind::kCustom: return "custom";
    }
    return "?";
  }

  /// Render as text, one line per event, with µs timestamps.
  void dump(std::FILE* out, double cycles_per_us) const {
    for (const TraceEvent& e : chronological()) {
      std::fprintf(out, "%12.3fus  %-8s a=%#llx b=%#llx\n",
                   static_cast<double>(e.at) / cycles_per_us,
                   kind_name(e.kind), static_cast<unsigned long long>(e.a),
                   static_cast<unsigned long long>(e.b));
    }
    if (dropped_ > 0) {
      std::fprintf(out, "(%llu earlier events dropped)\n",
                   static_cast<unsigned long long>(dropped_));
    }
  }

 private:
  u64 capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  u64 head_ = 0;
  u64 dropped_ = 0;
  u64 seq_ = 0;
};

}  // namespace hn::sim
