// Exception-level model: EL0/EL1/EL2 privilege, synchronous exceptions
// (HVC hypercalls, trapped system-register writes) and asynchronous IRQs.
//
// Handlers are callbacks registered by the software that owns each vector:
// Hypersec or KVM install EL2 handlers (VBAR_EL2 analogue), the kernel
// installs EL1 handlers (VBAR_EL1 analogue).
#pragma once

#include <functional>
#include <span>

#include "common/timing.h"
#include "common/types.h"
#include "sim/cycle_account.h"
#include "sim/sysregs.h"
#include "sim/trace.h"

namespace hn::sim {

enum class El : u8 { kEl0 = 0, kEl1 = 1, kEl2 = 2 };

/// Verdict of an EL2 handler for a trapped EL1 system-register write.
enum class TrapVerdict : u8 {
  kAllow,  // EL2 validated the write; it takes architectural effect
  kDeny,   // EL2 rejected it; the register is left unchanged
};

class ExceptionModel {
 public:
  using HypercallHandler = std::function<u64(u64 func, std::span<const u64> args)>;
  using SysregTrapHandler = std::function<TrapVerdict(SysReg reg, u64 value)>;
  using IrqHandler = std::function<void(unsigned line)>;

  ExceptionModel(SysRegs& regs, CycleAccount& account,
                 const TimingModel& timing, Trace& trace)
      : regs_(regs), account_(account), timing_(timing), trace_(trace) {}

  [[nodiscard]] El current_el() const { return el_; }
  /// Snapshot support: the current EL is the only architectural state this
  /// model owns (handlers are wiring).  Restore use only.
  void restore_el(El el) { el_ = el; }

  // --- EL2 vector installation (Hypersec §6.1 / KVM) ----------------------
  void set_hypercall_handler(HypercallHandler h) { hvc_handler_ = std::move(h); }
  void set_sysreg_trap_handler(SysregTrapHandler h) { trap_handler_ = std::move(h); }
  void set_el2_irq_handler(IrqHandler h) { el2_irq_handler_ = std::move(h); }
  void set_el1_irq_handler(IrqHandler h) { el1_irq_handler_ = std::move(h); }

  /// Clock source for flight-recorder timestamps.  On SMP machines the
  /// Machine installs its bus-order clock here so this core's kHvc /
  /// kSysregTrap / kIrq events land in the same time domain as the
  /// bus-stamped events; unset (single core), the local cycle count is
  /// that domain already.
  void set_trace_clock(std::function<Cycles()> fn) {
    trace_clock_ = std::move(fn);
  }

  /// HVC from EL1: world-switch to EL2, run the handler, return to EL1.
  /// Returns the handler's result (0 if no handler is installed).
  u64 hvc(u64 func, std::span<const u64> args) {
    account_.charge(timing_.hvc_roundtrip);
    ++account_.counters().hvc_calls;
    if (!hvc_handler_) return u64(-1);
    const El saved = el_;
    el_ = El::kEl2;
    const u64 r = hvc_handler_(func, args);
    el_ = saved;
    trace_.record(trace_now(), TraceKind::kHvc, func, r);
    return r;
  }

  /// EL1 write to a system register.  If HCR_EL2.TVM is set and the
  /// register is in the trapped set, control transfers to EL2 first
  /// (§5.2.2); the write takes effect only if EL2 allows it.
  /// Returns false when EL2 denied the write.
  bool write_sysreg_el1(SysReg reg, u64 value) {
    if (is_tvm_trapped(reg) && regs_.hcr_bit(kHcrTvm) && trap_handler_) {
      account_.charge(timing_.sysreg_trap);
      ++account_.counters().sysreg_traps;
      const El saved = el_;
      el_ = El::kEl2;
      const TrapVerdict v = trap_handler_(reg, value);
      el_ = saved;
      trace_.record(trace_now(), TraceKind::kSysregTrap,
                    static_cast<u64>(reg), v == TrapVerdict::kAllow ? 1 : 0);
      if (v == TrapVerdict::kDeny) return false;
    }
    regs_.set(reg, value);
    return true;
  }

  /// Asynchronous interrupt delivery.  Routed to EL2 when HCR_EL2.IMO is
  /// set (Hypersec owns physical IRQs), otherwise to EL1.
  void deliver_irq(unsigned line) {
    account_.charge(timing_.irq_delivery);
    ++account_.counters().irqs_delivered;
    // The kIrq event inherits the ambient cause (the MBM sets it to the
    // detection that raised the line); the handler body then records with
    // the IRQ itself as ambient cause, so everything the handler does is
    // causally downstream of the delivery.
    const u64 irq_seq =
        trace_.record(trace_now(), TraceKind::kIrq, line, 0);
    Trace::CauseScope cause(trace_, irq_seq);
    if (regs_.hcr_bit(kHcrImo) && el2_irq_handler_) {
      const El saved = el_;
      el_ = El::kEl2;
      el2_irq_handler_(line);
      el_ = saved;
    } else if (el1_irq_handler_) {
      const El saved = el_;
      el_ = El::kEl1;
      el1_irq_handler_(line);
      el_ = saved;
    }
  }

  /// Directly invoke the EL1 IRQ vector (used by a hypervisor's EL2 IRQ
  /// handler to forward a physical interrupt into the guest).
  void invoke_el1_irq(unsigned line) {
    if (!el1_irq_handler_) return;
    const El saved = el_;
    el_ = El::kEl1;
    el1_irq_handler_(line);
    el_ = saved;
  }

  /// Scoped EL override for software that legitimately runs at another
  /// level (Hypersec boot code at EL2, user code at EL0).
  class ElScope {
   public:
    ElScope(ExceptionModel& model, El el) : model_(model), saved_(model.el_) {
      model_.el_ = el;
    }
    ~ElScope() { model_.el_ = saved_; }
    ElScope(const ElScope&) = delete;
    ElScope& operator=(const ElScope&) = delete;

   private:
    ExceptionModel& model_;
    El saved_;
  };

 private:
  [[nodiscard]] Cycles trace_now() const {
    return trace_clock_ ? trace_clock_() : account_.cycles();
  }

  SysRegs& regs_;
  CycleAccount& account_;
  const TimingModel& timing_;
  Trace& trace_;
  El el_ = El::kEl1;  // machine boots into kernel context in this model
  HypercallHandler hvc_handler_;
  SysregTrapHandler trap_handler_;
  IrqHandler el2_irq_handler_;
  IrqHandler el1_irq_handler_;
  std::function<Cycles()> trace_clock_;
};

}  // namespace hn::sim
