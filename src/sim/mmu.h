// Memory management unit: stage-1 (+ optional stage-2) address translation.
//
// The walker reads real descriptors out of simulated physical memory,
// through the data cache, charging cycles per step.  When stage 2 is
// enabled (the KVM-guest configuration), every stage-1 descriptor fetch is
// itself stage-2 translated and the final output IPA is translated too —
// up to 4 + 4*5 = 24 descriptor fetches per TLB miss, the architectural
// blow-up that motivates the whole paper (§1, §3).
#pragma once

#include "common/timing.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/cycle_account.h"
#include "sim/pagetable.h"
#include "sim/phys_mem.h"
#include "sim/tlb.h"

namespace hn::sim {

struct AccessType {
  bool is_write = false;
  bool is_exec = false;
  bool is_user = false;  // EL0 access (vs EL1 kernel access)
};

enum class FaultType : u8 {
  kTranslation,    // stage-1 descriptor invalid
  kPermission,     // stage-1 permission (RO page, user bit, XN)
  kS2Translation,  // stage-2 descriptor invalid (unmapped IPA)
  kS2Permission,   // stage-2 permission (write-protected IPA)
};

struct Fault {
  FaultType type = FaultType::kTranslation;
  unsigned level = 0;
  VirtAddr va = 0;
  IpaAddr ipa = 0;     // faulting IPA for stage-2 faults
  bool is_write = false;
};

struct Translation {
  PhysAddr pa = 0;
  PageAttrs attrs;
  bool s2_write_ok = true;
};

struct TranslateOutcome {
  bool ok = false;
  Translation t;
  Fault fault;

  static TranslateOutcome success(const Translation& t) {
    TranslateOutcome o;
    o.ok = true;
    o.t = t;
    return o;
  }
  static TranslateOutcome fail(const Fault& f) {
    TranslateOutcome o;
    o.fault = f;
    return o;
  }
};

/// Translation regime inputs (a snapshot of the relevant system registers).
struct WalkContext {
  PhysAddr ttbr0 = 0;  // user-half stage-1 root
  PhysAddr ttbr1 = 0;  // kernel-half stage-1 root
  u16 asid = 0;
  bool stage2_enabled = false;
  PhysAddr vttbr = 0;  // stage-2 root
};

class Mmu {
 public:
  Mmu(PhysicalMemory& mem, CycleAccount& account, const TimingModel& timing,
      obs::Registry& obs, unsigned tlb_entries = 256);

  /// Translate `va` for the given access, consulting the TLB first.
  /// On success the mapping is cached in the TLB.  On a stage-2 write-
  /// permission fault the (read-valid) mapping is still cached so that
  /// subsequent writes fault without re-walking, like real hardware.
  TranslateOutcome translate(VirtAddr va, const AccessType& access,
                             const WalkContext& ctx);

  /// Stage-2-only translation of an IPA (used for the final output and for
  /// nested descriptor fetches; exposed for tests and the KVM module).
  TranslateOutcome translate_ipa(IpaAddr ipa, bool is_write,
                                 const WalkContext& ctx);

  Tlb& tlb() { return tlb_; }
  [[nodiscard]] const Tlb& tlb() const { return tlb_; }

  /// Stage-1 permission check against decoded attributes.  Public so the
  /// machine's inline translation cache replays the exact hit-path check.
  static bool permission_ok(const PageAttrs& attrs, const AccessType& access);

  /// Book an inline-translation-cache hit exactly like a TLB hit: the ITC
  /// (sim/machine.h) only ever serves accesses that would have hit the
  /// TLB, so the ledger must not distinguish the two.
  void note_itc_hit() {
    ++account_.counters().tlb_hits;
    obs_tlb_hits_.add();
  }

 private:
  /// Fetch one descriptor (cacheable access + fixed walk-step overhead).
  u64 fetch_descriptor(PhysAddr pa, bool stage2);

  TranslateOutcome walk_stage1(VirtAddr va, const AccessType& access,
                               const WalkContext& ctx);

  PhysicalMemory& mem_;
  CycleAccount& account_;
  const TimingModel& timing_;
  Tlb tlb_;
  // Observability handles (obs/metrics.h; inert unless enabled).
  obs::Counter obs_tlb_hits_;
  obs::Counter obs_tlb_misses_;
  obs::Counter obs_s1_walks_;
  obs::Counter obs_s2_walks_;
  obs::Counter obs_s1_fetches_;
  obs::Counter obs_s2_fetches_;
  obs::Histogram obs_walk_level_;
  obs::Histogram obs_walk_cycles_;
};

}  // namespace hn::sim
