#include "sim/cache.h"

#include <cassert>

#include "common/bitops.h"

namespace hn::sim {

Cache::Cache(const CacheConfig& config, PhysicalMemory& mem, MemoryBus& bus,
             CycleAccount& account, const TimingModel& timing)
    : config_(config),
      mem_(mem),
      bus_(bus),
      account_(account),
      timing_(timing) {
  assert(config_.ways >= 1);
  const u64 total_lines = config_.size_bytes / kCacheLineSize;
  assert(total_lines % config_.ways == 0);
  num_sets_ = total_lines / config_.ways;
  assert(is_pow2(num_sets_));
  lines_.resize(total_lines);
  victim_.resize(num_sets_, 0);
}

Cache::Line* Cache::find_line(PhysAddr pa) {
  const PhysAddr base = pa & ~(kCacheLineSize - 1);
  const u64 set = set_index(pa);
  for (unsigned w = 0; w < config_.ways; ++w) {
    Line& line = lines_[set * config_.ways + w];
    if (line.valid && line.base == base) return &line;
  }
  return nullptr;
}

const Cache::Line* Cache::find_line(PhysAddr pa) const {
  return const_cast<Cache*>(this)->find_line(pa);
}

void Cache::writeback(const Line& line) {
  BusTransaction txn;
  txn.op = BusOp::kWriteLine;
  txn.paddr = line.base;
  txn.core = core_id_;
  txn.timestamp = account_.cycles();
  if (bus_clock_ != nullptr) {
    if (txn.timestamp < *bus_clock_) txn.timestamp = *bus_clock_;
    *bus_clock_ = txn.timestamp;
  }
  mem_.read_block(line.base, txn.line.data(), kCacheLineSize);
  bus_.issue(txn);
  account_.charge(timing_.dirty_writeback);
  ++account_.counters().dirty_writebacks;
}

void Cache::evict(Line& line) {
  if (line.valid && line.dirty) writeback(line);
  line.valid = false;
  line.dirty = false;
}

void Cache::access(PhysAddr pa, bool is_write) {
  assert(config_.enabled);
  Line* line = find_line(pa);
  if (line != nullptr) {
    account_.charge(timing_.l1_hit);
    ++account_.counters().l1_hits;
    if (is_write) line->dirty = true;
    return;
  }

  // Miss: pick a victim (round-robin), evict, fill via the bus.
  ++account_.counters().l1_misses;
  const u64 set = set_index(pa);
  unsigned way = victim_[set];
  victim_[set] = (way + 1) % config_.ways;
  // Prefer an invalid way if one exists.
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (!lines_[set * config_.ways + w].valid) {
      way = w;
      break;
    }
  }
  Line& victim = lines_[set * config_.ways + way];
  evict(victim);

  BusTransaction fill;
  fill.op = BusOp::kReadLine;
  fill.paddr = pa & ~(kCacheLineSize - 1);
  fill.timestamp = account_.cycles();
  bus_.issue(fill);
  account_.charge(timing_.l1_miss_fill);

  victim.valid = true;
  victim.dirty = is_write;
  victim.base = pa & ~(kCacheLineSize - 1);
}

void Cache::write_alloc_line(PhysAddr pa) {
  assert(config_.enabled);
  Line* line = find_line(pa);
  if (line != nullptr) {
    account_.charge(timing_.l1_hit);
    ++account_.counters().l1_hits;
    line->dirty = true;
    return;
  }
  ++account_.counters().l1_stream_allocs;
  const u64 set = set_index(pa);
  unsigned way = victim_[set];
  victim_[set] = (way + 1) % config_.ways;
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (!lines_[set * config_.ways + w].valid) {
      way = w;
      break;
    }
  }
  Line& victim = lines_[set * config_.ways + way];
  evict(victim);
  account_.charge(timing_.write_stream_alloc);
  victim.valid = true;
  victim.dirty = true;
  victim.base = pa & ~(kCacheLineSize - 1);
}

void Cache::flush_line(PhysAddr pa) {
  Line* line = find_line(pa);
  if (line != nullptr) evict(*line);
}

void Cache::flush_range(PhysAddr pa, u64 len) {
  const PhysAddr first = pa & ~(kCacheLineSize - 1);
  const PhysAddr last = (pa + len - 1) & ~(kCacheLineSize - 1);
  for (PhysAddr p = first; p <= last; p += kCacheLineSize) flush_line(p);
}

void Cache::flush_all() {
  for (Line& line : lines_) evict(line);
}

bool Cache::contains_line(PhysAddr pa) const {
  return find_line(pa) != nullptr;
}

bool Cache::line_dirty(PhysAddr pa) const {
  const Line* line = find_line(pa);
  return line != nullptr && line->dirty;
}

}  // namespace hn::sim
