// IOMMU (ARM System MMU analogue) for DMA-capable devices.
//
// The paper's §8 notes that Hypernel must thwart DMA tampering with the
// secure space and that prior work does so "by leveraging IOMMU"; it also
// expects the MBM to see DMA traffic since it watches the bus.  This
// module makes both concrete: every device transaction passes an
// allow/deny check here before reaching memory, and permitted traffic is
// issued on the memory bus where the MBM snoops it.
#pragma once

#include <vector>

#include "common/types.h"

namespace hn::sim {

/// Per-stream (device) translation policy.  This model uses identity
/// mapping with window filtering: a device may touch only its configured
/// windows.  An unconfigured IOMMU (bypass mode) lets everything through —
/// the dangerous default the paper warns about.
class Iommu {
 public:
  struct Window {
    PhysAddr base = 0;
    u64 size = 0;
    bool allow_write = true;
  };

  /// Bypass mode: no translation/filtering (power-on default).
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void allow(u32 stream_id, const Window& window) {
    windows_.push_back({stream_id, window});
  }
  void clear(u32 stream_id) {
    std::erase_if(windows_,
                  [stream_id](const Entry& e) { return e.stream == stream_id; });
  }

  /// Check a device access.  In bypass mode everything is permitted.
  [[nodiscard]] bool check(u32 stream_id, PhysAddr pa, u64 len,
                           bool is_write) const {
    if (!enabled_) return true;
    for (const Entry& e : windows_) {
      if (e.stream != stream_id) continue;
      if (pa >= e.window.base && pa + len <= e.window.base + e.window.size &&
          (!is_write || e.window.allow_write)) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] u64 faults() const { return faults_; }
  void count_fault() const { ++faults_; }

 private:
  struct Entry {
    u32 stream;
    Window window;
  };
  bool enabled_ = false;
  std::vector<Entry> windows_;
  mutable u64 faults_ = 0;
};

}  // namespace hn::sim
