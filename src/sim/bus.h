// The system memory bus between the CPU's cache hierarchy and DRAM.
//
// This is the interposition point of the Memory Bus Monitor (§5.3, Fig. 5):
// MBM's bus traffic snooper registers here as a BusSnooper.  Only traffic
// that actually reaches the bus is observable — a write absorbed by a
// write-back cache produces no WriteWord transaction until (and unless) its
// dirty line is evicted, at which point only the *final* line contents are
// visible as one WriteLine.  This is precisely why Hypersec maps monitored
// regions non-cacheable (§5.3), and the tests exercise both sides of that
// trade-off.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"
#include "sim/trace.h"

namespace hn::sim {

enum class BusOp : u8 {
  kReadWord,    // non-cacheable word read
  kWriteWord,   // non-cacheable word write: exact address + value visible
  kReadLine,    // cache line fill
  kWriteLine,   // dirty line write-back: final line contents visible
};

struct BusTransaction {
  BusOp op = BusOp::kReadWord;
  PhysAddr paddr = 0;  // word address for word ops, line-aligned for line ops
  u64 value = 0;       // word ops only
  std::array<u8, kCacheLineSize> line{};  // kWriteLine only
  Cycles timestamp = 0;                   // CPU cycle count at issue
  /// Flight-recorder provenance: sequence id of the kBusWrite trace event
  /// the issuer stamped for this transaction (kNoCause when tracing is
  /// off or the op records no event).  Snoopers link their own events to
  /// it so offline tools can walk write → detection chains.
  u64 trace_seq = kNoCause;
  /// Issuing core (SMP provenance).  Always 0 on a single-core machine,
  /// so snoopers and digests built before SMP see unchanged values.
  u8 core = 0;
};

/// Interface for passive bus observers (the MBM snooper).
class BusSnooper {
 public:
  virtual ~BusSnooper() = default;
  virtual void on_transaction(const BusTransaction& txn) = 0;
};

class MemoryBus {
 public:
  /// Register a passive observer.  The bus does not own snoopers; callers
  /// guarantee snooper lifetime exceeds bus use (the Machine composition
  /// root enforces this by construction order).
  void attach_snooper(BusSnooper* snooper) { snoopers_.push_back(snooper); }
  void detach_snooper(BusSnooper* snooper) {
    std::erase(snoopers_, snooper);
  }

  void issue(const BusTransaction& txn) {
    ++txn_count_;
    for (BusSnooper* s : snoopers_) s->on_transaction(txn);
  }

  [[nodiscard]] u64 transaction_count() const { return txn_count_; }

  /// Snapshot support: the transaction count is the bus's only
  /// architectural state (snoopers are wiring).
  void restore_transaction_count(u64 n) { txn_count_ = n; }

 private:
  std::vector<BusSnooper*> snoopers_;
  u64 txn_count_ = 0;
};

}  // namespace hn::sim
