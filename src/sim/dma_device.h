// A DMA-capable bus-master device.
//
// Unlike the CPU, a device bypasses the MMU and caches entirely — but its
// traffic is real bus traffic: every transfer appears on the memory bus
// word by word, where the MBM snoops it (the §8 observation that the MBM
// "can watch the bus traffic between the CPU and main memory" and could
// therefore detect DMA attacks).  Transfers are policed by the IOMMU.
#pragma once

#include <cstring>

#include "common/types.h"
#include "sim/bus.h"
#include "sim/iommu.h"
#include "sim/machine.h"

namespace hn::sim {

class DmaDevice {
 public:
  DmaDevice(Machine& machine, Iommu& iommu, u32 stream_id)
      : machine_(machine), iommu_(iommu), stream_id_(stream_id) {}

  [[nodiscard]] u32 stream_id() const { return stream_id_; }

  /// DMA write of `len` bytes (word multiple, word aligned).  Returns
  /// false on an IOMMU fault (transfer aborted, memory untouched).
  bool write(PhysAddr pa, const void* data, u64 len) {
    if (!iommu_.check(stream_id_, pa, len, /*is_write=*/true)) {
      iommu_.count_fault();
      return false;
    }
    const auto* p = static_cast<const u8*>(data);
    for (u64 off = 0; off < len; off += kWordSize) {
      u64 v;
      std::memcpy(&v, p + off, kWordSize);
      // Coherent write: lands in memory and on the bus (MBM-visible).
      machine_.cache().flush_line(pa + off);
      machine_.phys().write64(pa + off, v);
      BusTransaction txn;
      txn.op = BusOp::kWriteWord;
      txn.paddr = pa + off;
      txn.value = v;
      // The transfer attributes to the core that programmed the device.
      txn.core = static_cast<u8>(machine_.active_core());
      // Arbitrated shared-bus arrival time, like CPU stores: a device is
      // just another bus master, and the MBM's FIFO requires bus-order
      // (monotonic) timestamps on SMP machines.
      txn.timestamp = machine_.bus_timestamp();
      // Provenance-stamped like CPU stores, so a detection triggered by
      // device traffic attributes back to this transfer instead of
      // dangling as an unattributed verdict.
      txn.trace_seq = machine_.trace().record(
          txn.timestamp, TraceKind::kBusWrite, txn.paddr, v);
      machine_.bus().issue(txn);
      ++words_written_;
    }
    return true;
  }

  bool write64(PhysAddr pa, u64 value) { return write(pa, &value, 8); }

  /// DMA read (no MBM relevance — the snooper captures writes — but still
  /// IOMMU policed).
  bool read(PhysAddr pa, void* out, u64 len) {
    if (!iommu_.check(stream_id_, pa, len, /*is_write=*/false)) {
      iommu_.count_fault();
      return false;
    }
    machine_.dma_read_block(pa, out, len);
    return true;
  }

  [[nodiscard]] u64 words_written() const { return words_written_; }

 private:
  Machine& machine_;
  Iommu& iommu_;
  u32 stream_id_;
  u64 words_written_ = 0;
};

}  // namespace hn::sim
