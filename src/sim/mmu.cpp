#include "sim/mmu.h"

#include <cassert>

namespace hn::sim {

Mmu::Mmu(PhysicalMemory& mem, CycleAccount& account, const TimingModel& timing,
         obs::Registry& obs, unsigned tlb_entries)
    : mem_(mem), account_(account), timing_(timing), tlb_(tlb_entries) {
  obs_tlb_hits_ = obs.counter("sim.tlb.hits");
  obs_tlb_misses_ = obs.counter("sim.tlb.misses");
  obs_s1_walks_ = obs.counter("sim.mmu.s1_walks");
  obs_s2_walks_ = obs.counter("sim.mmu.s2_walks");
  obs_s1_fetches_ = obs.counter("sim.mmu.s1_fetches");
  obs_s2_fetches_ = obs.counter("sim.mmu.s2_fetches");
  obs_walk_level_ = obs.histogram("sim.mmu.walk_leaf_level");
  obs_walk_cycles_ = obs.histogram("sim.mmu.walk_cycles");
}

u64 Mmu::fetch_descriptor(PhysAddr pa, bool stage2) {
  // Descriptor fetches hit the walk caches / L2 on the modelled core, so
  // they carry a flat cost instead of going through the L1 model (which
  // bulk data streams would otherwise thrash unrealistically).
  account_.charge(timing_.pt_fetch);
  if (stage2) {
    ++account_.counters().s2_descriptor_fetches;
    obs_s2_fetches_.add();
  } else {
    ++account_.counters().pt_descriptor_fetches;
    obs_s1_fetches_.add();
  }
  return mem_.read64(pa);
}

bool Mmu::permission_ok(const PageAttrs& attrs, const AccessType& access) {
  if (access.is_user && !attrs.user) return false;
  if (access.is_write && !attrs.write) return false;
  if (access.is_exec && !attrs.exec) return false;
  return true;
}

TranslateOutcome Mmu::translate_ipa(IpaAddr ipa, bool is_write,
                                    const WalkContext& ctx) {
  assert(ctx.stage2_enabled);
  obs_s2_walks_.add();
  PhysAddr table = ctx.vttbr;
  for (unsigned level = 0; level <= 3; ++level) {
    const PhysAddr desc_pa = table + va_index(ipa, level) * 8;
    const u64 desc = fetch_descriptor(desc_pa, /*stage2=*/true);
    if (!desc_valid(desc)) {
      ++account_.counters().s2_translation_faults;
      return TranslateOutcome::fail(
          Fault{FaultType::kS2Translation, level, 0, ipa, is_write});
    }
    if (desc_is_table(desc, level)) {
      table = desc_out_addr(desc);
      continue;
    }
    if (level != 3) {
      // Stage-2 tables in this model are always mapped at 4 KiB granularity
      // (KVM's write-protection needs page granularity anyway).
      ++account_.counters().s2_translation_faults;
      return TranslateOutcome::fail(
          Fault{FaultType::kS2Translation, level, 0, ipa, is_write});
    }
    const S2Attrs s2 = decode_s2_attrs(desc);
    if (!s2.read || (is_write && !s2.write)) {
      ++account_.counters().s2_permission_faults;
      return TranslateOutcome::fail(
          Fault{FaultType::kS2Permission, level, 0, ipa, is_write});
    }
    Translation t;
    t.pa = desc_out_addr(desc) + (ipa & kPageMask);
    t.s2_write_ok = s2.write;
    return TranslateOutcome::success(t);
  }
  ++account_.counters().s2_translation_faults;
  return TranslateOutcome::fail(
      Fault{FaultType::kS2Translation, 3, 0, ipa, is_write});
}

TranslateOutcome Mmu::walk_stage1(VirtAddr va, const AccessType& access,
                                  const WalkContext& ctx) {
  PhysAddr table = (va >= kKernelVaBase) ? ctx.ttbr1 : ctx.ttbr0;
  if (table == 0) {
    return TranslateOutcome::fail(
        Fault{FaultType::kTranslation, 0, va, 0, access.is_write});
  }
  for (unsigned level = 0; level <= 3; ++level) {
    IpaAddr desc_ipa = table + va_index(va, level) * 8;
    PhysAddr desc_pa = desc_ipa;
    if (ctx.stage2_enabled) {
      // Nested fetch: the stage-1 descriptor address is an IPA.
      TranslateOutcome nested = translate_ipa(desc_ipa, /*is_write=*/false, ctx);
      if (!nested.ok) {
        nested.fault.va = va;
        return nested;
      }
      desc_pa = nested.t.pa;
    }
    const u64 desc = fetch_descriptor(desc_pa, /*stage2=*/false);
    if (!desc_valid(desc)) {
      return TranslateOutcome::fail(
          Fault{FaultType::kTranslation, level, va, 0, access.is_write});
    }
    if (desc_is_table(desc, level)) {
      table = desc_out_addr(desc);
      continue;
    }

    const bool is_block = desc_is_block(desc, level);
    const bool is_page = (level == 3) && bit(desc, kDescTable);
    if (!is_block && !is_page) {
      return TranslateOutcome::fail(
          Fault{FaultType::kTranslation, level, va, 0, access.is_write});
    }

    const PageAttrs attrs = decode_attrs(desc);
    const u64 span = level_span(level);
    const IpaAddr out_ipa = desc_out_addr(desc) + (va & (span - 1));

    Translation t;
    t.attrs = attrs;
    t.pa = out_ipa;
    if (ctx.stage2_enabled) {
      TranslateOutcome final =
          translate_ipa(out_ipa, access.is_write, ctx);
      if (!final.ok) {
        final.fault.va = va;
        if (final.fault.type == FaultType::kS2Permission && !access.is_write) {
          return final;  // read blocked by stage 2: nothing to cache
        }
        if (final.fault.type == FaultType::kS2Permission && access.is_write) {
          // Read mapping is valid; cache it so subsequent writes fault
          // straight from the TLB (hardware-faithful and what makes
          // page-granularity monitoring trap on *every* write).
          TranslateOutcome readable =
              translate_ipa(out_ipa, /*is_write=*/false, ctx);
          if (readable.ok && permission_ok(attrs, AccessType{})) {
            TlbEntry e;
            e.vpage = page_align_down(va);
            e.asid = ctx.asid;
            e.ppage = page_align_down(readable.t.pa);
            e.attrs = attrs;
            e.s2_write_ok = false;
            tlb_.insert(e);
          }
        }
        return final;
      }
      t.pa = final.t.pa;
      t.s2_write_ok = final.t.s2_write_ok;
    }

    if (!permission_ok(attrs, access)) {
      return TranslateOutcome::fail(
          Fault{FaultType::kPermission, level, va, out_ipa, access.is_write});
    }

    TlbEntry e;
    e.vpage = page_align_down(va);
    e.asid = ctx.asid;
    e.ppage = page_align_down(t.pa);
    e.attrs = attrs;
    e.s2_write_ok = t.s2_write_ok;
    tlb_.insert(e);
    obs_walk_level_.record(level);
    return TranslateOutcome::success(t);
  }
  return TranslateOutcome::fail(
      Fault{FaultType::kTranslation, 3, va, 0, access.is_write});
}

TranslateOutcome Mmu::translate(VirtAddr va, const AccessType& access,
                                const WalkContext& ctx) {
  if (const TlbEntry* e = tlb_.lookup(va, ctx.asid)) {
    ++account_.counters().tlb_hits;
    obs_tlb_hits_.add();
    if (!permission_ok(e->attrs, access)) {
      return TranslateOutcome::fail(
          Fault{FaultType::kPermission, 3, va, 0, access.is_write});
    }
    if (access.is_write && !e->s2_write_ok) {
      ++account_.counters().s2_permission_faults;
      const IpaAddr ipa = e->ppage + (va & kPageMask);  // IPA==PA-keyed model
      return TranslateOutcome::fail(
          Fault{FaultType::kS2Permission, 3, va, ipa, true});
    }
    Translation t;
    t.pa = e->ppage + (va & kPageMask);
    t.attrs = e->attrs;
    t.s2_write_ok = e->s2_write_ok;
    return TranslateOutcome::success(t);
  }
  ++account_.counters().tlb_misses;
  obs_tlb_misses_.add();
  obs_s1_walks_.add();
  if (obs_walk_cycles_.active()) {
    const Cycles before = account_.cycles();
    TranslateOutcome out = walk_stage1(va, access, ctx);
    obs_walk_cycles_.record_cycles(account_.cycles() - before);
    return out;
  }
  // Observability off: don't touch the clock just to feed a disabled
  // histogram (reading it also synchronizes the decoupled local time).
  return walk_stage1(va, access, ctx);
}

}  // namespace hn::sim
