// Translation lookaside buffer.
//
// Fully associative, round-robin replacement, caching *combined* stage-1
// (+stage-2) results like a real ARM TLB: an entry carries final PA, the
// stage-1 attributes, and whether stage 2 permits writes — so a write to a
// stage-2 write-protected page faults even on a TLB hit, which is exactly
// how KVM's page-granularity write-protection keeps trapping (Table 2's
// baseline behaviour).
#pragma once

#include <vector>

#include "common/types.h"
#include "sim/pagetable.h"

namespace hn::sim {

struct TlbEntry {
  bool valid = false;
  VirtAddr vpage = 0;  // page-aligned VA
  u16 asid = 0;        // ignored when global
  PhysAddr ppage = 0;  // page-aligned PA
  PageAttrs attrs;
  bool s2_write_ok = true;  // stage-2 write permission (true when no stage 2)
};

class Tlb {
 public:
  explicit Tlb(unsigned entries = 48) : entries_(entries) {}

  /// Returns the matching entry or nullptr.
  const TlbEntry* lookup(VirtAddr va, u16 asid) const {
    const VirtAddr vpage = page_align_down(va);
    for (const TlbEntry& e : entries_) {
      if (e.valid && e.vpage == vpage && (e.attrs.global || e.asid == asid)) {
        return &e;
      }
    }
    return nullptr;
  }

  void insert(const TlbEntry& entry) {
    // Replace an existing mapping for the same page first.
    for (TlbEntry& e : entries_) {
      if (e.valid && e.vpage == entry.vpage &&
          (e.attrs.global || e.asid == entry.asid)) {
        e = entry;
        e.valid = true;
        return;
      }
    }
    for (TlbEntry& e : entries_) {
      if (!e.valid) {
        e = entry;
        e.valid = true;
        return;
      }
    }
    entries_[next_victim_] = entry;
    entries_[next_victim_].valid = true;
    next_victim_ = (next_victim_ + 1) % entries_.size();
  }

  void flush_all() {
    for (TlbEntry& e : entries_) e.valid = false;
  }

  /// TLBI VAE1-style: drop any entry translating `va` (any ASID).
  void flush_va(VirtAddr va) {
    const VirtAddr vpage = page_align_down(va);
    for (TlbEntry& e : entries_) {
      if (e.valid && e.vpage == vpage) e.valid = false;
    }
  }

  /// TLBI ASIDE1-style: drop all non-global entries for `asid`.
  void flush_asid(u16 asid) {
    for (TlbEntry& e : entries_) {
      if (e.valid && !e.attrs.global && e.asid == asid) e.valid = false;
    }
  }

  [[nodiscard]] unsigned capacity() const {
    return static_cast<unsigned>(entries_.size());
  }
  [[nodiscard]] unsigned occupancy() const {
    unsigned n = 0;
    for (const TlbEntry& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }

 private:
  std::vector<TlbEntry> entries_;
  u64 next_victim_ = 0;
};

}  // namespace hn::sim
