// Translation lookaside buffer.
//
// Fully associative, round-robin replacement, caching *combined* stage-1
// (+stage-2) results like a real ARM TLB: an entry carries final PA, the
// stage-1 attributes, and whether stage 2 permits writes — so a write to a
// stage-2 write-protected page faults even on a TLB hit, which is exactly
// how KVM's page-granularity write-protection keeps trapping (Table 2's
// baseline behaviour).
//
// Host-side representation: lookups go through a vpage hash index instead
// of scanning the whole array, so a hit costs O(1) host work regardless of
// capacity.  The index is an invisible acceleration structure — hit/miss
// results, replacement order and flush behaviour are bit-identical to the
// naive full scan (the tlb_property_test pins this against a reference
// implementation).  Three invariants keep it exact:
//
//   * per-vpage chains are sorted by slot index, so "first match in array
//     order" among same-vpage entries is preserved;
//   * free slots are taken lowest-index-first (a bitmap find-first-set),
//     matching the scan's "first invalid entry" choice;
//   * round-robin eviction is untouched: the victim cursor advances over
//     slot numbers exactly as before.
#pragma once

#include <bit>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/pagetable.h"
#include "sim/snapshot.h"

namespace hn::sim {

struct TlbEntry {
  bool valid = false;
  VirtAddr vpage = 0;  // page-aligned VA
  u16 asid = 0;        // ignored when global
  PhysAddr ppage = 0;  // page-aligned PA
  PageAttrs attrs;
  bool s2_write_ok = true;  // stage-2 write permission (true when no stage 2)
};

class Tlb {
 public:
  explicit Tlb(unsigned entries = 48)
      : entries_(entries),
        chain_next_(entries, kNil),
        free_((entries + 63) / 64, ~0ull) {
    // Mask off bits beyond capacity so find-first-free never returns an
    // out-of-range slot.
    const unsigned tail = entries % 64;
    if (tail != 0) free_.back() = (u64{1} << tail) - 1;
    index_.reserve(entries * 2);
  }

  /// Returns the matching entry or nullptr.
  const TlbEntry* lookup(VirtAddr va, u16 asid) const {
    const VirtAddr vpage = page_align_down(va);
    if (!index_enabled_) {
      // Reference mode: the original fully-associative scan.
      for (const TlbEntry& e : entries_) {
        if (e.valid && e.vpage == vpage && (e.attrs.global || e.asid == asid)) {
          return &e;
        }
      }
      return nullptr;
    }
    const auto it = index_.find(vpage);
    if (it == index_.end()) return nullptr;
    for (u32 slot = it->second; slot != kNil; slot = chain_next_[slot]) {
      const TlbEntry& e = entries_[slot];
      if (e.attrs.global || e.asid == asid) return &e;
    }
    return nullptr;
  }

  void insert(const TlbEntry& entry) {
    ++generation_;
    // Replace an existing mapping for the same page first.  The index is
    // maintained even in reference mode (so the mode can flip at runtime);
    // only the *search* above changes, and both searches visit same-vpage
    // slots in ascending array order, so the replaced slot is identical.
    const auto it = index_.find(entry.vpage);
    if (it != index_.end()) {
      for (u32 slot = it->second; slot != kNil; slot = chain_next_[slot]) {
        TlbEntry& e = entries_[slot];
        if (e.attrs.global || e.asid == entry.asid) {
          e = entry;
          e.valid = true;
          return;
        }
      }
    }
    const u32 slot = first_free_slot();
    if (slot != kNil) {
      place(slot, entry);
      return;
    }
    const u32 victim = static_cast<u32>(next_victim_);
    unlink(entries_[victim].vpage, victim);
    place(victim, entry);
    next_victim_ = (next_victim_ + 1) % entries_.size();
  }

  void flush_all() {
    ++generation_;
    for (TlbEntry& e : entries_) e.valid = false;
    index_.clear();
    for (u64& w : free_) w = ~0ull;
    const unsigned tail = entries_.size() % 64;
    if (tail != 0) free_.back() = (u64{1} << tail) - 1;
  }

  /// TLBI VAE1-style: drop any entry translating `va` (any ASID).
  void flush_va(VirtAddr va) {
    ++generation_;
    const VirtAddr vpage = page_align_down(va);
    const auto it = index_.find(vpage);
    if (it == index_.end()) return;
    for (u32 slot = it->second; slot != kNil;) {
      const u32 next = chain_next_[slot];
      entries_[slot].valid = false;
      mark_free(slot);
      slot = next;
    }
    index_.erase(it);
  }

  /// TLBI ASIDE1-style: drop all non-global entries for `asid`.
  void flush_asid(u16 asid) {
    ++generation_;
    for (u32 slot = 0; slot < entries_.size(); ++slot) {
      TlbEntry& e = entries_[slot];
      if (e.valid && !e.attrs.global && e.asid == asid) {
        e.valid = false;
        unlink(e.vpage, slot);
        mark_free(slot);
      }
    }
  }

  [[nodiscard]] unsigned capacity() const {
    return static_cast<unsigned>(entries_.size());
  }
  [[nodiscard]] unsigned occupancy() const {
    unsigned n = 0;
    for (const TlbEntry& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }

  /// Bumped by every mutation (insert / flush).  The machine's bulk
  /// charge-replay path snapshots this to detect a snooper or interrupt
  /// handler disturbing translation state mid-transfer.
  [[nodiscard]] u64 generation() const { return generation_; }

  /// Host fast path switch: off = reference mode, lookups scan the array
  /// like the original implementation.  Hit/miss results are identical
  /// either way; only host wall-clock changes.
  void set_index_enabled(bool on) { index_enabled_ = on; }
  [[nodiscard]] bool index_enabled() const { return index_enabled_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // Only the authoritative state (entry array, victim cursor, generation)
  // is serialized; the lookup index, chains and free bitmap are derived
  // host-side structures and are rebuilt on restore.

  void save_state(SnapWriter& w) const {
    w.put_u64(entries_.size());
    for (const TlbEntry& e : entries_) {
      w.put_bool(e.valid);
      w.put_u64(e.vpage);
      w.put_u16(e.asid);
      w.put_u64(e.ppage);
      w.put_bool(e.attrs.write);
      w.put_bool(e.attrs.exec);
      w.put_bool(e.attrs.user);
      w.put_bool(e.attrs.global);
      w.put_u8(static_cast<u8>(e.attrs.attr));
      w.put_bool(e.s2_write_ok);
    }
    w.put_u64(next_victim_);
    w.put_u64(generation_);
  }

  void restore_state(SnapReader& r) {
    r.section("tlb");
    const u64 n = r.get_u64();
    if (r.ok() && n != entries_.size()) {
      r.fail("entry count " + std::to_string(n) +
             " does not match configured capacity " +
             std::to_string(entries_.size()));
      return;
    }
    for (TlbEntry& e : entries_) {
      e.valid = r.get_bool();
      e.vpage = r.get_u64();
      e.asid = r.get_u16();
      e.ppage = r.get_u64();
      e.attrs.write = r.get_bool();
      e.attrs.exec = r.get_bool();
      e.attrs.user = r.get_bool();
      e.attrs.global = r.get_bool();
      e.attrs.attr = static_cast<MemAttr>(r.get_u8());
      e.s2_write_ok = r.get_bool();
    }
    next_victim_ = r.get_u64();
    generation_ = r.get_u64();
    if (r.ok()) rebuild_derived();
  }

 private:
  static constexpr u32 kNil = ~u32{0};

  /// Lowest-index free slot, or kNil when the TLB is full.
  [[nodiscard]] u32 first_free_slot() const {
    for (size_t w = 0; w < free_.size(); ++w) {
      if (free_[w] != 0) {
        return static_cast<u32>(w * 64 + std::countr_zero(free_[w]));
      }
    }
    return kNil;
  }

  void mark_free(u32 slot) { free_[slot / 64] |= u64{1} << (slot % 64); }
  void mark_used(u32 slot) { free_[slot / 64] &= ~(u64{1} << (slot % 64)); }

  /// Fill `slot` with `entry` and link it into its vpage chain, keeping
  /// the chain sorted by slot index (array-order equivalence).
  void place(u32 slot, const TlbEntry& entry) {
    entries_[slot] = entry;
    entries_[slot].valid = true;
    mark_used(slot);
    u32& head = index_.try_emplace(entry.vpage, kNil).first->second;
    if (head == kNil || head > slot) {
      chain_next_[slot] = head;
      head = slot;
      return;
    }
    u32 prev = head;
    while (chain_next_[prev] != kNil && chain_next_[prev] < slot) {
      prev = chain_next_[prev];
    }
    chain_next_[slot] = chain_next_[prev];
    chain_next_[prev] = slot;
  }

  /// Rebuild the lookup index, chains and free bitmap from the entry
  /// array after a restore.  Ascending slot order appends each valid slot
  /// at its chain's tail, reproducing the sorted-chain invariant place()
  /// maintains incrementally.
  void rebuild_derived() {
    index_.clear();
    for (u32& next : chain_next_) next = kNil;
    for (u64& word : free_) word = ~0ull;
    const unsigned tail = entries_.size() % 64;
    if (tail != 0) free_.back() = (u64{1} << tail) - 1;
    for (u32 slot = 0; slot < entries_.size(); ++slot) {
      if (!entries_[slot].valid) continue;
      mark_used(slot);
      u32& head = index_.try_emplace(entries_[slot].vpage, kNil).first->second;
      if (head == kNil) {
        head = slot;
        continue;
      }
      u32 prev = head;
      while (chain_next_[prev] != kNil) prev = chain_next_[prev];
      chain_next_[prev] = slot;
    }
  }

  /// Remove `slot` from the chain of `vpage`.
  void unlink(VirtAddr vpage, u32 slot) {
    const auto it = index_.find(vpage);
    u32& head = it->second;
    if (head == slot) {
      head = chain_next_[slot];
      if (head == kNil) index_.erase(it);
      return;
    }
    u32 prev = head;
    while (chain_next_[prev] != slot) prev = chain_next_[prev];
    chain_next_[prev] = chain_next_[slot];
  }

  std::vector<TlbEntry> entries_;
  /// vpage -> lowest slot holding a valid entry for it; entries with the
  /// same vpage chain through chain_next_ in ascending slot order.
  std::unordered_map<VirtAddr, u32> index_;
  std::vector<u32> chain_next_;
  std::vector<u64> free_;  // bit set = slot invalid/free
  u64 next_victim_ = 0;
  u64 generation_ = 0;
  bool index_enabled_ = true;
};

}  // namespace hn::sim
