// The simulated machine: composition root wiring DRAM, bus, cache, MMU,
// system registers, exception model and interrupt controller, and exposing
// the charged memory-access API every higher layer uses.
//
// Software layers (kernel, Hypersec, KVM) run *on behalf of* this machine:
// their accesses to simulated memory translate through real page tables,
// hit the TLB/cache models, charge cycles, and emit bus transactions that
// the MBM can snoop (DESIGN.md §3.1).
//
// SMP (DESIGN.md §15): the machine carries N cores, each a full private
// bundle (TLB + inline translation cache, L1 cache timing model, system
// registers, cycle ledger, exception model, GIC) sharing one DRAM, one
// memory bus and one flight recorder.  Execution is sequential and
// time-multiplexed — exactly one core is *active* at a time, switched by
// the scheduler via set_active_core() — so every run is deterministic by
// construction.  Cross-core timing couples only through the shared-bus
// round-robin arbiter and the monotonic bus clock; with cores == 1 every
// SMP mechanism is bypassed and behaviour is bit-identical to the
// single-core machine.
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "common/timing.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "sim/bus.h"
#include "sim/cache.h"
#include "sim/cycle_account.h"
#include "sim/exception.h"
#include "sim/irq.h"
#include "sim/mmu.h"
#include "sim/phys_mem.h"
#include "sim/snapshot.h"
#include "sim/sysregs.h"
#include "sim/trace.h"

namespace hn::sim {

struct MachineConfig {
  /// Total simulated DRAM.  Defaults to 128 MiB, the LogicTile SDRAM the
  /// Juno prototype ran from (§6).
  u64 dram_size = 128ull * 1024 * 1024;
  /// Secure-space carve-out at the top of DRAM: Hypersec code/data, the
  /// MBM bitmap and the event ring buffer live here (§5.3).
  u64 secure_size = 16ull * 1024 * 1024;
  TimingModel timing;
  CacheConfig cache;
  unsigned tlb_entries = 256;  // A57 L2-TLB reach stand-in
  /// Number of simulated cores (DESIGN.md §15).  1 (the default) is the
  /// exact pre-SMP machine; N > 1 adds per-core state, the shared-bus
  /// arbiter and IPIs.  Deterministic at any value.
  unsigned cores = 1;
  /// Host-side fast path (DESIGN.md §9): cached WalkContext and bulk
  /// charge-replay.  Changes host wall-clock only — simulated cycles,
  /// counters, bus traffic and fingerprints are bit-identical either way
  /// (the fast-path differential test pins this).  Off = reference mode.
  bool host_fast_path = true;
  /// Temporal decoupling (DESIGN.md §14): with a non-zero quantum the
  /// core's cycle charges accumulate on a local clock and commit when the
  /// quantum overflows or the clock is observed (bus timestamps, trace
  /// records, timer reads, snapshot saves all observe it).  Observable
  /// values are bit-identical to quantum = 0; the campaign-digest and
  /// differential tests pin this.  Opt-in; 0 = exact charging.
  Cycles decoupled_quantum = 0;
  /// Time-series sampling interval in simulated cycles (DESIGN.md §16):
  /// non-zero enrolls the built-in per-core and machine tracks and arms
  /// obs::TimeSeries from boot.  0 (the default) disables sampling — the
  /// hot-path cost is a single load + branch.  Host-side observability:
  /// never part of the config digest, never changes simulated state.
  Cycles sample_cycles = 0;
};

/// What an EL2 stage-2 fault handler did with a fault (KVM module).
enum class S2FaultAction : u8 {
  kRetry,      // stage-2 tables fixed; re-translate and re-issue
  kEmulated,   // the handler performed the access itself (WP emulation)
  kUnhandled,  // fault stands; access fails
};

struct Access64 {
  bool ok = false;
  Fault fault;
  u64 value = 0;
};

class Machine {
 public:
  using S2FaultHandler =
      std::function<S2FaultAction(const Fault& fault, bool is_write, u64 value)>;
  using El1FaultHandler = std::function<void(const Fault& fault)>;

  explicit Machine(const MachineConfig& config);

  // --- Component access ----------------------------------------------------
  // Per-core components resolve through the *active* core; shared
  // components (DRAM, bus, trace, observability) are machine-global.
  PhysicalMemory& phys() { return phys_; }
  MemoryBus& bus() { return bus_; }
  Cache& cache() { return cur_->cache; }
  Mmu& mmu() { return cur_->mmu; }
  Tlb& tlb() { return cur_->mmu.tlb(); }
  CycleAccount& account() { return cur_->account; }
  Counters& counters() { return cur_->account.counters(); }
  SysRegs& sysregs() { return cur_->sysregs; }
  ExceptionModel& exceptions() { return cur_->exceptions; }
  Trace& trace() { return trace_; }
  InterruptController& gic() { return cur_->gic; }
  /// Observability (DESIGN.md §10): per-machine metrics registry and span
  /// tracer.  Runtime-disabled by default; tools flip it on for
  /// --metrics-out.  Registration is valid even when disabled.
  obs::Registry& obs() { return obs_; }
  [[nodiscard]] const obs::Registry& obs() const { return obs_; }
  obs::SpanTracer& spans() { return spans_; }
  /// Host self-time profiler (DESIGN.md §14): off by default (one branch
  /// per scope); --profile runs enable it and read the report.
  obs::SelfProfiler& profiler() { return profiler_; }
  /// Deterministic time-series sampler (DESIGN.md §16).  Built-in tracks
  /// enroll at construction; arm_timeseries() starts sampling.
  obs::TimeSeries& timeseries() { return timeseries_; }
  [[nodiscard]] const obs::TimeSeries& timeseries() const {
    return timeseries_;
  }
  /// (Re-)arm sampling every `interval` cycles from the current
  /// bus-order instant.  Drops accumulated samples and re-primes counter
  /// baselines, so arming at the same simulated cycle always reproduces
  /// the same stream — the executor re-arms at op-phase start on both
  /// the fresh-boot and snapshot-boot paths for exactly this reason.
  void arm_timeseries(Cycles interval) {
    timeseries_.arm(interval, bus_order_now());
  }
  [[nodiscard]] const TimingModel& timing() const { return config_.timing; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  // --- SMP core control (DESIGN.md §15) -------------------------------------
  [[nodiscard]] unsigned cores() const {
    return static_cast<unsigned>(cores_.size());
  }
  [[nodiscard]] unsigned active_core() const { return active_core_; }
  /// Per-core cycle ledger / counters (reporting; `core` must be valid).
  [[nodiscard]] const CycleAccount& core_account(unsigned core) const {
    return cores_[core]->account;
  }
  /// Switch the executing core: rebinds the span clock and the trace's
  /// ambient provenance stamp, and delivers any IPI latched for the
  /// target on *its* GIC, so delivery charges and trace events attribute
  /// to the receiving core.  Never called on single-core machines.
  void set_active_core(unsigned core);
  /// Latch an IPI for `target`, charging the send cost to the active
  /// core.  A self-IPI delivers synchronously; a cross-core IPI delivers
  /// when the scheduler next activates the target.
  void post_ipi(unsigned target);
  [[nodiscard]] bool ipi_pending(unsigned core) const {
    return ipi_pending_[core] != 0;
  }
  /// TLBI ...IS analogue: invalidate `va` on the active core and — on
  /// multi-core machines — on every remote core, posting each remote an
  /// IPI (shootdown completion).  Call sites keep charging charge_tlbi()
  /// exactly as before, so single-core charge streams are unchanged.
  void tlb_shootdown_va(VirtAddr va);
  /// Full-TLB variant (break-before-make over a section).
  void tlb_shootdown_all();
  /// Flush [pa, pa+len) from every core's cache: EL2 coherence
  /// maintenance before/after non-cacheable remaps and DMA.
  void cache_flush_range_all(PhysAddr pa, u64 len) {
    for (auto& c : cores_) c->cache.flush_range(pa, len);
  }

  /// Install an exception handler on *every* core (the vector-base
  /// registers are per-core, but all cores run the same kernel/hypervisor
  /// image).  Pass nullptr/empty to clear.
  void install_el1_irq_handler(ExceptionModel::IrqHandler h);
  void install_el2_irq_handler(ExceptionModel::IrqHandler h);
  void install_hypercall_handler(ExceptionModel::HypercallHandler h);
  void install_sysreg_trap_handler(ExceptionModel::SysregTrapHandler h);

  /// Secure-space physical extent (top of DRAM).
  [[nodiscard]] PhysAddr secure_base() const {
    return config_.dram_size - config_.secure_size;
  }
  [[nodiscard]] u64 secure_size() const { return config_.secure_size; }
  [[nodiscard]] bool in_secure_space(PhysAddr pa, u64 len = 1) const {
    return ranges_overlap(pa, len, secure_base(), secure_size());
  }

  /// Translation-regime snapshot from the live system registers.  With
  /// the fast path on, the snapshot is cached per core and invalidated by
  /// the SysRegs vm-generation write hook instead of rebuilt per access.
  [[nodiscard]] WalkContext walk_context() const;

  /// Runtime fast-path/reference-mode switch (benchmarks flip it to
  /// measure both sides on one machine; tests force reference mode).
  /// Covers all four layers: cached walk context, TLB lookup index,
  /// inline translation cache, bulk charge-replay.
  void set_host_fast_path(bool on) {
    fast_path_ = on;
    for (auto& c : cores_) {
      c->walk_ctx_gen = 0;  // drop the cached snapshot
      c->itc_drop();
      c->mmu.tlb().set_index_enabled(on);
    }
  }
  [[nodiscard]] bool host_fast_path() const { return fast_path_; }

  /// Runtime temporal-decoupling switch (see MachineConfig).  Folds any
  /// local run-ahead first, so flipping mid-run never loses cycles.
  void set_decoupled_quantum(Cycles quantum) {
    for (auto& c : cores_) c->account.set_decoupled_quantum(quantum);
  }
  [[nodiscard]] Cycles decoupled_quantum() const {
    return cur_->account.decoupled_quantum();
  }

  // --- EL0/EL1 virtual-address accesses -------------------------------------
  Access64 read64(VirtAddr va, bool user = false);
  Access64 write64(VirtAddr va, u64 value, bool user = false);

  /// Word-granular block transfer; `va` must be word aligned and `len` a
  /// multiple of the word size (kernel buffers are padded accordingly).
  bool read_block_v(VirtAddr va, void* out, u64 len, bool user = false);
  bool write_block_v(VirtAddr va, const void* data, u64 len, bool user = false);

  /// Bulk transfer optimised for large cacheable buffers (page-cache data,
  /// COW copies): one translation per page, one cache access per line,
  /// per-word hit charges.  Non-cacheable pages fall back to the exact
  /// per-word bus-visible path, so MBM semantics are preserved.
  /// `va` word aligned, `len` a multiple of the word size.
  bool write_block_bulk(VirtAddr va, const void* data, u64 len,
                        bool user = false);
  bool read_block_bulk(VirtAddr va, void* out, u64 len, bool user = false);

  /// Translate without performing an access or invoking fault handlers;
  /// still charges walk costs (it is a real probe).
  TranslateOutcome probe(VirtAddr va, const AccessType& access);

  // --- EL2 physical accesses (Hypersec's VA==PA linear map, §6.1) ----------
  u64 el2_read64(PhysAddr pa);
  void el2_write64(PhysAddr pa, u64 value);
  /// Non-cacheable EL2 word write: reaches the bus, so the MBM observes it.
  /// Hypersec programs the MBM bitmap this way so the bitmap cache sees
  /// the update (§6.3: "updated when a memory write event to the bitmap is
  /// detected").
  void el2_write64_nc(PhysAddr pa, u64 value);
  void el2_read_block(PhysAddr pa, void* out, u64 len);
  void el2_write_block(PhysAddr pa, const void* data, u64 len);

  // --- Coherent device (DMA-style) memory ports -----------------------------
  /// Used by bus masters other than the CPU (the MBM writing its event ring
  /// buffer).  Keeps the CPU cache coherent by flushing overlapped lines.
  void dma_write_block(PhysAddr pa, const void* data, u64 len);
  void dma_read_block(PhysAddr pa, void* out, u64 len);

  // --- Compute / control -----------------------------------------------------
  /// Pure CPU work (no memory traffic): charge `c` cycles.
  /// A time-series poll site: compute charges dominate long quiet
  /// stretches, so sampling here bounds the stamp skew past an interval
  /// boundary.  Identical in fast-path and reference mode (both charge
  /// through advance), and poll() observes the folded clock, so the
  /// sample stream is bit-identical under temporal decoupling too.
  void advance(Cycles c) {
    cur_->account.charge(c);
    if (timeseries_.armed()) [[unlikely]] timeseries_.poll(bus_order_now());
  }
  /// One TLB invalidate, with the guest-mode DVM broadcast surcharge.
  void charge_tlbi() {
    cur_->account.charge(config_.timing.tlbi +
                         (guest_mode_ ? config_.timing.tlbi_guest_extra : 0));
  }
  /// Kernel task switch bookkeeping cost (the TTBR0 write is separate).
  /// Also a time-series poll site: scheduler ticks are the steady
  /// heartbeat of otherwise-idle simulated time.
  void charge_context_switch() {
    cur_->account.charge(config_.timing.context_switch);
    ++cur_->account.counters().context_switches;
    if (timeseries_.armed()) [[unlikely]] timeseries_.poll(bus_order_now());
  }

  u64 hvc(u64 func, std::initializer_list<u64> args);
  bool write_sysreg_el1(SysReg reg, u64 value) {
    return cur_->exceptions.write_sysreg_el1(reg, value);
  }
  [[nodiscard]] u64 sysreg(SysReg reg) const { return cur_->sysregs.get(reg); }
  /// Direct register set, bypassing traps: boot firmware / EL2 use only.
  /// Operates on the active core.
  void set_sysreg_raw(SysReg reg, u64 value) { cur_->sysregs.set(reg, value); }
  /// Direct register set on one specific core (secondary-core bring-up).
  void set_sysreg_raw(unsigned core, SysReg reg, u64 value) {
    cores_[core]->sysregs.set(reg, value);
  }
  /// Direct register set replicated to every core: EL2 software programs
  /// identical translation/trap controls cluster-wide (VTTBR, HCR, EL2
  /// vectors).  Single-core machines see exactly one set().
  void set_sysreg_raw_all(SysReg reg, u64 value) {
    for (auto& c : cores_) c->sysregs.set(reg, value);
  }

  void set_s2_fault_handler(S2FaultHandler h) { s2_handler_ = std::move(h); }
  void set_el1_fault_handler(El1FaultHandler h) { el1_handler_ = std::move(h); }

  /// True while the kernel runs as a KVM guest: blocking idle paths take
  /// WFI traps to the hypervisor (HCR_EL2.TWI behaviour).
  void set_guest_mode(bool on) { guest_mode_ = on; }
  [[nodiscard]] bool guest_mode() const { return guest_mode_; }
  /// One trapped WFI: world switch out and back.
  void charge_wfi_trap() {
    cur_->account.charge(config_.timing.vm_exit + config_.timing.vm_entry);
    ++cur_->account.counters().vm_exits;
  }

  void raise_irq(unsigned line) { cur_->gic.raise(line); }

  /// Timestamp for a word bus transaction about to be issued on behalf of
  /// the active core — by the core itself or by a bus-master device (DMA)
  /// it programs.  On multi-core machines this runs the round-robin
  /// arbiter (charging contention waits into the issuing core's ledger)
  /// and claims a bus slot; on every machine it clamps the shared bus
  /// clock monotonic so the MBM's FIFO sees non-decreasing arrival times
  /// even though per-core clocks drift apart.  Identity at cores == 1.
  Cycles bus_timestamp();

  /// Read-only bus-order instant for the active core: its local clock
  /// mapped through the same local-delta rule bus_timestamp() applies,
  /// without claiming a bus slot or advancing the arbiter.  CPU-side
  /// flight-recorder events (IRQ delivery, verifier verdicts, faults)
  /// stamp with this so every v2 trace timestamp shares one clock
  /// domain with the bus-stamped kBusWrite/kMbmFifo/kMbmDetect events —
  /// cross-core detection chains stay subtractable.  Identity at
  /// cores == 1 (the one local clock is the bus clock).
  [[nodiscard]] Cycles bus_order_now() const {
    Cycles now = cur_->account.cycles();
    if (cores_.size() > 1 && now < bus_last_timestamp_) {
      const Cycles delta =
          cur_->last_bus_local != 0 && now > cur_->last_bus_local
              ? now - cur_->last_bus_local
              : 0;
      now = bus_last_timestamp_ + delta;
    }
    return now;
  }

  /// Elapsed simulated time in microseconds (active core's clock).
  [[nodiscard]] double elapsed_us() const {
    return config_.timing.cycles_to_us(cur_->account.cycles());
  }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  /// Append the machine's architectural state (per-core system registers,
  /// TLBs, cache tags, cycle ledgers, ELs, GICs; shared bus count, bus
  /// arbiter, pending IPIs, active core, trace ring) to `w`.  DRAM
  /// contents travel separately as COW-shared pages (phys().capture()).
  void save_state(SnapWriter& w) const;
  /// Restore architectural state from `r` into this live machine.  Wiring
  /// (handlers, snoopers) and the host fast-path setting persist; the
  /// cached walk context is dropped through the vm-generation mechanism
  /// and host-side observability (metrics, spans) resets.  Pending IPIs
  /// restore latched (not delivered): they fire when the scheduler next
  /// activates their target, exactly as they would have pre-snapshot.
  void restore_state(SnapReader& r);

 private:
  // Inline translation cache (DESIGN.md §14): a direct-mapped front cache
  // over successful translations, valid only while both the TLB and the
  // translation regime are untouched (generation guards).  A hit replays
  // the exact effects of Mmu::translate's TLB-hit path — which charges no
  // cycles — so results are bit-identical to reference mode; any TLB
  // insert/flush or vm-register write invalidates every entry at once
  // through the generation compare.  Host fast path only.
  struct ItcEntry {
    VirtAddr vpage = 0;
    u64 tlb_gen = 0;
    u64 vm_gen = 0;  // 0 never matches a live vm generation
    PhysAddr ppage = 0;
    PageAttrs attrs;
    bool s2_write_ok = true;
  };
  static constexpr unsigned kItcEntries = 64;  // power of two (index mask)

  /// One core's private state bundle.  Construction order matters:
  /// account and sysregs before the components that hold references to
  /// them (declaration order is initialization order).
  struct CoreState {
    CoreState(const MachineConfig& config, PhysicalMemory& phys,
              MemoryBus& bus, obs::Registry& obs, Trace& trace)
        : cache(config.cache, phys, bus, account, config.timing),
          mmu(phys, account, config.timing, obs, config.tlb_entries),
          exceptions(sysregs, account, config.timing, trace),
          gic(exceptions) {}

    CycleAccount account;
    /// Local clock at this core's previous bus issue — the shared bus
    /// clock advances by the delta when this core's clock trails it
    /// (see bus_timestamp()).  0 = no issue yet.
    Cycles last_bus_local = 0;
    SysRegs sysregs;
    Cache cache;
    Mmu mmu;
    ExceptionModel exceptions;
    InterruptController gic;
    // Cached translation-regime snapshot; valid while walk_ctx_gen matches
    // sysregs.vm_generation() (which starts at 1, so 0 means "unprimed").
    mutable WalkContext walk_ctx;
    mutable u64 walk_ctx_gen = 0;
    ItcEntry itc[kItcEntries];
    void itc_drop() {
      for (ItcEntry& e : itc) e.vm_gen = 0;
    }
  };

  Access64 access64(VirtAddr va, bool is_write, u64 value, bool user);
  /// Enroll the built-in per-core tracks (sim.core{K}.*) — always done,
  /// so arming later samples a fixed, deterministic track order.
  void enroll_builtin_tracks();
  /// Perform the physical access after a successful translation.
  u64 perform(PhysAddr pa, const PageAttrs& attrs, bool is_write, u64 value);
  /// Rebuild a WalkContext from the live system registers (four reads).
  [[nodiscard]] WalkContext build_walk_context() const;
  MachineConfig config_;
  Trace trace_;
  PhysicalMemory phys_;
  MemoryBus bus_;
  // Declared before the components that register metrics in their
  // constructors (Mmu); initialization order is declaration order.
  obs::Registry obs_;
  obs::SpanTracer spans_;
  obs::SelfProfiler profiler_;
  // Declared before cores_: the per-core built-in tracks enroll probes
  // into it during core construction.
  obs::TimeSeries timeseries_;
  // unique_ptr: CoreState holds internal references (cache/mmu/exceptions
  // bind the core's own account/sysregs), so elements must never move.
  std::vector<std::unique_ptr<CoreState>> cores_;
  CoreState* cur_ = nullptr;  // == cores_[active_core_]
  unsigned active_core_ = 0;
  // Shared-bus round-robin arbiter + monotonic bus clock (DESIGN.md §15).
  u8 last_bus_core_ = 0;
  Cycles bus_busy_until_ = 0;
  Cycles bus_last_timestamp_ = 0;
  std::vector<u8> ipi_pending_;  // one latch per core
  /// Bus-order instant each pending IPI was posted at (parallel to
  /// ipi_pending_): delivery latency = delivery instant - post instant.
  /// Snapshot state, like the latch itself.
  std::vector<Cycles> ipi_post_time_;
  S2FaultHandler s2_handler_;
  El1FaultHandler el1_handler_;
  bool guest_mode_ = false;
  bool fast_path_ = true;
  // Observability handles (inert unless obs_ is enabled).  The walk-ctx
  // pair is mutable because walk_context() is logically const.
  mutable obs::Counter obs_walk_ctx_rebuilds_;
  mutable obs::Counter obs_walk_ctx_cached_;
  obs::Counter obs_bulk_chunks_;
  obs::Counter obs_bulk_replay_words_;
  obs::Counter obs_bulk_exact_words_;
  obs::Counter obs_bulk_guard_trips_;
  obs::Counter obs_s2_fault_exits_;
};

}  // namespace hn::sim
