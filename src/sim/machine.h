// The simulated machine: composition root wiring DRAM, bus, cache, MMU,
// system registers, exception model and interrupt controller, and exposing
// the charged memory-access API every higher layer uses.
//
// Software layers (kernel, Hypersec, KVM) run *on behalf of* this machine:
// their accesses to simulated memory translate through real page tables,
// hit the TLB/cache models, charge cycles, and emit bus transactions that
// the MBM can snoop (DESIGN.md §3.1).
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>

#include "common/timing.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/span.h"
#include "sim/bus.h"
#include "sim/cache.h"
#include "sim/cycle_account.h"
#include "sim/exception.h"
#include "sim/irq.h"
#include "sim/mmu.h"
#include "sim/phys_mem.h"
#include "sim/snapshot.h"
#include "sim/sysregs.h"
#include "sim/trace.h"

namespace hn::sim {

struct MachineConfig {
  /// Total simulated DRAM.  Defaults to 128 MiB, the LogicTile SDRAM the
  /// Juno prototype ran from (§6).
  u64 dram_size = 128ull * 1024 * 1024;
  /// Secure-space carve-out at the top of DRAM: Hypersec code/data, the
  /// MBM bitmap and the event ring buffer live here (§5.3).
  u64 secure_size = 16ull * 1024 * 1024;
  TimingModel timing;
  CacheConfig cache;
  unsigned tlb_entries = 256;  // A57 L2-TLB reach stand-in
  /// Host-side fast path (DESIGN.md §9): cached WalkContext and bulk
  /// charge-replay.  Changes host wall-clock only — simulated cycles,
  /// counters, bus traffic and fingerprints are bit-identical either way
  /// (the fast-path differential test pins this).  Off = reference mode.
  bool host_fast_path = true;
  /// Temporal decoupling (DESIGN.md §14): with a non-zero quantum the
  /// core's cycle charges accumulate on a local clock and commit when the
  /// quantum overflows or the clock is observed (bus timestamps, trace
  /// records, timer reads, snapshot saves all observe it).  Observable
  /// values are bit-identical to quantum = 0; the campaign-digest and
  /// differential tests pin this.  Opt-in; 0 = exact charging.
  Cycles decoupled_quantum = 0;
};

/// What an EL2 stage-2 fault handler did with a fault (KVM module).
enum class S2FaultAction : u8 {
  kRetry,      // stage-2 tables fixed; re-translate and re-issue
  kEmulated,   // the handler performed the access itself (WP emulation)
  kUnhandled,  // fault stands; access fails
};

struct Access64 {
  bool ok = false;
  Fault fault;
  u64 value = 0;
};

class Machine {
 public:
  using S2FaultHandler =
      std::function<S2FaultAction(const Fault& fault, bool is_write, u64 value)>;
  using El1FaultHandler = std::function<void(const Fault& fault)>;

  explicit Machine(const MachineConfig& config);

  // --- Component access ----------------------------------------------------
  PhysicalMemory& phys() { return phys_; }
  MemoryBus& bus() { return bus_; }
  Cache& cache() { return cache_; }
  Mmu& mmu() { return mmu_; }
  Tlb& tlb() { return mmu_.tlb(); }
  CycleAccount& account() { return account_; }
  Counters& counters() { return account_.counters(); }
  SysRegs& sysregs() { return sysregs_; }
  ExceptionModel& exceptions() { return exceptions_; }
  Trace& trace() { return trace_; }
  InterruptController& gic() { return gic_; }
  /// Observability (DESIGN.md §10): per-machine metrics registry and span
  /// tracer.  Runtime-disabled by default; tools flip it on for
  /// --metrics-out.  Registration is valid even when disabled.
  obs::Registry& obs() { return obs_; }
  [[nodiscard]] const obs::Registry& obs() const { return obs_; }
  obs::SpanTracer& spans() { return spans_; }
  /// Host self-time profiler (DESIGN.md §14): off by default (one branch
  /// per scope); --profile runs enable it and read the report.
  obs::SelfProfiler& profiler() { return profiler_; }
  [[nodiscard]] const TimingModel& timing() const { return config_.timing; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  /// Secure-space physical extent (top of DRAM).
  [[nodiscard]] PhysAddr secure_base() const {
    return config_.dram_size - config_.secure_size;
  }
  [[nodiscard]] u64 secure_size() const { return config_.secure_size; }
  [[nodiscard]] bool in_secure_space(PhysAddr pa, u64 len = 1) const {
    return ranges_overlap(pa, len, secure_base(), secure_size());
  }

  /// Translation-regime snapshot from the live system registers.  With
  /// the fast path on, the snapshot is cached and invalidated by the
  /// SysRegs vm-generation write hook instead of being rebuilt per access.
  [[nodiscard]] WalkContext walk_context() const;

  /// Runtime fast-path/reference-mode switch (benchmarks flip it to
  /// measure both sides on one machine; tests force reference mode).
  /// Covers all four layers: cached walk context, TLB lookup index,
  /// inline translation cache, bulk charge-replay.
  void set_host_fast_path(bool on) {
    fast_path_ = on;
    walk_ctx_gen_ = 0;  // drop the cached snapshot
    itc_drop();
    mmu_.tlb().set_index_enabled(on);
  }
  [[nodiscard]] bool host_fast_path() const { return fast_path_; }

  /// Runtime temporal-decoupling switch (see MachineConfig).  Folds any
  /// local run-ahead first, so flipping mid-run never loses cycles.
  void set_decoupled_quantum(Cycles quantum) {
    account_.set_decoupled_quantum(quantum);
  }
  [[nodiscard]] Cycles decoupled_quantum() const {
    return account_.decoupled_quantum();
  }

  // --- EL0/EL1 virtual-address accesses -------------------------------------
  Access64 read64(VirtAddr va, bool user = false);
  Access64 write64(VirtAddr va, u64 value, bool user = false);

  /// Word-granular block transfer; `va` must be word aligned and `len` a
  /// multiple of the word size (kernel buffers are padded accordingly).
  bool read_block_v(VirtAddr va, void* out, u64 len, bool user = false);
  bool write_block_v(VirtAddr va, const void* data, u64 len, bool user = false);

  /// Bulk transfer optimised for large cacheable buffers (page-cache data,
  /// COW copies): one translation per page, one cache access per line,
  /// per-word hit charges.  Non-cacheable pages fall back to the exact
  /// per-word bus-visible path, so MBM semantics are preserved.
  /// `va` word aligned, `len` a multiple of the word size.
  bool write_block_bulk(VirtAddr va, const void* data, u64 len,
                        bool user = false);
  bool read_block_bulk(VirtAddr va, void* out, u64 len, bool user = false);

  /// Translate without performing an access or invoking fault handlers;
  /// still charges walk costs (it is a real probe).
  TranslateOutcome probe(VirtAddr va, const AccessType& access);

  // --- EL2 physical accesses (Hypersec's VA==PA linear map, §6.1) ----------
  u64 el2_read64(PhysAddr pa);
  void el2_write64(PhysAddr pa, u64 value);
  /// Non-cacheable EL2 word write: reaches the bus, so the MBM observes it.
  /// Hypersec programs the MBM bitmap this way so the bitmap cache sees
  /// the update (§6.3: "updated when a memory write event to the bitmap is
  /// detected").
  void el2_write64_nc(PhysAddr pa, u64 value);
  void el2_read_block(PhysAddr pa, void* out, u64 len);
  void el2_write_block(PhysAddr pa, const void* data, u64 len);

  // --- Coherent device (DMA-style) memory ports -----------------------------
  /// Used by bus masters other than the CPU (the MBM writing its event ring
  /// buffer).  Keeps the CPU cache coherent by flushing overlapped lines.
  void dma_write_block(PhysAddr pa, const void* data, u64 len);
  void dma_read_block(PhysAddr pa, void* out, u64 len);

  // --- Compute / control -----------------------------------------------------
  /// Pure CPU work (no memory traffic): charge `c` cycles.
  void advance(Cycles c) { account_.charge(c); }
  /// One TLB invalidate, with the guest-mode DVM broadcast surcharge.
  void charge_tlbi() {
    account_.charge(config_.timing.tlbi +
                    (guest_mode_ ? config_.timing.tlbi_guest_extra : 0));
  }
  /// Kernel task switch bookkeeping cost (the TTBR0 write is separate).
  void charge_context_switch() {
    account_.charge(config_.timing.context_switch);
    ++account_.counters().context_switches;
  }

  u64 hvc(u64 func, std::initializer_list<u64> args);
  bool write_sysreg_el1(SysReg reg, u64 value) {
    return exceptions_.write_sysreg_el1(reg, value);
  }
  [[nodiscard]] u64 sysreg(SysReg reg) const { return sysregs_.get(reg); }
  /// Direct register set, bypassing traps: boot firmware / EL2 use only.
  void set_sysreg_raw(SysReg reg, u64 value) { sysregs_.set(reg, value); }

  void set_s2_fault_handler(S2FaultHandler h) { s2_handler_ = std::move(h); }
  void set_el1_fault_handler(El1FaultHandler h) { el1_handler_ = std::move(h); }

  /// True while the kernel runs as a KVM guest: blocking idle paths take
  /// WFI traps to the hypervisor (HCR_EL2.TWI behaviour).
  void set_guest_mode(bool on) { guest_mode_ = on; }
  [[nodiscard]] bool guest_mode() const { return guest_mode_; }
  /// One trapped WFI: world switch out and back.
  void charge_wfi_trap() {
    account_.charge(config_.timing.vm_exit + config_.timing.vm_entry);
    ++account_.counters().vm_exits;
  }

  void raise_irq(unsigned line) { gic_.raise(line); }

  /// Elapsed simulated time in microseconds.
  [[nodiscard]] double elapsed_us() const {
    return config_.timing.cycles_to_us(account_.cycles());
  }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  /// Append the machine's architectural state (system registers, TLB,
  /// cache tags, cycle ledger, bus count, GIC, EL, trace ring) to `w`.
  /// DRAM contents travel separately as COW-shared pages (phys().capture()).
  void save_state(SnapWriter& w) const;
  /// Restore architectural state from `r` into this live machine.  Wiring
  /// (handlers, snoopers) and the host fast-path setting persist; the
  /// cached walk context is dropped through the vm-generation mechanism
  /// and host-side observability (metrics, spans) resets.
  void restore_state(SnapReader& r);

 private:
  Access64 access64(VirtAddr va, bool is_write, u64 value, bool user);
  /// Perform the physical access after a successful translation.
  u64 perform(PhysAddr pa, const PageAttrs& attrs, bool is_write, u64 value);
  /// Rebuild a WalkContext from the live system registers (four reads).
  [[nodiscard]] WalkContext build_walk_context() const;

  MachineConfig config_;
  Trace trace_;
  PhysicalMemory phys_;
  MemoryBus bus_;
  CycleAccount account_;
  // Declared before the components that register metrics in their
  // constructors (Mmu); initialization order is declaration order.
  obs::Registry obs_;
  obs::SpanTracer spans_;
  obs::SelfProfiler profiler_;
  Cache cache_;
  Mmu mmu_;
  SysRegs sysregs_;
  ExceptionModel exceptions_;
  InterruptController gic_;
  S2FaultHandler s2_handler_;
  El1FaultHandler el1_handler_;
  bool guest_mode_ = false;
  bool fast_path_ = true;
  // Observability handles (inert unless obs_ is enabled).  The walk-ctx
  // pair is mutable because walk_context() is logically const.
  mutable obs::Counter obs_walk_ctx_rebuilds_;
  mutable obs::Counter obs_walk_ctx_cached_;
  obs::Counter obs_bulk_chunks_;
  obs::Counter obs_bulk_replay_words_;
  obs::Counter obs_bulk_exact_words_;
  obs::Counter obs_bulk_guard_trips_;
  obs::Counter obs_s2_fault_exits_;
  // Cached translation-regime snapshot; valid while walk_ctx_gen_ matches
  // sysregs_.vm_generation() (which starts at 1, so 0 means "unprimed").
  mutable WalkContext walk_ctx_;
  mutable u64 walk_ctx_gen_ = 0;

  // Inline translation cache (DESIGN.md §14): a direct-mapped front cache
  // over successful translations, valid only while both the TLB and the
  // translation regime are untouched (generation guards).  A hit replays
  // the exact effects of Mmu::translate's TLB-hit path — which charges no
  // cycles — so results are bit-identical to reference mode; any TLB
  // insert/flush or vm-register write invalidates every entry at once
  // through the generation compare.  Host fast path only.
  struct ItcEntry {
    VirtAddr vpage = 0;
    u64 tlb_gen = 0;
    u64 vm_gen = 0;  // 0 never matches a live vm generation
    PhysAddr ppage = 0;
    PageAttrs attrs;
    bool s2_write_ok = true;
  };
  static constexpr unsigned kItcEntries = 64;  // power of two (index mask)
  void itc_drop() {
    for (ItcEntry& e : itc_) e.vm_gen = 0;
  }
  ItcEntry itc_[kItcEntries];
};

}  // namespace hn::sim
