#include "sim/trace_report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <unordered_map>

namespace hn::sim {

namespace {

/// Printf into a std::string tail.
void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<size_t>(n), sizeof buf - 1));
}

double to_us(Cycles cycles, double cpu_ghz) {
  // cycles / GHz = ns; /1000 = µs.  A zero clock rate (malformed header)
  // degrades to cycles-as-µs rather than dividing by zero.
  return cpu_ghz > 0.0 ? static_cast<double>(cycles) / (cpu_ghz * 1000.0)
                       : static_cast<double>(cycles);
}

const char* verdict_name(u64 code) {
  switch (code) {
    case 0: return "benign";
    case 1: return "ALERT";
    case 2: return "unattributed";
  }
  return "?";
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

AttributionReport build_attribution(const TraceData& data) {
  AttributionReport report;
  // seq -> event index, for walking cause links backward.
  std::unordered_map<u64, size_t> by_seq;
  by_seq.reserve(data.events.size());
  for (size_t i = 0; i < data.events.size(); ++i) {
    by_seq.emplace(data.events[i].seq, i);
  }
  // detect seq -> the kIrq event it raised (the IRQ links to the detection
  // via CauseScope; first match wins, one IRQ per ring push).
  std::unordered_map<u64, size_t> irq_for_detect;
  for (size_t i = 0; i < data.events.size(); ++i) {
    const TraceEvent& e = data.events[i];
    if (e.kind == TraceKind::kIrq && e.cause != kNoCause) {
      irq_for_detect.emplace(e.cause, i);
    }
  }
  auto resolve = [&](u64 seq, TraceKind kind, TraceEvent& out) {
    if (seq == kNoCause) return false;
    const auto it = by_seq.find(seq);
    if (it == by_seq.end() || data.events[it->second].kind != kind) {
      return false;
    }
    out = data.events[it->second];
    return true;
  };

  for (const TraceEvent& e : data.events) {
    if (e.core != 0) report.smp_trace = true;
    if (e.kind != TraceKind::kVerdict) continue;
    ++report.verdicts_total;
    if (e.b == 0) ++report.verdicts_benign;
    if (e.b == 1) ++report.verdicts_alert;
    if (e.b == 2) ++report.verdicts_unattributed;

    DetectionChain chain;
    chain.verdict = e;
    const bool linked =
        resolve(e.cause, TraceKind::kMbmDetect, chain.detect) &&
        resolve(chain.detect.cause, TraceKind::kMbmFifo, chain.fifo) &&
        resolve(chain.fifo.cause, TraceKind::kBusWrite, chain.bus_write);
    if (linked) {
      chain.has_pt_write =
          resolve(chain.bus_write.cause, TraceKind::kPtWrite, chain.pt_write);
      const auto irq_it = irq_for_detect.find(chain.detect.seq);
      if (irq_it != irq_for_detect.end()) {
        chain.has_irq = true;
        chain.irq = data.events[irq_it->second];
      }
    }
    chain.complete = linked && chain.has_irq;
    if (chain.complete) {
      chain.bus_snoop = chain.fifo.at - chain.bus_write.at;
      chain.fifo_residency = 0;  // concurrent MBM hardware, not CPU time
      chain.bitmap_check = chain.detect.at - chain.fifo.at;
      chain.irq_delivery = chain.irq.at - chain.detect.at;
      chain.verifier = chain.verdict.at - chain.irq.at;
      chain.end_to_end = chain.verdict.at - chain.bus_write.at;
      chain.mbm_queue_wait = chain.fifo.a;
      chain.mbm_service = chain.fifo.b;
    } else {
      ++report.broken_chains;
    }
    report.chains.push_back(chain);
  }
  return report;
}

std::string render_attribution(const AttributionReport& report,
                               double cpu_ghz) {
  std::string out;
  appendf(out,
          "Detection-latency attribution: %llu verdict(s), %llu complete "
          "chain(s), %llu broken\n",
          static_cast<unsigned long long>(report.verdicts_total),
          static_cast<unsigned long long>(report.chains.size() -
                                          report.broken_chains),
          static_cast<unsigned long long>(report.broken_chains));

  // Originating core of a chain is the core that issued the monitored bus
  // store.  Reports over single-core traces (and v1 traces, parsed as
  // core 0) render exactly as before; the core= tags and the per-core
  // grouping below appear for any genuinely SMP trace — even one whose
  // detections all trace back to a single core, since "every alert came
  // from core 1 while core 0 ran clean" is itself the finding.
  const bool multi_core = report.smp_trace;

  u64 n = 0;
  for (const DetectionChain& c : report.chains) {
    ++n;
    appendf(out, "\nchain #%llu: %s pa=%#llx value=%#llx",
            static_cast<unsigned long long>(n), verdict_name(c.verdict.b),
            static_cast<unsigned long long>(c.verdict.a),
            static_cast<unsigned long long>(c.detect.b));
    if (multi_core && c.complete) {
      appendf(out, " core=%u", static_cast<unsigned>(c.bus_write.core));
    }
    out += '\n';
    if (!c.complete) {
      appendf(out,
              "  (incomplete: upstream events evicted from the trace ring)\n");
      continue;
    }
    if (c.has_pt_write) {
      appendf(out, "  root: ptwrite desc_pa=%#llx desc=%#llx (#%llu)\n",
              static_cast<unsigned long long>(c.pt_write.a),
              static_cast<unsigned long long>(c.pt_write.b),
              static_cast<unsigned long long>(c.pt_write.seq));
    }
    appendf(out, "  buswrite #%llu @ %llu cy -> verdict #%llu @ %llu cy\n",
            static_cast<unsigned long long>(c.bus_write.seq),
            static_cast<unsigned long long>(c.bus_write.at),
            static_cast<unsigned long long>(c.verdict.seq),
            static_cast<unsigned long long>(c.verdict.at));
    appendf(out, "  segments (CPU timeline, cycles):\n");
    appendf(out, "    bus-snoop      %8llu\n",
            static_cast<unsigned long long>(c.bus_snoop));
    appendf(out, "    fifo-residency %8llu\n",
            static_cast<unsigned long long>(c.fifo_residency));
    appendf(out, "    bitmap-check   %8llu\n",
            static_cast<unsigned long long>(c.bitmap_check));
    appendf(out, "    irq-delivery   %8llu\n",
            static_cast<unsigned long long>(c.irq_delivery));
    appendf(out, "    verifier       %8llu\n",
            static_cast<unsigned long long>(c.verifier));
    appendf(out, "    end-to-end     %8llu  (%.3f us)\n",
            static_cast<unsigned long long>(c.end_to_end),
            to_us(c.end_to_end, cpu_ghz));
    appendf(out,
            "  mbm pipeline (concurrent, off critical path): queue-wait=%llu "
            "service=%llu\n",
            static_cast<unsigned long long>(c.mbm_queue_wait),
            static_cast<unsigned long long>(c.mbm_service));
  }

  // Aggregate over complete chains.
  struct Agg {
    const char* name;
    Cycles DetectionChain::* field;
  };
  static constexpr Agg kSegments[] = {
      {"bus-snoop", &DetectionChain::bus_snoop},
      {"fifo-residency", &DetectionChain::fifo_residency},
      {"bitmap-check", &DetectionChain::bitmap_check},
      {"irq-delivery", &DetectionChain::irq_delivery},
      {"verifier", &DetectionChain::verifier},
      {"end-to-end", &DetectionChain::end_to_end},
  };
  u64 complete = 0;
  for (const DetectionChain& c : report.chains) complete += c.complete;
  if (complete > 0) {
    appendf(out, "\naggregate over %llu complete chain(s), cycles:\n",
            static_cast<unsigned long long>(complete));
    appendf(out, "  %-15s %10s %10s %10s\n", "segment", "min", "avg", "max");
    for (const Agg& seg : kSegments) {
      u64 mn = ~0ull, mx = 0, sum = 0;
      for (const DetectionChain& c : report.chains) {
        if (!c.complete) continue;
        const Cycles v = c.*seg.field;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
      }
      appendf(out, "  %-15s %10llu %10llu %10llu\n", seg.name,
              static_cast<unsigned long long>(mn),
              static_cast<unsigned long long>(sum / complete),
              static_cast<unsigned long long>(mx));
    }
  }
  // Per-core grouping: which core's stores the detections trace back to.
  // Cross-core attacks show up here as alerts attributed to a core other
  // than the one serving the victim workload.
  if (multi_core && complete > 0) {
    appendf(out, "\nper-core attribution (originating core of the monitored "
                 "store), cycles:\n");
    appendf(out, "  %-6s %7s %7s %10s %10s %10s\n", "core", "chains", "alerts",
            "e2e-min", "e2e-avg", "e2e-max");
    for (unsigned core = 0; core < 64; ++core) {
      u64 count = 0, alerts = 0, mn = ~0ull, mx = 0, sum = 0;
      for (const DetectionChain& c : report.chains) {
        if (!c.complete || (c.bus_write.core & 63) != core) continue;
        ++count;
        alerts += c.verdict.b == 1;
        mn = std::min(mn, c.end_to_end);
        mx = std::max(mx, c.end_to_end);
        sum += c.end_to_end;
      }
      if (count == 0) continue;
      appendf(out, "  %-6u %7llu %7llu %10llu %10llu %10llu\n", core,
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(alerts),
              static_cast<unsigned long long>(mn),
              static_cast<unsigned long long>(sum / count),
              static_cast<unsigned long long>(mx));
    }
  }

  appendf(out,
          "\ntotals: verdicts=%llu alerts=%llu benign=%llu unattributed=%llu\n",
          static_cast<unsigned long long>(report.verdicts_total),
          static_cast<unsigned long long>(report.verdicts_alert),
          static_cast<unsigned long long>(report.verdicts_benign),
          static_cast<unsigned long long>(report.verdicts_unattributed));
  return out;
}

std::string export_chrome_json(const TraceData& data) {
  // One record per JSON object, keyed by its simulated-cycle timestamp so
  // the merged stream can be stably sorted into a monotonic ts sequence
  // (metadata records sort first at cycle 0).
  struct Record {
    Cycles at = 0;
    std::string json;
  };
  std::vector<Record> records;
  records.reserve(data.events.size() * 2 + data.spans.size() + 2);

  auto ts = [&](Cycles at) { return to_us(at, data.cpu_ghz); };
  char buf[512];

  // Thread names (metadata, pid 1: tid 1 = events, tid 2 = spans).
  records.push_back(
      {0, "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
          "\"args\":{\"name\":\"trace events\"}}"});
  records.push_back(
      {0, "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
          "\"args\":{\"name\":\"spans\"}}"});

  // seq set, so flow arrows only reference events present in the ring.
  std::unordered_map<u64, Cycles> at_by_seq;
  at_by_seq.reserve(data.events.size());
  for (const TraceEvent& e : data.events) at_by_seq.emplace(e.seq, e.at);

  for (const TraceEvent& e : data.events) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,"
                  "\"ts\":%.3f,\"name\":\"%s\",\"args\":{\"seq\":%llu,"
                  "\"cause\":%lld,\"a\":%llu,\"b\":%llu}}",
                  ts(e.at), Trace::kind_name(e.kind),
                  static_cast<unsigned long long>(e.seq),
                  e.cause == kNoCause ? -1ll : static_cast<long long>(e.cause),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    records.push_back({e.at, buf});
    const auto cause_it =
        e.cause != kNoCause ? at_by_seq.find(e.cause) : at_by_seq.end();
    if (cause_it != at_by_seq.end()) {
      // Flow arrow cause -> effect, id'd by the effect's sequence number.
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":%.3f,"
                    "\"name\":\"cause\",\"cat\":\"cause\",\"id\":%llu}",
                    ts(cause_it->second),
                    static_cast<unsigned long long>(e.seq));
      records.push_back({cause_it->second, buf});
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":1,"
                    "\"ts\":%.3f,\"name\":\"cause\",\"cat\":\"cause\","
                    "\"id\":%llu}",
                    ts(e.at), static_cast<unsigned long long>(e.seq));
      records.push_back({e.at, buf});
    }
  }

  for (const obs::SpanEvent& s : data.spans) {
    const std::string name =
        s.name_id < data.span_names.size()
            ? json_escape(data.span_names[s.name_id])
            : "span-" + std::to_string(s.name_id);
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"%s\",\"args\":{\"depth\":%u,"
                  "\"self_cycles\":%llu}}",
                  ts(s.begin), to_us(s.end - s.begin, data.cpu_ghz),
                  name.c_str(), s.depth,
                  static_cast<unsigned long long>(s.self));
    records.push_back({s.begin, buf});
  }

  // Time-series counter tracks (ph "C", one named track per enrolled
  // metric), interleaved on the same simulated-µs timeline.  Counter
  // tracks carry the stored sample values: per-window deltas for
  // kCounter tracks, levels for kLevel tracks.
  for (const obs::TimeSeriesSample& row : data.timeseries.samples) {
    for (size_t t = 0; t < data.timeseries.tracks.size(); ++t) {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"C\",\"pid\":1,\"ts\":%.3f,\"name\":\"%s\","
                    "\"args\":{\"value\":%llu}}",
                    ts(row.at),
                    json_escape(data.timeseries.tracks[t].name).c_str(),
                    static_cast<unsigned long long>(row.values[t]));
      records.push_back({row.at, buf});
    }
  }

  std::stable_sort(
      records.begin(), records.end(),
      [](const Record& x, const Record& y) { return x.at < y.at; });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    out += records[i].json;
    if (i + 1 < records.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

std::string render_timeline(const TraceData& data) {
  std::string out;
  const obs::TimeSeriesData& ts = data.timeseries;
  if (ts.tracks.empty()) {
    return "timeline: no time-series section in this trace "
           "(run with --sample-cycles=N)\n";
  }

  // Per-core cycle tracks define the core dimension of the report.
  std::vector<int> core_cycles;
  for (unsigned k = 0;; ++k) {
    const int idx = ts.track_index("sim.core" + std::to_string(k) + ".cycles");
    if (idx < 0) break;
    core_cycles.push_back(idx);
  }
  const int fifo_occ = ts.track_index("mbm.fifo.occupancy");
  const int word_writes = ts.track_index("mbm.snoop.word_writes");
  const int fifo_drops = ts.track_index("mbm.fifo.drops");

  appendf(out,
          "Load timeline: %llu window(s) of %llu cycle(s), %llu track(s), "
          "%llu core(s)\n",
          static_cast<unsigned long long>(ts.samples.size()),
          static_cast<unsigned long long>(ts.interval),
          static_cast<unsigned long long>(ts.tracks.size()),
          static_cast<unsigned long long>(core_cycles.size()));

  // Detection chains bucket into windows by the monitored store's bus
  // instant; their end-to-end latencies feed the per-window percentiles.
  const AttributionReport report = build_attribution(data);

  out += "  window-end(cy)";
  for (size_t k = 0; k < core_cycles.size(); ++k) {
    appendf(out, "  util%zu%%", k);
  }
  if (fifo_occ >= 0) out += "  fifo-occ";
  if (word_writes >= 0) out += "  snooped";
  if (fifo_drops >= 0) out += "  drops";
  out += "  det    p50    p95    p99\n";

  Cycles prev = 0;
  for (size_t i = 0; i < ts.samples.size(); ++i) {
    const obs::TimeSeriesSample& row = ts.samples[i];
    if (i == 0) {
      // The first window opens at the arm instant, which lies inside the
      // interval before the first boundary; approximate its span by one
      // interval (clamped to the stamp itself).
      prev = ts.interval != 0 && row.at > ts.interval ? row.at - ts.interval
                                                      : 0;
    }
    const Cycles span = row.at > prev ? row.at - prev : 1;
    appendf(out, "  %14llu", static_cast<unsigned long long>(row.at));
    for (const int idx : core_cycles) {
      const double util = 100.0 *
                          static_cast<double>(row.values[idx]) /
                          static_cast<double>(span);
      appendf(out, "  %5.1f", util);
    }
    if (fifo_occ >= 0) {
      appendf(out, "  %8llu",
              static_cast<unsigned long long>(row.values[fifo_occ]));
    }
    if (word_writes >= 0) {
      appendf(out, "  %7llu",
              static_cast<unsigned long long>(row.values[word_writes]));
    }
    if (fifo_drops >= 0) {
      appendf(out, "  %5llu",
              static_cast<unsigned long long>(row.values[fifo_drops]));
    }
    obs::HistogramData lat;
    for (const DetectionChain& c : report.chains) {
      if (!c.complete) continue;
      const bool in_window =
          (i == 0 ? c.bus_write.at <= row.at
                  : c.bus_write.at > prev && c.bus_write.at <= row.at);
      if (in_window) lat.record(c.end_to_end, 1);
    }
    if (lat.total_count > 0) {
      appendf(out, "  %3llu  %5llu  %5llu  %5llu\n",
              static_cast<unsigned long long>(lat.total_count),
              static_cast<unsigned long long>(lat.percentile(50)),
              static_cast<unsigned long long>(lat.percentile(95)),
              static_cast<unsigned long long>(lat.percentile(99)));
    } else {
      out += "    0      -      -      -\n";
    }
    prev = row.at;
  }

  // Closing totals: the telescoping cross-check against the attribution
  // report and the live-enrolled detection-latency track.  Both sides sum
  // the same per-chain end-to-end latencies, so they must agree exactly
  // on any complete trace (the cross-check test pins this).
  u64 complete = 0;
  u64 e2e_sum = 0;
  for (const DetectionChain& c : report.chains) {
    if (!c.complete) continue;
    ++complete;
    e2e_sum += c.end_to_end;
  }
  appendf(out,
          "\ntotals: chains=%llu complete=%llu end-to-end-sum=%llu cy\n",
          static_cast<unsigned long long>(report.chains.size()),
          static_cast<unsigned long long>(complete),
          static_cast<unsigned long long>(e2e_sum));
  if (ts.track_index("hypersec.detect.e2e_cycles") >= 0) {
    appendf(out, "track hypersec.detect.e2e_cycles sum=%llu cy\n",
            static_cast<unsigned long long>(
                ts.track_total("hypersec.detect.e2e_cycles")));
  }
  for (const char* name : {"mbm.fifo.service_cycles", "mbm.fifo.wait_cycles",
                           "mbm.snoop.word_writes", "mbm.detections"}) {
    if (ts.track_index(name) >= 0) {
      appendf(out, "track %s sum=%llu\n", name,
              static_cast<unsigned long long>(ts.track_total(name)));
    }
  }
  return out;
}

std::string render_dump(const TraceData& data, std::string_view kind_filter) {
  std::string out;
  const double cycles_per_us = data.cpu_ghz * 1000.0;
  u64 shown = 0;
  for (const TraceEvent& e : data.events) {
    if (!kind_filter.empty() && kind_filter != Trace::kind_name(e.kind)) {
      continue;
    }
    ++shown;
    appendf(out, "%12.3fus  #%-6llu %-9s a=%#llx b=%#llx",
            cycles_per_us > 0.0 ? static_cast<double>(e.at) / cycles_per_us
                                : static_cast<double>(e.at),
            static_cast<unsigned long long>(e.seq), Trace::kind_name(e.kind),
            static_cast<unsigned long long>(e.a),
            static_cast<unsigned long long>(e.b));
    if (e.cause != kNoCause) {
      appendf(out, "  <-#%llu", static_cast<unsigned long long>(e.cause));
    }
    out += '\n';
  }
  appendf(out, "(%llu of %llu event(s) shown",
          static_cast<unsigned long long>(shown),
          static_cast<unsigned long long>(data.events.size()));
  if (data.trace_dropped > 0) {
    appendf(out, "; %llu earlier events dropped: seq [0, %llu)",
            static_cast<unsigned long long>(data.trace_dropped),
            static_cast<unsigned long long>(data.first_seq));
  }
  out += ")\n";
  return out;
}

std::string render_diff(const TraceData& a, const TraceData& b) {
  std::string out;
  auto count_kinds = [](const TraceData& d, u64* counts) {
    for (const TraceEvent& e : d.events) ++counts[static_cast<u8>(e.kind)];
  };
  constexpr unsigned kKinds = static_cast<u8>(TraceKind::kSnapshot) + 1;
  u64 ca[kKinds] = {}, cb[kKinds] = {};
  count_kinds(a, ca);
  count_kinds(b, cb);

  bool any = false;
  for (unsigned k = 0; k < kKinds; ++k) {
    if (ca[k] == cb[k]) continue;
    if (!any) appendf(out, "event-count differences (A vs B):\n");
    any = true;
    appendf(out, "  %-9s %llu vs %llu\n",
            Trace::kind_name(static_cast<TraceKind>(k)),
            static_cast<unsigned long long>(ca[k]),
            static_cast<unsigned long long>(cb[k]));
  }

  const size_t n = std::min(a.events.size(), b.events.size());
  size_t first_diff = n;
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent &x = a.events[i], &y = b.events[i];
    if (x.seq != y.seq || x.cause != y.cause || x.at != y.at ||
        x.kind != y.kind || x.a != y.a || x.b != y.b || x.core != y.core) {
      first_diff = i;
      break;
    }
  }
  if (first_diff < n || a.events.size() != b.events.size()) {
    any = true;
    appendf(out, "first divergence at event index %llu:\n",
            static_cast<unsigned long long>(first_diff));
    auto line = [&](const char* tag, const TraceData& d, size_t i) {
      if (i >= d.events.size()) {
        appendf(out, "  %s: <end of trace, %llu event(s)>\n", tag,
                static_cast<unsigned long long>(d.events.size()));
        return;
      }
      const TraceEvent& e = d.events[i];
      appendf(out, "  %s: #%llu %s @%llu a=%#llx b=%#llx cause=%lld\n", tag,
              static_cast<unsigned long long>(e.seq),
              Trace::kind_name(e.kind), static_cast<unsigned long long>(e.at),
              static_cast<unsigned long long>(e.a),
              static_cast<unsigned long long>(e.b),
              e.cause == kNoCause ? -1ll : static_cast<long long>(e.cause));
    };
    line("A", a, first_diff);
    line("B", b, first_diff);
  }
  if (!any) {
    appendf(out, "traces identical: %llu event(s), %llu span(s)\n",
            static_cast<unsigned long long>(a.events.size()),
            static_cast<unsigned long long>(a.spans.size()));
  }
  return out;
}

}  // namespace hn::sim
