#include "sim/machine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

namespace hn::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      phys_(config.dram_size),
      spans_(obs_),
      fast_path_(config.host_fast_path) {
  assert(config.secure_size < config.dram_size);
  const unsigned ncores = std::max(1u, config.cores);
  cores_.reserve(ncores);
  for (unsigned i = 0; i < ncores; ++i) {
    cores_.push_back(
        std::make_unique<CoreState>(config_, phys_, bus_, obs_, trace_));
    cores_.back()->mmu.tlb().set_index_enabled(config.host_fast_path);
    cores_.back()->account.set_decoupled_quantum(config.decoupled_quantum);
    cores_.back()->cache.set_bus_provenance(static_cast<u8>(i),
                                            &bus_last_timestamp_);
  }
  cur_ = cores_[0].get();
  if (ncores > 1) {
    // SMP flight-recorder clock: CPU-side events stamp bus-order time so
    // cross-core detection chains subtract cleanly (single core keeps the
    // hookless local-clock path — bit-identical traces).
    for (auto& core : cores_) {
      core->exceptions.set_trace_clock([this] { return bus_order_now(); });
    }
  }
  ipi_pending_.assign(ncores, 0);
  ipi_post_time_.assign(ncores, 0);
  spans_.bind_clock(cur_->account.cycles_ref());
  obs_walk_ctx_rebuilds_ = obs_.counter("sim.machine.walk_ctx_rebuilds");
  obs_walk_ctx_cached_ = obs_.counter("sim.machine.walk_ctx_cached");
  obs_bulk_chunks_ = obs_.counter("sim.machine.bulk_chunks");
  obs_bulk_replay_words_ = obs_.counter("sim.machine.bulk_replay_words");
  obs_bulk_exact_words_ = obs_.counter("sim.machine.bulk_exact_words");
  obs_bulk_guard_trips_ = obs_.counter("sim.machine.bulk_guard_trips");
  obs_s2_fault_exits_ = obs_.counter("sim.machine.s2_fault_exits");
  enroll_builtin_tracks();
  if (config.sample_cycles != 0) arm_timeseries(config.sample_cycles);
}

void Machine::enroll_builtin_tracks() {
  // Per-core tracks first (core-major, field-minor): the MBM, kernel and
  // Hypersec layers enroll theirs later in construction order, so the
  // serialized track table is deterministic for a given system shape.
  // The probes read the per-core ledgers directly (always live, not
  // registry-gated) through the decoupled-fold rule: Counters fields
  // only mutate on committed charges, and cycles() folds on observe.
  for (unsigned i = 0; i < cores_.size(); ++i) {
    const CoreState* core = cores_[i].get();
    const std::string prefix = "sim.core" + std::to_string(i) + ".";
    timeseries_.enroll(prefix + "cycles", obs::TrackKind::kCounter,
                       [core] { return core->account.cycles(); });
    timeseries_.enroll(prefix + "bus_waits", obs::TrackKind::kCounter,
                       [core] { return core->account.counters().bus_waits; });
    timeseries_.enroll(
        prefix + "bus_wait_cycles", obs::TrackKind::kCounter,
        [core] { return core->account.counters().bus_wait_cycles; });
    timeseries_.enroll(
        prefix + "spin_contentions", obs::TrackKind::kCounter,
        [core] { return core->account.counters().spin_contentions; });
    timeseries_.enroll(
        prefix + "ipis_delivered", obs::TrackKind::kCounter,
        [core] { return core->account.counters().ipis_delivered; });
    timeseries_.enroll(
        prefix + "ipi_latency_cycles", obs::TrackKind::kCounter,
        [core] { return core->account.counters().ipi_latency_cycles; });
    timeseries_.enroll(
        prefix + "context_switches", obs::TrackKind::kCounter,
        [core] { return core->account.counters().context_switches; });
  }
}

void Machine::set_active_core(unsigned core) {
  assert(core < cores_.size());
  active_core_ = core;
  cur_ = cores_[core].get();
  // The span tracer reads simulated time through a bound clock pointer;
  // repoint it at the newly active core's committed counter.
  spans_.bind_clock(cur_->account.cycles_ref());
  trace_.set_active_core(static_cast<u8>(core));
  if (ipi_pending_[core] != 0) {
    ipi_pending_[core] = 0;
    ++cur_->account.counters().ipis_delivered;
    // Delivery latency in bus-order time (read-only observation, so the
    // charge stream is untouched).  Saturates at 0: the receiving core's
    // mapped clock can trail the sender's post instant.
    const Cycles now = bus_order_now();
    const Cycles posted = ipi_post_time_[core];
    cur_->account.counters().ipi_latency_cycles +=
        now > posted ? now - posted : 0;
    ipi_post_time_[core] = 0;
    cur_->gic.raise(kIrqIpi);
  }
}

void Machine::post_ipi(unsigned target) {
  assert(target < cores_.size());
  cur_->account.charge(config_.timing.ipi_send);
  ++cur_->account.counters().ipis_sent;
  if (target == active_core_) {
    ++cur_->account.counters().ipis_delivered;
    cur_->gic.raise(kIrqIpi);
    return;
  }
  // Latch the post instant once per pending latch: coalesced re-posts
  // keep the first (the interrupt the target eventually takes is the
  // first one's).
  if (ipi_pending_[target] == 0) ipi_post_time_[target] = bus_order_now();
  ipi_pending_[target] = 1;
}

void Machine::tlb_shootdown_va(VirtAddr va) {
  cur_->mmu.tlb().flush_va(va);
  if (cores_.size() > 1) {
    // Remote invalidation is immediate (the DVM message); the IPI models
    // the shootdown-completion interrupt the remote core takes.  Bumping
    // the remote TLB generation also kills its inline translation cache
    // through the generation guard.
    for (unsigned c = 0; c < cores_.size(); ++c) {
      if (c == active_core_) continue;
      cores_[c]->mmu.tlb().flush_va(va);
      post_ipi(c);
    }
  }
}

void Machine::tlb_shootdown_all() {
  cur_->mmu.tlb().flush_all();
  if (cores_.size() > 1) {
    for (unsigned c = 0; c < cores_.size(); ++c) {
      if (c == active_core_) continue;
      cores_[c]->mmu.tlb().flush_all();
      post_ipi(c);
    }
  }
}

void Machine::install_el1_irq_handler(ExceptionModel::IrqHandler h) {
  for (auto& c : cores_) c->exceptions.set_el1_irq_handler(h);
}

void Machine::install_el2_irq_handler(ExceptionModel::IrqHandler h) {
  for (auto& c : cores_) c->exceptions.set_el2_irq_handler(h);
}

void Machine::install_hypercall_handler(ExceptionModel::HypercallHandler h) {
  for (auto& c : cores_) c->exceptions.set_hypercall_handler(h);
}

void Machine::install_sysreg_trap_handler(ExceptionModel::SysregTrapHandler h) {
  for (auto& c : cores_) c->exceptions.set_sysreg_trap_handler(h);
}

WalkContext Machine::build_walk_context() const {
  // TTBR0_EL1 carries the ASID in bits [63:48] (TCR.A1 == 0 convention),
  // so an address-space switch is a single system-register write — and
  // thus a single TVM trap under Hypernel (§5.2.2).
  const u64 ttbr0 = cur_->sysregs.get(SysReg::TTBR0_EL1);
  WalkContext ctx;
  ctx.ttbr0 = ttbr0 & 0x0000'FFFF'FFFF'FFFFull;
  ctx.ttbr1 = cur_->sysregs.get(SysReg::TTBR1_EL1) & 0x0000'FFFF'FFFF'FFFFull;
  ctx.asid = static_cast<u16>(ttbr0 >> 48);
  ctx.stage2_enabled = cur_->sysregs.hcr_bit(kHcrVm);
  ctx.vttbr = cur_->sysregs.get(SysReg::VTTBR_EL2);
  return ctx;
}

WalkContext Machine::walk_context() const {
  if (!fast_path_) {
    obs_walk_ctx_rebuilds_.add();
    return build_walk_context();
  }
  const u64 gen = cur_->sysregs.vm_generation();
  if (cur_->walk_ctx_gen != gen) {
    cur_->walk_ctx = build_walk_context();
    cur_->walk_ctx_gen = gen;
    obs_walk_ctx_rebuilds_.add();
  } else {
    obs_walk_ctx_cached_.add();
  }
  return cur_->walk_ctx;
}

Cycles Machine::bus_timestamp() {
  Cycles now = cur_->account.cycles();
  if (cores_.size() > 1) {
    // Deterministic round-robin slot model: a different core issuing into
    // a still-draining slot waits for the remainder — but only when the
    // collision is temporally close, so cores running disjoint phases of
    // simulated time don't charge phantom waits against each other.
    if (active_core_ != last_bus_core_ && now < bus_busy_until_) {
      const Cycles wait = bus_busy_until_ - now;
      if (wait <= config_.timing.bus_contention_window) {
        cur_->account.charge(wait);
        ++cur_->account.counters().bus_waits;
        cur_->account.counters().bus_wait_cycles += wait;
        now = cur_->account.cycles();
      }
    }
    last_bus_core_ = static_cast<u8>(active_core_);
    bus_busy_until_ = now + config_.timing.bus_slot;
    // Bus-order time.  Per-core clocks drift apart, so the shared bus
    // clock is kept monotonic — but a plain clamp would freeze it while a
    // trailing core issues (every write stamped identically, so the MBM's
    // FIFO never drains and spuriously overflows).  Instead the clock
    // advances by the issuing core's local progress since its own last
    // issue: bursts and gaps in the trailing core's write stream keep
    // their local spacing in bus time, exactly as they would on a single
    // core.
    const Cycles delta =
        cur_->last_bus_local != 0 && now > cur_->last_bus_local
            ? now - cur_->last_bus_local
            : 0;
    cur_->last_bus_local = now;
    if (now < bus_last_timestamp_) now = bus_last_timestamp_ + delta;
  }
  // Identity on a single core: the one clock is the bus clock.
  bus_last_timestamp_ = now;
  // Time-series poll site: every bus transaction observes the clock
  // already, so sampling here is free of extra folds.  Never poll inside
  // perform() — the exact and fast-path modes batch physical accesses
  // differently, while every mode funnels word bus traffic through here.
  if (timeseries_.armed()) [[unlikely]] timeseries_.poll(now);
  return now;
}

u64 Machine::perform(PhysAddr pa, const PageAttrs& attrs, bool is_write,
                     u64 value) {
  if (is_write) {
    ++cur_->account.counters().mem_writes;
  } else {
    ++cur_->account.counters().mem_reads;
  }

  const bool cacheable =
      attrs.attr == MemAttr::kNormalCacheable && cur_->cache.config().enabled;
  if (cacheable) {
    cur_->cache.access(pa, is_write);
    if (is_write) {
      phys_.write64(pa, value);
      return value;
    }
    return phys_.read64(pa);
  }

  // Non-cacheable / device: the word access reaches the bus and is
  // therefore visible to the MBM snooper.
  cur_->account.charge(config_.timing.noncacheable_access);
  ++cur_->account.counters().noncacheable_accesses;
  BusTransaction txn;
  txn.paddr = word_align_down(pa);
  txn.core = static_cast<u8>(active_core_);
  txn.timestamp = bus_timestamp();
  if (is_write) {
    phys_.write64(pa, value);
    txn.op = BusOp::kWriteWord;
    txn.value = value;
    txn.trace_seq =
        trace_.record(txn.timestamp, TraceKind::kBusWrite, txn.paddr, value);
    bus_.issue(txn);
    return value;
  }
  const u64 r = phys_.read64(pa);
  txn.op = BusOp::kReadWord;
  txn.value = r;
  bus_.issue(txn);
  return r;
}

Access64 Machine::access64(VirtAddr va, bool is_write, u64 value, bool user) {
  assert(is_word_aligned(va));
  AccessType at;
  at.is_write = is_write;
  at.is_user = user;

  // A stage-2 fault handler may fix the tables and ask for a retry; bound
  // the loop so a broken handler cannot livelock the simulation.
  for (int attempt = 0; attempt < 8; ++attempt) {
    // Inline translation cache: replay the exact TLB-hit path of
    // Mmu::translate (which charges no cycles) without the walk-context
    // rebuild check or the indexed TLB probe.  Valid only while the TLB
    // and the translation regime are untouched — the generation guards
    // guarantee the reference-mode lookup would hit the very same entry.
    TranslateOutcome out;
    bool translated = false;
    const VirtAddr vpage = page_align_down(va);
    ItcEntry& slot = cur_->itc[(vpage >> kPageShift) & (kItcEntries - 1)];
    if (fast_path_ && slot.vpage == vpage &&
        slot.vm_gen == cur_->sysregs.vm_generation() &&
        slot.tlb_gen == cur_->mmu.tlb().generation()) {
      cur_->mmu.note_itc_hit();
      if (!Mmu::permission_ok(slot.attrs, at)) {
        out = TranslateOutcome::fail(
            Fault{FaultType::kPermission, 3, va, 0, is_write});
      } else if (is_write && !slot.s2_write_ok) {
        ++cur_->account.counters().s2_permission_faults;
        const IpaAddr ipa = slot.ppage + (va & kPageMask);
        out = TranslateOutcome::fail(
            Fault{FaultType::kS2Permission, 3, va, ipa, true});
      } else {
        Translation t;
        t.pa = slot.ppage + (va & kPageMask);
        t.attrs = slot.attrs;
        t.s2_write_ok = slot.s2_write_ok;
        out = TranslateOutcome::success(t);
      }
      translated = true;
    }
    if (!translated) {
      obs::SelfProfiler::Scope prof(profiler_, obs::ProfileBucket::kTranslate);
      const WalkContext ctx = walk_context();
      out = cur_->mmu.translate(va, at, ctx);
      if (fast_path_ && out.ok) {
        // Fill after the translate so the recorded generations cover any
        // TLB insert the walk just performed.
        slot.vpage = vpage;
        slot.ppage = page_align_down(out.t.pa);
        slot.attrs = out.t.attrs;
        slot.s2_write_ok = out.t.s2_write_ok;
        slot.tlb_gen = cur_->mmu.tlb().generation();
        slot.vm_gen = cur_->sysregs.vm_generation();
      }
    }
    if (out.ok) {
      Access64 r;
      r.ok = true;
      r.value = perform(out.t.pa, out.t.attrs, is_write, value);
      return r;
    }

    switch (out.fault.type) {
      case FaultType::kS2Translation:
      case FaultType::kS2Permission: {
        if (!s2_handler_) {
          Access64 r;
          r.fault = out.fault;
          return r;
        }
        trace_.record(bus_order_now(), TraceKind::kS2Fault,
                      out.fault.ipa, is_write ? 1 : 0);
        obs_s2_fault_exits_.add();
        cur_->account.charge(config_.timing.vm_exit);
        ++cur_->account.counters().vm_exits;
        const S2FaultAction action = s2_handler_(out.fault, is_write, value);
        cur_->account.charge(config_.timing.vm_entry);
        if (action == S2FaultAction::kRetry) continue;
        Access64 r;
        if (action == S2FaultAction::kEmulated) {
          r.ok = true;
          r.value = value;
        } else {
          r.fault = out.fault;
        }
        return r;
      }
      case FaultType::kPermission: {
        trace_.record(bus_order_now(), TraceKind::kEl1Fault, va, 0);
        ++cur_->account.counters().el1_permission_faults;
        if (el1_handler_) el1_handler_(out.fault);
        Access64 r;
        r.fault = out.fault;
        return r;
      }
      case FaultType::kTranslation: {
        // Left to the caller: the kernel's page-fault path decides whether
        // to populate the mapping and retry.
        Access64 r;
        r.fault = out.fault;
        return r;
      }
    }
  }
  Access64 r;
  r.fault = Fault{FaultType::kTranslation, 0, va, 0, is_write};
  return r;
}

Access64 Machine::read64(VirtAddr va, bool user) {
  return access64(va, /*is_write=*/false, 0, user);
}

Access64 Machine::write64(VirtAddr va, u64 value, bool user) {
  return access64(va, /*is_write=*/true, value, user);
}

bool Machine::read_block_v(VirtAddr va, void* out, u64 len, bool user) {
  assert(is_word_aligned(va) && len % kWordSize == 0);
  auto* p = static_cast<u8*>(out);
  for (u64 off = 0; off < len; off += kWordSize) {
    const Access64 r = read64(va + off, user);
    if (!r.ok) return false;
    std::memcpy(p + off, &r.value, kWordSize);
  }
  return true;
}

bool Machine::write_block_v(VirtAddr va, const void* data, u64 len, bool user) {
  assert(is_word_aligned(va) && len % kWordSize == 0);
  const auto* p = static_cast<const u8*>(data);
  for (u64 off = 0; off < len; off += kWordSize) {
    u64 v;
    std::memcpy(&v, p + off, kWordSize);
    if (!write64(va + off, v, user).ok) return false;
  }
  return true;
}

bool Machine::write_block_bulk(VirtAddr va, const void* data, u64 len,
                               bool user) {
  obs::SelfProfiler::Scope prof(profiler_, obs::ProfileBucket::kMemory);
  assert(is_word_aligned(va) && len % kWordSize == 0);
  const auto* p = static_cast<const u8*>(data);
  u64 off = 0;
  while (off < len) {
    const VirtAddr page_va = page_align_down(va + off);
    const u64 chunk = std::min(len - off, page_va + kPageSize - (va + off));
    AccessType at;
    at.is_write = true;
    at.is_user = user;
    const WalkContext ctx = walk_context();
    const TranslateOutcome out = cur_->mmu.translate(va + off, at, ctx);
    if (!out.ok) {
      // Fall back to the exact path so fault handling (stage-2 fills, COW)
      // behaves identically to single-word accesses.
      u64 first;
      std::memcpy(&first, p + off, kWordSize);
      if (!write64(va + off, first, user).ok) return false;
      obs_bulk_exact_words_.add();
      off += kWordSize;
      continue;
    }
    obs_bulk_chunks_.add();
    const PhysAddr pa = out.t.pa;
    if (out.t.attrs.attr == MemAttr::kNormalCacheable &&
        cur_->cache.config().enabled) {
      // Walk whole cache lines by absolute address: lines fully covered by
      // the span use streaming allocation (no fetch-on-write); ragged
      // edges behave as ordinary write-allocate accesses.
      const PhysAddr first_line = pa & ~(kCacheLineSize - 1);
      for (PhysAddr line = first_line; line < pa + chunk;
           line += kCacheLineSize) {
        const bool full_line =
            line >= pa && line + kCacheLineSize <= pa + chunk;
        if (full_line) {
          cur_->cache.write_alloc_line(line);
        } else {
          cur_->cache.access(line, /*is_write=*/true);
        }
      }
      const u64 words = chunk / kWordSize;
      cur_->account.charge_batch(config_.timing.l1_hit,
                                 words - chunk / kCacheLineSize);
      cur_->account.counters().mem_writes += words;
      phys_.write_block(pa, p + off, chunk);
    } else {
      // Non-cacheable / device page.  The reference path issues write64
      // per word: each one re-reads the walk context, hits the TLB entry
      // the bulk translate above guaranteed, and reaches the bus.  The
      // charge-replay fast path performs the identical per-word charges,
      // counter increments and bus transactions without re-translating.
      // A bus snooper can react to a write (MBM detection -> IRQ ->
      // handler code running charged accesses); if that disturbs the TLB
      // or the translation regime, the guaranteed-hit assumption dies, so
      // the generation guard drops the rest of the chunk back onto the
      // exact path.
      u64 w = 0;
      if (fast_path_) {
        const u64 tlb_gen = cur_->mmu.tlb().generation();
        const u64 vm_gen = cur_->sysregs.vm_generation();
        for (; w < chunk; w += kWordSize) {
          ++cur_->account.counters().tlb_hits;
          u64 v;
          std::memcpy(&v, p + off + w, kWordSize);
          ++cur_->account.counters().mem_writes;
          cur_->account.charge(config_.timing.noncacheable_access);
          ++cur_->account.counters().noncacheable_accesses;
          BusTransaction txn;
          txn.paddr = word_align_down(pa + w);
          txn.core = static_cast<u8>(active_core_);
          txn.timestamp = bus_timestamp();
          phys_.write64(pa + w, v);
          txn.op = BusOp::kWriteWord;
          txn.value = v;
          // Same provenance stamp as the exact path in perform(): the
          // fast-path replay must leave a byte-identical trace.
          txn.trace_seq =
              trace_.record(txn.timestamp, TraceKind::kBusWrite, txn.paddr, v);
          bus_.issue(txn);
          if (cur_->mmu.tlb().generation() != tlb_gen ||
              cur_->sysregs.vm_generation() != vm_gen) {
            w += kWordSize;
            break;
          }
        }
        obs_bulk_replay_words_.add(w / kWordSize);
        if (w < chunk) obs_bulk_guard_trips_.add();
      }
      if (w < chunk) obs_bulk_exact_words_.add((chunk - w) / kWordSize);
      for (; w < chunk; w += kWordSize) {
        u64 v;
        std::memcpy(&v, p + off + w, kWordSize);
        if (!write64(va + off + w, v, user).ok) return false;
      }
    }
    off += chunk;
  }
  return true;
}

bool Machine::read_block_bulk(VirtAddr va, void* out_buf, u64 len, bool user) {
  obs::SelfProfiler::Scope prof(profiler_, obs::ProfileBucket::kMemory);
  assert(is_word_aligned(va) && len % kWordSize == 0);
  auto* p = static_cast<u8*>(out_buf);
  u64 off = 0;
  while (off < len) {
    const VirtAddr page_va = page_align_down(va + off);
    const u64 chunk = std::min(len - off, page_va + kPageSize - (va + off));
    AccessType at;
    at.is_user = user;
    const WalkContext ctx = walk_context();
    const TranslateOutcome out = cur_->mmu.translate(va + off, at, ctx);
    if (!out.ok) {
      const Access64 r = read64(va + off, user);
      if (!r.ok) return false;
      std::memcpy(p + off, &r.value, kWordSize);
      obs_bulk_exact_words_.add();
      off += kWordSize;
      continue;
    }
    obs_bulk_chunks_.add();
    const PhysAddr pa = out.t.pa;
    if (out.t.attrs.attr == MemAttr::kNormalCacheable &&
        cur_->cache.config().enabled) {
      for (u64 line = 0; line < chunk; line += kCacheLineSize) {
        cur_->cache.access(pa + line, /*is_write=*/false);
      }
      const u64 words = chunk / kWordSize;
      cur_->account.charge_batch(config_.timing.l1_hit,
                                 words - chunk / kCacheLineSize);
      cur_->account.counters().mem_reads += words;
      phys_.read_block(pa, p + off, chunk);
    } else {
      // Charge-replay of the per-word read64 path (see write_block_bulk).
      // Read transactions carry no MBM side effects, but the generation
      // guard is kept anyway: it is two integer compares, and it makes the
      // replay's correctness independent of what snoopers do.
      u64 w = 0;
      if (fast_path_) {
        const u64 tlb_gen = cur_->mmu.tlb().generation();
        const u64 vm_gen = cur_->sysregs.vm_generation();
        for (; w < chunk; w += kWordSize) {
          ++cur_->account.counters().tlb_hits;
          ++cur_->account.counters().mem_reads;
          cur_->account.charge(config_.timing.noncacheable_access);
          ++cur_->account.counters().noncacheable_accesses;
          BusTransaction txn;
          txn.paddr = word_align_down(pa + w);
          txn.core = static_cast<u8>(active_core_);
          txn.timestamp = bus_timestamp();
          const u64 r = phys_.read64(pa + w);
          txn.op = BusOp::kReadWord;
          txn.value = r;
          bus_.issue(txn);
          std::memcpy(p + off + w, &r, kWordSize);
          if (cur_->mmu.tlb().generation() != tlb_gen ||
              cur_->sysregs.vm_generation() != vm_gen) {
            w += kWordSize;
            break;
          }
        }
        obs_bulk_replay_words_.add(w / kWordSize);
        if (w < chunk) obs_bulk_guard_trips_.add();
      }
      if (w < chunk) obs_bulk_exact_words_.add((chunk - w) / kWordSize);
      for (; w < chunk; w += kWordSize) {
        const Access64 r = read64(va + off + w, user);
        if (!r.ok) return false;
        std::memcpy(p + off + w, &r.value, kWordSize);
      }
    }
    off += chunk;
  }
  return true;
}

TranslateOutcome Machine::probe(VirtAddr va, const AccessType& access) {
  return cur_->mmu.translate(va, access, walk_context());
}

u64 Machine::el2_read64(PhysAddr pa) {
  ++cur_->account.counters().mem_reads;
  if (cur_->cache.config().enabled) {
    cur_->cache.access(pa, /*is_write=*/false);
  } else {
    cur_->account.charge(config_.timing.noncacheable_access);
    ++cur_->account.counters().noncacheable_accesses;
  }
  return phys_.read64(pa);
}

void Machine::el2_write64(PhysAddr pa, u64 value) {
  ++cur_->account.counters().mem_writes;
  if (cur_->cache.config().enabled) {
    cur_->cache.access(pa, /*is_write=*/true);
  } else {
    cur_->account.charge(config_.timing.noncacheable_access);
    ++cur_->account.counters().noncacheable_accesses;
  }
  phys_.write64(pa, value);
}

void Machine::el2_write64_nc(PhysAddr pa, u64 value) {
  ++cur_->account.counters().mem_writes;
  cur_->account.charge(config_.timing.noncacheable_access);
  ++cur_->account.counters().noncacheable_accesses;
  // The line must not linger dirty in any core's cache, or the bus write
  // below could later be shadowed by a stale write-back.
  cur_->cache.flush_line(pa);
  if (cores_.size() > 1) {
    for (unsigned c = 0; c < cores_.size(); ++c) {
      if (c != active_core_) cores_[c]->cache.flush_line(pa);
    }
  }
  phys_.write64(pa, value);
  BusTransaction txn;
  txn.op = BusOp::kWriteWord;
  txn.paddr = word_align_down(pa);
  txn.value = value;
  txn.core = static_cast<u8>(active_core_);
  txn.timestamp = bus_timestamp();
  txn.trace_seq =
      trace_.record(txn.timestamp, TraceKind::kBusWrite, txn.paddr, value);
  bus_.issue(txn);
}

void Machine::el2_read_block(PhysAddr pa, void* out, u64 len) {
  for (u64 off = 0; off < len; off += kCacheLineSize) {
    if (cur_->cache.config().enabled) {
      cur_->cache.access(pa + off, /*is_write=*/false);
    } else {
      cur_->account.charge(config_.timing.noncacheable_access);
      ++cur_->account.counters().noncacheable_accesses;
    }
  }
  cur_->account.counters().mem_reads += (len + kWordSize - 1) / kWordSize;
  phys_.read_block(pa, out, len);
}

void Machine::el2_write_block(PhysAddr pa, const void* data, u64 len) {
  for (u64 off = 0; off < len; off += kCacheLineSize) {
    if (cur_->cache.config().enabled) {
      cur_->cache.access(pa + off, /*is_write=*/true);
    } else {
      cur_->account.charge(config_.timing.noncacheable_access);
      ++cur_->account.counters().noncacheable_accesses;
    }
  }
  cur_->account.counters().mem_writes += (len + kWordSize - 1) / kWordSize;
  phys_.write_block(pa, data, len);
}

void Machine::dma_write_block(PhysAddr pa, const void* data, u64 len) {
  for (auto& c : cores_) c->cache.flush_range(pa, len);
  phys_.write_block(pa, data, len);
}

void Machine::dma_read_block(PhysAddr pa, void* out, u64 len) {
  for (auto& c : cores_) c->cache.flush_range(pa, len);
  phys_.read_block(pa, out, len);
}

u64 Machine::hvc(u64 func, std::initializer_list<u64> args) {
  obs::SelfProfiler::Scope prof(profiler_, obs::ProfileBucket::kDispatch);
  // The hypercall ABI passes at most a few words in registers
  // (hvc_abi.h); marshal them on the stack instead of allocating a
  // std::vector per call — hypercalls are a hot path under Hypernel.
  std::array<u64, 8> regs;
  assert(args.size() <= regs.size());
  std::copy(args.begin(), args.end(), regs.begin());
  return cur_->exceptions.hvc(func,
                              std::span<const u64>(regs.data(), args.size()));
}

// --- Snapshot support --------------------------------------------------------

namespace {

void save_counters(SnapWriter& w, const Counters& c) {
  w.put_u64(c.mem_reads);
  w.put_u64(c.mem_writes);
  w.put_u64(c.l1_hits);
  w.put_u64(c.l1_misses);
  w.put_u64(c.l1_stream_allocs);
  w.put_u64(c.dirty_writebacks);
  w.put_u64(c.noncacheable_accesses);
  w.put_u64(c.tlb_hits);
  w.put_u64(c.tlb_misses);
  w.put_u64(c.pt_descriptor_fetches);
  w.put_u64(c.s2_descriptor_fetches);
  w.put_u64(c.svc_calls);
  w.put_u64(c.hvc_calls);
  w.put_u64(c.sysreg_traps);
  w.put_u64(c.irqs_delivered);
  w.put_u64(c.vm_exits);
  w.put_u64(c.s2_translation_faults);
  w.put_u64(c.s2_permission_faults);
  w.put_u64(c.el1_permission_faults);
  w.put_u64(c.context_switches);
  w.put_u64(c.ipis_sent);
  w.put_u64(c.ipis_delivered);
  w.put_u64(c.bus_waits);
  w.put_u64(c.bus_wait_cycles);
  w.put_u64(c.spin_contentions);
  w.put_u64(c.ipi_latency_cycles);
}

void restore_counters(SnapReader& r, Counters& c) {
  c.mem_reads = r.get_u64();
  c.mem_writes = r.get_u64();
  c.l1_hits = r.get_u64();
  c.l1_misses = r.get_u64();
  c.l1_stream_allocs = r.get_u64();
  c.dirty_writebacks = r.get_u64();
  c.noncacheable_accesses = r.get_u64();
  c.tlb_hits = r.get_u64();
  c.tlb_misses = r.get_u64();
  c.pt_descriptor_fetches = r.get_u64();
  c.s2_descriptor_fetches = r.get_u64();
  c.svc_calls = r.get_u64();
  c.hvc_calls = r.get_u64();
  c.sysreg_traps = r.get_u64();
  c.irqs_delivered = r.get_u64();
  c.vm_exits = r.get_u64();
  c.s2_translation_faults = r.get_u64();
  c.s2_permission_faults = r.get_u64();
  c.el1_permission_faults = r.get_u64();
  c.context_switches = r.get_u64();
  c.ipis_sent = r.get_u64();
  c.ipis_delivered = r.get_u64();
  c.bus_waits = r.get_u64();
  c.bus_wait_cycles = r.get_u64();
  c.spin_contentions = r.get_u64();
  c.ipi_latency_cycles = r.get_u64();
}

}  // namespace

void Machine::save_state(SnapWriter& w) const {
  // Per-core architectural state first (count-prefixed so a restore into
  // a machine of a different shape fails loudly), then the shared
  // bus/arbiter/IPI state and the flight-recorder ring.
  w.put_u32(static_cast<u32>(cores_.size()));
  for (const auto& core : cores_) {
    // System registers, raw, plus the vm generation so the restored
    // machine reproduces subsequent generation values bit-exactly.
    w.put_u32(SysRegs::kRegCount);
    for (unsigned i = 0; i < SysRegs::kRegCount; ++i) {
      w.put_u64(core->sysregs.raw(i));
    }
    w.put_u64(core->sysregs.vm_generation());
    core->mmu.tlb().save_state(w);
    core->cache.save_state(w);
    w.put_u64(core->account.cycles());
    save_counters(w, core->account.counters());
    core->gic.save_state(w);
    w.put_u8(static_cast<u8>(core->exceptions.current_el()));
    w.put_u64(core->last_bus_local);
  }
  w.put_u64(bus_.transaction_count());
  w.put_bool(guest_mode_);
  w.put_u8(last_bus_core_);
  w.put_u64(bus_busy_until_);
  w.put_u64(bus_last_timestamp_);
  for (const u8 pending : ipi_pending_) w.put_u8(pending);
  for (const Cycles posted : ipi_post_time_) w.put_u64(posted);
  w.put_u8(static_cast<u8>(active_core_));
  // Flight-recorder ring: the events it holds, plus drop/sequence
  // accounting.  The enabled flag is host-side policy and not saved.
  const std::vector<TraceEvent> events = trace_.chronological();
  w.put_u64(events.size());
  for (const TraceEvent& e : events) {
    w.put_u64(e.at);
    w.put_u64(e.seq);
    w.put_u64(e.cause);
    w.put_u8(static_cast<u8>(e.kind));
    w.put_u64(e.a);
    w.put_u64(e.b);
    w.put_u8(e.core);
  }
  w.put_u64(trace_.dropped());
  w.put_u64(trace_.sequence());
}

void Machine::restore_state(SnapReader& r) {
  r.section("machine");
  const u32 ncores = r.get_u32();
  if (r.ok() && ncores != cores_.size()) {
    r.fail("core count " + std::to_string(ncores) +
           " does not match this machine");
    return;
  }
  for (auto& core : cores_) {
    r.section("machine");
    const u32 nregs = r.get_u32();
    if (r.ok() && nregs != SysRegs::kRegCount) {
      r.fail("system register count " + std::to_string(nregs) +
             " does not match this build");
      return;
    }
    for (unsigned i = 0; i < SysRegs::kRegCount; ++i) {
      core->sysregs.restore_raw(i, r.get_u64());
    }
    core->sysregs.restore_vm_generation(r.get_u64());
    core->mmu.tlb().restore_state(r);
    core->cache.restore_state(r);
    r.section("machine");
    const Cycles cycles = r.get_u64();
    core->account.reset();
    core->account.charge(cycles);
    restore_counters(r, core->account.counters());
    core->gic.restore_state(r);
    r.section("machine");
    core->exceptions.restore_el(static_cast<El>(r.get_u8()));
    core->last_bus_local = r.get_u64();
  }
  bus_.restore_transaction_count(r.get_u64());
  guest_mode_ = r.get_bool();
  last_bus_core_ = r.get_u8();
  bus_busy_until_ = r.get_u64();
  bus_last_timestamp_ = r.get_u64();
  for (u8& pending : ipi_pending_) pending = r.get_u8();
  for (Cycles& posted : ipi_post_time_) posted = r.get_u64();
  const unsigned active = r.get_u8();
  if (r.ok() && active >= cores_.size()) {
    r.fail("active core " + std::to_string(active) + " out of range");
    return;
  }
  const u64 nevents = r.get_count("trace event");
  std::vector<TraceEvent> events;
  events.reserve(r.ok() ? nevents : 0);
  for (u64 i = 0; r.ok() && i < nevents; ++i) {
    TraceEvent e;
    e.at = r.get_u64();
    e.seq = r.get_u64();
    e.cause = r.get_u64();
    e.kind = static_cast<TraceKind>(r.get_u8());
    e.a = r.get_u64();
    e.b = r.get_u64();
    e.core = r.get_u8();
    events.push_back(e);
  }
  const u64 dropped = r.get_u64();
  const u64 seq = r.get_u64();
  if (!r.ok()) return;
  trace_.restore_ring(std::move(events), dropped, seq);
  // Re-activate the saved core *without* IPI delivery: latched IPIs must
  // stay latched across a snapshot so a restored run delivers them at the
  // same future core switch the original run would have.
  active_core_ = active;
  cur_ = cores_[active].get();
  spans_.bind_clock(cur_->account.cycles_ref());
  trace_.set_active_core(static_cast<u8>(active));
  for (auto& core : cores_) {
    // Drop the cached walk context through the existing invalidation
    // mechanism (DESIGN.md §9): 0 never matches a live vm generation, so
    // the next walk rebuilds from the restored registers.  Same-boot
    // restores would otherwise see a matching generation over stale
    // cached state.
    core->walk_ctx_gen = 0;
    // Same hazard for the inline translation cache: the restored TLB
    // generation may numerically match a fill-time generation over
    // entirely different TLB contents.
    core->itc_drop();
  }
  // Host-side observability is not part of the snapshot: restart it.
  // Time-series samples drop too (enrollment survives, sampling disarms);
  // sampling runs re-arm after the restore, and delta-encoded counter
  // tracks make the re-primed stream identical to a fresh-boot one.
  obs_.reset_values();
  spans_.clear();
  timeseries_.clear_samples();
}

}  // namespace hn::sim
