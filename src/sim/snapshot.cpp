#include "sim/snapshot.h"

#include <cstdio>

namespace hn::sim {

namespace {

// FNV-1a over a byte range, used as the file's trailing integrity check.
// Mirrors the fingerprint fold constants (hypernel/fingerprint.h) without
// depending on the hypernel layer.
constexpr u64 kFnvOffset = 1469598103934665603ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 fnv_bytes(u64 h, const u8* data, u64 len) {
  for (u64 i = 0; i < len; ++i) {
    h = (h ^ data[i]) * kFnvPrime;
  }
  return h;
}

}  // namespace

std::vector<u8> pack_snapshot(const Snapshot& snap) {
  const u64 total_pages = snap.pages.page_count();
  const u64 populated = snap.pages.populated_count();

  SnapWriter w;
  for (const char c : kSnapshotMagic) w.put_u8(static_cast<u8>(c));
  w.put_u32(kSnapshotFormatVersion);
  w.put_u32(0);  // reserved
  w.put_u64(snap.config_digest);
  w.put_u64(snap.save_seq);
  w.put_u64(snap.state.size());
  w.put_bytes(snap.state.data(), snap.state.size());
  w.put_u64(kPageSize);
  w.put_u64(total_pages);
  w.put_u64(populated);
  for (u64 i = 0; i < total_pages; ++i) {
    const u8* bytes = snap.pages.page_data(i);
    if (bytes == nullptr) continue;  // zero pages stay implicit
    w.put_u64(i);
    w.put_bytes(bytes, kPageSize);
  }
  std::vector<u8> out = w.take();
  u64 checksum = fnv_bytes(kFnvOffset, out.data(), out.size());
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(checksum >> (8 * i)));
  return out;
}

Status unpack_snapshot(const std::vector<u8>& blob, Snapshot& out) {
  if (blob.size() < 8 ||
      std::memcmp(blob.data(), kSnapshotMagic, 8) != 0) {
    return Status::Invalid("snapshot: bad magic (not a HNSNAP file)");
  }
  if (blob.size() < 8 + 8) {
    return Status::Invalid("snapshot: truncated header");
  }
  // Verify the trailing checksum before trusting any field.
  u64 stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<u64>(blob[blob.size() - 8 + i]) << (8 * i);
  }
  const u64 computed = fnv_bytes(kFnvOffset, blob.data(), blob.size() - 8);
  if (stored != computed) {
    return Status::Invalid("snapshot: checksum mismatch (corrupt file)");
  }

  SnapReader r(blob);
  u8 magic[8];
  r.get_bytes(magic, 8);
  const u32 version = r.get_u32();
  if (r.ok() && version != kSnapshotFormatVersion) {
    return Status::Invalid("snapshot: unsupported format version " +
                           std::to_string(version));
  }
  r.get_u32();  // reserved
  out.config_digest = r.get_u64();
  out.save_seq = r.get_u64();
  const u64 state_size = r.get_count("state");
  out.state.assign(state_size, 0);
  r.get_bytes(out.state.data(), state_size);

  r.section("page table");
  const u64 page_size = r.get_u64();
  if (r.ok() && page_size != kPageSize) {
    return Status::Invalid("snapshot: page size " + std::to_string(page_size) +
                           " does not match the simulated granule");
  }
  const u64 total_pages = r.get_u64();
  const u64 populated = r.get_u64();
  if (!r.ok()) return r.status();
  if (populated > total_pages ||
      populated * (8 + kPageSize) > r.remaining()) {
    return Status::Invalid("snapshot: truncated page table");
  }
  out.pages.reset(total_pages);
  u64 prev_index = 0;
  for (u64 i = 0; i < populated; ++i) {
    const u64 index = r.get_u64();
    if (index >= total_pages || (i > 0 && index <= prev_index)) {
      return Status::Invalid("snapshot: page table index " +
                             std::to_string(index) +
                             " out of order or out of range");
    }
    u8 bytes[kPageSize];
    r.get_bytes(bytes, kPageSize);
    if (!r.ok()) return r.status();
    out.pages.set_page(index, bytes);
    prev_index = index;
  }
  if (r.remaining() != 8) {  // exactly the checksum must remain
    return Status::Invalid("snapshot: trailing bytes after page table");
  }
  return Status::Ok();
}

bool write_snapshot_file(const std::vector<u8>& blob, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      blob.empty() ||
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  return std::fclose(f) == 0 && ok;
}

bool read_snapshot_file(const std::string& path, std::vector<u8>& blob) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  blob.clear();
  u8 buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace hn::sim
