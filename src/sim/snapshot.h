// Machine-snapshot persistence: full serialize/restore of machine +
// kernel state with a versioned binary format (v1, following the
// trace_io idiom), plus the in-memory copy-on-write fork path
// (DESIGN.md §12).
//
// A Snapshot has two parts:
//
//   * `state` — a flat little-endian blob every software/hardware layer
//     appends its architectural state to via SnapWriter, and restores
//     from via SnapReader (each layer owns a `save_state`/`restore_state`
//     pair; hypernel::System orchestrates the fixed layer order);
//   * `pages` — a PhysicalMemory::PageSet sharing the DRAM contents
//     copy-on-write, so taking or restoring a snapshot never copies the
//     64–128 MiB of simulated RAM.
//
// Restores target a *live* system of the identical configuration
// (validated by a config digest): component objects, handler wiring and
// host-side caches persist; only architectural state is replaced.  The
// file form (pack/unpack) adds a magic/version header, a sparse populated-
// page table and a trailing FNV checksum, and the parser rejects corrupt
// blobs with precise diagnostics exactly like parse_trace.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/phys_mem.h"

namespace hn::sim {

/// Binary snapshot format version.  Bump on any layout change; the parser
/// rejects versions it does not understand.  v2: SMP (per-core machine
/// sections, bus arbiter + pending-IPI state, per-event core provenance,
/// per-core kernel scheduler state).
inline constexpr u32 kSnapshotFormatVersion = 2;

/// 8-byte file magic: "HNSNAP\0\0".
inline constexpr char kSnapshotMagic[8] = {'H', 'N', 'S', 'N', 'A', 'P', 0, 0};

/// Little-endian append writer for the layered state blob.  Deterministic:
/// equal machine states produce byte-identical blobs (snapshot files can
/// be diffed and golden-tested like trace files).
class SnapWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u16(u16 v) {
    for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_f64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, 8);
    put_u64(bits);
  }
  void put_bytes(const void* src, u64 n) {
    const u8* p = static_cast<const u8*>(src);
    buf_.insert(buf_.end(), p, p + n);
  }
  void put_string(const std::string& s) {
    put_u32(static_cast<u32>(s.size()));
    put_bytes(s.data(), s.size());
  }

  [[nodiscard]] const std::vector<u8>& data() const { return buf_; }
  [[nodiscard]] std::vector<u8> take() { return std::move(buf_); }

 private:
  std::vector<u8> buf_;
};

/// Bounds-checked little-endian reader with a latched failure state, so
/// per-layer restore code reads fields linearly and checks `ok()` once.
/// The first failure records which section was being parsed; all later
/// reads return zero values without advancing.
class SnapReader {
 public:
  explicit SnapReader(const std::vector<u8>& blob) : blob_(blob) {}

  /// Name the section subsequent reads belong to (for diagnostics).
  void section(const char* name) { section_ = name; }
  /// Latch an explicit validation failure against the current section.
  void fail(const std::string& what) {
    if (!failed_) {
      failed_ = true;
      error_ = "snapshot: " + std::string(section_) + ": " + what;
    }
  }

  u8 get_u8() {
    u8 v = 0;
    take(&v, 1);
    return v;
  }
  bool get_bool() { return get_u8() != 0; }
  u16 get_u16() {
    u8 raw[2] = {};
    take(raw, 2);
    return static_cast<u16>(raw[0] | (raw[1] << 8));
  }
  u32 get_u32() {
    u8 raw[4] = {};
    take(raw, 4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(raw[i]) << (8 * i);
    return v;
  }
  u64 get_u64() {
    u8 raw[8] = {};
    take(raw, 8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(raw[i]) << (8 * i);
    return v;
  }
  double get_f64() {
    const u64 bits = get_u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  void get_bytes(void* dst, u64 n) { take(dst, n); }
  std::string get_string() {
    const u32 len = get_u32();
    if (len > remaining()) {
      fail("truncated string");
      return {};
    }
    std::string s(len, '\0');
    if (len > 0) take(s.data(), len);
    return s;
  }
  /// Element count for a container about to be read; fails (and returns 0)
  /// when even one-byte elements could not fit in the remaining bytes.
  u64 get_count(const char* what) {
    const u64 n = get_u64();
    if (n > remaining()) {
      fail(std::string("truncated ") + what + " table");
      return 0;
    }
    return n;
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] u64 remaining() const { return blob_.size() - pos_; }
  [[nodiscard]] Status status() const {
    return failed_ ? Status::Invalid(error_) : Status::Ok();
  }

 private:
  void take(void* dst, u64 n) {
    if (failed_ || pos_ + n > blob_.size()) {
      if (!failed_) fail("truncated state");
      std::memset(dst, 0, n);
      return;
    }
    std::memcpy(dst, blob_.data() + pos_, n);
    pos_ += n;
  }

  const std::vector<u8>& blob_;
  u64 pos_ = 0;
  bool failed_ = false;
  const char* section_ = "header";
  std::string error_;
};

/// A machine snapshot: the layered state blob plus the COW-shared DRAM
/// pages, tagged with the digest of the configuration it was taken from.
struct Snapshot {
  u64 config_digest = 0;
  /// Sequence id of the kSnapshot trace event recorded at save time
  /// (kNoCause when tracing was off) — the restore event's cause link.
  u64 save_seq = ~0ull;
  std::vector<u8> state;
  PhysicalMemory::PageSet pages;

  [[nodiscard]] bool empty() const { return state.empty(); }
};

/// Serialize a snapshot into the self-contained v1 file format:
/// magic, version, config digest, state blob, sparse page table
/// (populated pages only), trailing FNV-1a checksum.
[[nodiscard]] std::vector<u8> pack_snapshot(const Snapshot& snap);

/// Parse a snapshot file blob.  Returns Invalid with a precise diagnostic
/// on bad magic, unknown version, truncation, out-of-range page indices,
/// checksum mismatch or trailing bytes.
Status unpack_snapshot(const std::vector<u8>& blob, Snapshot& out);

/// Write `blob` to `path`.  Returns false on I/O failure.
bool write_snapshot_file(const std::vector<u8>& blob, const std::string& path);

/// Read `path` into `blob`.  Returns false on I/O failure.
bool read_snapshot_file(const std::string& path, std::vector<u8>& blob);

}  // namespace hn::sim
