// Flight-recorder persistence: the versioned compact binary trace format
// (DESIGN.md §11) and its parser.
//
// A trace file is a self-contained snapshot of one run's causal record:
// the trace ring (events with sequence ids and cause links), the span
// ring (named, nested cycle attributions), and enough header metadata
// (format version, clock rate, drop accounting) for offline tools to
// reconstruct timelines without the simulator.  Serialization is
// deterministic — equal machine states produce byte-identical blobs, so
// trace files can be diffed and golden-tested exactly like metrics
// snapshots (obs/export.h).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "sim/trace.h"

namespace hn::sim {

class Machine;

/// Binary trace format version.  Bump on any layout change.  v2 appends
/// the originating core to every event (SMP provenance); v3 appends a
/// length-prefixed time-series section (an embedded HNTSERIE blob,
/// obs/timeseries.h; length 0 when the run sampled nothing) after the
/// span table.  The parser still accepts v1 and v2 blobs.
inline constexpr u32 kTraceFormatVersion = 3;

/// 8-byte file magic: "HNTRACE\0".
inline constexpr char kTraceMagic[8] = {'H', 'N', 'T', 'R', 'A', 'C', 'E', 0};

/// Parsed contents of a trace file — everything offline tools need.
struct TraceData {
  u32 version = kTraceFormatVersion;
  double cpu_ghz = 0.0;       // simulated clock: cycles / (cpu_ghz*1000) = µs
  u64 seq_end = 0;            // one past the last stamped sequence id
  u64 first_seq = 0;          // oldest event the ring retained
  u64 trace_dropped = 0;      // events evicted from the trace ring
  u64 span_dropped = 0;       // spans evicted from the span ring
  std::vector<TraceEvent> events;        // chronological
  std::vector<std::string> span_names;   // indexed by SpanEvent::name_id
  std::vector<obs::SpanEvent> spans;     // completion order
  /// v3 time-series section; empty tracks = the run sampled nothing.
  obs::TimeSeriesData timeseries;
};

/// Serialize the trace ring plus (optionally) the span ring into the
/// binary format.  `spans` may be null when the caller has no tracer;
/// `timeseries` may be null (or empty) for a zero-length v3 section.
[[nodiscard]] std::vector<u8> serialize_trace(
    const Trace& trace, const obs::SpanTracer* spans, double cpu_ghz,
    const obs::TimeSeriesData* timeseries = nullptr);

/// Convenience: snapshot `machine`'s trace + spans with its clock rate.
/// When the machine's time-series sampler is armed, the sampled stream
/// embeds as the v3 section (flushed to the machine's current bus-order
/// instant), so Perfetto counter tracks ride along with the span export.
[[nodiscard]] std::vector<u8> capture_trace(Machine& machine);

/// Snapshot `machine`'s sampled time series as a standalone HNTSERIE
/// blob (the --timeseries-out artifact): stream flushed to the current
/// bus-order instant, cpu_ghz stamped from the timing model.  Empty
/// vector when the sampler was never armed.
[[nodiscard]] std::vector<u8> capture_timeseries(Machine& machine);

/// Parse a binary trace blob.  Returns Invalid with a diagnostic on bad
/// magic, unknown version, or truncation.
Status parse_trace(const std::vector<u8>& blob, TraceData& out);

/// Write `blob` to `path`.  Returns false on I/O failure.
bool write_trace_file(const std::vector<u8>& blob, const std::string& path);

/// Read `path` into `blob`.  Returns false on I/O failure.
bool read_trace_file(const std::string& path, std::vector<u8>& blob);

/// The `--trace-out=FILE` contract shared by every tool and bench
/// (symmetrical with obs::kMetricsOutUsage).
inline constexpr const char* kTraceOutUsage =
    "  --trace-out=F     write the causal flight-recorder trace to F on\n"
    "                    exit (binary; render with hypernel_trace)";

}  // namespace hn::sim
