// Cycle and event accounting for the simulated machine.
//
// Everything the evaluation section reports is derived from this ledger:
// Table 1 / Figure 6 read `cycles` (converted to microseconds), Table 2 and
// the ablations read the event counters.
#pragma once

#include "common/types.h"

namespace hn::sim {

/// Raw event counters.  Monotonic; use snapshots and Counters::delta to
/// scope a measurement window.
struct Counters {
  u64 mem_reads = 0;
  u64 mem_writes = 0;
  u64 l1_hits = 0;
  u64 l1_misses = 0;        // fill misses (DRAM fetch)
  u64 l1_stream_allocs = 0; // full-line write allocations (no fetch)
  u64 dirty_writebacks = 0;
  u64 noncacheable_accesses = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;
  u64 pt_descriptor_fetches = 0;    // stage-1 walk steps
  u64 s2_descriptor_fetches = 0;    // stage-2 walk steps (incl. nested)
  u64 svc_calls = 0;
  u64 hvc_calls = 0;
  u64 sysreg_traps = 0;
  u64 irqs_delivered = 0;
  u64 vm_exits = 0;
  u64 s2_translation_faults = 0;
  u64 s2_permission_faults = 0;
  u64 el1_permission_faults = 0;
  u64 context_switches = 0;
  // SMP (all stay 0 on single-core machines).
  u64 ipis_sent = 0;
  u64 ipis_delivered = 0;
  u64 bus_waits = 0;        // word txns that hit shared-bus contention
  u64 bus_wait_cycles = 0;  // total cycles spent in those waits
  u64 spin_contentions = 0; // spinlock acquisitions charged as contended
  u64 ipi_latency_cycles = 0;  // bus-order cycles from post to delivery

  /// Per-field difference `*this - earlier`.
  [[nodiscard]] Counters delta(const Counters& earlier) const {
    Counters d;
    d.mem_reads = mem_reads - earlier.mem_reads;
    d.mem_writes = mem_writes - earlier.mem_writes;
    d.l1_hits = l1_hits - earlier.l1_hits;
    d.l1_misses = l1_misses - earlier.l1_misses;
    d.dirty_writebacks = dirty_writebacks - earlier.dirty_writebacks;
    d.noncacheable_accesses = noncacheable_accesses - earlier.noncacheable_accesses;
    d.tlb_hits = tlb_hits - earlier.tlb_hits;
    d.tlb_misses = tlb_misses - earlier.tlb_misses;
    d.pt_descriptor_fetches = pt_descriptor_fetches - earlier.pt_descriptor_fetches;
    d.s2_descriptor_fetches = s2_descriptor_fetches - earlier.s2_descriptor_fetches;
    d.svc_calls = svc_calls - earlier.svc_calls;
    d.hvc_calls = hvc_calls - earlier.hvc_calls;
    d.sysreg_traps = sysreg_traps - earlier.sysreg_traps;
    d.irqs_delivered = irqs_delivered - earlier.irqs_delivered;
    d.vm_exits = vm_exits - earlier.vm_exits;
    d.s2_translation_faults = s2_translation_faults - earlier.s2_translation_faults;
    d.s2_permission_faults = s2_permission_faults - earlier.s2_permission_faults;
    d.el1_permission_faults = el1_permission_faults - earlier.el1_permission_faults;
    d.context_switches = context_switches - earlier.context_switches;
    d.ipis_sent = ipis_sent - earlier.ipis_sent;
    d.ipis_delivered = ipis_delivered - earlier.ipis_delivered;
    d.bus_waits = bus_waits - earlier.bus_waits;
    d.bus_wait_cycles = bus_wait_cycles - earlier.bus_wait_cycles;
    d.spin_contentions = spin_contentions - earlier.spin_contentions;
    d.ipi_latency_cycles = ipi_latency_cycles - earlier.ipi_latency_cycles;
    return d;
  }
};

/// The machine's cycle ledger.
///
/// Temporally decoupled mode (DESIGN.md §14): with a non-zero quantum the
/// core runs ahead on a local clock — charges accumulate in `pending_`
/// and fold into the committed clock when the quantum overflows or when
/// anyone *observes* the clock through cycles().  Every clock-observable
/// event (bus-transaction timestamps, trace records, timer reads,
/// snapshot saves) goes through cycles(), so every observed value is
/// bit-identical to the exact (quantum = 0) path by construction.  The
/// one deliberate exception is cycles_ref(): it exposes the committed
/// clock raw, so the span tracer bound to it must only run with the
/// quantum forced to 0 (the fuzz executor does this for every
/// metrics/trace-instrumented run).
class CycleAccount {
 public:
  void charge(Cycles c) {
    if (quantum_ == 0) [[likely]] {
      cycles_ += c;
      return;
    }
    pending_ += c;
    if (pending_ >= quantum_) fold();
  }
  /// Charge `n` events of `per` cycles at once.  Exactly equal to calling
  /// charge(per) n times — used by the bulk-transfer loops, which replay
  /// uniform per-word/per-line charges without a per-event call.
  void charge_batch(Cycles per, u64 n) { charge(per * n); }
  /// Observing the clock synchronizes the decoupled local time.
  [[nodiscard]] Cycles cycles() const {
    if (pending_ != 0) fold();
    return cycles_;
  }
  /// Stable address of the committed cycle counter — the simulated-time
  /// clock the observability span tracer binds to (obs/span.h).  Bypasses
  /// the decoupled fold; see the class comment.
  [[nodiscard]] const Cycles* cycles_ref() const { return &cycles_; }

  /// Decoupled-mode quantum; 0 = exact (charge commits immediately).
  /// Setting it folds any run-ahead first, so flips are safe mid-run.
  void set_decoupled_quantum(Cycles quantum) {
    fold();
    quantum_ = quantum;
  }
  [[nodiscard]] Cycles decoupled_quantum() const { return quantum_; }

  Counters& counters() { return counters_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }

  void reset() {
    cycles_ = 0;
    pending_ = 0;
    counters_ = Counters{};
  }

 private:
  void fold() const {
    cycles_ += pending_;
    pending_ = 0;
  }

  // Mutable: cycles() is a logically-const observation that commits the
  // local run-ahead.
  mutable Cycles cycles_ = 0;
  mutable Cycles pending_ = 0;
  Cycles quantum_ = 0;  // host wiring, not snapshot state
  Counters counters_;
};

}  // namespace hn::sim
