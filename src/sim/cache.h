// Write-back, write-allocate, physically-indexed data cache (Cortex-A57
// L1D-like: 32 KiB, 2-way, 64 B lines).
//
// The cache holds no data — functional state lives in PhysicalMemory — but
// it decides *when traffic reaches the bus*: a cacheable write marks a line
// dirty and emits nothing; the final line contents surface as a single
// kWriteLine transaction at eviction or explicit flush.  This models the
// MBM visibility problem that forces Hypersec to map monitored pages
// non-cacheable (§5.3).
#pragma once

#include <vector>

#include "common/timing.h"
#include "common/types.h"
#include "sim/bus.h"
#include "sim/cycle_account.h"
#include "sim/phys_mem.h"
#include "sim/snapshot.h"

namespace hn::sim {

struct CacheConfig {
  u64 size_bytes = 32 * 1024;
  unsigned ways = 2;
  bool enabled = true;  // disabled => every access behaves as non-cacheable
};

class Cache {
 public:
  Cache(const CacheConfig& config, PhysicalMemory& mem, MemoryBus& bus,
        CycleAccount& account, const TimingModel& timing);

  /// SMP bus provenance: the owning core's id and the machine's shared
  /// monotonic bus clock.  Dirty write-backs are bus transactions the MBM
  /// may snoop, so they must carry the issuing core and a bus-order
  /// (non-decreasing) timestamp even though per-core clocks drift.
  /// Identity on single-core machines, where the one clock is already
  /// the bus clock.
  void set_bus_provenance(u8 core, Cycles* shared_clock) {
    core_id_ = core;
    bus_clock_ = shared_clock;
  }

  /// A cacheable access to the word/line containing `pa`.  Charges hit or
  /// miss cost, performs fills and dirty evictions via the bus, and marks
  /// the line dirty on writes.  The functional data update is the caller's
  /// job (done before/after as appropriate).
  void access(PhysAddr pa, bool is_write);

  /// Full-line streaming write: the whole line at `pa` is being
  /// overwritten, so a miss allocates the line dirty *without* a DRAM
  /// fetch (DC ZVA / write-streaming behaviour).  Used by bulk zeroing
  /// and large copies.
  void write_alloc_line(PhysAddr pa);

  /// Write back (if dirty) and invalidate the line containing `pa`.
  /// Used by Hypersec when it remaps a monitored page non-cacheable, so no
  /// stale dirty data can later mask a monitored write.
  void flush_line(PhysAddr pa);

  /// Flush every line intersecting [pa, pa+len).
  void flush_range(PhysAddr pa, u64 len);

  /// Invalidate everything, writing back dirty lines.
  void flush_all();

  [[nodiscard]] bool contains_line(PhysAddr pa) const;
  [[nodiscard]] bool line_dirty(PhysAddr pa) const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  // Tag/victim state only: line *data* lives in PhysicalMemory, restored
  // via the snapshot's page set.

  void save_state(SnapWriter& w) const {
    w.put_u64(lines_.size());
    for (const Line& l : lines_) {
      w.put_bool(l.valid);
      w.put_bool(l.dirty);
      w.put_u64(l.base);
    }
    w.put_u64(victim_.size());
    for (const unsigned v : victim_) w.put_u32(v);
  }

  void restore_state(SnapReader& r) {
    r.section("cache");
    const u64 nlines = r.get_u64();
    if (r.ok() && nlines != lines_.size()) {
      r.fail("line count " + std::to_string(nlines) +
             " does not match configured geometry");
      return;
    }
    for (Line& l : lines_) {
      l.valid = r.get_bool();
      l.dirty = r.get_bool();
      l.base = r.get_u64();
    }
    const u64 nsets = r.get_u64();
    if (r.ok() && nsets != victim_.size()) {
      r.fail("set count " + std::to_string(nsets) +
             " does not match configured geometry");
      return;
    }
    for (unsigned& v : victim_) v = r.get_u32();
  }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    PhysAddr base = 0;  // line-aligned physical address
  };

  [[nodiscard]] u64 set_index(PhysAddr pa) const {
    return (pa / kCacheLineSize) % num_sets_;
  }
  Line* find_line(PhysAddr pa);
  [[nodiscard]] const Line* find_line(PhysAddr pa) const;
  void evict(Line& line);
  void writeback(const Line& line);

  CacheConfig config_;
  PhysicalMemory& mem_;
  MemoryBus& bus_;
  CycleAccount& account_;
  const TimingModel& timing_;
  u8 core_id_ = 0;
  Cycles* bus_clock_ = nullptr;  // Machine's shared bus clock (may be null)
  u64 num_sets_;
  std::vector<Line> lines_;       // num_sets_ * ways, set-major
  std::vector<unsigned> victim_;  // round-robin pointer per set
};

}  // namespace hn::sim
