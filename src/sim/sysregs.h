// System registers of the simulated AArch64-like machine (Figure 1's
// register landscape): the EL1 virtual-memory controls that HCR_EL2.TVM
// traps, and the EL2 controls Hypersec programs at boot (§6.1).
#pragma once

#include <array>

#include "common/bitops.h"
#include "common/types.h"

namespace hn::sim {

enum class SysReg : unsigned {
  // EL1 (kernel) registers; the virtual-memory subset is TVM-trappable.
  TTBR0_EL1 = 0,
  TTBR1_EL1,
  TCR_EL1,
  SCTLR_EL1,
  MAIR_EL1,
  CONTEXTIDR_EL1,  // carries the ASID in this model
  VBAR_EL1,
  // EL2 (Hypersec / hypervisor) registers.
  HCR_EL2,
  VBAR_EL2,
  VTTBR_EL2,
  SP_EL2,
  TTBR0_EL2,  // EL2 stage-1 root (Hypersec's linear map)
  kCount,
};

/// HCR_EL2 bit assignments (AArch64-faithful where it matters).
inline constexpr unsigned kHcrVm = 0;    // stage-2 translation enable
inline constexpr unsigned kHcrImo = 4;   // route physical IRQ to EL2
inline constexpr unsigned kHcrTvm = 26;  // trap EL1 virtual-memory reg writes

/// True for registers a WalkContext snapshot is derived from: a write to
/// one of these invalidates the machine's cached translation-regime view
/// (the host fast path, DESIGN.md §9).
constexpr bool affects_translation(SysReg reg) {
  switch (reg) {
    case SysReg::TTBR0_EL1:
    case SysReg::TTBR1_EL1:
    case SysReg::VTTBR_EL2:
    case SysReg::HCR_EL2:
      return true;
    default:
      return false;
  }
}

/// True for registers whose EL1 writes HCR_EL2.TVM traps to EL2 (§5.2.2).
constexpr bool is_tvm_trapped(SysReg reg) {
  switch (reg) {
    case SysReg::TTBR0_EL1:
    case SysReg::TTBR1_EL1:
    case SysReg::TCR_EL1:
    case SysReg::SCTLR_EL1:
    case SysReg::MAIR_EL1:
    case SysReg::CONTEXTIDR_EL1:
      return true;
    default:
      return false;
  }
}

class SysRegs {
 public:
  [[nodiscard]] u64 get(SysReg reg) const {
    return regs_[static_cast<unsigned>(reg)];
  }
  void set(SysReg reg, u64 value) {
    regs_[static_cast<unsigned>(reg)] = value;
    if (affects_translation(reg)) ++vm_generation_;
  }

  [[nodiscard]] bool hcr_bit(unsigned b) const {
    return bit(get(SysReg::HCR_EL2), b);
  }

  /// Bumped by every write to a translation-affecting register.  Starts
  /// at 1 so a cache primed with generation 0 always rebuilds first.
  [[nodiscard]] u64 vm_generation() const { return vm_generation_; }

  // --- Snapshot support (sim/snapshot.h) ------------------------------------
  static constexpr unsigned kRegCount = static_cast<unsigned>(SysReg::kCount);
  /// Raw register slot, by index (snapshot serialization order).
  [[nodiscard]] u64 raw(unsigned index) const { return regs_[index]; }
  /// Restore a slot without the generation bump `set` applies: restore
  /// reproduces state bit-exactly, including the generation counter, which
  /// is restored separately below.
  void restore_raw(unsigned index, u64 value) { regs_[index] = value; }
  void restore_vm_generation(u64 generation) { vm_generation_ = generation; }

 private:
  std::array<u64, static_cast<unsigned>(SysReg::kCount)> regs_{};
  u64 vm_generation_ = 1;
};

}  // namespace hn::sim
