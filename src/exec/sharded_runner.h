// ShardedRunner: deterministic fan-out of an index space [0, N).
//
// The determinism contract (DESIGN.md §8): every index is an independent
// universe — the caller's `fn(index)` builds whatever state it needs
// (one sim::Machine per job, no shared mutable simulation state) and
// returns a value that is a pure function of the index.  The runner
// writes each result into a pre-sized slot array at its own index, so
// the merged output is byte-identical to the sequential loop
//
//   for (u64 i = 0; i < n; ++i) out[i] = fn(i);
//
// regardless of worker count, scheduling order, or machine load.
// Parallelism changes wall-clock only, never results.
//
// Cooperative cancellation: with `fail_fast`, the first index whose
// result satisfies `failed` flips a shared token; indices not yet
// started are skipped (their slots keep the default-constructed value
// and are reported in `indices_skipped`).  Because shards are submitted
// in index order over a FIFO queue, the started set is always a prefix
// plus the currently-running shards — every index below the lowest
// failing one is guaranteed to have a valid result.
//
// Exceptions: if `fn` throws, the runner records the exception with the
// lowest index among those observed, cancels the remaining work, and
// rethrows after the run drains.  No result is partially merged.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <latch>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/types.h"
#include "exec/thread_pool.h"

namespace hn::exec {

struct ShardOptions {
  /// Worker threads; 0 = ThreadPool::default_parallelism().  With 1 the
  /// runner degenerates to the plain sequential loop on the calling
  /// thread — no pool, no queue, today's exact behaviour.
  unsigned jobs = 1;
  /// Indices per submitted job.  1 maximizes load balance; larger shards
  /// amortize queue traffic when fn is very cheap.
  u64 shard_size = 1;
  /// Stop scheduling new indices once any result satisfies `failed`.
  bool fail_fast = false;
};

struct ShardReport {
  u64 indices_total = 0;
  u64 indices_run = 0;
  u64 indices_skipped = 0;  // skipped by fail-fast/exception cancellation
  bool cancelled = false;
  double wall_ms = 0;
  /// Per-worker counters for this run (empty when jobs == 1).
  std::vector<WorkerStats> workers;
};

/// Run `fn(i)` for every i in [0, n), results in index order.  `failed`
/// maps a result to "this index failed" for fail-fast.  Result must be
/// default-constructible (skipped slots keep the default value).
template <typename Result, typename Fn, typename FailFn>
  requires std::is_invocable_r_v<bool, FailFn&, const Result&>
std::vector<Result> run_sharded(u64 n, Fn&& fn, FailFn&& failed,
                                const ShardOptions& opt = {},
                                ShardReport* report = nullptr) {
  std::vector<Result> results(n);
  ShardReport local;
  local.indices_total = n;
  Stopwatch watch;

  const unsigned jobs =
      opt.jobs == 0 ? ThreadPool::default_parallelism() : opt.jobs;
  if (jobs == 1 || n <= 1) {
    for (u64 i = 0; i < n; ++i) {
      results[i] = fn(i);
      ++local.indices_run;
      if (opt.fail_fast && failed(results[i])) {
        local.cancelled = true;
        local.indices_skipped = n - i - 1;
        break;
      }
    }
    local.wall_ms = watch.elapsed_ms();
    if (report != nullptr) *report = local;
    return results;
  }

  const u64 shard = opt.shard_size == 0 ? 1 : opt.shard_size;
  const u64 num_shards = (n + shard - 1) / shard;
  std::latch done(static_cast<std::ptrdiff_t>(num_shards));
  std::atomic<bool> cancel{false};
  std::atomic<u64> run_count{0};
  std::atomic<u64> skip_count{0};

  std::mutex err_mu;
  std::exception_ptr first_err;
  u64 first_err_index = ~0ull;

  {
    ThreadPool pool(jobs, /*queue_capacity=*/2 * jobs);
    for (u64 lo = 0; lo < n; lo += shard) {
      const u64 hi = lo + shard < n ? lo + shard : n;
      pool.submit([&, lo, hi] {
        for (u64 i = lo; i < hi; ++i) {
          if (cancel.load(std::memory_order_acquire)) {
            skip_count.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          try {
            results[i] = fn(i);
          } catch (...) {
            std::lock_guard lock(err_mu);
            if (!first_err || i < first_err_index) {
              first_err = std::current_exception();
              first_err_index = i;
            }
            cancel.store(true, std::memory_order_release);
            skip_count.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          run_count.fetch_add(1, std::memory_order_relaxed);
          if (opt.fail_fast && failed(results[i])) {
            cancel.store(true, std::memory_order_release);
          }
        }
        done.count_down();
      });
    }
    done.wait();
    pool.close();
    local.workers = pool.stats();
  }

  local.indices_run = run_count.load(std::memory_order_relaxed);
  local.indices_skipped = skip_count.load(std::memory_order_relaxed);
  local.cancelled = cancel.load(std::memory_order_relaxed);
  local.wall_ms = watch.elapsed_ms();
  if (report != nullptr) *report = local;
  if (first_err) std::rethrow_exception(first_err);
  return results;
}

/// Convenience overload: no failure predicate (fail_fast inert).
template <typename Result, typename Fn>
std::vector<Result> run_sharded(u64 n, Fn&& fn, const ShardOptions& opt = {},
                                ShardReport* report = nullptr) {
  return run_sharded<Result>(
      n, std::forward<Fn>(fn), [](const Result&) { return false; }, opt,
      report);
}

}  // namespace hn::exec
