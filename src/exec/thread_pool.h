// Fixed-size worker pool over a bounded MPMC job queue.
//
// The pool runs opaque `std::function<void()>` jobs; everything the
// execution layer promises about determinism lives one level up in
// ShardedRunner (sharded_runner.h), which owns where results land.  The
// pool's own contract is narrower:
//
//   * submit() blocks when the queue is full (bounded producer lead);
//   * close() stops intake, lets queued jobs drain, and joins;
//   * cancel() stops intake AND discards queued-but-unstarted jobs —
//     jobs already running always finish (cooperative cancellation:
//     long jobs poll their own token, the pool never kills a thread);
//   * a job that leaks an exception is caught and the first such
//     exception is kept for take_exception(); the worker survives;
//   * per-worker stats (jobs run, busy wall-time) are collected with
//     relaxed atomics so they can be snapshotted while workers run.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.h"
#include "exec/queue.h"

namespace hn::exec {

/// Snapshot of one worker's lifetime counters.
struct WorkerStats {
  u64 jobs = 0;     // jobs completed (including ones that threw)
  u64 busy_ns = 0;  // wall-time spent inside jobs
};

class ThreadPool {
 public:
  /// `workers` threads; 0 means default_parallelism().  `queue_capacity`
  /// bounds submitted-but-unstarted jobs; 0 means 2x workers.
  explicit ThreadPool(unsigned workers = 0, size_t queue_capacity = 0);
  ~ThreadPool();  // close() + join

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job.  Blocks while the queue is full.  Returns false once
  /// the pool is closed or cancelled (the job is dropped).
  bool submit(std::function<void()> job);

  /// Stop intake, run every already-queued job, join the workers.
  /// Idempotent; implied by the destructor.
  void close();

  /// Stop intake and discard queued-but-unstarted jobs.  Running jobs
  /// finish normally.  Returns the number of jobs dropped.  The pool is
  /// closed afterwards (workers exit once running jobs complete).
  size_t cancel();

  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Jobs submitted but not yet picked up by a worker (snapshot).
  [[nodiscard]] size_t pending() const { return queue_.size(); }

  /// First exception a job leaked, or nullptr.  Stable after close().
  [[nodiscard]] std::exception_ptr take_exception();

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Per-worker counters; safe to call while workers run (snapshot).
  [[nodiscard]] std::vector<WorkerStats> stats() const;

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static unsigned default_parallelism();

 private:
  struct WorkerSlot {
    std::atomic<u64> jobs{0};
    std::atomic<u64> busy_ns{0};
  };

  void worker_main(WorkerSlot* slot);

  BoundedMpmcQueue<std::function<void()>> queue_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> threads_;
  std::atomic<bool> cancelled_{false};
  bool joined_ = false;
  std::mutex join_mu_;  // serializes close()/cancel() callers

  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace hn::exec
