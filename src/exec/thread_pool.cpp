#include "exec/thread_pool.h"

#include <chrono>

namespace hn::exec {

unsigned ThreadPool::default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned workers, size_t queue_capacity)
    : queue_(queue_capacity != 0
                 ? queue_capacity
                 : 2 * static_cast<size_t>(
                           workers == 0 ? default_parallelism() : workers)) {
  const unsigned n = workers == 0 ? default_parallelism() : workers;
  slots_.reserve(n);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(slots_[i].get()); });
  }
}

ThreadPool::~ThreadPool() { close(); }

bool ThreadPool::submit(std::function<void()> job) {
  if (cancelled_.load(std::memory_order_relaxed)) return false;
  return queue_.push(std::move(job));
}

void ThreadPool::close() {
  std::lock_guard lock(join_mu_);
  queue_.close();
  if (joined_) return;
  joined_ = true;
  for (std::thread& t : threads_) t.join();
}

size_t ThreadPool::cancel() {
  cancelled_.store(true, std::memory_order_relaxed);
  queue_.close();
  const size_t dropped = queue_.drain();
  close();
  return dropped;
}

std::exception_ptr ThreadPool::take_exception() {
  std::lock_guard lock(err_mu_);
  std::exception_ptr err = first_error_;
  first_error_ = nullptr;
  return err;
}

std::vector<WorkerStats> ThreadPool::stats() const {
  std::vector<WorkerStats> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    out.push_back({slot->jobs.load(std::memory_order_relaxed),
                   slot->busy_ns.load(std::memory_order_relaxed)});
  }
  return out;
}

void ThreadPool::worker_main(WorkerSlot* slot) {
  using Clock = std::chrono::steady_clock;
  while (std::optional<std::function<void()>> job = queue_.pop()) {
    const Clock::time_point start = Clock::now();
    try {
      (*job)();
    } catch (...) {
      std::lock_guard lock(err_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    const u64 ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    slot->jobs.fetch_add(1, std::memory_order_relaxed);
    slot->busy_ns.fetch_add(ns, std::memory_order_relaxed);
  }
}

}  // namespace hn::exec
