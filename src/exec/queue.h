// Bounded MPMC queue: the job channel of the execution layer.
//
// Producers block while the queue is full (backpressure bounds the
// memory a campaign submitter can commit ahead of the workers) and
// consumers block while it is empty.  `close()` wakes everyone: pushes
// start failing immediately, pops keep draining what was accepted and
// then fail — a closed queue therefore guarantees every accepted job is
// either popped or discarded by `drain()`, never silently lost.
//
// Plain mutex + two condition variables.  The payloads here are whole
// fuzz sequences or bench cells (milliseconds of simulation each), so
// lock-free cleverness would buy nothing and cost TSan-auditable
// simplicity.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/types.h"

namespace hn::exec {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks until there is room or the queue is closed.  Returns false
  /// (dropping `item`) once closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Stop accepting new items; pending items remain poppable.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Discard every queued-but-unstarted item (cooperative cancellation).
  /// Returns how many were dropped.
  size_t drain() {
    size_t dropped = 0;
    {
      std::lock_guard lock(mu_);
      dropped = items_.size();
      items_.clear();
    }
    not_full_.notify_all();
    return dropped;
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hn::exec
