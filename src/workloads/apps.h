// Application-benchmark models for Figure 6 (runtime overhead) and
// Table 2 (monitored-event counts): whetstone, dhrystone, untar, iozone,
// and an apache-like request server.
//
// We cannot run the real binaries on the simulated machine; each model
// issues the same *kinds and mix* of kernel activity the real program
// drives — compute vs syscalls, dentry-cache churn, page-cache writes,
// process creation, IPC — which is precisely what both experiments
// measure.  Every model is deterministic for a given seed.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "hypernel/system.h"

namespace hn::workloads {

struct AppResult {
  std::string name;
  Cycles cycles = 0;
  double us = 0;
};

/// Scale factor: 1.0 reproduces the paper-sized runs (Table 2 magnitudes);
/// tests use small fractions for speed.
struct AppParams {
  double scale = 1.0;
  u64 seed = 0x90DA'5EED;
};

/// CPU-bound synthetic FP benchmark: long compute phases, light kernel
/// noise (periodic stat + an occasional result tmpfile).
AppResult run_whetstone(hypernel::System& system, const AppParams& p = {});

/// CPU-bound integer/string benchmark: compute + user-memory traffic,
/// slightly more FS metadata noise than whetstone.
AppResult run_dhrystone(hypernel::System& system, const AppParams& p = {});

/// Archive extraction: thousands of file creations, page-cache writes,
/// per-file metadata syscalls, periodic scratch-buffer mmap churn — the
/// dentry-heavy worst case of Table 2.
AppResult run_untar(hypernel::System& system, const AppParams& p = {});

/// Filesystem I/O benchmark: large sequential writes/reads over one file,
/// a handful of auxiliary test files per phase.
AppResult run_iozone(hypernel::System& system, const AppParams& p = {});

/// Web-server model: per-request path lookup + file read + loopback
/// socket round trip + cred refcounting; every k-th request forks a CGI
/// child (fork+execve+exit).
AppResult run_apache(hypernel::System& system, const AppParams& p = {});

/// All five, in Table 2 order.
std::vector<AppResult> run_all_apps(hypernel::System& system,
                                    const AppParams& p = {});

/// Lookup by name ("whetstone", "dhrystone", "untar", "iozone", "apache").
AppResult run_app_by_name(hypernel::System& system, const std::string& name,
                          const AppParams& p = {});

}  // namespace hn::workloads
