#include "workloads/lmbench.h"

#include <cassert>
#include <vector>

#include "kernel/layout.h"

namespace hn::workloads {

using kernel::Kernel;
using kernel::Task;

double LmbenchSuite::per_op_us(Cycles delta) const {
  return system_.machine().timing().cycles_to_us(delta) / iterations_;
}

Status LmbenchSuite::setup() {
  if (ready_) return Status::Ok();
  Kernel& k = system_.kernel();
  if (Result<u64> r = k.vfs().mkdir("/bench"); !r.ok()) return r.status();
  if (Result<u64> r = k.sys_creat("/bench/target"); !r.ok()) return r.status();
  // Warm the dentry cache the way a measurement loop would.
  for (int i = 0; i < 4; ++i) {
    if (Result<kernel::StatInfo> r = k.sys_stat("/bench/target"); !r.ok()) {
      return r.status();
    }
  }

  // Fork the IPC peer once; it stays alive for the pipe/socket benchmarks.
  Result<u32> peer = k.sys_fork();
  if (!peer.ok()) return peer.status();
  peer_pid_ = peer.value();

  Result<u32> p1 = k.sys_pipe();
  if (!p1.ok()) return p1.status();
  pipe_ab_ = p1.value();
  Result<u32> p2 = k.sys_pipe();
  if (!p2.ok()) return p2.status();
  pipe_ba_ = p2.value();
  Result<u32> s = k.sys_socketpair();
  if (!s.ok()) return s.status();
  sock_ = s.value();
  ready_ = true;
  return Status::Ok();
}

LmbenchResult LmbenchSuite::syscall_stat() {
  Kernel& k = system_.kernel();
  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    [[maybe_unused]] Result<kernel::StatInfo> r = k.sys_stat("/bench/target");
    assert(r.ok());
  }
  return {"syscall stat", per_op_us(system_.cycles_since(before))};
}

LmbenchResult LmbenchSuite::signal_install() {
  Kernel& k = system_.kernel();
  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    [[maybe_unused]] Status s = k.sys_sigaction(10, 0x4000'1000 + (i & 1));
    assert(s.ok());
  }
  return {"signal install", per_op_us(system_.cycles_since(before))};
}

LmbenchResult LmbenchSuite::signal_overhead() {
  Kernel& k = system_.kernel();
  [[maybe_unused]] Status inst = k.sys_sigaction(10, 0x4000'1000);
  assert(inst.ok());
  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    [[maybe_unused]] Status s = k.sys_kill_self(10);
    assert(s.ok());
  }
  return {"signal ovh", per_op_us(system_.cycles_since(before))};
}

LmbenchResult LmbenchSuite::pipe_latency() {
  Kernel& k = system_.kernel();
  Task* self = &k.procs().current();
  Task* peer = k.procs().find(peer_pid_);
  assert(peer != nullptr);
  const VirtAddr buf = kernel::kUserHeapBase;  // one token word

  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    // lat_pipe: token A -> B, then B -> A (one round trip per iteration).
    [[maybe_unused]] Status w1 = k.sys_pipe_write(pipe_ab_, buf, kWordSize);
    assert(w1.ok());
    k.procs().switch_to(*peer);
    [[maybe_unused]] Result<u64> r1 = k.sys_pipe_read(pipe_ab_, buf, kWordSize);
    assert(r1.ok());
    [[maybe_unused]] Status w2 = k.sys_pipe_write(pipe_ba_, buf, kWordSize);
    assert(w2.ok());
    k.procs().switch_to(*self);
    [[maybe_unused]] Result<u64> r2 = k.sys_pipe_read(pipe_ba_, buf, kWordSize);
    assert(r2.ok());
  }
  return {"pipe lat", per_op_us(system_.cycles_since(before))};
}

LmbenchResult LmbenchSuite::socket_latency() {
  Kernel& k = system_.kernel();
  Task* self = &k.procs().current();
  Task* peer = k.procs().find(peer_pid_);
  assert(peer != nullptr);
  const VirtAddr buf = kernel::kUserHeapBase;

  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    [[maybe_unused]] Status s1 = k.sys_socket_send(sock_, 0, buf, kWordSize);
    assert(s1.ok());
    k.procs().switch_to(*peer);
    [[maybe_unused]] Result<u64> r1 = k.sys_socket_recv(sock_, 1, buf, kWordSize);
    assert(r1.ok());
    [[maybe_unused]] Status s2 = k.sys_socket_send(sock_, 1, buf, kWordSize);
    assert(s2.ok());
    k.procs().switch_to(*self);
    [[maybe_unused]] Result<u64> r2 = k.sys_socket_recv(sock_, 0, buf, kWordSize);
    assert(r2.ok());
  }
  return {"socket lat", per_op_us(system_.cycles_since(before))};
}

LmbenchResult LmbenchSuite::fork_exit() {
  Kernel& k = system_.kernel();
  Task* self = &k.procs().current();
  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    Result<u32> pid = k.sys_fork();
    assert(pid.ok());
    Task* child = k.procs().find(pid.value());
    k.procs().switch_to(*child);
    [[maybe_unused]] Status s = k.sys_exit();
    assert(s.ok());
    k.procs().switch_to(*self);
  }
  return {"fork+exit", per_op_us(system_.cycles_since(before))};
}

LmbenchResult LmbenchSuite::fork_execv() {
  Kernel& k = system_.kernel();
  Task* self = &k.procs().current();
  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    Result<u32> pid = k.sys_fork();
    assert(pid.ok());
    Task* child = k.procs().find(pid.value());
    k.procs().switch_to(*child);
    [[maybe_unused]] Status e = k.sys_execve();
    assert(e.ok());
    [[maybe_unused]] Status s = k.sys_exit();
    assert(s.ok());
    k.procs().switch_to(*self);
  }
  return {"fork+execv", per_op_us(system_.cycles_since(before))};
}

LmbenchResult LmbenchSuite::page_fault() {
  // lat_pagefault: faults over a *file* mapping whose page-cache frames
  // are stable.  A warm-up pass populates the page cache (and, under KVM,
  // its stage-2 mappings); the measured pass sees only the fault path.
  Kernel& k = system_.kernel();
  const u64 pages = iterations_;
  Result<u64> ino = k.sys_creat("/bench/pf.dat");
  assert(ino.ok());
  std::vector<u8> page(kPageSize, 0x42);
  for (u64 i = 0; i < pages; ++i) {
    [[maybe_unused]] Status w =
        k.sys_write(ino.value(), i * kPageSize, page.data(), kPageSize);
    assert(w.ok());
  }
  {
    Result<VirtAddr> warm = k.sys_mmap_file(ino.value(), pages * kPageSize);
    assert(warm.ok());
    for (u64 i = 0; i < pages; ++i) {
      [[maybe_unused]] Status t =
          k.procs().touch_page(warm.value() + i * kPageSize, /*write=*/false);
      assert(t.ok());
    }
    [[maybe_unused]] Status um = k.sys_munmap(warm.value(), pages * kPageSize);
    assert(um.ok());
  }
  Result<VirtAddr> region = k.sys_mmap_file(ino.value(), pages * kPageSize);
  assert(region.ok());
  const auto before = system_.snapshot();
  for (u64 i = 0; i < pages; ++i) {
    [[maybe_unused]] Status s =
        k.procs().touch_page(region.value() + i * kPageSize, /*write=*/false);
    assert(s.ok());
  }
  const LmbenchResult out{"page fault", per_op_us(system_.cycles_since(before))};
  [[maybe_unused]] Status um = k.sys_munmap(region.value(), pages * kPageSize);
  assert(um.ok());
  [[maybe_unused]] Status ul = k.sys_unlink("/bench/pf.dat");
  assert(ul.ok());
  return out;
}

LmbenchResult LmbenchSuite::mmap() {
  // lat_mmap: map a file region, touch it, unmap.  The file is created and
  // pre-warmed outside the window.
  Kernel& k = system_.kernel();
  constexpr u64 kMapPages = 16;
  constexpr u64 kTouchPages = 4;
  Result<u64> ino = k.sys_creat("/bench/mmap.dat");
  assert(ino.ok());
  std::vector<u8> page(kPageSize, 0x24);
  for (u64 i = 0; i < kMapPages; ++i) {
    [[maybe_unused]] Status w =
        k.sys_write(ino.value(), i * kPageSize, page.data(), kPageSize);
    assert(w.ok());
  }
  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    Result<VirtAddr> va = k.sys_mmap_file(ino.value(), kMapPages * kPageSize);
    assert(va.ok());
    for (u64 p = 0; p < kTouchPages; ++p) {
      [[maybe_unused]] Status t =
          k.procs().touch_page(va.value() + p * kPageSize, /*write=*/false);
      assert(t.ok());
    }
    [[maybe_unused]] Status um = k.sys_munmap(va.value(), kMapPages * kPageSize);
    assert(um.ok());
  }
  const LmbenchResult out{"mmap", per_op_us(system_.cycles_since(before))};
  [[maybe_unused]] Status ul = k.sys_unlink("/bench/mmap.dat");
  assert(ul.ok());
  return out;
}

LmbenchResult LmbenchSuite::context_switch(unsigned procs) {
  Kernel& k = system_.kernel();
  Task* self = &k.procs().current();
  std::vector<Task*> ring{self};
  for (unsigned i = 1; i < procs; ++i) {
    Result<u32> pid = k.sys_fork();
    assert(pid.ok());
    ring.push_back(k.procs().find(pid.value()));
  }
  const auto before = system_.snapshot();
  const unsigned hops = iterations_ * procs;
  for (unsigned i = 0; i < hops; ++i) {
    k.procs().switch_to(*ring[(i + 1) % ring.size()]);
  }
  const double us =
      system_.machine().timing().cycles_to_us(system_.cycles_since(before)) /
      hops;
  // Tear the ring down.
  for (unsigned i = 1; i < ring.size(); ++i) {
    k.procs().switch_to(*ring[i]);
    [[maybe_unused]] Status s = k.sys_exit();
    assert(s.ok());
    k.procs().switch_to(*self);
  }
  return {"ctx switch", us};
}

LmbenchResult LmbenchSuite::memory_bandwidth(u64 kib) {
  Kernel& k = system_.kernel();
  Result<PhysAddr> block = k.buddy().alloc_pages(
      [&] {
        unsigned order = 0;
        while ((kPageSize << order) < kib * 1024) ++order;
        return order;
      }());
  assert(block.ok());
  const VirtAddr base = kernel::phys_to_virt(block.value());
  std::vector<u8> buf(kib * 1024, 0x77);
  const auto before = system_.snapshot();
  for (unsigned i = 0; i < iterations_; ++i) {
    system_.machine().write_block_bulk(base, buf.data(), buf.size());
    system_.machine().read_block_bulk(base, buf.data(), buf.size());
  }
  const double us =
      system_.machine().timing().cycles_to_us(system_.cycles_since(before));
  const double mb = 2.0 * iterations_ * kib / 1024.0;
  k.buddy().free_pages(block.value(), [&] {
    unsigned order = 0;
    while ((kPageSize << order) < kib * 1024) ++order;
    return order;
  }());
  return {"mem bw (MB/s)", mb / (us / 1e6)};
}

std::vector<LmbenchResult> LmbenchSuite::run_all() {
  [[maybe_unused]] Status s = setup();
  assert(s.ok());
  return {
      syscall_stat(), signal_install(), signal_overhead(),
      pipe_latency(), socket_latency(), fork_exit(),
      fork_execv(),   page_fault(),     mmap(),
  };
}

}  // namespace hn::workloads
