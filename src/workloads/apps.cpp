#include "workloads/apps.h"

#include <cassert>
#include <cstdio>

#include "common/rng.h"
#include "kernel/kernel.h"
#include "kernel/layout.h"
#include "sim/irq.h"

namespace hn::workloads {

using kernel::Kernel;
using kernel::Task;

namespace {

u64 scaled(double scale, u64 n, u64 minimum = 1) {
  const u64 v = static_cast<u64>(static_cast<double>(n) * scale);
  return v < minimum ? minimum : v;
}

/// Ensure a file exists (create on first use), return its inode.
u64 ensure_file(Kernel& k, const std::string& path) {
  Result<u64> ino = k.vfs().lookup(path);
  if (ino.ok()) return ino.value();
  Result<u64> created = k.sys_creat(path);
  assert(created.ok());
  return created.value();
}

AppResult finish(hypernel::System& system, const char* name,
                 const hypernel::System::Snapshot& before) {
  AppResult r;
  r.name = name;
  r.cycles = system.cycles_since(before);
  r.us = system.machine().timing().cycles_to_us(r.cycles);
  return r;
}

/// tar/benchmark scratch-buffer behaviour: mmap, touch, munmap.
void scratch_mmap_churn(Kernel& k, u64 pages) {
  Result<VirtAddr> va = k.sys_mmap(pages * kPageSize, /*writable=*/true);
  assert(va.ok());
  for (u64 p = 0; p < pages; ++p) {
    [[maybe_unused]] Status s =
        k.procs().touch_page(va.value() + p * kPageSize, /*write=*/true);
    assert(s.ok());
  }
  [[maybe_unused]] Status um = k.sys_munmap(va.value(), pages * kPageSize);
  assert(um.ok());
}

}  // namespace

AppResult run_whetstone(hypernel::System& system, const AppParams& p) {
  Kernel& k = system.kernel();
  [[maybe_unused]] Result<u64> dir = k.vfs().mkdir("/tmp");
  ensure_file(k, "/tmp/whet.cfg");
  const u64 loops = scaled(p.scale, 12);
  const auto before = system.snapshot();
  for (u64 i = 0; i < loops; ++i) {
    // The FP kernel: dominated by pure computation.
    k.run_user_compute(2'000'000);
    [[maybe_unused]] Status mem = k.run_user_memory(600, 8, p.seed + i);
    assert(mem.ok());
    // Periodic config reads and result spooling, as the harness does.
    for (int s = 0; s < 3; ++s) {
      [[maybe_unused]] Result<kernel::StatInfo> st = k.sys_stat("/tmp/whet.cfg");
      assert(st.ok());
    }
    {
      char path[64];
      std::snprintf(path, sizeof(path), "/tmp/whet.out.%llu",
                    static_cast<unsigned long long>(i));
      Result<u64> ino = k.sys_creat(path);
      assert(ino.ok());
      u64 row[8] = {i, 1, 2, 3, 4, 5, 6, 7};
      [[maybe_unused]] Status w = k.sys_write(ino.value(), 0, row, sizeof(row));
      assert(w.ok());
      [[maybe_unused]] Status ul = k.sys_unlink(path);
      assert(ul.ok());
    }
  }
  return finish(system, "whetstone", before);
}

AppResult run_dhrystone(hypernel::System& system, const AppParams& p) {
  Kernel& k = system.kernel();
  [[maybe_unused]] Result<u64> dir = k.vfs().mkdir("/tmp");
  ensure_file(k, "/tmp/dhry.cfg");
  const u64 loops = scaled(p.scale, 15);
  const auto before = system.snapshot();
  for (u64 i = 0; i < loops; ++i) {
    // Integer/string kernel: compute plus a working set of user memory.
    k.run_user_compute(1'400'000);
    [[maybe_unused]] Status mem = k.run_user_memory(1500, 12, p.seed + i);
    assert(mem.ok());
    for (int s = 0; s < 3; ++s) {
      [[maybe_unused]] Result<kernel::StatInfo> st = k.sys_stat("/tmp/dhry.cfg");
      assert(st.ok());
    }
    if (i % 2 == 1) {
      char path[64];
      std::snprintf(path, sizeof(path), "/tmp/dhry.out.%llu",
                    static_cast<unsigned long long>(i));
      Result<u64> ino = k.sys_creat(path);
      assert(ino.ok());
      [[maybe_unused]] Status ul = k.sys_unlink(path);
      assert(ul.ok());
    }
  }
  return finish(system, "dhrystone", before);
}

AppResult run_untar(hypernel::System& system, const AppParams& p) {
  Kernel& k = system.kernel();
  [[maybe_unused]] Result<u64> root = k.vfs().mkdir("/untar");
  const u64 dirs = scaled(p.scale, 192);
  const u64 files_per_dir = scaled(p.scale, 128, 2);
  std::vector<u8> chunk(4096, 0xA7);
  const auto before = system.snapshot();
  for (u64 d = 0; d < dirs; ++d) {
    char dpath[64];
    std::snprintf(dpath, sizeof(dpath), "/untar/dir%llu",
                  static_cast<unsigned long long>(d));
    [[maybe_unused]] Status md = k.sys_mkdir(dpath);
    assert(md.ok());
    for (u64 f = 0; f < files_per_dir; ++f) {
      char fpath[96];
      std::snprintf(fpath, sizeof(fpath), "%s/file%llu", dpath,
                    static_cast<unsigned long long>(f));
      // tar -x per member: open(create) takes a cred reference, data is
      // written, metadata restored (chmod + utimes re-resolve the path),
      // and the file closes.
      k.procs().cred_get(k.procs().current().cred);
      Result<u64> ino = k.sys_creat(fpath);
      assert(ino.ok());
      for (int c = 0; c < 3; ++c) {
        [[maybe_unused]] Status w =
            k.sys_write(ino.value(), c * chunk.size(), chunk.data(),
                        chunk.size());
        assert(w.ok());
      }
      [[maybe_unused]] Result<kernel::StatInfo> st1 = k.sys_stat(fpath);
      assert(st1.ok());
      [[maybe_unused]] Result<kernel::StatInfo> st2 = k.sys_stat(fpath);
      assert(st2.ok());
      [[maybe_unused]] Result<kernel::StatInfo> st3 = k.sys_stat(fpath);
      assert(st3.ok());
      k.procs().cred_put(k.procs().current().cred);
      // Streaming write-back: the data pages leave the page cache.
      k.vfs().evict_inode_pages(ino.value());
      // Extraction buffers: periodic scratch mapping churn.
      if ((d * files_per_dir + f) % 12 == 11) scratch_mmap_churn(k, 8);
    }
    // Memory pressure evicts cold dentries as the tree grows.
    if (d % 4 == 3) k.vfs().prune_dcache(files_per_dir / 2);
  }
  return finish(system, "untar", before);
}

AppResult run_iozone(hypernel::System& system, const AppParams& p) {
  Kernel& k = system.kernel();
  [[maybe_unused]] Result<u64> dir = k.vfs().mkdir("/io");
  const u64 phases = scaled(p.scale, 36);
  const u64 file_kib = 2048;  // 512 pages: past TLB reach, nested walks bite
  std::vector<u8> buf(64 * 1024, 0x5A);
  const u64 main_ino = ensure_file(k, "/io/iozone.tmp");
  const auto before = system.snapshot();
  for (u64 ph = 0; ph < phases; ++ph) {
    // Each pass re-opens the target: re-resolution plus fstat.
    [[maybe_unused]] Result<kernel::StatInfo> st = k.sys_stat("/io/iozone.tmp");
    assert(st.ok());
    [[maybe_unused]] Result<kernel::StatInfo> st2 = k.sys_stat("/io/iozone.tmp");
    assert(st2.ok());
    [[maybe_unused]] Result<kernel::StatInfo> st3 = k.sys_stat("/io/iozone.tmp");
    assert(st3.ok());
    // Sequential write then read of the working file.
    for (u64 off = 0; off < file_kib * 1024; off += buf.size()) {
      [[maybe_unused]] Status w =
          k.sys_write(main_ino, off, buf.data(), buf.size());
      assert(w.ok());
    }
    for (u64 off = 0; off < file_kib * 1024; off += buf.size()) {
      [[maybe_unused]] Status r =
          k.sys_read(main_ino, off, buf.data(), buf.size());
      assert(r.ok());
    }
    // Each phase boundary creates and removes a small control file.
    {
      char path[64];
      std::snprintf(path, sizeof(path), "/io/ctl.%llu",
                    static_cast<unsigned long long>(ph));
      Result<u64> ino = k.sys_creat(path);
      assert(ino.ok());
      [[maybe_unused]] Status ul = k.sys_unlink(path);
      assert(ul.ok());
    }
  }
  return finish(system, "iozone", before);
}

AppResult run_apache(hypernel::System& system, const AppParams& p) {
  Kernel& k = system.kernel();
  [[maybe_unused]] Result<u64> dir = k.vfs().mkdir("/www");
  // Document corpus: requests hit a rotating subset, so most lookups are
  // dcache hits with a steady miss tail.
  const u64 docs = scaled(p.scale, 96, 4);
  for (u64 i = 0; i < docs; ++i) {
    char path[64];
    std::snprintf(path, sizeof(path), "/www/page%llu.html",
                  static_cast<unsigned long long>(i));
    const u64 ino = ensure_file(k, path);
    [[maybe_unused]] Status w = k.vfs().append_pattern(ino, 8192, p.seed + i);
    assert(w.ok());
  }

  Result<u32> sock = k.sys_socketpair();
  assert(sock.ok());
  Task* server = &k.procs().current();
  Result<u32> client_pid = k.sys_fork();
  assert(client_pid.ok());
  Task* client = k.procs().find(client_pid.value());

  const u64 requests = scaled(p.scale, 2000);
  const u64 cgi_every = 10;
  std::vector<u8> body(8192);
  SplitMix64 rng(p.seed);
  const auto before = system.snapshot();
  // The request/response traffic arrives over the NIC: in a KVM guest each
  // send/receive batch costs a virtio notification trap (MMIO kick) plus
  // the completion interrupt's world switch — overhead the bare-metal and
  // Hypernel configurations do not pay.
  auto virtio_kick = [&] {
    if (k.machine().guest_mode()) {
      k.machine().advance(k.machine().timing().vm_exit +
                          k.machine().timing().vm_entry);
      ++k.machine().counters().vm_exits;
    }
  };
  // RX completion interrupts from the NIC: one per inbound transfer.  In a
  // KVM guest each takes the EL2 route (vGIC injection world switch).
  auto nic_irq = [&] { k.machine().raise_irq(sim::kIrqNet); };
  for (u64 r = 0; r < requests; ++r) {
    // Client sends the request...
    k.procs().switch_to(*client);
    virtio_kick();
    [[maybe_unused]] Status req =
        k.sys_socket_send(sock.value(), 1, kernel::kUserHeapBase, 64);
    assert(req.ok());
    // ...server picks it up, resolves and reads the document...
    k.procs().switch_to(*server);
    virtio_kick();
    nic_irq();
    [[maybe_unused]] Result<u64> got =
        k.sys_socket_recv(sock.value(), 0, kernel::kUserHeapBase, 64);
    assert(got.ok());
    char path[64];
    std::snprintf(path, sizeof(path), "/www/page%llu.html",
                  static_cast<unsigned long long>(rng.next_below(docs)));
    Result<kernel::StatInfo> st = k.sys_stat(path);
    assert(st.ok());
    // open(2) resolves the path again and takes a cred reference.
    [[maybe_unused]] Result<u64> opened = k.vfs().lookup(path);
    assert(opened.ok());
    k.procs().cred_get(k.procs().current().cred);
    [[maybe_unused]] Status rd = k.sys_read(st.value().ino, 0, body.data(),
                                            st.value().size);
    assert(rd.ok());
    k.procs().cred_put(k.procs().current().cred);
    // ...and responds.
    virtio_kick();
    [[maybe_unused]] Status resp =
        k.sys_socket_send(sock.value(), 0, kernel::kUserHeapBase, 512);
    assert(resp.ok());
    k.procs().switch_to(*client);
    virtio_kick();
    nic_irq();
    [[maybe_unused]] Result<u64> resp_got =
        k.sys_socket_recv(sock.value(), 1, kernel::kUserHeapBase, 512);
    assert(resp_got.ok());
    k.procs().switch_to(*server);

    // Every k-th request runs a CGI helper: fork + execve + exit.
    if (r % cgi_every == cgi_every - 1) {
      Result<u32> pid = k.sys_fork();
      assert(pid.ok());
      Task* child = k.procs().find(pid.value());
      k.procs().switch_to(*child);
      [[maybe_unused]] Status e = k.sys_execve();
      assert(e.ok());
      [[maybe_unused]] Status x = k.sys_exit();
      assert(x.ok());
      k.procs().switch_to(*server);
    }
  }
  return finish(system, "apache", before);
}

std::vector<AppResult> run_all_apps(hypernel::System& system,
                                    const AppParams& p) {
  return {run_whetstone(system, p), run_dhrystone(system, p),
          run_untar(system, p), run_iozone(system, p), run_apache(system, p)};
}

AppResult run_app_by_name(hypernel::System& system, const std::string& name,
                          const AppParams& p) {
  if (name == "whetstone") return run_whetstone(system, p);
  if (name == "dhrystone") return run_dhrystone(system, p);
  if (name == "untar") return run_untar(system, p);
  if (name == "iozone") return run_iozone(system, p);
  if (name == "apache") return run_apache(system, p);
  assert(false && "unknown app benchmark");
  return {};
}

}  // namespace hn::workloads
