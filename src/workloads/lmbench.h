// The LMbench-style kernel-operation microbenchmarks of Table 1.
//
// Each benchmark drives the simkernel's syscall surface exactly the way
// the corresponding lat_* program drives Linux, measures simulated cycles
// per operation, and reports microseconds at the modelled 1.15 GHz clock.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "hypernel/system.h"

namespace hn::workloads {

struct LmbenchResult {
  std::string name;
  double us = 0;  // mean per-operation latency
};

class LmbenchSuite {
 public:
  explicit LmbenchSuite(hypernel::System& system, unsigned iterations = 32)
      : system_(system), iterations_(iterations) {}

  /// Prepare the fixture (paths, peer process, pipes/sockets).
  Status setup();

  LmbenchResult syscall_stat();    // lat_syscall stat
  LmbenchResult signal_install();  // lat_sig install
  LmbenchResult signal_overhead(); // lat_sig catch
  LmbenchResult pipe_latency();    // lat_pipe (round trip)
  LmbenchResult socket_latency();  // lat_unix-style (round trip)
  LmbenchResult fork_exit();       // lat_proc fork
  LmbenchResult fork_execv();      // lat_proc exec
  LmbenchResult page_fault();      // lat_pagefault (anon)
  LmbenchResult mmap();            // lat_mmap (map+touch+unmap)

  /// All nine, in Table 1 order.
  std::vector<LmbenchResult> run_all();

  // --- Extensions beyond Table 1 -------------------------------------------
  /// lat_ctx-style: round-robin context switching across `procs` ready
  /// processes; reports per-switch latency.  Under Hypernel each switch
  /// pays exactly one TVM trap, making this the purest view of that cost.
  LmbenchResult context_switch(unsigned procs = 4);
  /// bw_mem-style: bulk write+read bandwidth over a `kib` buffer in
  /// MB/s of simulated time.
  LmbenchResult memory_bandwidth(u64 kib = 512);

 private:
  double per_op_us(Cycles delta) const;

  hypernel::System& system_;
  unsigned iterations_;
  bool ready_ = false;
  u32 peer_pid_ = 0;  // pipe/socket partner process
  u32 pipe_ab_ = 0;
  u32 pipe_ba_ = 0;
  u32 sock_ = 0;
};

}  // namespace hn::workloads
