// Host-side monotonic stopwatch for harness throughput stats.
//
// Measures *real* wall time on the machine running the tools — never
// simulated time (that is TimingModel's job, timing.h).  Used by the
// execution layer's per-worker/per-run stats; results never feed back
// into simulation state, so timing stays out of the determinism
// contract.
#pragma once

#include <chrono>

#include "common/types.h"

namespace hn {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] u64 elapsed_ns() const {
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - start_)
                                .count());
  }

  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hn
