// Deterministic pseudo-random number generation.  All stochastic behaviour
// in workloads draws from an explicitly seeded SplitMix64 so identical runs
// reproduce identical tables (DESIGN.md §3.5).
#pragma once

#include "common/types.h"

namespace hn {

/// SplitMix64: tiny, fast, and statistically adequate for workload shaping.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be nonzero.
  u64 next_below(u64 bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  u64 next_in(u64 lo, u64 hi) { return lo + next_below(hi - lo + 1); }

  /// Bernoulli trial with probability numer/denom.
  bool chance(u64 numer, u64 denom) { return next_below(denom) < numer; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Raw generator state, for checkpoint serialization: restoring the
  /// state reproduces the exact remaining stream.
  [[nodiscard]] u64 state() const { return state_; }
  void restore_state(u64 state) { state_ = state; }

 private:
  u64 state_;
};

}  // namespace hn
