// Fundamental type aliases and address-space constants shared by every
// Hypernel module.  The simulated machine is a 64-bit AArch64-like target
// with 4 KiB translation granules and a 48-bit virtual address space.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hn {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Physical address within the simulated machine's memory map.
using PhysAddr = u64;
/// Virtual address as seen by EL0/EL1 (stage-1 input) or EL2.
using VirtAddr = u64;
/// Intermediate physical address (stage-1 output / stage-2 input).
using IpaAddr = u64;
/// Simulated CPU cycles.
using Cycles = u64;

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;  // 4 KiB granule
inline constexpr u64 kPageMask = kPageSize - 1;
inline constexpr u64 kSectionShift = 21;
inline constexpr u64 kSectionSize = u64{1} << kSectionShift;  // 2 MiB section
inline constexpr u64 kSectionMask = kSectionSize - 1;
inline constexpr u64 kWordSize = 8;  // MBM monitoring granule: one 64-bit word
inline constexpr u64 kCacheLineSize = 64;

/// Virtual address bits resolved by the 4-level walk (48-bit VA space).
inline constexpr unsigned kVaBits = 48;
/// Entries per translation table (4 KiB / 8-byte descriptors).
inline constexpr u64 kPtEntries = 512;

/// Kernel virtual addresses live in the upper half (TTBR1 region); user
/// addresses in the lower half (TTBR0 region), mirroring AArch64 Linux.
inline constexpr VirtAddr kKernelVaBase = 0xFFFF'0000'0000'0000ull;

constexpr u64 page_align_down(u64 a) { return a & ~kPageMask; }
constexpr u64 page_align_up(u64 a) { return (a + kPageMask) & ~kPageMask; }
constexpr bool is_page_aligned(u64 a) { return (a & kPageMask) == 0; }
constexpr u64 word_align_down(u64 a) { return a & ~(kWordSize - 1); }
constexpr bool is_word_aligned(u64 a) { return (a & (kWordSize - 1)) == 0; }

/// True if [a, a+len) overlaps [b, b+blen).  Callers guarantee no wraparound.
constexpr bool ranges_overlap(u64 a, u64 alen, u64 b, u64 blen) {
  return a < b + blen && b < a + alen;
}

}  // namespace hn
