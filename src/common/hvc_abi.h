// The hypercall ABI between the instrumented kernel and Hypersec — the
// contract the ~200 SLoC kernel patch implements in the paper (§6.2).
// Lives in common/ because it is shared by caller (kernel) and callee
// (hypersec) without either depending on the other.
#pragma once

#include "common/types.h"

namespace hn::hvc {

enum Func : u64 {
  /// Write one page-table descriptor: args = {table_pa, index, descriptor}.
  /// Hypersec verifies the request (W^X, secure-region exclusion, PT pages
  /// read-only) and performs the write on the kernel's behalf (§5.2.1).
  kPtWrite = 1,
  /// Register a freshly allocated, zeroed page as a page-table page:
  /// args = {pa, level} (level 0 = root).  Hypersec remaps it read-only in
  /// the kernel linear map.
  kPtAlloc = 2,
  /// Retire a page-table page: args = {pa}.  Hypersec restores it to RW
  /// after verifying no live root references it.
  kPtFree = 3,
  /// Register a user page-table root so TTBR0 switches to it validate:
  /// args = {root_pa}.
  kPtRegisterRoot = 4,
  /// Drop a user root at process teardown: args = {root_pa}.
  kPtUnregisterRoot = 5,
  /// Security-application hook (§5.3 step 1): register a kernel VA range
  /// for word-granularity monitoring: args = {sid, va, size}.
  kMonRegister = 6,
  /// Remove a monitored range: args = {sid, va, size}.
  kMonUnregister = 7,
  /// The kernel's interrupt handler forwards the MBM interrupt to
  /// Hypersec (§6.2): args = {}.
  kMbmIrq = 8,
  /// Seal loaded module text read-only+executable after staging:
  /// args = {base_pa, pages}.  The only sanctioned W->X transition; the
  /// kernel linear map stays otherwise immutable.
  kModuleSeal = 9,
  /// Return retired module text to plain read-write data:
  /// args = {base_pa, pages}.
  kModuleUnseal = 10,
};

inline constexpr u64 kOk = 0;
inline constexpr u64 kDenied = u64(-1);
inline constexpr u64 kBadArgs = u64(-2);

}  // namespace hn::hvc
