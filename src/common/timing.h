// Central timing model for the simulated machine.
//
// Every cycle constant used anywhere in the simulation lives here
// (DESIGN.md §3.4).  The defaults model the Cortex-A57 big core of the
// Juno r1 platform at 1.15 GHz, calibrated so that the *Native*
// configuration lands near the paper's Table 1 values; the KVM-guest and
// Hypernel deltas then emerge from mechanism (stage-2 walk nesting, traps,
// hypercalls) rather than per-benchmark tuning.
#pragma once

#include "common/types.h"

namespace hn {

struct TimingModel {
  /// Core clock of the Cortex-A57 big cluster on Juno r1 (§6).
  double cpu_ghz = 1.15;

  // --- Memory hierarchy -------------------------------------------------
  /// L1 data cache hit latency.
  Cycles l1_hit = 2;
  /// L1 miss serviced from DRAM (line fill).
  Cycles l1_miss_fill = 140;
  /// Extra cost of evicting a dirty line (write-back to DRAM is
  /// posted; small stall for the victim buffer).
  Cycles dirty_writeback = 12;
  /// A device / non-cacheable word access that must reach the bus.
  Cycles noncacheable_access = 170;
  /// Full-line write allocation (streaming store): the line is claimed
  /// without fetching its old contents from DRAM.
  Cycles write_stream_alloc = 6;
  /// Cost of one translation-table descriptor fetch.  The A57's hardware
  /// walker has walk caches and hits the 2 MiB L2 for descriptor lines, so
  /// we model a flat L2-resident fetch rather than routing walks through
  /// the (small) L1 model.
  Cycles pt_fetch = 8;

  // --- Architectural events ---------------------------------------------
  /// SVC (syscall) entry to EL1, and the matching ERET.
  Cycles svc_entry = 70;
  Cycles svc_exit = 70;
  /// HVC round trip EL1 -> EL2 -> EL1 including minimal EL2 prologue
  /// (Hypersec hypercall path, §5.2.1).
  Cycles hvc_roundtrip = 460;
  /// A trapped system-register write (HCR_EL2.TVM) round trip (§5.2.2).
  Cycles sysreg_trap = 350;
  /// Asynchronous interrupt delivery to the EL2 vector (MBM IRQ, §5.3).
  Cycles irq_delivery = 320;
  /// TLB invalidate instruction (TLBI VAE1 analogue).
  Cycles tlbi = 15;
  /// Extra cost of a guest TLBI: VMID-tagged DVM broadcast completion
  /// under stage-2 translation is substantially slower than native.
  Cycles tlbi_guest_extra = 250;
  /// Kernel-internal task switch (register save/restore, runqueue ops);
  /// the TTBR0 write it performs is charged separately so that the TVM
  /// trap cost appears only under Hypernel.
  Cycles context_switch = 900;

  // --- KVM baseline (nested paging) ---------------------------------------
  /// Full VM exit to the host hypervisor and the matching re-entry
  /// (KVM/ARM 3.10-era world switch, no VHE).
  Cycles vm_exit = 800;
  Cycles vm_entry = 700;
  /// Hypervisor-side work to service one stage-2 translation fault
  /// (allocate/maps the backing page), excluding the exit/entry cost.
  Cycles stage2_fault_service = 2000;
  /// Hypervisor-side work to emulate one write to a stage-2
  /// write-protected page (page-granularity monitoring).
  Cycles stage2_wp_emulate = 700;

  // --- MBM (hardware monitor, Fig. 5) -------------------------------------
  /// MBM internal cycles to process one snooped write (bitmap translate +
  /// decision); the MBM runs concurrently with the CPU, so this bounds
  /// FIFO drain rate rather than charging the CPU.
  Cycles mbm_event_process = 12;
  /// MBM bitmap fetch from main memory on a bitmap-cache miss.
  Cycles mbm_bitmap_fetch = 140;

  // --- SMP (shared bus, N > 1 cores; DESIGN.md §15) ------------------------
  /// Width of one bus-arbitration slot: after a core wins the shared bus
  /// for a word transaction, the bus is busy for this many cycles.  Only
  /// consulted when the machine has more than one core.
  Cycles bus_slot = 4;
  /// A core issuing a transaction while another core's slot is still
  /// draining waits for the remainder — but only when the collision is
  /// this close in time.  Beyond the window the interleaved streams are
  /// considered temporally disjoint and no contention is charged, which
  /// keeps single-threaded phases free of phantom waits.
  Cycles bus_contention_window = 64;
  /// Charged to a core that finds a spinlock in temporal contention
  /// (another core held it within `spinlock_contention_window` cycles).
  Cycles spinlock_contended = 80;
  /// Proximity window for the deterministic spinlock contention model.
  Cycles spinlock_contention_window = 2000;
  /// Cost charged to the sender for posting one IPI (ICC_SGI1R analogue).
  Cycles ipi_send = 90;

  // --- Conversions ---------------------------------------------------------
  [[nodiscard]] double cycles_to_us(Cycles c) const {
    return static_cast<double>(c) / (cpu_ghz * 1000.0);
  }
  [[nodiscard]] Cycles us_to_cycles(double us) const {
    return static_cast<Cycles>(us * cpu_ghz * 1000.0);
  }
};

}  // namespace hn
