// Small bit-manipulation helpers used by page-table descriptors and the
// MBM bitmap logic.
#pragma once

#include <bit>

#include "common/types.h"

namespace hn {

/// All-ones mask covering an n-bit field; well-defined for n == 64,
/// where the naive `(1 << n) - 1` would shift by the full word width.
constexpr u64 field_mask(unsigned n) {
  return n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
}

/// Extract bits [lo, hi] (inclusive) of v.
constexpr u64 bits(u64 v, unsigned hi, unsigned lo) {
  return (v >> lo) & field_mask(hi - lo + 1);
}

/// Set bits [lo, hi] (inclusive) of v to field.
constexpr u64 set_bits(u64 v, unsigned hi, unsigned lo, u64 field) {
  const u64 mask = field_mask(hi - lo + 1) << lo;
  return (v & ~mask) | ((field << lo) & mask);
}

constexpr bool bit(u64 v, unsigned n) { return (v >> n) & 1; }
constexpr u64 with_bit(u64 v, unsigned n, bool on) {
  return on ? (v | (u64{1} << n)) : (v & ~(u64{1} << n));
}

constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }
constexpr u64 log2_floor(u64 v) { return 63 - std::countl_zero(v); }

}  // namespace hn
