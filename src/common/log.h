// Minimal leveled logger.  The simulation itself stays single-threaded
// by design (determinism requirement, DESIGN.md §3.5), but campaign
// workers (src/exec) run one simulation per thread and all read the
// global threshold, so the level is stored atomically; emission goes
// through one stderr fprintf call per line, which the libc stream lock
// keeps from interleaving mid-line.
#pragma once

#include <cstdio>
#include <string>

namespace hn {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are suppressed.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const char* tag, const std::string& msg);
}

template <typename... Args>
void log_at(LogLevel level, const char* tag, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::log_line(level, tag, fmt);
  } else {
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, std::forward<Args>(args)...);
    detail::log_line(level, tag, buf);
  }
}

#define HN_LOG_TRACE(tag, ...) ::hn::log_at(::hn::LogLevel::kTrace, tag, __VA_ARGS__)
#define HN_LOG_DEBUG(tag, ...) ::hn::log_at(::hn::LogLevel::kDebug, tag, __VA_ARGS__)
#define HN_LOG_INFO(tag, ...) ::hn::log_at(::hn::LogLevel::kInfo, tag, __VA_ARGS__)
#define HN_LOG_WARN(tag, ...) ::hn::log_at(::hn::LogLevel::kWarn, tag, __VA_ARGS__)
#define HN_LOG_ERROR(tag, ...) ::hn::log_at(::hn::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace hn
