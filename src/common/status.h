// Lightweight status / expected-value plumbing used across module
// boundaries where exceptions would obscure the simulated architectural
// control flow (faults and traps are modelled explicitly, not as C++
// exceptions).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hn {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Minimal status object: a code plus an optional human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status Invalid(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status OutOfMemory(std::string m) {
    return {StatusCode::kOutOfMemory, std::move(m)};
  }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status Denied(std::string m) {
    return {StatusCode::kPermissionDenied, std::move(m)};
  }
  static Status Precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status OutOfRange(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Expected-style wrapper: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result from Status requires an error");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hn
