#include "common/log.h"

#include <atomic>

namespace hn {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const char* tag, const std::string& msg) {
  std::fprintf(stderr, "[%s] %-10s %s\n", level_name(level), tag, msg.c_str());
}
}  // namespace detail

}  // namespace hn
